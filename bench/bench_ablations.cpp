// Ablation benchmarks for the design choices DESIGN.md calls out:
//   1. rows-per-tile in the fused LayerNorm (thread-block-handles-multiple-
//      rows, §3.3.1 point 1) — the Triton autotuning axis;
//   2. key-tile size in flash MHA (the tiling the Triton autotuner sweeps);
//   3. two-step reduction vs row-serial accumulation in LN backward;
//   4. online-softmax flash vs two-pass naive at DAP-shrunk sizes (the
//      "poor kernel scalability" regime).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "kernels/attention.h"
#include "kernels/layernorm.h"

using namespace sf;
using namespace sf::kernels;

namespace {

std::vector<float> randoms(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  fill_normal(rng, v.data(), n, 0.0f, 1.0f);
  return v;
}

// 1. LayerNorm rows-per-tile sweep at small AlphaFold dims.
void BM_LnRowsPerTile(benchmark::State& state) {
  const int64_t rows = 1024, cols = 128;
  const int64_t tile = state.range(0);
  auto x = randoms(rows * cols, 1);
  auto gamma = randoms(cols, 2);
  auto beta = randoms(cols, 3);
  std::vector<float> y(rows * cols);
  for (auto _ : state) {
    layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(),
                            rows, cols, 1e-5f, nullptr, tile);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LnRowsPerTile)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(32);

// 2. Flash MHA key-tile sweep.
void BM_MhaKeyTile(benchmark::State& state) {
  AttentionDims d{2, 4, 64, 64, 16};
  auto q = randoms(d.qkv_numel(true), 1);
  auto k = randoms(d.qkv_numel(false), 2);
  auto v = randoms(d.qkv_numel(false), 3);
  auto bias = randoms(d.bias_numel(), 4);
  std::vector<float> out(d.qkv_numel(true));
  const int64_t tile = state.range(0);
  for (auto _ : state) {
    mha_forward_flash(d, q.data(), k.data(), v.data(), bias.data(), nullptr,
                      out.data(), nullptr, tile);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MhaKeyTile)->Arg(4)->Arg(16)->Arg(64);

// 3. LN backward: two-step reduction tile sweep (1 row per tile degenerates
// to the per-row accumulation pattern).
void BM_LnBackwardReductionTile(benchmark::State& state) {
  const int64_t rows = 512, cols = 128;
  const int64_t tile = state.range(0);
  auto x = randoms(rows * cols, 4);
  auto gamma = randoms(cols, 5);
  auto dy = randoms(rows * cols, 6);
  std::vector<float> y(rows * cols), dx(rows * cols), dg(cols), db(cols);
  std::vector<float> beta(cols, 0.0f);
  LayerNormStats stats;
  layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(), rows,
                          cols, 1e-5f, &stats);
  for (auto _ : state) {
    layernorm_backward_fused(x.data(), gamma.data(), dy.data(), stats,
                             dx.data(), dg.data(), db.data(), rows, cols,
                             tile);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_LnBackwardReductionTile)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// 4. DAP-shrunk attention: naive vs flash as the per-kernel problem size
// drops n-fold (q_len divided, the DAP sharding axis).
void BM_DapShrunkMhaNaive(benchmark::State& state) {
  const int64_t dap = state.range(0);
  AttentionDims d{1, 4, 128 / dap, 128, 16};
  auto q = randoms(d.qkv_numel(true), 1);
  auto k = randoms(d.qkv_numel(false), 2);
  auto v = randoms(d.qkv_numel(false), 3);
  std::vector<float> out(d.qkv_numel(true));
  for (auto _ : state) {
    mha_forward_naive(d, q.data(), k.data(), v.data(), nullptr, nullptr,
                      out.data(), nullptr);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rows"] = static_cast<double>(d.q_len);
}
BENCHMARK(BM_DapShrunkMhaNaive)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DapShrunkMhaFlash(benchmark::State& state) {
  const int64_t dap = state.range(0);
  AttentionDims d{1, 4, 128 / dap, 128, 16};
  auto q = randoms(d.qkv_numel(true), 1);
  auto k = randoms(d.qkv_numel(false), 2);
  auto v = randoms(d.qkv_numel(false), 3);
  std::vector<float> out(d.qkv_numel(true));
  for (auto _ : state) {
    mha_forward_flash(d, q.data(), k.data(), v.data(), nullptr, nullptr,
                      out.data(), nullptr, 64);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rows"] = static_cast<double>(d.q_len);
}
BENCHMARK(BM_DapShrunkMhaFlash)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
