// Nightly chaos matrix: the DESIGN.md §10 fault-site table, swept over
// many seeds.
//
// Per seed, four legs — together they hit every injection site the tree
// defines:
//
//   ddp        — elastic DataParallelTrainer at ws4 under a seeded kill on
//                ddp.rank_step plus delay-only jitter on ddp.bucket_launch,
//                ddp.bucket_wait and dap.async_reduce; after the kill the
//                world is regrown to 4 *while the jitter is still armed*
//                (grow-under-fire) and must end in bit-exact replica
//                lockstep.
//   dap        — blocking collectives (dap.all_gather, dap.all_reduce,
//                dap.reduce_scatter, dap.all_to_all) under mixed weather
//                (kills, throws, delays): a dying rank aborts the
//                communicator, survivors must throw in bounded time, and
//                after recover() a clean round must produce correct sums.
//   loader     — PrefetchLoader under transient loader.prep failures and a
//                loader.worker.kill: every batch still delivered exactly
//                once.
//   checkpoint — CheckpointManager saves with checkpoint.write crashing a
//                seeded subset of writes: load_latest must return the
//                newest checkpoint that actually survived.
//
// The per-commit lane runs the single-seed equivalents (bench_elastic,
// tier-1 tests); this matrix is the nightly widening of the same gates.
// Seeds are base_seed .. base_seed + N - 1 with base_seed from SF_SEED
// (default 2024) and N from SF_CHAOS_SEEDS (default 16, min 16 in
// --check).
//
// Output: BENCH_chaos_matrix.json (override with --out <path>).
// --check: exit non-zero if any leg of any seed fails its invariant.
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "dap/communicator.h"
#include "data/loader.h"
#include "data/protein_sample.h"
#include "train/checkpoint.h"
#include "train/data_parallel.h"

using namespace sf;

namespace {

model::ModelConfig bench_model() {
  model::ModelConfig c;
  c.crop_len = 16;
  c.msa_rows = 4;
  c.c_m = 16;
  c.c_z = 16;
  c.c_s = 16;
  c.heads = 2;
  c.head_dim = 8;
  c.evoformer_blocks = 1;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 4;
  c.transition_factor = 2;
  c.structure_layers = 1;
  return c;
}

std::vector<data::Batch> make_batches(int n) {
  data::DatasetConfig c;
  c.num_samples = n;
  c.crop_len = 16;
  c.msa_rows = 4;
  c.msa_work_cap = 64;
  c.seed = 31;
  data::SyntheticProteinDataset ds(c);
  std::vector<data::Batch> out;
  for (int i = 0; i < n; ++i) out.push_back(ds.prepare_batch(i));
  return out;
}

struct LegResult {
  std::string leg;
  uint64_t seed = 0;
  bool ok = false;
  std::string detail;
};

// ---- leg: elastic DDP with grow-under-fire ---------------------------------

LegResult run_ddp_leg(const std::vector<data::Batch>& batches,
                      uint64_t seed) {
  LegResult res;
  res.leg = "ddp";
  res.seed = seed;
  fault::reset();

  // Exactly one rank kill, timed by the seed: ddp.rank_step is hit once
  // per rank per step, so skip_hits in [0, 11] lands the kill somewhere
  // in the first four steps.
  fault::SiteConfig kill;
  kill.kill = true;
  kill.max_fires = 1;
  kill.skip_hits = static_cast<int64_t>(seed % 12);
  fault::arm("ddp.rank_step", kill);

  // Timing-only jitter on the gradient-overlap machinery; stays armed
  // through the regrow (the "under fire" part). Delays cannot change bits.
  fault::ChaosOptions jitter;
  jitter.seed = seed;
  jitter.mean_probability = 0.1;
  jitter.kill_fraction = 0.0;
  jitter.delay_fraction = 1.0;
  jitter.max_delay_seconds = 1e-3;
  jitter.max_fires_per_site = 16;
  jitter.max_skip_hits = 4;
  fault::install(fault::random_schedule(
      {"ddp.bucket_launch", "ddp.bucket_wait", "dap.async_reduce"}, jitter));

  train::TrainConfig tc;
  tc.base_lr = 1e-3f;
  tc.warmup_steps = 0;
  tc.min_recycles = 1;
  tc.max_recycles = 1;
  tc.opt.clip_norm = 5.0f;
  tc.overlap_grad_comm = true;
  tc.elastic_world = true;
  train::DataParallelTrainer dp(bench_model(), tc, 4, 7);

  auto step_n = [&](int steps) {
    for (int s = 0; s < steps; ++s) {
      try {
        dp.train_step({batches.data(),
                       static_cast<size_t>(dp.world_size())});
      } catch (const Error&) {
        // Abort fallout from the injected kill; the trainer recovered.
      }
    }
  };
  step_n(4);  // the kill lands in here; world shrinks to 3
  const int ws_after_kill = dp.world_size();
  fault::disarm("ddp.rank_step");
  dp.grow_to(4);  // regrow with the comm jitter still armed
  step_n(2);
  fault::reset();

  bool lockstep = true;
  for (int r = 1; r < dp.world_size(); ++r) {
    if (dp.replica_divergence(r) != 0.0f) lockstep = false;
  }
  res.ok = ws_after_kill == 3 && dp.world_size() == 4 && lockstep;
  res.detail = "ws_after_kill=" + std::to_string(ws_after_kill) +
               " ws_end=" + std::to_string(dp.world_size()) +
               (lockstep ? " lockstep" : " DIVERGED");
  return res;
}

// ---- leg: blocking DAP collectives under mixed weather ---------------------

void run_ranks(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int r = 0; r < n; ++r) threads.emplace_back(fn, r);
  for (auto& t : threads) t.join();
}

LegResult run_dap_leg(uint64_t seed) {
  LegResult res;
  res.leg = "dap";
  res.seed = seed;
  const int n = 4;
  fault::reset();
  fault::ChaosOptions weather;
  weather.seed = seed ^ 0xdabbad00ULL;
  weather.mean_probability = 0.15;
  weather.kill_fraction = 0.3;   // some sites kill the hitting rank
  weather.delay_fraction = 0.4;  // some only delay; the rest throw
  weather.max_delay_seconds = 1e-3;
  weather.max_fires_per_site = 2;
  weather.max_skip_hits = 8;
  fault::install(fault::random_schedule(
      {"dap.all_gather", "dap.all_reduce", "dap.reduce_scatter",
       "dap.all_to_all"},
      weather));

  dap::Communicator comm(n);
  std::atomic<int> aborted_rounds{0};
  auto one_round = [&](bool* clean) {
    std::atomic<bool> failed{false};
    run_ranks(n, [&](int rank) {
      try {
        std::vector<float> buf(8, 1.0f);
        comm.all_reduce_sum(rank, buf);
        std::vector<float> chunk(2, static_cast<float>(rank));
        std::vector<float> gathered(2 * n);
        comm.all_gather(rank, chunk, gathered);
        std::vector<float> full(2 * n, 1.0f), slice(2);
        comm.reduce_scatter_sum(rank, full, slice);
        std::vector<float> send(n, static_cast<float>(rank)), recv(n);
        comm.all_to_all(rank, send, recv);
      } catch (const fault::WorkerKill&) {
        comm.abort("injected rank death");  // wake abandoned peers
        failed.store(true);
      } catch (const fault::InjectedFault&) {
        // A transient throw also abandons the rendezvous: without an
        // abort the peers would park forever waiting for this rank.
        comm.abort("injected transient fault");
        failed.store(true);
      } catch (const Error&) {
        failed.store(true);  // survivor woken out of the rendezvous
      }
    });
    if (failed.load()) {
      comm.recover();
      aborted_rounds.fetch_add(1);
      *clean = false;
    } else {
      *clean = true;
    }
  };

  for (int round = 0; round < 6; ++round) {
    bool clean = false;
    one_round(&clean);
  }
  fault::reset();

  // Weather gone: a final round must run clean and sum correctly.
  std::vector<std::vector<float>> bufs(n, std::vector<float>(8, 1.0f));
  std::atomic<bool> wrong{false};
  run_ranks(n, [&](int rank) {
    comm.all_reduce_sum(rank, bufs[rank]);
    for (float v : bufs[rank]) {
      if (v != static_cast<float>(n)) wrong.store(true);
    }
  });
  res.ok = !wrong.load();
  res.detail = "aborted_rounds=" + std::to_string(aborted_rounds.load()) +
               (wrong.load() ? " WRONG-SUM" : " clean-round-ok");
  return res;
}

// ---- leg: prefetch loader under prep faults + a worker kill ----------------

LegResult run_loader_leg(uint64_t seed) {
  LegResult res;
  res.leg = "loader";
  res.seed = seed;
  fault::reset();
  fault::SiteConfig prep;
  prep.probability = 0.2;
  prep.max_fires = -1;
  prep.seed = seed ^ 0x10adULL;
  fault::arm("loader.prep", prep);
  fault::SiteConfig kill;
  kill.kill = true;
  kill.skip_hits = static_cast<int64_t>(seed % 10);
  fault::arm("loader.worker.kill", kill);

  data::DatasetConfig dcfg;
  dcfg.num_samples = 32;
  dcfg.crop_len = 16;
  dcfg.msa_rows = 4;
  dcfg.msa_work_cap = 64;
  dcfg.seed = 31;
  data::SyntheticProteinDataset ds(dcfg);

  data::LoaderConfig lc;
  lc.num_workers = 3;
  lc.max_in_flight = 6;
  lc.policy = data::YieldPolicy::kReadyFirst;
  lc.max_retries = 10;
  lc.retry_backoff_seconds = 1e-4;
  lc.prep_timeout_seconds = 0.25;
  const int64_t nb = 32;
  data::PrefetchLoader loader(
      [&ds](int64_t i) { return ds.prepare_batch(i); }, nb, lc);

  std::set<int64_t> got;
  bool dup = false;
  try {
    while (loader.has_next()) {
      if (!got.insert(loader.next().index).second) dup = true;
    }
  } catch (const Error& e) {
    res.detail = std::string("loader error: ") + e.what();
    fault::reset();
    return res;
  }
  fault::reset();
  const auto st = loader.stats_snapshot();
  res.ok = !dup && got.size() == static_cast<size_t>(nb);
  res.detail = "delivered=" + std::to_string(got.size()) +
               " retries=" + std::to_string(st.retries) +
               " deaths=" + std::to_string(st.worker_deaths) +
               (dup ? " DUPLICATE" : "");
  return res;
}

// ---- leg: checkpoint writes crashing mid-save ------------------------------

LegResult run_checkpoint_leg(uint64_t seed) {
  LegResult res;
  res.leg = "checkpoint";
  res.seed = seed;
  fault::reset();
  namespace fs = std::filesystem;
  const std::string dir =
      "/tmp/scalefold_chaos_ckpt_" + std::to_string(seed);
  fs::remove_all(dir);

  // Exactly two of the five saves crash after payload write, before the
  // rename makes them durable; which two is seed-pinned.
  fault::SiteConfig crash;
  crash.max_fires = 2;
  crash.skip_hits = static_cast<int64_t>(seed % 4);
  fault::arm("checkpoint.write", crash);

  train::CheckpointManager mgr(dir, /*keep_last=*/5);
  int64_t newest_durable = -1;
  for (int64_t step = 1; step <= 5; ++step) {
    std::map<std::string, Tensor> t;
    t["w"] = Tensor({4});
    for (int64_t i = 0; i < 4; ++i) {
      t["w"].at(i) = static_cast<float>(step * 10 + i);
    }
    try {
      mgr.save(step, t);
      newest_durable = step;
    } catch (const fault::InjectedFault&) {
      // Crashed mid-save: this step must not become loadable.
    }
  }
  fault::reset();

  std::map<std::string, Tensor> loaded;
  const int64_t got = mgr.load_latest(loaded);
  bool content_ok = got == newest_durable && loaded.count("w") > 0;
  if (content_ok) {
    for (int64_t i = 0; i < 4; ++i) {
      if (loaded["w"].at(i) != static_cast<float>(got * 10 + i)) {
        content_ok = false;
      }
    }
  }
  res.ok = content_ok;
  res.detail = "newest_durable=" + std::to_string(newest_durable) +
               " loaded=" + std::to_string(got);
  fs::remove_all(dir);
  return res;
}

void write_json(const std::vector<LegResult>& rows, uint64_t base_seed,
                int n_seeds, const std::string& path) {
  int failed = 0;
  for (const auto& r : rows) failed += r.ok ? 0 : 1;
  std::ofstream f(path);
  f << "{\n  \"base_seed\": " << base_seed << ", \"seeds\": " << n_seeds
    << ", \"legs_total\": " << rows.size() << ", \"legs_failed\": " << failed
    << ",\n  \"legs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const LegResult& r = rows[i];
    f << "    {\"leg\": \"" << r.leg << "\", \"seed\": " << r.seed
      << ", \"ok\": " << (r.ok ? "true" : "false") << ", \"detail\": \""
      << r.detail << "\"}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_chaos_matrix.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--out path]\n", argv[0]);
      return 2;
    }
  }
  uint64_t base_seed = 2024;
  if (const char* env = std::getenv("SF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
  }
  int n_seeds = 16;
  if (const char* env = std::getenv("SF_CHAOS_SEEDS")) {
    n_seeds = std::atoi(env);
  }
  if (check && n_seeds < 16) {
    std::fprintf(stderr, "--check requires >= 16 seeds (got %d)\n", n_seeds);
    return 2;
  }

  auto batches = make_batches(4);
  std::vector<LegResult> rows;
  std::printf("chaos matrix: %d seeds from %" PRIu64 "\n\n", n_seeds,
              base_seed);
  for (int s = 0; s < n_seeds; ++s) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(s);
    for (auto leg : {&run_loader_leg, &run_dap_leg, &run_checkpoint_leg}) {
      rows.push_back(leg(seed));
    }
    rows.push_back(run_ddp_leg(batches, seed));
    const size_t base = rows.size() - 4;
    for (size_t i = base; i < rows.size(); ++i) {
      const LegResult& r = rows[i];
      std::printf("seed %-6" PRIu64 " %-10s %-4s %s\n", r.seed,
                  r.leg.c_str(), r.ok ? "ok" : "FAIL", r.detail.c_str());
    }
  }

  write_json(rows, base_seed, n_seeds, out_path);
  int failed = 0;
  for (const auto& r : rows) failed += r.ok ? 0 : 1;
  std::printf("\n%zu legs, %d failed; wrote %s\n", rows.size(), failed,
              out_path.c_str());
  if (check && failed > 0) return 1;
  if (check) std::printf("check passed\n");
  return 0;
}
