// Convergence ablations — real mini-scale training A/Bs for the paper's
// convergence claims:
//   1. §3.2: the non-blocking loader's batch reordering "did not
//      negatively affect the training convergence".
//   2. §3.4: bf16 converges (where naive fp16 NaNs).
//   3. §2.2/§4.1: gradient checkpointing changes step time, not gradients
//      — convergence identical, backward pays the recompute.
#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "core/session.h"

using namespace sf;

namespace {

core::ScaleFoldOptions base_options() {
  core::ScaleFoldOptions o;
  o.dataset.num_samples = 80;
  o.dataset.crop_len = 10;
  o.dataset.msa_rows = 3;
  o.dataset.msa_work_cap = 60;
  o.dataset.seed = 77;
  o.model.c_m = 8;
  o.model.c_z = 8;
  o.model.c_s = 8;
  o.model.heads = 2;
  o.model.head_dim = 4;
  o.model.evoformer_blocks = 1;
  o.model.use_extra_msa_stack = false;
  o.model.use_template_stack = false;
  o.model.opm_dim = 2;
  o.model.transition_factor = 2;
  o.model.structure_layers = 1;
  o.train.base_lr = 3e-3f;
  o.train.warmup_steps = 8;
  o.train.min_recycles = 1;
  o.train.max_recycles = 1;
  o.train.opt.clip_norm = 5.0f;
  o.eval_samples = 0;
  o.eval_every_steps = 0;
  o.async_eval = false;
  o.seed = 13;
  return o;
}

struct Curve {
  float first_loss = 0, last_loss = 0, last_lddt = 0;
  double total_s = 0;
};

Curve run(core::ScaleFoldOptions o, int steps = 48) {
  core::TrainingSession session(std::move(o));
  Timer t;
  auto records = session.run(steps);
  Curve c;
  c.first_loss = records.front().loss;
  float loss4 = 0, lddt4 = 0;
  for (int i = 0; i < 4; ++i) {
    loss4 += records[records.size() - 1 - i].loss;
    lddt4 += records[records.size() - 1 - i].lddt;
  }
  c.last_loss = loss4 / 4;
  c.last_lddt = lddt4 / 4;
  c.total_s = t.elapsed();
  return c;
}

void report(const char* name, const Curve& c) {
  std::printf("%-34s | loss %6.2f -> %6.2f | lddt %5.3f | %6.2f s\n", name,
              c.first_loss, c.last_loss, c.last_lddt, c.total_s);
}

}  // namespace

int main() {
  std::printf("=== Convergence ablations (real training, 48 steps) ===\n\n");

  // 1. Loader policy: reordering must not hurt convergence.
  {
    auto in_order = base_options();
    in_order.nonblocking_loader = false;
    auto ready = base_options();
    ready.nonblocking_loader = true;
    Curve a = run(in_order);
    Curve b = run(ready);
    report("in-order loader", a);
    report("ready-first loader", b);
    std::printf("  -> final-loss ratio %.3f (paper: no convergence impact "
                "from reordering)\n\n",
                b.last_loss / a.last_loss);
  }

  // 2. Precision: bf16 vs fp32.
  {
    auto fp32 = base_options();
    auto bf16 = base_options();
    bf16.bf16_activations = true;
    Curve a = run(fp32);
    Curve b = run(bf16);
    report("fp32 activations", a);
    report("bf16 activations", b);
    std::printf("  -> bf16 converges (paper: bf16 yes, naive fp16 NaNs); "
                "final-loss ratio %.3f\n\n",
                b.last_loss / a.last_loss);
  }

  // 3. Gradient checkpointing: identical math, slower steps.
  {
    auto plain = base_options();
    auto ckpt = base_options();
    ckpt.model.gradient_checkpointing = true;
    Curve a = run(plain);
    Curve b = run(ckpt);
    report("no checkpointing", a);
    report("gradient checkpointing", b);
    std::printf("  -> identical trajectories (|loss diff| %.4f), "
                "checkpointing costs %.2fx wall time (the recompute DAP's "
                "memory headroom lets ScaleFold drop)\n",
                std::abs(a.last_loss - b.last_loss), b.total_s / a.total_s);
  }
  return 0;
}
