// DAP substrate benchmark: communication volume of the three collective
// patterns (all-gather, all-reduce, all-to-all) per Evoformer block at
// mini scale and extrapolated to the paper-scale dims, plus data-parallel
// gradient-reduce accounting. Ties the real implementation to the
// simulator's kDapCommBytesPerStep calibration constant.
#include <cstdio>
#include <thread>
#include <vector>

#include "dap/communicator.h"
#include "dap/sharded.h"
#include "model/modules.h"
#include "sim/calibration.h"

using namespace sf;
using namespace sf::dap;

namespace {

void run_ranks(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) threads.emplace_back(fn, r);
  for (auto& t : threads) t.join();
}

}  // namespace

int main() {
  std::printf("=== DAP communication patterns (real, in-process) ===\n\n");

  model::ModelConfig cfg;
  cfg.msa_rows = 8;
  cfg.crop_len = 16;
  cfg.c_m = 16;
  cfg.c_z = 16;
  cfg.heads = 2;
  cfg.head_dim = 8;
  cfg.opm_dim = 4;
  Rng rng(5);
  model::ParamStore store;
  model::MSARowAttentionWithPairBias row(store, "row", cfg, rng);
  model::MSAColumnAttention col(store, "col", cfg, rng);
  model::OuterProductMean opm(store, "opm", cfg, rng);

  Tensor msa = Tensor::randn({cfg.msa_rows, cfg.crop_len, cfg.c_m}, rng);
  Tensor pair = Tensor::randn({cfg.crop_len, cfg.crop_len, cfg.c_z}, rng);

  std::printf("mini dims: S=%lld R=%lld c_m=%lld c_z=%lld\n\n",
              (long long)cfg.msa_rows, (long long)cfg.crop_len,
              (long long)cfg.c_m, (long long)cfg.c_z);
  std::printf("%-6s | %14s | %14s | %14s | %12s\n", "DAP-n",
              "row-attn bytes", "col-attn bytes", "opm bytes", "collectives");
  for (int n : {2, 4, 8}) {
    Communicator c_row(n), c_col(n), c_opm(n);
    run_ranks(n, [&](int rank) {
      Tensor ms = shard_axis0(msa, rank, n);
      Tensor ps = shard_axis0(pair, rank, n);
      sharded_row_attention(row, c_row, rank, ms, ps, cfg.crop_len);
      sharded_column_attention(col, c_col, rank, ms, cfg.msa_rows);
      sharded_outer_product_mean(opm, c_opm, rank, ms, cfg.msa_rows);
    });
    std::printf("%-6d | %14llu | %14llu | %14llu | %12llu\n", n,
                (unsigned long long)c_row.stats().total_bytes(),
                (unsigned long long)c_col.stats().total_bytes(),
                (unsigned long long)c_opm.stats().total_bytes(),
                (unsigned long long)(c_row.stats().collectives +
                                     c_col.stats().collectives +
                                     c_opm.stats().collectives));
  }

  // Communication-optimized variants (§2.3: DAP offers "more opportunities
  // for communication optimization"): gather only the projected per-head
  // bias; project outer-product partials to c_z before a reduce-scatter.
  std::printf("\n--- naive vs optimized patterns (DAP-4, bytes) ---\n");
  {
    const int n = 4;
    Communicator naive_row(n), opt_row(n), naive_opm(n), opt_opm(n);
    run_ranks(n, [&](int rank) {
      Tensor ms = shard_axis0(msa, rank, n);
      Tensor ps = shard_axis0(pair, rank, n);
      sharded_row_attention(row, naive_row, rank, ms, ps, cfg.crop_len);
      sharded_row_attention_biasgather(row, opt_row, rank, ms, ps,
                                       cfg.crop_len);
      sharded_outer_product_mean(opm, naive_opm, rank, ms, cfg.msa_rows);
      sharded_outer_product_mean_scatter(opm, opt_opm, rank, ms,
                                         cfg.msa_rows);
    });
    std::printf("row attention : full-pair gather %8llu -> bias-only "
                "gather %8llu (%.1fx less)\n",
                (unsigned long long)naive_row.stats().total_bytes(),
                (unsigned long long)opt_row.stats().total_bytes(),
                double(naive_row.stats().total_bytes()) /
                    opt_row.stats().total_bytes());
    std::printf("outer product : all-reduce u*v   %8llu -> project+reduce-"
                "scatter %5llu (%.1fx less)\n",
                (unsigned long long)naive_opm.stats().total_bytes(),
                (unsigned long long)opt_opm.stats().total_bytes(),
                double(naive_opm.stats().total_bytes()) /
                    opt_opm.stats().total_bytes());
  }

  // Extrapolate the *optimized* per-rank volume to paper-scale dims and
  // the full stack (54 blocks, fwd+bwd ~2x): the quantity the simulator's
  // kDapCommBytesPerStep models.
  const double bias_gather = 256.0 * 256 * 8 * 4;           // [R,R,H]
  const double opm_scatter = 256.0 * 256 * 128 * 4;         // [R,R,c_z]
  const double col_a2a = 2 * 128.0 * 256 * 256 * 4 / 8;     // shard slices
  const double per_block = bias_gather + opm_scatter + col_a2a;
  const double per_step = per_block * 54 * 2;  // fwd + bwd
  std::printf("\npaper-scale extrapolation (optimized patterns): ~%.2f GB "
              "of DAP collectives per step\n(simulator calibration "
              "kDapCommBytesPerStep = %.2f GB)\n",
              per_step / 1e9, sim::calib::kDapCommBytesPerStep / 1e9);

  // The full sharded Evoformer block: every §2.3 boundary in one pass.
  std::printf("\n--- full Evoformer block under DAP (per-step comm) ---\n");
  {
    model::ParamStore store2;
    Rng rng2(9);
    model::EvoformerBlock block(store2, "blk", cfg, rng2);
    for (int n : {2, 4, 8}) {
      Communicator comm(n);
      run_ranks(n, [&](int rank) {
        Tensor ms = shard_axis0(msa, rank, n);
        Tensor ps = shard_axis0(pair, rank, n);
        sharded_evoformer_block(block, comm, rank, ms, ps, cfg.msa_rows,
                                cfg.crop_len);
      });
      auto st = comm.stats();
      std::printf("DAP-%d: %llu collectives, %llu bytes (gather %llu, "
                  "reduce %llu, a2a %llu, scatter %llu)\n",
                  n, (unsigned long long)st.collectives,
                  (unsigned long long)st.total_bytes(),
                  (unsigned long long)st.bytes_gathered,
                  (unsigned long long)st.bytes_reduced,
                  (unsigned long long)st.bytes_exchanged,
                  (unsigned long long)st.bytes_scattered);
    }
  }

  std::printf("\nEvery pattern and the full block are tested for exact "
              "equivalence with the unsharded modules "
              "(tests/test_dap.cpp).\n");
  return 0;
}
