// Elastic data-parallel training under fault weather.
//
// Four scenarios on the in-process DataParallelTrainer with
// elastic_world = true:
//   steady      — ws4, no faults: the baseline step time.
//   kill_shrink — ws4, one rank killed mid-run via sf::fault: measures
//                 the recovery latency (detect + quiesce + rebuild +
//                 re-shard), the steps lost, and the post-recovery step
//                 time at ws3 (the throughput dip).
//   shrink_grow — the ISSUE acceptance path ws4 -> ws2 -> ws4: planned
//                 shrink_to/grow_to with training in between; survivors
//                 and regrown ranks must stay in bit-identical lockstep.
//   chaos       — a seeded fault schedule (kills at step boundaries,
//                 delay-only jitter on the inner comm sites) over a short
//                 run, executed twice: the final parameters must replay
//                 BIT-IDENTICALLY from the same schedule + seed.
//
// The chaos seed comes from the SF_SEED environment variable (default
// 2024) so CI can pin the weather.
//
// Output: BENCH_elastic.json (override with --out <path>).
//
// --check: exit non-zero if any scenario loses replica lockstep, if the
// kill recovery latency is unbounded (> 10 s on this toy model), if more
// than the in-flight step is lost, if the post-recovery step time is not
// within a generous 3x of the pre-kill step time, or if the chaos run is
// not bitwise replayable.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "data/protein_sample.h"
#include "train/data_parallel.h"

using namespace sf;

namespace {

model::ModelConfig bench_model() {
  model::ModelConfig c;
  c.crop_len = 16;
  c.msa_rows = 4;
  c.c_m = 16;
  c.c_z = 16;
  c.c_s = 16;
  c.heads = 2;
  c.head_dim = 8;
  c.evoformer_blocks = 2;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 4;
  c.transition_factor = 2;
  c.structure_layers = 1;
  return c;
}

train::TrainConfig elastic_cfg() {
  train::TrainConfig tc;
  tc.base_lr = 1e-3f;
  tc.warmup_steps = 0;
  tc.min_recycles = 1;
  tc.max_recycles = 1;
  tc.opt.clip_norm = 5.0f;
  tc.overlap_grad_comm = true;
  tc.elastic_world = true;
  return tc;
}

std::vector<data::Batch> make_batches(int n) {
  data::DatasetConfig c;
  c.num_samples = n;
  c.crop_len = 16;
  c.msa_rows = 4;
  c.msa_work_cap = 64;
  c.seed = 31;
  data::SyntheticProteinDataset ds(c);
  std::vector<data::Batch> out;
  for (int i = 0; i < n; ++i) out.push_back(ds.prepare_batch(i));
  return out;
}

std::span<const data::Batch> first_n(const std::vector<data::Batch>& b,
                                     int n) {
  return {b.data(), static_cast<size_t>(n)};
}

bool lockstep_ok(train::DataParallelTrainer& dp) {
  for (int r = 1; r < dp.world_size(); ++r) {
    if (dp.replica_divergence(r) != 0.0f) return false;
  }
  return true;
}

std::vector<float> param_snapshot(train::DataParallelTrainer& dp) {
  std::vector<float> out;
  for (const auto& p : dp.replica(0).params().all()) {
    const float* d = p.value().data();
    out.insert(out.end(), d, d + p.value().numel());
  }
  return out;
}

struct Row {
  std::string scenario;
  int ws_start = 0;
  int ws_end = 0;
  int steps = 0;
  int steps_lost = 0;
  int ranks_lost = 0;
  double pre_step_s = 0;
  double post_step_s = 0;
  double recovery_s = 0;
  double dip = 0;  ///< post/pre step-time ratio
  bool lockstep = false;
  bool bitwise_replay = true;  ///< only meaningful for chaos
};

void write_json(const std::vector<Row>& rows, uint64_t seed,
                const std::string& path) {
  std::ofstream f(path);
  f << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    f << "  {\"scenario\": \"" << r.scenario << "\", \"seed\": " << seed
      << ", \"ws_start\": " << r.ws_start << ", \"ws_end\": " << r.ws_end
      << ", \"steps\": " << r.steps << ", \"steps_lost\": " << r.steps_lost
      << ", \"ranks_lost\": " << r.ranks_lost
      << ", \"pre_step_s\": " << r.pre_step_s
      << ", \"post_step_s\": " << r.post_step_s
      << ", \"recovery_s\": " << r.recovery_s << ", \"dip\": " << r.dip
      << ", \"lockstep\": " << (r.lockstep ? "true" : "false")
      << ", \"bitwise_replay\": " << (r.bitwise_replay ? "true" : "false")
      << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "]\n";
}

constexpr int kPreSteps = 3;
constexpr int kPostSteps = 3;

Row run_steady(const std::vector<data::Batch>& batches) {
  Row row;
  row.scenario = "steady";
  row.ws_start = row.ws_end = 4;
  train::DataParallelTrainer dp(bench_model(), elastic_cfg(), 4, 7);
  double total = 0.0;
  for (int s = 0; s < kPreSteps + kPostSteps; ++s) {
    auto r = dp.train_step(first_n(batches, 4));
    if (s > 0) total += r.seconds;
    ++row.steps;
  }
  row.pre_step_s = row.post_step_s = total / (row.steps - 1);
  row.dip = 1.0;
  row.lockstep = lockstep_ok(dp);
  return row;
}

Row run_kill_shrink(const std::vector<data::Batch>& batches) {
  Row row;
  row.scenario = "kill_shrink";
  row.ws_start = 4;
  train::DataParallelTrainer dp(bench_model(), elastic_cfg(), 4, 7);
  double pre = 0.0;
  for (int s = 0; s < kPreSteps; ++s) {
    auto r = dp.train_step(first_n(batches, 4));
    if (s > 0) pre += r.seconds;
    ++row.steps;
  }
  row.pre_step_s = pre / (kPreSteps - 1);

  fault::SiteConfig kill;
  kill.kill = true;
  kill.max_fires = 1;
  fault::arm("ddp.rank_step", kill);
  auto r = dp.train_step(first_n(batches, 4));
  fault::reset();
  ++row.steps;
  row.ranks_lost = r.ranks_lost;
  row.steps_lost = r.lost_to_fault ? 1 : 0;
  row.recovery_s = dp.elastic_events().empty()
                       ? 0.0
                       : dp.elastic_events().back().recovery_seconds;

  double post = 0.0;
  for (int s = 0; s < kPostSteps + 1; ++s) {
    auto rr = dp.train_step(first_n(batches, dp.world_size()));
    if (s > 0) post += rr.seconds;
    ++row.steps;
  }
  row.post_step_s = post / kPostSteps;
  row.dip = row.pre_step_s > 0 ? row.post_step_s / row.pre_step_s : 0.0;
  row.ws_end = dp.world_size();
  row.lockstep = lockstep_ok(dp);
  return row;
}

Row run_shrink_grow(const std::vector<data::Batch>& batches) {
  Row row;
  row.scenario = "shrink_grow";
  row.ws_start = 4;
  train::DataParallelTrainer dp(bench_model(), elastic_cfg(), 4, 7);
  for (int s = 0; s < 2; ++s) {
    dp.train_step(first_n(batches, 4));
    ++row.steps;
  }
  dp.shrink_to(2);
  for (int s = 0; s < 2; ++s) {
    dp.train_step(first_n(batches, 2));
    ++row.steps;
  }
  dp.grow_to(4);
  double post = 0.0;
  for (int s = 0; s < kPostSteps; ++s) {
    auto r = dp.train_step(first_n(batches, 4));
    post += r.seconds;
    ++row.steps;
  }
  row.post_step_s = row.pre_step_s = post / kPostSteps;
  row.dip = 1.0;
  for (const auto& ev : dp.elastic_events()) {
    row.recovery_s = std::max(row.recovery_s, ev.recovery_seconds);
  }
  row.ws_end = dp.world_size();
  row.lockstep = lockstep_ok(dp);
  return row;
}

/// The chaos schedule: seeded probabilistic kills at the step boundary
/// (where the per-step hit count is deterministic, so the schedule
/// replays fire-for-fire) plus delay-only jitter on the inner comm sites
/// (timing chaos that cannot change any bits).
fault::Schedule chaos_schedule(uint64_t seed) {
  fault::Schedule schedule;
  fault::SiteConfig kill;
  kill.kill = true;
  kill.probability = 0.15;
  kill.max_fires = 2;
  kill.skip_hits = 4;  // let the first step finish cleanly
  kill.seed = seed ^ 0x5eedf00dULL;
  schedule.push_back({"ddp.rank_step", kill});

  fault::ChaosOptions jitter;
  jitter.seed = seed;
  jitter.mean_probability = 0.05;
  jitter.kill_fraction = 0.0;
  jitter.delay_fraction = 1.0;  // delay-only: jitter, never throws
  jitter.max_delay_seconds = 1e-3;
  jitter.max_fires_per_site = 8;
  jitter.max_skip_hits = 4;
  auto inner = fault::random_schedule(
      {"ddp.bucket_launch", "ddp.bucket_wait", "dap.async_reduce"}, jitter);
  schedule.insert(schedule.end(), inner.begin(), inner.end());
  return schedule;
}

struct ChaosRun {
  std::vector<float> params;
  int ws_end = 0;
  int steps = 0;
  int steps_lost = 0;
  int ranks_lost = 0;
  double recovery_s = 0;
  bool lockstep = false;
};

ChaosRun run_chaos_once(const std::vector<data::Batch>& batches,
                        uint64_t seed) {
  fault::reset();
  fault::install(chaos_schedule(seed));
  train::DataParallelTrainer dp(bench_model(), elastic_cfg(), 4, 7);
  ChaosRun run;
  for (int s = 0; s < 8; ++s) {
    try {
      auto r = dp.train_step(first_n(batches, dp.world_size()));
      ++run.steps;
      run.steps_lost += r.lost_to_fault ? 1 : 0;
      run.ranks_lost += r.ranks_lost;
    } catch (const Error&) {
      // Fault weather only delays or kills; anything thrown is abort
      // fallout and the trainer recovered — retry.
    }
  }
  fault::reset();
  for (const auto& ev : dp.elastic_events()) {
    run.recovery_s = std::max(run.recovery_s, ev.recovery_seconds);
  }
  run.ws_end = dp.world_size();
  run.lockstep = lockstep_ok(dp);
  run.params = param_snapshot(dp);
  return run;
}

Row run_chaos(const std::vector<data::Batch>& batches, uint64_t seed) {
  Row row;
  row.scenario = "chaos";
  row.ws_start = 4;
  ChaosRun a = run_chaos_once(batches, seed);
  ChaosRun b = run_chaos_once(batches, seed);
  row.ws_end = a.ws_end;
  row.steps = a.steps;
  row.steps_lost = a.steps_lost;
  row.ranks_lost = a.ranks_lost;
  row.recovery_s = a.recovery_s;
  row.lockstep = a.lockstep && b.lockstep;
  row.bitwise_replay =
      a.ws_end == b.ws_end && a.ranks_lost == b.ranks_lost &&
      a.params.size() == b.params.size() &&
      std::memcmp(a.params.data(), b.params.data(),
                  sizeof(float) * a.params.size()) == 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_elastic.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--out path]\n", argv[0]);
      return 2;
    }
  }
  uint64_t seed = 2024;
  if (const char* env = std::getenv("SF_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }

  auto batches = make_batches(4);
  std::vector<Row> rows;
  rows.push_back(run_steady(batches));
  rows.push_back(run_kill_shrink(batches));
  rows.push_back(run_shrink_grow(batches));
  rows.push_back(run_chaos(batches, seed));

  std::printf("elastic world-size bench (SF_SEED=%" PRIu64 ")\n\n", seed);
  for (const Row& r : rows) {
    std::printf(
        "%-12s ws %d->%d  steps %2d (lost %d, ranks lost %d)  "
        "step %7.2f -> %7.2f ms  recovery %6.2f ms  %s%s\n",
        r.scenario.c_str(), r.ws_start, r.ws_end, r.steps, r.steps_lost,
        r.ranks_lost, r.pre_step_s * 1e3, r.post_step_s * 1e3,
        r.recovery_s * 1e3, r.lockstep ? "lockstep-ok" : "DIVERGED",
        r.scenario == "chaos"
            ? (r.bitwise_replay ? " replay-bitwise-ok" : " REPLAY-MISMATCH")
            : "");
  }

  write_json(rows, seed, out_path);
  std::printf("\nwrote %s (%zu rows)\n", out_path.c_str(), rows.size());

  if (check) {
    int failures = 0;
    for (const Row& r : rows) {
      if (!r.lockstep) {
        std::fprintf(stderr, "FAIL: %s lost replica lockstep\n",
                     r.scenario.c_str());
        ++failures;
      }
    }
    const Row& ks = rows[1];
    if (ks.ranks_lost != 1 || ks.ws_end != 3) {
      std::fprintf(stderr, "FAIL: kill_shrink expected ws4 -> ws3, got %d\n",
                   ks.ws_end);
      ++failures;
    }
    if (ks.steps_lost > 1) {
      std::fprintf(stderr,
                   "FAIL: kill_shrink lost %d steps; only the in-flight "
                   "step may be discarded\n",
                   ks.steps_lost);
      ++failures;
    }
    if (ks.recovery_s > 10.0) {
      std::fprintf(stderr,
                   "FAIL: kill recovery latency unbounded (%.2f s)\n",
                   ks.recovery_s);
      ++failures;
    }
    if (ks.post_step_s > 3.0 * ks.pre_step_s) {
      std::fprintf(stderr,
                   "FAIL: post-recovery step time %.2f ms not within 3x of "
                   "pre-kill %.2f ms\n",
                   ks.post_step_s * 1e3, ks.pre_step_s * 1e3);
      ++failures;
    }
    const Row& sg = rows[2];
    if (sg.ws_end != 4) {
      std::fprintf(stderr, "FAIL: shrink_grow did not return to ws4\n");
      ++failures;
    }
    const Row& ch = rows[3];
    if (!ch.bitwise_replay) {
      std::fprintf(stderr,
                   "FAIL: chaos run is not bitwise replayable from seed "
                   "%" PRIu64 "\n",
                   seed);
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf("check passed\n");
  }
  return 0;
}
