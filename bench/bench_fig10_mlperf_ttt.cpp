// Figure 10 reproduction: time to train from the MLPerf HPC v3.0
// checkpoint (batch size 256). Reference implementation on 256 H100 vs
// ScaleFold on 2080 H100 (2048 training + 32 evaluation, DAP-8).
#include <cstdio>

#include "sim/cluster.h"
#include "sim/ttt.h"

using namespace sf::sim;

int main() {
  std::printf("=== Fig. 10: MLPerf HPC v3.0 OpenFold time-to-train ===\n\n");

  TttConfig ref;
  ref.cluster.arch = GpuArch::h100();
  ref.cluster.num_gpus = 256;
  ref.cluster.sim_steps = 200;
  ref.total_steps = 400;
  ref.async_eval = false;
  ref.cached_eval_set = true;
  TttResult r_ref = time_to_train(ref);

  TttConfig sf;
  sf.cluster.arch = GpuArch::h100();
  sf.cluster.num_gpus = 2048;
  sf.cluster.dap = 8;
  sf.cluster.toggles = Toggles::all_on();
  sf.cluster.sim_steps = 200;
  sf.total_steps = 400;
  sf.async_eval = true;  // +32 dedicated evaluation GPUs => 2080 total
  TttResult r_sf = time_to_train(sf);

  std::printf("%-44s | %10s | %10s\n", "configuration", "paper", "ours");
  std::printf("%-44s | %7.1f min | %7.1f min\n",
              "reference (256 H100, sync eval)", 45.0, r_ref.total_s / 60);
  std::printf("%-44s | %7.2f min | %7.2f min\n",
              "ScaleFold (2048+32 H100, DAP-8, async)", 7.51,
              r_sf.total_s / 60);

  std::printf("\nspeedup: paper >6x | ours %.1fx\n",
              r_ref.total_s / r_sf.total_s);
  std::printf("ScaleFold breakdown: init+compile %.1f min, train %.1f min "
              "(step %.3fs), eval tail %.1f min\n",
              r_sf.init_s / 60, r_sf.train_s / 60, r_sf.step_s,
              r_sf.eval_s / 60);

  // The paper's no-async ablation: ~11 minutes with 2048 GPUs doing both.
  TttConfig sync = sf;
  sync.async_eval = false;
  TttResult r_sync = time_to_train(sync);
  std::printf("\nwithout async evaluation (paper ~11 min): %.1f min\n",
              r_sync.total_s / 60);
  return 0;
}
