// Figure 11 reproduction: AlphaFold pretraining (initial training) from
// scratch. Two parts:
//   1. Paper scale (simulated): the two-phase schedule — global batch 128
//      on 1056 H100 for the first 5000 steps, then batch 256 on 2080 H100
//      with the Triton MHA kernel disabled — with the calibrated lDDT-Ca
//      convergence curve (>0.8 by step 5000, ~0.9 by 50-60k, <10 hours).
//   2. Mini scale (real): the mini-AlphaFold trained for real on synthetic
//      folds with the same batch-size-switch schedule, demonstrating the
//      rising lDDT-Ca curve shape end to end.
#include <cstdio>
#include <vector>

#include "core/session.h"
#include "sim/ttt.h"

using namespace sf;

int main() {
  std::printf("=== Fig. 11: AlphaFold pretraining from scratch ===\n\n");
  std::printf("--- paper scale (simulated schedule) ---\n");
  auto pre = sim::simulate_pretraining(55000);
  std::printf("phase 1 (bs128, 1024+32 H100, steps 0-5000):   %6.2f h\n",
              pre.phase1_s / 3600);
  std::printf("phase 2 (bs256, 2048+32 H100, MHA kernel off): %6.2f h\n",
              pre.phase2_s / 3600);
  std::printf("total (paper: < 10 h, was 7 days):             %6.2f h\n",
              pre.total_s / 3600);
  std::printf("\nlDDT-Ca curve (calibrated to the paper's anchors):\n");
  std::printf("%10s | %8s\n", "step", "lddt_ca");
  for (int64_t s : {500, 1000, 2500, 5000, 10000, 20000, 35000, 55000}) {
    std::printf("%10lld | %8.3f%s\n", static_cast<long long>(s),
                sim::pretraining_lddt_at_step(s),
                s == 5000 ? "   <- gate: must exceed 0.8 (paper)" : "");
  }
  std::printf("final lddt at 55k steps: %.3f (paper target 0.9)\n",
              pre.final_lddt);

  // --- mini scale: real training of the mini-AlphaFold ---
  std::printf("\n--- mini scale (real training, synthetic folds) ---\n");
  core::ScaleFoldOptions o;
  o.dataset.num_samples = 140;
  o.dataset.crop_len = 10;
  o.dataset.msa_rows = 3;
  o.dataset.msa_work_cap = 40;
  o.dataset.min_seq_len = 10;
  o.dataset.max_seq_len = 64;
  o.dataset.len_log_mean = 3.2;
  o.dataset.seed = 11;
  o.model.c_m = 8;
  o.model.c_z = 8;
  o.model.c_s = 8;
  o.model.heads = 2;
  o.model.head_dim = 4;
  o.model.evoformer_blocks = 1;
  o.model.use_extra_msa_stack = false;
  o.model.use_template_stack = false;
  o.model.opm_dim = 2;
  o.model.transition_factor = 2;
  o.model.structure_layers = 1;
  o.train.base_lr = 4e-3f;
  o.train.warmup_steps = 10;
  o.train.min_recycles = 1;
  o.train.max_recycles = 1;
  o.train.opt.clip_norm = 5.0f;
  o.train.opt.swa_decay = 0.9f;  // short runs: SWA must track quickly
  o.eval_samples = 4;
  o.async_eval = false;
  core::TrainingSession session(o);

  // Phase 1: "bs 2" accumulated steps; phase 2 would double the batch — at
  // mini scale we mimic the switch by doubling steps-per-eval cadence.
  std::printf("%6s | %10s | %10s | %8s\n", "step", "train loss", "train lddt",
              "eval lddt");
  const int rounds = 8, steps_per_round = 12;
  for (int round = 0; round < rounds; ++round) {
    auto records = session.run(steps_per_round);
    double loss = 0, lddt = 0;
    for (const auto& r : records) {
      loss += r.loss;
      lddt += r.lddt;
    }
    loss /= records.size();
    lddt /= records.size();
    auto eval = session.evaluate_now();
    std::printf("%6lld | %10.3f | %10.3f | %8.3f%s\n",
                static_cast<long long>(records.back().step), loss, lddt,
                eval.avg_lddt,
                round == 3 ? "   <- batch-size switch (paper: step 5000)"
                           : "");
  }
  std::printf("\nshape check: training lDDT-Ca rises as loss falls — the "
              "curve of Fig. 11 at laptop scale.\n");
  return 0;
}
