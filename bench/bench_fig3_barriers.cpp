// Figure 3 reproduction: breakdown of the factors preventing the AlphaFold
// training from achieving better DAP scalability. Numbers are the relative
// difference between the simulated actual step time and the theoretically
// optimal time, attributed per factor (CPU overhead, serial modules,
// imbalanced communication, kernel scalability, communication overhead).
#include <cstdio>

#include "sim/cluster.h"

int main() {
  using namespace sf::sim;

  std::printf("=== Fig. 3: Barriers to AlphaFold's training scalability ===\n");
  std::printf("(relative gap vs theoretically optimal step time, 128 H100,\n");
  std::printf(" baseline toggles — the configuration the paper analyses)\n\n");
  std::printf("%-8s | %12s | %12s | %12s | %12s | %12s | %10s\n", "DAP-n",
              "cpu-overhead", "serial-mod", "imbal-comm", "kernel-scal",
              "comm-ovh", "total-gap");
  for (int dap : {2, 4, 8}) {
    ClusterConfig cfg;
    cfg.arch = GpuArch::h100();
    cfg.num_gpus = 128;
    cfg.dap = dap;
    cfg.sim_steps = 300;
    BarrierBreakdown b = barrier_breakdown(cfg);
    std::printf("DAP-%-4d | %11.2f%% | %11.2f%% | %11.2f%% | %11.2f%% | "
                "%11.2f%% | %9.2f%%\n",
                dap, b.cpu_overhead * 100, b.serial_modules * 100,
                b.imbalanced_comm * 100, b.kernel_scalability * 100,
                b.comm_overhead * 100, b.total_gap * 100);
  }
  std::printf(
      "\nPaper shape: CPU overhead and serial modules dominate at DAP-2;\n"
      "imbalanced communication and kernel scalability grow with DAP "
      "degree.\n");

  std::printf("\n--- DAP speedup of the un-optimized baseline (paper: "
              "DAP-2 1.42x, DAP-4 1.57x, DAP-8 ~none) ---\n");
  ClusterConfig base;
  base.arch = GpuArch::h100();
  base.num_gpus = 128;
  base.sim_steps = 300;
  double t1 = simulate_step_time(base).mean_step_s;
  for (int dap : {2, 4, 8}) {
    ClusterConfig cfg = base;
    cfg.dap = dap;
    double t = simulate_step_time(cfg).mean_step_s;
    std::printf("DAP-%d: %.2fs (%.2fx vs DAP-1 %.2fs)\n", dap, t, t1 / t, t1);
  }
  return 0;
}
