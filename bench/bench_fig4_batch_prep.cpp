// Figure 4 reproduction: sorted batch-preparation times of the training
// dataset. The paper's plot spans roughly three decades with a ~10% slow
// tail that blocks the in-order data pipeline. Here the distribution is
// *measured* by running the real featurizer over the synthetic dataset,
// whose sequence-length / MSA-depth joint distribution mirrors the PDB.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/protein_sample.h"

int main() {
  using namespace sf::data;
  DatasetConfig cfg;
  cfg.num_samples = 600;
  cfg.crop_len = 32;
  cfg.msa_rows = 4;
  cfg.msa_work_cap = 3000;
  cfg.seed = 2024;
  SyntheticProteinDataset ds(cfg);

  std::vector<double> prep(ds.size());
  for (int64_t i = 0; i < ds.size(); ++i) {
    prep[i] = ds.prepare_batch(i).prep_seconds;
  }
  std::sort(prep.begin(), prep.end());

  std::printf("=== Fig. 4: Sorted data batch preparation time ===\n");
  std::printf("(measured: real featurization of %lld synthetic samples)\n\n",
              static_cast<long long>(ds.size()));
  std::printf("%-12s | %12s\n", "percentile", "prep time");
  for (double p : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    size_t idx = std::min(prep.size() - 1,
                          static_cast<size_t>(p * prep.size()));
    std::printf("p%-11.0f | %9.3f ms\n", p * 100, prep[idx] * 1e3);
  }
  double median = prep[prep.size() / 2];
  double p99 = prep[prep.size() * 99 / 100];
  double mx = prep.back();
  std::printf("\nspread: p99/median = %.1fx, max/median = %.1fx", p99 / median,
              mx / median);
  std::printf("  (paper: ~3 decades between fastest and slowest)\n");

  int64_t slow = 0;
  for (double t : prep) slow += t > 4 * median;
  std::printf("batches slower than 4x median: %.1f%%  (paper: ~10%% of "
              "batches blocked the pipeline)\n",
              100.0 * slow / prep.size());

  // Compact sorted curve (20 buckets), the shape of the figure itself.
  std::printf("\nsorted curve (relative to median):\n");
  for (int b = 0; b < 20; ++b) {
    size_t idx = std::min(prep.size() - 1, prep.size() * b / 19);
    double rel = prep[idx] / median;
    int bars = std::min(60, static_cast<int>(rel * 4));
    std::printf("%5.1f%% %7.2fx |", 100.0 * b / 19, rel);
    for (int k = 0; k < bars; ++k) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
