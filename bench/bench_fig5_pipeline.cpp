// Figure 5 reproduction: the default (in-order) PyTorch-style data
// pipeline vs ScaleFold's non-blocking ready-first pipeline, run for real
// with the paper's exact scenario — a slow batch "b" that takes longer
// than a training step while a later batch "c" is already done.
//
// Measured quantities: consumer idle time and yield order, for the
// blocking and non-blocking loaders on identical worker pools.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "data/loader.h"

using namespace sf;
using namespace sf::data;

namespace {

struct RunResult {
  double total_s = 0;
  double idle_s = 0;
  std::vector<int64_t> order;
};

RunResult run(YieldPolicy policy, const std::vector<int>& delays_ms,
              int step_ms) {
  LoaderConfig lc;
  lc.policy = policy;
  lc.num_workers = 2;
  lc.max_in_flight = 4;
  PrefetchLoader loader(
      [&delays_ms](int64_t i) {
        if (delays_ms[i] > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delays_ms[i]));
        }
        Batch b;
        b.index = i;
        return b;
      },
      static_cast<int64_t>(delays_ms.size()), lc);

  RunResult r;
  Timer total;
  while (loader.has_next()) {
    Timer wait;
    Batch b = loader.next();
    r.idle_s += wait.elapsed();
    r.order.push_back(b.index);
    std::this_thread::sleep_for(std::chrono::milliseconds(step_ms));  // step
  }
  r.total_s = total.elapsed();
  return r;
}

void print_run(const char* name, const RunResult& r) {
  std::printf("%-22s total %7.1f ms | consumer idle %7.1f ms | order: ", name,
              r.total_s * 1e3, r.idle_s * 1e3);
  for (int64_t i : r.order) std::printf("%lld ", static_cast<long long>(i));
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: default vs non-blocking data pipeline ===\n\n");
  // The paper's scenario scaled ms-for-s: batch 'b' (index 1) takes 7
  // units, training steps take 6; batch 'c' (index 2) is fast and ready.
  std::vector<int> delays = {10, 140, 10, 10, 10, 10, 10, 10};
  const int step_ms = 60;

  std::printf("scenario: batch prep (ms):");
  for (int d : delays) std::printf(" %d", d);
  std::printf(", training step %d ms\n\n", step_ms);

  RunResult blocking = run(YieldPolicy::kInOrder, delays, step_ms);
  RunResult ready = run(YieldPolicy::kReadyFirst, delays, step_ms);
  print_run("(i)  in-order:", blocking);
  print_run("(ii) non-blocking:", ready);

  std::printf("\nidle-time reduction: %.1fx  (paper: slow batch no longer "
              "blocks the training process)\n",
              blocking.idle_s / std::max(1e-9, ready.idle_s));

  // Larger randomized run with a straggler tail.
  std::printf("\n--- 64-batch run, 10%% stragglers (8x slower) ---\n");
  std::vector<int> big(64, 8);
  for (size_t i = 5; i < big.size(); i += 10) big[i] = 64;
  RunResult big_block = run(YieldPolicy::kInOrder, big, 8);
  RunResult big_ready = run(YieldPolicy::kReadyFirst, big, 8);
  std::printf("in-order:     total %7.1f ms, idle %7.1f ms\n",
              big_block.total_s * 1e3, big_block.idle_s * 1e3);
  std::printf("non-blocking: total %7.1f ms, idle %7.1f ms\n",
              big_ready.total_s * 1e3, big_ready.idle_s * 1e3);
  std::printf("throughput gain: %.2fx\n", big_block.total_s / big_ready.total_s);
  return 0;
}
