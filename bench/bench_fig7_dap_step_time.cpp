// Figure 7 reproduction: ScaleFold step time across DAP degrees vs public
// OpenFold and FastFold (batch size 128). Baseline numbers quoted from the
// paper (which itself quotes FastFold); ScaleFold rows are simulated by
// this repo's cluster model.
#include <cstdio>

#include "sim/cluster.h"

using namespace sf::sim;

namespace {

double scalefold_step(const GpuArch& arch, int dap) {
  ClusterConfig cfg;
  cfg.arch = arch;
  cfg.num_gpus = 128;
  cfg.dap = dap;
  cfg.sim_steps = 300;
  cfg.toggles = Toggles::all_on();
  if (dap == 1) {
    // CUDA Graph "is not beneficial for DAP-1" and checkpointing stays on
    // (no DAP memory headroom): the paper's DAP-1 row.
    cfg.toggles.cuda_graph = false;
    cfg.toggles.disable_grad_ckpt = false;
  }
  return simulate_step_time(cfg).mean_step_s;
}

}  // namespace

int main() {
  std::printf("=== Fig. 7: step time vs DAP-n (batch size 128) ===\n\n");
  std::printf("%-34s | %10s | %10s\n", "configuration", "paper (s)", "ours (s)");
  std::printf("-----------------------------------+------------+-----------\n");
  std::printf("%-34s | %10.2f | %10s\n", "OpenFold (public), A100, no DAP",
              6.19, "(quoted)");
  std::printf("%-34s | %10.2f | %10s\n", "FastFold, A100, DAP-2", 2.49,
              "(quoted)");

  GpuArch a100 = GpuArch::a100();
  GpuArch h100 = GpuArch::h100();
  std::printf("%-34s | %10.2f | %10.2f\n", "ScaleFold, A100, DAP-2", 1.88,
              scalefold_step(a100, 2));
  struct Row {
    int dap;
    double paper;
  } rows[] = {{1, 1.80}, {2, 1.12}, {4, 0.75}, {8, 0.65}};
  for (const auto& r : rows) {
    char name[64];
    std::snprintf(name, sizeof(name), "ScaleFold, H100, DAP-%d", r.dap);
    std::printf("%-34s | %10.2f | %10.2f\n", name, r.paper,
                scalefold_step(h100, r.dap));
  }

  double t1 = scalefold_step(h100, 1);
  std::printf("\nDAP speedups vs DAP-1 on H100 (paper: 1.6x / 2.4x / 2.77x):\n");
  for (int dap : {2, 4, 8}) {
    std::printf("  DAP-%d: %.2fx\n", dap, t1 / scalefold_step(h100, dap));
  }
  return 0;
}
