// Figure 8 reproduction: step-by-step step-time improvement on A100 and
// H100 — the optimization waterfall. Each row enables one more ScaleFold
// optimization cumulatively, in the paper's order, and reports the
// simulated step time plus incremental and cumulative speedups.
//
// The waterfall is also emitted as a Chrome-trace JSON (one track per
// arch, one nested "step:<stage>" span per row with its phase breakdown
// as children) via the sf_obs tracer — open the file in chrome://tracing
// or https://ui.perfetto.dev to see the steps shrink stage by stage.
// Output path: $SCALEFOLD_TRACE_FILE, default "fig8_trace.json".
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/cluster.h"
#include "sim/trace_emit.h"

using namespace sf::sim;

namespace {

struct Stage {
  const char* name;
  std::function<void(ClusterConfig&)> apply;
  double paper_incremental;  ///< speedup the paper attributes to this stage
};

void run_arch(const GpuArch& arch, double paper_ref_step, uint32_t track) {
  ClusterConfig cfg;
  cfg.arch = arch;
  cfg.num_gpus = 128;
  cfg.dap = 1;
  cfg.sim_steps = 300;

  std::vector<Stage> stages = {
      {"reference model", [](ClusterConfig&) {}, 1.0},
      {"+ batched GEMM",
       [](ClusterConfig& c) { c.toggles.batched_gemm = true; }, 1.03},
      {"+ non-blocking dataloader",
       [](ClusterConfig& c) { c.toggles.nonblocking_loader = true; }, 1.04},
      {"+ bfloat16",
       [](ClusterConfig& c) { c.toggles.bf16 = true; }, 1.24},
      {"+ Triton MHA",
       [](ClusterConfig& c) { c.toggles.triton_mha = true; }, 1.12},
      {"+ Triton LayerNorm",
       [](ClusterConfig& c) { c.toggles.triton_ln = true; }, 1.13},
      {"+ FusedAdam+SWA (+clip overlap)",
       [](ClusterConfig& c) { c.toggles.fused_adam_swa = true; }, 1.17},
      {"+ DAP-8 + CUDA Graph + no ckpt",
       [](ClusterConfig& c) {
         c.dap = 8;
         c.toggles.cuda_graph = true;
         c.toggles.disable_grad_ckpt = true;
       },
       1.79},
      {"+ disable Python GC",
       [](ClusterConfig& c) { c.toggles.disable_gc = true; }, 1.13},
      {"+ torch.compile",
       [](ClusterConfig& c) { c.toggles.torch_compile = true; }, 1.17},
  };

  std::printf("--- %s (paper reference step %.2fs) ---\n", arch.name.c_str(),
              paper_ref_step);
  std::printf("%-34s | %8s | %8s | %9s | %10s\n", "stage", "step(s)",
              "incr(x)", "cumul(x)", "paper incr");
  double ref = 0, prev = 0;
  double cursor_us = 0.0;
  for (const auto& stage : stages) {
    stage.apply(cfg);
    StepStats stats = simulate_step_time(cfg);
    // One simulated step per waterfall row, tiled on this arch's track:
    // the Chrome row shrinks stage by stage, phases visible as children.
    cursor_us = emit_step_trace(stage.name, stats, cursor_us, track);
    double t = stats.mean_step_s;
    if (ref == 0) {
      ref = prev = t;
    }
    std::printf("%-34s | %8.3f | %8.2f | %9.2f | %10.2f\n", stage.name, t,
                prev / t, ref / t, stage.paper_incremental);
    prev = t;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The waterfall trace is this bench's product, so tracing is on
  // regardless of SCALEFOLD_TRACE.
  sf::obs::set_trace_enabled(true);

  std::printf("=== Fig. 8: step-by-step step-time improvement ===\n\n");
  run_arch(GpuArch::a100(), 6.76, /*track=*/100);
  run_arch(GpuArch::h100(), 4.07, /*track=*/101);
  std::printf("paper: overall ~6.2x speedup vs the reference model on "
              "H100.\n");

  // The paper's CUDA-Graph ablation: without graph capture, eager DAP-8 is
  // slower than eager DAP-4.
  std::printf("\n--- CUDA Graph ablation at high DAP (H100, all other "
              "optimizations on) ---\n");
  uint32_t track = 102;
  for (bool graph : {false, true}) {
    ClusterConfig cfg;
    cfg.arch = GpuArch::h100();
    cfg.num_gpus = 128;
    cfg.sim_steps = 300;
    cfg.toggles = Toggles::all_on();
    cfg.toggles.cuda_graph = graph;
    std::printf("cuda_graph=%-5s :", graph ? "on" : "off");
    double cursor_us = 0.0;
    for (int dap : {1, 2, 4, 8}) {
      cfg.dap = dap;
      StepStats stats = simulate_step_time(cfg);
      cursor_us = emit_step_trace(
          std::string(graph ? "graph" : "eager") + " DAP-" +
              std::to_string(dap),
          stats, cursor_us, track);
      std::printf("  DAP-%d %.3fs", dap, stats.mean_step_s);
    }
    ++track;
    std::printf("\n");
  }
  std::printf("(paper: without CUDA Graph, DAP-8 achieved only 1.52x — "
              "below DAP-4)\n");

  const char* env = std::getenv("SCALEFOLD_TRACE_FILE");
  const std::string path = env && *env ? env : "fig8_trace.json";
  sf::obs::write_chrome_trace(path);
  std::printf("\nwrote %zu trace events to %s (open in chrome://tracing "
              "or ui.perfetto.dev)\n",
              sf::obs::event_count(), path.c_str());
  return 0;
}
