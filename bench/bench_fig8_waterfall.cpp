// Figure 8 reproduction: step-by-step step-time improvement on A100 and
// H100 — the optimization waterfall. Each row enables one more ScaleFold
// optimization cumulatively, in the paper's order, and reports the
// simulated step time plus incremental and cumulative speedups.
#include <cstdio>
#include <functional>
#include <vector>

#include "sim/cluster.h"

using namespace sf::sim;

namespace {

struct Stage {
  const char* name;
  std::function<void(ClusterConfig&)> apply;
  double paper_incremental;  ///< speedup the paper attributes to this stage
};

void run_arch(const GpuArch& arch, double paper_ref_step) {
  ClusterConfig cfg;
  cfg.arch = arch;
  cfg.num_gpus = 128;
  cfg.dap = 1;
  cfg.sim_steps = 300;

  std::vector<Stage> stages = {
      {"reference model", [](ClusterConfig&) {}, 1.0},
      {"+ batched GEMM",
       [](ClusterConfig& c) { c.toggles.batched_gemm = true; }, 1.03},
      {"+ non-blocking dataloader",
       [](ClusterConfig& c) { c.toggles.nonblocking_loader = true; }, 1.04},
      {"+ bfloat16",
       [](ClusterConfig& c) { c.toggles.bf16 = true; }, 1.24},
      {"+ Triton MHA",
       [](ClusterConfig& c) { c.toggles.triton_mha = true; }, 1.12},
      {"+ Triton LayerNorm",
       [](ClusterConfig& c) { c.toggles.triton_ln = true; }, 1.13},
      {"+ FusedAdam+SWA (+clip overlap)",
       [](ClusterConfig& c) { c.toggles.fused_adam_swa = true; }, 1.17},
      {"+ DAP-8 + CUDA Graph + no ckpt",
       [](ClusterConfig& c) {
         c.dap = 8;
         c.toggles.cuda_graph = true;
         c.toggles.disable_grad_ckpt = true;
       },
       1.79},
      {"+ disable Python GC",
       [](ClusterConfig& c) { c.toggles.disable_gc = true; }, 1.13},
      {"+ torch.compile",
       [](ClusterConfig& c) { c.toggles.torch_compile = true; }, 1.17},
  };

  std::printf("--- %s (paper reference step %.2fs) ---\n", arch.name.c_str(),
              paper_ref_step);
  std::printf("%-34s | %8s | %8s | %9s | %10s\n", "stage", "step(s)",
              "incr(x)", "cumul(x)", "paper incr");
  double ref = 0, prev = 0;
  for (const auto& stage : stages) {
    stage.apply(cfg);
    double t = simulate_step_time(cfg).mean_step_s;
    if (ref == 0) {
      ref = prev = t;
    }
    std::printf("%-34s | %8.3f | %8.2f | %9.2f | %10.2f\n", stage.name, t,
                prev / t, ref / t, stage.paper_incremental);
    prev = t;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Fig. 8: step-by-step step-time improvement ===\n\n");
  run_arch(GpuArch::a100(), 6.76);
  run_arch(GpuArch::h100(), 4.07);
  std::printf("paper: overall ~6.2x speedup vs the reference model on "
              "H100.\n");

  // The paper's CUDA-Graph ablation: without graph capture, eager DAP-8 is
  // slower than eager DAP-4.
  std::printf("\n--- CUDA Graph ablation at high DAP (H100, all other "
              "optimizations on) ---\n");
  for (bool graph : {false, true}) {
    ClusterConfig cfg;
    cfg.arch = GpuArch::h100();
    cfg.num_gpus = 128;
    cfg.sim_steps = 300;
    cfg.toggles = Toggles::all_on();
    cfg.toggles.cuda_graph = graph;
    std::printf("cuda_graph=%-5s :", graph ? "on" : "off");
    for (int dap : {1, 2, 4, 8}) {
      cfg.dap = dap;
      std::printf("  DAP-%d %.3fs", dap, simulate_step_time(cfg).mean_step_s);
    }
    std::printf("\n");
  }
  std::printf("(paper: without CUDA Graph, DAP-8 achieved only 1.52x — "
              "below DAP-4)\n");
  return 0;
}
