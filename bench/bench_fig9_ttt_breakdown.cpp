// Figure 9 reproduction: time-to-train breakdown. As ScaleFold drives the
// step time down, synchronous evaluation's share of the total grows (the
// paper reports 22% -> 43%) until asynchronous evaluation removes it from
// the critical path, leaving ~2 minutes of init/compile plus training.
//
// Each scenario is also emitted as a nested init/train/eval span on its
// own Chrome-trace track; $SCALEFOLD_TRACE_FILE (default
// "fig9_trace.json") gets the timeline for chrome://tracing / Perfetto.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/trace.h"
#include "sim/cluster.h"
#include "sim/trace_emit.h"
#include "sim/ttt.h"

using namespace sf::sim;

namespace {

uint32_t g_track = 110;

void report(const char* name, const TttConfig& cfg) {
  TttResult r = time_to_train(cfg);
  double eval_share = r.eval_s / r.total_s * 100;
  std::printf("%-40s | init %5.1f | train %6.1f | eval %6.1f | total %6.1f "
              "| eval%% %5.1f\n",
              name, r.init_s / 60, r.train_s / 60, r.eval_s / 60,
              r.total_s / 60, eval_share);
  emit_ttt_trace(name, r, 0.0, g_track++);
}

}  // namespace

int main() {
  // Like Fig. 8, the timeline trace is part of this bench's product.
  sf::obs::set_trace_enabled(true);

  std::printf("=== Fig. 9: time-to-train breakdown (minutes) ===\n");
  std::printf("(MLPerf-style partial convergence, %d steps)\n\n", 400);

  TttConfig cfg;
  cfg.cluster.arch = GpuArch::h100();
  cfg.cluster.num_gpus = 256;
  cfg.cluster.sim_steps = 200;
  cfg.total_steps = 400;
  cfg.async_eval = false;
  cfg.cached_eval_set = true;

  // Reference: slow steps, sync eval => modest eval share (paper ~22%).
  report("reference, sync eval", cfg);

  // Optimized steps, still sync eval: eval share grows (paper ~43%).
  cfg.cluster.num_gpus = 2048;
  cfg.cluster.dap = 8;
  cfg.cluster.toggles = Toggles::all_on();
  report("ScaleFold steps, sync eval", cfg);

  // Eval set on disk instead of DRAM cache (the §3.4 caching ablation).
  cfg.cached_eval_set = false;
  report("ScaleFold steps, sync eval, disk set", cfg);
  cfg.cached_eval_set = true;

  // Async eval on 32 dedicated GPUs: off the critical path.
  cfg.async_eval = true;
  report("ScaleFold, async eval (32 eval GPUs)", cfg);

  std::printf("\npaper: eval share grew from 22%% to 43%% as steps got "
              "faster; async evaluation plus the DRAM eval cache removed "
              "it, leaving ~2 min init + training.\n");

  const char* env = std::getenv("SCALEFOLD_TRACE_FILE");
  const std::string path = env && *env ? env : "fig9_trace.json";
  sf::obs::write_chrome_trace(path);
  std::printf("wrote %zu trace events to %s\n", sf::obs::event_count(),
              path.c_str());
  return 0;
}
