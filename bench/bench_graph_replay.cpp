// Graph capture/replay microbenchmarks (§3.2 CUDA Graph analogue): eager
// dispatch vs captured replay for a fragmented op stream, with and without
// injected host CPU load, plus the elementwise pattern fuser
// (torch.compile analogue).
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/executor.h"
#include "graph/fuser.h"

using namespace sf;
using namespace sf::graph;

namespace {

// A fragmented program: many small elementwise ops, AlphaFold-style.
// Each op gets its own intermediate buffer (as a real allocator would
// produce), so the fuser's aliasing analysis can elide the temporaries.
struct Workload {
  std::vector<float> in;
  std::vector<std::vector<float>> bufs;
  Program program;
  Workload(int ops, int64_t n) : in(n, 1.0f) {
    Rng rng(3);
    fill_normal(rng, in.data(), n, 0.0f, 1.0f);
    bufs.resize(ops, std::vector<float>(n));
    const float* src = in.data();
    for (int i = 0; i < ops; ++i) {
      float* dst = bufs[i].data();
      program.add_elementwise("op" + std::to_string(i), src, dst, n,
                              {EwKind::kMulScalar, nullptr, 1.0001f});
      src = dst;
    }
  }
  float* out() { return bufs.back().data(); }
};

void BM_EagerDispatch(benchmark::State& state) {
  Workload w(200, state.range(0));
  Executor exec;
  for (auto _ : state) {
    exec.run_eager(w.program);
    benchmark::DoNotOptimize(w.out());
  }
}
BENCHMARK(BM_EagerDispatch)->Arg(256)->Arg(4096);

void BM_GraphReplay(benchmark::State& state) {
  Workload w(200, state.range(0));
  GraphExec graph(w.program);
  for (auto _ : state) {
    graph.replay();
    benchmark::DoNotOptimize(w.out());
  }
}
BENCHMARK(BM_GraphReplay)->Arg(256)->Arg(4096);

// Host CPU peaks: the robustness claim. Eager pays the injected load per
// launch; replay does not touch the dispatch path at all.
void BM_EagerUnderHostLoad(benchmark::State& state) {
  Workload w(50, 256);
  Executor exec;
  exec.set_host_load_hook(
      [] { std::this_thread::sleep_for(std::chrono::microseconds(20)); });
  for (auto _ : state) {
    exec.run_eager(w.program);
    benchmark::DoNotOptimize(w.out());
  }
}
BENCHMARK(BM_EagerUnderHostLoad);

void BM_ReplayUnderHostLoad(benchmark::State& state) {
  Workload w(50, 256);
  GraphExec graph(w.program);
  // Host load exists but replay never consults the dispatch path.
  for (auto _ : state) {
    graph.replay();
    benchmark::DoNotOptimize(w.out());
  }
}
BENCHMARK(BM_ReplayUnderHostLoad);

// torch.compile analogue: chains collapse into single passes. Buffers are
// sized beyond L2 so the eliminated memory passes dominate.
void BM_ChainUnfused(benchmark::State& state) {
  Workload w(16, 2 * 1000 * 1000);
  GraphExec graph(w.program);
  for (auto _ : state) {
    graph.replay();
    benchmark::DoNotOptimize(w.out());
  }
}
BENCHMARK(BM_ChainUnfused);

void BM_ChainFused(benchmark::State& state) {
  Workload w(16, 2 * 1000 * 1000);
  Program fused = fuse_elementwise_chains(w.program);
  GraphExec graph(fused);
  for (auto _ : state) {
    graph.replay();
    benchmark::DoNotOptimize(w.out());
  }
}
BENCHMARK(BM_ChainFused);

// Graph cache: amortized capture across recycling scenarios.
void BM_GraphCacheHitPath(benchmark::State& state) {
  Workload w(100, 512);
  GraphCache cache;
  auto builder = [&] { return w.program; };
  cache.get_or_capture("recycles=2", builder);  // warm
  for (auto _ : state) {
    auto& g = cache.get_or_capture("recycles=2", builder);
    g.replay();
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_GraphCacheHitPath);

}  // namespace
