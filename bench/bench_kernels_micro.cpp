// Kernel-level A/B microbenchmarks (§3.3.1 / §4.1 claims): naive vs fused
// LayerNorm, naive vs flash MHA with pair bias, separate vs batched
// pre-attention GEMMs, unfused vs fused Adam+SWA, concat vs bucketed grad
// norm, and bias+GELU fusion. The paper reports overall-step speedups
// (MHA 1.12x, LN 1.13x, FusedAdam+SWA 1.17x, batched GEMM 1.03x); these
// benches measure the per-kernel ratios that produce them.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "kernels/attention.h"
#include "obs/trace.h"
#include "kernels/bf16_kernels.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/layernorm.h"
#include "kernels/optimizer_kernels.h"

using namespace sf;
using namespace sf::kernels;

namespace {

std::vector<float> randoms(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  fill_normal(rng, v.data(), n, 0.0f, 1.0f);
  return v;
}

// ---- LayerNorm: AlphaFold dims are small (128/256 cols) ----------------

void BM_LayerNormNaive(benchmark::State& state) {
  const int64_t rows = state.range(0), cols = state.range(1);
  auto x = randoms(rows * cols, 1);
  auto gamma = randoms(cols, 2);
  auto beta = randoms(cols, 3);
  std::vector<float> y(rows * cols);
  for (auto _ : state) {
    layernorm_forward_naive(x.data(), gamma.data(), beta.data(), y.data(),
                            rows, cols, 1e-5f, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * cols * 8);
}
BENCHMARK(BM_LayerNormNaive)->Args({512, 128})->Args({512, 256})->Args({64, 128});

void BM_LayerNormFused(benchmark::State& state) {
  const int64_t rows = state.range(0), cols = state.range(1);
  auto x = randoms(rows * cols, 1);
  auto gamma = randoms(cols, 2);
  auto beta = randoms(cols, 3);
  std::vector<float> y(rows * cols);
  for (auto _ : state) {
    layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(),
                            rows, cols, 1e-5f, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * cols * 8);
}
BENCHMARK(BM_LayerNormFused)->Args({512, 128})->Args({512, 256})->Args({64, 128});

void BM_LayerNormBackwardNaive(benchmark::State& state) {
  const int64_t rows = 256, cols = 128;
  auto x = randoms(rows * cols, 4);
  auto gamma = randoms(cols, 5);
  auto beta = randoms(cols, 6);
  auto dy = randoms(rows * cols, 7);
  std::vector<float> y(rows * cols), dx(rows * cols), dg(cols), db(cols);
  LayerNormStats stats;
  layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(), rows,
                          cols, 1e-5f, &stats);
  for (auto _ : state) {
    layernorm_backward_naive(x.data(), gamma.data(), dy.data(), stats,
                             dx.data(), dg.data(), db.data(), rows, cols);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_LayerNormBackwardNaive);

void BM_LayerNormBackwardFused(benchmark::State& state) {
  const int64_t rows = 256, cols = 128;
  auto x = randoms(rows * cols, 4);
  auto gamma = randoms(cols, 5);
  auto beta = randoms(cols, 6);
  auto dy = randoms(rows * cols, 7);
  std::vector<float> y(rows * cols), dx(rows * cols), dg(cols), db(cols);
  LayerNormStats stats;
  layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(), rows,
                          cols, 1e-5f, &stats);
  for (auto _ : state) {
    layernorm_backward_fused(x.data(), gamma.data(), dy.data(), stats,
                             dx.data(), dg.data(), db.data(), rows, cols);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_LayerNormBackwardFused);

// ---- MHA with pair bias -------------------------------------------------

AttentionDims mha_dims(int64_t s) { return {4, 4, s, s, 16}; }

void BM_MhaNaive(benchmark::State& state) {
  AttentionDims d = mha_dims(state.range(0));
  auto q = randoms(d.qkv_numel(true), 1);
  auto k = randoms(d.qkv_numel(false), 2);
  auto v = randoms(d.qkv_numel(false), 3);
  auto bias = randoms(d.bias_numel(), 4);
  std::vector<float> out(d.qkv_numel(true));
  for (auto _ : state) {
    mha_forward_naive(d, q.data(), k.data(), v.data(), bias.data(), nullptr,
                      out.data(), nullptr);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MhaNaive)->Arg(32)->Arg(64)->Arg(128);

void BM_MhaFlash(benchmark::State& state) {
  AttentionDims d = mha_dims(state.range(0));
  auto q = randoms(d.qkv_numel(true), 1);
  auto k = randoms(d.qkv_numel(false), 2);
  auto v = randoms(d.qkv_numel(false), 3);
  auto bias = randoms(d.bias_numel(), 4);
  std::vector<float> out(d.qkv_numel(true));
  for (auto _ : state) {
    mha_forward_flash(d, q.data(), k.data(), v.data(), bias.data(), nullptr,
                      out.data(), nullptr, 64);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MhaFlash)->Arg(32)->Arg(64)->Arg(128);

// ---- pre-attention GEMM batching ---------------------------------------

void gemm_group_bench(benchmark::State& state, bool batched) {
  const int64_t m = 1024, k = 128, n = 64;  // Q,K,V,gate projections
  auto x = randoms(m * k, 1);
  std::vector<std::vector<float>> w(4, randoms(k * n, 2));
  std::vector<std::vector<float>> out(4, std::vector<float>(m * n));
  std::vector<const float*> wp;
  std::vector<float*> op;
  std::vector<int64_t> dims(4, n);
  for (int g = 0; g < 4; ++g) {
    wp.push_back(w[g].data());
    op.push_back(out[g].data());
  }
  for (auto _ : state) {
    if (batched) {
      linear_group_batched(x.data(), m, k, wp, dims, op);
    } else {
      linear_group_separate(x.data(), m, k, wp, dims, op);
    }
    benchmark::DoNotOptimize(out[0].data());
  }
}
void BM_QkvGemmSeparate(benchmark::State& s) { gemm_group_bench(s, false); }
void BM_QkvGemmBatched(benchmark::State& s) { gemm_group_bench(s, true); }
BENCHMARK(BM_QkvGemmSeparate);
BENCHMARK(BM_QkvGemmBatched);

// ---- Adam + SWA ----------------------------------------------------------

struct OptState {
  std::vector<std::vector<float>> p, g, m, v, s;
  std::vector<ParamChunk> chunks;
  OptState(int tensors, int per) {
    Rng rng(9);
    for (int t = 0; t < tensors; ++t) {
      p.push_back(randoms(per, t));
      g.push_back(randoms(per, 100 + t));
      m.push_back(std::vector<float>(per, 0.0f));
      v.push_back(std::vector<float>(per, 0.0f));
      s.push_back(p.back());
    }
    for (int t = 0; t < tensors; ++t) {
      chunks.push_back({p[t].data(), g[t].data(), m[t].data(), v[t].data(),
                        s[t].data(), per});
    }
  }
};

void BM_AdamSwaUnfused(benchmark::State& state) {
  OptState st(64, 2048);  // many small tensors, the AlphaFold shape
  AdamHyper h;
  int64_t step = 0;
  for (auto _ : state) {
    ++step;
    for (auto& c : st.chunks) {
      adam_step_unfused(c, h, step);
      swa_update_unfused(c.swa, c.param, c.n, 0.999f);
    }
    benchmark::DoNotOptimize(st.chunks.data());
  }
}
BENCHMARK(BM_AdamSwaUnfused);

void BM_AdamSwaFused(benchmark::State& state) {
  OptState st(64, 2048);
  AdamHyper h;
  int64_t step = 0;
  for (auto _ : state) {
    ++step;
    fused_adam_swa_step(st.chunks, h, step, 0.999f);
    benchmark::DoNotOptimize(st.chunks.data());
  }
}
BENCHMARK(BM_AdamSwaFused);

void BM_GradNormConcat(benchmark::State& state) {
  OptState st(128, 1024);
  for (auto _ : state) {
    float n = grad_norm_concat(st.chunks);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GradNormConcat);

void BM_GradNormBucketed(benchmark::State& state) {
  OptState st(128, 1024);
  std::vector<const float*> buckets;
  std::vector<int64_t> sizes;
  for (auto& c : st.chunks) {
    buckets.push_back(c.grad);
    sizes.push_back(c.n);
  }
  for (auto _ : state) {
    float n = grad_norm_bucketed(buckets, sizes);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GradNormBucketed);

// ---- bias + GELU fusion ---------------------------------------------------

void BM_BiasGeluUnfused(benchmark::State& state) {
  const int64_t rows = 4096, cols = 256;
  auto x = randoms(rows * cols, 1);
  auto bias = randoms(cols, 2);
  std::vector<float> tmp(rows * cols), y(rows * cols);
  for (auto _ : state) {
    bias_add(x.data(), bias.data(), tmp.data(), rows, cols);
    gelu_forward(tmp.data(), y.data(), rows * cols);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BiasGeluUnfused);

void BM_BiasGeluFused(benchmark::State& state) {
  const int64_t rows = 4096, cols = 256;
  auto x = randoms(rows * cols, 1);
  auto bias = randoms(cols, 2);
  std::vector<float> y(rows * cols);
  for (auto _ : state) {
    fused_bias_gelu(x.data(), bias.data(), y.data(), rows, cols);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BiasGeluFused);


// ---- bf16 storage: the memory-traffic halving behind the 1.24x ---------

void BM_StreamF32(benchmark::State& state) {
  const int64_t n = 8 * 1000 * 1000;  // 32 MB in, 32 MB out: beyond LLC
  auto x = randoms(n, 1);
  std::vector<float> y(n);
  for (auto _ : state) {
    axpb_f32(x.data(), y.data(), n, 1.0001f, 0.5f);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_StreamF32);

void BM_StreamBf16(benchmark::State& state) {
  const int64_t n = 8 * 1000 * 1000;  // 16 MB in, 16 MB out
  auto xf = randoms(n, 1);
  std::vector<BFloat16> x(n), y(n);
  to_bf16(xf.data(), x.data(), n);
  for (auto _ : state) {
    axpb_bf16(x.data(), y.data(), n, 1.0001f, 0.5f);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_StreamBf16);

void BM_ReduceF32(benchmark::State& state) {
  const int64_t n = 16 * 1000 * 1000;  // 64 MB
  auto x = randoms(n, 5);
  for (auto _ : state) {
    float s = reduce_f32(x.data(), n);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_ReduceF32);

void BM_ReduceBf16(benchmark::State& state) {
  const int64_t n = 16 * 1000 * 1000;  // 32 MB
  auto xf = randoms(n, 5);
  std::vector<BFloat16> x(n);
  to_bf16(xf.data(), x.data(), n);
  for (auto _ : state) {
    float s = reduce_bf16(x.data(), n);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_ReduceBf16);

void BM_LayerNormF32Large(benchmark::State& state) {
  const int64_t rows = 32768, cols = 256;  // 32 MB activations
  auto x = randoms(rows * cols, 2);
  auto gamma = randoms(cols, 3);
  auto beta = randoms(cols, 4);
  std::vector<float> y(rows * cols);
  for (auto _ : state) {
    layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(),
                            rows, cols, 1e-5f, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormF32Large);

// ---- tracing overhead: the <2% disabled-cost budget ---------------------
// Every kernel above carries an SF_TRACE_SPAN; with tracing off, the span
// constructor must cost one relaxed atomic load. BM_DisabledTraceSpan
// measures that cost in isolation; compare against any kernel benchmark
// (e.g. BM_LayerNormFused/{64,128} ~ microseconds) to confirm the <2%
// overhead bound. BM_EnabledTraceSpan shows the hot (recording) cost.

void BM_DisabledTraceSpan(benchmark::State& state) {
  sf::obs::set_trace_enabled(false);
  for (auto _ : state) {
    SF_TRACE_SPAN("bench", "disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_DisabledTraceSpan);

void BM_EnabledTraceSpan(benchmark::State& state) {
  sf::obs::set_trace_enabled(true);
  sf::obs::reset();
  for (auto _ : state) {
    SF_TRACE_SPAN("bench", "enabled");
    benchmark::ClobberMemory();
  }
  sf::obs::set_trace_enabled(false);
  sf::obs::reset();
}
BENCHMARK(BM_EnabledTraceSpan);

void BM_LayerNormFusedTracedOff(benchmark::State& state) {
  // The instrumented call path as shipped: layernorm_forward_fused already
  // contains its SF_TRACE_SPAN, so this measures kernel + disabled span —
  // directly comparable to BM_LayerNormFused numbers above.
  sf::obs::set_trace_enabled(false);
  const int64_t rows = 64, cols = 128;
  auto x = randoms(rows * cols, 1);
  auto gamma = randoms(cols, 2);
  auto beta = randoms(cols, 3);
  std::vector<float> y(rows * cols);
  for (auto _ : state) {
    layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(),
                            rows, cols, 1e-5f, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormFusedTracedOff);

// ---- intra-op thread scaling (SF_NUM_THREADS sweep) ---------------------
// Each benchmark takes the thread count as its last range argument and
// pins it via sf::set_num_threads; bench_parallel_scaling is the
// JSON-emitting CI gate, these give the same sweep inside the google-
// benchmark harness for quick comparisons.

void BM_GemmThreads(benchmark::State& state) {
  const int64_t dim = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  auto a = randoms(dim * dim, 1);
  auto b = randoms(dim * dim, 2);
  std::vector<float> c(dim * dim);
  sf::set_num_threads(threads);
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), dim, dim, dim);
    benchmark::DoNotOptimize(c.data());
  }
  sf::set_num_threads(0);
  state.SetItemsProcessed(state.iterations() * dim * dim * dim * 2);
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8});

void BM_MhaFlashThreads(benchmark::State& state) {
  AttentionDims d = mha_dims(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto q = randoms(d.qkv_numel(true), 1);
  auto k = randoms(d.qkv_numel(false), 2);
  auto v = randoms(d.qkv_numel(false), 3);
  auto bias = randoms(d.bias_numel(), 4);
  std::vector<float> out(d.qkv_numel(true));
  sf::set_num_threads(threads);
  for (auto _ : state) {
    mha_forward_flash(d, q.data(), k.data(), v.data(), bias.data(), nullptr,
                      out.data(), nullptr, 64);
    benchmark::DoNotOptimize(out.data());
  }
  sf::set_num_threads(0);
}
BENCHMARK(BM_MhaFlashThreads)
    ->Args({128, 1})->Args({128, 2})->Args({128, 4})->Args({128, 8});

void BM_LayerNormFusedThreads(benchmark::State& state) {
  const int64_t rows = 8192, cols = 256;
  const int threads = static_cast<int>(state.range(0));
  auto x = randoms(rows * cols, 1);
  auto gamma = randoms(cols, 2);
  auto beta = randoms(cols, 3);
  std::vector<float> y(rows * cols);
  sf::set_num_threads(threads);
  for (auto _ : state) {
    layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(),
                            rows, cols, 1e-5f, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  sf::set_num_threads(0);
  state.SetBytesProcessed(state.iterations() * rows * cols * 8);
}
BENCHMARK(BM_LayerNormFusedThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FusedAdamThreads(benchmark::State& state) {
  OptState st(64, 16384);
  const int threads = static_cast<int>(state.range(0));
  AdamHyper h;
  int64_t step = 0;
  sf::set_num_threads(threads);
  for (auto _ : state) {
    ++step;
    fused_adam_swa_step(st.chunks, h, step, 0.999f);
    benchmark::DoNotOptimize(st.chunks.data());
  }
  sf::set_num_threads(0);
}
BENCHMARK(BM_FusedAdamThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- SIMD tier sweep (SF_SIMD analogue) ---------------------------------
// Last range argument selects the sf::simd::Tier; tiers the host cannot
// run are skipped. bench_parallel_scaling is the JSON-emitting CI gate for
// the tier x thread matrix, these give the per-kernel scalar-vs-SIMD
// ratios inside the google-benchmark harness.

bool pin_tier_or_skip(benchmark::State& state, int64_t raw) {
  const auto tier = static_cast<sf::simd::Tier>(raw);
  if (!sf::simd::set_tier(tier)) {
    state.SkipWithError("SIMD tier unavailable on this host");
    return false;
  }
  state.SetLabel(sf::simd::tier_name(tier));
  return true;
}

void BM_GemmSimdTier(benchmark::State& state) {
  const int64_t dim = state.range(0);
  if (!pin_tier_or_skip(state, state.range(1))) return;
  auto a = randoms(dim * dim, 1);
  auto b = randoms(dim * dim, 2);
  std::vector<float> c(dim * dim);
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), dim, dim, dim);
    benchmark::DoNotOptimize(c.data());
  }
  sf::simd::clear_tier();
  state.SetItemsProcessed(state.iterations() * dim * dim * dim * 2);
}
BENCHMARK(BM_GemmSimdTier)
    ->Args({256, 0})->Args({256, 1})->Args({256, 2})->Args({256, 3});

void BM_LayerNormFusedSimdTier(benchmark::State& state) {
  const int64_t rows = 8192, cols = 256;
  if (!pin_tier_or_skip(state, state.range(0))) return;
  auto x = randoms(rows * cols, 1);
  auto gamma = randoms(cols, 2);
  auto beta = randoms(cols, 3);
  std::vector<float> y(rows * cols);
  for (auto _ : state) {
    layernorm_forward_fused(x.data(), gamma.data(), beta.data(), y.data(),
                            rows, cols, 1e-5f, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  sf::simd::clear_tier();
  state.SetBytesProcessed(state.iterations() * rows * cols * 8);
}
BENCHMARK(BM_LayerNormFusedSimdTier)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_FusedAdamSimdTier(benchmark::State& state) {
  OptState st(64, 16384);
  if (!pin_tier_or_skip(state, state.range(0))) return;
  AdamHyper h;
  int64_t step = 0;
  for (auto _ : state) {
    ++step;
    fused_adam_swa_step(st.chunks, h, step, 0.999f);
    benchmark::DoNotOptimize(st.chunks.data());
  }
  sf::simd::clear_tier();
}
BENCHMARK(BM_FusedAdamSimdTier)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_StreamBf16SimdTier(benchmark::State& state) {
  const int64_t n = 8 * 1000 * 1000;
  if (!pin_tier_or_skip(state, state.range(0))) return;
  auto xf = randoms(n, 1);
  std::vector<BFloat16> x(n), y(n);
  to_bf16(xf.data(), x.data(), n);
  for (auto _ : state) {
    axpb_bf16(x.data(), y.data(), n, 1.0001f, 0.5f);
    benchmark::DoNotOptimize(y.data());
  }
  sf::simd::clear_tier();
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_StreamBf16SimdTier)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_LayerNormBf16Large(benchmark::State& state) {
  const int64_t rows = 32768, cols = 256;  // 16 MB activations
  auto xf = randoms(rows * cols, 2);
  auto gamma = randoms(cols, 3);
  auto beta = randoms(cols, 4);
  std::vector<BFloat16> x(rows * cols), y(rows * cols);
  to_bf16(xf.data(), x.data(), xf.size());
  for (auto _ : state) {
    layernorm_forward_fused_bf16(x.data(), gamma.data(), beta.data(),
                                 y.data(), rows, cols, 1e-5f);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormBf16Large);

}  // namespace
