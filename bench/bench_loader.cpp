// Data-pipeline benchmark: blocking (in-order) vs non-blocking
// (ready-first) loaders driving a simulated training consumer over the
// real featurizer. The work list interleaves typical samples with the
// heavy tail of the Fig. 4 distribution (a straggler every ~10 batches),
// and reports consumer idle time — the quantity §3.2 eliminates.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "data/loader.h"
#include "data/protein_sample.h"

using namespace sf;
using namespace sf::data;

namespace {

struct Result {
  double total_s = 0;
  double idle_s = 0;
};

Result run(const SyntheticProteinDataset& ds,
           const std::vector<int64_t>& order, YieldPolicy policy,
           double step_s) {
  LoaderConfig lc;
  lc.policy = policy;
  lc.num_workers = 3;
  lc.max_in_flight = 6;
  PrefetchLoader loader(
      [&ds, &order](int64_t i) { return ds.prepare_batch(order[i]); },
      static_cast<int64_t>(order.size()), lc);
  Result r;
  Timer total;
  bool first = true;
  while (loader.has_next()) {
    Timer wait;
    Batch b = loader.next();
    if (!first) r.idle_s += wait.elapsed();  // exclude cold-start fill
    first = false;
    // Fixed-duration training step (compute is elsewhere in this repo).
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(step_s * 1e6)));
  }
  r.total_s = total.elapsed();
  return r;
}

}  // namespace

int main() {
  DatasetConfig cfg;
  cfg.num_samples = 400;
  cfg.crop_len = 32;
  cfg.msa_rows = 4;
  cfg.msa_work_cap = 4000;
  cfg.seed = 31;
  SyntheticProteinDataset ds(cfg);

  // Rank samples by featurization work and build the work list: 90% from
  // the light half, a heavy-tail sample every 10th batch (Fig. 4's ~10%
  // slow fraction).
  std::vector<int64_t> by_work(ds.size());
  for (int64_t i = 0; i < ds.size(); ++i) by_work[i] = i;
  auto work = [&](int64_t i) {
    const auto& m = ds.meta(i);
    return m.seq_len * std::min(m.msa_depth, cfg.msa_work_cap);
  };
  std::sort(by_work.begin(), by_work.end(),
            [&](int64_t a, int64_t b) { return work(a) < work(b); });
  std::vector<int64_t> order;
  for (int64_t i = 0; i < 80; ++i) {
    order.push_back(i % 10 == 5 ? by_work[ds.size() - 1 - (i / 10) % 8]
                                : by_work[i % 150]);
  }
  double light_ms = ds.prepare_batch(order[0]).prep_seconds * 1e3;
  double heavy_ms = ds.prepare_batch(order[5]).prep_seconds * 1e3;
  std::printf("=== Loader benchmark: in-order vs ready-first ===\n");
  std::printf("(real featurizer; light batch ~%.2f ms, straggler ~%.1f ms, "
              "3 workers, prefetch 6)\n\n",
              light_ms, heavy_ms);

  std::printf("%-12s | %-12s | %10s | %10s | %8s\n", "step time", "policy",
              "total (s)", "idle (s)", "idle %");
  for (double step_s : {0.008, 0.002}) {
    Result blocking = run(ds, order, YieldPolicy::kInOrder, step_s);
    Result ready = run(ds, order, YieldPolicy::kReadyFirst, step_s);
    std::printf("%9.0f us | %-12s | %10.3f | %10.3f | %7.1f%%\n", step_s * 1e6,
                "in-order", blocking.total_s, blocking.idle_s,
                100 * blocking.idle_s / blocking.total_s);
    std::printf("%9.0f us | %-12s | %10.3f | %10.3f | %7.1f%%\n", step_s * 1e6,
                "ready-first", ready.total_s, ready.idle_s,
                100 * ready.idle_s / ready.total_s);
    std::printf("%9.0f us | idle reduction: %.1fx, throughput gain: %.2fx\n\n",
                step_s * 1e6, blocking.idle_s / std::max(1e-4, ready.idle_s),
                blocking.total_s / ready.total_s);
  }
  std::printf("paper: the faster the training step, the more the in-order "
              "pipeline blocks (dataload optimization 'becomes increasingly "
              "high' in importance).\n");
  return 0;
}
