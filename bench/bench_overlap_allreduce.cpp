// Overlapped vs blocking DP gradient all-reduce (§3.3.1).
//
// For world sizes 2 and 4, trains the same model on the same batches
// through both gradient-communication paths of DataParallelTrainer —
// blocking per-tensor all-reduce vs bucketed async all-reduce launched by
// backward hooks (with the grad-clip norm overlapped) — sweeping the
// bucket capacity, and reports:
//   - best-of-trials mean step time per configuration,
//   - whether the overlapped parameters are *bitwise* identical to the
//     blocking ones after 5 steps (the determinism contract),
//   - the measured overlap fraction: the share of async-reduce time that
//     ran concurrently with some rank's backward pass (from the span
//     tracer) — the quantity calibrating
//     sim::calib::kGradCommExposedFrac.
//
// Output: BENCH_overlap.json (override with --out <path>).
//
// --check: exit non-zero on any bitwise mismatch (always), or — on hosts
// with >= 4 hardware threads — if the overlapped path at world size 4
// (default bucket size) is slower than blocking, or if no overlap was
// measured at all.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "data/protein_sample.h"
#include "obs/trace.h"
#include "train/data_parallel.h"

using namespace sf;

namespace {

constexpr int kSteps = 5;        // per trial: 1 warmup + 4 timed
constexpr int kTrials = 3;       // best-of
constexpr int64_t kDefaultBucket = 64 * 1024;
const int kWorldSizes[] = {2, 4};
const int64_t kBucketSweep[] = {16 * 1024, 64 * 1024, 256 * 1024};

model::ModelConfig bench_model() {
  model::ModelConfig c;
  c.crop_len = 16;
  c.msa_rows = 4;
  c.c_m = 16;
  c.c_z = 16;
  c.c_s = 16;
  c.heads = 2;
  c.head_dim = 8;
  c.evoformer_blocks = 2;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 4;
  c.transition_factor = 2;
  c.structure_layers = 1;
  return c;
}

train::TrainConfig train_cfg(bool overlap, int64_t bucket_bytes) {
  train::TrainConfig tc;
  tc.base_lr = 1e-3f;
  tc.warmup_steps = 0;
  tc.min_recycles = 1;
  tc.max_recycles = 1;
  tc.opt.clip_norm = 5.0f;
  tc.overlap_grad_comm = overlap;
  tc.grad_bucket_bytes = bucket_bytes;
  return tc;
}

std::vector<data::Batch> make_batches(int n) {
  data::DatasetConfig c;
  c.num_samples = n;
  c.crop_len = 16;
  c.msa_rows = 4;
  c.msa_work_cap = 64;
  c.seed = 31;
  data::SyntheticProteinDataset ds(c);
  std::vector<data::Batch> out;
  for (int i = 0; i < n; ++i) out.push_back(ds.prepare_batch(i));
  return out;
}

/// Run kSteps on a fresh trainer; returns the mean of the post-warmup
/// step times and (via out param) the trainer for param inspection.
double run_trial(int ws, bool overlap, int64_t bucket_bytes,
                 const std::vector<data::Batch>& batches,
                 std::unique_ptr<train::DataParallelTrainer>* keep) {
  auto dp = std::make_unique<train::DataParallelTrainer>(
      bench_model(), train_cfg(overlap, bucket_bytes), ws, /*model_seed=*/7);
  double total = 0.0;
  for (int s = 0; s < kSteps; ++s) {
    auto r = dp->train_step(batches);
    if (s > 0) total += r.seconds;
  }
  if (keep) *keep = std::move(dp);
  return total / (kSteps - 1);
}

/// Best-of-kTrials mean step time; keeps the first trial's trainer.
double best_mean_step(int ws, bool overlap, int64_t bucket_bytes,
                      const std::vector<data::Batch>& batches,
                      std::unique_ptr<train::DataParallelTrainer>* keep) {
  double best = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    double mean =
        run_trial(ws, overlap, bucket_bytes, batches, t == 0 ? keep : nullptr);
    best = t == 0 ? mean : std::min(best, mean);
  }
  return best;
}

bool params_bitwise_equal(train::DataParallelTrainer& a,
                          train::DataParallelTrainer& b) {
  auto pa = a.replica(0).params().all();
  auto pb = b.replica(0).params().all();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    const Tensor& ta = pa[i].value();
    const Tensor& tb = pb[i].value();
    if (ta.numel() != tb.numel()) return false;
    if (std::memcmp(ta.data(), tb.data(), sizeof(float) * ta.numel()) != 0) {
      return false;
    }
  }
  return true;
}

struct Interval {
  double lo, hi;
};

/// Merge to disjoint intervals.
std::vector<Interval> merged(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> out;
  for (const Interval& i : v) {
    if (!out.empty() && i.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, i.hi);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

/// Share of async-reduce span time that overlapped some rank's backward
/// span, from the current trace buffer.
double measured_overlap_fraction() {
  std::vector<Interval> backward;
  std::vector<Interval> reduce;
  for (const obs::TraceEvent& e : obs::snapshot()) {
    if (e.dur_us <= 0) continue;
    if (std::strcmp(e.category, "ddp") == 0 && e.name == "backward") {
      backward.push_back({e.ts_us, e.ts_us + e.dur_us});
    } else if (std::strcmp(e.category, "dap") == 0 &&
               e.name == "async_reduce") {
      reduce.push_back({e.ts_us, e.ts_us + e.dur_us});
    }
  }
  backward = merged(std::move(backward));
  double total = 0.0, hidden = 0.0;
  for (const Interval& r : reduce) {
    total += r.hi - r.lo;
    for (const Interval& b : backward) {
      hidden += std::max(0.0, std::min(r.hi, b.hi) - std::max(r.lo, b.lo));
    }
  }
  return total > 0 ? hidden / total : 0.0;
}

/// Traced overlapped run (separate from the timed trials so tracing
/// overhead never pollutes the timings).
double overlap_fraction_for(int ws, int64_t bucket_bytes,
                            const std::vector<data::Batch>& batches) {
  obs::reset();
  obs::set_trace_enabled(true);
  train::DataParallelTrainer dp(bench_model(), train_cfg(true, bucket_bytes),
                                ws, 7);
  for (int s = 0; s < 2; ++s) dp.train_step(batches);
  obs::set_trace_enabled(false);
  double frac = measured_overlap_fraction();
  obs::reset();
  return frac;
}

struct Row {
  int world_size;
  std::string mode;  // "blocking" | "overlapped"
  int64_t bucket_bytes;
  double mean_step_s;
  bool bitwise_match;
  double overlap_fraction;
};

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream f(path);
  f << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    f << "  {\"world_size\": " << r.world_size << ", \"mode\": \"" << r.mode
      << "\", \"bucket_bytes\": " << r.bucket_bytes
      << ", \"mean_step_s\": " << r.mean_step_s
      << ", \"bitwise_match\": " << (r.bitwise_match ? "true" : "false")
      << ", \"overlap_fraction\": " << r.overlap_fraction << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_overlap.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--out path]\n", argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("overlapped bucketed all-reduce vs blocking (hardware threads: "
              "%u)\n\n",
              hw);

  std::vector<Row> rows;
  bool all_bitwise = true;
  double blocking_ws4 = 0.0, overlapped_ws4 = 0.0, frac_ws4 = 0.0;

  for (int ws : kWorldSizes) {
    auto batches = make_batches(ws);
    std::unique_ptr<train::DataParallelTrainer> ref;
    const double t_blocking = best_mean_step(ws, false, 0, batches, &ref);
    rows.push_back({ws, "blocking", 0, t_blocking, true, 0.0});
    std::printf("ws=%d %-10s              %8.2f ms/step\n", ws, "blocking",
                t_blocking * 1e3);
    if (ws == 4) blocking_ws4 = t_blocking;

    for (int64_t bb : kBucketSweep) {
      std::unique_ptr<train::DataParallelTrainer> dp;
      const double t = best_mean_step(ws, true, bb, batches, &dp);
      const bool bitwise = params_bitwise_equal(*ref, *dp);
      all_bitwise = all_bitwise && bitwise;
      const double frac = overlap_fraction_for(ws, bb, batches);
      rows.push_back({ws, "overlapped", bb, t, bitwise, frac});
      std::printf(
          "ws=%d %-10s %5lld KiB   %8.2f ms/step  %5.2fx  overlap %4.0f%%  "
          "%s\n",
          ws, "overlapped", static_cast<long long>(bb / 1024), t * 1e3,
          t > 0 ? t_blocking / t : 0.0, frac * 100.0,
          bitwise ? "bitwise-ok" : "MISMATCH");
      if (ws == 4 && bb == kDefaultBucket) {
        overlapped_ws4 = t;
        frac_ws4 = frac;
      }
    }
    std::printf("\n");
  }

  write_json(rows, out_path);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());

  if (check) {
    if (!all_bitwise) {
      std::fprintf(stderr,
                   "FAIL: overlapped parameters diverged bitwise from the "
                   "blocking path\n");
      return 1;
    }
    if (hw >= 4) {
      if (overlapped_ws4 > blocking_ws4) {
        std::fprintf(stderr,
                     "FAIL: overlapped path slower than blocking at world "
                     "size 4 (%.2f ms > %.2f ms)\n",
                     overlapped_ws4 * 1e3, blocking_ws4 * 1e3);
        return 1;
      }
      if (frac_ws4 <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: no comm/backward overlap measured at world size "
                     "4\n");
        return 1;
      }
    } else {
      std::printf(
          "note: host has %u hardware thread(s); the ws=4 speed and overlap "
          "gates are skipped (bitwise identity still enforced)\n",
          hw);
    }
    std::printf("check passed\n");
  }
  return 0;
}
