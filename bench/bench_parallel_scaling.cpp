// Intra-op parallel scaling sweep: runs the parallelized hot kernels
// (GEMM incl. transposed paths, flash MHA forward+backward, fused
// LayerNorm forward+backward, fused Adam+SWA, bucketed grad norm) at
// SF_NUM_THREADS in {1, 2, 4, 8} under both the forced-scalar SIMD tier
// and the best native tier, and reports ns/iter, speedup vs one thread,
// and — the determinism contract — whether the outputs are bitwise
// identical to the forced-scalar 1-thread reference.
//
// Output: BENCH_kernels.json (override with --out <path>), an array of
//   {"kernel":..., "shape":..., "simd":"scalar|sse|avx2|neon",
//    "threads":N, "ns_per_iter":..., "speedup_vs_1t":...,
//    "bitwise_match":true}
//
// --check: exit non-zero if any bitwise mismatch is found (always), or if
// the aggregate GEMM speedup at 4 threads (native tier) is below 2.5x —
// the latter only enforced when the host actually has >= 4 hardware
// threads; on smaller CI runners the speedup column is informational.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "kernels/attention.h"
#include "kernels/gemm.h"
#include "kernels/layernorm.h"
#include "kernels/optimizer_kernels.h"

using namespace sf;
using namespace sf::kernels;

namespace {

const int kThreadSweep[] = {1, 2, 4, 8};

std::vector<float> randoms(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  fill_normal(rng, v.data(), n, 0.0f, 1.0f);
  return v;
}

struct Row {
  std::string kernel;
  std::string shape;
  std::string simd;
  int threads = 1;
  double ns_per_iter = 0.0;
  double speedup_vs_1t = 1.0;
  bool bitwise_match = true;
};

/// One benchmarked kernel: `run` executes the kernel once into
/// caller-invisible state and returns a snapshot of every output buffer
/// (concatenated) for the bitwise comparison.
struct Case {
  std::string kernel;
  std::string shape;
  std::function<std::vector<float>()> run;
};

double time_ns_per_iter(const std::function<std::vector<float>()>& run) {
  // Calibrate: run once, then pick an iteration count targeting ~80 ms.
  Timer warm;
  run();
  double once = warm.elapsed();
  int iters = once > 0 ? static_cast<int>(0.08 / once) : 50;
  iters = std::max(3, std::min(iters, 200));
  Timer t;
  for (int i = 0; i < iters; ++i) run();
  return t.elapsed() * 1e9 / iters;
}

std::vector<Row> sweep(const Case& c) {
  std::vector<Row> rows;
  // Reference: forced-scalar tier at one thread. Every (tier, threads)
  // combination must reproduce it bit for bit — this is the memcmp gate
  // on both the thread-count and the scalar-vs-SIMD axes at once.
  simd::set_tier(simd::Tier::kScalar);
  set_num_threads(1);
  std::vector<float> ref = c.run();

  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  if (simd::best_available() != simd::Tier::kScalar) {
    tiers.push_back(simd::best_available());
  }
  for (simd::Tier tier : tiers) {
    simd::set_tier(tier);
    double ns_1t = 0.0;
    for (int t : kThreadSweep) {
      set_num_threads(t);
      Row r;
      r.kernel = c.kernel;
      r.shape = c.shape;
      r.simd = simd::tier_name(tier);
      r.threads = t;
      std::vector<float> out = c.run();
      r.bitwise_match =
          out.size() == ref.size() &&
          std::memcmp(out.data(), ref.data(), out.size() * sizeof(float)) == 0;
      r.ns_per_iter = time_ns_per_iter(c.run);
      if (t == 1) ns_1t = r.ns_per_iter;
      r.speedup_vs_1t = r.ns_per_iter > 0 ? ns_1t / r.ns_per_iter : 1.0;
      rows.push_back(r);
      std::printf("%-22s %-24s %-6s %2d thr  %12.0f ns/iter  %5.2fx  %s\n",
                  r.kernel.c_str(), r.shape.c_str(), r.simd.c_str(), t,
                  r.ns_per_iter, r.speedup_vs_1t,
                  r.bitwise_match ? "bitwise-ok" : "MISMATCH");
    }
  }
  simd::clear_tier();
  set_num_threads(0);
  return rows;
}

std::vector<Case> build_cases() {
  std::vector<Case> cases;

  // ---- GEMM: large square-ish, all transpose combos -----------------------
  struct GemmShape {
    int64_t m, k, n;
    bool ta, tb;
  };
  for (GemmShape gs : {GemmShape{384, 384, 384, false, false},
                       GemmShape{384, 384, 384, true, false},
                       GemmShape{384, 384, 384, false, true},
                       GemmShape{384, 384, 384, true, true}}) {
    auto a = std::make_shared<std::vector<float>>(randoms(gs.m * gs.k, 1));
    auto b = std::make_shared<std::vector<float>>(randoms(gs.k * gs.n, 2));
    std::string name = std::string("gemm") + (gs.ta ? "_tA" : "") +
                       (gs.tb ? "_tB" : "");
    char shape[64];
    std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                  static_cast<long long>(gs.m), static_cast<long long>(gs.k),
                  static_cast<long long>(gs.n));
    cases.push_back({name, shape, [=]() {
                       std::vector<float> c(gs.m * gs.n);
                       gemm(a->data(), b->data(), c.data(), gs.m, gs.k, gs.n,
                            gs.ta, gs.tb);
                       return c;
                     }});
  }

  // ---- flash MHA forward + backward --------------------------------------
  {
    AttentionDims d{4, 8, 128, 128, 16};
    auto q = std::make_shared<std::vector<float>>(randoms(d.qkv_numel(true), 3));
    auto k = std::make_shared<std::vector<float>>(randoms(d.qkv_numel(false), 4));
    auto v = std::make_shared<std::vector<float>>(randoms(d.qkv_numel(false), 5));
    auto bias = std::make_shared<std::vector<float>>(randoms(d.bias_numel(), 6));
    auto dout = std::make_shared<std::vector<float>>(randoms(d.qkv_numel(true), 7));
    cases.push_back({"mha_flash_fwd", "b4h8s128d16", [=]() {
                       std::vector<float> out(d.qkv_numel(true));
                       mha_forward_flash(d, q->data(), k->data(), v->data(),
                                         bias->data(), nullptr, out.data(),
                                         nullptr, 64);
                       return out;
                     }});
    cases.push_back({"mha_flash_fwd_bwd", "b4h8s128d16", [=]() {
                       std::vector<float> out(d.qkv_numel(true));
                       std::vector<float> dq(q->size()), dk(k->size()),
                           dv(v->size()), dbias(bias->size());
                       AttentionContext ctx;
                       mha_forward_flash(d, q->data(), k->data(), v->data(),
                                         bias->data(), nullptr, out.data(),
                                         &ctx, 64);
                       mha_backward_flash(d, q->data(), k->data(), v->data(),
                                          bias->data(), nullptr, out.data(),
                                          dout->data(), ctx, dq.data(),
                                          dk.data(), dv.data(), dbias.data(),
                                          64);
                       std::vector<float> all;
                       for (auto* buf : {&out, &dq, &dk, &dv, &dbias}) {
                         all.insert(all.end(), buf->begin(), buf->end());
                       }
                       return all;
                     }});
  }

  // ---- fused LayerNorm forward + backward --------------------------------
  {
    const int64_t rows = 8192, cols = 256;
    auto x = std::make_shared<std::vector<float>>(randoms(rows * cols, 8));
    auto gamma = std::make_shared<std::vector<float>>(randoms(cols, 9));
    auto beta = std::make_shared<std::vector<float>>(randoms(cols, 10));
    auto dy = std::make_shared<std::vector<float>>(randoms(rows * cols, 11));
    cases.push_back({"ln_fwd_fused", "8192x256", [=]() {
                       std::vector<float> y(rows * cols);
                       layernorm_forward_fused(x->data(), gamma->data(),
                                               beta->data(), y.data(), rows,
                                               cols, 1e-5f, nullptr);
                       return y;
                     }});
    cases.push_back({"ln_bwd_fused", "8192x256", [=]() {
                       LayerNormStats stats;
                       std::vector<float> y(rows * cols), dx(rows * cols);
                       std::vector<float> dg(cols), db(cols);
                       layernorm_forward_fused(x->data(), gamma->data(),
                                               beta->data(), y.data(), rows,
                                               cols, 1e-5f, &stats);
                       layernorm_backward_fused(x->data(), gamma->data(),
                                                dy->data(), stats, dx.data(),
                                                dg.data(), db.data(), rows,
                                                cols);
                       std::vector<float> all = dx;
                       all.insert(all.end(), dg.begin(), dg.end());
                       all.insert(all.end(), db.begin(), db.end());
                       return all;
                     }});
  }

  // ---- fused Adam+SWA and bucketed grad norm -----------------------------
  {
    const int tensors = 64;
    const int64_t per = 16384;
    auto base = std::make_shared<std::vector<std::vector<float>>>();
    for (int t = 0; t < tensors; ++t) {
      base->push_back(randoms(per, 20 + t));      // param
      base->push_back(randoms(per, 120 + t));     // grad
      base->push_back(randoms(per, 220 + t));     // m
      base->push_back(std::vector<float>(per, 0.25f));  // v
      base->push_back(randoms(per, 320 + t));     // swa
    }
    cases.push_back({"fused_adam_swa", "64x16384", [=]() {
                       auto state = *base;  // fresh optimizer state per run
                       std::vector<ParamChunk> chunks;
                       for (int t = 0; t < tensors; ++t) {
                         chunks.push_back({state[5 * t].data(),
                                           state[5 * t + 1].data(),
                                           state[5 * t + 2].data(),
                                           state[5 * t + 3].data(),
                                           state[5 * t + 4].data(), per});
                       }
                       AdamHyper h;
                       fused_adam_swa_step(chunks, h, 3, 0.999f);
                       std::vector<float> all;
                       for (int t = 0; t < tensors; ++t) {
                         all.insert(all.end(), state[5 * t].begin(),
                                    state[5 * t].end());
                       }
                       return all;
                     }});
    cases.push_back({"grad_norm_bucketed", "64x16384", [=]() {
                       std::vector<const float*> buckets;
                       std::vector<int64_t> sizes;
                       for (int t = 0; t < tensors; ++t) {
                         buckets.push_back((*base)[5 * t + 1].data());
                         sizes.push_back(per);
                       }
                       return std::vector<float>{
                           grad_norm_bucketed(buckets, sizes)};
                     }});
  }
  return cases;
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream f(path);
  f << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    f << "  {\"kernel\": \"" << r.kernel << "\", \"shape\": \"" << r.shape
      << "\", \"simd\": \"" << r.simd << "\", \"threads\": " << r.threads
      << ", \"ns_per_iter\": " << static_cast<long long>(r.ns_per_iter)
      << ", \"speedup_vs_1t\": " << r.speedup_vs_1t
      << ", \"bitwise_match\": " << (r.bitwise_match ? "true" : "false")
      << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--out path]\n", argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("intra-op parallel scaling sweep (hardware threads: %u)\n\n",
              hw);

  std::vector<Row> rows;
  for (const Case& c : build_cases()) {
    auto r = sweep(c);
    rows.insert(rows.end(), r.begin(), r.end());
    std::printf("\n");
  }
  write_json(rows, out_path);
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());

  // The speedup gate reads the best native tier: cache-aware packing plus
  // SIMD inner loops are what buy the headroom to demand 2.5x at 4
  // threads (the forced-scalar rows are informational).
  const std::string native = simd::tier_name(simd::best_available());
  int mismatches = 0;
  double gemm_speedup_sum = 0.0;
  int gemm_speedup_n = 0;
  for (const Row& r : rows) {
    if (!r.bitwise_match) ++mismatches;
    if (r.threads == 4 && r.simd == native &&
        r.kernel.rfind("gemm", 0) == 0) {
      gemm_speedup_sum += r.speedup_vs_1t;
      ++gemm_speedup_n;
    }
  }
  double gemm_speedup =
      gemm_speedup_n ? gemm_speedup_sum / gemm_speedup_n : 0.0;
  std::printf("aggregate GEMM speedup at 4 threads (%s tier): %.2fx\n",
              native.c_str(), gemm_speedup);

  if (check) {
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "FAIL: %d bitwise mismatches across SIMD tiers / thread "
                   "counts\n",
                   mismatches);
      return 1;
    }
    if (hw >= 4 && gemm_speedup < 2.5) {
      std::fprintf(stderr,
                   "FAIL: aggregate GEMM speedup %.2fx < 2.5x at 4 threads "
                   "(%u hardware threads available)\n",
                   gemm_speedup, hw);
      return 1;
    }
    if (hw < 4) {
      std::printf(
          "note: host has %u hardware thread(s); the 2.5x speedup gate is "
          "skipped (determinism still enforced)\n",
          hw);
    }
    std::printf("check passed\n");
  }
  return 0;
}
