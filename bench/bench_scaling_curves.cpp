// Scaling curves: the paper's core argument in one table.
//
// Data parallelism alone is capped by the global-batch ceiling (§2.2: the
// AlphaFold batch size cannot exceed 256 or training diverges), so beyond
// 256 GPUs pure DP has nothing to parallelize. DAP multiplies the usable
// GPU count by its degree (§2.3), which with ScaleFold's optimizations is
// efficient up to DAP-8 => 2048 GPUs. This bench prints throughput
// (samples/s) and scaling efficiency across the whole range, plus
// time-to-train, for baseline vs ScaleFold.
#include <algorithm>
#include <cstdio>

#include "sim/cluster.h"
#include "sim/ttt.h"

using namespace sf::sim;

namespace {

constexpr int kMaxGlobalBatch = 256;  // §2.2 convergence ceiling

struct Row {
  int gpus;
  int dap;
  double step_s;
  double samples_per_s;
};

Row evaluate(int gpus, bool scalefold) {
  ClusterConfig cfg;
  cfg.arch = GpuArch::h100();
  cfg.num_gpus = gpus;
  cfg.sim_steps = 150;
  // DAP degree: the smallest that keeps the DP degree within the batch
  // ceiling (1 crop per DP group per step).
  int dap = 1;
  while (gpus / dap > kMaxGlobalBatch && dap < 8) dap *= 2;
  cfg.dap = dap;
  if (scalefold) {
    cfg.toggles = Toggles::all_on();
  } else {
    // The baseline cannot run DAP usefully beyond the batch ceiling; it
    // still tries (FastFold-style DAP without the ScaleFold fixes).
    cfg.toggles = Toggles::none();
  }
  StepStats s = simulate_step_time(cfg);
  Row r;
  r.gpus = gpus;
  r.dap = dap;
  r.step_s = s.mean_step_s;
  r.samples_per_s = std::min(gpus / dap, kMaxGlobalBatch) / s.mean_step_s;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Scaling beyond the DP limit (H100, batch ceiling %d) ===\n\n",
              kMaxGlobalBatch);
  std::printf("%6s | %5s | %-9s | %9s | %12s | %10s\n", "GPUs", "DAP",
              "config", "step (s)", "samples/s", "efficiency");
  double base_tp_sf = 0, base_tp_ref = 0;
  int base_gpus = 128;
  for (int gpus : {128, 256, 512, 1024, 2048}) {
    for (bool scalefold : {false, true}) {
      Row r = evaluate(gpus, scalefold);
      double& base_tp = scalefold ? base_tp_sf : base_tp_ref;
      if (gpus == base_gpus) base_tp = r.samples_per_s;
      double eff = r.samples_per_s / (base_tp * gpus / base_gpus);
      std::printf("%6d | %5d | %-9s | %9.3f | %12.1f | %9.0f%%\n", r.gpus,
                  r.dap, scalefold ? "scalefold" : "baseline", r.step_s,
                  r.samples_per_s, eff * 100);
    }
  }
  std::printf("\npaper: prior art scaled to 512 GPUs; ScaleFold's fixes "
              "(CUDA Graph, non-blocking loader, fused kernels) keep DAP "
              "efficient to 2048 training GPUs.\n");

  std::printf("\n--- time-to-train vs cluster size (400 steps, async eval) "
              "---\n");
  std::printf("%6s | %5s | %10s | %10s\n", "GPUs", "DAP", "TTT (min)",
              "speedup");
  double t_first = 0;
  for (int gpus : {256, 512, 1024, 2048}) {
    TttConfig cfg;
    cfg.cluster.arch = GpuArch::h100();
    cfg.cluster.num_gpus = gpus;
    int dap = 1;
    while (gpus / dap > kMaxGlobalBatch && dap < 8) dap *= 2;
    cfg.cluster.dap = dap;
    cfg.cluster.toggles = Toggles::all_on();
    cfg.async_eval = true;
    TttResult r = time_to_train(cfg);
    if (t_first == 0) t_first = r.total_s;
    std::printf("%6d | %5d | %10.1f | %9.2fx\n", gpus, dap, r.total_s / 60,
                t_first / r.total_s);
  }
  std::printf("\n(diminishing returns past 1024: init+compile and the eval "
              "tail amortize over less training time — the Fig. 9 story.)\n");
  return 0;
}
