// Serial-module fraction, measured on the real mini-AlphaFold (§3.1: the
// data pipeline and the Structure Module "take 11% of GPU time in total
// per training step" and cannot be parallelized by DAP — one of the two
// dominant barriers at small DAP degrees).
//
// Methodology: time a full training step (forward + backward), then time
// the structure-module portion alone (trunk outputs held fixed) and the
// batch preparation; report each as a fraction of the step.
#include <cstdio>

#include "autograd/var.h"
#include "common/timer.h"
#include "data/protein_sample.h"
#include "model/alphafold.h"

using namespace sf;

namespace {

double time_n(int n, const std::function<void()>& fn) {
  fn();  // warm up
  Timer t;
  for (int i = 0; i < n; ++i) fn();
  return t.elapsed() / n;
}

}  // namespace

int main() {
  std::printf("=== Serial-module fraction (real mini-AlphaFold) ===\n\n");
  std::printf("%8s | %10s | %10s | %10s | %16s\n", "blocks", "step (ms)",
              "struct(ms)", "prep (ms)", "serial fraction");

  for (int blocks : {1, 2, 4}) {
    model::ModelConfig cfg;
    cfg.crop_len = 16;
    cfg.msa_rows = 4;
    cfg.c_m = 16;
    cfg.c_z = 16;
    cfg.c_s = 16;
    cfg.heads = 2;
    cfg.head_dim = 8;
    cfg.evoformer_blocks = blocks;
    cfg.use_extra_msa_stack = false;
    cfg.use_template_stack = false;
    cfg.opm_dim = 3;
    cfg.structure_layers = 3;
    model::MiniAlphaFold net(cfg, 3);

    data::DatasetConfig dc;
    dc.num_samples = 4;
    dc.crop_len = 16;
    dc.msa_rows = 4;
    dc.msa_work_cap = 1500;
    dc.seed = 9;
    data::SyntheticProteinDataset ds(dc);

    double prep_s = time_n(3, [&] { ds.prepare_batch(0); });
    auto batch = ds.prepare_batch(0);

    double step_s = time_n(3, [&] {
      net.params().zero_all_grads();
      auto out = net.forward(batch, 1, true);
      autograd::backward(out.loss);
    });

    // Structure module alone: fabricate trunk outputs of the right shape.
    Rng rng(5);
    double struct_s;
    {
      Tensor msa = Tensor::randn({cfg.msa_rows, cfg.crop_len, cfg.c_m}, rng);
      Tensor pair =
          Tensor::randn({cfg.crop_len, cfg.crop_len, cfg.c_z}, rng);
      struct_s = time_n(3, [&] {
        autograd::Var m(msa, true), z(pair, true);
        auto out = net.structure_module()(m, z);
        autograd::backward(autograd::sum(out.positions));
      });
    }
    double serial = (struct_s + prep_s) / (step_s + prep_s);
    std::printf("%8d | %10.2f | %10.2f | %10.2f | %15.1f%%\n", blocks,
                step_s * 1e3, struct_s * 1e3, prep_s * 1e3, serial * 100);
  }
  std::printf("\npaper: data pipeline + structure module = ~11%% of the\n"
              "step — the non-DAP-parallelizable floor of Fig. 3. The\n"
              "fraction shrinks as the Evoformer stack deepens (48 blocks\n"
              "at paper scale), converging toward that figure.\n");
  return 0;
}
