// Serving-layer load generator: SLO-gated latency/throughput benchmark.
//
// Drives serve::Service over the long-tailed sequence-length distribution
// (Fig. 4 shape at mini scale) in four scenarios:
//
//   serial   — closed loop, ONE length bucket (the serving max) and
//              max_batch = 1, cache off: every request pays the padded
//              crop, one at a time. The baseline a naive server gives you.
//   batched  — closed loop, length buckets + continuous batching, cache
//              off: requests run at the smallest crop that fits them.
//              Throughput must beat serial — on one core the win is pure
//              padding-waste elimination (triangle work is superlinear in
//              crop length), so this gate is deterministic, not a
//              parallelism artifact.
//   cache    — two closed-loop passes over the same samples with the
//              feature cache on: the warm pass must hit 100% and spend
//              less time in featurize.
//   sweep    — open loop at {0.3, 0.6, 0.9, 3.0}x the measured batched
//              capacity, fixed inter-arrival gaps. Reports p50/p99 total
//              latency, delivered throughput, admission-reject rate and
//              cache hit rate per load point. The 3.0x point runs with a
//              tight admission queue (the overload story: shed load,
//              keep admitted latency bounded).
//
// Output: BENCH_serving.json (override with --out <path>).
//
// --check gates:
//   1. batched throughput  > 1.2x serial throughput
//   2. warm-pass cache hit rate = 1 and warm featurize < 0.7x cold
//   3. p99 latency at the pinned 0.6x-capacity load <= 750 ms
//   4. the 3.0x overload point rejects some load AND keeps the p99 of
//      admitted requests within the same SLO.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "serve/service.h"

using namespace sf;
using namespace sf::serve;

namespace {

constexpr double kP99SloSeconds = 0.75;   ///< pinned SLO
constexpr double kPinnedLoadFrac = 0.6;   ///< SLO is enforced at this load

model::ModelConfig bench_model() {
  model::ModelConfig c;
  c.crop_len = 32;
  c.msa_rows = 4;
  c.c_m = 16;
  c.c_z = 16;
  c.c_s = 16;
  c.heads = 2;
  c.head_dim = 8;
  c.evoformer_blocks = 2;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 4;
  c.transition_factor = 2;
  c.structure_layers = 1;
  return c;
}

data::DatasetConfig bench_data(uint64_t seed) {
  data::DatasetConfig c;
  c.num_samples = 256;
  c.crop_len = 32;
  c.msa_rows = 4;
  c.msa_work_cap = 2048;  // featurize cost ~ len * min(depth, cap)
  c.len_log_mean = 2.7;   // median ~15 residues, long tail
  c.len_log_sigma = 0.6;
  c.min_seq_len = 6;
  c.max_seq_len = 200;    // tail beyond the max bucket gets cropped
  c.seed = seed;
  return c;
}

ServeConfig serving_config(bool bucketed, bool cache_on) {
  ServeConfig c;
  if (bucketed) {
    c.scheduler.bucket_lens = {12, 16, 24, 32};
    c.scheduler.max_batch = 8;
  } else {
    c.scheduler.bucket_lens = {32};  // pad-to-max
    c.scheduler.max_batch = 1;      // one-at-a-time
  }
  c.cache.enabled = cache_on;
  c.feature_workers = 2;
  c.model_workers = 1;
  c.num_recycles = 1;
  return c;
}

double quantile_exact(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t rank = static_cast<size_t>(
      std::min<double>(v.size() - 1, std::ceil(q * v.size()) - 1));
  return v[std::max<size_t>(rank, 0)];
}

struct LoopResult {
  double wall_s = 0;
  double throughput_rps = 0;
  double mean_featurize_s = 0;
  double mean_batch_size = 0;
  double cache_hit_rate = 0;
  double p50_s = 0, p99_s = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
};

LoopResult summarize(const std::vector<Response>& responses, double wall_s) {
  LoopResult r;
  r.wall_s = wall_s;
  std::vector<double> totals;
  double featurize = 0;
  int64_t hits = 0, featurized = 0, batch_sum = 0;
  for (const auto& resp : responses) {
    if (!resp.ok) {
      ++r.rejected;
      continue;
    }
    ++r.completed;
    totals.push_back(resp.total_s);
    batch_sum += resp.batch_size;
    featurize += resp.featurize_s;
    ++featurized;
    if (resp.cache_hit) ++hits;
  }
  if (r.completed > 0) {
    r.throughput_rps = r.completed / wall_s;
    r.mean_featurize_s = featurize / featurized;
    r.mean_batch_size = static_cast<double>(batch_sum) / r.completed;
    r.cache_hit_rate = static_cast<double>(hits) / featurized;
    r.p50_s = quantile_exact(totals, 0.50);
    r.p99_s = quantile_exact(totals, 0.99);
  }
  return r;
}

/// Closed loop, one at a time: submit, wait, repeat.
LoopResult run_serial(const data::DatasetConfig& dc, int n) {
  Service svc(serving_config(/*bucketed=*/false, /*cache_on=*/false), dc,
              bench_model());
  std::vector<Response> all;
  Timer t;
  for (int i = 0; i < n; ++i) {
    svc.submit(i);
    auto r = svc.wait_all();
    all.insert(all.end(), r.begin(), r.end());
  }
  return summarize(all, t.elapsed());
}

/// Closed loop, all at once: continuous batching forms the batches.
LoopResult run_batched(const data::DatasetConfig& dc, int n) {
  Service svc(serving_config(/*bucketed=*/true, /*cache_on=*/false), dc,
              bench_model());
  Timer t;
  for (int i = 0; i < n; ++i) svc.submit(i);
  auto all = svc.wait_all();
  return summarize(all, t.elapsed());
}

struct CacheResult {
  LoopResult cold, warm;
};

CacheResult run_cache(const data::DatasetConfig& dc, int n) {
  Service svc(serving_config(/*bucketed=*/true, /*cache_on=*/true), dc,
              bench_model());
  CacheResult out;
  {
    // Evaluation order matters: wait_all() must complete before the
    // timer is read, so sequence the two with statements.
    Timer t;
    for (int i = 0; i < n; ++i) svc.submit(i);
    auto all = svc.wait_all();
    out.cold = summarize(all, t.elapsed());
  }
  {
    Timer t;
    for (int i = 0; i < n; ++i) svc.submit(i);
    auto all = svc.wait_all();
    out.warm = summarize(all, t.elapsed());
  }
  return out;
}

/// Open loop: fixed inter-arrival gap at offered_rps; requests keep
/// arriving whether or not the service keeps up.
LoopResult run_open_loop(const data::DatasetConfig& dc, int n,
                         double offered_rps, int64_t max_queue_depth) {
  ServeConfig sc = serving_config(/*bucketed=*/true, /*cache_on=*/true);
  sc.admission.max_queue_depth = max_queue_depth;
  Service svc(sc, dc, bench_model());
  const auto gap = std::chrono::duration<double>(1.0 / offered_rps);
  Timer t;
  auto next_arrival = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(gap);
    svc.submit(i % dc.num_samples);
  }
  auto all = svc.wait_all();
  return summarize(all, t.elapsed());
}

struct SweepRow {
  double frac = 0;
  double offered_rps = 0;
  int64_t max_queue_depth = 0;
  LoopResult r;
};

void write_json(const std::string& path, uint64_t seed,
                const LoopResult& serial, const LoopResult& batched,
                const CacheResult& cache,
                const std::vector<SweepRow>& sweep) {
  std::ofstream f(path);
  f << "{\n  \"seed\": " << seed << ",\n";
  f << "  \"slo\": {\"p99_slo_s\": " << kP99SloSeconds
    << ", \"pinned_load_frac\": " << kPinnedLoadFrac << "},\n";
  auto loop = [&](const char* name, const LoopResult& r, bool comma) {
    f << "  \"" << name << "\": {\"throughput_rps\": " << r.throughput_rps
      << ", \"wall_s\": " << r.wall_s << ", \"completed\": " << r.completed
      << ", \"rejected\": " << r.rejected
      << ", \"mean_batch_size\": " << r.mean_batch_size
      << ", \"mean_featurize_s\": " << r.mean_featurize_s
      << ", \"cache_hit_rate\": " << r.cache_hit_rate
      << ", \"p50_s\": " << r.p50_s << ", \"p99_s\": " << r.p99_s << "}"
      << (comma ? "," : "") << "\n";
  };
  loop("serial", serial, true);
  loop("batched", batched, true);
  loop("cache_cold", cache.cold, true);
  loop("cache_warm", cache.warm, true);
  f << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& s = sweep[i];
    const LoopResult& r = s.r;
    const double submitted = static_cast<double>(r.completed + r.rejected);
    f << "    {\"offered_frac\": " << s.frac
      << ", \"offered_rps\": " << s.offered_rps
      << ", \"max_queue_depth\": " << s.max_queue_depth
      << ", \"throughput_rps\": " << r.throughput_rps
      << ", \"p50_s\": " << r.p50_s << ", \"p99_s\": " << r.p99_s
      << ", \"reject_rate\": "
      << (submitted > 0 ? r.rejected / submitted : 0.0)
      << ", \"cache_hit_rate\": " << r.cache_hit_rate << "}"
      << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] [--out path]\n", argv[0]);
      return 2;
    }
  }
  uint64_t seed = 97;
  if (const char* env = std::getenv("SF_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  const data::DatasetConfig dc = bench_data(seed);

  const int kClosedN = 24;
  std::printf("serving bench (SF_SEED=%" PRIu64 ")\n\n", seed);
  LoopResult serial = run_serial(dc, kClosedN);
  std::printf("serial   %6.1f req/s  p99 %6.1f ms  (pad-to-max, batch=1)\n",
              serial.throughput_rps, serial.p99_s * 1e3);
  LoopResult batched = run_batched(dc, kClosedN);
  std::printf(
      "batched  %6.1f req/s  p99 %6.1f ms  mean batch %.2f  (%.2fx serial)\n",
      batched.throughput_rps, batched.p99_s * 1e3, batched.mean_batch_size,
      batched.throughput_rps / serial.throughput_rps);
  CacheResult cache = run_cache(dc, kClosedN);
  std::printf(
      "cache    cold featurize %6.0f us -> warm %6.0f us  (hit rate %.2f)\n",
      cache.cold.mean_featurize_s * 1e6, cache.warm.mean_featurize_s * 1e6,
      cache.warm.cache_hit_rate);

  // Open-loop sweep against the measured batched capacity. The overload
  // point (3x) runs with a tight admission queue: shedding is the
  // mechanism that keeps admitted latency bounded.
  const double capacity_rps = batched.throughput_rps;
  std::vector<SweepRow> sweep;
  for (double frac : {0.3, kPinnedLoadFrac, 0.9, 3.0}) {
    SweepRow row;
    row.frac = frac;
    row.offered_rps = frac * capacity_rps;
    row.max_queue_depth = frac > 1.0 ? 4 : 64;
    row.r = run_open_loop(dc, kClosedN, row.offered_rps,
                          row.max_queue_depth);
    const double submitted =
        static_cast<double>(row.r.completed + row.r.rejected);
    std::printf(
        "sweep %.1fx  offered %6.1f req/s  delivered %6.1f  p50 %6.1f ms  "
        "p99 %6.1f ms  reject %4.1f%%\n",
        frac, row.offered_rps, row.r.throughput_rps, row.r.p50_s * 1e3,
        row.r.p99_s * 1e3,
        submitted > 0 ? 100.0 * row.r.rejected / submitted : 0.0);
    sweep.push_back(std::move(row));
  }

  write_json(out_path, seed, serial, batched, cache, sweep);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (check) {
    int failures = 0;
    if (!(batched.throughput_rps > 1.2 * serial.throughput_rps)) {
      std::fprintf(stderr,
                   "FAIL: batched throughput %.1f req/s does not beat "
                   "one-at-a-time %.1f req/s by 1.2x\n",
                   batched.throughput_rps, serial.throughput_rps);
      ++failures;
    }
    if (cache.warm.cache_hit_rate < 1.0) {
      std::fprintf(stderr, "FAIL: warm pass hit rate %.2f < 1.0\n",
                   cache.warm.cache_hit_rate);
      ++failures;
    }
    if (!(cache.warm.mean_featurize_s <
          0.7 * cache.cold.mean_featurize_s)) {
      std::fprintf(stderr,
                   "FAIL: cache hits do not reduce featurize time "
                   "(cold %.0f us, warm %.0f us)\n",
                   cache.cold.mean_featurize_s * 1e6,
                   cache.warm.mean_featurize_s * 1e6);
      ++failures;
    }
    const SweepRow* pinned = nullptr;
    const SweepRow* overload = nullptr;
    for (const auto& s : sweep) {
      if (s.frac == kPinnedLoadFrac) pinned = &s;
      if (s.frac > 1.0) overload = &s;
    }
    SF_CHECK(pinned != nullptr && overload != nullptr);
    if (!(pinned->r.p99_s <= kP99SloSeconds)) {
      std::fprintf(stderr,
                   "FAIL: p99 %.1f ms at %.1fx capacity breaches the "
                   "%.0f ms SLO\n",
                   pinned->r.p99_s * 1e3, kPinnedLoadFrac,
                   kP99SloSeconds * 1e3);
      ++failures;
    }
    if (overload->r.rejected == 0) {
      std::fprintf(stderr,
                   "FAIL: overload at %.1fx capacity rejected nothing — "
                   "admission control is not shedding\n",
                   overload->frac);
      ++failures;
    }
    if (!(overload->r.p99_s <= kP99SloSeconds)) {
      std::fprintf(stderr,
                   "FAIL: overload p99 of admitted requests %.1f ms "
                   "breaches the %.0f ms SLO despite shedding\n",
                   overload->r.p99_s * 1e3, kP99SloSeconds * 1e3);
      ++failures;
    }
    if (failures > 0) return 1;
    std::printf("check passed\n");
  }
  return 0;
}
