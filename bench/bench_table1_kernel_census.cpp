// Table 1 reproduction: breakdown of kernels launched in one AlphaFold
// training step (CPU overhead / math-bounded / memory-bounded /
// memory-operation), reconstructed from the per-module operator templates
// of the paper-scale architecture plus the unfused optimizer's
// per-parameter-tensor kernel storm.
#include <cstdio>

#include "sim/workload.h"

int main() {
  using namespace sf::sim;
  CensusBreakdown c = build_census();

  std::printf("=== Table 1: Breakdown of kernels launched per training step ===\n\n");
  std::printf("%-18s | %12s | %12s | %10s | %10s\n", "Kernel Type",
              "Runtime(%) paper", "Runtime(%) ours", "#Calls paper",
              "#Calls ours");
  std::printf("%.90s\n",
              "----------------------------------------------------------------"
              "--------------------------");
  std::printf("%-18s | %16.2f | %15.2f | %10s | %10s\n", "CPU Overhead", 9.10,
              c.runtime_cpu_overhead * 100, "-", "-");
  std::printf("%-18s | %16.2f | %15.2f | %10d | %10lld\n", "Math-bounded",
              24.06, c.runtime_math * 100, 18147,
              static_cast<long long>(c.total.math_calls));
  std::printf("%-18s | %16.2f | %15.2f | %10d | %10lld\n", "Memory-bounded",
              65.03, c.runtime_mem * 100, 97749,
              static_cast<long long>(c.total.mem_calls));
  std::printf("%-18s | %16.2f | %15.2f | %10d | %10lld\n", "Memory-operation",
              1.82, c.runtime_memop * 100, 34991,
              static_cast<long long>(c.total.memop_calls));
  std::printf("\nTotal operators per step: paper >150,000 | ours %lld\n",
              static_cast<long long>(c.total.total()));

  std::printf("\n--- Where the launches come from (ours) ---\n");
  auto row = [](const char* name, const KernelCensus& k) {
    std::printf("%-28s math %6lld | mem %6lld | memop %6lld\n", name,
                static_cast<long long>(k.math_calls),
                static_cast<long long>(k.mem_calls),
                static_cast<long long>(k.memop_calls));
  };
  row("Evoformer trunk (x recycle)", c.trunk);
  row("Structure module + heads", c.serial);
  row("Optimizer/SWA/clip/DDP", c.optimizer);

  std::printf("\n--- Per-module templates (fwd+bwd logical kernels) ---\n");
  row("attention (gated, biased)", census_attention());
  row("layernorm", census_layernorm());
  row("transition", census_transition());
  row("triangle multiply", census_triangle_multiply());
  row("outer product mean", census_outer_product_mean());
  row("one full Evoformer block", census_evoformer_block());
  return 0;
}
