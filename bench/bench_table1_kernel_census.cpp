// Table 1 reproduction: breakdown of kernels launched in one AlphaFold
// training step (CPU overhead / math-bounded / memory-bounded /
// memory-operation), reconstructed from the per-module operator templates
// of the paper-scale architecture plus the unfused optimizer's
// per-parameter-tensor kernel storm.
//
// The measured section at the bottom no longer reads the executor's
// bespoke ExecStats accumulator: a real (mini-scale) op stream is run
// through the eager executor with tracing on, and the census is rebuilt
// from the recorded trace events (stats_from_trace) — the same substrate
// Fig. 8/Fig. 9 traces come from. Set SCALEFOLD_TRACE_FILE to also dump
// the raw trace.json of that execution.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/executor.h"
#include "kernels/gemm.h"
#include "kernels/layernorm.h"
#include "obs/trace.h"
#include "sim/workload.h"

using namespace sf::sim;

namespace {

/// Mini op stream shaped like one Evoformer block's census: the per-block
/// template counts, each op doing real work of its category (small GEMM /
/// fused LayerNorm / buffer copy).
struct MiniBlock {
  std::vector<float> a, b, c, gamma, beta, buf, buf2;
  sf::graph::Program program;

  MiniBlock() {
    using sf::graph::OpKind;
    const int64_t n = 64, cols = 64, rows = 64;
    sf::Rng rng(11);
    a.resize(n * n);
    b.resize(n * n);
    c.resize(n * n);
    sf::fill_normal(rng, a.data(), a.size(), 0.0f, 1.0f);
    sf::fill_normal(rng, b.data(), b.size(), 0.0f, 1.0f);
    gamma.assign(cols, 1.0f);
    beta.assign(cols, 0.0f);
    buf.resize(rows * cols);
    sf::fill_normal(rng, buf.data(), buf.size(), 0.0f, 1.0f);
    buf2.resize(rows * cols);

    const KernelCensus block = census_evoformer_block();
    for (int64_t i = 0; i < block.math_calls; ++i) {
      program.add_op("gemm" + std::to_string(i), OpKind::kMath,
                     2ull * n * n * n, 3ull * n * n * 4, [this, n] {
                       sf::kernels::gemm(a.data(), b.data(), c.data(), n, n,
                                         n);
                     });
    }
    for (int64_t i = 0; i < block.mem_calls; ++i) {
      program.add_op("layernorm" + std::to_string(i), OpKind::kMemoryBound,
                     0, 2ull * rows * cols * 4, [this, rows, cols] {
                       sf::kernels::layernorm_forward_fused(
                           buf.data(), gamma.data(), beta.data(),
                           buf2.data(), rows, cols, 1e-5f, nullptr);
                     });
    }
    for (int64_t i = 0; i < block.memop_calls; ++i) {
      program.add_op("copy" + std::to_string(i), OpKind::kMemOp, 0,
                     2ull * rows * cols * 4, [this] {
                       std::memcpy(buf2.data(), buf.data(),
                                   buf.size() * sizeof(float));
                     });
    }
  }
};

}  // namespace

int main() {
  CensusBreakdown c = build_census();

  std::printf("=== Table 1: Breakdown of kernels launched per training step ===\n\n");
  std::printf("%-18s | %12s | %12s | %10s | %10s\n", "Kernel Type",
              "Runtime(%) paper", "Runtime(%) ours", "#Calls paper",
              "#Calls ours");
  std::printf("%.90s\n",
              "----------------------------------------------------------------"
              "--------------------------");
  std::printf("%-18s | %16.2f | %15.2f | %10s | %10s\n", "CPU Overhead", 9.10,
              c.runtime_cpu_overhead * 100, "-", "-");
  std::printf("%-18s | %16.2f | %15.2f | %10d | %10lld\n", "Math-bounded",
              24.06, c.runtime_math * 100, 18147,
              static_cast<long long>(c.total.math_calls));
  std::printf("%-18s | %16.2f | %15.2f | %10d | %10lld\n", "Memory-bounded",
              65.03, c.runtime_mem * 100, 97749,
              static_cast<long long>(c.total.mem_calls));
  std::printf("%-18s | %16.2f | %15.2f | %10d | %10lld\n", "Memory-operation",
              1.82, c.runtime_memop * 100, 34991,
              static_cast<long long>(c.total.memop_calls));
  std::printf("\nTotal operators per step: paper >150,000 | ours %lld\n",
              static_cast<long long>(c.total.total()));

  std::printf("\n--- Where the launches come from (ours) ---\n");
  auto row = [](const char* name, const KernelCensus& k) {
    std::printf("%-28s math %6lld | mem %6lld | memop %6lld\n", name,
                static_cast<long long>(k.math_calls),
                static_cast<long long>(k.mem_calls),
                static_cast<long long>(k.memop_calls));
  };
  row("Evoformer trunk (x recycle)", c.trunk);
  row("Structure module + heads", c.serial);
  row("Optimizer/SWA/clip/DDP", c.optimizer);

  std::printf("\n--- Per-module templates (fwd+bwd logical kernels) ---\n");
  row("attention (gated, biased)", census_attention());
  row("layernorm", census_layernorm());
  row("transition", census_transition());
  row("triangle multiply", census_triangle_multiply());
  row("outer product mean", census_outer_product_mean());
  row("one full Evoformer block", census_evoformer_block());

  // ---- Measured: census rebuilt from trace events ----------------------
  // One Evoformer block's worth of real (mini) kernels through the eager
  // executor; every dispatch and kernel body is a trace span, and the
  // census below is aggregated from those spans alone.
  sf::obs::set_trace_enabled(true);
  sf::obs::reset();
  MiniBlock mini;
  sf::graph::Executor exec;
  exec.run_eager(mini.program);
  const std::vector<sf::obs::TraceEvent> events = sf::obs::snapshot();
  const sf::graph::ExecStats traced = sf::graph::stats_from_trace(events);
  sf::obs::set_trace_enabled(false);

  const double total_s = traced.total_seconds();
  std::printf("\n--- Measured census from trace events (one mini Evoformer "
              "block, eager) ---\n");
  std::printf("%-18s | %15s | %10s\n", "Kernel Type", "Runtime(%) meas",
              "#Spans");
  auto traced_row = [&](const char* name, sf::graph::OpKind kind) {
    auto it = traced.by_kind.find(kind);
    const double secs = it == traced.by_kind.end() ? 0.0 : it->second.seconds;
    const uint64_t calls = it == traced.by_kind.end() ? 0 : it->second.calls;
    std::printf("%-18s | %15.2f | %10llu\n", name, 100.0 * secs / total_s,
                static_cast<unsigned long long>(calls));
  };
  std::printf("%-18s | %15.2f | %10llu\n", "CPU Overhead",
              100.0 * traced.dispatch_seconds / total_s,
              static_cast<unsigned long long>(traced.total_launches));
  traced_row("Math-bounded", sf::graph::OpKind::kMath);
  traced_row("Memory-bounded", sf::graph::OpKind::kMemoryBound);
  traced_row("Memory-operation", sf::graph::OpKind::kMemOp);
  std::printf("(%zu trace events; launch counts match the per-block "
              "template by construction)\n",
              events.size());

  if (const char* env = std::getenv("SCALEFOLD_TRACE_FILE");
      env && *env) {
    sf::obs::write_chrome_trace(env);
    std::printf("wrote execution trace to %s\n", env);
  }
  return 0;
}
