// Time-to-train under a realistic failure regime (fault-tolerance
// extension of the Figs. 9-11 TTT model).
//
// At 128-2080 H100s a pretraining-scale run is statistically guaranteed
// to hit node failures (cluster MTBF = node MTBF / nodes). This bench
// replays the ScaleFold configuration (DAP-8, all optimizations, async
// eval) through the Monte-Carlo failure model at three cluster sizes and
// reports, as JSON (stdout + BENCH_ttt_failures.json):
//   - fault-free vs expected-with-failures wall clock,
//   - MTBF-induced restart count and rolled-back work,
//   - the analytic (Young/Daly) and simulated-optimal checkpoint
//     intervals and the TTT achieved at the simulated optimum.
#include <cstdio>
#include <string>

#include "sim/calibration.h"
#include "sim/cluster.h"
#include "sim/ttt.h"

using namespace sf::sim;

namespace {

TttConfig config_for(int gpus) {
  TttConfig cfg;
  cfg.cluster.arch = GpuArch::h100();
  cfg.cluster.num_gpus = gpus;
  cfg.cluster.dap = 8;
  cfg.cluster.toggles = Toggles::all_on();
  cfg.cluster.sim_steps = 120;
  cfg.cluster.failure.node_mtbf_hours = calib::kNodeMtbfHours;
  cfg.cluster.failure.gpus_per_node = calib::kGpusPerNode;
  cfg.cluster.failure.restart_seconds = calib::kRestartSec;
  cfg.cluster.failure.checkpoint_write_seconds = calib::kCkptWriteSec;
  // A from-scratch pretraining campaign (§4.2 schedule length), the run
  // where the 10-hour headline lives and failures actually land.
  cfg.total_steps = 55000;
  cfg.eval_every_steps = calib::kEvalEverySteps;
  cfg.async_eval = true;  // + kEvalDedicatedGpus dedicated eval GPUs
  cfg.cached_eval_set = true;
  return cfg;
}

}  // namespace

int main() {
  std::string json = "{\n  \"bench\": \"ttt_failures\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"node_mtbf_hours\": %.1f,\n  \"gpus_per_node\": %d,\n"
                "  \"restart_seconds\": %.1f,\n"
                "  \"checkpoint_write_seconds\": %.1f,\n"
                "  \"total_steps\": 55000,\n  \"scales\": [\n",
                calib::kNodeMtbfHours, calib::kGpusPerNode, calib::kRestartSec,
                calib::kCkptWriteSec);
  json += buf;

  const int scales[] = {128, 1024, 2080};
  for (size_t i = 0; i < 3; ++i) {
    const int gpus = scales[i];
    TttConfig cfg = config_for(gpus);
    const int nodes =
        (gpus + calib::kGpusPerNode - 1) / calib::kGpusPerNode;

    // Expected TTT at the Young/Daly interval (the deployment default)…
    FailureTttResult daly = time_to_train_under_failures(cfg, 64);
    // …and at the simulated-optimal interval from the sweep.
    IntervalSearchResult opt = optimize_checkpoint_interval(cfg, 32);

    std::snprintf(
        buf, sizeof(buf),
        "    {\"gpus\": %d, \"nodes\": %d, \"dap\": 8,\n"
        "     \"step_seconds\": %.3f,\n"
        "     \"fault_free_minutes\": %.2f,\n"
        "     \"ttt_with_failures_minutes\": %.2f,\n"
        "     \"expected_failures\": %.2f,\n"
        "     \"lost_work_minutes\": %.2f,\n"
        "     \"restart_minutes\": %.2f,\n"
        "     \"checkpoint_overhead_minutes\": %.2f,\n"
        "     \"daly_interval_steps\": %d,\n"
        "     \"sim_optimal_interval_steps\": %d,\n"
        "     \"ttt_at_sim_optimal_minutes\": %.2f,\n"
        "     \"failure_overhead_pct\": %.2f}%s\n",
        gpus, nodes, daly.fault_free.step_s, daly.fault_free.total_s / 60,
        daly.total_s / 60, daly.expected_failures, daly.lost_work_s / 60,
        daly.restart_s / 60, daly.checkpoint_overhead_s / 60,
        daly.checkpoint_interval_steps, opt.best_interval_steps,
        opt.best_total_s / 60,
        100.0 * (daly.total_s - daly.fault_free.total_s) /
            daly.fault_free.total_s,
        i + 1 < 3 ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_ttt_failures.json", "wb")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote BENCH_ttt_failures.json\n");
  }
  return 0;
}
