file(REMOVE_RECURSE
  "CMakeFiles/bench_convergence_ablations.dir/bench_convergence_ablations.cpp.o"
  "CMakeFiles/bench_convergence_ablations.dir/bench_convergence_ablations.cpp.o.d"
  "bench_convergence_ablations"
  "bench_convergence_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
