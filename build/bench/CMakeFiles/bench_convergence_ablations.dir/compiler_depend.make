# Empty compiler generated dependencies file for bench_convergence_ablations.
# This may be replaced when dependencies are built.
