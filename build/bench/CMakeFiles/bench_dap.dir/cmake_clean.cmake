file(REMOVE_RECURSE
  "CMakeFiles/bench_dap.dir/bench_dap.cpp.o"
  "CMakeFiles/bench_dap.dir/bench_dap.cpp.o.d"
  "bench_dap"
  "bench_dap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
