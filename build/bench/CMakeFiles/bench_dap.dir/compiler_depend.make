# Empty compiler generated dependencies file for bench_dap.
# This may be replaced when dependencies are built.
