file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mlperf_ttt.dir/bench_fig10_mlperf_ttt.cpp.o"
  "CMakeFiles/bench_fig10_mlperf_ttt.dir/bench_fig10_mlperf_ttt.cpp.o.d"
  "bench_fig10_mlperf_ttt"
  "bench_fig10_mlperf_ttt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mlperf_ttt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
