# Empty dependencies file for bench_fig10_mlperf_ttt.
# This may be replaced when dependencies are built.
