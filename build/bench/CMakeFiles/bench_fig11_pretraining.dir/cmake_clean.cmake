file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pretraining.dir/bench_fig11_pretraining.cpp.o"
  "CMakeFiles/bench_fig11_pretraining.dir/bench_fig11_pretraining.cpp.o.d"
  "bench_fig11_pretraining"
  "bench_fig11_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
