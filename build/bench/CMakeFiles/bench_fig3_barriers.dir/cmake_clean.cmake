file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_barriers.dir/bench_fig3_barriers.cpp.o"
  "CMakeFiles/bench_fig3_barriers.dir/bench_fig3_barriers.cpp.o.d"
  "bench_fig3_barriers"
  "bench_fig3_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
