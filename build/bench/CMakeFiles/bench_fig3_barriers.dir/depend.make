# Empty dependencies file for bench_fig3_barriers.
# This may be replaced when dependencies are built.
