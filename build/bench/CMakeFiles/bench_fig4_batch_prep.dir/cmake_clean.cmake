file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_batch_prep.dir/bench_fig4_batch_prep.cpp.o"
  "CMakeFiles/bench_fig4_batch_prep.dir/bench_fig4_batch_prep.cpp.o.d"
  "bench_fig4_batch_prep"
  "bench_fig4_batch_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_batch_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
