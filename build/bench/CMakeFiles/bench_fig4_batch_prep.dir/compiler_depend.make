# Empty compiler generated dependencies file for bench_fig4_batch_prep.
# This may be replaced when dependencies are built.
