file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dap_step_time.dir/bench_fig7_dap_step_time.cpp.o"
  "CMakeFiles/bench_fig7_dap_step_time.dir/bench_fig7_dap_step_time.cpp.o.d"
  "bench_fig7_dap_step_time"
  "bench_fig7_dap_step_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dap_step_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
