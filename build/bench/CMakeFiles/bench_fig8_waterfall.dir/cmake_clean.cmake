file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_waterfall.dir/bench_fig8_waterfall.cpp.o"
  "CMakeFiles/bench_fig8_waterfall.dir/bench_fig8_waterfall.cpp.o.d"
  "bench_fig8_waterfall"
  "bench_fig8_waterfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
