file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_replay.dir/bench_graph_replay.cpp.o"
  "CMakeFiles/bench_graph_replay.dir/bench_graph_replay.cpp.o.d"
  "bench_graph_replay"
  "bench_graph_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
