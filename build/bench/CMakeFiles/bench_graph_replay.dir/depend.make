# Empty dependencies file for bench_graph_replay.
# This may be replaced when dependencies are built.
