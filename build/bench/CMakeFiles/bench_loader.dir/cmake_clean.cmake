file(REMOVE_RECURSE
  "CMakeFiles/bench_loader.dir/bench_loader.cpp.o"
  "CMakeFiles/bench_loader.dir/bench_loader.cpp.o.d"
  "bench_loader"
  "bench_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
