file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_curves.dir/bench_scaling_curves.cpp.o"
  "CMakeFiles/bench_scaling_curves.dir/bench_scaling_curves.cpp.o.d"
  "bench_scaling_curves"
  "bench_scaling_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
