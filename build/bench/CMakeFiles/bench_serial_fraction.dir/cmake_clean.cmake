file(REMOVE_RECURSE
  "CMakeFiles/bench_serial_fraction.dir/bench_serial_fraction.cpp.o"
  "CMakeFiles/bench_serial_fraction.dir/bench_serial_fraction.cpp.o.d"
  "bench_serial_fraction"
  "bench_serial_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serial_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
