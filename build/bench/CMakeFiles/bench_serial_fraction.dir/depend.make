# Empty dependencies file for bench_serial_fraction.
# This may be replaced when dependencies are built.
