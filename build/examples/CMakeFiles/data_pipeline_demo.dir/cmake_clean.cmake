file(REMOVE_RECURSE
  "CMakeFiles/data_pipeline_demo.dir/data_pipeline_demo.cpp.o"
  "CMakeFiles/data_pipeline_demo.dir/data_pipeline_demo.cpp.o.d"
  "data_pipeline_demo"
  "data_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
