# Empty compiler generated dependencies file for data_pipeline_demo.
# This may be replaced when dependencies are built.
