file(REMOVE_RECURSE
  "CMakeFiles/mlperf_partial.dir/mlperf_partial.cpp.o"
  "CMakeFiles/mlperf_partial.dir/mlperf_partial.cpp.o.d"
  "mlperf_partial"
  "mlperf_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
