# Empty compiler generated dependencies file for mlperf_partial.
# This may be replaced when dependencies are built.
