file(REMOVE_RECURSE
  "CMakeFiles/train_minifold.dir/train_minifold.cpp.o"
  "CMakeFiles/train_minifold.dir/train_minifold.cpp.o.d"
  "train_minifold"
  "train_minifold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_minifold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
