# Empty compiler generated dependencies file for train_minifold.
# This may be replaced when dependencies are built.
