
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/gradcheck.cpp" "src/autograd/CMakeFiles/sf_autograd.dir/gradcheck.cpp.o" "gcc" "src/autograd/CMakeFiles/sf_autograd.dir/gradcheck.cpp.o.d"
  "/root/repo/src/autograd/ops_basic.cpp" "src/autograd/CMakeFiles/sf_autograd.dir/ops_basic.cpp.o" "gcc" "src/autograd/CMakeFiles/sf_autograd.dir/ops_basic.cpp.o.d"
  "/root/repo/src/autograd/ops_fold.cpp" "src/autograd/CMakeFiles/sf_autograd.dir/ops_fold.cpp.o" "gcc" "src/autograd/CMakeFiles/sf_autograd.dir/ops_fold.cpp.o.d"
  "/root/repo/src/autograd/ops_nn.cpp" "src/autograd/CMakeFiles/sf_autograd.dir/ops_nn.cpp.o" "gcc" "src/autograd/CMakeFiles/sf_autograd.dir/ops_nn.cpp.o.d"
  "/root/repo/src/autograd/var.cpp" "src/autograd/CMakeFiles/sf_autograd.dir/var.cpp.o" "gcc" "src/autograd/CMakeFiles/sf_autograd.dir/var.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/sf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sf_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
