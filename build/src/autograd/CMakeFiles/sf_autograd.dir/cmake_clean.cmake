file(REMOVE_RECURSE
  "CMakeFiles/sf_autograd.dir/gradcheck.cpp.o"
  "CMakeFiles/sf_autograd.dir/gradcheck.cpp.o.d"
  "CMakeFiles/sf_autograd.dir/ops_basic.cpp.o"
  "CMakeFiles/sf_autograd.dir/ops_basic.cpp.o.d"
  "CMakeFiles/sf_autograd.dir/ops_fold.cpp.o"
  "CMakeFiles/sf_autograd.dir/ops_fold.cpp.o.d"
  "CMakeFiles/sf_autograd.dir/ops_nn.cpp.o"
  "CMakeFiles/sf_autograd.dir/ops_nn.cpp.o.d"
  "CMakeFiles/sf_autograd.dir/var.cpp.o"
  "CMakeFiles/sf_autograd.dir/var.cpp.o.d"
  "libsf_autograd.a"
  "libsf_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
