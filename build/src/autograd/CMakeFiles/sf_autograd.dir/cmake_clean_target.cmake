file(REMOVE_RECURSE
  "libsf_autograd.a"
)
