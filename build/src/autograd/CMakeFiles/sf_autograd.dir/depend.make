# Empty dependencies file for sf_autograd.
# This may be replaced when dependencies are built.
