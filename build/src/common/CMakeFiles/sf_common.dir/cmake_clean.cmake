file(REMOVE_RECURSE
  "CMakeFiles/sf_common.dir/logging.cpp.o"
  "CMakeFiles/sf_common.dir/logging.cpp.o.d"
  "CMakeFiles/sf_common.dir/rng.cpp.o"
  "CMakeFiles/sf_common.dir/rng.cpp.o.d"
  "CMakeFiles/sf_common.dir/thread_pool.cpp.o"
  "CMakeFiles/sf_common.dir/thread_pool.cpp.o.d"
  "libsf_common.a"
  "libsf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
