file(REMOVE_RECURSE
  "CMakeFiles/sf_core.dir/session.cpp.o"
  "CMakeFiles/sf_core.dir/session.cpp.o.d"
  "libsf_core.a"
  "libsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
