file(REMOVE_RECURSE
  "CMakeFiles/sf_dap.dir/communicator.cpp.o"
  "CMakeFiles/sf_dap.dir/communicator.cpp.o.d"
  "CMakeFiles/sf_dap.dir/sharded.cpp.o"
  "CMakeFiles/sf_dap.dir/sharded.cpp.o.d"
  "libsf_dap.a"
  "libsf_dap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_dap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
