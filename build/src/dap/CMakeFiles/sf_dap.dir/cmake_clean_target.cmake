file(REMOVE_RECURSE
  "libsf_dap.a"
)
