# Empty dependencies file for sf_dap.
# This may be replaced when dependencies are built.
