file(REMOVE_RECURSE
  "CMakeFiles/sf_data.dir/loader.cpp.o"
  "CMakeFiles/sf_data.dir/loader.cpp.o.d"
  "CMakeFiles/sf_data.dir/protein_sample.cpp.o"
  "CMakeFiles/sf_data.dir/protein_sample.cpp.o.d"
  "libsf_data.a"
  "libsf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
