file(REMOVE_RECURSE
  "libsf_data.a"
)
