# Empty compiler generated dependencies file for sf_data.
# This may be replaced when dependencies are built.
