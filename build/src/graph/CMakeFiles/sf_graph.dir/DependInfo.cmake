
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/executor.cpp" "src/graph/CMakeFiles/sf_graph.dir/executor.cpp.o" "gcc" "src/graph/CMakeFiles/sf_graph.dir/executor.cpp.o.d"
  "/root/repo/src/graph/fuser.cpp" "src/graph/CMakeFiles/sf_graph.dir/fuser.cpp.o" "gcc" "src/graph/CMakeFiles/sf_graph.dir/fuser.cpp.o.d"
  "/root/repo/src/graph/ir.cpp" "src/graph/CMakeFiles/sf_graph.dir/ir.cpp.o" "gcc" "src/graph/CMakeFiles/sf_graph.dir/ir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sf_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
