file(REMOVE_RECURSE
  "CMakeFiles/sf_graph.dir/executor.cpp.o"
  "CMakeFiles/sf_graph.dir/executor.cpp.o.d"
  "CMakeFiles/sf_graph.dir/fuser.cpp.o"
  "CMakeFiles/sf_graph.dir/fuser.cpp.o.d"
  "CMakeFiles/sf_graph.dir/ir.cpp.o"
  "CMakeFiles/sf_graph.dir/ir.cpp.o.d"
  "libsf_graph.a"
  "libsf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
