file(REMOVE_RECURSE
  "libsf_graph.a"
)
