# Empty compiler generated dependencies file for sf_graph.
# This may be replaced when dependencies are built.
