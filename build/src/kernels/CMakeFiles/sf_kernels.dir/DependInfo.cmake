
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/attention.cpp" "src/kernels/CMakeFiles/sf_kernels.dir/attention.cpp.o" "gcc" "src/kernels/CMakeFiles/sf_kernels.dir/attention.cpp.o.d"
  "/root/repo/src/kernels/bf16_kernels.cpp" "src/kernels/CMakeFiles/sf_kernels.dir/bf16_kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/sf_kernels.dir/bf16_kernels.cpp.o.d"
  "/root/repo/src/kernels/elementwise.cpp" "src/kernels/CMakeFiles/sf_kernels.dir/elementwise.cpp.o" "gcc" "src/kernels/CMakeFiles/sf_kernels.dir/elementwise.cpp.o.d"
  "/root/repo/src/kernels/gemm.cpp" "src/kernels/CMakeFiles/sf_kernels.dir/gemm.cpp.o" "gcc" "src/kernels/CMakeFiles/sf_kernels.dir/gemm.cpp.o.d"
  "/root/repo/src/kernels/layernorm.cpp" "src/kernels/CMakeFiles/sf_kernels.dir/layernorm.cpp.o" "gcc" "src/kernels/CMakeFiles/sf_kernels.dir/layernorm.cpp.o.d"
  "/root/repo/src/kernels/optimizer_kernels.cpp" "src/kernels/CMakeFiles/sf_kernels.dir/optimizer_kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/sf_kernels.dir/optimizer_kernels.cpp.o.d"
  "/root/repo/src/kernels/softmax.cpp" "src/kernels/CMakeFiles/sf_kernels.dir/softmax.cpp.o" "gcc" "src/kernels/CMakeFiles/sf_kernels.dir/softmax.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
