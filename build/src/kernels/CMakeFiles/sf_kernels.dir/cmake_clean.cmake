file(REMOVE_RECURSE
  "CMakeFiles/sf_kernels.dir/attention.cpp.o"
  "CMakeFiles/sf_kernels.dir/attention.cpp.o.d"
  "CMakeFiles/sf_kernels.dir/bf16_kernels.cpp.o"
  "CMakeFiles/sf_kernels.dir/bf16_kernels.cpp.o.d"
  "CMakeFiles/sf_kernels.dir/elementwise.cpp.o"
  "CMakeFiles/sf_kernels.dir/elementwise.cpp.o.d"
  "CMakeFiles/sf_kernels.dir/gemm.cpp.o"
  "CMakeFiles/sf_kernels.dir/gemm.cpp.o.d"
  "CMakeFiles/sf_kernels.dir/layernorm.cpp.o"
  "CMakeFiles/sf_kernels.dir/layernorm.cpp.o.d"
  "CMakeFiles/sf_kernels.dir/optimizer_kernels.cpp.o"
  "CMakeFiles/sf_kernels.dir/optimizer_kernels.cpp.o.d"
  "CMakeFiles/sf_kernels.dir/softmax.cpp.o"
  "CMakeFiles/sf_kernels.dir/softmax.cpp.o.d"
  "libsf_kernels.a"
  "libsf_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
