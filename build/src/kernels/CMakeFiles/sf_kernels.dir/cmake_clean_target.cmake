file(REMOVE_RECURSE
  "libsf_kernels.a"
)
