# Empty dependencies file for sf_kernels.
# This may be replaced when dependencies are built.
