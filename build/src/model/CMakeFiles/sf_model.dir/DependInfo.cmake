
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/alphafold.cpp" "src/model/CMakeFiles/sf_model.dir/alphafold.cpp.o" "gcc" "src/model/CMakeFiles/sf_model.dir/alphafold.cpp.o.d"
  "/root/repo/src/model/metrics.cpp" "src/model/CMakeFiles/sf_model.dir/metrics.cpp.o" "gcc" "src/model/CMakeFiles/sf_model.dir/metrics.cpp.o.d"
  "/root/repo/src/model/modules.cpp" "src/model/CMakeFiles/sf_model.dir/modules.cpp.o" "gcc" "src/model/CMakeFiles/sf_model.dir/modules.cpp.o.d"
  "/root/repo/src/model/params.cpp" "src/model/CMakeFiles/sf_model.dir/params.cpp.o" "gcc" "src/model/CMakeFiles/sf_model.dir/params.cpp.o.d"
  "/root/repo/src/model/rigid.cpp" "src/model/CMakeFiles/sf_model.dir/rigid.cpp.o" "gcc" "src/model/CMakeFiles/sf_model.dir/rigid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/sf_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sf_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
