file(REMOVE_RECURSE
  "CMakeFiles/sf_model.dir/alphafold.cpp.o"
  "CMakeFiles/sf_model.dir/alphafold.cpp.o.d"
  "CMakeFiles/sf_model.dir/metrics.cpp.o"
  "CMakeFiles/sf_model.dir/metrics.cpp.o.d"
  "CMakeFiles/sf_model.dir/modules.cpp.o"
  "CMakeFiles/sf_model.dir/modules.cpp.o.d"
  "CMakeFiles/sf_model.dir/params.cpp.o"
  "CMakeFiles/sf_model.dir/params.cpp.o.d"
  "CMakeFiles/sf_model.dir/rigid.cpp.o"
  "CMakeFiles/sf_model.dir/rigid.cpp.o.d"
  "libsf_model.a"
  "libsf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
