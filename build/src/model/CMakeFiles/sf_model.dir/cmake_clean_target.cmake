file(REMOVE_RECURSE
  "libsf_model.a"
)
