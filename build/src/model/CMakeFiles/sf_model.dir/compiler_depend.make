# Empty compiler generated dependencies file for sf_model.
# This may be replaced when dependencies are built.
