
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/sf_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/collective.cpp" "src/sim/CMakeFiles/sf_sim.dir/collective.cpp.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/collective.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/sf_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/gpu_arch.cpp" "src/sim/CMakeFiles/sf_sim.dir/gpu_arch.cpp.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/gpu_arch.cpp.o.d"
  "/root/repo/src/sim/ttt.cpp" "src/sim/CMakeFiles/sf_sim.dir/ttt.cpp.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/ttt.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/sf_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/sf_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
