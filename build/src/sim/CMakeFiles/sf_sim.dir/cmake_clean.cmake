file(REMOVE_RECURSE
  "CMakeFiles/sf_sim.dir/cluster.cpp.o"
  "CMakeFiles/sf_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/sf_sim.dir/collective.cpp.o"
  "CMakeFiles/sf_sim.dir/collective.cpp.o.d"
  "CMakeFiles/sf_sim.dir/cost_model.cpp.o"
  "CMakeFiles/sf_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/sf_sim.dir/gpu_arch.cpp.o"
  "CMakeFiles/sf_sim.dir/gpu_arch.cpp.o.d"
  "CMakeFiles/sf_sim.dir/ttt.cpp.o"
  "CMakeFiles/sf_sim.dir/ttt.cpp.o.d"
  "CMakeFiles/sf_sim.dir/workload.cpp.o"
  "CMakeFiles/sf_sim.dir/workload.cpp.o.d"
  "libsf_sim.a"
  "libsf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
