file(REMOVE_RECURSE
  "CMakeFiles/sf_tensor.dir/tensor.cpp.o"
  "CMakeFiles/sf_tensor.dir/tensor.cpp.o.d"
  "libsf_tensor.a"
  "libsf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
