file(REMOVE_RECURSE
  "libsf_tensor.a"
)
