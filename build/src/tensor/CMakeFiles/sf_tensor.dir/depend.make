# Empty dependencies file for sf_tensor.
# This may be replaced when dependencies are built.
