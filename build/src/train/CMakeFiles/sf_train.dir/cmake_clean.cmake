file(REMOVE_RECURSE
  "CMakeFiles/sf_train.dir/checkpoint.cpp.o"
  "CMakeFiles/sf_train.dir/checkpoint.cpp.o.d"
  "CMakeFiles/sf_train.dir/data_parallel.cpp.o"
  "CMakeFiles/sf_train.dir/data_parallel.cpp.o.d"
  "CMakeFiles/sf_train.dir/evaluator.cpp.o"
  "CMakeFiles/sf_train.dir/evaluator.cpp.o.d"
  "CMakeFiles/sf_train.dir/optimizer.cpp.o"
  "CMakeFiles/sf_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/sf_train.dir/trainer.cpp.o"
  "CMakeFiles/sf_train.dir/trainer.cpp.o.d"
  "libsf_train.a"
  "libsf_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
