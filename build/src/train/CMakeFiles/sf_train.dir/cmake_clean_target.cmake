file(REMOVE_RECURSE
  "libsf_train.a"
)
