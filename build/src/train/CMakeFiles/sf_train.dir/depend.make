# Empty dependencies file for sf_train.
# This may be replaced when dependencies are built.
