file(REMOVE_RECURSE
  "CMakeFiles/test_autograd_sweep.dir/test_autograd_sweep.cpp.o"
  "CMakeFiles/test_autograd_sweep.dir/test_autograd_sweep.cpp.o.d"
  "test_autograd_sweep"
  "test_autograd_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autograd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
