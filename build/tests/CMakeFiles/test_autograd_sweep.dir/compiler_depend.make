# Empty compiler generated dependencies file for test_autograd_sweep.
# This may be replaced when dependencies are built.
