file(REMOVE_RECURSE
  "CMakeFiles/test_aux_losses.dir/test_aux_losses.cpp.o"
  "CMakeFiles/test_aux_losses.dir/test_aux_losses.cpp.o.d"
  "test_aux_losses"
  "test_aux_losses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aux_losses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
