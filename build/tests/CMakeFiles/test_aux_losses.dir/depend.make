# Empty dependencies file for test_aux_losses.
# This may be replaced when dependencies are built.
