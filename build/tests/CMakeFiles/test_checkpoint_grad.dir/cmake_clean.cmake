file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_grad.dir/test_checkpoint_grad.cpp.o"
  "CMakeFiles/test_checkpoint_grad.dir/test_checkpoint_grad.cpp.o.d"
  "test_checkpoint_grad"
  "test_checkpoint_grad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
