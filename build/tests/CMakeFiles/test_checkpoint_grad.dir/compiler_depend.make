# Empty compiler generated dependencies file for test_checkpoint_grad.
# This may be replaced when dependencies are built.
