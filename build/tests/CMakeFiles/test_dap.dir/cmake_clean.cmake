file(REMOVE_RECURSE
  "CMakeFiles/test_dap.dir/test_dap.cpp.o"
  "CMakeFiles/test_dap.dir/test_dap.cpp.o.d"
  "test_dap"
  "test_dap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
