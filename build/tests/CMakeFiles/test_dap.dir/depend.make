# Empty dependencies file for test_dap.
# This may be replaced when dependencies are built.
