
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_data_parallel.cpp" "tests/CMakeFiles/test_data_parallel.dir/test_data_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_data_parallel.dir/test_data_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/sf_train.dir/DependInfo.cmake"
  "/root/repo/build/src/dap/CMakeFiles/sf_dap.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/sf_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sf_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
