# Empty dependencies file for test_data_parallel.
# This may be replaced when dependencies are built.
