file(REMOVE_RECURSE
  "CMakeFiles/test_layernorm.dir/test_layernorm.cpp.o"
  "CMakeFiles/test_layernorm.dir/test_layernorm.cpp.o.d"
  "test_layernorm"
  "test_layernorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layernorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
