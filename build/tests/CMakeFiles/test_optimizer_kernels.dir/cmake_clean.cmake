file(REMOVE_RECURSE
  "CMakeFiles/test_optimizer_kernels.dir/test_optimizer_kernels.cpp.o"
  "CMakeFiles/test_optimizer_kernels.dir/test_optimizer_kernels.cpp.o.d"
  "test_optimizer_kernels"
  "test_optimizer_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimizer_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
