file(REMOVE_RECURSE
  "CMakeFiles/test_rigid.dir/test_rigid.cpp.o"
  "CMakeFiles/test_rigid.dir/test_rigid.cpp.o.d"
  "test_rigid"
  "test_rigid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rigid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
