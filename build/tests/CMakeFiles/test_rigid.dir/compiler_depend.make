# Empty compiler generated dependencies file for test_rigid.
# This may be replaced when dependencies are built.
