#!/usr/bin/env bash
# Nightly CI lane: everything the per-commit lane is too slow for.
#
#   1. plain build (reuses ./build if present);
#   2. full suite including slow-labeled tests, both thread pins;
#   3. the chaos matrix: bench_chaos_matrix --check sweeps
#      SF_CHAOS_SEEDS (>= 16) seeded random_schedule weathers through the
#      DESIGN.md §10 fault-site table — elastic DDP with grow-under-fire,
#      blocking DAP collectives with abort/recover, loader prep faults +
#      worker kill, checkpoint writes crashing mid-save;
#   4. a longer serving soak at a distinct seed;
#   5. BENCH_*.json validation.
#
# Same loud-skip contract as ci.sh: nothing is skipped silently.
set -uo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"
PASSED=0
FAILED=0
SKIPPED=0
SUMMARY=()

gate() {
  local name="$1"
  shift
  echo "==> ${name}"
  if "$@"; then
    SUMMARY+=("PASS    ${name}")
    PASSED=$((PASSED + 1))
  else
    SUMMARY+=("FAIL    ${name}")
    FAILED=$((FAILED + 1))
  fi
}

finish() {
  echo
  echo "==== nightly gate summary ===="
  printf '%s\n' "${SUMMARY[@]}"
  echo "passed=${PASSED} failed=${FAILED} skipped=${SKIPPED}"
  if [ "${FAILED}" -ne 0 ]; then
    echo "RESULT: FAIL"
    exit 1
  fi
  echo "RESULT: PASS"
}
trap finish EXIT

echo "==> plain build"
cmake -B build -S . >/dev/null
if ! cmake --build build -j "${JOBS}"; then
  SUMMARY+=("FAIL    plain build")
  FAILED=$((FAILED + 1))
  exit 1
fi
SUMMARY+=("PASS    plain build")
PASSED=$((PASSED + 1))

gate "full suite (slow included) at SF_NUM_THREADS=1" \
  env SF_NUM_THREADS=1 ctest --test-dir build --output-on-failure \
  -j "${JOBS}"
gate "full suite (slow included) at SF_NUM_THREADS=4" \
  env SF_NUM_THREADS=4 ctest --test-dir build --output-on-failure \
  -j "${JOBS}"

# The chaos matrix: >= 16 seeds through the whole §10 fault-site table.
CHAOS_SEEDS="${SF_CHAOS_SEEDS:-16}"
gate "chaos matrix (${CHAOS_SEEDS} seeds x {ddp, dap, loader, checkpoint})" \
  env SF_SEED="${SF_SEED:-2024}" SF_CHAOS_SEEDS="${CHAOS_SEEDS}" \
  ./build/bench/bench_chaos_matrix --check \
  --out build/BENCH_chaos_matrix.json

# Serving soak at a seed the per-commit lane does not use.
gate "serving SLO gates at nightly seed" \
  env SF_SEED=4242 ./build/bench/bench_serving --check \
  --out build/BENCH_serving_nightly.json

gate "BENCH_*.json schema/finiteness/axis validation" \
  python3 tools/check_bench_json.py --dir build
