#!/usr/bin/env bash
# Per-commit CI lane.
#
# Gates, in order:
#   1. plain RelWithDebInfo build (fatal: nothing below runs without it);
#   2. tier-1 ctest three times — intra-op parallelism pinned to 1 thread,
#      at SF_NUM_THREADS=4, and once under the forced-scalar SIMD tier
#      (SF_SIMD=scalar) — because every parallelized kernel guarantees
#      bitwise-identical outputs across thread counts AND SIMD tiers;
#   3. bench --check gates: kernel scaling + bitwise determinism,
#      overlapped all-reduce identity, elastic world under pinned chaos
#      weather, and the serving layer's SLO gates (batched > serial
#      throughput, cache effectiveness, p99 under the pinned SLO, overload
#      shedding) -> BENCH_*.json artifacts;
#   4. tools/check_bench_json.py over every BENCH_*.json (fields present,
#      numbers finite, load axes monotone);
#   5. ASan+UBSan build + full suite;
#   6. TSan build + `ctest -L concurrency -LE slow` (selection by ctest
#      label, not by name regex — a new concurrent test only needs the
#      label to be covered).
#
# Host-capability-conditional gates are never skipped silently: anything
# this host cannot exercise prints "SKIPPED: <reason>" and is counted in
# the summary, so a lane that looks green but checked less says so.
#
# The seed-matrix chaos sweep lives in ci-nightly.sh.
set -uo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"
PASSED=0
FAILED=0
SKIPPED=0
SUMMARY=()

# gate <name> <cmd...> — run a gate, record PASS/FAIL, keep going.
gate() {
  local name="$1"
  shift
  echo "==> ${name}"
  if "$@"; then
    SUMMARY+=("PASS    ${name}")
    PASSED=$((PASSED + 1))
  else
    SUMMARY+=("FAIL    ${name}")
    FAILED=$((FAILED + 1))
  fi
}

# skip <name> <reason> — record a gate this host cannot run. Loud on
# purpose: a skipped gate must show up in the log AND the summary counts.
skip() {
  echo "==> ${1}"
  echo "SKIPPED: ${2}"
  SUMMARY+=("SKIPPED ${1} (${2})")
  SKIPPED=$((SKIPPED + 1))
}

finish() {
  echo
  echo "==== gate summary ===="
  printf '%s\n' "${SUMMARY[@]}"
  echo "passed=${PASSED} failed=${FAILED} skipped=${SKIPPED}"
  if [ "${FAILED}" -ne 0 ]; then
    echo "RESULT: FAIL"
    exit 1
  fi
  if [ "${SKIPPED}" -ne 0 ]; then
    echo "RESULT: PASS (with ${SKIPPED} skipped gate(s) — see above)"
  else
    echo "RESULT: PASS"
  fi
}
trap finish EXIT

echo "==> plain build"
cmake -B build -S . >/dev/null
if ! cmake --build build -j "${JOBS}"; then
  SUMMARY+=("FAIL    plain build")
  FAILED=$((FAILED + 1))
  exit 1  # nothing else can run
fi
SUMMARY+=("PASS    plain build")
PASSED=$((PASSED + 1))

gate "tier-1 tests at SF_NUM_THREADS=1" \
  env SF_NUM_THREADS=1 ctest --test-dir build -L tier1 \
  --output-on-failure -j "${JOBS}"
gate "tier-1 tests at SF_NUM_THREADS=4" \
  env SF_NUM_THREADS=4 ctest --test-dir build -L tier1 \
  --output-on-failure -j "${JOBS}"
gate "tier-1 tests at SF_SIMD=scalar (forced-scalar SIMD tier)" \
  env SF_SIMD=scalar SF_NUM_THREADS=4 ctest --test-dir build -L tier1 \
  --output-on-failure -j "${JOBS}"

if [ "${JOBS}" -lt 4 ]; then
  skip "kernel 4-thread speedup gate (>=2.5x)" \
    "host has ${JOBS} hardware thread(s) < 4; bitwise determinism is still checked below"
fi
gate "bench_parallel_scaling --check (bitwise determinism + scaling)" \
  ./build/bench/bench_parallel_scaling --check \
  --out build/BENCH_kernels.json

if [ "${JOBS}" -lt 2 ]; then
  skip "all-reduce overlap wall-clock gate" \
    "host has ${JOBS} hardware thread(s) < 2; bitwise identity is still checked below"
fi
gate "bench_overlap_allreduce --check (bitwise identity + overlap)" \
  ./build/bench/bench_overlap_allreduce --check \
  --out build/BENCH_overlap.json

gate "bench_elastic --check (pinned chaos weather, SF_SEED=2024)" \
  env SF_SEED=2024 ./build/bench/bench_elastic --check \
  --out build/BENCH_elastic.json

gate "bench_serving --check (SLO: batched>serial, cache, p99, shedding)" \
  ./build/bench/bench_serving --check --out build/BENCH_serving.json

gate "BENCH_*.json schema/finiteness/axis validation" \
  python3 tools/check_bench_json.py --dir build

echo "==> address,undefined sanitizer build"
if cmake -B build-asan -S . -DSCALEFOLD_SANITIZE=address,undefined \
    >/dev/null && cmake --build build-asan -j "${JOBS}"; then
  gate "ASan+UBSan full suite" \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}"
else
  SUMMARY+=("FAIL    ASan+UBSan build")
  FAILED=$((FAILED + 1))
fi

echo "==> thread sanitizer build (ctest label: concurrency, minus slow)"
TSAN_TARGETS=(test_common test_parallel test_gemm test_fault test_obs
  test_loader test_data test_dap test_data_parallel test_overlap
  test_elastic test_checkpoint_robust test_serving)
if cmake -B build-tsan -S . -DSCALEFOLD_SANITIZE=thread >/dev/null &&
  cmake --build build-tsan -j "${JOBS}" --target "${TSAN_TARGETS[@]}"; then
  gate "TSan concurrency suite (ctest -L concurrency -LE slow)" \
    env SF_NUM_THREADS=4 ctest --test-dir build-tsan -L concurrency \
    -LE slow --output-on-failure -j "${JOBS}"
else
  SUMMARY+=("FAIL    TSan build")
  FAILED=$((FAILED + 1))
fi
