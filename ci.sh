#!/usr/bin/env bash
# CI entry point: build + test twice — a plain RelWithDebInfo pass, then an
# ASan+UBSan pass so the loader/fault concurrency paths run under the
# sanitizers on every change.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "==> plain build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> address,undefined sanitizer build"
cmake -B build-asan -S . -DSCALEFOLD_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "==> all green"
