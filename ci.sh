#!/usr/bin/env bash
# CI entry point: build + test three times — a plain RelWithDebInfo pass,
# an ASan+UBSan pass, and a TSan pass over the concurrency-heavy suites
# (thread pool, parallel_for substrate, parallel kernels, prefetch loader,
# fault injection, tracer/metrics, DAP communicator, overlapped DDP
# all-reduce, elastic world-size resize) so data races surface on every
# change.
#
# The plain suite runs twice: once with intra-op parallelism pinned to a
# single thread and once at SF_NUM_THREADS=4, because every parallelized
# kernel guarantees bitwise-identical outputs across thread counts and
# both configurations must stay green. bench_parallel_scaling --check then
# verifies that guarantee directly (memcmp per kernel) and — on hosts with
# >= 4 hardware threads — enforces >= 1.5x aggregate GEMM speedup at 4
# threads.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "==> plain build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
echo "==> tests at SF_NUM_THREADS=1"
SF_NUM_THREADS=1 ctest --test-dir build --output-on-failure -j "$JOBS"
echo "==> tests at SF_NUM_THREADS=4"
SF_NUM_THREADS=4 ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> parallel scaling + bitwise determinism gate"
./build/bench/bench_parallel_scaling --check --out build/BENCH_kernels.json

echo "==> overlapped all-reduce: bitwise identity + overlap gate"
./build/bench/bench_overlap_allreduce --check --out build/BENCH_overlap.json

echo "==> elastic world size under pinned chaos weather (SF_SEED=2024)"
SF_SEED=2024 ./build/bench/bench_elastic --check --out build/BENCH_elastic.json

echo "==> address,undefined sanitizer build"
cmake -B build-asan -S . -DSCALEFOLD_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "==> thread sanitizer build (concurrency suites)"
cmake -B build-tsan -S . -DSCALEFOLD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  test_common test_parallel test_gemm test_fault test_obs test_loader \
  test_data test_dap test_overlap test_elastic
SF_NUM_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R '^(test_common|test_parallel|test_gemm|test_fault|test_obs|test_loader|test_data|test_dap|test_overlap|test_elastic)$'

echo "==> all green"
