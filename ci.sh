#!/usr/bin/env bash
# CI entry point: build + test three times — a plain RelWithDebInfo pass,
# an ASan+UBSan pass, and a TSan pass over the concurrency-heavy suites
# (thread pool, prefetch loader, fault injection, tracer/metrics) so data
# races surface on every change.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc)"

echo "==> plain build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> address,undefined sanitizer build"
cmake -B build-asan -S . -DSCALEFOLD_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "==> thread sanitizer build (concurrency suites)"
cmake -B build-tsan -S . -DSCALEFOLD_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  test_common test_fault test_obs test_loader test_data
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R '^(test_common|test_fault|test_obs|test_loader|test_data)$'

echo "==> all green"
