// Cluster-scale what-if studies with the calibrated simulator: step time,
// barrier breakdown and time-to-train for user-chosen GPU counts and DAP
// degrees on A100 or H100.
//
//   $ ./cluster_scaling [num_gpus] [arch]
//   $ ./cluster_scaling 2048 h100
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/cluster.h"
#include "sim/ttt.h"

using namespace sf::sim;

int main(int argc, char** argv) {
  int num_gpus = argc > 1 ? std::atoi(argv[1]) : 512;
  GpuArch arch = (argc > 2 && std::strcmp(argv[2], "a100") == 0)
                     ? GpuArch::a100()
                     : GpuArch::h100();

  std::printf("=== ScaleFold cluster what-if: %d x %s ===\n\n", num_gpus,
              arch.name.c_str());

  std::printf("%-6s | %-10s | %9s | %9s | %9s | %9s | %9s\n", "DAP", "mode",
              "step (s)", "compute", "cpu-ovh", "comm", "stalls");
  for (int dap : {1, 2, 4, 8}) {
    if (num_gpus % dap != 0) continue;
    for (bool optimized : {false, true}) {
      ClusterConfig cfg;
      cfg.arch = arch;
      cfg.num_gpus = num_gpus;
      cfg.dap = dap;
      cfg.sim_steps = 200;
      if (optimized) cfg.toggles = Toggles::all_on();
      StepStats s = simulate_step_time(cfg);
      std::printf("%-6d | %-10s | %9.3f | %9.3f | %9.3f | %9.3f | %9.3f\n",
                  dap, optimized ? "scalefold" : "baseline", s.mean_step_s,
                  s.compute_s, s.cpu_overhead_s, s.dap_comm_s + s.grad_comm_s,
                  s.imbalance_s + s.data_wait_s);
    }
  }

  std::printf("\n--- barrier breakdown (baseline toggles, Fig. 3 view) ---\n");
  for (int dap : {2, 4, 8}) {
    if (num_gpus % dap != 0) continue;
    ClusterConfig cfg;
    cfg.arch = arch;
    cfg.num_gpus = num_gpus;
    cfg.dap = dap;
    BarrierBreakdown b = barrier_breakdown(cfg);
    std::printf("DAP-%d: cpu %.0f%%, serial %.0f%%, imbalance %.0f%%, "
                "kernel-scaling %.0f%%, comm %.0f%%\n",
                dap, b.cpu_overhead * 100, b.serial_modules * 100,
                b.imbalanced_comm * 100, b.kernel_scalability * 100,
                b.comm_overhead * 100);
  }

  std::printf("\n--- MLPerf-style time-to-train on this cluster ---\n");
  for (bool async : {false, true}) {
    TttConfig t;
    t.cluster.arch = arch;
    t.cluster.num_gpus = num_gpus;
    t.cluster.dap = num_gpus % 8 == 0 ? 8 : 1;
    t.cluster.toggles = Toggles::all_on();
    t.total_steps = 400;
    t.async_eval = async;
    TttResult r = time_to_train(t);
    std::printf("%s eval: %.1f min (init %.1f + train %.1f + eval %.1f)\n",
                async ? "async" : "sync ", r.total_s / 60, r.init_s / 60,
                r.train_s / 60, r.eval_s / 60);
  }
  return 0;
}
