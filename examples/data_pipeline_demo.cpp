// Live demonstration of the non-blocking data pipeline (§3.2, Fig. 5):
// identical worker pools prepare real featurized batches with long-tailed
// prep times; the consumer runs fixed-length "training steps" and logs
// when each policy makes it wait.
//
//   $ ./data_pipeline_demo
#include <cstdio>
#include <thread>

#include "common/timer.h"
#include "data/loader.h"
#include "data/protein_sample.h"

using namespace sf;
using namespace sf::data;

namespace {

void run_policy(const SyntheticProteinDataset& ds, YieldPolicy policy,
                const char* name) {
  LoaderConfig lc;
  lc.policy = policy;
  lc.num_workers = 2;
  lc.max_in_flight = 4;
  const int64_t n = 32;
  PrefetchLoader loader([&ds](int64_t i) { return ds.prepare_batch(i); }, n,
                        lc);
  std::printf("--- %s ---\n", name);
  double idle = 0;
  Timer total;
  int64_t reordered = 0;
  int64_t expected = 0;
  while (loader.has_next()) {
    Timer wait;
    Batch b = loader.next();
    double w = wait.elapsed();
    idle += w;
    if (b.index != expected) ++reordered;
    ++expected;
    if (w > 2e-3) {
      std::printf("  step %3lld: waited %6.2f ms for batch %lld (prep "
                  "%6.2f ms)\n",
                  static_cast<long long>(expected - 1), w * 1e3,
                  static_cast<long long>(b.index), b.prep_seconds * 1e3);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));  // the step
  }
  std::printf("  total %.1f ms, consumer idle %.1f ms, out-of-order yields "
              "%lld/%lld\n\n",
              total.elapsed() * 1e3, idle * 1e3,
              static_cast<long long>(reordered), static_cast<long long>(n));
}

}  // namespace

int main() {
  DatasetConfig cfg;
  cfg.num_samples = 48;
  cfg.crop_len = 32;
  cfg.msa_rows = 4;
  cfg.msa_work_cap = 2500;
  cfg.seed = 1234;
  SyntheticProteinDataset ds(cfg);

  std::printf("=== non-blocking data pipeline demo ===\n");
  std::printf("dataset: %lld samples; prep times span:\n",
              static_cast<long long>(ds.size()));
  double fastest = 1e9, slowest = 0;
  for (int64_t i = 0; i < 32; ++i) {
    double t = ds.prepare_batch(i).prep_seconds;
    fastest = std::min(fastest, t);
    slowest = std::max(slowest, t);
  }
  std::printf("  fastest %.2f ms .. slowest %.2f ms (%.0fx)\n\n",
              fastest * 1e3, slowest * 1e3, slowest / fastest);

  run_policy(ds, YieldPolicy::kInOrder,
             "(i) PyTorch-style in-order pipeline");
  run_policy(ds, YieldPolicy::kReadyFirst,
             "(ii) ScaleFold non-blocking pipeline");
  std::printf("the non-blocking pipeline trades a bounded amount of batch "
              "reordering for the elimination of consumer stalls; the "
              "paper observed no convergence impact.\n");
  return 0;
}
