// MLPerf-HPC-style partial training, for real at mini scale (Fig. 10's
// setting): initialize from a predefined checkpoint, then train to a
// lowered accuracy target — once with every ScaleFold optimization off
// (naive kernels, unfused optimizer, in-order loader) and once with the
// full ScaleFold method. Both runs compute identical math; the wall-clock
// difference is the real, measured analogue of the paper's 6x.
//
//   $ ./mlperf_partial
#include <cstdio>

#include "common/timer.h"
#include "core/scalefold.h"
#include "train/checkpoint.h"

using namespace sf;

namespace {

core::ScaleFoldOptions make_options(bool scalefold) {
  core::ScaleFoldOptions o;
  o.nonblocking_loader = scalefold;
  o.flash_mha = scalefold;
  o.fused_layernorm = scalefold;
  o.fused_optimizer = scalefold;
  o.bucketed_grad_norm = scalefold;
  o.async_eval = scalefold;
  o.cached_eval = true;

  o.dataset.num_samples = 200;
  o.dataset.crop_len = 12;
  o.dataset.msa_rows = 3;
  o.dataset.msa_work_cap = 400;
  o.dataset.seed = 99;
  o.model.c_m = 8;
  o.model.c_z = 8;
  o.model.c_s = 8;
  o.model.heads = 2;
  o.model.head_dim = 4;
  o.model.evoformer_blocks = 1;
  o.model.use_extra_msa_stack = false;
  o.model.use_template_stack = false;
  o.model.opm_dim = 2;
  o.model.transition_factor = 2;
  o.model.structure_layers = 1;
  // The baseline also carries gradient checkpointing (the OpenFold
  // reference's memory trade); ScaleFold disables it (§4.1).
  o.model.gradient_checkpointing = !scalefold;
  o.train.base_lr = 3e-3f;
  o.train.warmup_steps = 5;
  o.train.min_recycles = 1;
  o.train.max_recycles = 1;
  o.train.opt.clip_norm = 5.0f;
  o.train.opt.swa_decay = 0.9f;
  o.eval_samples = 3;
  o.seed = 77;
  return o;
}

}  // namespace

int main() {
  const char* ckpt_path = "/tmp/mlperf_partial_init.ckpt";
  const float target_lddt_gain = 0.05f;

  // Phase 0: produce the "predefined checkpoint" (MLPerf initializes from
  // a partially trained model rather than from scratch).
  float ckpt_lddt;
  {
    std::printf("preparing checkpoint: 40 warmup steps...\n");
    core::TrainingSession warmup(make_options(true));
    warmup.run(40);
    ckpt_lddt = warmup.evaluate_now().avg_lddt;
    train::save_checkpoint(ckpt_path, warmup.net().params());
    std::printf("checkpoint written (eval lDDT-Ca %.3f); target: %.3f\n\n",
                ckpt_lddt, ckpt_lddt + target_lddt_gain);
  }

  // Phase 1: time-to-target from the checkpoint, baseline vs ScaleFold.
  struct RunResult {
    double seconds = 0;
    int64_t steps = 0;
    float final_lddt = 0;
  };
  auto run = [&](bool scalefold) {
    core::TrainingSession session(make_options(scalefold));
    train::load_checkpoint(ckpt_path, session.net().params());
    RunResult r;
    Timer t;
    const float target = ckpt_lddt + target_lddt_gain;
    for (int chunk = 0; chunk < 10; ++chunk) {
      session.run(12);
      r.steps += 12;
      r.final_lddt = session.evaluate_now().avg_lddt;
      if (r.final_lddt >= target) break;
    }
    r.seconds = t.elapsed();
    return r;
  };

  std::printf("%-26s | %8s | %8s | %10s\n", "configuration", "steps",
              "lddt_ca", "wall time");
  RunResult ref = run(false);
  std::printf("%-26s | %8lld | %8.3f | %8.2f s\n",
              "reference (all opts off)", (long long)ref.steps,
              ref.final_lddt, ref.seconds);
  RunResult sf_run = run(true);
  std::printf("%-26s | %8lld | %8.3f | %8.2f s\n", "ScaleFold (all opts on)",
              (long long)sf_run.steps, sf_run.final_lddt, sf_run.seconds);

  std::printf("\nmeasured speedup to target: %.2fx "
              "(paper, at 2080 H100 vs reference: >6x)\n",
              ref.seconds / sf_run.seconds);
  std::printf("both paths compute the same math — the gap is fused kernels, "
              "fused optimizer, no checkpoint recompute, non-blocking "
              "loading and async evaluation.\n");
  return 0;
}
