// Serve demo: train a mini-AlphaFold briefly, then stand up the inference
// service on its weights and push requests through it.
//
//   $ ./serve_demo
//
// Walks the serving layer end to end: TrainingSession -> make_server ->
// admission control -> feature cache -> length-bucketed continuous
// batching -> per-request latency breakdown. See DESIGN.md §11 and
// bench_serving for the SLO-gated version of this flow.
#include <cstdio>

#include "core/scalefold.h"

int main() {
  using namespace sf;

  // 1. Train for a handful of steps so the served weights are not random.
  //    The dataset doubles as the request population: a submit() names a
  //    sample index and the featurizer re-derives its sequence.
  core::ScaleFoldOptions opts;
  opts.dataset.num_samples = 24;
  opts.dataset.crop_len = 24;
  opts.dataset.msa_rows = 4;
  opts.dataset.len_log_mean = 2.7;  // median ~15 residues: spans buckets
  opts.dataset.len_log_sigma = 0.6;
  opts.dataset.min_seq_len = 6;
  opts.dataset.max_seq_len = 48;
  opts.dataset.msa_work_cap = 256;
  opts.dataset.seed = 42;
  opts.model.crop_len = 24;
  opts.model.msa_rows = 4;
  opts.model.c_m = 16;
  opts.model.c_z = 16;
  opts.model.c_s = 16;
  opts.model.heads = 2;
  opts.model.head_dim = 8;
  opts.model.evoformer_blocks = 1;
  opts.model.opm_dim = 4;
  opts.model.structure_layers = 1;
  opts.train.warmup_steps = 0;
  opts.train.max_recycles = 1;
  opts.eval_samples = 0;
  opts.loader_workers = 1;
  opts.loader_prefetch = 2;
  core::TrainingSession session(opts);
  auto records = session.run(4);
  std::printf("trained %zu steps, final loss %.4f\n", records.size(),
              records.back().loss);

  // 2. Build the service on the trained weights. Buckets cover the length
  //    distribution so short sequences never pay for long ones; the cache
  //    makes repeated sequences skip featurization; admission bounds both
  //    outstanding count and outstanding estimated work.
  serve::ServeConfig sc;
  sc.scheduler.bucket_lens = {12, 16, 24};
  sc.scheduler.max_batch = 4;
  sc.admission.max_queue_depth = 32;
  sc.admission.max_outstanding_work = 40 * serve::estimate_work(24);
  sc.cache.max_bytes = 8ll << 20;
  sc.feature_workers = 2;
  sc.model_workers = 1;
  sc.num_recycles = 1;
  auto server = session.make_server(sc);

  // 3. Submit every sample once, then the first eight again — the second
  //    pass hits the feature cache.
  for (int64_t i = 0; i < opts.dataset.num_samples; ++i) server->submit(i);
  for (int64_t i = 0; i < 8; ++i) server->submit(i);
  auto responses = server->wait_all();

  // 4. Per-request latency breakdown (the same spans the tracer records:
  //    queue -> featurize -> batch wait -> forward).
  std::printf("\n%-4s %-6s %-5s %-5s %9s %9s %9s %9s %9s\n", "id", "bucket",
              "batch", "cache", "queue_ms", "feat_ms", "wait_ms", "fwd_ms",
              "total_ms");
  for (const auto& r : responses) {
    if (!r.ok) {
      std::printf("%-4lld rejected: %s\n", static_cast<long long>(r.id),
                  serve::reject_reason_name(r.reject));
      continue;
    }
    std::printf("%-4lld %-6lld %-5lld %-5s %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                static_cast<long long>(r.id),
                static_cast<long long>(r.bucket_len),
                static_cast<long long>(r.batch_size),
                r.cache_hit ? "hit" : "miss", r.queue_s * 1e3,
                r.featurize_s * 1e3, r.batch_wait_s * 1e3, r.forward_s * 1e3,
                r.total_s * 1e3);
  }

  // 5. Service-level counters: continuous batching keeps the mean batch
  //    size above 1 without a dispatch timer, and the second submit pass
  //    shows up as cache hits.
  auto stats = server->stats();
  std::printf("\nsubmitted=%lld admitted=%lld rejected=%lld completed=%lld\n",
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.admitted),
              static_cast<long long>(stats.rejected),
              static_cast<long long>(stats.completed));
  std::printf("batches=%lld mean_batch=%.2f cache_hits=%lld "
              "cache_misses=%lld\n",
              static_cast<long long>(stats.batches_dispatched),
              stats.mean_batch_size, static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses));
  std::printf("\nsee bench_serving --check for the SLO-gated load sweep\n");
  return 0;
}
