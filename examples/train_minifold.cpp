// Train the mini-AlphaFold with the full ScaleFold method at laptop scale:
// non-blocking loader, flash MHA, fused LayerNorm, fused Adam+SWA with
// bucketed grad clipping, and asynchronous evaluation with a DRAM-cached
// evaluation set.
//
//   $ ./train_minifold [steps]
#include <cstdio>
#include <cstdlib>

#include "core/scalefold.h"
#include "train/checkpoint.h"

int main(int argc, char** argv) {
  using namespace sf;
  int64_t steps = argc > 1 ? std::atoll(argv[1]) : 60;

  core::ScaleFoldOptions o;
  // The eight ScaleFold switches (all on — flip any to feel the cost).
  o.nonblocking_loader = true;
  o.flash_mha = true;
  o.fused_layernorm = true;
  o.fused_optimizer = true;
  o.bucketed_grad_norm = true;
  o.bf16_activations = false;  // try true: converges, slightly noisier
  o.async_eval = true;
  o.cached_eval = true;

  o.dataset.num_samples = steps + 8;
  o.dataset.crop_len = 12;
  o.dataset.msa_rows = 3;
  o.dataset.msa_work_cap = 100;
  o.dataset.seed = 7;
  o.model.c_m = 8;
  o.model.c_z = 8;
  o.model.c_s = 8;
  o.model.heads = 2;
  o.model.head_dim = 4;
  o.model.evoformer_blocks = 1;
  o.model.use_extra_msa_stack = false;
  o.model.use_template_stack = false;
  o.model.opm_dim = 2;
  o.model.transition_factor = 2;
  o.model.structure_layers = 1;
  o.train.base_lr = 4e-3f;
  o.train.warmup_steps = 10;
  o.train.min_recycles = 1;
  o.train.max_recycles = 2;
  o.train.opt.clip_norm = 5.0f;
  o.train.opt.swa_decay = 0.9f;  // short runs: SWA must track quickly
  o.eval_samples = 4;
  o.eval_every_steps = steps / 3;

  core::TrainingSession session(o);
  std::printf("training mini-AlphaFold for %lld steps "
              "(%zu param tensors, %lld params)\n\n",
              static_cast<long long>(steps), session.net().params().size(),
              static_cast<long long>(session.net().params().total_elements()));

  std::printf("%6s | %10s | %10s | %9s | %9s | %9s\n", "step", "loss",
              "lddt_ca", "grad norm", "step ms", "wait ms");
  auto records = session.run(steps);
  for (size_t i = 0; i < records.size(); i += 10) {
    const auto& r = records[i];
    std::printf("%6lld | %10.3f | %10.3f | %9.3f | %9.2f | %9.3f\n",
                static_cast<long long>(r.step), r.loss, r.lddt, r.grad_norm,
                r.step_seconds * 1e3, r.data_wait_seconds * 1e3);
  }
  const auto& last = records.back();
  std::printf("%6lld | %10.3f | %10.3f | %9.3f | %9.2f | %9.3f\n",
              static_cast<long long>(last.step), last.loss, last.lddt,
              last.grad_norm, last.step_seconds * 1e3,
              last.data_wait_seconds * 1e3);

  std::printf("\nasync evaluation reports (SWA-free replica):\n");
  for (const auto& rep : session.drain_eval_reports()) {
    std::printf("  step %4lld: eval lDDT-Ca %.3f, loss %.3f (%.1f ms)\n",
                static_cast<long long>(rep.step), rep.result.avg_lddt,
                rep.result.avg_loss, rep.result.seconds * 1e3);
  }
  auto final_eval = session.evaluate_now();  // SWA weights
  std::printf("final SWA evaluation over %lld samples: lDDT-Ca %.3f, "
              "FAPE %.3f, dRMSD %.2f A, contact precision %.2f\n",
              static_cast<long long>(final_eval.num_samples),
              final_eval.avg_lddt, final_eval.avg_fape, final_eval.avg_drmsd,
              final_eval.avg_contact_precision);

  const char* ckpt = "/tmp/minifold_final.ckpt";
  train::save_checkpoint(ckpt, session.net().params());
  std::printf("checkpoint written to %s\n", ckpt);
  std::printf("total consumer data-wait: %.2f ms across %lld steps\n",
              session.total_data_wait_seconds() * 1e3,
              static_cast<long long>(steps));
  return 0;
}
