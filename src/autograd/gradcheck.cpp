#include "autograd/gradcheck.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace sf::autograd {

GradCheckResult grad_check(
    const std::function<Var(const std::vector<Var>&)>& fn,
    std::vector<Var>& leaves, float step, float tol_abs, float tol_rel) {
  GradCheckResult result;

  // Analytic gradients.
  for (auto& leaf : leaves) leaf.zero_grad();
  Var out = fn(leaves);
  SF_CHECK(out.numel() == 1) << "grad_check function must return a scalar";
  backward(out);
  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (auto& leaf : leaves) analytic.push_back(leaf.grad());

  // Central differences per element.
  for (size_t li = 0; li < leaves.size(); ++li) {
    Tensor& value = leaves[li].mutable_value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      float orig = value.at(i);
      value.at(i) = orig + step;
      float f_plus = fn(leaves).value().at(0);
      value.at(i) = orig - step;
      float f_minus = fn(leaves).value().at(0);
      value.at(i) = orig;

      float numeric = (f_plus - f_minus) / (2.0f * step);
      float exact = analytic[li].at(i);
      float abs_err = std::fabs(numeric - exact);
      float denom = std::max(1.0f, std::max(std::fabs(numeric), std::fabs(exact)));
      float rel_err = abs_err / denom;
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      result.max_rel_err = std::max(result.max_rel_err, rel_err);
      if (abs_err > tol_abs && rel_err > tol_rel) {
        result.ok = false;
        if (result.detail.empty()) {
          std::ostringstream os;
          os << "leaf " << li << " elem " << i << ": analytic=" << exact
             << " numeric=" << numeric;
          result.detail = os.str();
        }
      }
    }
  }
  return result;
}

}  // namespace sf::autograd
