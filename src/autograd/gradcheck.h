// Numerical gradient checking for autograd ops and model modules.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "autograd/var.h"

namespace sf::autograd {

struct GradCheckResult {
  bool ok = true;
  float max_abs_err = 0.0f;
  float max_rel_err = 0.0f;
  std::string detail;
};

/// Checks d(scalar fn)/d(inputs) against central finite differences.
/// `fn` must rebuild the graph from the given leaves on every call (the
/// leaves' values are perturbed in place between calls).
GradCheckResult grad_check(
    const std::function<Var(const std::vector<Var>&)>& fn,
    std::vector<Var>& leaves, float step = 1e-3f, float tol_abs = 5e-2f,
    float tol_rel = 5e-2f);

}  // namespace sf::autograd
