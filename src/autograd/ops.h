// Differentiable op library over sf::autograd::Var.
//
// Each op computes its value with sf::kernels and registers a backward
// closure on the tape. Fused kernels (flash MHA, fused LayerNorm) appear
// as single tape nodes — the torch.autograd.Function-wrapping-a-Triton-
// kernel pattern from the paper. AlphaFold-specific primitives (outer
// product mean, triangle multiplication, pairwise distances) have
// hand-derived backwards.
#pragma once

#include <array>
#include <optional>

#include "autograd/var.h"
#include "kernels/attention.h"

namespace sf::autograd {

// ---- basic arithmetic -----------------------------------------------------
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var scale(const Var& a, float s);
Var add_scalar(const Var& a, float s);

/// Matrix product a[M,K] x b[K,N].
Var matmul(const Var& a, const Var& b);

/// x[..., K] x w[K,N] + bias[N]; leading dims flattened. bias optional.
Var linear(const Var& x, const Var& w, const Var* bias = nullptr);

/// x[R,C] + bias[C] broadcast over rows (x may be >2D, last dim = C).
Var add_rowwise(const Var& x, const Var& bias);

/// Multiply by a constant per-row mask m[R] broadcast over trailing dims.
Var mul_bcast_mask(const Var& x, const Tensor& row_mask);

/// Inverted dropout: zeroes each element with probability p and scales
/// survivors by 1/(1-p); the same mask gates the backward. Identity when
/// p == 0. Deterministic given the caller's RNG state.
Var dropout(const Var& x, float p, Rng& rng);

/// Row-shared dropout (AF2's DropoutRowwise): one Bernoulli draw per slice
/// of the leading axis, broadcast across the slice.
Var dropout_rows(const Var& x, float p, Rng& rng);

// ---- activations ----------------------------------------------------------
Var relu(const Var& x);
Var gelu(const Var& x);
Var sigmoid(const Var& x);
/// Gated unit: sigmoid(gate) * x (fused kernel, single tape node).
Var glu(const Var& x, const Var& gate);

// ---- normalization / attention --------------------------------------------
/// LayerNorm over the last dim (cols = shape.back()). `fused` selects the
/// ScaleFold kernel; both record identical math on the tape.
Var layernorm(const Var& x, const Var& gamma, const Var& beta,
              float eps = 1e-5f, bool fused = true);

Var softmax_lastdim(const Var& x);

/// Multi-head attention with optional pair bias (per §3.3.1 / Fig. 6).
/// q,k,v are [B,H,S,D]; pair_bias (optional) is [H,Sq,Sk]; mask (optional,
/// non-differentiable) is additive [B,Sk]. `use_flash` selects the fused
/// kernel; the naive path materializes probabilities.
Var mha(const Var& q, const Var& k, const Var& v, const Var* pair_bias,
        const Tensor* mask, bool use_flash = true);

/// [B*S, H*D] -> [B,H,S,D] permute-copy (and inverse).
Var split_heads(const Var& x, int64_t batch, int64_t seq, int64_t heads,
                int64_t dim);
Var merge_heads(const Var& x);  ///< [B,H,S,D] -> [B*S, H*D]

/// General 3-D permutation: out[i,j,k] = x[perm applied]. perm gives, for
/// each output axis, the input axis it comes from.
Var permute3(const Var& x, const std::array<int, 3>& perm);

Var reshape(const Var& x, Shape shape);

/// Value passthrough that blocks gradient flow (recycling detach).
Var stop_gradient(const Var& x);

// ---- reductions / losses --------------------------------------------------
Var sum(const Var& x);
Var mean(const Var& x);

/// Mean of w[i] * (x[i] - target[i])^2 over all elements; target and
/// weight are constants. weight may be null (all ones).
Var weighted_mse(const Var& x, const Tensor& target, const Tensor* weight);

/// Softmax cross-entropy over the last dim of logits[N, C] with integer
/// class targets (one per row) and optional non-negative per-row weights.
/// Returns the weighted mean negative log-likelihood; rows with zero
/// weight are skipped entirely. Forward and backward are fused
/// (d logits = w * (softmax - onehot) / sum w).
Var softmax_cross_entropy(const Var& logits,
                          const std::vector<int64_t>& targets,
                          const Tensor* row_weights = nullptr);

/// x[S, ...] + y[...] broadcast along the leading axis (backward sums over
/// that axis into y).
Var add_bcast0(const Var& x, const Var& y);

/// Outer sum: a[R,C], b[R,C] -> out[R,R,C] = a[i,:] + b[j,:] (pair-rep
/// initialization).
Var outer_sum(const Var& a, const Var& b);

/// First k slices of the leading axis (contiguous prefix); backward
/// zero-pads the remainder.
Var take_leading(const Var& x, int64_t k);

/// Straight-through bf16 rounding: value is quantized through bfloat16
/// storage, gradient passes unchanged (fp32 master-weight emulation).
Var bf16_round_st(const Var& x);

// ---- AlphaFold-specific primitives ----------------------------------------
/// Outer product mean (Evoformer): a[S,R,U], b[S,R,V] ->
/// out[R,R,U*V], out[i,j,u*V+v] = mean_s a[s,i,u] * b[s,j,v].
Var outer_product_mean(const Var& a, const Var& b);

/// Triangle multiplication: a,b are [R,R,C].
/// outgoing: out[i,j,c] = sum_k a[i,k,c] * b[j,k,c]
/// incoming: out[i,j,c] = sum_k a[k,i,c] * b[k,j,c]
Var triangle_multiply(const Var& a, const Var& b, bool outgoing);

/// Pairwise Euclidean distances of pos[R,3] -> [R,R] (diag 0).
/// Superposition-free structural loss target (FAPE-lite).
Var pairwise_dist(const Var& pos, float eps = 1e-6f);

}  // namespace sf::autograd
