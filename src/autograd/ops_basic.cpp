// Basic differentiable ops: arithmetic, matmul/linear, activations,
// reductions and losses.
#include <cmath>
#include <cstring>

#include "autograd/ops.h"
#include "common/error.h"
#include "kernels/elementwise.h"
#include "kernels/softmax.h"
#include "kernels/gemm.h"
#include "tensor/bfloat16.h"

namespace sf::autograd {

Var add(const Var& a, const Var& b) {
  Tensor out = a.value().add(b.value());
  auto an = a.node();
  auto bn = b.node();
  return make_op(std::move(out), {a, b}, [an, bn](const Tensor& up) {
    if (an->requires_grad) an->accumulate_grad(up);
    if (bn->requires_grad) bn->accumulate_grad(up);
  });
}

Var sub(const Var& a, const Var& b) {
  Tensor out = a.value().sub(b.value());
  auto an = a.node();
  auto bn = b.node();
  return make_op(std::move(out), {a, b}, [an, bn](const Tensor& up) {
    if (an->requires_grad) an->accumulate_grad(up);
    if (bn->requires_grad) bn->accumulate_grad(up.scale(-1.0f));
  });
}

Var mul(const Var& a, const Var& b) {
  Tensor out = a.value().mul(b.value());
  auto an = a.node();
  auto bn = b.node();
  return make_op(std::move(out), {a, b}, [an, bn](const Tensor& up) {
    if (an->requires_grad) an->accumulate_grad(up.mul(bn->value));
    if (bn->requires_grad) bn->accumulate_grad(up.mul(an->value));
  });
}

Var scale(const Var& a, float s) {
  Tensor out = a.value().scale(s);
  auto an = a.node();
  return make_op(std::move(out), {a}, [an, s](const Tensor& up) {
    an->accumulate_grad(up.scale(s));
  });
}

Var add_scalar(const Var& a, float s) {
  Tensor out = a.value().add_scalar(s);
  auto an = a.node();
  return make_op(std::move(out), {a}, [an](const Tensor& up) {
    an->accumulate_grad(up);
  });
}

Var matmul(const Var& a, const Var& b) {
  SF_CHECK(a.shape().size() == 2 && b.shape().size() == 2);
  int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  SF_CHECK(b.shape()[0] == k) << "matmul inner dim mismatch";
  Tensor out({m, n});
  kernels::gemm(a.value().data(), b.value().data(), out.data(), m, k, n);
  auto an = a.node();
  auto bn = b.node();
  return make_op(std::move(out), {a, b}, [an, bn, m, k, n](const Tensor& up) {
    if (an->requires_grad) {
      Tensor da({m, k});
      kernels::gemm(up.data(), bn->value.data(), da.data(), m, n, k, false,
                    true);
      an->accumulate_grad(da);
    }
    if (bn->requires_grad) {
      Tensor db({k, n});
      kernels::gemm(an->value.data(), up.data(), db.data(), k, m, n, true,
                    false);
      bn->accumulate_grad(db);
    }
  });
}

Var linear(const Var& x, const Var& w, const Var* bias) {
  SF_CHECK(w.shape().size() == 2);
  const int64_t k = w.shape()[0];
  const int64_t n = w.shape()[1];
  SF_CHECK(!x.shape().empty() && x.shape().back() == k)
      << "linear input dim" << shape_str(x.shape()) << "vs W"
      << shape_str(w.shape());
  const int64_t rows = x.numel() / k;

  Shape out_shape = x.shape();
  out_shape.back() = n;
  Tensor out(out_shape);
  kernels::gemm(x.value().data(), w.value().data(), out.data(), rows, k, n);
  if (bias) {
    SF_CHECK(bias->numel() == n);
    kernels::bias_add(out.data(), bias->value().data(), out.data(), rows, n);
  }
  auto xn = x.node();
  auto wn = w.node();
  std::shared_ptr<Node> bn = bias ? bias->node() : nullptr;
  std::vector<Var> parents{x, w};
  if (bias) parents.push_back(*bias);
  return make_op(std::move(out), std::move(parents),
                 [xn, wn, bn, rows, k, n](const Tensor& up) {
    if (xn->requires_grad) {
      Tensor dx(xn->value.shape());
      kernels::linear_backward_input(up.data(), wn->value.data(), dx.data(),
                                     rows, k, n);
      xn->accumulate_grad(dx);
    }
    if (wn->requires_grad) {
      Tensor dw({k, n});
      kernels::linear_backward_weight(xn->value.data(), up.data(), dw.data(),
                                      rows, k, n);
      wn->accumulate_grad(dw);
    }
    if (bn && bn->requires_grad) {
      Tensor db({n});
      const float* u = up.data();
      float* d = db.data();
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < n; ++c) d[c] += u[r * n + c];
      }
      bn->accumulate_grad(db);
    }
  });
}

Var add_rowwise(const Var& x, const Var& bias) {
  const int64_t c = bias.numel();
  SF_CHECK(!x.shape().empty() && x.shape().back() == c);
  const int64_t rows = x.numel() / c;
  Tensor out(x.shape());
  kernels::bias_add(x.value().data(), bias.value().data(), out.data(), rows, c);
  auto xn = x.node();
  auto bn = bias.node();
  return make_op(std::move(out), {x, bias}, [xn, bn, rows, c](const Tensor& up) {
    if (xn->requires_grad) xn->accumulate_grad(up);
    if (bn->requires_grad) {
      Tensor db(bn->value.shape());
      const float* u = up.data();
      float* d = db.data();
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t j = 0; j < c; ++j) d[j] += u[r * c + j];
      }
      bn->accumulate_grad(db);
    }
  });
}

Var mul_bcast_mask(const Var& x, const Tensor& row_mask) {
  const int64_t r = row_mask.numel();
  SF_CHECK(x.numel() % r == 0);
  const int64_t inner = x.numel() / r;
  Tensor out(x.shape());
  const float* xd = x.value().data();
  const float* m = row_mask.data();
  float* o = out.data();
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < inner; ++j) o[i * inner + j] = xd[i * inner + j] * m[i];
  }
  auto xn = x.node();
  Tensor mask_copy = row_mask.clone();
  return make_op(std::move(out), {x},
                 [xn, mask_copy, r, inner](const Tensor& up) {
    Tensor dx(xn->value.shape());
    const float* u = up.data();
    const float* m = mask_copy.data();
    float* d = dx.data();
    for (int64_t i = 0; i < r; ++i) {
      for (int64_t j = 0; j < inner; ++j) d[i * inner + j] = u[i * inner + j] * m[i];
    }
    xn->accumulate_grad(dx);
  });
}

Var relu(const Var& x) {
  Tensor out(x.shape());
  kernels::relu_forward(x.value().data(), out.data(), x.numel());
  auto xn = x.node();
  return make_op(std::move(out), {x}, [xn](const Tensor& up) {
    Tensor dx(xn->value.shape());
    kernels::relu_backward(xn->value.data(), up.data(), dx.data(),
                           xn->value.numel());
    xn->accumulate_grad(dx);
  });
}

Var gelu(const Var& x) {
  Tensor out(x.shape());
  kernels::gelu_forward(x.value().data(), out.data(), x.numel());
  auto xn = x.node();
  return make_op(std::move(out), {x}, [xn](const Tensor& up) {
    Tensor dx(xn->value.shape());
    kernels::gelu_backward(xn->value.data(), up.data(), dx.data(),
                           xn->value.numel());
    xn->accumulate_grad(dx);
  });
}

Var sigmoid(const Var& x) {
  Tensor out(x.shape());
  kernels::sigmoid_forward(x.value().data(), out.data(), x.numel());
  auto xn = x.node();
  // Capture the output value for the y*(1-y) backward.
  Tensor y = out;  // shares buffer
  return make_op(std::move(out), {x}, [xn, y](const Tensor& up) {
    Tensor dx(xn->value.shape());
    kernels::sigmoid_backward_from_output(y.data(), up.data(), dx.data(),
                                          y.numel());
    xn->accumulate_grad(dx);
  });
}

Var glu(const Var& x, const Var& gate) {
  SF_CHECK(x.numel() == gate.numel());
  Tensor out(x.shape());
  kernels::fused_glu_forward(x.value().data(), gate.value().data(), out.data(),
                             x.numel());
  auto xn = x.node();
  auto gn = gate.node();
  return make_op(std::move(out), {x, gate}, [xn, gn](const Tensor& up) {
    Tensor dx(xn->value.shape());
    Tensor dg(gn->value.shape());
    kernels::fused_glu_backward(xn->value.data(), gn->value.data(), up.data(),
                                dx.data(), dg.data(), xn->value.numel());
    if (xn->requires_grad) xn->accumulate_grad(dx);
    if (gn->requires_grad) gn->accumulate_grad(dg);
  });
}

Var reshape(const Var& x, Shape shape) {
  Tensor out = x.value().reshape(std::move(shape));
  auto xn = x.node();
  return make_op(std::move(out), {x}, [xn](const Tensor& up) {
    xn->accumulate_grad(up.reshape(xn->value.shape()));
  });
}

Var stop_gradient(const Var& x) {
  return Var(x.value().clone(), /*requires_grad=*/false);
}

Var sum(const Var& x) {
  Tensor out = Tensor::scalar(x.value().sum());
  auto xn = x.node();
  return make_op(std::move(out), {x}, [xn](const Tensor& up) {
    Tensor dx = Tensor::full(xn->value.shape(), up.at(0));
    xn->accumulate_grad(dx);
  });
}

Var mean(const Var& x) {
  const float inv_n = 1.0f / static_cast<float>(x.numel());
  Tensor out = Tensor::scalar(x.value().mean());
  auto xn = x.node();
  return make_op(std::move(out), {x}, [xn, inv_n](const Tensor& up) {
    Tensor dx = Tensor::full(xn->value.shape(), up.at(0) * inv_n);
    xn->accumulate_grad(dx);
  });
}

Var weighted_mse(const Var& x, const Tensor& target, const Tensor* weight) {
  SF_CHECK(x.numel() == target.numel());
  if (weight) { SF_CHECK(weight->numel() == x.numel()); }
  const int64_t n = x.numel();
  const float* xd = x.value().data();
  const float* t = target.data();
  const float* w = weight ? weight->data() : nullptr;
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    double d = xd[i] - t[i];
    acc += (w ? w[i] : 1.0f) * d * d;
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc / n));
  auto xn = x.node();
  Tensor tc = target.clone();
  Tensor wc = weight ? weight->clone() : Tensor();
  return make_op(std::move(out), {x}, [xn, tc, wc, n](const Tensor& up) {
    Tensor dx(xn->value.shape());
    const float* xd = xn->value.data();
    const float* t = tc.data();
    const float* w = wc.defined() ? wc.data() : nullptr;
    float* d = dx.data();
    float g = up.at(0) * 2.0f / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) {
      d[i] = g * (w ? w[i] : 1.0f) * (xd[i] - t[i]);
    }
    xn->accumulate_grad(dx);
  });
}


Var bf16_round_st(const Var& x) {
  Tensor out = x.value().clone();
  bf16_round_buffer(out.data(), static_cast<size_t>(out.numel()));
  auto xn = x.node();
  return make_op(std::move(out), {x}, [xn](const Tensor& up) {
    xn->accumulate_grad(up);  // straight-through estimator
  });
}


Var take_leading(const Var& x, int64_t k) {
  SF_CHECK(!x.shape().empty());
  const int64_t lead = x.shape()[0];
  SF_CHECK(k >= 1 && k <= lead) << "take_leading k out of range";
  Shape out_shape = x.shape();
  out_shape[0] = k;
  const int64_t n = shape_numel(out_shape);
  Tensor out(out_shape);
  std::memcpy(out.data(), x.value().data(), sizeof(float) * n);
  auto xn = x.node();
  return make_op(std::move(out), {x}, [xn, n](const Tensor& up) {
    Tensor dx(xn->value.shape());
    std::memcpy(dx.data(), up.data(), sizeof(float) * n);
    xn->accumulate_grad(dx);
  });
}


Var softmax_cross_entropy(const Var& logits,
                          const std::vector<int64_t>& targets,
                          const Tensor* row_weights) {
  SF_CHECK(logits.shape().size() == 2) << "cross entropy expects [N,C]";
  const int64_t n = logits.shape()[0];
  const int64_t c = logits.shape()[1];
  SF_CHECK(static_cast<int64_t>(targets.size()) == n);
  if (row_weights) { SF_CHECK(row_weights->numel() == n); }

  // Fused forward: per-row logsumexp + picked logit, probabilities kept
  // for the backward.
  Tensor probs({n, c});
  kernels::softmax_forward(logits.value().data(), probs.data(), n, c);
  const float* ld = logits.value().data();
  double loss_acc = 0.0;
  double weight_sum = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    float w = row_weights ? row_weights->at(r) : 1.0f;
    if (w <= 0.0f) continue;
    int64_t t = targets[r];
    SF_CHECK(t >= 0 && t < c) << "target class" << t << "out of range";
    // -log softmax[t] computed stably from the saved probabilities.
    float p = std::max(probs.at(r * c + t), 1e-30f);
    loss_acc += -w * std::log(p);
    weight_sum += w;
    (void)ld;
  }
  float denom = weight_sum > 0.0 ? static_cast<float>(weight_sum) : 1.0f;
  Tensor out = Tensor::scalar(static_cast<float>(loss_acc) / denom);

  auto xn = logits.node();
  Tensor weights_copy = row_weights ? row_weights->clone() : Tensor();
  auto targets_copy = std::make_shared<std::vector<int64_t>>(targets);
  return make_op(std::move(out), {logits},
                 [xn, probs, weights_copy, targets_copy, n, c,
                  denom](const Tensor& up) {
    Tensor dx({n, c});
    const float* pd = probs.data();
    float* d = dx.data();
    const float g = up.at(0) / denom;
    for (int64_t r = 0; r < n; ++r) {
      float w = weights_copy.defined() ? weights_copy.at(r) : 1.0f;
      if (w <= 0.0f) continue;
      int64_t t = (*targets_copy)[r];
      for (int64_t j = 0; j < c; ++j) {
        d[r * c + j] = g * w * (pd[r * c + j] - (j == t ? 1.0f : 0.0f));
      }
    }
    xn->accumulate_grad(dx.reshape(xn->value.shape()));
  });
}


namespace {

Var dropout_with_mask(const Var& x, Tensor mask) {
  Tensor out = x.value().mul(mask);
  auto xn = x.node();
  return make_op(std::move(out), {x}, [xn, mask](const Tensor& up) {
    xn->accumulate_grad(up.mul(mask));
  });
}

}  // namespace

Var dropout(const Var& x, float p, Rng& rng) {
  SF_CHECK(p >= 0.0f && p < 1.0f) << "dropout probability" << p;
  if (p == 0.0f) return x;
  const float keep_scale = 1.0f / (1.0f - p);
  Tensor mask(x.shape());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.at(i) = rng.bernoulli(p) ? 0.0f : keep_scale;
  }
  return dropout_with_mask(x, std::move(mask));
}

Var dropout_rows(const Var& x, float p, Rng& rng) {
  SF_CHECK(p >= 0.0f && p < 1.0f) << "dropout probability" << p;
  SF_CHECK(!x.shape().empty());
  if (p == 0.0f) return x;
  const float keep_scale = 1.0f / (1.0f - p);
  const int64_t rows = x.shape()[0];
  const int64_t inner = x.numel() / std::max<int64_t>(rows, 1);
  Tensor mask(x.shape());
  for (int64_t r = 0; r < rows; ++r) {
    float v = rng.bernoulli(p) ? 0.0f : keep_scale;
    for (int64_t i = 0; i < inner; ++i) mask.at(r * inner + i) = v;
  }
  return dropout_with_mask(x, std::move(mask));
}

}  // namespace sf::autograd
