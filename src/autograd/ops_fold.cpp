// AlphaFold-specific differentiable primitives: outer product mean,
// triangle multiplication, pairwise distances.
#include <cmath>

#include "autograd/ops.h"
#include "common/error.h"

namespace sf::autograd {

Var outer_product_mean(const Var& a, const Var& b) {
  SF_CHECK(a.shape().size() == 3 && b.shape().size() == 3);
  const int64_t s = a.shape()[0];
  const int64_t r = a.shape()[1];
  const int64_t u = a.shape()[2];
  SF_CHECK(b.shape()[0] == s && b.shape()[1] == r);
  const int64_t v = b.shape()[2];

  Tensor out({r, r, u * v});
  const float* ad = a.value().data();
  const float* bd = b.value().data();
  float* od = out.data();
  const float inv_s = 1.0f / static_cast<float>(s);
  for (int64_t ss = 0; ss < s; ++ss) {
    for (int64_t i = 0; i < r; ++i) {
      const float* ai = ad + (ss * r + i) * u;
      for (int64_t j = 0; j < r; ++j) {
        const float* bj = bd + (ss * r + j) * v;
        float* oij = od + (i * r + j) * u * v;
        for (int64_t uu = 0; uu < u; ++uu) {
          float av = ai[uu] * inv_s;
          for (int64_t vv = 0; vv < v; ++vv) {
            oij[uu * v + vv] += av * bj[vv];
          }
        }
      }
    }
  }
  auto an = a.node();
  auto bn = b.node();
  return make_op(std::move(out), {a, b},
                 [an, bn, s, r, u, v](const Tensor& up) {
    const float inv_s = 1.0f / static_cast<float>(s);
    const float* ud = up.data();
    const float* ad = an->value.data();
    const float* bd = bn->value.data();
    Tensor da(an->value.shape());
    Tensor db(bn->value.shape());
    float* dad = da.data();
    float* dbd = db.data();
    for (int64_t ss = 0; ss < s; ++ss) {
      for (int64_t i = 0; i < r; ++i) {
        const float* ai = ad + (ss * r + i) * u;
        float* dai = dad + (ss * r + i) * u;
        for (int64_t j = 0; j < r; ++j) {
          const float* bj = bd + (ss * r + j) * v;
          float* dbj = dbd + (ss * r + j) * v;
          const float* uij = ud + (i * r + j) * u * v;
          for (int64_t uu = 0; uu < u; ++uu) {
            float acc_a = 0.0f;
            float a_val = ai[uu] * inv_s;
            for (int64_t vv = 0; vv < v; ++vv) {
              float g = uij[uu * v + vv];
              acc_a += g * bj[vv];
              dbj[vv] += g * a_val;
            }
            dai[uu] += acc_a * inv_s;
          }
        }
      }
    }
    if (an->requires_grad) an->accumulate_grad(da);
    if (bn->requires_grad) bn->accumulate_grad(db);
  });
}

Var triangle_multiply(const Var& a, const Var& b, bool outgoing) {
  SF_CHECK(a.shape().size() == 3 && a.shape() == b.shape());
  SF_CHECK(a.shape()[0] == a.shape()[1]) << "triangle ops need square pair rep";
  const int64_t r = a.shape()[0];
  const int64_t c = a.shape()[2];

  Tensor out({r, r, c});
  const float* ad = a.value().data();
  const float* bd = b.value().data();
  float* od = out.data();
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < r; ++j) {
      float* oij = od + (i * r + j) * c;
      for (int64_t k = 0; k < r; ++k) {
        // outgoing: a[i,k,:] * b[j,k,:]; incoming: a[k,i,:] * b[k,j,:]
        const float* av = outgoing ? ad + (i * r + k) * c : ad + (k * r + i) * c;
        const float* bv = outgoing ? bd + (j * r + k) * c : bd + (k * r + j) * c;
        for (int64_t cc = 0; cc < c; ++cc) oij[cc] += av[cc] * bv[cc];
      }
    }
  }
  auto an = a.node();
  auto bn = b.node();
  return make_op(std::move(out), {a, b},
                 [an, bn, r, c, outgoing](const Tensor& up) {
    const float* ud = up.data();
    const float* ad = an->value.data();
    const float* bd = bn->value.data();
    Tensor da(an->value.shape());
    Tensor db(bn->value.shape());
    float* dad = da.data();
    float* dbd = db.data();
    for (int64_t i = 0; i < r; ++i) {
      for (int64_t j = 0; j < r; ++j) {
        const float* uij = ud + (i * r + j) * c;
        for (int64_t k = 0; k < r; ++k) {
          int64_t a_off = outgoing ? (i * r + k) * c : (k * r + i) * c;
          int64_t b_off = outgoing ? (j * r + k) * c : (k * r + j) * c;
          const float* av = ad + a_off;
          const float* bv = bd + b_off;
          float* dav = dad + a_off;
          float* dbv = dbd + b_off;
          for (int64_t cc = 0; cc < c; ++cc) {
            dav[cc] += uij[cc] * bv[cc];
            dbv[cc] += uij[cc] * av[cc];
          }
        }
      }
    }
    if (an->requires_grad) an->accumulate_grad(da);
    if (bn->requires_grad) bn->accumulate_grad(db);
  });
}

Var pairwise_dist(const Var& pos, float eps) {
  SF_CHECK(pos.shape().size() == 2 && pos.shape()[1] == 3)
      << "pairwise_dist expects [R,3]";
  const int64_t r = pos.shape()[0];
  Tensor out({r, r});
  const float* p = pos.value().data();
  float* od = out.data();
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < r; ++j) {
      float dx = p[i * 3] - p[j * 3];
      float dy = p[i * 3 + 1] - p[j * 3 + 1];
      float dz = p[i * 3 + 2] - p[j * 3 + 2];
      od[i * r + j] = std::sqrt(dx * dx + dy * dy + dz * dz + eps);
    }
  }
  auto pn = pos.node();
  Tensor dist = out;  // shares buffer
  return make_op(std::move(out), {pos}, [pn, dist, r](const Tensor& up) {
    const float* p = pn->value.data();
    const float* ud = up.data();
    const float* dd = dist.data();
    Tensor dp(pn->value.shape());
    float* g = dp.data();
    for (int64_t i = 0; i < r; ++i) {
      for (int64_t j = 0; j < r; ++j) {
        float d = dd[i * r + j];
        if (d < 1e-9f) continue;
        float u = ud[i * r + j] / d;
        for (int k = 0; k < 3; ++k) {
          float diff = p[i * 3 + k] - p[j * 3 + k];
          g[i * 3 + k] += u * diff;
          g[j * 3 + k] -= u * diff;
        }
      }
    }
    pn->accumulate_grad(dp);
  });
}

Var add_bcast0(const Var& x, const Var& y) {
  const int64_t inner = y.numel();
  SF_CHECK(inner > 0 && x.numel() % inner == 0)
      << "add_bcast0 inner-size mismatch";
  const int64_t reps = x.numel() / inner;
  Tensor out(x.shape());
  const float* xd = x.value().data();
  const float* yd = y.value().data();
  float* od = out.data();
  for (int64_t r = 0; r < reps; ++r) {
    for (int64_t i = 0; i < inner; ++i) od[r * inner + i] = xd[r * inner + i] + yd[i];
  }
  auto xn = x.node();
  auto yn = y.node();
  return make_op(std::move(out), {x, y}, [xn, yn, reps, inner](const Tensor& up) {
    if (xn->requires_grad) xn->accumulate_grad(up);
    if (yn->requires_grad) {
      Tensor dy(yn->value.shape());
      const float* u = up.data();
      float* d = dy.data();
      for (int64_t r = 0; r < reps; ++r) {
        for (int64_t i = 0; i < inner; ++i) d[i] += u[r * inner + i];
      }
      yn->accumulate_grad(dy);
    }
  });
}

Var outer_sum(const Var& a, const Var& b) {
  SF_CHECK(a.shape().size() == 2 && a.shape() == b.shape());
  const int64_t r = a.shape()[0];
  const int64_t c = a.shape()[1];
  Tensor out({r, r, c});
  const float* ad = a.value().data();
  const float* bd = b.value().data();
  float* od = out.data();
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < r; ++j) {
      float* oij = od + (i * r + j) * c;
      for (int64_t cc = 0; cc < c; ++cc) oij[cc] = ad[i * c + cc] + bd[j * c + cc];
    }
  }
  auto an = a.node();
  auto bn = b.node();
  return make_op(std::move(out), {a, b}, [an, bn, r, c](const Tensor& up) {
    const float* u = up.data();
    if (an->requires_grad) {
      Tensor da(an->value.shape());
      float* d = da.data();
      for (int64_t i = 0; i < r; ++i) {
        for (int64_t j = 0; j < r; ++j) {
          const float* uij = u + (i * r + j) * c;
          for (int64_t cc = 0; cc < c; ++cc) d[i * c + cc] += uij[cc];
        }
      }
      an->accumulate_grad(da);
    }
    if (bn->requires_grad) {
      Tensor db(bn->value.shape());
      float* d = db.data();
      for (int64_t i = 0; i < r; ++i) {
        for (int64_t j = 0; j < r; ++j) {
          const float* uij = u + (i * r + j) * c;
          for (int64_t cc = 0; cc < c; ++cc) d[j * c + cc] += uij[cc];
        }
      }
      bn->accumulate_grad(db);
    }
  });
}

}  // namespace sf::autograd
