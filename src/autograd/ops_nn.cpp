// Neural-net ops: LayerNorm, softmax, multi-head attention (naive/flash),
// head splitting and permutations.
#include <cstring>

#include "autograd/ops.h"
#include "common/error.h"
#include "kernels/layernorm.h"
#include "kernels/softmax.h"

namespace sf::autograd {

Var layernorm(const Var& x, const Var& gamma, const Var& beta, float eps,
              bool fused) {
  const int64_t cols = x.shape().back();
  SF_CHECK(gamma.numel() == cols && beta.numel() == cols);
  const int64_t rows = x.numel() / cols;

  Tensor out(x.shape());
  auto stats = std::make_shared<kernels::LayerNormStats>();
  if (fused) {
    kernels::layernorm_forward_fused(x.value().data(), gamma.value().data(),
                                     beta.value().data(), out.data(), rows,
                                     cols, eps, stats.get());
  } else {
    kernels::layernorm_forward_naive(x.value().data(), gamma.value().data(),
                                     beta.value().data(), out.data(), rows,
                                     cols, eps, stats.get());
  }
  auto xn = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  return make_op(std::move(out), {x, gamma, beta},
                 [xn, gn, bn, stats, rows, cols, fused](const Tensor& up) {
    Tensor dx(xn->value.shape());
    Tensor dgamma({cols});
    Tensor dbeta({cols});
    if (fused) {
      kernels::layernorm_backward_fused(xn->value.data(), gn->value.data(),
                                        up.data(), *stats, dx.data(),
                                        dgamma.data(), dbeta.data(), rows,
                                        cols);
    } else {
      kernels::layernorm_backward_naive(xn->value.data(), gn->value.data(),
                                        up.data(), *stats, dx.data(),
                                        dgamma.data(), dbeta.data(), rows,
                                        cols);
    }
    if (xn->requires_grad) xn->accumulate_grad(dx);
    if (gn->requires_grad) gn->accumulate_grad(dgamma);
    if (bn->requires_grad) bn->accumulate_grad(dbeta);
  });
}

Var softmax_lastdim(const Var& x) {
  const int64_t cols = x.shape().back();
  const int64_t rows = x.numel() / cols;
  Tensor out(x.shape());
  kernels::softmax_forward(x.value().data(), out.data(), rows, cols);
  auto xn = x.node();
  Tensor y = out;  // shares buffer with the output node's value
  return make_op(std::move(out), {x}, [xn, y, rows, cols](const Tensor& up) {
    Tensor dx(xn->value.shape());
    kernels::softmax_backward(y.data(), up.data(), dx.data(), rows, cols);
    xn->accumulate_grad(dx);
  });
}

Var mha(const Var& q, const Var& k, const Var& v, const Var* pair_bias,
        const Tensor* mask, bool use_flash) {
  SF_CHECK(q.shape().size() == 4) << "mha expects [B,H,S,D]";
  kernels::AttentionDims dims;
  dims.batch = q.shape()[0];
  dims.heads = q.shape()[1];
  dims.q_len = q.shape()[2];
  dims.head_dim = q.shape()[3];
  dims.k_len = k.shape()[2];
  SF_CHECK(k.shape()[0] == dims.batch && k.shape()[1] == dims.heads);
  SF_CHECK(v.shape() == k.shape());
  if (pair_bias) {
    SF_CHECK(pair_bias->numel() == dims.bias_numel())
        << "pair bias must be [H,Sq,Sk]";
  }
  if (mask) { SF_CHECK(mask->numel() == dims.batch * dims.k_len); }

  Tensor out(q.shape());
  auto ctx = std::make_shared<kernels::AttentionContext>();
  const float* bias_ptr = pair_bias ? pair_bias->value().data() : nullptr;
  const float* mask_ptr = mask ? mask->data() : nullptr;
  if (use_flash) {
    kernels::mha_forward_flash(dims, q.value().data(), k.value().data(),
                               v.value().data(), bias_ptr, mask_ptr,
                               out.data(), ctx.get());
  } else {
    kernels::mha_forward_naive(dims, q.value().data(), k.value().data(),
                               v.value().data(), bias_ptr, mask_ptr,
                               out.data(), ctx.get());
  }

  auto qn = q.node();
  auto kn = k.node();
  auto vn = v.node();
  std::shared_ptr<Node> biasn = pair_bias ? pair_bias->node() : nullptr;
  std::vector<Var> parents{q, k, v};
  if (pair_bias) parents.push_back(*pair_bias);
  Tensor mask_copy = mask ? mask->clone() : Tensor();
  Tensor out_copy = out;  // flash backward needs the forward output

  return make_op(std::move(out), std::move(parents),
                 [qn, kn, vn, biasn, ctx, dims, use_flash, mask_copy,
                  out_copy](const Tensor& up) {
    Tensor dq(qn->value.shape());
    Tensor dk(kn->value.shape());
    Tensor dv(vn->value.shape());
    Tensor dbias = biasn ? Tensor({dims.heads, dims.q_len, dims.k_len})
                         : Tensor();
    float* dbias_ptr = biasn ? dbias.data() : nullptr;
    if (use_flash) {
      const float* bias_ptr = biasn ? biasn->value.data() : nullptr;
      const float* mask_ptr = mask_copy.defined() ? mask_copy.data() : nullptr;
      kernels::mha_backward_flash(dims, qn->value.data(), kn->value.data(),
                                  vn->value.data(), bias_ptr, mask_ptr,
                                  out_copy.data(), up.data(), *ctx, dq.data(),
                                  dk.data(), dv.data(), dbias_ptr);
    } else {
      kernels::mha_backward_naive(dims, qn->value.data(), kn->value.data(),
                                  vn->value.data(), up.data(), *ctx, dq.data(),
                                  dk.data(), dv.data(), dbias_ptr);
    }
    if (qn->requires_grad) qn->accumulate_grad(dq);
    if (kn->requires_grad) kn->accumulate_grad(dk);
    if (vn->requires_grad) vn->accumulate_grad(dv);
    if (biasn && biasn->requires_grad) {
      biasn->accumulate_grad(dbias.reshape(biasn->value.shape()));
    }
  });
}

Var split_heads(const Var& x, int64_t batch, int64_t seq, int64_t heads,
                int64_t dim) {
  SF_CHECK(x.numel() == batch * seq * heads * dim)
      << "split_heads numel mismatch";
  Tensor out({batch, heads, seq, dim});
  const float* src = x.value().data();
  float* dst = out.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t s = 0; s < seq; ++s) {
      for (int64_t h = 0; h < heads; ++h) {
        std::memcpy(dst + (((b * heads + h) * seq + s) * dim),
                    src + (((b * seq + s) * heads + h) * dim),
                    sizeof(float) * dim);
      }
    }
  }
  auto xn = x.node();
  return make_op(std::move(out), {x},
                 [xn, batch, seq, heads, dim](const Tensor& up) {
    Tensor dx(xn->value.shape());
    const float* src = up.data();
    float* dst = dx.data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t s = 0; s < seq; ++s) {
        for (int64_t h = 0; h < heads; ++h) {
          std::memcpy(dst + (((b * seq + s) * heads + h) * dim),
                      src + (((b * heads + h) * seq + s) * dim),
                      sizeof(float) * dim);
        }
      }
    }
    xn->accumulate_grad(dx);
  });
}

Var merge_heads(const Var& x) {
  SF_CHECK(x.shape().size() == 4) << "merge_heads expects [B,H,S,D]";
  const int64_t batch = x.shape()[0];
  const int64_t heads = x.shape()[1];
  const int64_t seq = x.shape()[2];
  const int64_t dim = x.shape()[3];
  Tensor out({batch * seq, heads * dim});
  const float* src = x.value().data();
  float* dst = out.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t h = 0; h < heads; ++h) {
      for (int64_t s = 0; s < seq; ++s) {
        std::memcpy(dst + (((b * seq + s) * heads + h) * dim),
                    src + (((b * heads + h) * seq + s) * dim),
                    sizeof(float) * dim);
      }
    }
  }
  auto xn = x.node();
  return make_op(std::move(out), {x},
                 [xn, batch, seq, heads, dim](const Tensor& up) {
    Tensor dx(xn->value.shape());
    const float* src = up.data();
    float* dst = dx.data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t h = 0; h < heads; ++h) {
        for (int64_t s = 0; s < seq; ++s) {
          std::memcpy(dst + (((b * heads + h) * seq + s) * dim),
                      src + (((b * seq + s) * heads + h) * dim),
                      sizeof(float) * dim);
        }
      }
    }
    xn->accumulate_grad(dx);
  });
}

Var permute3(const Var& x, const std::array<int, 3>& perm) {
  SF_CHECK(x.shape().size() == 3);
  const Shape& in_shape = x.shape();
  Shape out_shape{in_shape[perm[0]], in_shape[perm[1]], in_shape[perm[2]]};
  Tensor out(out_shape);
  const int64_t d1 = in_shape[1], d2 = in_shape[2];
  const int64_t in_strides[3] = {d1 * d2, d2, 1};
  const float* src = x.value().data();
  float* dst = out.data();
  int64_t idx = 0;
  for (int64_t i = 0; i < out_shape[0]; ++i) {
    for (int64_t j = 0; j < out_shape[1]; ++j) {
      for (int64_t k = 0; k < out_shape[2]; ++k) {
        int64_t coord[3];
        coord[perm[0]] = i;
        coord[perm[1]] = j;
        coord[perm[2]] = k;
        dst[idx++] = src[coord[0] * in_strides[0] + coord[1] * in_strides[1] +
                         coord[2] * in_strides[2]];
      }
    }
  }
  auto xn = x.node();
  Shape in_shape_copy = in_shape;
  return make_op(std::move(out), {x},
                 [xn, perm, in_shape_copy, out_shape](const Tensor& up) {
    Tensor dx(in_shape_copy);
    const int64_t d1 = in_shape_copy[1], d2 = in_shape_copy[2];
    const int64_t in_strides[3] = {d1 * d2, d2, 1};
    const float* src = up.data();
    float* dst = dx.data();
    int64_t idx = 0;
    for (int64_t i = 0; i < out_shape[0]; ++i) {
      for (int64_t j = 0; j < out_shape[1]; ++j) {
        for (int64_t k = 0; k < out_shape[2]; ++k) {
          int64_t coord[3];
          coord[perm[0]] = i;
          coord[perm[1]] = j;
          coord[perm[2]] = k;
          dst[coord[0] * in_strides[0] + coord[1] * in_strides[1] +
              coord[2] * in_strides[2]] += src[idx++];
        }
      }
    }
    xn->accumulate_grad(dx);
  });
}

}  // namespace sf::autograd
