#include "autograd/var.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace sf::autograd {
namespace {
std::atomic<uint64_t> g_next_id{1};
thread_local bool g_grad_enabled = true;

struct GradReadyHooks {
  std::vector<std::shared_ptr<Node>> nodes;
  std::function<void(size_t)> fn;
};
thread_local GradReadyHooks g_hooks;
/// Sweep nesting depth on this thread; checkpoint recomputes run inner
/// sweeps (depth > 1) that must not consume the registered hooks.
thread_local int g_sweep_depth = 0;
}

bool grad_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

void Node::accumulate_grad(const Tensor& delta) {
  if (!grad.defined()) {
    grad = delta.clone();
  } else {
    grad.add_(delta);
  }
}

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
}

Tensor Var::grad() const {
  SF_CHECK(node_ != nullptr);
  if (node_->grad.defined()) return node_->grad;
  return Tensor::zeros(node_->value.shape());
}

void Var::zero_grad() {
  SF_CHECK(node_ != nullptr);
  node_->grad = Tensor();
}

Var Var::from_node(std::shared_ptr<Node> node) {
  Var v;
  v.node_ = std::move(node);
  return v;
}

Var make_op(Tensor value, std::vector<Var> parents,
            std::function<void(const Tensor& upstream)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  bool needs = false;
  if (g_grad_enabled) {
    for (const Var& p : parents) {
      SF_CHECK(p.defined()) << "undefined parent Var";
      needs = needs || p.requires_grad();
      node->parents.push_back(p.node());
    }
  }
  node->requires_grad = needs;
  if (needs) node->backward = std::move(backward);
  return Var::from_node(std::move(node));
}

void set_grad_ready_hooks(const std::vector<Var>& nodes,
                          std::function<void(size_t)> fn) {
  g_hooks.nodes.clear();
  g_hooks.nodes.reserve(nodes.size());
  for (const Var& v : nodes) {
    SF_CHECK(v.defined()) << "undefined Var in grad-ready hooks";
    g_hooks.nodes.push_back(v.node());
  }
  g_hooks.fn = std::move(fn);
}

void clear_grad_ready_hooks() {
  g_hooks.nodes.clear();
  g_hooks.fn = nullptr;
}

namespace {
/// Execute the nodes of `order` (already sorted by decreasing creation
/// id, a topological order for the dynamic tape). The outermost sweep on
/// a thread additionally drives the registered grad-ready hooks: a hooked
/// node fires as soon as its last consumer in `order` has executed (every
/// later contribution is impossible — consumers are always created after
/// their parents), or after the final node for hooked nodes no consumer
/// in this sweep reaches.
void execute_sweep(const std::vector<Node*>& order) {
  struct DepthGuard {
    DepthGuard() { ++g_sweep_depth; }
    ~DepthGuard() { --g_sweep_depth; }
  } depth_guard;

  const bool hooks_active =
      g_sweep_depth == 1 && g_hooks.fn && !g_hooks.nodes.empty();
  if (!hooks_active) {
    for (Node* n : order) {
      if (!n->requires_grad || !n->backward || !n->grad.defined()) continue;
      n->backward(n->grad);
    }
    return;
  }

  // Outermost sweep with hooks: count tape-visible consumers per hooked
  // node, then fire each hook when its count drains to zero. All counting
  // and firing follows the fixed sweep order, so the firing sequence is
  // deterministic — the property the bucketed all-reduce path relies on
  // to match collectives across ranks by launch index.
  struct HookClearGuard {
    ~HookClearGuard() { clear_grad_ready_hooks(); }
  } clear_guard;
  std::unordered_map<const Node*, size_t> index;
  index.reserve(g_hooks.nodes.size());
  for (size_t i = 0; i < g_hooks.nodes.size(); ++i) {
    index.emplace(g_hooks.nodes[i].get(), i);
  }
  std::vector<int64_t> pending(g_hooks.nodes.size(), 0);
  for (const Node* n : order) {
    for (const auto& p : n->parents) {
      auto it = index.find(p.get());
      if (it != index.end()) ++pending[it->second];
    }
  }
  std::vector<char> fired(g_hooks.nodes.size(), 0);
  for (Node* n : order) {
    if (n->requires_grad && n->backward && n->grad.defined()) {
      n->backward(n->grad);
    }
    // Whether or not this node propagated a gradient, it will never
    // contribute again — drain its parents' counts.
    for (const auto& p : n->parents) {
      auto it = index.find(p.get());
      if (it == index.end()) continue;
      const size_t i = it->second;
      if (--pending[i] == 0 && !fired[i]) {
        fired[i] = 1;
        g_hooks.fn(i);
      }
    }
  }
  for (size_t i = 0; i < fired.size(); ++i) {
    if (!fired[i]) g_hooks.fn(i);
  }
}

void run_backward_multi(const std::vector<Var>& roots,
                        const std::vector<Tensor>& seeds) {
  // Collect the union reachable subgraph.
  std::vector<Node*> order;
  std::unordered_set<Node*> seen;
  std::vector<Node*> stack;
  for (const Var& r : roots) stack.push_back(r.node().get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    order.push_back(n);
    for (auto& p : n->parents) stack.push_back(p.get());
  }
  std::sort(order.begin(), order.end(),
            [](Node* a, Node* b) { return a->id > b->id; });
  for (size_t i = 0; i < roots.size(); ++i) {
    roots[i].node()->accumulate_grad(seeds[i]);
  }
  execute_sweep(order);
}

void run_backward(const Var& root, const Tensor& seed) {

  // Collect the reachable subgraph.
  std::vector<Node*> order;
  std::unordered_set<Node*> seen;
  std::vector<Node*> stack{root.node().get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    order.push_back(n);
    for (auto& p : n->parents) stack.push_back(p.get());
  }
  // Reverse creation order == topological order for a dynamic tape.
  std::sort(order.begin(), order.end(),
            [](Node* a, Node* b) { return a->id > b->id; });

  root.node()->accumulate_grad(seed);
  execute_sweep(order);
}
}  // namespace

void backward(const Var& root) {
  SF_CHECK(root.defined());
  SF_CHECK(root.numel() == 1) << "backward() root must be scalar";
  run_backward(root, Tensor::ones(root.value().shape()));
}

void backward_seeded(const Var& root, const Tensor& seed) {
  SF_CHECK(root.defined());
  SF_CHECK(seed.shape() == root.value().shape())
      << "seed shape" << shape_str(seed.shape()) << "vs root"
      << shape_str(root.value().shape());
  run_backward(root, seed);
}

void backward_seeded_multi(const std::vector<Var>& roots,
                           const std::vector<Tensor>& seeds) {
  SF_CHECK(roots.size() == seeds.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    SF_CHECK(seeds[i].shape() == roots[i].value().shape());
  }
  run_backward_multi(roots, seeds);
}

std::vector<Var> checkpoint_multi(
    const std::function<std::vector<Var>(const std::vector<Var>&)>& fn,
    const std::vector<Var>& inputs) {
  std::vector<Tensor> values;
  {
    NoGradGuard no_grad;
    for (const Var& v : fn(inputs)) values.push_back(v.value().clone());
  }
  auto saved = std::make_shared<std::vector<Tensor>>();
  for (const Var& in : inputs) saved->push_back(in.value().clone());
  auto input_nodes = std::make_shared<std::vector<std::shared_ptr<Node>>>();
  for (const Var& in : inputs) input_nodes->push_back(in.node());

  // Create the output nodes first so the recompute closure can read every
  // sibling's accumulated gradient.
  std::vector<Var> outs;
  outs.reserve(values.size());
  for (Tensor& v : values) {
    outs.push_back(make_op(std::move(v), inputs, nullptr));
  }
  // weak_ptr: the closure lives inside these very nodes; shared_ptr would
  // create a reference cycle and leak every checkpointed segment.
  auto out_nodes = std::make_shared<std::vector<std::weak_ptr<Node>>>();
  for (const Var& o : outs) out_nodes->push_back(o.node());

  auto fired = std::make_shared<bool>(false);
  auto recompute = [fn, saved, input_nodes, out_nodes,
                    fired](const Tensor& /*up*/) {
    if (*fired) return;
    *fired = true;
    std::vector<Var> leaves;
    for (const Tensor& t : *saved) leaves.emplace_back(t.clone(), true);
    std::vector<Var> inner = fn(leaves);
    SF_CHECK(inner.size() == out_nodes->size());
    std::vector<Var> roots;
    std::vector<Tensor> seeds;
    for (size_t i = 0; i < inner.size(); ++i) {
      auto on = (*out_nodes)[i].lock();
      SF_CHECK(on != nullptr) << "checkpoint output node expired";
      roots.push_back(inner[i]);
      seeds.push_back(on->grad.defined()
                          ? on->grad
                          : Tensor::zeros(on->value.shape()));
    }
    run_backward_multi(roots, seeds);
    for (size_t i = 0; i < leaves.size(); ++i) {
      if ((*input_nodes)[i]->requires_grad &&
          leaves[i].node()->grad.defined()) {
        (*input_nodes)[i]->accumulate_grad(leaves[i].node()->grad);
      }
    }
  };
  for (Var& o : outs) {
    auto node = o.node();
    node->requires_grad = true;
    node->backward = recompute;
  }
  return outs;
}

Var checkpoint(const std::function<Var(const std::vector<Var>&)>& fn,
               const std::vector<Var>& inputs) {
  // Cheap forward: no tape inside the checkpointed segment.
  Tensor value;
  {
    NoGradGuard no_grad;
    value = fn(inputs).value().clone();
  }
  // Save detached copies of the inputs for re-execution.
  auto saved = std::make_shared<std::vector<Tensor>>();
  saved->reserve(inputs.size());
  for (const Var& in : inputs) saved->push_back(in.value().clone());
  std::vector<std::shared_ptr<Node>> input_nodes;
  for (const Var& in : inputs) input_nodes.push_back(in.node());

  // The segment may touch trainable parameters captured inside `fn` (the
  // usual case: module weights), so the checkpoint node must run its
  // backward even when no *explicit* input requires grad.
  Var out = make_op(std::move(value), inputs,
                    [fn, saved, input_nodes](const Tensor& up) {
    // Recompute with autograd enabled on fresh leaves.
    std::vector<Var> leaves;
    leaves.reserve(saved->size());
    for (const Tensor& t : *saved) leaves.emplace_back(t.clone(), true);
    Var out = fn(leaves);
    backward_seeded(out, up);
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (input_nodes[i]->requires_grad && leaves[i].node()->grad.defined()) {
        input_nodes[i]->accumulate_grad(leaves[i].node()->grad);
      }
    }
  });
  // Force participation in backward (see comment above). make_op only set
  // requires_grad from the explicit inputs.
  auto node = out.node();
  if (!node->requires_grad) {
    node->requires_grad = true;
    // Re-attach the backward that make_op dropped.
    node->backward = [fn, saved, input_nodes](const Tensor& up) {
      std::vector<Var> leaves;
      leaves.reserve(saved->size());
      for (const Tensor& t : *saved) leaves.emplace_back(t.clone(), true);
      Var inner = fn(leaves);
      backward_seeded(inner, up);
      for (size_t i = 0; i < leaves.size(); ++i) {
        if (input_nodes[i]->requires_grad &&
            leaves[i].node()->grad.defined()) {
          input_nodes[i]->accumulate_grad(leaves[i].node()->grad);
        }
      }
    };
  }
  return out;
}

size_t reachable_nodes(const Var& root) {
  std::unordered_set<Node*> seen;
  std::vector<Node*> stack{root.node().get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    for (auto& p : n->parents) stack.push_back(p.get());
  }
  return seen.size();
}

}  // namespace sf::autograd
