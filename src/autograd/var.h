// Tape-based reverse-mode automatic differentiation.
//
// The mini-AlphaFold (sf::model) needs gradients through a deep, branched
// computation (Evoformer stack + structure module + recycling). Rather
// than hand-deriving one monolithic backward, we record a dynamic tape of
// Nodes — each holding its output value, its parents, and a closure that
// routes an upstream gradient to its parents — and run them in reverse
// creation order. Custom fused kernels (flash MHA, fused LayerNorm)
// register as single tape nodes with their dedicated backward kernels,
// exactly like a torch.autograd.Function wrapping a Triton kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace sf::autograd {

class Var;

struct Node {
  Tensor value;
  Tensor grad;  ///< allocated lazily on first accumulation
  bool requires_grad = false;
  /// Monotone creation index — reverse order is a valid topological order
  /// for a dynamically built DAG.
  uint64_t id = 0;
  std::vector<std::shared_ptr<Node>> parents;
  /// Routes `upstream` (grad of value) into parents via accumulate_grad.
  std::function<void(const Tensor& upstream)> backward;

  /// Add `delta` into this node's grad (allocating zeros on first use).
  void accumulate_grad(const Tensor& delta);
};

/// Value-semantic handle to a tape node (like torch.Tensor w/ autograd).
class Var {
 public:
  Var() = default;
  /// Leaf variable.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  const Shape& shape() const { return node_->value.shape(); }
  int64_t numel() const { return node_->value.numel(); }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  /// Grad accumulated by the last backward() (zeros if none reached here).
  Tensor grad() const;
  void zero_grad();

  std::shared_ptr<Node> node() const { return node_; }

  /// Internal: wrap an existing node.
  static Var from_node(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

/// Create an op node. `backward` receives the upstream gradient and must
/// call accumulate_grad on the parents it differentiates into; it may
/// capture parent nodes by shared_ptr. Skipped entirely when no parent
/// requires grad.
Var make_op(Tensor value, std::vector<Var> parents,
            std::function<void(const Tensor& upstream)> backward);

/// Run reverse-mode accumulation from a scalar root (numel == 1).
void backward(const Var& root);

/// Per-backward "grad ready" hooks — the substrate for DDP-style bucketed
/// gradient communication. Register on the thread that will call
/// backward(); the hooks are consumed by that thread's next (outermost)
///// reverse sweep: fn(i) fires exactly once per registered node, on the
/// sweep thread, as soon as the last tape-visible consumer of nodes[i]
/// has executed its backward — i.e. mid-sweep, which is what lets a
/// gradient bucket's reduction launch while the rest of backward is still
/// running. Nodes with no tape-visible consumer (parameters unused this
/// step, or referenced only inside checkpoint recompute closures, whose
/// inner tapes are invisible to the outer sweep) fire after the sweep's
/// last node, when every gradient is final. Hooks are cleared when the
/// sweep finishes, normally or by exception (unfired hooks never fire).
void set_grad_ready_hooks(const std::vector<Var>& nodes,
                          std::function<void(size_t)> fn);

/// Drop hooks registered on this thread without running a backward.
void clear_grad_ready_hooks();

/// Run reverse-mode accumulation seeding the root's grad with `seed`
/// (same shape as the root's value). Used by checkpoint re-execution.
void backward_seeded(const Var& root, const Tensor& seed);

/// Thread-local autograd switch (torch.no_grad analogue). While disabled,
/// make_op produces constant nodes with no parents or backward — the
/// mechanism gradient checkpointing uses to run a cheap forward.
bool grad_enabled();

class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Gradient checkpointing (§2.2: OpenFold's memory/speed trade; §4.1: DAP
/// frees enough memory to disable it). Runs `fn` with autograd disabled —
/// no intermediate tape is kept — and registers a single node whose
/// backward re-executes `fn` with autograd enabled to reconstruct the
/// inner tape, then routes gradients to `inputs`.
Var checkpoint(const std::function<Var(const std::vector<Var>&)>& fn,
               const std::vector<Var>& inputs);

/// Multi-output gradient checkpointing (an Evoformer block yields both the
/// MSA and pair representations). The recompute fires exactly once, when
/// the first of the outputs is reached in the reverse sweep — at which
/// point every output's upstream gradient is complete, because all
/// consumers were created after all outputs on the tape.
std::vector<Var> checkpoint_multi(
    const std::function<std::vector<Var>(const std::vector<Var>&)>& fn,
    const std::vector<Var>& inputs);

/// Seed several roots and run one reverse sweep over the union graph.
void backward_seeded_multi(const std::vector<Var>& roots,
                           const std::vector<Tensor>& seeds);

/// Number of tape nodes reachable from `root` (memory-footprint proxy for
/// checkpointing tests/benches).
size_t reachable_nodes(const Var& root);

}  // namespace sf::autograd
