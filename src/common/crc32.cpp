#include "common/crc32.h"

#include <array>

namespace sf {
namespace {

std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

const std::array<uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

uint32_t crc32_update(uint32_t crc, const void* data, size_t n) {
  const auto& t = table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) crc = t[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return ~crc;
}

uint32_t crc32(const void* data, size_t n) { return crc32_update(0, data, n); }

}  // namespace sf
