// CRC-32 (IEEE 802.3 polynomial, reflected) over raw bytes.
//
// Used by the checkpoint container to detect torn or bit-flipped tensor
// payloads on load. Table-driven, one byte per step — plenty for
// checkpoint-sized payloads off the training hot path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sf {

/// One-shot CRC-32 of a buffer.
uint32_t crc32(const void* data, size_t n);

/// Streaming update: feed `crc` from a previous call (start from 0).
uint32_t crc32_update(uint32_t crc, const void* data, size_t n);

}  // namespace sf
