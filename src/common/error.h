// Error handling primitives for ScaleFold-CPP.
//
// We use exceptions for programmer errors (shape mismatches, bad configs)
// so that tests can assert on failure, and SF_CHECK as the single
// precondition-checking macro throughout the codebase.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sf {

/// Exception type thrown by all SF_CHECK failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Builds a formatted error message, then throws sf::Error.
/// Kept out-of-line behind a stream so the happy path stays cheap.
class CheckFailStream {
 public:
  CheckFailStream(const char* cond, const char* file, int line) {
    os_ << file << ":" << line << " check failed: " << cond;
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    os_ << " " << v;
    return *this;
  }
  [[noreturn]] ~CheckFailStream() noexcept(false) { throw Error(os_.str()); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace sf

/// Precondition check: throws sf::Error with file/line context on failure.
/// Extra context may be streamed: SF_CHECK(a == b) << "a=" << a;
#define SF_CHECK(cond)                                          \
  if (cond) {                                                   \
  } else                                                        \
    ::sf::detail::CheckFailStream(#cond, __FILE__, __LINE__)

/// Unconditional failure with message.
#define SF_FAIL(msg) SF_CHECK(false) << (msg)
