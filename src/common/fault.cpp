#include "common/fault.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/rng.h"

namespace sf::fault {
namespace {

struct SiteState {
  SiteConfig config;
  Rng rng{0};
  SiteStats stats;
  bool armed = false;
};

std::mutex g_mu;
// Pointer (never destroyed) so fault points hit during static teardown of
// other translation units stay safe.
std::map<std::string, SiteState>& registry() {
  static auto* r = new std::map<std::string, SiteState>();
  return *r;
}

uint64_t site_seed(const std::string& site, uint64_t user_seed) {
  // FNV-1a over the site name, mixed with the user seed: deterministic
  // per-site streams without requiring explicit seeding.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  return h ^ (user_seed * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

namespace detail {
std::atomic<int> g_armed_sites{0};

namespace {

void hit_impl(const char* site, const int64_t* context) {
  SiteConfig cfg;
  bool fire = false;
  int64_t fire_ordinal = 0;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    auto it = registry().find(site);
    if (it == registry().end() || !it->second.armed) return;
    SiteState& s = it->second;
    ++s.stats.hits;
    if (s.stats.hits <= s.config.skip_hits) return;
    if (s.config.window_hits >= 0 &&
        s.stats.hits > s.config.skip_hits + s.config.window_hits) {
      return;  // eligibility window closed
    }
    if (s.config.max_fires >= 0 && s.stats.fires >= s.config.max_fires) return;
    if (s.config.probability < 1.0 && !s.rng.bernoulli(s.config.probability)) {
      return;
    }
    fire = true;
    fire_ordinal = ++s.stats.fires;
    cfg = s.config;
  }
  if (!fire) return;
  if (cfg.delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg.delay_seconds));
  }
  if (!cfg.throws) return;
  if (cfg.kill) throw WorkerKill(site);
  std::ostringstream os;
  os << "injected fault at " << site;
  if (context) os << " (context " << *context << ")";
  os << " [fire " << fire_ordinal << "]";
  throw InjectedFault(site, os.str());
}

}  // namespace

void hit(const char* site) { hit_impl(site, nullptr); }
void hit(const char* site, int64_t context) { hit_impl(site, &context); }

}  // namespace detail

void arm(const std::string& site, SiteConfig config) {
  std::lock_guard<std::mutex> lock(g_mu);
  SiteState& s = registry()[site];
  if (!s.armed) detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.config = config;
  s.rng = Rng(site_seed(site, config.seed));
  s.stats = SiteStats{};
}

void arm_once(const std::string& site, int64_t on_hit) {
  SF_CHECK(on_hit >= 1) << "arm_once hit ordinal is 1-based";
  SiteConfig cfg;
  cfg.skip_hits = on_hit - 1;
  cfg.max_fires = 1;
  arm(site, cfg);
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = registry().find(site);
  if (it == registry().end() || !it->second.armed) return;
  it->second.armed = false;
  detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mu);
  for (auto& [name, s] : registry()) {
    if (s.armed) detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
    s.armed = false;
  }
  registry().clear();
}

SiteStats stats(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto it = registry().find(site);
  return it == registry().end() ? SiteStats{} : it->second.stats;
}

void install(const Schedule& schedule) {
  for (const ScheduleEntry& e : schedule) arm(e.site, e.config);
}

Schedule random_schedule(const std::vector<std::string>& sites,
                         const ChaosOptions& options) {
  SF_CHECK(options.mean_probability >= 0.0);
  SF_CHECK(options.kill_fraction + options.delay_fraction <= 1.0 + 1e-9)
      << "chaos fractions must sum to <= 1";
  Rng rng(options.seed ^ 0xc7a05c7a05ULL);
  Schedule out;
  out.reserve(sites.size());
  for (const std::string& site : sites) {
    SiteConfig cfg;
    cfg.probability =
        std::min(1.0, rng.uniform(0.0, 2.0 * options.mean_probability));
    cfg.skip_hits = options.max_skip_hits > 0
                        ? static_cast<int64_t>(rng.uniform_int(
                              static_cast<uint64_t>(options.max_skip_hits + 1)))
                        : 0;
    cfg.window_hits = options.window_hits;
    cfg.max_fires = options.max_fires_per_site;
    const double mode = rng.uniform();
    if (mode < options.kill_fraction) {
      cfg.kill = true;
    } else if (mode < options.kill_fraction + options.delay_fraction) {
      cfg.throws = false;
      cfg.delay_seconds = rng.uniform(0.0, options.max_delay_seconds);
    }
    // Distinct per-site streams, all pinned to the master seed.
    cfg.seed = options.seed ^ rng.next_u64();
    out.push_back({site, cfg});
  }
  return out;
}

}  // namespace sf::fault
