// Deterministic, seeded fault injection.
//
// Production code marks named injection sites with
//
//   SF_FAULT_POINT("loader.prep", batch_index);
//
// A disarmed site costs one relaxed atomic load (the common case: nothing
// armed anywhere). Tests and benches arm sites with per-site triggers —
// fire on the Nth hit, fire with probability p from a seeded stream, fire
// at most k times, optionally sleeping before throwing — so every failure
// path is exercisable and exactly reproducible from a seed.
//
// Two exception types are thrown by a firing site:
//   InjectedFault — an ordinary injected error; recoverable paths (e.g.
//                   the loader's per-batch retry) treat it like any other
//                   preparation failure.
//   WorkerKill    — simulates a crashed thread; cooperating loops (e.g.
//                   PrefetchLoader workers) catch it and exit the thread,
//                   leaving their in-flight work to be reclaimed by the
//                   survivors. Armed via SiteConfig::kill = true.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace sf::fault {

/// Thrown by a firing fault point (unless configured to kill).
class InjectedFault : public Error {
 public:
  InjectedFault(std::string site, const std::string& what)
      : Error(what), site_(std::move(site)) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Thrown by a firing fault point armed with `kill = true`. Not derived
/// from InjectedFault: retry loops must not swallow a simulated crash.
class WorkerKill : public Error {
 public:
  explicit WorkerKill(std::string site)
      : Error("injected worker kill at " + site), site_(std::move(site)) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

struct SiteConfig {
  /// Probability that an eligible hit fires. 1.0 = always.
  double probability = 1.0;
  /// Hits to let pass before the site becomes eligible (0 = immediately).
  int64_t skip_hits = 0;
  /// Stop firing after this many fires; < 0 = unlimited.
  int64_t max_fires = 1;
  /// Eligibility window, measured in hits past skip_hits: only hits
  /// skip_hits+1 .. skip_hits+window_hits may fire; < 0 = unbounded.
  /// Hit counts are deterministic program events, so a [skip, window]
  /// pair is the replayable analog of a wall-clock fault window.
  int64_t window_hits = -1;
  /// Sleep this long when firing, before throwing (simulates a hang).
  double delay_seconds = 0.0;
  /// Throw WorkerKill instead of InjectedFault (simulated thread crash).
  bool kill = false;
  /// If false, the fire only delays/counts and does not throw at all.
  bool throws = true;
  /// Seed for the per-site probability stream; 0 derives one from the
  /// site name so runs are reproducible without explicit seeding.
  uint64_t seed = 0;
};

/// Arm (or re-arm, resetting counters) a site.
void arm(const std::string& site, SiteConfig config = {});

/// Convenience: fire exactly once, on the nth hit (1-based).
void arm_once(const std::string& site, int64_t on_hit = 1);

/// Disarm one site (its stats remain readable until reset()).
void disarm(const std::string& site);

/// Disarm every site and clear all stats. Tests should call this in
/// teardown so sites never leak across test cases.
void reset();

struct SiteStats {
  int64_t hits = 0;   ///< times the site was reached while armed
  int64_t fires = 0;  ///< times it actually fired
};
SiteStats stats(const std::string& site);

// ---- Chaos schedules -------------------------------------------------------
//
// A schedule is a reproducible bundle of armed sites — the "fault
// weather" one run of a chaos test experiences. Schedules are plain data:
// build one by hand, or sample one from a seed with random_schedule(),
// then install() it. The same (sites, options, seed) triple always
// produces the same schedule, and the per-site probability streams are
// seeded from the same seed, so a chaos run is replayable end to end.

struct ScheduleEntry {
  std::string site;
  SiteConfig config;
};
using Schedule = std::vector<ScheduleEntry>;

/// Arm every entry (re-arming resets that site's counters). Sites not in
/// the schedule are left untouched; call reset() first for a clean slate.
void install(const Schedule& schedule);

/// Kinds of weather random_schedule() mixes over the given sites.
struct ChaosOptions {
  /// Master seed: drives site assignment and every per-site stream.
  uint64_t seed = 0;
  /// Mean per-hit fire probability; each site samples its own probability
  /// uniformly from (0, 2 * mean_probability).
  double mean_probability = 0.02;
  /// Fraction of sites armed as WorkerKill (rank/worker loss); the rest
  /// split between delay-only jitter and InjectedFault throws.
  double kill_fraction = 0.25;
  /// Fraction of sites armed as delay-only (throws = false) jitter.
  double delay_fraction = 0.5;
  /// Upper bound for a sampled per-fire delay (delay-only sites).
  double max_delay_seconds = 2e-3;
  /// Per-site cap on fires; < 0 = unlimited.
  int64_t max_fires_per_site = 2;
  /// Eligibility windows: each site samples skip_hits uniformly from
  /// [0, max_skip_hits] and keeps window_hits from here (< 0 unbounded).
  int64_t max_skip_hits = 16;
  int64_t window_hits = -1;
};

/// Sample a reproducible randomized schedule over `sites`. Pure function
/// of (sites, options) — it arms nothing by itself.
Schedule random_schedule(const std::vector<std::string>& sites,
                         const ChaosOptions& options);

namespace detail {
extern std::atomic<int> g_armed_sites;
/// Slow path behind SF_FAULT_POINT; throws if the site fires.
void hit(const char* site);
void hit(const char* site, int64_t context);
}  // namespace detail

/// True if any site is armed (fast path, lock-free).
inline bool any_armed() {
  return detail::g_armed_sites.load(std::memory_order_relaxed) > 0;
}

}  // namespace sf::fault

/// Named fault-injection site. Optional second argument is an integer
/// context (e.g. a batch index) included in the thrown message.
#define SF_FAULT_POINT(...)                                \
  do {                                                     \
    if (::sf::fault::any_armed()) {                        \
      ::sf::fault::detail::hit(__VA_ARGS__);               \
    }                                                      \
  } while (0)
