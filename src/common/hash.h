// Stable, dependency-free content hashing (FNV-1a 64-bit).
//
// Used where a value must be addressed by its bytes across threads and
// process runs — e.g. the serving layer's featurization cache keys protein
// sequences by hash. Not cryptographic; collisions are tolerated by the
// consumers (a cache collision only re-serves another request's features,
// which the tests rule out for the synthetic population sizes used).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sf {

inline constexpr uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv64Prime = 0x100000001b3ULL;

/// Fold `len` bytes into a running FNV-1a state (chainable).
inline uint64_t fnv1a64(const void* data, size_t len,
                        uint64_t state = kFnv64OffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    state ^= p[i];
    state *= kFnv64Prime;
  }
  return state;
}

/// Hash one integer value into a running state (chainable).
inline uint64_t fnv1a64_u64(uint64_t v, uint64_t state = kFnv64OffsetBasis) {
  return fnv1a64(&v, sizeof(v), state);
}

}  // namespace sf
