#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sf {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit_log(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace sf
