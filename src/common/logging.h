// Lightweight leveled logging to stderr.
//
// Benches print their tables to stdout; diagnostics go through SF_LOG so
// they can be silenced globally (tests run with level = kWarn).
#pragma once

#include <sstream>
#include <string>

namespace sf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void emit_log(LogLevel level, const std::string& msg);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  ~LogStream() { emit_log(level_, os_.str()); }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail
}  // namespace sf

#define SF_LOG(level)                                      \
  if (::sf::LogLevel::level < ::sf::log_level()) {         \
  } else                                                   \
    ::sf::detail::LogStream(::sf::LogLevel::level)
