#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "common/thread_pool.h"

namespace sf {
namespace {

/// Upper bound on chunks per loop: enough slack for dynamic load balance
/// at any sane thread count, small enough that per-chunk dispatch stays
/// negligible. A fixed constant (not a function of the thread count) so
/// the split — and every reduction order built on it — is reproducible.
constexpr int64_t kMaxChunksPerLoop = 64;

std::atomic<int> g_thread_override{0};
thread_local bool t_in_parallel_region = false;

int default_threads() {
  static const int cached = [] {
    if (const char* s = std::getenv("SF_NUM_THREADS"); s && *s) {
      int v = std::atoi(s);
      if (v >= 1) return v;
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }();
  return cached;
}

// Process-wide compute pool, created lazily at first parallel call and
// replaced by a bigger one if a later set_num_threads() asks for more
// workers. In-flight regions hold a shared_ptr, so a replaced pool drains
// its queued helpers and joins once the last region releases it.
std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;

std::shared_ptr<ThreadPool> pool_with_at_least(int workers) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool || static_cast<int>(g_pool->size()) < workers) {
    g_pool = std::make_shared<ThreadPool>(static_cast<size_t>(workers));
  }
  return g_pool;
}

}  // namespace

int num_threads() {
  int o = g_thread_override.load(std::memory_order_relaxed);
  return o >= 1 ? o : default_threads();
}

void set_num_threads(int n) {
  g_thread_override.store(n >= 1 ? n : 0, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel_region; }

namespace detail {

int64_t chunk_count(int64_t n, int64_t grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  const int64_t by_grain = (n + grain - 1) / grain;
  return std::min<int64_t>(by_grain, kMaxChunksPerLoop);
}

ChunkRange chunk_bounds(int64_t n, int64_t n_chunks, int64_t idx) {
  const int64_t base = n / n_chunks;
  const int64_t rem = n % n_chunks;
  ChunkRange r;
  r.begin = idx * base + std::min(idx, rem);
  r.end = r.begin + base + (idx < rem ? 1 : 0);
  return r;
}

void run_chunks(int64_t n_chunks, const std::function<void(int64_t)>& body) {
  if (n_chunks <= 0) return;
  const int threads = num_threads();
  if (n_chunks == 1 || threads <= 1 || t_in_parallel_region) {
    // Inline path: single chunk, single-threaded config, or a nested call
    // from inside a parallel region (waiting on the pool from one of its
    // own workers could deadlock it). Chunk order is ascending, matching
    // the fixed combine order of reductions.
    for (int64_t c = 0; c < n_chunks; ++c) body(c);
    return;
  }

  struct State {
    std::atomic<int64_t> next_chunk{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr first_error;
    int helpers_live = 0;
  };
  auto state = std::make_shared<State>();
  const int64_t total = n_chunks;

  // One chunk claimed per fetch_add; assignment order is irrelevant to the
  // results (chunks are data-disjoint, reductions combine by index).
  auto drain = [state, total, &body] {
    int64_t c;
    while ((c = state->next_chunk.fetch_add(1,
                                            std::memory_order_relaxed)) <
           total) {
      if (state->failed.load(std::memory_order_relaxed)) continue;
      try {
        body(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->first_error) state->first_error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int helpers =
      static_cast<int>(std::min<int64_t>(threads - 1, n_chunks - 1));
  auto pool = pool_with_at_least(helpers);
  state->helpers_live = helpers;
  for (int h = 0; h < helpers; ++h) {
    // Helpers reference `drain` state via the shared_ptr; the caller waits
    // for every helper to finish before returning, so the captured
    // reference to `body` stays valid for the helpers' whole lifetime.
    pool->submit([state, drain] {
      t_in_parallel_region = true;
      drain();
      t_in_parallel_region = false;
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->helpers_live == 0) state->cv.notify_all();
    });
  }

  // The caller participates: progress is guaranteed even when the pool is
  // busy with other regions' helpers.
  t_in_parallel_region = true;
  drain();
  t_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->helpers_live == 0; });
    if (state->first_error) {
      std::exception_ptr e = state->first_error;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }
}

}  // namespace detail

void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int64_t chunks = detail::chunk_count(n, grain);
  if (chunks == 1) {
    // Fast path: no chunk-index indirection for small ranges.
    body(begin, end);
    return;
  }
  detail::run_chunks(chunks, [&](int64_t c) {
    ChunkRange r = detail::chunk_bounds(n, chunks, c);
    body(begin + r.begin, begin + r.end);
  });
}

}  // namespace sf
