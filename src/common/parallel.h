// Intra-op parallelism substrate: sf::parallel_for / sf::parallel_reduce.
//
// ScaleFold's kernel wins (§3.3.1) come from saturating the hardware with
// highly parallel fused kernels; on this CPU reproduction the analogue is
// running every hot kernel across a process-wide compute pool. Design
// constraints, in order of priority:
//
//   1. Determinism. The split of an index range into chunks depends ONLY
//      on (range length, grain), never on the thread count, and reduction
//      partials are combined in fixed chunk order. Kernel outputs are
//      therefore bitwise identical at SF_NUM_THREADS=1 and =N — the same
//      property the paper needs for its convergence-preserving claims.
//   2. Small tensors stay serial. `grain` is the minimum number of items
//      worth shipping to another thread; ranges that produce a single
//      chunk run inline with zero synchronization.
//   3. No deadlocks under nesting. A pool worker (or a caller already
//      inside a parallel region) that re-enters parallel_for runs the
//      chunks inline instead of waiting on the pool.
//   4. Exception safety. The first exception thrown by any chunk is
//      rethrown on the caller after all in-flight chunks finish; the pool
//      survives and later parallel calls work normally.
//
// Thread count resolution: set_num_threads() override, else SF_NUM_THREADS
// from the environment, else std::thread::hardware_concurrency(). The pool
// is created lazily on first parallel call and resized (recreated) if a
// later override asks for more threads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace sf {

/// Intra-op thread count currently in effect (>= 1).
int num_threads();

/// Override the intra-op thread count at runtime (benches sweep this).
/// n >= 1 sets the override; n <= 0 clears it back to SF_NUM_THREADS /
/// hardware_concurrency.
void set_num_threads(int n);

/// True on a thread currently executing parallel_for/parallel_reduce
/// chunks (pool worker or participating caller). Nested parallel calls on
/// such a thread run inline.
bool in_parallel_region();

struct ChunkRange {
  int64_t begin = 0;
  int64_t end = 0;
};

namespace detail {

/// Number of chunks a range of `n` items splits into. Depends only on
/// (n, grain): at most ceil(n/grain), capped by a fixed constant so huge
/// ranges don't drown in per-chunk overhead. Never depends on the thread
/// count (determinism requirement #1).
int64_t chunk_count(int64_t n, int64_t grain);

/// Half-open bounds of chunk `idx` within [0, n) under an `n_chunks`-way
/// balanced split (first n % n_chunks chunks get one extra item).
ChunkRange chunk_bounds(int64_t n, int64_t n_chunks, int64_t idx);

/// Run body(chunk_idx) for every chunk index in [0, n_chunks), on the
/// compute pool when profitable. Chunk-to-thread assignment is dynamic
/// (it does not affect results: chunks are data-disjoint by contract).
/// Rethrows the first chunk exception after all chunks finish.
void run_chunks(int64_t n_chunks, const std::function<void(int64_t)>& body);

}  // namespace detail

/// Apply body(begin, end) over deterministic sub-ranges covering
/// [begin, end). Sub-ranges are disjoint; body must only write state owned
/// by its range. Ranges below ~grain items run inline on the caller.
void parallel_for(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t)>& body);

/// Deterministic map-reduce: map(begin, end) -> T per chunk, partials
/// combined left-to-right in chunk-index order (fixed order regardless of
/// thread count, so floating-point results are reproducible). The chunked
/// evaluation runs even at one thread so the summation tree is identical
/// at every thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(int64_t begin, int64_t end, int64_t grain, T init,
                  const Map& map, const Combine& combine) {
  const int64_t n = end - begin;
  if (n <= 0) return init;
  const int64_t chunks = detail::chunk_count(n, grain);
  std::vector<T> partials(static_cast<size_t>(chunks));
  detail::run_chunks(chunks, [&](int64_t c) {
    ChunkRange r = detail::chunk_bounds(n, chunks, c);
    partials[static_cast<size_t>(c)] = map(begin + r.begin, begin + r.end);
  });
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace sf
