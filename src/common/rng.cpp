#include "common/rng.h"

namespace sf {

void fill_normal(Rng& rng, float* data, size_t n, float mean, float stddev) {
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(rng.normal(mean, stddev));
  }
}

void fill_uniform(Rng& rng, float* data, size_t n, float lo, float hi) {
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(rng.uniform(lo, hi));
  }
}

}  // namespace sf
