// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, synthetic protein
// sampling, straggler injection) flows through sf::Rng so experiments are
// reproducible from a single seed. SplitMix64 core: tiny, fast, passes
// BigCrush, and trivially splittable for per-worker streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace sf {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5ca1ef01dULL) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t uniform_int(uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal: exp(N(mu, sigma)). Used for long-tailed batch-prep times
  /// and sequence-length distributions (ScaleFold Fig. 4 spans ~3 decades).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with given rate.
  double exponential(double rate) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-worker determinism).
  Rng split() { return Rng(next_u64() ^ 0xdeadbeefcafef00dULL); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
};

/// Fill helpers used by tensor init code.
void fill_normal(Rng& rng, float* data, size_t n, float mean, float stddev);
void fill_uniform(Rng& rng, float* data, size_t n, float lo, float hi);

}  // namespace sf
