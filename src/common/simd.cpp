#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "common/logging.h"

namespace sf::simd {
namespace {

// -1 = no override; otherwise the Tier value forced via set_tier().
std::atomic<int> g_override{-1};

Tier parse_env_tier() {
  const char* s = std::getenv("SF_SIMD");
  if (!s || !*s || std::strcmp(s, "auto") == 0) return best_available();
  for (int i = 0; i < kNumTiers; ++i) {
    Tier t = static_cast<Tier>(i);
    if (std::strcmp(s, tier_name(t)) == 0) {
      if (tier_available(t)) return t;
      SF_LOG(kWarn) << "SF_SIMD=" << s << " not available on this host "
                   << "(compiled_in=" << compiled_in(t)
                   << " cpu_supports=" << cpu_supports(t)
                   << "); falling back to " << tier_name(best_available());
      return best_available();
    }
  }
  SF_LOG(kWarn) << "unknown SF_SIMD value '" << s
               << "' (want scalar|sse|avx2|neon|auto); using auto";
  return best_available();
}

Tier env_tier() {
  static const Tier t = parse_env_tier();
  return t;
}

int64_t cache_bytes(int name, int64_t fallback) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  long v = sysconf(name);
  if (v > 0) return static_cast<int64_t>(v);
#else
  (void)name;
#endif
  return fallback;
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSSE: return "sse";
    case Tier::kAVX2: return "avx2";
    case Tier::kNEON: return "neon";
  }
  return "unknown";
}

bool compiled_in(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kSSE:
#if defined(SF_SIMD_BUILD_SSE41)
      return true;
#else
      return false;
#endif
    case Tier::kAVX2:
#if defined(SF_SIMD_BUILD_AVX2)
      return true;
#else
      return false;
#endif
    case Tier::kNEON:
#if defined(SF_SIMD_BUILD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool cpu_supports(Tier t) {
  if (t == Tier::kScalar) return true;
#if defined(__x86_64__) || defined(__i386__)
  if (t == Tier::kSSE) return __builtin_cpu_supports("sse4.1") != 0;
  if (t == Tier::kAVX2) return __builtin_cpu_supports("avx2") != 0;
  return false;
#elif defined(__aarch64__)
  return t == Tier::kNEON;  // NEON is architecturally baseline on aarch64
#else
  return false;
#endif
}

bool tier_available(Tier t) { return compiled_in(t) && cpu_supports(t); }

Tier best_available() {
  static const Tier best = [] {
    if (tier_available(Tier::kAVX2)) return Tier::kAVX2;
    if (tier_available(Tier::kNEON)) return Tier::kNEON;
    if (tier_available(Tier::kSSE)) return Tier::kSSE;
    return Tier::kScalar;
  }();
  return best;
}

Tier active_tier() {
  int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<Tier>(o);
  return env_tier();
}

bool set_tier(Tier t) {
  if (!tier_available(t)) return false;
  g_override.store(static_cast<int>(t), std::memory_order_relaxed);
  return true;
}

void clear_tier() { g_override.store(-1, std::memory_order_relaxed); }

const CacheInfo& cache_info() {
  static const CacheInfo info = [] {
    CacheInfo c;
#if defined(_SC_LEVEL1_DCACHE_SIZE) && defined(_SC_LEVEL2_CACHE_SIZE)
    c.l1d_bytes = cache_bytes(_SC_LEVEL1_DCACHE_SIZE, 32 * 1024);
    c.l2_bytes = cache_bytes(_SC_LEVEL2_CACHE_SIZE, 1024 * 1024);
#else
    c.l1d_bytes = 32 * 1024;
    c.l2_bytes = 1024 * 1024;
#endif
    // Some containers report 0 for one level but not the other.
    if (c.l1d_bytes <= 0) c.l1d_bytes = 32 * 1024;
    if (c.l2_bytes <= 0) c.l2_bytes = 1024 * 1024;
    return c;
  }();
  return info;
}

}  // namespace sf::simd
