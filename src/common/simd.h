// SIMD tier selection for the vectorized kernels (DESIGN.md §12).
//
// ScaleFold's kernel chapter is about making undersized kernels saturate
// the hardware; on this CPU reproduction the per-core half of that story
// is vector width. Every hot kernel in src/kernels dispatches through a
// per-tier op table (kernels/simd_ops.h): explicit SSE4.1 / AVX2 / NEON
// intrinsics behind runtime capability detection, plus a forced-scalar
// tier that exists purely so the SIMD paths can be differentially tested
// (`SF_SIMD=scalar`).
//
// Determinism contract: all tiers execute the same IEEE operation DAG —
// reductions use a fixed virtual-lane pattern (8 float lanes / 4 double
// lanes, combined in ascending lane order) in *every* tier, elementwise
// ops keep the scalar expression order, and no tier uses FMA (the build
// adds -ffp-contract=off so the compiler cannot introduce one). Kernel
// output is therefore bitwise identical across scalar/SSE/AVX2/NEON at
// any thread count; CI gates this with memcmp.
//
// Tier resolution order: set_tier() override (tests/benches), else the
// SF_SIMD environment variable (scalar|sse|avx2|neon|auto), else the best
// tier both compiled into the binary and supported by the running CPU.
#pragma once

#include <cstdint>

namespace sf::simd {

enum class Tier : int {
  kScalar = 0,  ///< portable fallback; always available
  kSSE = 1,     ///< x86 SSE4.1 (128-bit)
  kAVX2 = 2,    ///< x86 AVX2 (256-bit)
  kNEON = 3,    ///< aarch64 NEON (128-bit)
};
constexpr int kNumTiers = 4;

/// Short lowercase name ("scalar", "sse", "avx2", "neon") — also the
/// accepted SF_SIMD values.
const char* tier_name(Tier t);

/// True when the per-tier kernel translation unit was built into this
/// binary (compiler supported the ISA flags at configure time).
bool compiled_in(Tier t);

/// True when the running CPU can execute the tier's instructions.
bool cpu_supports(Tier t);

/// compiled_in && cpu_supports.
bool tier_available(Tier t);

/// Widest available tier on this host (kScalar when nothing else is).
Tier best_available();

/// Tier currently in effect: set_tier override, else SF_SIMD, else
/// best_available().
Tier active_tier();

/// Override the active tier at runtime (benches and the differential
/// tests sweep this). Returns false — and changes nothing — when the
/// requested tier is not available on this host.
bool set_tier(Tier t);

/// Drop the set_tier override, back to SF_SIMD / auto.
void clear_tier();

/// Data-cache geometry used to size GEMM packing tiles. Values are
/// best-effort (sysconf) with sane fallbacks; they never affect results,
/// only blocking (the per-element accumulation order is tile-invariant).
struct CacheInfo {
  int64_t l1d_bytes = 0;
  int64_t l2_bytes = 0;
};
const CacheInfo& cache_info();

}  // namespace sf::simd
