#include "common/thread_pool.h"

#include "common/error.h"

namespace sf {

ThreadPool::ThreadPool(size_t num_threads) {
  SF_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SF_CHECK(!stop_) << "submit() on a stopped ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace sf
