#include "common/thread_pool.h"

#include "common/error.h"

namespace sf {

ThreadPool::ThreadPool(size_t num_threads) {
  SF_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SF_CHECK(!stop_) << "submit() on a stopped ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

std::exception_ptr ThreadPool::take_error_locked() {
  std::exception_ptr e = first_error_;
  first_error_ = nullptr;
  return e;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (std::exception_ptr e = take_error_locked()) {
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::check() {
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(mu_);
    e = take_error_locked();
  }
  if (e) std::rethrow_exception(e);
}

int64_t ThreadPool::failed_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_tasks_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // A throwing task must not escape (std::terminate) nor strand
    // active_: capture the first exception for the consumer and keep
    // this worker serving the queue.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error) {
        ++failed_tasks_;
        if (!first_error_) first_error_ = std::move(error);
      }
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace sf
