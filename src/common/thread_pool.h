// Minimal fixed-size thread pool.
//
// Used by the data-pipeline loaders (worker processes in the paper map to
// pool threads here) and by async evaluation. Tasks are type-erased
// std::function<void()>; results flow through caller-owned state or
// std::promise captured in the closure.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sf {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws sf::Error if the pool is shutting down.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace sf
