// Minimal fixed-size thread pool.
//
// Used by the data-pipeline loaders (worker processes in the paper map to
// pool threads here) and by async evaluation. Tasks are type-erased
// std::function<void()>; results flow through caller-owned state or
// std::promise captured in the closure.
//
// Exception safety: a task that throws does NOT kill its worker (letting
// the exception escape worker_loop would hit std::terminate and strand
// active_, hanging wait_idle() forever). The first exception is captured
// and rethrown on the consumer side by check() or wait_idle(); later
// exceptions are counted and dropped, mirroring the PyTorch DataLoader
// contract the PrefetchLoader follows.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sf {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws sf::Error if the pool is shutting down.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed, then rethrow the
  /// first task exception, if any (clearing it, like check()).
  void wait_idle();

  /// Rethrow the first exception thrown by a task since the last check,
  /// if any, and clear it. Non-blocking.
  void check();

  /// Tasks that threw since construction (including dropped ones).
  int64_t failed_tasks() const;

  size_t size() const { return workers_.size(); }

 private:
  void worker_loop();
  /// Takes the stored exception (nullptr if none). Lock held by caller.
  std::exception_ptr take_error_locked();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
  int64_t failed_tasks_ = 0;
};

}  // namespace sf
