// Wall-clock timing utilities used by the profiler, loaders and benches.
#pragma once

#include <chrono>

namespace sf {

/// Monotonic wall-clock timer with second-resolution doubles.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed() * 1e3; }
  double elapsed_us() const { return elapsed() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.elapsed(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace sf
