// ScaleFold-CPP public umbrella header.
//
// Pulls in the full public API: tensor substrate, kernels, graph executor,
// data pipeline, autograd, mini-AlphaFold model, training stack, cluster
// simulator, and the ScaleFold training-session orchestration.
#pragma once

#include "core/session.h"       // IWYU pragma: export
#include "data/loader.h"        // IWYU pragma: export
#include "data/protein_sample.h"  // IWYU pragma: export
#include "graph/executor.h"     // IWYU pragma: export
#include "graph/fuser.h"        // IWYU pragma: export
#include "model/alphafold.h"    // IWYU pragma: export
#include "model/metrics.h"      // IWYU pragma: export
#include "sim/cluster.h"        // IWYU pragma: export
#include "sim/ttt.h"            // IWYU pragma: export
#include "train/evaluator.h"    // IWYU pragma: export
#include "train/trainer.h"      // IWYU pragma: export
