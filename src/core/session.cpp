#include "core/session.h"

#include "common/error.h"
#include "common/timer.h"

namespace sf::core {

void ScaleFoldOptions::sync_dims() {
  model.crop_len = dataset.crop_len;
  model.msa_rows = dataset.msa_rows;
  model.msa_feat_dim = data::kMsaFeatDim;
  model.num_aa = data::kNumAminoAcids;
  model.use_flash_mha = flash_mha;
  model.use_fused_layernorm = fused_layernorm;
  model.bf16_activations = bf16_activations;
  if (gradient_checkpointing) model.gradient_checkpointing = true;
  if (aux_losses) model.aux_losses = true;
  train.opt.fused = fused_optimizer;
  train.opt.bucketed_grad_norm = bucketed_grad_norm;
  if (num_threads > 0) train.num_threads = num_threads;
}

sim::Toggles ScaleFoldOptions::sim_toggles() const {
  sim::Toggles t;
  t.nonblocking_loader = nonblocking_loader;
  t.triton_mha = flash_mha;
  t.triton_ln = fused_layernorm;
  t.fused_adam_swa = fused_optimizer;
  t.bf16 = bf16_activations;
  return t;
}

TrainingSession::TrainingSession(ScaleFoldOptions options)
    : options_(std::move(options)) {
  options_.sync_dims();
  dataset_ = std::make_unique<data::SyntheticProteinDataset>(options_.dataset);
  net_ = std::make_unique<model::MiniAlphaFold>(options_.model, options_.seed);
  trainer_ = std::make_unique<train::Trainer>(*net_, options_.train);

  if (options_.eval_every_steps > 0 || options_.eval_samples > 0) {
    // Evaluation set: the last eval_samples indices of the dataset.
    std::vector<int64_t> eval_idx;
    for (int64_t i = 0; i < options_.eval_samples; ++i) {
      eval_idx.push_back(dataset_->size() - 1 - i);
    }
    eval_cache_ = std::make_shared<train::EvalCache>(
        *dataset_, eval_idx, options_.cached_eval,
        "/tmp/scalefold_evalcache_" + std::to_string(options_.seed));
    if (options_.async_eval) {
      async_eval_ = std::make_unique<train::AsyncEvaluator>(
          options_.model, eval_cache_, options_.eval_recycles);
    }
  }
}

TrainingSession::~TrainingSession() = default;

std::unique_ptr<serve::Service> TrainingSession::make_server(
    serve::ServeConfig config) {
  return std::make_unique<serve::Service>(std::move(config), options_.dataset,
                                          options_.model, &net_->params());
}

std::vector<StepRecord> TrainingSession::run(int64_t steps) {
  SF_CHECK(steps > 0);
  // Fresh loader over the next `steps` dataset indices (training indices
  // never touch the eval tail).
  const int64_t train_space = dataset_->size() - options_.eval_samples;
  SF_CHECK(batches_consumed_ + steps <= train_space)
      << "dataset too small for" << steps << "more steps";
  data::LoaderConfig lc;
  lc.num_workers = options_.loader_workers;
  lc.max_in_flight = options_.loader_prefetch;
  lc.policy = options_.nonblocking_loader ? data::YieldPolicy::kReadyFirst
                                          : data::YieldPolicy::kInOrder;
  const int64_t base = batches_consumed_;
  auto loader = std::make_unique<data::PrefetchLoader>(
      [this, base](int64_t i) { return dataset_->prepare_batch(base + i); },
      steps, lc);

  std::vector<StepRecord> records;
  records.reserve(steps);
  for (int64_t s = 0; s < steps; ++s) {
    Timer wait_timer;
    data::Batch batch = loader->next();
    double wait = wait_timer.elapsed();
    total_data_wait_ += wait;

    auto step = trainer_->train_step(batch);
    StepRecord rec;
    rec.step = trainer_->step();
    rec.loss = step.loss;
    rec.lddt = step.lddt;
    rec.grad_norm = step.grad_norm;
    rec.step_seconds = step.seconds;
    rec.data_wait_seconds = wait;
    records.push_back(rec);

    if (options_.eval_every_steps > 0 &&
        trainer_->step() % options_.eval_every_steps == 0) {
      if (async_eval_) {
        async_eval_->submit(trainer_->step(), net_->params().all());
      } else if (eval_cache_) {
        evaluate_now();
      }
    }
  }
  batches_consumed_ += steps;
  return records;
}

train::EvalResult TrainingSession::evaluate_now() {
  SF_CHECK(eval_cache_ != nullptr) << "session has no evaluation set";
  auto& opt = trainer_->optimizer();
  const bool use_swa = opt.config().use_swa && opt.step_count() > 0;
  if (use_swa) opt.swap_in_swa();
  auto batches = eval_cache_->fetch_all();
  auto result = train::evaluate(*net_, batches, options_.eval_recycles);
  if (use_swa) opt.restore_live();
  return result;
}

std::vector<train::AsyncEvaluator::Report>
TrainingSession::drain_eval_reports() {
  if (!async_eval_) return {};
  return async_eval_->wait_all();
}

}  // namespace sf::core
