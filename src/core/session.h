// TrainingSession: the ScaleFold method as one orchestrated object.
//
// Wires together the real components this library implements — synthetic
// dataset, blocking/non-blocking loader, mini-AlphaFold, fused/unfused
// optimizer, sync/async evaluation with DRAM/disk eval sets — under a
// single options struct whose switches mirror the paper's eight
// optimizations. Examples and several benches run entirely through this
// class; the same options map onto the cluster simulator's toggles for
// the paper-scale figures.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "data/loader.h"
#include "model/alphafold.h"
#include "serve/service.h"
#include "sim/cluster.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace sf::core {

struct ScaleFoldOptions {
  // The paper's optimization set (§5), at mini scale.
  bool nonblocking_loader = true;   ///< §3.2 ready-first pipeline
  bool flash_mha = true;            ///< §3.3.1 fused MHA kernel
  bool fused_layernorm = true;      ///< §3.3.1 fused LN kernel
  bool fused_optimizer = true;      ///< §3.3.1 fused Adam+SWA
  bool bucketed_grad_norm = true;   ///< §3.3.1 grad-clip via buckets
  bool bf16_activations = false;    ///< §3.4 bf16 numerics
  bool async_eval = true;           ///< §3.4 offloaded evaluation
  bool cached_eval = true;          ///< §3.4 eval set in DRAM vs disk
  bool gradient_checkpointing = false;  ///< §2.2/§4.1 memory-speed trade
  bool aux_losses = false;          ///< masked-MSA + distogram heads

  model::ModelConfig model;
  data::DatasetConfig dataset;
  train::TrainConfig train;

  int loader_workers = 2;
  int loader_prefetch = 4;
  /// Intra-op kernel threads; 0 = process default (SF_NUM_THREADS env or
  /// hardware concurrency). Forwarded into train.num_threads by
  /// sync_dims(). Results are bitwise-identical at any value.
  int num_threads = 0;
  int64_t eval_samples = 4;
  int64_t eval_every_steps = 0;  ///< 0 = no periodic evaluation
  int64_t eval_recycles = 1;
  uint64_t seed = 2024;

  /// Make the model dims consistent with the dataset featurization.
  void sync_dims();

  /// The same switches expressed as cluster-simulator toggles.
  sim::Toggles sim_toggles() const;
};

struct StepRecord {
  int64_t step = 0;
  float loss = 0;
  float lddt = 0;
  float grad_norm = 0;
  double step_seconds = 0;
  double data_wait_seconds = 0;
};

class TrainingSession {
 public:
  explicit TrainingSession(ScaleFoldOptions options);
  ~TrainingSession();

  /// Train for `steps` optimization steps, pulling batches through the
  /// configured loader and submitting evaluations on cadence.
  std::vector<StepRecord> run(int64_t steps);

  /// Evaluate the current (SWA if enabled) weights synchronously.
  train::EvalResult evaluate_now();

  /// Completed async evaluation reports so far (empty in sync mode).
  std::vector<train::AsyncEvaluator::Report> drain_eval_reports();

  /// Build an inference service over this session's dataset config and
  /// current weights (copied into the service's per-bucket replicas, so
  /// training may continue afterwards without affecting served results).
  std::unique_ptr<serve::Service> make_server(serve::ServeConfig config);

  model::MiniAlphaFold& net() { return *net_; }
  train::Trainer& trainer() { return *trainer_; }
  const data::SyntheticProteinDataset& dataset() const { return *dataset_; }
  const ScaleFoldOptions& options() const { return options_; }
  double total_data_wait_seconds() const { return total_data_wait_; }

 private:
  ScaleFoldOptions options_;
  std::unique_ptr<data::SyntheticProteinDataset> dataset_;
  std::unique_ptr<model::MiniAlphaFold> net_;
  std::unique_ptr<train::Trainer> trainer_;
  std::shared_ptr<train::EvalCache> eval_cache_;
  std::unique_ptr<train::AsyncEvaluator> async_eval_;
  std::unique_ptr<data::PrefetchLoader> loader_;
  int64_t batches_consumed_ = 0;
  double total_data_wait_ = 0.0;
};

}  // namespace sf::core
