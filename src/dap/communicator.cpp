#include "dap/communicator.h"

#include <cstring>

#include "common/error.h"
#include "obs/trace.h"

namespace sf::dap {

Communicator::Communicator(int world_size) : n_(world_size) {
  SF_CHECK(world_size >= 1);
  send_ptr_.assign(n_, nullptr);
  recv_ptr_.assign(n_, nullptr);
  count_.assign(n_, 0);
}

void Communicator::barrier_locked(std::unique_lock<std::mutex>& lock) {
  uint64_t gen = generation_;
  if (++arrived_ == n_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != gen; });
  }
}

void Communicator::barrier(int rank) {
  SF_TRACE_SPAN_ID("dap", "barrier", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  std::unique_lock<std::mutex> lock(mu_);
  barrier_locked(lock);
}

void Communicator::all_gather(int rank, std::span<const float> chunk,
                              std::span<float> out) {
  SF_TRACE_SPAN_ID("dap", "all_gather", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  SF_CHECK(out.size() == chunk.size() * static_cast<size_t>(n_))
      << "all_gather output must hold world_size chunks";
  std::unique_lock<std::mutex> lock(mu_);
  send_ptr_[rank] = chunk.data();
  count_[rank] = chunk.size();
  if (rank == 0) {
    ++stats_.collectives;
    stats_.bytes_gathered += sizeof(float) * chunk.size() * (n_ - 1);
  }
  barrier_locked(lock);
  SF_CHECK(count_[0] == chunk.size()) << "all_gather chunk size mismatch";
  lock.unlock();
  for (int r = 0; r < n_; ++r) {
    std::memcpy(out.data() + static_cast<size_t>(r) * chunk.size(),
                send_ptr_[r], sizeof(float) * chunk.size());
  }
  lock.lock();
  barrier_locked(lock);  // keep every rank's chunk alive until all copied
}

void Communicator::all_reduce_sum(int rank, std::span<float> buf) {
  SF_TRACE_SPAN_ID("dap", "all_reduce", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  std::unique_lock<std::mutex> lock(mu_);
  recv_ptr_[rank] = buf.data();
  count_[rank] = buf.size();
  if (rank == 0) {
    reduce_buf_.assign(buf.size(), 0.0f);
    ++stats_.collectives;
    stats_.bytes_reduced +=
        2.0 * sizeof(float) * buf.size() * (n_ - 1) / n_;
  }
  barrier_locked(lock);
  SF_CHECK(count_[0] == buf.size()) << "all_reduce size mismatch";
  // Each rank reduces its slice across all ranks (rank order: exact
  // determinism regardless of thread scheduling).
  const size_t len = buf.size();
  const size_t begin = len * rank / n_;
  const size_t end = len * (rank + 1) / n_;
  lock.unlock();
  for (size_t i = begin; i < end; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < n_; ++r) acc += recv_ptr_[r][i];
    reduce_buf_[i] = acc;
  }
  lock.lock();
  barrier_locked(lock);
  lock.unlock();
  std::memcpy(buf.data(), reduce_buf_.data(), sizeof(float) * len);
  lock.lock();
  barrier_locked(lock);
}

void Communicator::reduce_scatter_sum(int rank, std::span<const float> full,
                                      std::span<float> out) {
  SF_TRACE_SPAN_ID("dap", "reduce_scatter", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  SF_CHECK(full.size() % n_ == 0);
  const size_t slice = full.size() / n_;
  SF_CHECK(out.size() == slice);
  std::unique_lock<std::mutex> lock(mu_);
  send_ptr_[rank] = full.data();
  count_[rank] = full.size();
  if (rank == 0) {
    ++stats_.collectives;
    stats_.bytes_scattered += sizeof(float) * slice * (n_ - 1);
  }
  barrier_locked(lock);
  SF_CHECK(count_[0] == full.size()) << "reduce_scatter size mismatch";
  lock.unlock();
  // Each rank reduces its own slice across all ranks, rank order.
  const size_t begin = slice * rank;
  for (size_t i = 0; i < slice; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < n_; ++r) acc += send_ptr_[r][begin + i];
    out[i] = acc;
  }
  lock.lock();
  barrier_locked(lock);
}

void Communicator::all_to_all(int rank, std::span<const float> send,
                              std::span<float> recv) {
  SF_TRACE_SPAN_ID("dap", "all_to_all", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  SF_CHECK(send.size() == recv.size());
  SF_CHECK(send.size() % n_ == 0) << "all_to_all needs equal chunks";
  const size_t chunk = send.size() / n_;
  std::unique_lock<std::mutex> lock(mu_);
  send_ptr_[rank] = send.data();
  count_[rank] = send.size();
  if (rank == 0) {
    ++stats_.collectives;
    stats_.bytes_exchanged += sizeof(float) * chunk * (n_ - 1);
  }
  barrier_locked(lock);
  SF_CHECK(count_[0] == send.size()) << "all_to_all size mismatch";
  lock.unlock();
  for (int r = 0; r < n_; ++r) {
    // Receive chunk destined for `rank` from rank r.
    std::memcpy(recv.data() + static_cast<size_t>(r) * chunk,
                send_ptr_[r] + static_cast<size_t>(rank) * chunk,
                sizeof(float) * chunk);
  }
  lock.lock();
  barrier_locked(lock);
}

}  // namespace sf::dap
