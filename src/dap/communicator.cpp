#include "dap/communicator.h"

#include <cstring>

#include "common/error.h"
#include "common/fault.h"
#include "obs/trace.h"

namespace sf::dap {

/// One in-flight async collective: per-rank buffers, arrival count, and a
/// state machine driven by the communicator thread.
struct Communicator::AsyncSlot {
  enum class State { kFilling, kReady, kReducing, kDone, kError };

  uint64_t seq = 0;
  int64_t tag = -1;
  size_t size = 0;
  std::vector<float*> bufs;  ///< per-rank in-place buffers
  int arrived = 0;
  State state = State::kFilling;
  std::string error;
};

Communicator::Communicator(int world_size) : n_(world_size) {
  SF_CHECK(world_size >= 1);
  send_ptr_.assign(n_, nullptr);
  recv_ptr_.assign(n_, nullptr);
  count_.assign(n_, 0);
  next_seq_.assign(n_, 0);
}

Communicator::~Communicator() {
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    shutdown_ = true;
  }
  async_cv_.notify_all();
  if (comm_thread_.joinable()) comm_thread_.join();
}

void Communicator::barrier_locked(std::unique_lock<std::mutex>& lock) {
  // A peer that died mid-step will never arrive; abort() wakes everyone
  // parked here so a single failed rank cannot hang the rendezvous.
  if (sync_aborted_) {
    throw Error("collective aborted: " + sync_abort_reason_);
  }
  uint64_t gen = generation_;
  if (++arrived_ == n_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != gen || sync_aborted_; });
    if (generation_ == gen) {
      // Woken by abort, not by barrier completion: this rendezvous will
      // never finish. (If the barrier completed *and* an abort raced in,
      // let the rank through — it throws at its next barrier.)
      throw Error("collective aborted: " + sync_abort_reason_);
    }
  }
}

void Communicator::barrier(int rank) {
  SF_TRACE_SPAN_ID("dap", "barrier", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  std::unique_lock<std::mutex> lock(mu_);
  barrier_locked(lock);
}

void Communicator::all_gather(int rank, std::span<const float> chunk,
                              std::span<float> out) {
  SF_TRACE_SPAN_ID("dap", "all_gather", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  SF_FAULT_POINT("dap.all_gather", rank);
  SF_CHECK(out.size() == chunk.size() * static_cast<size_t>(n_))
      << "all_gather output must hold world_size chunks";
  std::unique_lock<std::mutex> lock(mu_);
  send_ptr_[rank] = chunk.data();
  count_[rank] = chunk.size();
  if (rank == 0) {
    ++stats_.collectives;
    stats_.bytes_gathered += sizeof(float) * chunk.size() * (n_ - 1);
  }
  barrier_locked(lock);
  SF_CHECK(count_[0] == chunk.size()) << "all_gather chunk size mismatch";
  lock.unlock();
  for (int r = 0; r < n_; ++r) {
    std::memcpy(out.data() + static_cast<size_t>(r) * chunk.size(),
                send_ptr_[r], sizeof(float) * chunk.size());
  }
  lock.lock();
  barrier_locked(lock);  // keep every rank's chunk alive until all copied
}

void Communicator::all_reduce_sum(int rank, std::span<float> buf) {
  SF_TRACE_SPAN_ID("dap", "all_reduce", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  SF_FAULT_POINT("dap.all_reduce", rank);
  std::unique_lock<std::mutex> lock(mu_);
  recv_ptr_[rank] = buf.data();
  count_[rank] = buf.size();
  if (rank == 0) {
    reduce_buf_.assign(buf.size(), 0.0f);
    ++stats_.collectives;
    stats_.bytes_reduced +=
        2.0 * sizeof(float) * buf.size() * (n_ - 1) / n_;
  }
  barrier_locked(lock);
  SF_CHECK(count_[0] == buf.size()) << "all_reduce size mismatch";
  // Each rank reduces its slice across all ranks (rank order: exact
  // determinism regardless of thread scheduling).
  const size_t len = buf.size();
  const size_t begin = len * rank / n_;
  const size_t end = len * (rank + 1) / n_;
  lock.unlock();
  for (size_t i = begin; i < end; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < n_; ++r) acc += recv_ptr_[r][i];
    reduce_buf_[i] = acc;
  }
  lock.lock();
  barrier_locked(lock);
  lock.unlock();
  std::memcpy(buf.data(), reduce_buf_.data(), sizeof(float) * len);
  lock.lock();
  barrier_locked(lock);
}

void Communicator::reduce_scatter_sum(int rank, std::span<const float> full,
                                      std::span<float> out) {
  SF_TRACE_SPAN_ID("dap", "reduce_scatter", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  SF_FAULT_POINT("dap.reduce_scatter", rank);
  SF_CHECK(full.size() % n_ == 0);
  const size_t slice = full.size() / n_;
  SF_CHECK(out.size() == slice);
  std::unique_lock<std::mutex> lock(mu_);
  send_ptr_[rank] = full.data();
  count_[rank] = full.size();
  if (rank == 0) {
    ++stats_.collectives;
    stats_.bytes_scattered += sizeof(float) * slice * (n_ - 1);
  }
  barrier_locked(lock);
  SF_CHECK(count_[0] == full.size()) << "reduce_scatter size mismatch";
  lock.unlock();
  // Each rank reduces its own slice across all ranks, rank order.
  const size_t begin = slice * rank;
  for (size_t i = 0; i < slice; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < n_; ++r) acc += send_ptr_[r][begin + i];
    out[i] = acc;
  }
  lock.lock();
  barrier_locked(lock);
}

void Communicator::start_comm_thread_locked() {
  if (!comm_thread_.joinable()) {
    comm_thread_ = std::thread([this] { comm_thread_main(); });
  }
}

Communicator::AsyncHandle Communicator::all_reduce_sum_async(
    int rank, std::span<float> buf, int64_t tag) {
  SF_TRACE_SPAN_ID("dap", "all_reduce_async_launch", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  if (n_ == 1) {
    // Identity reduction: already "done", no thread involved.
    std::lock_guard<std::mutex> lock(async_mu_);
    ++stats_.collectives;
    return AsyncHandle{};
  }
  std::unique_lock<std::mutex> lock(async_mu_);
  if (aborted_) {
    throw Error("async all-reduce launch after abort: " + abort_reason_);
  }
  start_comm_thread_locked();
  const uint64_t seq = next_seq_[rank]++;
  auto it = slots_.find(seq);
  std::shared_ptr<AsyncSlot> slot;
  if (it == slots_.end()) {
    slot = std::make_shared<AsyncSlot>();
    slot->seq = seq;
    slot->tag = tag;
    slot->size = buf.size();
    slot->bufs.assign(n_, nullptr);
    slots_.emplace(seq, slot);
  } else {
    slot = it->second;
  }
  if (slot->tag != tag || slot->size != buf.size()) {
    // Ranks diverged on launch order — a programming error that would
    // otherwise silently sum unrelated buffers. Poison the communicator.
    abort_reason_ = "async all-reduce mismatch at seq " +
                    std::to_string(seq) + ": tag/size diverged across ranks";
    aborted_ = true;
    async_cv_.notify_all();
    throw Error(abort_reason_);
  }
  SF_CHECK(slot->bufs[rank] == nullptr)
      << "rank" << rank << "launched seq" << seq << "twice";
  slot->bufs[rank] = buf.data();
  if (++slot->arrived == n_) {
    slot->state = AsyncSlot::State::kReady;
    ++stats_.collectives;
    stats_.bytes_reduced += 2.0 * sizeof(float) * slot->size * (n_ - 1) / n_;
    async_cv_.notify_all();
  }
  return AsyncHandle{this, std::move(slot)};
}

void Communicator::AsyncHandle::wait() {
  if (comm_ == nullptr) return;  // world size 1 or default handle
  SF_TRACE_SPAN("dap", "all_reduce_async_wait");
  std::unique_lock<std::mutex> lock(comm_->async_mu_);
  comm_->async_cv_.wait(lock, [&] {
    return slot_->state == AsyncSlot::State::kDone ||
           slot_->state == AsyncSlot::State::kError || comm_->aborted_ ||
           comm_->shutdown_;
  });
  if (slot_->state == AsyncSlot::State::kError) {
    throw Error("async all-reduce failed: " + slot_->error);
  }
  if (slot_->state != AsyncSlot::State::kDone) {
    throw Error(comm_->aborted_
                    ? "async all-reduce aborted: " + comm_->abort_reason_
                    : "async all-reduce abandoned at shutdown");
  }
  // Completed: drop the table entry. Ranks that have not waited yet keep
  // the slot alive through their handle's shared_ptr; re-erasing is a
  // no-op. Sequence numbers only restart at recover_async(), which also
  // clears the table, so a stale erase can never hit a fresh slot.
  comm_->slots_.erase(slot_->seq);
}

void Communicator::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    if (!aborted_) {
      aborted_ = true;
      abort_reason_ = reason;
    }
  }
  async_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sync_aborted_) {
      sync_aborted_ = true;
      sync_abort_reason_ = reason;
    }
  }
  cv_.notify_all();
}

void Communicator::recover() {
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    slots_.clear();
    std::fill(next_seq_.begin(), next_seq_.end(), 0);
    aborted_ = false;
    abort_reason_.clear();
  }
  async_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Ranks that threw out of a rendezvous left their arrival counted;
    // with every thread joined the count is garbage — reset it so the
    // next barrier starts clean. The generation counter keeps advancing
    // monotonically so no stale waiter can ever match a fresh barrier.
    arrived_ = 0;
    ++generation_;
    sync_aborted_ = false;
    sync_abort_reason_.clear();
  }
  cv_.notify_all();
}

bool Communicator::async_aborted() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return aborted_;
}

void Communicator::comm_thread_main() {
  std::vector<float> scratch;
  std::unique_lock<std::mutex> lock(async_mu_);
  for (;;) {
    async_cv_.wait(lock, [&] {
      if (shutdown_) return true;
      if (aborted_) return false;  // idle until recover_async()
      for (const auto& [seq, slot] : slots_) {
        if (slot->state == AsyncSlot::State::kReady) return true;
      }
      return false;
    });
    if (shutdown_) return;
    // Reduce ready slots in sequence order (std::map iterates ordered).
    std::shared_ptr<AsyncSlot> slot;
    for (const auto& [seq, s] : slots_) {
      if (s->state == AsyncSlot::State::kReady) {
        slot = s;
        break;
      }
    }
    if (!slot) continue;
    slot->state = AsyncSlot::State::kReducing;
    std::vector<float*> bufs = slot->bufs;
    const size_t len = slot->size;
    lock.unlock();
    try {
      SF_TRACE_SPAN_ID("dap", "async_reduce", slot->tag);
      SF_FAULT_POINT("dap.async_reduce", slot->tag);
      // Rank-ordered per-element sum — bit-identical to the blocking
      // all_reduce_sum regardless of launch/wait interleaving. Reduce
      // into scratch first: the outputs alias the inputs.
      scratch.resize(len);
      for (size_t i = 0; i < len; ++i) {
        float acc = 0.0f;
        for (int r = 0; r < n_; ++r) acc += bufs[r][i];
        scratch[i] = acc;
      }
      for (int r = 0; r < n_; ++r) {
        std::memcpy(bufs[r], scratch.data(), sizeof(float) * len);
      }
      lock.lock();
      slot->state = AsyncSlot::State::kDone;
    } catch (const std::exception& e) {
      lock.lock();
      slot->state = AsyncSlot::State::kError;
      slot->error = e.what();
      if (!aborted_) {
        aborted_ = true;
        abort_reason_ = slot->error;
      }
    }
    async_cv_.notify_all();
  }
}

void Communicator::all_to_all(int rank, std::span<const float> send,
                              std::span<float> recv) {
  SF_TRACE_SPAN_ID("dap", "all_to_all", rank);
  SF_CHECK(rank >= 0 && rank < n_);
  SF_FAULT_POINT("dap.all_to_all", rank);
  SF_CHECK(send.size() == recv.size());
  SF_CHECK(send.size() % n_ == 0) << "all_to_all needs equal chunks";
  const size_t chunk = send.size() / n_;
  std::unique_lock<std::mutex> lock(mu_);
  send_ptr_[rank] = send.data();
  count_[rank] = send.size();
  if (rank == 0) {
    ++stats_.collectives;
    stats_.bytes_exchanged += sizeof(float) * chunk * (n_ - 1);
  }
  barrier_locked(lock);
  SF_CHECK(count_[0] == send.size()) << "all_to_all size mismatch";
  lock.unlock();
  for (int r = 0; r < n_; ++r) {
    // Receive chunk destined for `rank` from rank r.
    std::memcpy(recv.data() + static_cast<size_t>(r) * chunk,
                send_ptr_[r] + static_cast<size_t>(rank) * chunk,
                sizeof(float) * chunk);
  }
  lock.lock();
  barrier_locked(lock);
}

}  // namespace sf::dap
