// In-process communicator for Dynamic Axial Parallelism (§2.3) and the
// data-parallel gradient all-reduce (§3.3.1).
//
// DAP splits one sample's activations along a non-reductive axis across N
// ranks, inserting all-gather and all-to-all collectives in forward and
// backward. This communicator provides those collectives for N threads in
// one process: deterministic (rank-ordered reductions), sense-reversing
// barriers, and per-collective byte accounting so benches can report DAP
// communication volume (the quantity the simulator's
// kDapCommBytesPerStep models at paper scale).
//
// Blocking collectives rendezvous all ranks inside the call. The *async*
// all-reduce instead deposits a buffer and returns a handle immediately:
// a dedicated communication thread performs the rank-ordered reduction as
// soon as the last rank has contributed, concurrently with whatever the
// rank threads do next — this is what lets DDP gradient buckets reduce
// while backward is still running. Collectives are matched across ranks
// by per-rank launch index (every rank must issue the same async sequence
// in the same order; a `tag` cross-checks the match). The reduction order
// is rank-ordered per element, exactly like the blocking path, so the
// result bits are identical no matter how launches and waits interleave.
//
// abort()/recover() provide bounded-time failure propagation for *all*
// collectives: async waiters throw from wait(), and blocking callers are
// woken out of their rendezvous barriers and throw — a rank that dies
// mid-collective can never hang its peers. recover() (threads joined
// first) returns the communicator to a clean state; the elastic trainer
// instead rebuilds it at the survivors' world size.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace sf::dap {

class Communicator {
 public:
  explicit Communicator(int world_size);
  ~Communicator();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int world_size() const { return n_; }

  /// Rendezvous for all ranks.
  void barrier(int rank);

  /// Each rank contributes `chunk` (equal numel across ranks); on return
  /// every rank's `out` (numel = world_size * chunk) holds all chunks in
  /// rank order.
  void all_gather(int rank, std::span<const float> chunk,
                  std::span<float> out);

  /// Element-wise sum across ranks, result visible to every rank in `buf`
  /// (equal numel across ranks). Reduction order is rank order —
  /// deterministic.
  void all_reduce_sum(int rank, std::span<float> buf);

  /// Rank r's `send` is split into world_size equal chunks; chunk j goes
  /// to rank j. On return `recv` holds, in rank order, the chunks destined
  /// for this rank.
  void all_to_all(int rank, std::span<const float> send,
                  std::span<float> recv);

  /// Reduce-scatter: element-wise sum of every rank's `full` buffer, of
  /// which this rank receives only its own 1/world_size slice in `out`
  /// (full.size() % world_size == 0). Half the volume of an all-reduce —
  /// the §2.3 "communication optimization opportunity" DAP enables when
  /// the consumer of a reduction is itself sharded.
  void reduce_scatter_sum(int rank, std::span<const float> full,
                          std::span<float> out);

  // ---- Non-blocking all-reduce ------------------------------------------

  struct AsyncSlot;

  /// Completion handle for an async collective. Value-semantic; default
  /// constructed handles are "already done".
  class AsyncHandle {
   public:
    AsyncHandle() = default;

    /// Block until the reduction has been written back to this rank's
    /// buffer. Throws sf::Error if the collective failed or the
    /// communicator was aborted; rethrowable any number of times.
    void wait();

    bool valid() const { return comm_ != nullptr; }

   private:
    friend class Communicator;
    AsyncHandle(Communicator* comm, std::shared_ptr<AsyncSlot> slot)
        : comm_(comm), slot_(std::move(slot)) {}

    Communicator* comm_ = nullptr;
    std::shared_ptr<AsyncSlot> slot_;
  };

  /// Non-blocking element-wise sum across ranks, in place in `buf`, which
  /// must stay alive and untouched until wait() returns. Rank r's k-th
  /// async launch is matched with every other rank's k-th launch; `tag`
  /// and the buffer size are cross-checked against the peers (a mismatch
  /// aborts the communicator — it means ranks diverged on launch order).
  /// The reduction runs on the communicator's own thread as soon as the
  /// last rank has deposited, overlapping the callers' ongoing compute;
  /// bits match the blocking all_reduce_sum exactly.
  AsyncHandle all_reduce_sum_async(int rank, std::span<float> buf,
                                   int64_t tag = -1);

  /// Fail every pending and future collective — async *and* blocking —
  /// with `reason`, waking all waiters. Called by a rank that hit an
  /// error (or died) mid-step so its peers cannot hang on collectives the
  /// failed rank will never join: async waiters throw from wait(),
  /// blocking callers throw from inside their rendezvous barrier. This is
  /// the bounded-time failure-detection primitive the elastic resize
  /// protocol builds on.
  void abort(const std::string& reason);

  /// Clear the aborted state, all pending async collectives, and any
  /// half-formed blocking rendezvous, making the communicator usable
  /// again. Only call when no rank thread is inside a collective (e.g.
  /// after joining the step's threads).
  void recover();

  /// Historical names for abort()/recover(), kept because the original
  /// implementation only covered the async path.
  void abort_async(const std::string& reason) { abort(reason); }
  void recover_async() { recover(); }

  /// True while abort() is in effect.
  bool async_aborted() const;

  struct Stats {
    uint64_t collectives = 0;
    uint64_t bytes_gathered = 0;
    uint64_t bytes_reduced = 0;
    uint64_t bytes_exchanged = 0;
    uint64_t bytes_scattered = 0;
    uint64_t total_bytes() const {
      return bytes_gathered + bytes_reduced + bytes_exchanged +
             bytes_scattered;
    }
  };
  /// Aggregate over all ranks since construction (read when quiescent).
  Stats stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  void barrier_locked(std::unique_lock<std::mutex>& lock);
  void comm_thread_main();
  void start_comm_thread_locked();

  const int n_;
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
  bool sync_aborted_ = false;       ///< abort() observed by blocking path
  std::string sync_abort_reason_;

  // Staging pointers deposited by each rank before a collective.
  std::vector<const float*> send_ptr_;
  std::vector<float*> recv_ptr_;
  std::vector<size_t> count_;
  std::vector<float> reduce_buf_;

  // ---- async machinery (own lock: never contends with the sync path) ----
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;
  std::thread comm_thread_;
  bool shutdown_ = false;
  bool aborted_ = false;
  std::string abort_reason_;
  std::vector<uint64_t> next_seq_;             ///< per-rank launch counter
  std::map<uint64_t, std::shared_ptr<AsyncSlot>> slots_;  ///< keyed by seq

  Stats stats_;
};

}  // namespace sf::dap
