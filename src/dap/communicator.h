// In-process communicator for Dynamic Axial Parallelism (§2.3).
//
// DAP splits one sample's activations along a non-reductive axis across N
// ranks, inserting all-gather and all-to-all collectives in forward and
// backward. This communicator provides those collectives for N threads in
// one process: deterministic (rank-ordered reductions), sense-reversing
// barriers, and per-collective byte accounting so benches can report DAP
// communication volume (the quantity the simulator's
// kDapCommBytesPerStep models at paper scale).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace sf::dap {

class Communicator {
 public:
  explicit Communicator(int world_size);

  int world_size() const { return n_; }

  /// Rendezvous for all ranks.
  void barrier(int rank);

  /// Each rank contributes `chunk` (equal numel across ranks); on return
  /// every rank's `out` (numel = world_size * chunk) holds all chunks in
  /// rank order.
  void all_gather(int rank, std::span<const float> chunk,
                  std::span<float> out);

  /// Element-wise sum across ranks, result visible to every rank in `buf`
  /// (equal numel across ranks). Reduction order is rank order —
  /// deterministic.
  void all_reduce_sum(int rank, std::span<float> buf);

  /// Rank r's `send` is split into world_size equal chunks; chunk j goes
  /// to rank j. On return `recv` holds, in rank order, the chunks destined
  /// for this rank.
  void all_to_all(int rank, std::span<const float> send,
                  std::span<float> recv);

  /// Reduce-scatter: element-wise sum of every rank's `full` buffer, of
  /// which this rank receives only its own 1/world_size slice in `out`
  /// (full.size() % world_size == 0). Half the volume of an all-reduce —
  /// the §2.3 "communication optimization opportunity" DAP enables when
  /// the consumer of a reduction is itself sharded.
  void reduce_scatter_sum(int rank, std::span<const float> full,
                          std::span<float> out);

  struct Stats {
    uint64_t collectives = 0;
    uint64_t bytes_gathered = 0;
    uint64_t bytes_reduced = 0;
    uint64_t bytes_exchanged = 0;
    uint64_t bytes_scattered = 0;
    uint64_t total_bytes() const {
      return bytes_gathered + bytes_reduced + bytes_exchanged +
             bytes_scattered;
    }
  };
  /// Aggregate over all ranks since construction (read when quiescent).
  Stats stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  void barrier_locked(std::unique_lock<std::mutex>& lock);

  const int n_;
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  uint64_t generation_ = 0;

  // Staging pointers deposited by each rank before a collective.
  std::vector<const float*> send_ptr_;
  std::vector<float*> recv_ptr_;
  std::vector<size_t> count_;
  std::vector<float> reduce_buf_;

  Stats stats_;
};

}  // namespace sf::dap
