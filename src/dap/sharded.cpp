#include "dap/sharded.h"

#include <cstring>

#include "autograd/ops.h"
#include "autograd/var.h"
#include "common/error.h"

namespace sf::dap {

using autograd::NoGradGuard;
using autograd::Var;

Tensor shard_axis0(const Tensor& full, int rank, int world_size) {
  SF_CHECK(!full.shape().empty());
  const int64_t d0 = full.shape()[0];
  SF_CHECK(d0 % world_size == 0)
      << "axis 0 (" << d0 << ") not divisible by world size" << world_size;
  const int64_t local = d0 / world_size;
  const int64_t inner = full.numel() / d0;
  Shape shard_shape = full.shape();
  shard_shape[0] = local;
  Tensor shard(shard_shape);
  std::memcpy(shard.data(), full.data() + rank * local * inner,
              sizeof(float) * local * inner);
  return shard;
}

Tensor unshard_axis0(Communicator& comm, int rank, const Tensor& shard,
                     int64_t full_dim0) {
  Shape full_shape = shard.shape();
  SF_CHECK(full_dim0 == shard.shape()[0] * comm.world_size());
  full_shape[0] = full_dim0;
  Tensor full(full_shape);
  comm.all_gather(rank, shard.span(), full.span());
  return full;
}

Tensor transpose_shard(Communicator& comm, int rank, const Tensor& shard,
                       int64_t full_a, int64_t full_b, int64_t c) {
  const int n = comm.world_size();
  SF_CHECK(full_a % n == 0 && full_b % n == 0);
  const int64_t la = full_a / n;  // local A rows held on input
  const int64_t lb = full_b / n;  // local B columns held on output
  SF_CHECK(shard.shape() == Shape({la, full_b, c}));

  // Pack: chunk j = our A-rows restricted to B-columns [j*lb, (j+1)*lb).
  Tensor send({n, la, lb, c});
  for (int j = 0; j < n; ++j) {
    for (int64_t a = 0; a < la; ++a) {
      std::memcpy(send.data() + ((j * la + a) * lb) * c,
                  shard.data() + (a * full_b + j * lb) * c,
                  sizeof(float) * lb * c);
    }
  }
  Tensor recv({n, la, lb, c});
  comm.all_to_all(rank, send.span(), recv.span());
  // Unpack: chunk from rank r supplies A-rows [r*la, (r+1)*la).
  Tensor out({full_a, lb, c});
  for (int r = 0; r < n; ++r) {
    std::memcpy(out.data() + (r * la * lb) * c,
                recv.data() + (r * la * lb) * c, sizeof(float) * la * lb * c);
  }
  return out;
}

Tensor untranspose_shard(Communicator& comm, int rank, const Tensor& shard,
                         int64_t full_a, int64_t full_b, int64_t c) {
  const int n = comm.world_size();
  SF_CHECK(full_a % n == 0 && full_b % n == 0);
  const int64_t la = full_a / n;
  const int64_t lb = full_b / n;
  SF_CHECK(shard.shape() == Shape({full_a, lb, c}));

  // Pack: chunk j = our B-columns restricted to A-rows [j*la, (j+1)*la).
  Tensor send({n, la, lb, c});
  std::memcpy(send.data(), shard.data(), sizeof(float) * shard.numel());
  // shard is already laid out [A, lb, c] = [n, la, lb, c] contiguously; the
  // j-th [la, lb, c] block is exactly the chunk destined for rank j.
  Tensor recv({n, la, lb, c});
  comm.all_to_all(rank, send.span(), recv.span());
  // Unpack: chunk from rank r carries our A-rows for B-columns
  // [r*lb, (r+1)*lb); interleave them along axis B.
  Tensor out({la, full_b, c});
  for (int r = 0; r < n; ++r) {
    for (int64_t a = 0; a < la; ++a) {
      std::memcpy(out.data() + (a * full_b + r * lb) * c,
                  recv.data() + ((r * la + a) * lb) * c,
                  sizeof(float) * lb * c);
    }
  }
  return out;
}

Tensor sharded_row_attention(const model::MSARowAttentionWithPairBias& module,
                             Communicator& comm, int rank,
                             const Tensor& msa_shard, const Tensor& pair_shard,
                             int64_t full_r) {
  NoGradGuard no_grad;
  // Pattern 1: all-gather the pair shards so the bias covers all residue
  // pairs; the MSA S-shard then computes independently.
  Tensor pair_full = unshard_axis0(comm, rank, pair_shard, full_r);
  Var out = module(Var(msa_shard, false), Var(pair_full, false), nullptr);
  return out.value();
}

Tensor sharded_outer_product_mean(const model::OuterProductMean& module,
                                  Communicator& comm, int rank,
                                  const Tensor& msa_shard, int64_t full_s) {
  NoGradGuard no_grad;
  const int64_t local_s = msa_shard.shape()[0];
  const int64_t r = msa_shard.shape()[1];
  SF_CHECK(local_s * comm.world_size() == full_s);

  // Local projections on the S-shard.
  Var m = module.ln(Var(msa_shard, false));
  Var a = module.a_proj(m);
  Var b = module.b_proj(m);
  const int64_t u = a.shape()[2];
  const int64_t v = b.shape()[2];

  // Pattern 2: partial outer-product sums over the local S rows, then
  // all-reduce, then divide by the full S.
  Tensor partial({r, r, u * v});
  const float* ad = a.value().data();
  const float* bd = b.value().data();
  float* pd = partial.data();
  for (int64_t s = 0; s < local_s; ++s) {
    for (int64_t i = 0; i < r; ++i) {
      const float* ai = ad + (s * r + i) * u;
      for (int64_t j = 0; j < r; ++j) {
        const float* bj = bd + (s * r + j) * v;
        float* pij = pd + (i * r + j) * u * v;
        for (int64_t uu = 0; uu < u; ++uu) {
          for (int64_t vv = 0; vv < v; ++vv) {
            pij[uu * v + vv] += ai[uu] * bj[vv];
          }
        }
      }
    }
  }
  comm.all_reduce_sum(rank, partial.span());
  partial.scale_(1.0f / static_cast<float>(full_s));
  Var out = module.out_proj(Var(partial, false));
  return out.value();
}

Tensor sharded_column_attention(const model::MSAColumnAttention& module,
                                Communicator& comm, int rank,
                                const Tensor& msa_shard, int64_t full_s) {
  NoGradGuard no_grad;
  const int64_t local_s = msa_shard.shape()[0];
  const int64_t r = msa_shard.shape()[1];
  const int64_t c = msa_shard.shape()[2];
  SF_CHECK(local_s * comm.world_size() == full_s);

  // Pattern 3: rotate the shard axis S -> R so each rank owns all MSA
  // rows for a residue slice, attend along S, rotate back.
  Tensor col_shard = transpose_shard(comm, rank, msa_shard, full_s, r, c);
  Var out = module(Var(col_shard, false));
  return untranspose_shard(comm, rank, out.value(), full_s, r, c);
}


Tensor sharded_row_attention_biasgather(
    const model::MSARowAttentionWithPairBias& module, Communicator& comm,
    int rank, const Tensor& msa_shard, const Tensor& pair_shard,
    int64_t full_r) {
  NoGradGuard no_grad;
  const int64_t heads = module.heads;
  // Project the pair shard to the per-head bias locally, then gather the
  // small [R/n, R, H] bias rows instead of the full [R/n, R, c_z] pair.
  Var bias_shard = module.bias_proj(module.ln_pair(Var(pair_shard, false)));
  Tensor bias_full = unshard_axis0(comm, rank, bias_shard.value(), full_r);
  // [R, R, H] -> [H, R, R] for the attention kernel.
  Var bias =
      autograd::permute3(Var(bias_full, false), {2, 0, 1});

  // Re-run the module body with the precomputed bias.
  Var m = module.ln_msa(Var(msa_shard, false));
  return module.attn(m, &bias, nullptr).value();
  (void)heads;
}

Tensor sharded_outer_product_mean_scatter(
    const model::OuterProductMean& module, Communicator& comm, int rank,
    const Tensor& msa_shard, int64_t full_s) {
  NoGradGuard no_grad;
  const int64_t local_s = msa_shard.shape()[0];
  const int64_t r = msa_shard.shape()[1];
  SF_CHECK(local_s * comm.world_size() == full_s);
  SF_CHECK(r % comm.world_size() == 0);

  Var m = module.ln(Var(msa_shard, false));
  Var a = module.a_proj(m);
  Var b = module.b_proj(m);
  const int64_t u = a.shape()[2];
  const int64_t v = b.shape()[2];

  Tensor partial({r, r, u * v});
  const float* ad = a.value().data();
  const float* bd = b.value().data();
  float* pd = partial.data();
  for (int64_t s = 0; s < local_s; ++s) {
    for (int64_t i = 0; i < r; ++i) {
      const float* ai = ad + (s * r + i) * u;
      for (int64_t j = 0; j < r; ++j) {
        const float* bj = bd + (s * r + j) * v;
        float* pij = pd + (i * r + j) * u * v;
        for (int64_t uu = 0; uu < u; ++uu) {
          for (int64_t vv = 0; vv < v; ++vv) {
            pij[uu * v + vv] += ai[uu] * bj[vv];
          }
        }
      }
    }
  }
  // Project to c_z locally *before* communicating (linear in the partial
  // sums), then reduce-scatter so each rank receives only its pair rows.
  // Bias must be added exactly once, after the reduction.
  partial.scale_(1.0f / static_cast<float>(full_s));
  Var projected = autograd::linear(Var(partial, false), module.out_proj.w);
  const int64_t c_z = projected.shape()[2];
  const int64_t rows_local = r / comm.world_size();
  Tensor slice({rows_local, r, c_z});
  comm.reduce_scatter_sum(rank, projected.value().span(), slice.span());
  if (module.out_proj.b.defined()) {
    const float* bias = module.out_proj.b.value().data();
    float* sd = slice.data();
    for (int64_t i = 0; i < rows_local * r; ++i) {
      for (int64_t c = 0; c < c_z; ++c) sd[i * c_z + c] += bias[c];
    }
  }
  return slice;
}


Tensor sharded_triangle_multiply(const model::TriangleMultiplication& module,
                                 Communicator& comm, int rank,
                                 const Tensor& pair_shard, int64_t full_r) {
  NoGradGuard no_grad;
  const int64_t lr = pair_shard.shape()[0];
  const int64_t r = pair_shard.shape()[1];
  const int64_t c = pair_shard.shape()[2];
  SF_CHECK(lr * comm.world_size() == full_r && r == full_r);

  Var x = module.ln_in(Var(pair_shard, false));
  Tensor a = autograd::glu(module.a_proj(x), module.a_gate(x)).value();
  Tensor b = autograd::glu(module.b_proj(x), module.b_gate(x)).value();

  // Outgoing: t[i,j] = sum_k a[i,k] * b[j,k] — local i rows need the full
  // b. Incoming: t[i,j] = sum_k a[k,i] * b[k,j] — full a AND b.
  Tensor b_full = unshard_axis0(comm, rank, b, full_r);
  Tensor a_full;
  if (!module.outgoing) a_full = unshard_axis0(comm, rank, a, full_r);

  Tensor t({lr, r, c});
  float* td = t.data();
  const float* ad = module.outgoing ? a.data() : a_full.data();
  const float* bd = b_full.data();
  const int64_t base = rank * lr;
  for (int64_t il = 0; il < lr; ++il) {
    for (int64_t j = 0; j < r; ++j) {
      float* tij = td + (il * r + j) * c;
      for (int64_t k = 0; k < r; ++k) {
        const float* av = module.outgoing ? ad + (il * r + k) * c
                                          : ad + (k * r + base + il) * c;
        const float* bv = module.outgoing ? bd + (j * r + k) * c
                                          : bd + (k * r + j) * c;
        for (int64_t cc = 0; cc < c; ++cc) tij[cc] += av[cc] * bv[cc];
      }
    }
  }
  Var tn = module.ln_out(Var(t, false));
  return autograd::glu(module.out_proj(tn), module.out_gate(x)).value();
}

namespace {

// [A, B/n, C] per-rank layout -> local permute to [B/n, A, C].
Tensor permute_local_01(const Tensor& t) {
  const int64_t a = t.shape()[0], b = t.shape()[1], c = t.shape()[2];
  Tensor out({b, a, c});
  for (int64_t i = 0; i < a; ++i) {
    for (int64_t j = 0; j < b; ++j) {
      std::memcpy(out.data() + (j * a + i) * c, t.data() + (i * b + j) * c,
                  sizeof(float) * c);
    }
  }
  return out;
}

}  // namespace

Tensor sharded_triangle_attention(const model::TriangleAttention& module,
                                  Communicator& comm, int rank,
                                  const Tensor& pair_shard, int64_t full_r) {
  NoGradGuard no_grad;
  const int64_t lr = pair_shard.shape()[0];
  const int64_t r = pair_shard.shape()[1];
  const int64_t c = pair_shard.shape()[2];
  SF_CHECK(lr * comm.world_size() == full_r && r == full_r);

  // ln is per-(i,j): local.
  Tensor x = module.ln(Var(pair_shard, false)).value();
  if (!module.starting) {
    // Ending node: rotate so this rank holds rows of the transposed pair.
    Tensor rotated = transpose_shard(comm, rank, x, full_r, full_r, c);
    x = permute_local_01(rotated);  // [R/n, R, c] rows of x^T
  }
  // Bias needs every row: project locally, gather the small [.,.,H] rows.
  Var bias_shard = module.bias_proj(Var(x, false));
  Tensor bias_full = unshard_axis0(comm, rank, bias_shard.value(), full_r);
  Var bias = autograd::permute3(Var(bias_full, false), {2, 0, 1});

  Tensor out = module.attn(Var(x, false), &bias, nullptr).value();
  if (!module.starting) {
    // Rotate the update back to the original sharding.
    Tensor unpermuted = permute_local_01(out);  // [R, R/n, c]
    out = untranspose_shard(comm, rank, unpermuted, full_r, full_r, c);
  }
  return out;
}

namespace {

void add_inplace(Tensor& dst, const Tensor& src) { dst.add_(src); }

}  // namespace

BlockShards sharded_evoformer_block(const model::EvoformerBlock& block,
                                    Communicator& comm, int rank,
                                    const Tensor& msa_shard,
                                    const Tensor& pair_shard, int64_t full_s,
                                    int64_t full_r) {
  NoGradGuard no_grad;
  BlockShards st;
  st.msa = msa_shard.clone();
  st.pair = pair_shard.clone();

  // 1. MSA row attention with pair bias (all-gather of the projected bias).
  add_inplace(st.msa, sharded_row_attention_biasgather(
                          block.row_attn, comm, rank, st.msa, st.pair,
                          full_r));
  // 2. MSA column attention (distributed transpose there and back).
  add_inplace(st.msa, sharded_column_attention(block.col_attn, comm, rank,
                                               st.msa, full_s));
  // 3. MSA transition: purely local.
  add_inplace(st.msa, block.msa_transition(Var(st.msa, false)).value());
  // 4. Outer product mean: project + reduce-scatter onto the pair shard.
  add_inplace(st.pair, sharded_outer_product_mean_scatter(
                           block.opm, comm, rank, st.msa, full_s));
  // 5./6. Triangle multiplications (all-gather of gated operands).
  add_inplace(st.pair, sharded_triangle_multiply(block.tri_mul_out, comm,
                                                 rank, st.pair, full_r));
  add_inplace(st.pair, sharded_triangle_multiply(block.tri_mul_in, comm,
                                                 rank, st.pair, full_r));
  // 7./8. Triangle attentions (bias gather; ending node rotates shards).
  add_inplace(st.pair, sharded_triangle_attention(block.tri_attn_start, comm,
                                                  rank, st.pair, full_r));
  add_inplace(st.pair, sharded_triangle_attention(block.tri_attn_end, comm,
                                                  rank, st.pair, full_r));
  // 9. Pair transition: purely local.
  add_inplace(st.pair, block.pair_transition(Var(st.pair, false)).value());
  return st;
}

}  // namespace sf::dap
