// DAP-sharded Evoformer forwards (§2.3, FastFold's scheme as adopted by
// ScaleFold).
//
// DAP keeps the model replicated but splits one sample's activations
// along a non-reductive axis: the MSA representation [S,R,c_m] over its
// sequence axis S, the pair representation [R,R,c_z] over its first
// residue axis. The three canonical communication patterns are
// implemented and tested for exact equivalence with the unsharded
// modules:
//
//  1. all-gather   — MSA row attention needs the full pair rep to build
//                    its bias: gather pair shards, then compute the local
//                    S-shard with no further communication.
//  2. all-reduce   — the outer product mean reduces over S: each rank
//                    forms partial outer products from its S-shard and
//                    the partial sums are all-reduced.
//  3. all-to-all   — MSA column attention attends along S, so the shard
//                    axis must rotate from S to R (and back): the
//                    distributed transpose.
//
// All functions are forward-only (NoGradGuard inside) and are called from
// one thread per rank sharing a Communicator.
#pragma once

#include "dap/communicator.h"
#include "model/modules.h"
#include "tensor/tensor.h"

namespace sf::dap {

/// Slice `full` [D0, ...] into this rank's [D0/n, ...] shard (D0 % n == 0).
Tensor shard_axis0(const Tensor& full, int rank, int world_size);

/// Inverse of shard_axis0 via all-gather (every rank returns the full
/// tensor).
Tensor unshard_axis0(Communicator& comm, int rank, const Tensor& shard,
                     int64_t full_dim0);

/// Distributed transpose between shardings of a [A, B, C] tensor:
/// input is sharded over A ([A/n, B, C] per rank); output is sharded over
/// B ([A, B/n, C] per rank). Requires A % n == 0 and B % n == 0.
Tensor transpose_shard(Communicator& comm, int rank, const Tensor& shard,
                       int64_t full_a, int64_t full_b, int64_t c);

/// Inverse rotation: input sharded over B ([A, B/n, C] per rank), output
/// sharded over A ([A/n, B, C] per rank).
Tensor untranspose_shard(Communicator& comm, int rank, const Tensor& shard,
                         int64_t full_a, int64_t full_b, int64_t c);

/// MSA row attention with pair bias on an S-shard. `pair_shard` is the
/// rank's [R/n, R, c_z] slice; it is all-gathered internally.
/// Returns the module's residual update for the local MSA shard.
Tensor sharded_row_attention(const model::MSARowAttentionWithPairBias& module,
                             Communicator& comm, int rank,
                             const Tensor& msa_shard, const Tensor& pair_shard,
                             int64_t full_r);

/// Outer product mean over an S-shard: partial outer products, all-reduce,
/// projection. Returns the full [R,R,c_z] update (identical on all ranks).
Tensor sharded_outer_product_mean(const model::OuterProductMean& module,
                                  Communicator& comm, int rank,
                                  const Tensor& msa_shard, int64_t full_s);

/// MSA column attention on an S-shard via the distributed transpose:
/// S-shard -> R-shard (all-to-all), attend over full S per column,
/// all-to-all back. Returns the update for the local S-shard.
Tensor sharded_column_attention(const model::MSAColumnAttention& module,
                                Communicator& comm, int rank,
                                const Tensor& msa_shard, int64_t full_s);

/// Triangle multiplication on a row-sharded pair rep [R/n, R, c_z]:
/// outgoing needs the full "b" operand rows (all-gather); returns the
/// local row shard of the update.
Tensor sharded_triangle_multiply(const model::TriangleMultiplication& module,
                                 Communicator& comm, int rank,
                                 const Tensor& pair_shard, int64_t full_r);

/// Triangle attention on a row-sharded pair rep. Starting-node attends
/// within each local row (bias needs the full pair: all-gather); the
/// ending-node variant first rotates the shard axis with an all-to-all.
Tensor sharded_triangle_attention(const model::TriangleAttention& module,
                                  Communicator& comm, int rank,
                                  const Tensor& pair_shard, int64_t full_r);

/// One full Evoformer block forward under DAP: MSA sharded over S, pair
/// sharded over its first residue axis, with the all-gather / all-reduce /
/// all-to-all boundaries of §2.3 between modules. Returns this rank's
/// shards of the updated representations. Exactly equivalent to
/// EvoformerBlock::operator() on the unsharded inputs.
struct BlockShards {
  Tensor msa;   ///< [S/n, R, c_m]
  Tensor pair;  ///< [R/n, R, c_z]
};
BlockShards sharded_evoformer_block(const model::EvoformerBlock& block,
                                    Communicator& comm, int rank,
                                    const Tensor& msa_shard,
                                    const Tensor& pair_shard, int64_t full_s,
                                    int64_t full_r);

// ---- Communication-optimized variants (§2.3: DAP offers "lower
// communication volume ... more opportunities for communication
// optimization"). Numerically identical; benchmarked in bench_dap. ----

/// Row attention gathering only the projected per-head bias [R/n, R, H]
/// instead of the full pair representation [R/n, R, c_z]: c_z/H times
/// less traffic.
Tensor sharded_row_attention_biasgather(
    const model::MSARowAttentionWithPairBias& module, Communicator& comm,
    int rank, const Tensor& msa_shard, const Tensor& pair_shard,
    int64_t full_r);

/// Outer product mean that projects the partial sums to c_z *before*
/// reducing and uses a reduce-scatter (the pair rep is row-sharded, so
/// each rank only needs its rows): (u*v/c_z) x 2 less traffic.
/// Returns the rank's [R/n, R, c_z] slice of the update.
Tensor sharded_outer_product_mean_scatter(
    const model::OuterProductMean& module, Communicator& comm, int rank,
    const Tensor& msa_shard, int64_t full_s);

}  // namespace sf::dap
