#include "data/loader.h"

#include "common/error.h"
#include "common/timer.h"

namespace sf::data {

PrefetchLoader::PrefetchLoader(BatchFn make_batch, int64_t num_batches,
                               LoaderConfig config)
    : make_batch_(std::move(make_batch)),
      num_batches_(num_batches),
      config_(config) {
  SF_CHECK(num_batches_ >= 0);
  SF_CHECK(config_.num_workers > 0);
  SF_CHECK(config_.max_in_flight >= config_.num_workers)
      << "prefetch depth must cover all workers";
  workers_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PrefetchLoader::~PrefetchLoader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_space_.notify_all();
  cv_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

bool PrefetchLoader::has_next() const {
  std::lock_guard<std::mutex> lock(mu_);
  return yielded_ < num_batches_;
}

void PrefetchLoader::worker_loop() {
  for (;;) {
    int64_t idx;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_space_.wait(lock, [this] {
        return stop_ || (next_to_schedule_ < num_batches_ &&
                         in_flight_ < config_.max_in_flight);
      });
      if (stop_ || next_to_schedule_ >= num_batches_) return;
      idx = next_to_schedule_++;
      ++in_flight_;
    }
    try {
      Batch batch = make_batch_(idx);
      std::lock_guard<std::mutex> lock(mu_);
      ready_.emplace(idx, std::move(batch));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!worker_error_) worker_error_ = std::current_exception();
      stop_ = true;  // wake everyone; the consumer rethrows
    }
    cv_ready_.notify_all();
    cv_space_.notify_all();
  }
}

Batch PrefetchLoader::next() {
  Timer wait_timer;
  std::unique_lock<std::mutex> lock(mu_);
  SF_CHECK(yielded_ < num_batches_) << "next() past end of loader";

  Batch batch;
  if (config_.policy == YieldPolicy::kInOrder) {
    // Strict sampler order: wait for exactly the next index, even when
    // later batches are already sitting in the buffer (Fig. 5 (i)).
    cv_ready_.wait(lock, [this] {
      return worker_error_ || ready_.count(next_in_order_) > 0;
    });
    if (worker_error_) std::rethrow_exception(worker_error_);
    auto it = ready_.find(next_in_order_);
    batch = std::move(it->second);
    ready_.erase(it);
    ++next_in_order_;
  } else {
    // Ready-first: take the smallest-index batch that is already done
    // (std::map iteration order = priority queue by index), Fig. 5 (ii).
    cv_ready_.wait(lock, [this] { return worker_error_ || !ready_.empty(); });
    if (worker_error_) std::rethrow_exception(worker_error_);
    auto it = ready_.begin();
    batch = std::move(it->second);
    ready_.erase(it);
  }
  ++yielded_;
  --in_flight_;
  stats_.consumer_wait_seconds += wait_timer.elapsed();
  stats_.batches_yielded = yielded_;
  stats_.yield_order.push_back(batch.index);
  stats_.prep_seconds.push_back(batch.prep_seconds);
  lock.unlock();
  cv_space_.notify_all();
  return batch;
}

}  // namespace sf::data
