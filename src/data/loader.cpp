#include "data/loader.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/fault.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sf::data {
namespace {

std::chrono::microseconds to_us(double seconds) {
  return std::chrono::microseconds(
      static_cast<int64_t>(std::max(0.0, seconds) * 1e6));
}

/// Preparation-time histogram: Fig. 4's three-decade spread, log-spaced
/// from 100us to 100s.
obs::Histogram& prep_histogram() {
  static auto& h = obs::Registry::global().histogram(
      "loader.prep_seconds", 1e-4, 100.0, 24);
  return h;
}

}  // namespace

PrefetchLoader::PrefetchLoader(BatchFn make_batch, int64_t num_batches,
                               LoaderConfig config)
    : make_batch_(std::move(make_batch)),
      num_batches_(num_batches),
      config_(config) {
  SF_CHECK(num_batches_ >= 0);
  SF_CHECK(config_.num_workers > 0);
  SF_CHECK(config_.max_in_flight >= config_.num_workers)
      << "prefetch depth must cover all workers";
  SF_CHECK(config_.max_retries >= 0);
  SF_CHECK(config_.retry_backoff_seconds >= 0.0);
  // Watchdog wake-up period: fine-grained enough to catch a deadline
  // promptly, coarse enough to stay invisible when nothing is wrong.
  poll_ = config_.prep_timeout_seconds > 0
              ? std::clamp(to_us(config_.prep_timeout_seconds / 4),
                           std::chrono::microseconds(200),
                           std::chrono::microseconds(10'000))
              : std::chrono::microseconds(50'000);
  done_.assign(static_cast<size_t>(num_batches_), 0);
  workers_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PrefetchLoader::~PrefetchLoader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_space_.notify_all();
  cv_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

bool PrefetchLoader::has_next() const {
  std::lock_guard<std::mutex> lock(mu_);
  return yielded_ < num_batches_;
}

LoaderStats PrefetchLoader::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PrefetchLoader::reclaim_expired_locked() {
  if (config_.prep_timeout_seconds <= 0 || in_progress_.empty()) return;
  const auto now = Clock::now();
  for (auto it = in_progress_.begin(); it != in_progress_.end();) {
    if (now >= it->second) {
      ++stats_.timeouts;
      obs::Registry::global().counter("loader.timeouts").add();
      obs::emit_instant("loader", "timeout", 0, it->first);
      requeue_.push_back(it->first);
      it = in_progress_.erase(it);
    } else {
      ++it;
    }
  }
}

void PrefetchLoader::worker_loop() {
  for (;;) {
    int64_t idx = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (stop_) return;
        reclaim_expired_locked();
        // A batch can complete (first attempt wins) while its requeue
        // entry waits; skip those.
        while (!requeue_.empty() && done_[requeue_.front()]) {
          requeue_.pop_front();
        }
        if (!requeue_.empty()) {
          idx = requeue_.front();
          requeue_.pop_front();
          ++stats_.requeues;
          obs::Registry::global().counter("loader.requeues").add();
          obs::emit_instant("loader", "requeue", 0, idx);
          break;  // requeued work does not re-count against max_in_flight
        }
        if (next_to_schedule_ < num_batches_ &&
            in_flight_ < config_.max_in_flight) {
          idx = next_to_schedule_++;
          ++in_flight_;
          break;
        }
        if (next_to_schedule_ >= num_batches_ && in_progress_.empty()) {
          return;  // nothing left that could ever need this worker
        }
        cv_space_.wait_for(lock, poll_);
      }
      in_progress_[idx] = config_.prep_timeout_seconds > 0
                              ? Clock::now() + to_us(config_.prep_timeout_seconds)
                              : Clock::time_point::max();
    }

    // Simulated thread crash: exit immediately, leaving `idx` registered
    // in-progress so the survivors reclaim it at the deadline.
    try {
      SF_FAULT_POINT("loader.worker.kill", idx);
    } catch (const fault::WorkerKill&) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.worker_deaths;
      obs::Registry::global().counter("loader.worker_deaths").add();
      obs::emit_instant("loader", "worker_death", 0, idx);
      return;
    }

    for (int attempt = 1;; ++attempt) {
      std::string err;
      try {
        SF_TRACE_SPAN_ID("loader", "prep", idx);
        Timer prep_timer;
        SF_FAULT_POINT("loader.prep", idx);
        Batch batch = make_batch_(idx);
        prep_histogram().observe(prep_timer.elapsed());
        {
          std::lock_guard<std::mutex> lock(mu_);
          in_progress_.erase(idx);
          if (!done_[idx]) {
            done_[idx] = 1;
            ready_.emplace(idx, std::move(batch));
          } else {
            ++stats_.dropped_duplicates;
            obs::Registry::global()
                .counter("loader.dropped_duplicates")
                .add();
          }
        }
        cv_ready_.notify_all();
        cv_space_.notify_all();
        break;
      } catch (const fault::WorkerKill&) {
        // Crash injected on the preparation path: same semantics as above.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.worker_deaths;
        obs::Registry::global().counter("loader.worker_deaths").add();
        obs::emit_instant("loader", "worker_death", 0, idx);
        return;
      } catch (const std::exception& e) {
        err = e.what();
      } catch (...) {
        err = "unknown exception";
      }

      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) return;
      if (attempt > config_.max_retries) {
        if (!worker_error_) {
          std::ostringstream os;
          os << "batch " << idx << " preparation failed after " << attempt
             << " attempt" << (attempt == 1 ? "" : "s") << ": " << err;
          worker_error_ = std::make_exception_ptr(Error(os.str()));
        }
        in_progress_.erase(idx);
        stop_ = true;  // wake everyone; the consumer rethrows
        lock.unlock();
        cv_ready_.notify_all();
        cv_space_.notify_all();
        return;
      }
      ++stats_.retries;
      obs::Registry::global().counter("loader.retries").add();
      obs::emit_instant("loader", "retry", 0, idx);
      // Interruptible exponential backoff; refresh the deadline afterwards
      // so the watchdog window covers the attempt, not the sleep.
      const double backoff =
          config_.retry_backoff_seconds * std::pow(2.0, attempt - 1);
      cv_space_.wait_for(lock, to_us(backoff), [this] { return stop_; });
      if (stop_) return;
      if (config_.prep_timeout_seconds > 0) {
        in_progress_[idx] = Clock::now() + to_us(config_.prep_timeout_seconds);
      }
    }
  }
}

Batch PrefetchLoader::next() {
  SF_TRACE_SPAN("loader", "next");
  Timer wait_timer;
  std::unique_lock<std::mutex> lock(mu_);
  SF_CHECK(yielded_ < num_batches_) << "next() past end of loader";

  auto available = [this] {
    if (worker_error_) return true;
    if (config_.policy == YieldPolicy::kInOrder) {
      // Strict sampler order: wait for exactly the next index, even when
      // later batches are already sitting in the buffer (Fig. 5 (i)).
      return ready_.count(next_in_order_) > 0;
    }
    // Ready-first: any completed batch unblocks the consumer, Fig. 5 (ii).
    return !ready_.empty();
  };
  while (!available()) {
    // The consumer doubles as a watchdog: with every worker hung or dead,
    // somebody still has to notice the deadline and requeue.
    reclaim_expired_locked();
    if (!requeue_.empty()) cv_space_.notify_all();
    cv_ready_.wait_for(lock, poll_);
  }
  if (worker_error_) std::rethrow_exception(worker_error_);

  Batch batch;
  if (config_.policy == YieldPolicy::kInOrder) {
    auto it = ready_.find(next_in_order_);
    batch = std::move(it->second);
    ready_.erase(it);
    ++next_in_order_;
  } else {
    // Smallest-index batch that is already done (std::map iteration order
    // = priority queue by index).
    auto it = ready_.begin();
    batch = std::move(it->second);
    ready_.erase(it);
  }
  ++yielded_;
  --in_flight_;
  stats_.consumer_wait_seconds += wait_timer.elapsed();
  stats_.batches_yielded = yielded_;
  stats_.yield_order.push_back(batch.index);
  stats_.prep_seconds.push_back(batch.prep_seconds);
  lock.unlock();
  cv_space_.notify_all();
  return batch;
}

}  // namespace sf::data
