// Data-pipeline loaders: in-order (PyTorch DataLoader semantics) vs
// ScaleFold's non-blocking ready-first pipeline (§3.2, Fig. 5).
//
// Both loaders run the same pool of prefetch workers over the same
// dataset. The difference is the yield policy:
//
//   kInOrder    — next() returns batch i before batch i+1, always. If
//                 batch b is slow, ready batches c > b wait and the
//                 training process idles (Fig. 5 (i)).
//   kReadyFirst — completed batches enter a priority queue keyed by their
//                 dataset index; next() pops the smallest-index *ready*
//                 batch immediately, preserving order best-effort while
//                 never idling behind a straggler (Fig. 5 (ii)).
//
// The paper notes the resulting order perturbation did not harm
// convergence; tests here verify exactly-once delivery and bounded
// reordering (a batch can only be overtaken while it is in flight).
//
// Fault tolerance: at the scale of ScaleFold's time-to-train runs (up to
// 2080 GPUs) preparation failures and worker crashes are statistically
// certain, so the loader recovers instead of dying:
//   - a failed preparation is retried with exponential backoff
//     (max_retries); only after retries are exhausted does the *first*
//     error surface at next(), tagged with the failing batch index;
//   - with prep_timeout > 0, a batch whose preparation exceeds the
//     deadline (hung or crashed worker) is requeued to a healthy worker;
//     whichever attempt finishes first wins and late duplicates are
//     dropped, preserving exactly-once delivery with the same bounded
//     reordering window (requeues do not grow the in-flight budget);
//   - injection sites "loader.prep" (inside the retry scope) and
//     "loader.worker.kill" (simulated thread crash; the worker exits and
//     its claimed batch is reclaimed at the deadline) make every one of
//     these paths testable via sf::fault.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "data/protein_sample.h"

namespace sf::data {

enum class YieldPolicy {
  kInOrder,     ///< strict sampler order (baseline)
  kReadyFirst,  ///< non-blocking priority queue (ScaleFold)
};

struct LoaderConfig {
  int num_workers = 2;
  /// Max batches scheduled but not yet yielded (prefetch depth).
  int max_in_flight = 4;
  YieldPolicy policy = YieldPolicy::kReadyFirst;
  /// Re-attempts after a failed preparation before the error is fatal.
  int max_retries = 2;
  /// First backoff sleep after a failed preparation; doubles per attempt.
  double retry_backoff_seconds = 2e-3;
  /// Deadline for one preparation attempt; an expired batch is requeued
  /// to another worker. <= 0 disables the watchdog (default).
  double prep_timeout_seconds = 0.0;
};

struct LoaderStats {
  double consumer_wait_seconds = 0.0;   ///< time next() spent blocked
  int64_t batches_yielded = 0;
  std::vector<int64_t> yield_order;     ///< dataset indices in yield order
  std::vector<double> prep_seconds;     ///< per-batch preparation time
  int64_t retries = 0;             ///< preparation re-attempts after failures
  int64_t timeouts = 0;            ///< attempts that exceeded prep_timeout
  int64_t requeues = 0;            ///< timed-out batches re-claimed by a worker
  int64_t dropped_duplicates = 0;  ///< late results for already-done batches
  int64_t worker_deaths = 0;       ///< workers lost to an injected crash
};

/// Prefetching loader over an index range [0, num_batches).
///
/// `make_batch` is the preparation function (normally
/// SyntheticProteinDataset::prepare_batch, optionally wrapped with delay
/// injection for tests). It is invoked concurrently from worker threads
/// and must be thread-safe. After a timeout-requeue it may be invoked
/// more than once for the same index (idempotence required); the loader
/// still yields that index exactly once.
class PrefetchLoader {
 public:
  using BatchFn = std::function<Batch(int64_t index)>;

  PrefetchLoader(BatchFn make_batch, int64_t num_batches, LoaderConfig config);
  ~PrefetchLoader();

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// True while batches remain.
  bool has_next() const;

  /// Blocks per the yield policy and returns the next batch. If a batch's
  /// preparation failed (after retries), the first such error is rethrown
  /// here with the failing batch index in the message (the PyTorch
  /// DataLoader contract: worker failures surface on the consumer).
  Batch next();

  /// Copy of the counters taken under the loader lock — the only stats
  /// accessor. (A by-reference stats() existed once; it handed out
  /// mutex-guarded state without the mutex, a data race whenever a worker
  /// was still finishing a requeued duplicate, so it was removed.)
  LoaderStats stats_snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  void worker_loop();
  /// Requeues in-progress batches whose deadline passed. Lock held.
  void reclaim_expired_locked();

  BatchFn make_batch_;
  const int64_t num_batches_;
  const LoaderConfig config_;
  std::chrono::microseconds poll_{};  ///< watchdog wake-up period

  mutable std::mutex mu_;
  std::condition_variable cv_ready_;  ///< consumer waits for batches
  std::condition_variable cv_space_;  ///< workers wait for budget/requeues
  std::map<int64_t, Batch> ready_;    ///< ordered => min-index pop is O(log n)
  std::deque<int64_t> requeue_;       ///< timed-out indices awaiting re-claim
  std::map<int64_t, Clock::time_point> in_progress_;  ///< index -> deadline
  std::vector<char> done_;            ///< ready-or-yielded (duplicate guard)
  int64_t next_to_schedule_ = 0;
  int64_t next_in_order_ = 0;         ///< next index for kInOrder yield
  int64_t yielded_ = 0;
  int64_t in_flight_ = 0;             ///< distinct indices claimed, not yielded
  bool stop_ = false;
  std::exception_ptr worker_error_;

  LoaderStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace sf::data
