// Data-pipeline loaders: in-order (PyTorch DataLoader semantics) vs
// ScaleFold's non-blocking ready-first pipeline (§3.2, Fig. 5).
//
// Both loaders run the same pool of prefetch workers over the same
// dataset. The difference is the yield policy:
//
//   kInOrder    — next() returns batch i before batch i+1, always. If
//                 batch b is slow, ready batches c > b wait and the
//                 training process idles (Fig. 5 (i)).
//   kReadyFirst — completed batches enter a priority queue keyed by their
//                 dataset index; next() pops the smallest-index *ready*
//                 batch immediately, preserving order best-effort while
//                 never idling behind a straggler (Fig. 5 (ii)).
//
// The paper notes the resulting order perturbation did not harm
// convergence; tests here verify exactly-once delivery and bounded
// reordering (a batch can only be overtaken while it is in flight).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "data/protein_sample.h"

namespace sf::data {

enum class YieldPolicy {
  kInOrder,     ///< strict sampler order (baseline)
  kReadyFirst,  ///< non-blocking priority queue (ScaleFold)
};

struct LoaderConfig {
  int num_workers = 2;
  /// Max batches scheduled but not yet yielded (prefetch depth).
  int max_in_flight = 4;
  YieldPolicy policy = YieldPolicy::kReadyFirst;
};

struct LoaderStats {
  double consumer_wait_seconds = 0.0;   ///< time next() spent blocked
  int64_t batches_yielded = 0;
  std::vector<int64_t> yield_order;     ///< dataset indices in yield order
  std::vector<double> prep_seconds;     ///< per-batch preparation time
};

/// Prefetching loader over an index range [0, num_batches).
///
/// `make_batch` is the preparation function (normally
/// SyntheticProteinDataset::prepare_batch, optionally wrapped with delay
/// injection for tests). It is invoked concurrently from worker threads
/// and must be thread-safe.
class PrefetchLoader {
 public:
  using BatchFn = std::function<Batch(int64_t index)>;

  PrefetchLoader(BatchFn make_batch, int64_t num_batches, LoaderConfig config);
  ~PrefetchLoader();

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// True while batches remain.
  bool has_next() const;

  /// Blocks per the yield policy and returns the next batch. If a worker's
  /// preparation function threw, that exception is rethrown here (the
  /// PyTorch DataLoader contract: worker failures surface on the consumer).
  Batch next();

  const LoaderStats& stats() const { return stats_; }

 private:
  void worker_loop();

  BatchFn make_batch_;
  const int64_t num_batches_;
  const LoaderConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_ready_;  ///< consumer waits for batches
  std::condition_variable cv_space_;  ///< workers wait for in-flight budget
  std::map<int64_t, Batch> ready_;    ///< ordered => min-index pop is O(log n)
  int64_t next_to_schedule_ = 0;
  int64_t next_in_order_ = 0;         ///< next index for kInOrder yield
  int64_t yielded_ = 0;
  int64_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr worker_error_;

  LoaderStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace sf::data
