#include "data/protein_sample.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/timer.h"

namespace sf::data {
namespace {

// Per-residue geometry table: each amino acid bends the backbone by its own
// (turn, torsion) pair, so structure is a deterministic, learnable function
// of sequence.
struct ResidueGeometry {
  float turn;
  float torsion;
};

ResidueGeometry residue_geometry(int8_t aa) {
  // Spread 20 residue types over turn [0.3, 1.1] rad and torsion
  // [-0.9, 0.9] rad in an interleaved pattern (avoids monotone aliasing).
  float t = static_cast<float>(aa) / (kNumAminoAcids - 1);
  float turn = 0.3f + 0.8f * t;
  float torsion = 0.9f * std::sin(6.0f * 3.14159265f * t);
  return {turn, torsion};
}

// Normalize a 3-vector in place.
void normalize3(float* v) {
  float n = std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
  if (n < 1e-12f) {
    v[0] = 1.0f; v[1] = 0.0f; v[2] = 0.0f;
    return;
  }
  v[0] /= n; v[1] /= n; v[2] /= n;
}

void cross3(const float* a, const float* b, float* out) {
  out[0] = a[1] * b[2] - a[2] * b[1];
  out[1] = a[2] * b[0] - a[0] * b[2];
  out[2] = a[0] * b[1] - a[1] * b[0];
}

int64_t clamp_i64(int64_t v, int64_t lo, int64_t hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace

SyntheticProteinDataset::SyntheticProteinDataset(DatasetConfig config)
    : config_(std::move(config)) {
  SF_CHECK(config_.num_samples > 0);
  SF_CHECK(config_.crop_len > 0);
  SF_CHECK(config_.msa_rows > 0);
  meta_.reserve(config_.num_samples);
  Rng rng(config_.seed);
  for (int64_t i = 0; i < config_.num_samples; ++i) {
    SampleMeta m;
    m.index = i;
    m.seq_len = clamp_i64(
        static_cast<int64_t>(rng.lognormal(config_.len_log_mean,
                                           config_.len_log_sigma)),
        config_.min_seq_len, config_.max_seq_len);
    m.msa_depth = clamp_i64(
        static_cast<int64_t>(rng.lognormal(config_.msa_log_mean,
                                           config_.msa_log_sigma)),
        config_.min_msa_depth, config_.max_msa_depth);
    meta_.push_back(m);
  }
}

const SampleMeta& SyntheticProteinDataset::meta(int64_t index) const {
  SF_CHECK(index >= 0 && index < size()) << "sample index" << index;
  return meta_[index];
}

std::vector<int8_t> SyntheticProteinDataset::sequence(int64_t index) const {
  const SampleMeta& m = meta(index);
  // Per-sample deterministic stream independent of call order.
  Rng rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  std::vector<int8_t> seq(m.seq_len);
  for (auto& aa : seq) {
    aa = static_cast<int8_t>(rng.uniform_int(kNumAminoAcids));
  }
  return seq;
}

std::vector<float> SyntheticProteinDataset::fold_backbone(
    const std::vector<int8_t>& seq) {
  // Discrete worm-like curve: direction frame rotated per residue by that
  // residue's (turn, torsion); CA positions are the cumulative walk with a
  // 3.8 A virtual bond.
  constexpr float kBond = 3.8f;
  std::vector<float> pos(seq.size() * 3, 0.0f);
  float dir[3] = {1.0f, 0.0f, 0.0f};
  float up[3] = {0.0f, 0.0f, 1.0f};
  float p[3] = {0.0f, 0.0f, 0.0f};
  for (size_t i = 0; i < seq.size(); ++i) {
    pos[i * 3 + 0] = p[0];
    pos[i * 3 + 1] = p[1];
    pos[i * 3 + 2] = p[2];
    ResidueGeometry g = residue_geometry(seq[i]);
    // Local context: neighbor residues modulate the turn slightly, giving
    // pair interactions for the model to learn.
    if (i + 1 < seq.size()) {
      g.turn += 0.05f * (static_cast<float>(seq[i + 1]) / kNumAminoAcids - 0.5f);
    }
    // Rotate dir by `turn` in the (dir, side) plane, then twist `up` by
    // torsion around dir.
    float side[3];
    cross3(up, dir, side);
    normalize3(side);
    float ct = std::cos(g.turn), st = std::sin(g.turn);
    float new_dir[3] = {ct * dir[0] + st * side[0], ct * dir[1] + st * side[1],
                        ct * dir[2] + st * side[2]};
    float cp = std::cos(g.torsion), sp = std::sin(g.torsion);
    float new_up[3] = {cp * up[0] + sp * side[0], cp * up[1] + sp * side[1],
                       cp * up[2] + sp * side[2]};
    for (int k = 0; k < 3; ++k) {
      dir[k] = new_dir[k];
      up[k] = new_up[k];
    }
    normalize3(dir);
    normalize3(up);
    for (int k = 0; k < 3; ++k) p[k] += kBond * dir[k];
  }
  return pos;
}

Batch SyntheticProteinDataset::prepare_batch(int64_t index) const {
  return prepare_batch(index, config_.crop_len);
}

Batch SyntheticProteinDataset::prepare_batch(int64_t index,
                                             int64_t crop_len) const {
  SF_CHECK(crop_len > 0) << "crop_len" << crop_len;
  Timer timer;
  const SampleMeta& m = meta(index);
  Rng rng(config_.seed ^ (0xc2b2ae3d27d4eb4fULL * (index + 1)));

  std::vector<int8_t> seq = sequence(index);
  std::vector<float> full_pos = fold_backbone(seq);

  // --- MSA synthesis + profile (the dominant, depth-dependent cost) ---
  const int64_t work_rows = std::min(m.msa_depth, config_.msa_work_cap);
  const int64_t L = m.seq_len;
  // profile[pos * kNumAminoAcids + aa], gaps[pos]
  std::vector<float> profile(static_cast<size_t>(L) * kNumAminoAcids, 0.0f);
  std::vector<float> gaps(L, 0.0f);
  // First config_.msa_rows mutated rows are also kept verbatim as features.
  std::vector<int8_t> kept_rows(static_cast<size_t>(config_.msa_rows) * L, -1);

  for (int64_t r = 0; r < work_rows; ++r) {
    for (int64_t i = 0; i < L; ++i) {
      int8_t aa = seq[i];
      bool gap = rng.bernoulli(config_.gap_rate);
      if (!gap && rng.bernoulli(config_.mutation_rate)) {
        aa = static_cast<int8_t>(rng.uniform_int(kNumAminoAcids));
      }
      if (gap) {
        gaps[i] += 1.0f;
      } else {
        profile[i * kNumAminoAcids + aa] += 1.0f;
      }
      if (r < config_.msa_rows) {
        kept_rows[r * L + i] = gap ? -1 : aa;
      }
    }
  }
  // Rows beyond work_rows for the kept set (when depth < msa_rows, row 0 is
  // the query itself repeated).
  for (int64_t r = work_rows; r < config_.msa_rows; ++r) {
    for (int64_t i = 0; i < L; ++i) kept_rows[r * L + i] = seq[i];
  }
  float inv_rows = 1.0f / static_cast<float>(work_rows);
  for (auto& v : profile) v *= inv_rows;
  for (auto& v : gaps) v *= inv_rows;

  // --- Crop ---
  const int64_t crop = crop_len;
  int64_t start = 0;
  if (L > crop) start = static_cast<int64_t>(rng.uniform_int(L - crop + 1));
  const int64_t valid = std::min(crop, L);

  // Template: a mutated homolog's fold, featurized as binned pairwise
  // distances over the same crop window (the AF2 template-distogram path).
  std::vector<int8_t> tmpl_seq = seq;
  for (auto& aa : tmpl_seq) {
    if (rng.bernoulli(config_.template_mutation_rate)) {
      aa = static_cast<int8_t>(rng.uniform_int(kNumAminoAcids));
    }
  }
  std::vector<float> tmpl_pos = fold_backbone(tmpl_seq);

  Batch b;
  b.index = index;
  b.seq_onehot = Tensor({crop, kNumAminoAcids});
  b.msa_feat = Tensor({config_.msa_rows, crop, kMsaFeatDim});
  b.template_feat = Tensor({crop, crop, kTemplateBins});
  b.target_pos = Tensor({crop, 3});
  b.residue_mask = Tensor({crop});

  float depth_norm =
      std::log1p(static_cast<float>(m.msa_depth)) / std::log(1e5f);
  for (int64_t i = 0; i < valid; ++i) {
    int64_t src = start + i;
    b.seq_onehot.at(i * kNumAminoAcids + seq[src]) = 1.0f;
    b.residue_mask.at(i) = 1.0f;
    for (int k = 0; k < 3; ++k) {
      b.target_pos.at(i * 3 + k) = full_pos[src * 3 + k];
    }
    for (int64_t r = 0; r < config_.msa_rows; ++r) {
      float* f = b.msa_feat.data() + (r * crop + i) * kMsaFeatDim;
      int8_t aa = kept_rows[r * L + src];
      if (aa >= 0) f[aa] = 1.0f;
      const float* prof = profile.data() + src * kNumAminoAcids;
      for (int64_t a = 0; a < kNumAminoAcids; ++a) {
        f[kNumAminoAcids + a] = prof[a];
      }
      f[2 * kNumAminoAcids] = gaps[src];
      f[2 * kNumAminoAcids + 1] = depth_norm;
    }
  }
  // Template distogram over the crop window.
  for (int64_t i = 0; i < valid; ++i) {
    for (int64_t j = 0; j < valid; ++j) {
      int64_t si = start + i, sj = start + j;
      float dx = tmpl_pos[si * 3] - tmpl_pos[sj * 3];
      float dy = tmpl_pos[si * 3 + 1] - tmpl_pos[sj * 3 + 1];
      float dz = tmpl_pos[si * 3 + 2] - tmpl_pos[sj * 3 + 2];
      float d = std::sqrt(dx * dx + dy * dy + dz * dz);
      int64_t bin = std::min<int64_t>(
          static_cast<int64_t>(d / kTemplateBinWidth), kTemplateBins - 1);
      b.template_feat.at((i * crop + j) * kTemplateBins + bin) = 1.0f;
    }
  }

  // Center the target crop (remove global translation, which the model
  // cannot and need not predict).
  if (valid > 0) {
    float cx = 0, cy = 0, cz = 0;
    for (int64_t i = 0; i < valid; ++i) {
      cx += b.target_pos.at(i * 3);
      cy += b.target_pos.at(i * 3 + 1);
      cz += b.target_pos.at(i * 3 + 2);
    }
    cx /= valid; cy /= valid; cz /= valid;
    for (int64_t i = 0; i < valid; ++i) {
      b.target_pos.at(i * 3) -= cx;
      b.target_pos.at(i * 3 + 1) -= cy;
      b.target_pos.at(i * 3 + 2) -= cz;
    }
  }

  b.prep_seconds = timer.elapsed();
  return b;
}

}  // namespace sf::data
