// Synthetic protein dataset: the OpenFold-data substitute.
//
// The real OpenFold dataset (PDB structures + MSAs) is unavailable here.
// What the ScaleFold experiments need from the data is:
//   1. a long-tailed joint distribution of sequence length and MSA depth —
//      Fig. 4 shows batch preparation times spanning ~3 decades with a
//      ~10% slow tail, which is what blocks the in-order pipeline;
//   2. real featurization work proportional to (length x MSA depth), so
//      preparation time genuinely varies per sample;
//   3. a learnable sequence -> structure mapping so the mini-AlphaFold can
//      demonstrate convergence (Fig. 11) with an lDDT-Ca metric.
//
// We generate sequences over a 20-letter alphabet, derive a deterministic
// backbone fold from the sequence (a residue-dependent discrete worm-like
// curve: each residue's torsion offsets depend on its identity and local
// window), synthesize an MSA by stochastic mutation, and featurize with
// one-hot + MSA profile features before cropping — mirroring the shape of
// the AlphaFold input pipeline (§2.1 "Data loading ... crops these
// sequences to a predefined length").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace sf::data {

inline constexpr int64_t kNumAminoAcids = 20;
/// Per-position MSA feature width: one-hot target + profile + gap stats.
inline constexpr int64_t kMsaFeatDim = kNumAminoAcids + kNumAminoAcids + 2;
/// Distance bins for template pair features (AF2 uses 39 distogram bins;
/// scaled down with the rest of the model).
inline constexpr int64_t kTemplateBins = 8;
inline constexpr float kTemplateBinWidth = 4.0f;

/// Static metadata of one dataset element (known before preparation).
struct SampleMeta {
  int64_t index = 0;
  int64_t seq_len = 0;
  int64_t msa_depth = 0;
};

/// A prepared (featurized + cropped) training batch element.
struct Batch {
  int64_t index = -1;
  Tensor seq_onehot;    ///< [crop_len, kNumAminoAcids]
  Tensor msa_feat;      ///< [msa_rows, crop_len, kMsaFeatDim]
  Tensor template_feat; ///< [crop_len, crop_len, kTemplateBins] binned
                        ///< pairwise distances of a homolog's fold
  Tensor target_pos;    ///< [crop_len, 3] ground-truth C-alpha coordinates
  Tensor residue_mask;  ///< [crop_len] 1 for real residues, 0 for padding
  double prep_seconds = 0.0;
};

struct DatasetConfig {
  int64_t num_samples = 1000;
  /// Mutation rate of the homolog whose fold supplies template features
  /// (structurally related to, but distinct from, the target).
  double template_mutation_rate = 0.2;
  int64_t crop_len = 48;   ///< residue crop (paper: 256)
  int64_t msa_rows = 8;    ///< MSA rows kept after cropping (paper: 128+)
  /// Log-normal parameters for sequence length; defaults give a median
  /// ~190 residues with a heavy right tail (multi-thousand-residue
  /// proteins), matching the PDB length distribution shape.
  double len_log_mean = 5.25;
  double len_log_sigma = 0.65;
  int64_t min_seq_len = 16;
  int64_t max_seq_len = 8000;
  /// Log-normal MSA depth; median ~500 sequences, tail to hundreds of
  /// thousands — the second driver of the Fig. 4 spread.
  double msa_log_mean = 6.2;
  double msa_log_sigma = 1.4;
  int64_t min_msa_depth = 4;
  int64_t max_msa_depth = 200000;
  /// Mutation probability per MSA position (sequence diversity).
  double mutation_rate = 0.15;
  double gap_rate = 0.05;
  uint64_t seed = 42;
  /// Featurization work throttle: rows of the full MSA actually processed
  /// per profile pass (prep cost ~ seq_len * min(depth, work_cap)).
  int64_t msa_work_cap = 4000;
};

/// Deterministic synthetic dataset. Thread-safe for concurrent
/// prepare_batch() calls on distinct or identical indices.
class SyntheticProteinDataset {
 public:
  explicit SyntheticProteinDataset(DatasetConfig config);

  int64_t size() const { return config_.num_samples; }
  const DatasetConfig& config() const { return config_; }

  /// Metadata is precomputed for the whole dataset at construction.
  const SampleMeta& meta(int64_t index) const;
  const std::vector<SampleMeta>& all_meta() const { return meta_; }

  /// Full preparation: generate sequence + fold + MSA, featurize, crop.
  /// Deterministic per index. This is the expensive call whose duration
  /// distribution reproduces Fig. 4.
  Batch prepare_batch(int64_t index) const;

  /// Same preparation cropped to `crop_len` instead of the configured
  /// length (the serving layer featurizes into the request's length
  /// bucket). The MSA/profile work — the dominant cost — is identical for
  /// every crop length; only the crop window and tensor shapes differ.
  /// Deterministic per (index, crop_len).
  Batch prepare_batch(int64_t index, int64_t crop_len) const;

  /// Ground-truth fold for a full sequence (exposed for tests/metrics).
  static std::vector<float> fold_backbone(const std::vector<int8_t>& seq);

  /// Sequence for an index (deterministic).
  std::vector<int8_t> sequence(int64_t index) const;

 private:
  DatasetConfig config_;
  std::vector<SampleMeta> meta_;
};

}  // namespace sf::data
