#include "graph/executor.h"

#include <memory>

#include "common/error.h"
#include "common/parallel.h"
#include "common/timer.h"

namespace sf::graph {
namespace {

/// Argument record allocated per eager launch — stands in for the arg
/// marshalling + stream bookkeeping PyTorch does per kernel.
struct LaunchRecord {
  const Op* op;
  uint64_t seq;
  uint64_t registry_token;
};

void run_op_body(const Op& op) {
  if (op.is_elementwise) {
    const float* in = op.ew_in;
    float* out = op.ew_out;
    for (int64_t i = 0; i < op.ew_n; ++i) {
      out[i] = apply_ew_stage(op.stage, in[i], i);
    }
  } else if (op.fn) {
    op.fn();
  }
}

}  // namespace

double ExecStats::kernel_seconds() const {
  double s = 0.0;
  for (const auto& [kind, pk] : by_kind) s += pk.seconds;
  return s;
}

const char* op_kind_trace_category(OpKind kind) {
  switch (kind) {
    case OpKind::kMath: return "kernel.math";
    case OpKind::kMemoryBound: return "kernel.mem";
    case OpKind::kMemOp: return "kernel.memop";
  }
  return "kernel";
}

ExecStats stats_from_trace(const std::vector<obs::TraceEvent>& events) {
  ExecStats s;
  auto kind_of = [](const std::string& cat, OpKind* out) {
    for (OpKind k :
         {OpKind::kMath, OpKind::kMemoryBound, OpKind::kMemOp}) {
      if (cat == op_kind_trace_category(k)) {
        *out = k;
        return true;
      }
    }
    return false;
  };
  for (const obs::TraceEvent& ev : events) {
    if (ev.dur_us < 0) continue;  // instants carry no duration
    OpKind kind;
    if (ev.category == std::string(kDispatchCategory)) {
      s.dispatch_seconds += ev.dur_us * 1e-6;
      ++s.total_launches;
    } else if (kind_of(ev.category, &kind)) {
      auto& pk = s.by_kind[kind];
      pk.seconds += ev.dur_us * 1e-6;
      pk.calls += 1;
    }
  }
  return s;
}

Executor::Executor() = default;

void Executor::dispatch_overhead(const Op& op) {
  // Registry lookup by kernel name (hash + string compare, possible
  // insert): the host-side cost every eager launch pays.
  auto [it, inserted] = registry_.try_emplace(op.name, 0);
  it->second++;
  // Per-launch argument record allocation.
  auto record = std::make_unique<LaunchRecord>();
  record->op = &op;
  record->seq = stats_.total_launches;
  record->registry_token = it->second;
  // Host load (background-process CPU peak) applies only to the eager
  // dispatch path; graph replay is immune.
  if (host_load_hook_) host_load_hook_();
}

void Executor::run_eager(const Program& program) {
  for (const Op& op : program.ops()) {
    {
      obs::TraceSpan span(kDispatchCategory, op.name);
      Timer dispatch_timer;
      dispatch_overhead(op);
      stats_.dispatch_seconds += dispatch_timer.elapsed();
      ++stats_.total_launches;
    }
    // Kernel spans carry the intra-op thread count so trace consumers can
    // attribute timing shifts to SF_NUM_THREADS.
    obs::TraceSpan span(op_kind_trace_category(op.kind), op.name,
                        sf::num_threads());
    Timer kernel_timer;
    run_op_body(op);
    auto& pk = stats_.by_kind[op.kind];
    pk.seconds += kernel_timer.elapsed();
    pk.calls += 1;
  }
}

GraphExec::GraphExec(const Program& program) {
  thunks_.reserve(program.size());
  for (const Op& op : program.ops()) {
    if (op.is_elementwise) {
      // Resolve the elementwise descriptor into a direct closure once, at
      // capture time.
      EwStage stage = op.stage;
      const float* in = op.ew_in;
      float* out = op.ew_out;
      int64_t n = op.ew_n;
      thunks_.push_back([stage, in, out, n] {
        for (int64_t i = 0; i < n; ++i) out[i] = apply_ew_stage(stage, in[i], i);
      });
    } else {
      SF_CHECK(static_cast<bool>(op.fn)) << "opaque op without body:" << op.name;
      thunks_.push_back(op.fn);
    }
  }
}

void GraphExec::replay() {
  SF_TRACE_SPAN("graph", "replay");
  for (auto& t : thunks_) t();
  ++replays_;
}

GraphExec& GraphCache::get_or_capture(const std::string& key,
                                      const Builder& builder) {
  auto it = graphs_.find(key);
  if (it != graphs_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  obs::TraceSpan span("graph", "capture:" + key);
  Program program = builder();
  auto [ins, ok] = graphs_.emplace(key, GraphExec(program));
  SF_CHECK(ok);
  return ins->second;
}

}  // namespace sf::graph
