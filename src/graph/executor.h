// Eager executor, graph capture/replay, and kernel census.
//
// Eager mode models the PyTorch-eager dispatch path: every op launch does
// real host-side work (kernel-registry lookup, argument-record allocation,
// stats bookkeeping) and consults a host-load hook so cluster CPU peaks
// (§3.1 "imbalanced communication" root cause 2) can be injected. Graph
// replay executes the pre-resolved op list with none of that — the CUDA
// Graph analogue (§3.2): after capture there is no per-kernel CPU
// interaction, so replay time is insensitive to the host-load hook.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/ir.h"
#include "obs/trace.h"

namespace sf::graph {

/// Census/timing accumulated by the eager executor. Reproduces the axes of
/// Table 1: share of time and call count per kernel category, plus host
/// (CPU-overhead) time.
struct ExecStats {
  struct PerKind {
    uint64_t calls = 0;
    double seconds = 0.0;
  };
  std::map<OpKind, PerKind> by_kind;
  double dispatch_seconds = 0.0;  ///< host-side launch overhead ("CPU overhead")
  uint64_t total_launches = 0;

  double kernel_seconds() const;
  double total_seconds() const { return kernel_seconds() + dispatch_seconds; }
  void reset() { *this = ExecStats{}; }
};

/// Trace category the eager executor tags kernel spans with, per census
/// kind ("kernel.math" / "kernel.mem" / "kernel.memop"); dispatch spans
/// use kDispatchCategory. Shared with the benches that rebuild Table 1
/// from a trace.
const char* op_kind_trace_category(OpKind kind);
inline constexpr const char* kDispatchCategory = "dispatch";

/// Rebuild the census from trace events recorded during run_eager: the
/// same numbers as Executor::stats(), derived from the shared tracing
/// substrate instead of a bespoke accumulator. Events with other
/// categories (loader, train, ...) are ignored.
ExecStats stats_from_trace(const std::vector<obs::TraceEvent>& events);

class Executor {
 public:
  Executor();

  /// Run every op of the program through the eager dispatch path.
  void run_eager(const Program& program);

  /// Install a hook invoked on every eager dispatch; used to inject host
  /// CPU load (busy spin) to model background-process peaks. nullptr
  /// removes the hook.
  void set_host_load_hook(std::function<void()> hook) {
    host_load_hook_ = std::move(hook);
  }

  const ExecStats& stats() const { return stats_; }
  ExecStats& mutable_stats() { return stats_; }

 private:
  void dispatch_overhead(const Op& op);

  // Emulated kernel registry: looked up by name on every eager launch.
  std::unordered_map<std::string, uint64_t> registry_;
  std::function<void()> host_load_hook_;
  ExecStats stats_;
};

/// Executable captured graph: op closures pre-resolved into a flat list.
/// replay() runs them back-to-back with no dispatch work.
class GraphExec {
 public:
  explicit GraphExec(const Program& program);

  void replay();

  size_t num_ops() const { return thunks_.size(); }
  uint64_t replay_count() const { return replays_; }

 private:
  std::vector<std::function<void()>> thunks_;
  uint64_t replays_ = 0;
};

/// Cache of captured graphs keyed by configuration (the paper keys on the
/// recycling scenario: AlphaFold samples 1..4 recycling iterations per
/// step, each a different graph shape).
class GraphCache {
 public:
  using Builder = std::function<Program()>;

  /// Returns the cached executable for `key`, capturing via `builder` on
  /// first use.
  GraphExec& get_or_capture(const std::string& key, const Builder& builder);

  bool contains(const std::string& key) const {
    return graphs_.count(key) > 0;
  }
  size_t size() const { return graphs_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, GraphExec> graphs_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace sf::graph
