#include "graph/fuser.h"

#include <unordered_map>
#include <vector>

namespace sf::graph {
namespace {

/// Count how many ops read a given buffer (as primary input or as the
/// second operand of a binary stage).
std::unordered_map<const float*, int> build_read_counts(const Program& p) {
  std::unordered_map<const float*, int> reads;
  for (const Op& op : p.ops()) {
    if (!op.is_elementwise) continue;
    reads[op.ew_in]++;
    if (op.stage.other != nullptr) reads[op.stage.other]++;
  }
  return reads;
}

}  // namespace

namespace {

bool is_affine(const EwStage& s) {
  return s.kind == EwKind::kCopy || s.kind == EwKind::kAddScalar ||
         s.kind == EwKind::kMulScalar || s.kind == EwKind::kAffine;
}

// (scale, offset) of an affine stage: y = scale*x + offset.
std::pair<float, float> affine_of(const EwStage& s) {
  switch (s.kind) {
    case EwKind::kCopy: return {1.0f, 0.0f};
    case EwKind::kAddScalar: return {1.0f, s.scalar};
    case EwKind::kMulScalar: return {s.scalar, 0.0f};
    case EwKind::kAffine: return {s.scalar, s.scalar2};
    default: return {1.0f, 0.0f};
  }
}

// Constant-fold runs of affine stages into single kAffine stages — the
// torch.compile-style algebraic simplification that keeps the fused loop
// cheap even at long chain lengths.
std::vector<EwStage> fold_affine(const std::vector<EwStage>& in) {
  std::vector<EwStage> out;
  for (const EwStage& s : in) {
    if (is_affine(s) && !out.empty() && is_affine(out.back())) {
      auto [s1, o1] = affine_of(out.back());
      auto [s2, o2] = affine_of(s);
      out.back() = {EwKind::kAffine, nullptr, s1 * s2, o1 * s2 + o2};
    } else {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

Program fuse_elementwise_chains(const Program& in, FuseStats* stats) {
  const auto& ops = in.ops();
  auto reads = build_read_counts(in);

  Program out;
  FuseStats fs;
  fs.ops_before = ops.size();
  for (const Op& op : ops) fs.bytes_before += op.bytes;

  size_t i = 0;
  while (i < ops.size()) {
    const Op& head = ops[i];
    if (!head.is_elementwise) {
      out.add(head);
      ++i;
      continue;
    }
    // Greedily extend the chain: next op must be elementwise, consume this
    // op's output as its primary input with the same element count, and the
    // intermediate must have no other reader.
    size_t j = i;
    while (j + 1 < ops.size()) {
      const Op& cur = ops[j];
      const Op& next = ops[j + 1];
      if (!next.is_elementwise) break;
      if (next.ew_in != cur.ew_out || next.ew_n != cur.ew_n) break;
      if (reads[cur.ew_out] != 1) break;  // someone else reads the temp
      ++j;
    }
    if (j == i) {
      out.add(head);
      ++i;
      continue;
    }
    // Build the fused op, constant-folding affine runs.
    std::vector<EwStage> stages;
    std::string name = "fused(";
    for (size_t k = i; k <= j; ++k) {
      stages.push_back(ops[k].stage);
      if (k > i) name += "+";
      name += ops[k].name;
    }
    name += ")";
    stages = fold_affine(stages);
    const float* fin = ops[i].ew_in;
    float* fout = ops[j].ew_out;
    int64_t n = ops[i].ew_n;

    Op fused;
    fused.name = std::move(name);
    fused.kind = OpKind::kMemoryBound;
    fused.flops = static_cast<uint64_t>(n) * stages.size();
    fused.bytes = static_cast<uint64_t>(n) * 2 * sizeof(float);
    fused.fn = [stages, fin, fout, n] {
      for (int64_t e = 0; e < n; ++e) {
        float v = fin[e];
        for (const EwStage& s : stages) v = apply_ew_stage(s, v, e);
        fout[e] = v;
      }
    };
    out.add(std::move(fused));
    fs.chains_fused += 1;
    i = j + 1;
  }

  fs.ops_after = out.size();
  for (const Op& op : out.ops()) fs.bytes_after += op.bytes;
  if (stats) *stats = fs;
  return out;
}

}  // namespace sf::graph
