#include "graph/ir.h"

#include <cmath>

namespace sf::graph {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kMath: return "math-bounded";
    case OpKind::kMemoryBound: return "memory-bounded";
    case OpKind::kMemOp: return "memory-operation";
  }
  return "?";
}

float apply_ew_stage(const EwStage& stage, float x, int64_t i) {
  switch (stage.kind) {
    case EwKind::kCopy: return x;
    case EwKind::kAddScalar: return x + stage.scalar;
    case EwKind::kMulScalar: return x * stage.scalar;
    case EwKind::kAffine: return x * stage.scalar + stage.scalar2;
    case EwKind::kAddTensor: return x + stage.other[i];
    case EwKind::kMulTensor: return x * stage.other[i];
    case EwKind::kRelu: return x > 0.0f ? x : 0.0f;
    case EwKind::kGelu: {
      constexpr float kC = 0.7978845608028654f;
      float inner = kC * (x + 0.044715f * x * x * x);
      return 0.5f * x * (1.0f + std::tanh(inner));
    }
    case EwKind::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
  }
  return x;
}

void Program::add_op(std::string name, OpKind kind, uint64_t flops,
                     uint64_t bytes, std::function<void()> fn) {
  Op op;
  op.name = std::move(name);
  op.kind = kind;
  op.flops = flops;
  op.bytes = bytes;
  op.fn = std::move(fn);
  ops_.push_back(std::move(op));
}

void Program::add_elementwise(std::string name, const float* in, float* out,
                              int64_t n, EwStage stage) {
  Op op;
  op.name = std::move(name);
  op.kind = OpKind::kMemoryBound;
  op.flops = static_cast<uint64_t>(n);
  op.bytes = static_cast<uint64_t>(n) * 2 * sizeof(float);
  op.is_elementwise = true;
  op.ew_in = in;
  op.ew_out = out;
  op.ew_n = n;
  op.stage = stage;
  ops_.push_back(std::move(op));
}

}  // namespace sf::graph
