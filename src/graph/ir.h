// Op-level IR for the execution engine.
//
// The paper's two execution-side optimizations are reproduced on this IR:
//   - CUDA Graphs (§3.2): ops submitted through the eager Executor pay a
//     real per-op host dispatch cost; a captured Program replayed through
//     GraphExec does not — mirroring how graph launch removes per-kernel
//     CPU work and makes step time robust to host CPU load spikes.
//   - torch.compile (§3.3.2): chains of elementwise ops are fused by a
//     pattern fuser into a single pass with intermediates in registers.
//
// Ops carry a census descriptor (kind / flops / bytes) so a recorded
// program can reproduce the Table 1 kernel breakdown.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sf::graph {

/// Census category, matching Table 1 of the paper.
enum class OpKind {
  kMath,         ///< GEMM/conv-like, math-bound
  kMemoryBound,  ///< elementwise/reduction/softmax/norm
  kMemOp,        ///< copies and fills
};

const char* op_kind_name(OpKind kind);

/// Pointwise stage for the elementwise micro-IR the fuser understands.
enum class EwKind {
  kCopy,       ///< y = x
  kAddScalar,  ///< y = x + scalar
  kMulScalar,  ///< y = x * scalar
  kAffine,     ///< y = x * scalar + scalar2 (fuser constant-folding result)
  kAddTensor,  ///< y = x + other[i]
  kMulTensor,  ///< y = x * other[i]
  kRelu,
  kGelu,
  kSigmoid,
};

struct EwStage {
  EwKind kind = EwKind::kCopy;
  const float* other = nullptr;  ///< second input for *Tensor kinds
  float scalar = 0.0f;
  float scalar2 = 0.0f;  ///< kAffine offset
};

float apply_ew_stage(const EwStage& stage, float x, int64_t i);

/// One operation in a recorded program.
struct Op {
  std::string name;
  OpKind kind = OpKind::kMemoryBound;
  uint64_t flops = 0;
  uint64_t bytes = 0;

  /// Opaque ops run through fn. Elementwise ops leave fn empty and are
  /// described by the fields below so the fuser can merge them.
  std::function<void()> fn;

  bool is_elementwise = false;
  const float* ew_in = nullptr;
  float* ew_out = nullptr;
  int64_t ew_n = 0;
  EwStage stage;
};

/// A recorded sequence of ops (the capture target).
class Program {
 public:
  void add(Op op) { ops_.push_back(std::move(op)); }

  /// Convenience: add an opaque op.
  void add_op(std::string name, OpKind kind, uint64_t flops, uint64_t bytes,
              std::function<void()> fn);

  /// Convenience: add a fusable elementwise op (bytes derived from n).
  void add_elementwise(std::string name, const float* in, float* out,
                       int64_t n, EwStage stage);

  const std::vector<Op>& ops() const { return ops_; }
  std::vector<Op>& mutable_ops() { return ops_; }
  size_t size() const { return ops_.size(); }

 private:
  std::vector<Op> ops_;
};

}  // namespace sf::graph
