#include "kernels/attention.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/parallel.h"
#include "obs/trace.h"
#include "kernels/simd_ops.h"
#include "kernels/softmax.h"

namespace sf::kernels {
namespace {

// All dot products go through the dispatch layer's fixed 8-lane
// reduction, so naive and flash paths see identical logits on every
// SIMD tier.
inline float dot(const float* a, const float* b, int64_t n) {
  return simd::ops().dot_f32(a, b, n);
}

// dbias accumulates over the batch dimension: (b,h) work items from
// different b write the same dbias[h] slice, so the parallel backward
// kernels reduce it in two deterministic stages — per-chunk partial
// buffers (chunk split depends only on the item count, never the thread
// count) combined in fixed chunk order afterwards. The same chunked path
// runs at one thread so outputs are bitwise identical at any
// SF_NUM_THREADS.
struct BiasPartials {
  int64_t chunks = 0;
  int64_t numel = 0;
  std::vector<float> data;  ///< [chunks, numel], zero-initialized

  BiasPartials(int64_t n_chunks, int64_t bias_numel, bool enabled)
      : chunks(n_chunks), numel(bias_numel) {
    if (enabled) data.assign(static_cast<size_t>(chunks) * numel, 0.0f);
  }
  float* chunk(int64_t c) {
    return data.empty() ? nullptr : data.data() + c * numel;
  }
  void combine_into(float* dbias) const {
    if (data.empty()) return;
    std::memset(dbias, 0, sizeof(float) * numel);
    // Column-parallel combine: each column sums its per-chunk partials in
    // ascending chunk order (fixed reduction tree).
    parallel_for(0, numel, 1 << 12, [&](int64_t i0, int64_t i1) {
      for (int64_t c = 0; c < chunks; ++c) {
        const float* part = data.data() + c * numel;
        for (int64_t i = i0; i < i1; ++i) dbias[i] += part[i];
      }
    });
  }
};

}  // namespace

void mha_forward_naive(const AttentionDims& d, const float* q, const float* k,
                       const float* v, const float* pair_bias,
                       const float* mask, float* out, AttentionContext* ctx) {
  SF_TRACE_SPAN_ID("kernel", "mha_fwd_naive", num_threads());
  SF_CHECK(d.head_dim > 0);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.head_dim));
  const int64_t logits_per_bh = d.q_len * d.k_len;
  if (ctx) ctx->probs.assign(d.batch * d.heads * logits_per_bh, 0.0f);

  // Parallel over (batch, head) work items: each item owns a disjoint
  // slice of out (and ctx->probs), mirroring one thread block per (b,h).
  parallel_for(0, d.batch * d.heads, 1, [&](int64_t bh0, int64_t bh1) {
    std::vector<float> logits(logits_per_bh);
    for (int64_t bh = bh0; bh < bh1; ++bh) {
      const int64_t b = bh / d.heads;
      const int64_t h = bh % d.heads;
      const float* qb = q + (bh * d.q_len) * d.head_dim;
      const float* kb = k + (bh * d.k_len) * d.head_dim;
      const float* vb = v + (bh * d.k_len) * d.head_dim;
      const float* bias_h = pair_bias ? pair_bias + h * logits_per_bh : nullptr;
      const float* mask_b = mask ? mask + b * d.k_len : nullptr;

      // Kernel 1: scaled QK^T (materialized).
      for (int64_t i = 0; i < d.q_len; ++i) {
        float* lrow = logits.data() + i * d.k_len;
        const float* qi = qb + i * d.head_dim;
        for (int64_t j = 0; j < d.k_len; ++j) {
          lrow[j] = scale * dot(qi, kb + j * d.head_dim, d.head_dim);
        }
      }
      // Kernel 2: bias add (separate elementwise kernel in eager mode).
      if (bias_h) {
        simd::ops().add_f32(logits.data(), bias_h, logits.data(),
                            logits_per_bh);
      }
      // Kernel 3: mask add.
      if (mask_b) {
        for (int64_t i = 0; i < d.q_len; ++i) {
          float* lrow = logits.data() + i * d.k_len;
          simd::ops().add_f32(lrow, mask_b, lrow, d.k_len);
        }
      }
      // Kernel 4: softmax.
      softmax_forward(logits.data(), logits.data(), d.q_len, d.k_len);
      if (ctx) {
        std::memcpy(ctx->probs.data() + bh * logits_per_bh, logits.data(),
                    sizeof(float) * logits_per_bh);
      }
      // Kernel 5: PV.
      float* ob = out + (bh * d.q_len) * d.head_dim;
      for (int64_t i = 0; i < d.q_len; ++i) {
        float* orow = ob + i * d.head_dim;
        std::memset(orow, 0, sizeof(float) * d.head_dim);
        const float* prow = logits.data() + i * d.k_len;
        for (int64_t j = 0; j < d.k_len; ++j) {
          simd::ops().axpy_f32(prow[j], vb + j * d.head_dim, orow,
                               d.head_dim);
        }
      }
    }
  });
}

void mha_backward_naive(const AttentionDims& d, const float* q, const float* k,
                        const float* v, const float* dout,
                        const AttentionContext& ctx, float* dq, float* dk,
                        float* dv, float* dbias) {
  SF_TRACE_SPAN_ID("kernel", "mha_bwd_naive", num_threads());
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.head_dim));
  const int64_t logits_per_bh = d.q_len * d.k_len;
  SF_CHECK(static_cast<int64_t>(ctx.probs.size()) ==
           d.batch * d.heads * logits_per_bh)
      << "naive backward requires probs saved by naive forward";

  std::memset(dq, 0, sizeof(float) * d.qkv_numel(true));
  std::memset(dk, 0, sizeof(float) * d.qkv_numel(false));
  std::memset(dv, 0, sizeof(float) * d.qkv_numel(false));

  const int64_t items = d.batch * d.heads;
  const int64_t n_chunks = detail::chunk_count(items, 1);
  BiasPartials partials(n_chunks, d.bias_numel(), dbias != nullptr);

  detail::run_chunks(n_chunks, [&](int64_t chunk) {
    const ChunkRange r = detail::chunk_bounds(items, n_chunks, chunk);
    std::vector<float> dprobs(logits_per_bh);
    std::vector<float> dlogits(logits_per_bh);
    float* part_dbias = partials.chunk(chunk);

    for (int64_t bh = r.begin; bh < r.end; ++bh) {
      const int64_t h = bh % d.heads;
      const float* probs = ctx.probs.data() + bh * logits_per_bh;
      const float* qb = q + (bh * d.q_len) * d.head_dim;
      const float* kb = k + (bh * d.k_len) * d.head_dim;
      const float* vb = v + (bh * d.k_len) * d.head_dim;
      const float* dob = dout + (bh * d.q_len) * d.head_dim;
      float* dqb = dq + (bh * d.q_len) * d.head_dim;
      float* dkb = dk + (bh * d.k_len) * d.head_dim;
      float* dvb = dv + (bh * d.k_len) * d.head_dim;

      // dV += P^T dO ; dP = dO V^T
      const simd::Ops& o = simd::ops();
      for (int64_t i = 0; i < d.q_len; ++i) {
        const float* prow = probs + i * d.k_len;
        const float* dorow = dob + i * d.head_dim;
        float* dprow = dprobs.data() + i * d.k_len;
        for (int64_t j = 0; j < d.k_len; ++j) {
          const float* vj = vb + j * d.head_dim;
          float* dvj = dvb + j * d.head_dim;
          o.axpy_f32(prow[j], dorow, dvj, d.head_dim);
          dprow[j] = o.dot_f32(dorow, vj, d.head_dim);
        }
      }
      // dLogits = softmax backward of dP.
      softmax_backward(probs, dprobs.data(), dlogits.data(), d.q_len, d.k_len);
      // dBias accumulates dLogits over the batch dimension — into this
      // chunk's private partial buffer (stage 1 of the reduction).
      if (part_dbias) {
        float* dbias_h = part_dbias + h * logits_per_bh;
        o.add_f32(dbias_h, dlogits.data(), dbias_h, logits_per_bh);
      }
      // dQ += scale * dLogits K ; dK += scale * dLogits^T Q. No zero-skip
      // on g: a non-finite K/Q row must poison the gradients even where
      // dLogits is zero (0 * Inf is NaN).
      for (int64_t i = 0; i < d.q_len; ++i) {
        const float* dlrow = dlogits.data() + i * d.k_len;
        const float* qi = qb + i * d.head_dim;
        float* dqi = dqb + i * d.head_dim;
        for (int64_t j = 0; j < d.k_len; ++j) {
          float g = scale * dlrow[j];
          const float* kj = kb + j * d.head_dim;
          float* dkj = dkb + j * d.head_dim;
          o.axpy_f32(g, kj, dqi, d.head_dim);
          o.axpy_f32(g, qi, dkj, d.head_dim);
        }
      }
    }
  });
  if (dbias) partials.combine_into(dbias);
}

void mha_forward_flash(const AttentionDims& d, const float* q, const float* k,
                       const float* v, const float* pair_bias,
                       const float* mask, float* out, AttentionContext* ctx,
                       int64_t k_tile) {
  SF_TRACE_SPAN_ID("kernel", "mha_fwd_flash", num_threads());
  SF_CHECK(d.head_dim > 0);
  SF_CHECK(k_tile > 0);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.head_dim));
  if (ctx) ctx->lse.assign(d.batch * d.heads * d.q_len, 0.0f);

  parallel_for(0, d.batch * d.heads, 1, [&](int64_t bh0, int64_t bh1) {
    std::vector<float> tile_logits(k_tile);
    for (int64_t bh = bh0; bh < bh1; ++bh) {
      const int64_t b = bh / d.heads;
      const int64_t h = bh % d.heads;
      const float* qb = q + (bh * d.q_len) * d.head_dim;
      const float* kb = k + (bh * d.k_len) * d.head_dim;
      const float* vb = v + (bh * d.k_len) * d.head_dim;
      const float* bias_h =
          pair_bias ? pair_bias + h * d.q_len * d.k_len : nullptr;
      const float* mask_b = mask ? mask + b * d.k_len : nullptr;
      float* ob = out + (bh * d.q_len) * d.head_dim;

      for (int64_t i = 0; i < d.q_len; ++i) {
        const float* qi = qb + i * d.head_dim;
        float* oi = ob + i * d.head_dim;
        const float* bias_row = bias_h ? bias_h + i * d.k_len : nullptr;
        // Online softmax state.
        float m = -INFINITY;
        float l = 0.0f;
        std::memset(oi, 0, sizeof(float) * d.head_dim);

        for (int64_t j0 = 0; j0 < d.k_len; j0 += k_tile) {
          int64_t j1 = std::min(j0 + k_tile, d.k_len);
          // Tile logits: QK^T, bias and mask fused in one sweep.
          float tile_max = -INFINITY;
          for (int64_t j = j0; j < j1; ++j) {
            float s = scale * dot(qi, kb + j * d.head_dim, d.head_dim);
            if (bias_row) s += bias_row[j];
            if (mask_b) s += mask_b[j];
            tile_logits[j - j0] = s;
            tile_max = std::max(tile_max, s);
          }
          float m_new = std::max(m, tile_max);
          // Rescale previous accumulators.
          float correction = (m == -INFINITY) ? 0.0f : std::exp(m - m_new);
          l *= correction;
          simd::ops().scale_f32(oi, correction, d.head_dim);
          // Accumulate tile.
          for (int64_t j = j0; j < j1; ++j) {
            float p = std::exp(tile_logits[j - j0] - m_new);
            l += p;
            simd::ops().axpy_f32(p, vb + j * d.head_dim, oi, d.head_dim);
          }
          m = m_new;
        }
        float inv_l = (l > 0.0f) ? 1.0f / l : 0.0f;
        simd::ops().scale_f32(oi, inv_l, d.head_dim);
        if (ctx) ctx->lse[bh * d.q_len + i] = m + std::log(std::max(l, 1e-30f));
      }
    }
  });
}

void mha_backward_flash(const AttentionDims& d, const float* q, const float* k,
                        const float* v, const float* pair_bias,
                        const float* mask, const float* out, const float* dout,
                        const AttentionContext& ctx, float* dq, float* dk,
                        float* dv, float* dbias, int64_t k_tile) {
  SF_TRACE_SPAN_ID("kernel", "mha_bwd_flash", num_threads());
  const float scale = 1.0f / std::sqrt(static_cast<float>(d.head_dim));
  SF_CHECK(static_cast<int64_t>(ctx.lse.size()) == d.batch * d.heads * d.q_len)
      << "flash backward requires lse saved by flash forward";

  std::memset(dq, 0, sizeof(float) * d.qkv_numel(true));
  std::memset(dk, 0, sizeof(float) * d.qkv_numel(false));
  std::memset(dv, 0, sizeof(float) * d.qkv_numel(false));

  const int64_t items = d.batch * d.heads;
  const int64_t n_chunks = detail::chunk_count(items, 1);
  BiasPartials partials(n_chunks, d.bias_numel(), dbias != nullptr);

  detail::run_chunks(n_chunks, [&](int64_t chunk) {
    const ChunkRange r = detail::chunk_bounds(items, n_chunks, chunk);
    float* part_dbias = partials.chunk(chunk);

    for (int64_t bh = r.begin; bh < r.end; ++bh) {
      const int64_t b = bh / d.heads;
      const int64_t h = bh % d.heads;
      const float* qb = q + (bh * d.q_len) * d.head_dim;
      const float* kb = k + (bh * d.k_len) * d.head_dim;
      const float* vb = v + (bh * d.k_len) * d.head_dim;
      const float* ob = out + (bh * d.q_len) * d.head_dim;
      const float* dob = dout + (bh * d.q_len) * d.head_dim;
      const float* bias_h =
          pair_bias ? pair_bias + h * d.q_len * d.k_len : nullptr;
      const float* mask_b = mask ? mask + b * d.k_len : nullptr;
      float* dqb = dq + (bh * d.q_len) * d.head_dim;
      float* dkb = dk + (bh * d.k_len) * d.head_dim;
      float* dvb = dv + (bh * d.k_len) * d.head_dim;
      float* dbias_h =
          part_dbias ? part_dbias + h * d.q_len * d.k_len : nullptr;

      for (int64_t i = 0; i < d.q_len; ++i) {
        const float* qi = qb + i * d.head_dim;
        const float* oi = ob + i * d.head_dim;
        const float* doi = dob + i * d.head_dim;
        float* dqi = dqb + i * d.head_dim;
        float lse = ctx.lse[bh * d.q_len + i];
        // D_i = rowsum(dO * O): the correction term of the recompute bwd.
        float delta = dot(doi, oi, d.head_dim);

        for (int64_t j0 = 0; j0 < d.k_len; j0 += k_tile) {
          int64_t j1 = std::min(j0 + k_tile, d.k_len);
          for (int64_t j = j0; j < j1; ++j) {
            const float* kj = kb + j * d.head_dim;
            const float* vj = vb + j * d.head_dim;
            // Recompute the probability from saved logsumexp.
            float s = scale * dot(qi, kj, d.head_dim);
            if (bias_h) s += bias_h[i * d.k_len + j];
            if (mask_b) s += mask_b[j];
            float p = std::exp(s - lse);
            // dV, dP, dS in one fused sweep.
            float dp = dot(doi, vj, d.head_dim);
            float ds = p * (dp - delta);
            float sds = scale * ds;
            float* dvj = dvb + j * d.head_dim;
            float* dkj = dkb + j * d.head_dim;
            const simd::Ops& o = simd::ops();
            o.axpy_f32(p, doi, dvj, d.head_dim);
            o.axpy_f32(sds, kj, dqi, d.head_dim);
            o.axpy_f32(sds, qi, dkj, d.head_dim);
            if (dbias_h) dbias_h[i * d.k_len + j] += ds;
          }
        }
      }
    }
  });
  if (dbias) partials.combine_into(dbias);
}

}  // namespace sf::kernels
