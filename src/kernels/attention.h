// Multi-Head Attention with pair bias: naive vs flash-style fused kernels.
//
// MHA is 34% of the AlphaFold step but only reaches 26% of peak in the
// OpenFold baseline (§2.2). AlphaFold's MHA variant adds a *pair bias*
// term to the logits before softmax (Fig. 6), which made stock
// FlashAttention inapplicable; ScaleFold implemented a customized
// FlashAttention-style Triton kernel fusing the bias add, softmax and both
// matmuls (§3.3.1). We reproduce both paths:
//
//   mha_*_naive:  materializes the [q_len, k_len] logits matrix per
//                 (batch, head) — the O(n^3)-memory eager baseline.
//   mha_*_flash:  tiles over keys with an online softmax (running max /
//                 running sum), never materializing logits; backward uses
//                 the FlashAttention recompute scheme from saved
//                 per-row logsumexp.
//
// Layout: q [B,H,Sq,D], k/v [B,H,Sk,D], pair bias [H,Sq,Sk] broadcast over
// B (the AlphaFold row-attention pattern: one bias from the pair
// representation shared by all MSA rows), additive mask [B,Sk] (0 keeps,
// large-negative removes), out [B,H,Sq,D].
#pragma once

#include <cstdint>
#include <vector>

namespace sf::kernels {

struct AttentionDims {
  int64_t batch = 1;
  int64_t heads = 1;
  int64_t q_len = 0;
  int64_t k_len = 0;
  int64_t head_dim = 0;

  int64_t qkv_numel(bool query) const {
    return batch * heads * (query ? q_len : k_len) * head_dim;
  }
  int64_t bias_numel() const { return heads * q_len * k_len; }
};

/// State saved by forward for the matching backward.
struct AttentionContext {
  /// Naive path: full probability tensor [B,H,Sq,Sk].
  std::vector<float> probs;
  /// Flash path: per-row logsumexp (already max-shifted) [B,H,Sq].
  std::vector<float> lse;
};

void mha_forward_naive(const AttentionDims& d, const float* q, const float* k,
                       const float* v, const float* pair_bias,
                       const float* mask, float* out, AttentionContext* ctx);

void mha_backward_naive(const AttentionDims& d, const float* q, const float* k,
                        const float* v, const float* dout,
                        const AttentionContext& ctx, float* dq, float* dk,
                        float* dv, float* dbias);

void mha_forward_flash(const AttentionDims& d, const float* q, const float* k,
                       const float* v, const float* pair_bias,
                       const float* mask, float* out, AttentionContext* ctx,
                       int64_t k_tile = 64);

void mha_backward_flash(const AttentionDims& d, const float* q, const float* k,
                        const float* v, const float* pair_bias,
                        const float* mask, const float* out, const float* dout,
                        const AttentionContext& ctx, float* dq, float* dk,
                        float* dv, float* dbias, int64_t k_tile = 64);

}  // namespace sf::kernels
