#include "kernels/bf16_kernels.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"
#include "kernels/simd_ops.h"

namespace sf::kernels {
namespace {

constexpr int64_t kEwGrain = 1 << 14;

// Chunk body shared by the serial and parallel reduce paths: the 4-way
// unrolled accumulator pattern applied to one sub-range.
float reduce_f32_range(const float* x, int64_t begin, int64_t end) {
  float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  int64_t i = begin;
  for (; i + 4 <= end; i += 4) {
    acc0 += x[i];
    acc1 += x[i + 1];
    acc2 += x[i + 2];
    acc3 += x[i + 3];
  }
  for (; i < end; ++i) acc0 += x[i];
  return acc0 + acc1 + acc2 + acc3;
}

float reduce_bf16_range(const uint16_t* xb, int64_t begin, int64_t end) {
  float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  int64_t i = begin;
  for (; i + 4 <= end; i += 4) {
    acc0 += bf16_load(xb[i]);
    acc1 += bf16_load(xb[i + 1]);
    acc2 += bf16_load(xb[i + 2]);
    acc3 += bf16_load(xb[i + 3]);
  }
  for (; i < end; ++i) acc0 += bf16_load(xb[i]);
  return acc0 + acc1 + acc2 + acc3;
}

}  // namespace

void to_bf16(const float* src, BFloat16* dst, int64_t n) {
  if (n == 0) return;
  uint16_t* db = &dst[0].bits;
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    simd::ops().to_bf16(src + b, db + b, e - b);
  });
}

void from_bf16(const BFloat16* src, float* dst, int64_t n) {
  if (n == 0) return;
  const uint16_t* sb = &src[0].bits;
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    simd::ops().from_bf16(sb + b, dst + b, e - b);
  });
}

void axpb_f32(const float* x, float* y, int64_t n, float a, float b) {
  parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
    simd::ops().axpb_f32(x + lo, y + lo, hi - lo, a, b);
  });
}

void axpb_bf16(const BFloat16* x, BFloat16* y, int64_t n, float a, float b) {
  if (n == 0) return;
  const uint16_t* xb = &x[0].bits;
  uint16_t* yb = &y[0].bits;
  parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
    simd::ops().axpb_bf16(xb + lo, yb + lo, hi - lo, a, b);
  });
}

float reduce_f32(const float* x, int64_t n) {
  // Deterministic chunked reduction: fixed chunk split (independent of
  // thread count), partials combined in chunk order.
  return parallel_reduce<float>(
      0, n, kEwGrain, 0.0f,
      [&](int64_t b, int64_t e) { return reduce_f32_range(x, b, e); },
      [](float a, float b) { return a + b; });
}

float reduce_bf16(const BFloat16* x, int64_t n) {
  if (n == 0) return 0.0f;
  const uint16_t* xb = &x[0].bits;
  return parallel_reduce<float>(
      0, n, kEwGrain, 0.0f,
      [&](int64_t b, int64_t e) { return reduce_bf16_range(xb, b, e); },
      [](float a, float b) { return a + b; });
}

void layernorm_forward_fused_bf16(const BFloat16* x, const float* gamma,
                                  const float* beta, BFloat16* y,
                                  int64_t rows, int64_t cols, float eps) {
  SF_CHECK(rows >= 0 && cols > 0);
  const int64_t grain =
      std::max<int64_t>(1, kEwGrain / std::max<int64_t>(1, cols));
  parallel_for(0, rows, grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const BFloat16* xr = x + r * cols;
      double s = 0.0, sq = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        double v = xr[c].to_float();
        s += v;
        sq += v * v;
      }
      float mean = static_cast<float>(s / cols);
      float var = static_cast<float>(sq / cols) - mean * mean;
      float rstd = 1.0f / std::sqrt(std::max(var, 0.0f) + eps);
      BFloat16* yr = y + r * cols;
      uint16_t* yb = &yr[0].bits;
      const uint16_t* xb = &xr[0].bits;
      for (int64_t c = 0; c < cols; ++c) {
        yb[c] = bf16_store_fast((bf16_load(xb[c]) - mean) * rstd * gamma[c] +
                                beta[c]);
      }
    }
  });
}

void gemm_bf16(const BFloat16* a, const BFloat16* b, float* c, int64_t m,
               int64_t k, int64_t n) {
  SF_CHECK(m >= 0 && k >= 0 && n >= 0);
  std::fill(c, c + m * n, 0.0f);
  constexpr int64_t kTileK = 128;
  // Parallel over C rows; per-row k order is ascending across tiles either
  // way, so the split leaves results unchanged.
  const int64_t grain =
      std::max<int64_t>(1, (int64_t{1} << 15) / std::max<int64_t>(1, k * n));
  const uint16_t* bb = n > 0 && k > 0 ? &b[0].bits : nullptr;
  const simd::Ops& o = simd::ops();
  parallel_for(0, m, grain, [&](int64_t i_begin, int64_t i_end) {
    for (int64_t k0 = 0; k0 < k; k0 += kTileK) {
      int64_t k1 = std::min(k0 + kTileK, k);
      for (int64_t i = i_begin; i < i_end; ++i) {
        float* c_row = c + i * n;
        const BFloat16* a_row = a + i * k;
        for (int64_t kk = k0; kk < k1; ++kk) {
          // No zero-skip: a zero a_ik against a non-finite B row must
          // still produce NaN in C.
          o.axpy_bf16_f32(a_row[kk].to_float(), bb + kk * n, c_row, n);
        }
      }
    }
  });
}

}  // namespace sf::kernels
