// bf16-storage kernels (§3.4).
//
// ScaleFold's bfloat16 support yields 1.24x because the workload is
// memory-bound: half-width activations halve the bytes every kernel
// streams. These kernels store operands as BFloat16 and compute in fp32
// registers — the same structure as GPU bf16 kernels (tensor cores read
// bf16, accumulate fp32). On CPU, the traffic reduction is directly
// measurable once buffers exceed the last-level cache
// (bench_kernels_micro's Bf16 section).
#pragma once

#include <cstdint>

#include "tensor/bfloat16.h"

namespace sf::kernels {

/// Convert between storage formats.
void to_bf16(const float* src, BFloat16* dst, int64_t n);
void from_bf16(const BFloat16* src, float* dst, int64_t n);

/// Streaming triad y = a*x + b with bf16 storage (pure bandwidth probe).
void axpb_f32(const float* x, float* y, int64_t n, float a, float b);
void axpb_bf16(const BFloat16* x, BFloat16* y, int64_t n, float a, float b);

/// Read-only bandwidth probe: weighted sum of a large array. Dominant
/// traffic in most kernels is reads (activations, weights); bf16 halves it
/// and the branchless load keeps the loop vector-friendly.
float reduce_f32(const float* x, int64_t n);
float reduce_bf16(const BFloat16* x, int64_t n);

/// Fused LayerNorm forward with bf16-stored input/output, fp32 math.
void layernorm_forward_fused_bf16(const BFloat16* x, const float* gamma,
                                  const float* beta, BFloat16* y,
                                  int64_t rows, int64_t cols, float eps);

/// GEMM with bf16-stored A and B, fp32 accumulation and output.
void gemm_bf16(const BFloat16* a, const BFloat16* b, float* c, int64_t m,
               int64_t k, int64_t n);

}  // namespace sf::kernels
