#include "kernels/elementwise.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "kernels/simd_ops.h"
#include "obs/trace.h"

namespace sf::kernels {
namespace {

// Flat-chunk grain for parallel elementwise sweeps: ~16K elements per
// chunk keeps tiny tensors serial and big ones bandwidth-bound per thread.
constexpr int64_t kEwGrain = 1 << 14;

int64_t row_grain_for(int64_t cols) {
  return std::max<int64_t>(1, kEwGrain / std::max<int64_t>(1, cols));
}

// tanh-approximation GELU (the variant used by most transformer stacks).
inline float gelu_scalar(float x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  float inner = kC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float gelu_grad_scalar(float x) {
  constexpr float kC = 0.7978845608028654f;
  float x3 = x * x * x;
  float inner = kC * (x + 0.044715f * x3);
  float t = std::tanh(inner);
  float sech2 = 1.0f - t * t;
  float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * dinner;
}

inline float sigmoid_scalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void relu_forward(const float* x, float* y, int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    simd::ops().relu_fwd_f32(x + b, y + b, e - b);
  });
}

void relu_backward(const float* x, const float* dy, float* dx, int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    simd::ops().relu_bwd_f32(x + b, dy + b, dx + b, e - b);
  });
}

void gelu_forward(const float* x, float* y, int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) y[i] = gelu_scalar(x[i]);
  });
}

void gelu_backward(const float* x, const float* dy, float* dx, int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) dx[i] = dy[i] * gelu_grad_scalar(x[i]);
  });
}

void sigmoid_forward(const float* x, float* y, int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) y[i] = sigmoid_scalar(x[i]);
  });
}

void sigmoid_backward_from_output(const float* y, const float* dy, float* dx,
                                  int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) dx[i] = dy[i] * y[i] * (1.0f - y[i]);
  });
}

void bias_add(const float* x, const float* bias, float* y, int64_t rows,
              int64_t cols) {
  const simd::Ops& o = simd::ops();
  parallel_for(0, rows, row_grain_for(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      o.add_f32(x + r * cols, bias, y + r * cols, cols);
    }
  });
}

void fused_bias_gelu(const float* x, const float* bias, float* y, int64_t rows,
                     int64_t cols) {
  SF_TRACE_SPAN_ID("kernel", "fused_bias_gelu", num_threads());
  parallel_for(0, rows, row_grain_for(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      float* yr = y + r * cols;
      for (int64_t c = 0; c < cols; ++c) yr[c] = gelu_scalar(xr[c] + bias[c]);
    }
  });
}

void add_forward(const float* a, const float* b, float* y, int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t lo, int64_t hi) {
    simd::ops().add_f32(a + lo, b + lo, y + lo, hi - lo);
  });
}

void fused_glu_forward(const float* x, const float* gate, float* y,
                       int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) y[i] = sigmoid_scalar(gate[i]) * x[i];
  });
}

void fused_glu_backward(const float* x, const float* gate, const float* dy,
                        float* dx, float* dgate, int64_t n) {
  parallel_for(0, n, kEwGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      float s = sigmoid_scalar(gate[i]);
      dx[i] = dy[i] * s;
      dgate[i] = dy[i] * x[i] * s * (1.0f - s);
    }
  });
}

}  // namespace sf::kernels
