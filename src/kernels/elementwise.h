// Elementwise kernels and small fusions.
//
// The AlphaFold step launches ~150k mostly memory-bound kernels (Table 1);
// chains of elementwise ops (bias add, activation, gating, residual) are
// the bulk of them. These are the primitives the pattern fuser in
// sf::graph targets, plus hand-fused combinations used by the model.
#pragma once

#include <cstdint>

namespace sf::kernels {

// Activations (forward / backward given upstream grad and forward input).
void relu_forward(const float* x, float* y, int64_t n);
void relu_backward(const float* x, const float* dy, float* dx, int64_t n);

void gelu_forward(const float* x, float* y, int64_t n);
void gelu_backward(const float* x, const float* dy, float* dx, int64_t n);

void sigmoid_forward(const float* x, float* y, int64_t n);
/// dx from the forward *output* y (sigmoid grad is y*(1-y)).
void sigmoid_backward_from_output(const float* y, const float* dy, float* dx,
                                  int64_t n);

// Unfused pair: bias broadcast add then activation, two passes with a
// materialized intermediate (written by the caller into tmp).
void bias_add(const float* x, const float* bias, float* y, int64_t rows,
              int64_t cols);

// Fused bias + GELU: one pass, intermediate in registers.
void fused_bias_gelu(const float* x, const float* bias, float* y, int64_t rows,
                     int64_t cols);

/// y = a + b (residual add).
void add_forward(const float* a, const float* b, float* y, int64_t n);

/// Gated output: y = sigmoid(g) * x, fused. dgate/dx backward included.
void fused_glu_forward(const float* x, const float* gate, float* y, int64_t n);
void fused_glu_backward(const float* x, const float* gate, const float* dy,
                        float* dx, float* dgate, int64_t n);

}  // namespace sf::kernels
