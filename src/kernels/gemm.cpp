#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "kernels/simd_ops.h"
#include "obs/trace.h"

namespace sf::kernels {
namespace {

// M tile: rows per register-blocked sweep. AlphaFold inner dims are small
// (32..256), so this stays modest.
constexpr int64_t kTileM = 32;

// N/K tiles are derived from the measured cache geometry once per process.
// Tile sizes only change the blocking, never the per-element accumulation
// order (k ascends across tiles for every C element), so they are free to
// vary per host without breaking determinism across threads or SIMD tiers.
struct GemmTiles {
  int64_t n, k;
};
const GemmTiles& gemm_tiles() {
  static const GemmTiles t = [] {
    const auto& c = sf::simd::cache_info();
    GemmTiles g;
    // N tile: one B-panel row plus the C row slice should sit in L1 with
    // room to spare for the A operand stream.
    g.n = c.l1d_bytes >= 48 * 1024 ? 128 : 64;
    // K tile: the hot B panel (k-tile x n-tile floats) stays within ~half
    // of L2.
    g.k = std::clamp<int64_t>(c.l2_bytes / (8 * g.n), 128, 512);
    return g;
  }();
  return t;
}

// Square tile for the pack/transpose of trans_a/trans_b operands: both the
// read and the write stay within a tile that fits L1.
constexpr int64_t kTransposeTile = 32;

// Minimum multiply-accumulate work (~k*n per row) a parallel chunk should
// carry; below this the row loop stays serial.
constexpr int64_t kGemmGrainWork = 1 << 15;

// Minimum elements per chunk for the flat memory passes (beta scaling,
// operand packing).
constexpr int64_t kMemGrain = 1 << 14;

inline const float* row_ptr(const float* base, int64_t row, int64_t ld) {
  return base + row * ld;
}

int64_t row_grain(int64_t k, int64_t n) {
  return std::max<int64_t>(1, kGemmGrainWork / std::max<int64_t>(1, k * n));
}

// A[M,K] * B[K,N] over the row range [i_begin, i_end): the tiled inner
// body shared by the serial and parallel paths. Per-row accumulation walks
// k ascending across tiles, so results are independent of how the row
// range was split (determinism across thread counts).
void gemm_nn_rows(const float* a, const float* b, float* c, int64_t i_begin,
                  int64_t i_end, int64_t k, int64_t n, float alpha) {
  const simd::Ops& o = simd::ops();
  const GemmTiles& t = gemm_tiles();
  for (int64_t i0 = i_begin; i0 < i_end; i0 += kTileM) {
    int64_t i1 = std::min(i0 + kTileM, i_end);
    for (int64_t k0 = 0; k0 < k; k0 += t.k) {
      int64_t k1 = std::min(k0 + t.k, k);
      for (int64_t j0 = 0; j0 < n; j0 += t.n) {
        int64_t j1 = std::min(j0 + t.n, n);
        for (int64_t i = i0; i < i1; ++i) {
          float* c_row = c + i * n + j0;
          const float* a_row = row_ptr(a, i, k);
          for (int64_t kk = k0; kk < k1; ++kk) {
            // No zero-skip: 0 * NaN must stay NaN (and 0 * Inf NaN), so
            // every k contributes even when a_ik == 0.
            float a_ik = alpha * a_row[kk];
            o.axpy_f32(a_ik, b + kk * n + j0, c_row, j1 - j0);
          }
        }
      }
    }
  }
}

// A[M,K] * B[K,N] with both untransposed — the hot path, parallel over
// M-row blocks (each chunk owns a disjoint slice of C).
void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, float alpha) {
  parallel_for(0, m, row_grain(k, n), [&](int64_t i0, int64_t i1) {
    gemm_nn_rows(a, b, c, i0, i1, k, n, alpha);
  });
}

// Blocked out-of-place transpose: src is [rows, cols] row-major, dst
// becomes [cols, rows]. Both loops are tiled so each kTransposeTile^2
// block is read and written while hot; parallel over dst rows (disjoint
// writes). This is the packing step that turns the transposed-operand
// GEMM paths into the cache-blocked gemm_nn tiling.
void transpose_blocked(const float* src, float* dst, int64_t rows,
                       int64_t cols) {
  const int64_t grain = std::max<int64_t>(1, kMemGrain / std::max<int64_t>(
                                                             1, rows));
  parallel_for(0, cols, grain, [&](int64_t j_begin, int64_t j_end) {
    for (int64_t j0 = j_begin; j0 < j_end; j0 += kTransposeTile) {
      int64_t j1 = std::min(j0 + kTransposeTile, j_end);
      for (int64_t i0 = 0; i0 < rows; i0 += kTransposeTile) {
        int64_t i1 = std::min(i0 + kTransposeTile, rows);
        for (int64_t j = j0; j < j1; ++j) {
          float* d_row = dst + j * rows;
          for (int64_t i = i0; i < i1; ++i) d_row[i] = src[i * cols + j];
        }
      }
    }
  });
}

void scale_or_zero(float* c, int64_t numel, float beta) {
  if (beta == 0.0f) {
    parallel_for(0, numel, kMemGrain, [&](int64_t b, int64_t e) {
      std::memset(c + b, 0, sizeof(float) * (e - b));
    });
  } else if (beta != 1.0f) {
    parallel_for(0, numel, kMemGrain, [&](int64_t b, int64_t e) {
      simd::ops().scale_f32(c + b, beta, e - b);
    });
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, float alpha, float beta) {
  SF_CHECK(m >= 0 && k >= 0 && n >= 0);
  SF_TRACE_SPAN_ID("kernel", "gemm", num_threads());
  scale_or_zero(c, m * n, beta);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  // Transposed operands (every linear backward pass) are packed into
  // row-major layout once, then run through the same blocked gemm_nn
  // tiling as the forward path — replacing the former unblocked triple
  // loops. Pack cost is O(M*K) / O(K*N) memory traffic, amortized over
  // the O(M*K*N) multiply. The buffers are thread_local so repeated
  // backward GEMMs reuse one grown allocation instead of touching the
  // allocator every call.
  static thread_local std::vector<float> a_pack, b_pack;
  if (trans_a) {
    if (static_cast<int64_t>(a_pack.size()) < m * k) a_pack.resize(m * k);
    transpose_blocked(a, a_pack.data(), k, m);  // stored [K,M] -> [M,K]
    a = a_pack.data();
  }
  if (trans_b) {
    if (static_cast<int64_t>(b_pack.size()) < k * n) b_pack.resize(k * n);
    transpose_blocked(b, b_pack.data(), n, k);  // stored [N,K] -> [K,N]
    b = b_pack.data();
  }
  gemm_nn(a, b, c, m, k, n, alpha);
}

void gemm_batched(std::span<const float* const> as,
                  std::span<const float* const> bs, std::span<float* const> cs,
                  int64_t m, int64_t k, int64_t n, float alpha, float beta) {
  SF_CHECK(as.size() == bs.size());
  SF_CHECK(as.size() == cs.size());
  SF_TRACE_SPAN_ID("kernel", "gemm_batched", num_threads());
  const int64_t batch = static_cast<int64_t>(as.size());
  if (batch == 0 || m == 0 || n == 0) return;
  for (float* c : cs) scale_or_zero(c, m * n, beta);
  if (k == 0 || alpha == 0.0f) return;

  // One parallel loop over the flattened (batch, row) space: per-item AND
  // per-row-block parallelism in a single grain-controlled split, the CPU
  // analogue of launching the whole batch as one grid.
  const int64_t grain = row_grain(k, n);
  parallel_for(0, batch * m, grain, [&](int64_t begin, int64_t end) {
    int64_t r = begin;
    while (r < end) {
      const int64_t item = r / m;
      const int64_t i0 = r % m;
      const int64_t i1 = std::min<int64_t>(m, i0 + (end - r));
      gemm_nn_rows(as[item], bs[item], cs[item], i0, i1, k, n, alpha);
      r += i1 - i0;
    }
  });
}

void linear_group_separate(const float* x, int64_t m, int64_t k,
                           std::span<const float* const> weights,
                           std::span<const int64_t> out_dims,
                           std::span<float* const> outs) {
  SF_TRACE_SPAN_ID("kernel", "qkv_gemm_separate", num_threads());
  SF_CHECK(weights.size() == out_dims.size());
  SF_CHECK(weights.size() == outs.size());
  // Each call walks the whole of X again — this is the unfused baseline the
  // paper's "GEMM batching" removes.
  for (size_t g = 0; g < weights.size(); ++g) {
    gemm(x, weights[g], outs[g], m, k, out_dims[g]);
  }
}

void linear_group_batched(const float* x, int64_t m, int64_t k,
                          std::span<const float* const> weights,
                          std::span<const int64_t> out_dims,
                          std::span<float* const> outs) {
  SF_TRACE_SPAN_ID("kernel", "qkv_gemm_batched", num_threads());
  SF_CHECK(weights.size() == out_dims.size());
  SF_CHECK(weights.size() == outs.size());
  for (auto* o : outs) SF_CHECK(o != nullptr);
  int64_t n_total = 0;
  for (int64_t n : out_dims) n_total += n;
  // One logical kernel: for each tile of X rows, loop over every group's
  // weight panel while the X tile is hot in cache. X is read once per row
  // tile instead of once per group. Parallel over row tiles: every chunk
  // owns a disjoint row slice of all group outputs.
  const simd::Ops& o = simd::ops();
  parallel_for(0, m, row_grain(k, n_total), [&](int64_t r0, int64_t r1) {
    for (int64_t i0 = r0; i0 < r1; i0 += kTileM) {
      int64_t i1 = std::min(i0 + kTileM, r1);
      for (size_t g = 0; g < weights.size(); ++g) {
        int64_t n = out_dims[g];
        const float* w = weights[g];
        float* out = outs[g];
        for (int64_t i = i0; i < i1; ++i) {
          float* c_row = out + i * n;
          std::memset(c_row, 0, sizeof(float) * n);
          const float* x_row = x + i * k;
          for (int64_t kk = 0; kk < k; ++kk) {
            // No zero-skip: non-finite rows of W must propagate.
            o.axpy_f32(x_row[kk], w + kk * n, c_row, n);
          }
        }
      }
    }
  });
}

void linear_backward_input(const float* dy, const float* w, float* dx,
                           int64_t m, int64_t k, int64_t n) {
  // dX[M,K] = dY[M,N] * W[K,N]^T
  gemm(dy, w, dx, m, n, k, /*trans_a=*/false, /*trans_b=*/true);
}

void linear_backward_weight(const float* x, const float* dy, float* dw,
                            int64_t m, int64_t k, int64_t n) {
  // dW[K,N] = X[M,K]^T * dY[M,N]
  gemm(x, dy, dw, k, m, n, /*trans_a=*/true, /*trans_b=*/false);
}

}  // namespace sf::kernels
