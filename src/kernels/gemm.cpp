#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "obs/trace.h"

namespace sf::kernels {
namespace {

// Cache-blocking parameters tuned for typical L1/L2 sizes. AlphaFold inner
// dims are small (32..256), so tiles are modest.
constexpr int64_t kTileM = 32;
constexpr int64_t kTileN = 64;
constexpr int64_t kTileK = 128;

inline const float* row_ptr(const float* base, int64_t row, int64_t ld) {
  return base + row * ld;
}

// Core micro-loop: C[i,:] += a_ik * B[k,:], vectorizable by the compiler.
inline void axpy(float a_ik, const float* b_row, float* c_row, int64_t n) {
  for (int64_t j = 0; j < n; ++j) c_row[j] += a_ik * b_row[j];
}

// A[M,K] * B[K,N] with both untransposed — the hot path.
void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, float alpha) {
  for (int64_t i0 = 0; i0 < m; i0 += kTileM) {
    int64_t i1 = std::min(i0 + kTileM, m);
    for (int64_t k0 = 0; k0 < k; k0 += kTileK) {
      int64_t k1 = std::min(k0 + kTileK, k);
      for (int64_t j0 = 0; j0 < n; j0 += kTileN) {
        int64_t j1 = std::min(j0 + kTileN, n);
        for (int64_t i = i0; i < i1; ++i) {
          float* c_row = c + i * n + j0;
          const float* a_row = row_ptr(a, i, k);
          for (int64_t kk = k0; kk < k1; ++kk) {
            float a_ik = alpha * a_row[kk];
            if (a_ik != 0.0f) axpy(a_ik, b + kk * n + j0, c_row, j1 - j0);
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, float alpha, float beta) {
  SF_CHECK(m >= 0 && k >= 0 && n >= 0);
  if (beta == 0.0f) {
    std::memset(c, 0, sizeof(float) * m * n);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  if (!trans_a && !trans_b) {
    gemm_nn(a, b, c, m, k, n, alpha);
    return;
  }

  // General (transposed) paths: simple triple loop ordered for row-major
  // access of C. These are used by backward passes where one operand is
  // naturally transposed.
  auto a_at = [&](int64_t i, int64_t kk) {
    return trans_a ? a[kk * m + i] : a[i * k + kk];
  };
  auto b_at = [&](int64_t kk, int64_t j) {
    return trans_b ? b[j * k + kk] : b[kk * n + j];
  };
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      float a_ik = alpha * a_at(i, kk);
      if (a_ik == 0.0f) continue;
      float* c_row = c + i * n;
      if (!trans_b) {
        axpy(a_ik, b + kk * n, c_row, n);
      } else {
        for (int64_t j = 0; j < n; ++j) c_row[j] += a_ik * b_at(kk, j);
      }
    }
  }
}

void linear_group_separate(const float* x, int64_t m, int64_t k,
                           std::span<const float* const> weights,
                           std::span<const int64_t> out_dims,
                           std::span<float* const> outs) {
  SF_TRACE_SPAN("kernel", "qkv_gemm_separate");
  SF_CHECK(weights.size() == out_dims.size());
  SF_CHECK(weights.size() == outs.size());
  // Each call walks the whole of X again — this is the unfused baseline the
  // paper's "GEMM batching" removes.
  for (size_t g = 0; g < weights.size(); ++g) {
    gemm(x, weights[g], outs[g], m, k, out_dims[g]);
  }
}

void linear_group_batched(const float* x, int64_t m, int64_t k,
                          std::span<const float* const> weights,
                          std::span<const int64_t> out_dims,
                          std::span<float* const> outs) {
  SF_TRACE_SPAN("kernel", "qkv_gemm_batched");
  SF_CHECK(weights.size() == out_dims.size());
  SF_CHECK(weights.size() == outs.size());
  for (auto* o : outs) SF_CHECK(o != nullptr);
  // One logical kernel: for each tile of X rows, loop over every group's
  // weight panel while the X tile is hot in cache. X is read once per row
  // tile instead of once per group.
  for (int64_t i0 = 0; i0 < m; i0 += kTileM) {
    int64_t i1 = std::min(i0 + kTileM, m);
    for (size_t g = 0; g < weights.size(); ++g) {
      int64_t n = out_dims[g];
      const float* w = weights[g];
      float* out = outs[g];
      for (int64_t i = i0; i < i1; ++i) {
        float* c_row = out + i * n;
        std::memset(c_row, 0, sizeof(float) * n);
        const float* x_row = x + i * k;
        for (int64_t kk = 0; kk < k; ++kk) {
          float a_ik = x_row[kk];
          if (a_ik != 0.0f) axpy(a_ik, w + kk * n, c_row, n);
        }
      }
    }
  }
}

void linear_backward_input(const float* dy, const float* w, float* dx,
                           int64_t m, int64_t k, int64_t n) {
  // dX[M,K] = dY[M,N] * W[K,N]^T
  gemm(dy, w, dx, m, n, k, /*trans_a=*/false, /*trans_b=*/true);
}

void linear_backward_weight(const float* x, const float* dy, float* dw,
                            int64_t m, int64_t k, int64_t n) {
  // dW[K,N] = X[M,K]^T * dY[M,N]
  gemm(x, dy, dw, k, m, n, /*trans_a=*/true, /*trans_b=*/false);
}

}  // namespace sf::kernels
