// Blocked GEMM and batched-GEMM kernels.
//
// ScaleFold (§3.3.1, "GEMM Batching") observes that the four linear layers
// in front of each attention module (Q, K, V projections and the gate) are
// independent and share the same input activation; bundling them into one
// batched operation raises parallelism and, crucially, reads the shared
// input once instead of four times. We reproduce both forms:
//   - gemm():        single blocked matrix multiply
//   - gemm_grouped(): N independent gemms sharing A, executed as one fused
//                     kernel over a concatenated weight panel
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sf::kernels {

/// C[M,N] (+)= alpha * op(A) * op(B), row-major.
/// op(A) is A[M,K] or A^T with A stored [K,M] when trans_a.
/// beta == 0 overwrites C, beta == 1 accumulates.
/// Transposed operands are packed (blocked transpose) into the same
/// cache-blocked tiling as the untransposed path; all paths are parallel
/// over M-row blocks via sf::parallel_for and bitwise-deterministic across
/// thread counts.
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a = false, bool trans_b = false,
          float alpha = 1.0f, float beta = 0.0f);

/// Batched GEMM: C[i][M,N] (+)= alpha * A[i][M,K] * B[i][K,N] for every
/// item of the pointer lists (all items share the same dims — the cuBLAS
/// strided-batch analogue). Parallel over the flattened (item, row) space
/// so both per-batch-item and intra-item row parallelism are exploited.
void gemm_batched(std::span<const float* const> as,
                  std::span<const float* const> bs, std::span<float* const> cs,
                  int64_t m, int64_t k, int64_t n, float alpha = 1.0f,
                  float beta = 0.0f);

/// Unbatched path for the pre-attention projections: four separate gemm
/// calls, each re-reading the shared input X[M,K]. Weight i is W[i][K,N_i];
/// output i is Y[i][M,N_i].
void linear_group_separate(const float* x, int64_t m, int64_t k,
                           std::span<const float* const> weights,
                           std::span<const int64_t> out_dims,
                           std::span<float* const> outs);

/// Batched path: logically one kernel over the concatenated weight panel
/// W_cat[K, sum(N_i)], reading X once per cache tile. Outputs are written
/// into the caller's separate buffers, matching linear_group_separate.
void linear_group_batched(const float* x, int64_t m, int64_t k,
                          std::span<const float* const> weights,
                          std::span<const int64_t> out_dims,
                          std::span<float* const> outs);

/// dX[M,K] = dY[M,N] * W^T (W stored [K,N]); dW[K,N] = X^T * dY.
/// Convenience wrappers used by the autograd linear node.
void linear_backward_input(const float* dy, const float* w, float* dx,
                           int64_t m, int64_t k, int64_t n);
void linear_backward_weight(const float* x, const float* dy, float* dw,
                            int64_t m, int64_t k, int64_t n);

}  // namespace sf::kernels
