#include "kernels/layernorm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "kernels/simd_ops.h"
#include "obs/trace.h"

namespace sf::kernels {
namespace {

/// Row grain for the parallel fused kernels: enough rows per chunk that a
/// chunk moves ~64KB, so tiny activations stay serial.
int64_t ln_row_grain(int64_t cols) {
  return std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(1, cols));
}

}  // namespace

void layernorm_forward_naive(const float* x, const float* gamma,
                             const float* beta, float* y, int64_t rows,
                             int64_t cols, float eps, LayerNormStats* stats) {
  SF_TRACE_SPAN("kernel", "ln_fwd_naive");
  SF_CHECK(rows >= 0 && cols > 0);
  std::vector<float> mean(rows), var(rows);
  std::vector<float> centered(static_cast<size_t>(rows) * cols);

  // Pass 1: mean (separate reduction kernel).
  for (int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const float* xr = x + r * cols;
    for (int64_t c = 0; c < cols; ++c) acc += xr[c];
    mean[r] = static_cast<float>(acc / cols);
  }
  // Pass 2: centered temporary (elementwise sub kernel, materialized).
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* cr = centered.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) cr[c] = xr[c] - mean[r];
  }
  // Pass 3: variance from the temporary (second reduction kernel).
  for (int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const float* cr = centered.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) acc += static_cast<double>(cr[c]) * cr[c];
    var[r] = static_cast<float>(acc / cols);
  }
  // Pass 4: normalize + affine (two more elementwise kernels fused here
  // only for buffer economy; reads the temporary again).
  for (int64_t r = 0; r < rows; ++r) {
    float rstd = 1.0f / std::sqrt(var[r] + eps);
    const float* cr = centered.data() + r * cols;
    float* yr = y + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      yr[c] = cr[c] * rstd * gamma[c] + beta[c];
    }
    if (stats) {
      stats->mean.resize(rows);
      stats->rstd.resize(rows);
      stats->mean[r] = mean[r];
      stats->rstd[r] = rstd;
    }
  }
  if (stats && rows == 0) {
    stats->mean.clear();
    stats->rstd.clear();
  }
}

void layernorm_forward_fused(const float* x, const float* gamma,
                             const float* beta, float* y, int64_t rows,
                             int64_t cols, float eps, LayerNormStats* stats,
                             int64_t rows_per_tile) {
  SF_TRACE_SPAN_ID("kernel", "ln_fwd_fused", num_threads());
  SF_CHECK(rows >= 0 && cols > 0);
  SF_CHECK(rows_per_tile > 0);
  if (stats) {
    stats->mean.assign(rows, 0.0f);
    stats->rstd.assign(rows, 0.0f);
  }
  // Parallel over row tiles: every row is independent (disjoint writes to
  // y and stats), so the split cannot change results.
  const int64_t grain = std::max(rows_per_tile, ln_row_grain(cols));
  const simd::Ops& o = simd::ops();
  parallel_for(0, rows, grain, [&](int64_t c0, int64_t c1) {
  for (int64_t r0 = c0; r0 < c1; r0 += rows_per_tile) {
    int64_t r1 = std::min(r0 + rows_per_tile, c1);
    // Single pass over each row: sum and sum-of-squares together (4-lane
    // fixed-order double reduction), no temporaries. The tile loop
    // mirrors one thread block handling multiple small rows.
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      double s = 0.0, sq = 0.0;
      o.sum_sumsq_f32(xr, cols, &s, &sq);
      float mean = static_cast<float>(s / cols);
      float var = static_cast<float>(sq / cols) - mean * mean;
      float rstd = 1.0f / std::sqrt(std::max(var, 0.0f) + eps);
      o.ln_fwd_row(xr, gamma, beta, mean, rstd, y + r * cols, cols);
      if (stats) {
        stats->mean[r] = mean;
        stats->rstd[r] = rstd;
      }
    }
  }
  });
}

void layernorm_backward_naive(const float* x, const float* gamma,
                              const float* dy, const LayerNormStats& stats,
                              float* dx, float* dgamma, float* dbeta,
                              int64_t rows, int64_t cols) {
  SF_TRACE_SPAN("kernel", "ln_bwd_naive");
  SF_CHECK(static_cast<int64_t>(stats.mean.size()) == rows);
  std::memset(dgamma, 0, sizeof(float) * cols);
  std::memset(dbeta, 0, sizeof(float) * cols);

  // Materialized xhat temporary (extra kernel + extra memory traffic).
  std::vector<float> xhat(static_cast<size_t>(rows) * cols);
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* hr = xhat.data() + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      hr[c] = (xr[c] - stats.mean[r]) * stats.rstd[r];
    }
  }
  // dgamma/dbeta: row-at-a-time accumulation into the shared column buffers
  // (the serial analogue of per-block atomicAdd into global memory).
  for (int64_t r = 0; r < rows; ++r) {
    const float* hr = xhat.data() + r * cols;
    const float* gr = dy + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      dgamma[c] += gr[c] * hr[c];
      dbeta[c] += gr[c];
    }
  }
  // dx in three more passes: two reductions then the combine.
  std::vector<float> sum_g(rows, 0.0f), sum_gh(rows, 0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    const float* hr = xhat.data() + r * cols;
    const float* gr = dy + r * cols;
    double sg = 0.0, sgh = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      double g = static_cast<double>(gr[c]) * gamma[c];
      sg += g;
      sgh += g * hr[c];
    }
    sum_g[r] = static_cast<float>(sg);
    sum_gh[r] = static_cast<float>(sgh);
  }
  for (int64_t r = 0; r < rows; ++r) {
    const float* hr = xhat.data() + r * cols;
    const float* gr = dy + r * cols;
    float* dr = dx + r * cols;
    float inv_n = 1.0f / static_cast<float>(cols);
    for (int64_t c = 0; c < cols; ++c) {
      float g = gr[c] * gamma[c];
      dr[c] = stats.rstd[r] * (g - inv_n * sum_g[r] - hr[c] * inv_n * sum_gh[r]);
    }
  }
}

void layernorm_backward_fused(const float* x, const float* gamma,
                              const float* dy, const LayerNormStats& stats,
                              float* dx, float* dgamma, float* dbeta,
                              int64_t rows, int64_t cols,
                              int64_t rows_per_tile) {
  SF_TRACE_SPAN_ID("kernel", "ln_bwd_fused", num_threads());
  SF_CHECK(static_cast<int64_t>(stats.mean.size()) == rows);
  SF_CHECK(rows_per_tile > 0);
  int64_t num_tiles = rows == 0 ? 0 : (rows + rows_per_tile - 1) / rows_per_tile;

  // Step 1 of the two-step reduction: each tile reduces its rows into a
  // private partial buffer (no cross-tile contention — the design that
  // replaces atomics in the Triton kernel). Tiles are keyed to
  // rows_per_tile, never the thread count, so the partial layout — and
  // the step-2 summation order — is identical at every SF_NUM_THREADS.
  std::vector<float> part_dgamma(static_cast<size_t>(num_tiles) * cols, 0.0f);
  std::vector<float> part_dbeta(static_cast<size_t>(num_tiles) * cols, 0.0f);

  // Parallel over tiles: each tile owns its dx rows and its partial rows.
  const simd::Ops& o = simd::ops();
  parallel_for(0, num_tiles, 1, [&](int64_t t0, int64_t t1) {
  for (int64_t t = t0; t < t1; ++t) {
    int64_t r0 = t * rows_per_tile;
    int64_t r1 = std::min(r0 + rows_per_tile, rows);
    float* pg = part_dgamma.data() + t * cols;
    float* pb = part_dbeta.data() + t * cols;
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      const float* gr = dy + r * cols;
      float mean = stats.mean[r];
      float rstd = stats.rstd[r];
      // Single fused pass: xhat recomputed in registers, both row
      // reductions (4-lane fixed-order doubles) and the partial column
      // reductions in one read.
      double sg = 0.0, sgh = 0.0;
      o.ln_bwd_row_reduce(xr, gr, gamma, mean, rstd, pg, pb, cols, &sg,
                          &sgh);
      float inv_n = 1.0f / static_cast<float>(cols);
      float fsg = static_cast<float>(sg), fsgh = static_cast<float>(sgh);
      o.ln_bwd_row_dx(xr, gr, gamma, mean, rstd, inv_n * fsg, fsgh, inv_n,
                      dx + r * cols, cols);
    }
  }
  });
  // Step 2: column-reduce the partials. Parallel over columns; each
  // column sums tiles in ascending order (fixed reduction tree).
  std::memset(dgamma, 0, sizeof(float) * cols);
  std::memset(dbeta, 0, sizeof(float) * cols);
  parallel_for(0, cols, 1 << 10, [&](int64_t c0, int64_t c1) {
    for (int64_t t = 0; t < num_tiles; ++t) {
      const float* pg = part_dgamma.data() + t * cols;
      const float* pb = part_dbeta.data() + t * cols;
      for (int64_t c = c0; c < c1; ++c) {
        dgamma[c] += pg[c];
        dbeta[c] += pb[c];
      }
    }
  });
}

}  // namespace sf::kernels
