// LayerNorm kernels: naive multi-pass vs ScaleFold's fused design.
//
// LayerNorm is 14% of the AlphaFold step and reaches only 10% of peak in
// the OpenFold baseline (§2.2) because typical normalized dims are small
// (128/256) and DAP shrinks them further. ScaleFold's Triton kernel
// (§3.3.1):
//   1. lets each thread block process MULTIPLE input rows (we mirror this
//      with a rows-per-tile parameter that amortizes loop overhead and
//      keeps several rows streaming),
//   2. computes the normalization statistics in a single pass
//      (sum/sum-of-squares fused into one read) instead of separate
//      mean and variance passes,
//   3. computes weight/bias gradients with a two-step reduction — per-tile
//      partials into an intermediate buffer, then a column reduction —
//      avoiding atomic accumulation.
//
// The naive variants intentionally mirror the unfused PyTorch op sequence
// (separate mean / variance / normalize / affine kernels with materialized
// temporaries) so A/B benchmarks measure exactly the fusion win.
#pragma once

#include <cstdint>
#include <vector>

namespace sf::kernels {

/// Saved statistics from the forward pass, consumed by backward.
struct LayerNormStats {
  std::vector<float> mean;     ///< per-row mean
  std::vector<float> rstd;     ///< per-row 1/sqrt(var + eps)
};

/// Naive forward: four separate passes with temporaries, emulating the
/// unfused eager-mode op sequence (mean, centered copy, variance,
/// normalize+affine).
void layernorm_forward_naive(const float* x, const float* gamma,
                             const float* beta, float* y, int64_t rows,
                             int64_t cols, float eps, LayerNormStats* stats);

/// Fused forward: one read pass computing both moments, one write pass
/// applying the affine transform; processes `rows_per_tile` rows per outer
/// iteration (thread-block analogue).
void layernorm_forward_fused(const float* x, const float* gamma,
                             const float* beta, float* y, int64_t rows,
                             int64_t cols, float eps, LayerNormStats* stats,
                             int64_t rows_per_tile = 4);

/// Naive backward: recomputes per-row reductions in separate passes and
/// accumulates dgamma/dbeta column-wise one row at a time (the
/// atomic-accumulation analogue).
void layernorm_backward_naive(const float* x, const float* gamma,
                              const float* dy, const LayerNormStats& stats,
                              float* dx, float* dgamma, float* dbeta,
                              int64_t rows, int64_t cols);

/// Fused backward: single pass per row for dx; dgamma/dbeta via two-step
/// reduction (per-tile partial buffers, then a column reduce).
void layernorm_backward_fused(const float* x, const float* gamma,
                              const float* dy, const LayerNormStats& stats,
                              float* dx, float* dgamma, float* dbeta,
                              int64_t rows, int64_t cols,
                              int64_t rows_per_tile = 32);

}  // namespace sf::kernels
