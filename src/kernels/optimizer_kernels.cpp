#include "kernels/optimizer_kernels.h"

#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/parallel.h"
#include "kernels/simd_ops.h"
#include "obs/trace.h"

namespace sf::kernels {

void adam_step_unfused(const ParamChunk& c, const AdamHyper& h, int64_t step) {
  SF_CHECK(step >= 1);
  const float b1 = h.beta1, b2 = h.beta2;
  const int64_t n = c.n;

  // Pass 1: weight decay folded into grad (separate kernel).
  std::vector<float> g(c.grad, c.grad + n);
  if (h.weight_decay != 0.0f) {
    for (int64_t i = 0; i < n; ++i) g[i] += h.weight_decay * c.param[i];
  }
  // Pass 2: m = b1*m (scale kernel).
  for (int64_t i = 0; i < n; ++i) c.exp_avg[i] *= b1;
  // Pass 3: m += (1-b1)*g (axpy kernel).
  for (int64_t i = 0; i < n; ++i) c.exp_avg[i] += (1.0f - b1) * g[i];
  // Pass 4: v = b2*v.
  for (int64_t i = 0; i < n; ++i) c.exp_avg_sq[i] *= b2;
  // Pass 5: v += (1-b2)*g*g (needs a materialized g^2 temporary in eager).
  std::vector<float> g2(n);
  for (int64_t i = 0; i < n; ++i) g2[i] = g[i] * g[i];
  for (int64_t i = 0; i < n; ++i) c.exp_avg_sq[i] += (1.0f - b2) * g2[i];
  // Pass 6/7: bias-corrected temporaries.
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step));
  std::vector<float> mhat(n), vhat(n);
  for (int64_t i = 0; i < n; ++i) mhat[i] = c.exp_avg[i] / bc1;
  for (int64_t i = 0; i < n; ++i) vhat[i] = c.exp_avg_sq[i] / bc2;
  // Pass 8: denom = sqrt(vhat) + eps.
  std::vector<float> denom(n);
  for (int64_t i = 0; i < n; ++i) denom[i] = std::sqrt(vhat[i]) + h.eps;
  // Pass 9: param -= lr * mhat / denom.
  for (int64_t i = 0; i < n; ++i) c.param[i] -= h.lr * mhat[i] / denom[i];
}

void swa_update_unfused(float* swa, const float* param, int64_t n,
                        float decay) {
  // Two separate passes, as in eager swa_utils (mul_ then add_).
  for (int64_t i = 0; i < n; ++i) swa[i] *= decay;
  for (int64_t i = 0; i < n; ++i) swa[i] += (1.0f - decay) * param[i];
}

float grad_norm_concat(std::span<const ParamChunk> chunks) {
  SF_TRACE_SPAN("kernel", "grad_norm_concat");
  int64_t total = 0;
  for (const auto& c : chunks) total += c.n;
  // The naive path really allocates and copies (this is the overhead the
  // bucketed version removes).
  std::vector<float> flat(total);
  int64_t off = 0;
  for (const auto& c : chunks) {
    std::memcpy(flat.data() + off, c.grad, sizeof(float) * c.n);
    off += c.n;
  }
  double acc = 0.0;
  for (int64_t i = 0; i < total; ++i) {
    acc += static_cast<double>(flat[i]) * flat[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

void grad_scale_per_tensor(std::span<ParamChunk> chunks, float scale) {
  for (auto& c : chunks) {
    for (int64_t i = 0; i < c.n; ++i) c.grad[i] *= scale;
  }
}

void fused_adam_swa_step(std::span<const ParamChunk> chunks,
                         const AdamHyper& h, int64_t step, float swa_decay,
                         float grad_scale) {
  SF_TRACE_SPAN_ID("kernel", "fused_adam_swa", num_threads());
  SF_CHECK(step >= 1);
  const float b1 = h.beta1, b2 = h.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step));

  simd::AdamConsts k;
  k.grad_scale = grad_scale;
  k.weight_decay = h.weight_decay;
  k.beta1 = b1;
  k.beta2 = b2;
  k.one_minus_beta1 = 1.0f - b1;
  k.one_minus_beta2 = 1.0f - b2;
  k.inv_bc1 = 1.0f / bc1;
  k.inv_bc2 = 1.0f / bc2;
  k.lr = h.lr;
  k.eps = h.eps;
  k.swa_decay = swa_decay;

  // One sweep over the packed pointer list; every intermediate lives in
  // registers. Contiguous sub-regions per chunk give the data locality the
  // paper's thread-block mapping provides. Parallel over the flat chunk
  // list (the multi-tensor grid dimension): every element update is
  // independent, so any split of the list is bitwise-equivalent.
  const simd::Ops& o = simd::ops();
  parallel_for(
      0, static_cast<int64_t>(chunks.size()), 1,
      [&](int64_t c0, int64_t c1) {
        for (int64_t ci = c0; ci < c1; ++ci) {
          const auto& c = chunks[ci];
          o.adam_swa_chunk(c.param, c.grad, c.exp_avg, c.exp_avg_sq, c.swa,
                           c.n, k);
        }
      });
}

void grad_sq_sum_partials(std::span<const float* const> buckets,
                          std::span<const int64_t> sizes, double* out) {
  SF_CHECK(buckets.size() == sizes.size());
  // Parallel over buckets; each bucket's sum-of-squares is accumulated
  // serially within the bucket, so every partial depends only on that
  // bucket's elements — bitwise-reproducible at any thread count, and
  // identical whether the buckets are normed together (blocking path) or
  // one at a time as their reductions complete (overlapped path).
  const simd::Ops& o = simd::ops();
  parallel_for(0, static_cast<int64_t>(buckets.size()), 1,
               [&](int64_t b0, int64_t b1) {
                 for (int64_t b = b0; b < b1; ++b) {
                   out[b] = o.sumsq_f32(buckets[b], sizes[b]);
                 }
               });
}

float grad_norm_from_partials(std::span<const double> partials) {
  double acc = 0.0;
  for (double p : partials) acc += p;
  return static_cast<float>(std::sqrt(acc));
}

float grad_norm_bucketed(std::span<const float* const> buckets,
                         std::span<const int64_t> sizes) {
  SF_TRACE_SPAN_ID("kernel", "grad_norm_bucketed", num_threads());
  std::vector<double> partials(buckets.size());
  grad_sq_sum_partials(buckets, sizes, partials.data());
  return grad_norm_from_partials(partials);
}

float clip_scale(float norm, float max_norm) {
  if (max_norm <= 0.0f || norm <= max_norm) return 1.0f;
  return max_norm / (norm + 1e-6f);
}

}  // namespace sf::kernels
