// Optimizer kernels: per-tensor eager Adam/SWA/clip vs ScaleFold's fused
// multi-tensor kernel.
//
// §2.2 reports weight update at 6% of step time running at 10% of peak,
// SWA at 6% running below 5%, and gradient clipping at 3% running below 1%
// — all victims of thousands of tiny kernel launches over >4000 parameter
// tensors. §3.3.1 fuses Adam + SWA + adjacent elementwise math into one
// kernel, packs all parameter/state pointers into a single buffer so one
// call covers every tensor, and reorders the gradient-norm computation
// onto the pre-packed communication buckets so clipping costs tens of
// kernels instead of thousands and hides behind communication.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sf::kernels {

struct AdamHyper {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// One parameter tensor with its optimizer state. In the fused path a span
/// of these is the "pointer-packed buffer" handed to the single kernel.
struct ParamChunk {
  float* param = nullptr;
  float* grad = nullptr;
  float* exp_avg = nullptr;     ///< Adam m
  float* exp_avg_sq = nullptr;  ///< Adam v
  float* swa = nullptr;         ///< running average (may be null: SWA off)
  int64_t n = 0;
};

// ---------------------------------------------------------------------------
// Unfused baseline: each logical elementwise op is a separate pass with
// materialized temporaries, invoked per tensor (the eager-mode kernel storm).
// ---------------------------------------------------------------------------

/// Adam for one tensor, multiple passes (m update, v update, bias-corrected
/// mhat/vhat temporaries, param update, weight decay pass).
void adam_step_unfused(const ParamChunk& c, const AdamHyper& h, int64_t step);

/// SWA running-average update for one tensor: swa = decay*swa+(1-decay)*p,
/// executed as two separate scale/axpy passes like stock swa_utils.
void swa_update_unfused(float* swa, const float* param, int64_t n, float decay);

/// Naive global grad norm: concatenates every gradient into a fresh buffer
/// (one copy kernel per tensor), then reduces it.
float grad_norm_concat(std::span<const ParamChunk> chunks);

/// Naive clip application: one scale kernel per tensor.
void grad_scale_per_tensor(std::span<ParamChunk> chunks, float scale);

// ---------------------------------------------------------------------------
// Fused multi-tensor path.
// ---------------------------------------------------------------------------

/// Single logical kernel: for every chunk in the packed list, applies
/// grad-scale (clip), Adam and SWA per element with all intermediates in
/// registers — one read of grad, one read-modify-write of param/m/v/swa.
void fused_adam_swa_step(std::span<const ParamChunk> chunks,
                         const AdamHyper& h, int64_t step, float swa_decay,
                         float grad_scale = 1.0f);

/// Per-bucket sum-of-squares partials (double precision), one per bucket,
/// each accumulated serially in element order. These are exactly the
/// partials grad_norm_bucketed combines, exposed so the overlapped DDP
/// path can compute a bucket's partial the moment its reduction lands
/// (the paper's gradient-clip overlap) and still produce a norm that is
/// bitwise identical to the serial pass.
void grad_sq_sum_partials(std::span<const float* const> buckets,
                          std::span<const int64_t> sizes, double* out);

/// Combine per-bucket partials in bucket order and return the L2 norm —
/// the reduction tail of grad_norm_bucketed.
float grad_norm_from_partials(std::span<const double> partials);

/// Grad norm over pre-packed flat buckets (the DDP gradient buffers):
/// a single pass, no copies. Returns the global L2 norm. Equivalent to
/// grad_sq_sum_partials + grad_norm_from_partials.
float grad_norm_bucketed(std::span<const float* const> buckets,
                         std::span<const int64_t> sizes);

/// Compute the clip scale for a given norm/threshold (1.0 when in budget).
float clip_scale(float norm, float max_norm);

}  // namespace sf::kernels
