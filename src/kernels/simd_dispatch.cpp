// Runtime dispatch from sf::simd tier selection to the per-tier op
// tables. A tier's table is only reachable after common/simd.cpp has
// confirmed both that its TU was compiled in and that the running CPU
// supports the ISA, so no illegal instruction can execute.
#include "kernels/simd_ops.h"

namespace sf::kernels::simd {

extern const Ops kScalarOps;
#if defined(SF_SIMD_BUILD_SSE41)
extern const Ops kSseOps;
#endif
#if defined(SF_SIMD_BUILD_AVX2)
extern const Ops kAvx2Ops;
#endif
#if defined(SF_SIMD_BUILD_NEON)
extern const Ops kNeonOps;
#endif

const Ops* tier_ops(sf::simd::Tier t) {
  using sf::simd::Tier;
  if (!sf::simd::tier_available(t)) return nullptr;
  switch (t) {
    case Tier::kScalar:
      return &kScalarOps;
    case Tier::kSSE:
#if defined(SF_SIMD_BUILD_SSE41)
      return &kSseOps;
#else
      return nullptr;
#endif
    case Tier::kAVX2:
#if defined(SF_SIMD_BUILD_AVX2)
      return &kAvx2Ops;
#else
      return nullptr;
#endif
    case Tier::kNEON:
#if defined(SF_SIMD_BUILD_NEON)
      return &kNeonOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const Ops& ops() {
  const Ops* t = tier_ops(sf::simd::active_tier());
  return t ? *t : kScalarOps;
}

}  // namespace sf::kernels::simd
