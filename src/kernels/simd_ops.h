// Per-tier vectorized micro-kernel tables (DESIGN.md §12).
//
// Every hot inner loop in src/kernels funnels through one of these ops.
// Each SIMD tier (scalar / SSE4.1 / AVX2 / NEON) provides one `Ops` table,
// built by instantiating the same templated kernel bodies
// (simd_ops_impl.h) over a tier-specific vector backend, so all tiers
// execute the identical IEEE operation DAG:
//
//   * elementwise ops keep the per-element expression order of the
//     original scalar kernels;
//   * reductions use a fixed virtual-lane pattern — 8 float lanes or
//     4 double lanes, lane l accumulating elements i ≡ l (mod width),
//     tail elements continuing the pattern, lanes combined in ascending
//     order — in every tier (the scalar tier simulates the lanes);
//   * no FMA anywhere (and the build passes -ffp-contract=off).
//
// Output is therefore bitwise identical across tiers; `SF_SIMD=scalar`
// is the differential-testing escape hatch, not a different numeric mode.
#pragma once

#include <cstdint>

#include "common/simd.h"

namespace sf::kernels::simd {

/// Scalar constants of the fused Adam+SWA element update, precomputed by
/// the caller (fused_adam_swa_step) so every tier broadcasts identical
/// values.
struct AdamConsts {
  float grad_scale = 1.0f;
  float weight_decay = 0.0f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float one_minus_beta1 = 0.1f;
  float one_minus_beta2 = 0.001f;
  float inv_bc1 = 1.0f;
  float inv_bc2 = 1.0f;
  float lr = 1e-3f;
  float eps = 1e-8f;
  float swa_decay = 0.0f;
};

struct Ops {
  const char* name;  ///< tier_name() of the backing tier

  /// y[i] += a * x[i]
  void (*axpy_f32)(float a, const float* x, float* y, int64_t n);
  /// y[i] += a * bf16_load(x[i])
  void (*axpy_bf16_f32)(float a, const uint16_t* x, float* y, int64_t n);
  /// y[i] *= a
  void (*scale_f32)(float* y, float a, int64_t n);
  /// y[i] = a[i] + b[i]
  void (*add_f32)(const float* a, const float* b, float* y, int64_t n);
  /// y[i] = a * x[i] + b
  void (*axpb_f32)(const float* x, float* y, int64_t n, float a, float b);
  /// y[i] = x[i] > 0 ? x[i] : 0
  void (*relu_fwd_f32)(const float* x, float* y, int64_t n);
  /// dx[i] = x[i] > 0 ? dy[i] : 0
  void (*relu_bwd_f32)(const float* x, const float* dy, float* dx, int64_t n);

  /// 8-lane fixed-order dot product.
  float (*dot_f32)(const float* x, const float* y, int64_t n);
  /// 4-double-lane fixed-order sum and sum-of-squares of a float row.
  void (*sum_sumsq_f32)(const float* x, int64_t n, double* s, double* sq);
  /// 4-double-lane fixed-order sum of squares (grad-norm partials).
  double (*sumsq_f32)(const float* x, int64_t n);

  /// y[c] = (x[c] - mean) * rstd * gamma[c] + beta[c]
  void (*ln_fwd_row)(const float* x, const float* gamma, const float* beta,
                     float mean, float rstd, float* y, int64_t n);
  /// Fused LayerNorm backward row pass 1: accumulates the per-row double
  /// reductions sg/sgh (4-lane pattern) and the per-column float partials
  /// pg[c] += dy[c]*xhat[c], pb[c] += dy[c].
  void (*ln_bwd_row_reduce)(const float* x, const float* dy,
                            const float* gamma, float mean, float rstd,
                            float* pg, float* pb, int64_t n, double* sg,
                            double* sgh);
  /// Fused LayerNorm backward row pass 2:
  /// dx[c] = rstd * (dy[c]*gamma[c] - t1 - xhat[c]*inv_n*fsgh), where
  /// t1 = inv_n*fsg is precomputed by the caller.
  void (*ln_bwd_row_dx)(const float* x, const float* dy, const float* gamma,
                        float mean, float rstd, float t1, float fsgh,
                        float inv_n, float* dx, int64_t n);

  /// Fused Adam+SWA over one contiguous chunk; `s` may be null (no SWA).
  void (*adam_swa_chunk)(float* p, float* g, float* m, float* v, float* s,
                         int64_t n, const AdamConsts& k);

  /// Round-to-nearest-even f32 -> bf16 with the NaN guard of
  /// BFloat16::round_from_float.
  void (*to_bf16)(const float* x, uint16_t* y, int64_t n);
  /// bf16 -> f32 widening load.
  void (*from_bf16)(const uint16_t* x, float* y, int64_t n);
  /// y[i] = bf16_store_fast(a * bf16_load(x[i]) + b)
  void (*axpb_bf16)(const uint16_t* x, uint16_t* y, int64_t n, float a,
                    float b);
};

/// Table for tier `t`, or nullptr when that tier is not available in this
/// process (not compiled in, or the CPU lacks the ISA).
const Ops* tier_ops(sf::simd::Tier t);

/// Table for sf::simd::active_tier(); never null (scalar fallback).
const Ops& ops();

}  // namespace sf::kernels::simd
