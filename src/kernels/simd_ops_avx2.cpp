// AVX2 SIMD backend: native 8-float __m256 / 4-double __m256d vectors.
// Built with -mavx2 (the only TU that is); dispatched only after
// __builtin_cpu_supports("avx2"). No FMA: mul and add stay separate so
// rounding matches the scalar and SSE tiers bit for bit.
#include <cstdint>

#if defined(SF_SIMD_BUILD_AVX2)

#include <immintrin.h>

#include "kernels/simd_ops_impl.h"

namespace sf::kernels::simd {
namespace {

struct Avx2Backend {
  static constexpr const char* kName = "avx2";

  using VF = __m256;
  using VD = __m256d;

  static VF load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, VF a) { _mm256_storeu_ps(p, a); }
  static VF set1(float x) { return _mm256_set1_ps(x); }
  static VF zero() { return _mm256_setzero_ps(); }
  static VF add(VF a, VF b) { return _mm256_add_ps(a, b); }
  static VF sub(VF a, VF b) { return _mm256_sub_ps(a, b); }
  static VF mul(VF a, VF b) { return _mm256_mul_ps(a, b); }
  static VF div(VF a, VF b) { return _mm256_div_ps(a, b); }
  static VF sqrt(VF a) { return _mm256_sqrt_ps(a); }
  static VF select_gtz(VF x, VF a) {
    // Ordered-quiet GT: NaN lanes compare false and pick +0, matching the
    // scalar ternary.
    return _mm256_and_ps(
        _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ), a);
  }

  static VD dzero() { return _mm256_setzero_pd(); }
  static VD dadd(VD a, VD b) { return _mm256_add_pd(a, b); }
  static VD dmul(VD a, VD b) { return _mm256_mul_pd(a, b); }
  static VD widen4(const float* p) {
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
  }
  static void dstore(double* p, VD a) { _mm256_storeu_pd(p, a); }

  static VF bf16_widen8(const uint16_t* p) {
    const __m128i u =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(u), 16));
  }
  static __m256i rne8i(__m256 f) {
    const __m256i u = _mm256_castps_si256(f);
    const __m256i bias = _mm256_add_epi32(
        _mm256_set1_epi32(0x7fff),
        _mm256_and_si256(_mm256_srli_epi32(u, 16), _mm256_set1_epi32(1)));
    return _mm256_srli_epi32(_mm256_add_epi32(u, bias), 16);
  }
  static void pack_store(__m256i words, uint16_t* out) {
    // packus works within 128-bit halves; permute the two useful quads
    // back together before storing the low 128 bits.
    const __m256i packed = _mm256_packus_epi32(words, _mm256_setzero_si256());
    const __m256i fixed = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                     _mm256_castsi256_si128(fixed));
  }
  static void bf16_rne8(VF a, uint16_t* out) { pack_store(rne8i(a), out); }
  static void bf16_guard8(VF a, uint16_t* out) {
    const __m256i u = _mm256_castps_si256(a);
    // (u & 0x7fffffff) <= 0x7fffffff, so the signed compare is exact.
    const __m256i is_nan = _mm256_cmpgt_epi32(
        _mm256_and_si256(u, _mm256_set1_epi32(0x7fffffff)),
        _mm256_set1_epi32(0x7f800000));
    const __m256i nan_bits =
        _mm256_or_si256(_mm256_srli_epi32(u, 16), _mm256_set1_epi32(0x40));
    pack_store(_mm256_blendv_epi8(rne8i(a), nan_bits, is_nan), out);
  }
};

}  // namespace

// extern: keep external linkage despite const.
extern const Ops kAvx2Ops;
const Ops kAvx2Ops = make_ops<Avx2Backend>();

}  // namespace sf::kernels::simd

#endif  // SF_SIMD_BUILD_AVX2
