// Shared kernel bodies for every SIMD tier (DESIGN.md §12).
//
// Each per-tier translation unit (simd_ops_scalar.cpp, simd_ops_sse.cpp,
// simd_ops_avx2.cpp, simd_ops_neon.cpp) defines a backend struct `B`
// exposing an 8-float vector `B::VF` and a 4-double vector `B::VD` with
// lane-wise IEEE add/sub/mul/div/sqrt, then instantiates `Ker<B>` below.
// Because every tier runs these exact bodies — the scalar backend just
// simulates the lanes with arrays — the operation DAG applied to each
// element, and the lane assignment of every reduction, is identical by
// construction. Tails are scalar code compiled under -ffp-contract=off
// and continue the lane pattern, so they too are tier-invariant.
//
// Reduction contract:
//   * f32 dot products use 8 float lanes; lane l accumulates elements
//     i ≡ l (mod 8); lanes combine serially in ascending order.
//   * f64 row statistics (sum/sumsq, LayerNorm sg/sgh) use 4 double
//     lanes; lane l accumulates elements i ≡ l (mod 4).
// Neither pattern depends on the thread count or the tier.
#pragma once

#include <cmath>
#include <cstdint>

#include "kernels/simd_ops.h"
#include "tensor/bfloat16.h"

namespace sf::kernels::simd {

template <class B>
struct Ker {
  using VF = typename B::VF;
  using VD = typename B::VD;

  static void axpy_f32(float a, const float* x, float* y, int64_t n) {
    const VF va = B::set1(a);
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      B::store(y + i, B::add(B::load(y + i), B::mul(va, B::load(x + i))));
    }
    for (; i < n; ++i) y[i] += a * x[i];
  }

  static void axpy_bf16_f32(float a, const uint16_t* x, float* y, int64_t n) {
    const VF va = B::set1(a);
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      B::store(y + i,
               B::add(B::load(y + i), B::mul(va, B::bf16_widen8(x + i))));
    }
    for (; i < n; ++i) y[i] += a * bf16_load(x[i]);
  }

  static void scale_f32(float* y, float a, int64_t n) {
    const VF va = B::set1(a);
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) B::store(y + i, B::mul(B::load(y + i), va));
    for (; i < n; ++i) y[i] *= a;
  }

  static void add_f32(const float* a, const float* b, float* y, int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      B::store(y + i, B::add(B::load(a + i), B::load(b + i)));
    }
    for (; i < n; ++i) y[i] = a[i] + b[i];
  }

  static void axpb_f32(const float* x, float* y, int64_t n, float a, float b) {
    const VF va = B::set1(a), vb = B::set1(b);
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      B::store(y + i, B::add(B::mul(va, B::load(x + i)), vb));
    }
    for (; i < n; ++i) y[i] = a * x[i] + b;
  }

  static void relu_fwd_f32(const float* x, float* y, int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      const VF xi = B::load(x + i);
      B::store(y + i, B::select_gtz(xi, xi));
    }
    for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }

  static void relu_bwd_f32(const float* x, const float* dy, float* dx,
                           int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      B::store(dx + i, B::select_gtz(B::load(x + i), B::load(dy + i)));
    }
    for (; i < n; ++i) dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
  }

  static float dot_f32(const float* x, const float* y, int64_t n) {
    VF acc = B::zero();
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      acc = B::add(acc, B::mul(B::load(x + i), B::load(y + i)));
    }
    float lanes[8];
    B::store(lanes, acc);
    // Tail elements continue the lane pattern: element n8+j joins lane j.
    for (int64_t j = 0; j < n - n8; ++j) {
      lanes[j] += x[n8 + j] * y[n8 + j];
    }
    float s = lanes[0];
    for (int l = 1; l < 8; ++l) s += lanes[l];
    return s;
  }

  static void sum_sumsq_f32(const float* x, int64_t n, double* s, double* sq) {
    VD vs = B::dzero(), vq = B::dzero();
    const int64_t n4 = n & ~int64_t{3};
    int64_t i = 0;
    for (; i < n4; i += 4) {
      const VD d = B::widen4(x + i);
      vs = B::dadd(vs, d);
      vq = B::dadd(vq, B::dmul(d, d));
    }
    double sl[4], ql[4];
    B::dstore(sl, vs);
    B::dstore(ql, vq);
    for (int64_t j = 0; j < n - n4; ++j) {
      const double d = static_cast<double>(x[n4 + j]);
      sl[j] += d;
      ql[j] += d * d;
    }
    double ts = sl[0], tq = ql[0];
    for (int l = 1; l < 4; ++l) {
      ts += sl[l];
      tq += ql[l];
    }
    *s = ts;
    *sq = tq;
  }

  static double sumsq_f32(const float* x, int64_t n) {
    VD vq = B::dzero();
    const int64_t n4 = n & ~int64_t{3};
    int64_t i = 0;
    for (; i < n4; i += 4) {
      const VD d = B::widen4(x + i);
      vq = B::dadd(vq, B::dmul(d, d));
    }
    double ql[4];
    B::dstore(ql, vq);
    for (int64_t j = 0; j < n - n4; ++j) {
      const double d = static_cast<double>(x[n4 + j]);
      ql[j] += d * d;
    }
    double tq = ql[0];
    for (int l = 1; l < 4; ++l) tq += ql[l];
    return tq;
  }

  static void ln_fwd_row(const float* x, const float* gamma, const float* beta,
                         float mean, float rstd, float* y, int64_t n) {
    const VF vm = B::set1(mean), vr = B::set1(rstd);
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      const VF h = B::mul(B::sub(B::load(x + i), vm), vr);
      B::store(y + i, B::add(B::mul(h, B::load(gamma + i)), B::load(beta + i)));
    }
    for (; i < n; ++i) y[i] = (x[i] - mean) * rstd * gamma[i] + beta[i];
  }

  static void ln_bwd_row_reduce(const float* x, const float* dy,
                                const float* gamma, float mean, float rstd,
                                float* pg, float* pb, int64_t n, double* sg,
                                double* sgh) {
    const VF vm = B::set1(mean), vr = B::set1(rstd);
    VD vsg0 = B::dzero(), vsg1 = B::dzero();
    VD vsh0 = B::dzero(), vsh1 = B::dzero();
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    float hh[8], gg[8];
    for (; i < n8; i += 8) {
      const VF dyi = B::load(dy + i);
      const VF h = B::mul(B::sub(B::load(x + i), vm), vr);
      const VF g = B::mul(dyi, B::load(gamma + i));
      B::store(pg + i, B::add(B::load(pg + i), B::mul(dyi, h)));
      B::store(pb + i, B::add(B::load(pb + i), dyi));
      B::store(hh, h);
      B::store(gg, g);
      // Two 4-double steps keep lane l on elements c ≡ l (mod 4).
      VD dg = B::widen4(gg), dh = B::widen4(hh);
      vsg0 = B::dadd(vsg0, dg);
      vsh0 = B::dadd(vsh0, B::dmul(dg, dh));
      dg = B::widen4(gg + 4);
      dh = B::widen4(hh + 4);
      vsg1 = B::dadd(vsg1, dg);
      vsh1 = B::dadd(vsh1, B::dmul(dg, dh));
    }
    double sgl[4], shl[4], sgl1[4], shl1[4];
    B::dstore(sgl, vsg0);
    B::dstore(shl, vsh0);
    B::dstore(sgl1, vsg1);
    B::dstore(shl1, vsh1);
    // Fold the even/odd quads: lane l saw elements l, l+8, ... and
    // l+4, l+12, ...; merging them per lane keeps a fixed, size-only-
    // dependent order before the tail continues the mod-4 pattern.
    for (int l = 0; l < 4; ++l) {
      sgl[l] += sgl1[l];
      shl[l] += shl1[l];
    }
    for (int64_t j = 0; j < n - n8; ++j) {
      const int64_t c = n8 + j;
      const float h = (x[c] - mean) * rstd;
      const float g = dy[c] * gamma[c];
      pg[c] += dy[c] * h;
      pb[c] += dy[c];
      const double dg = static_cast<double>(g);
      sgl[j & 3] += dg;
      shl[j & 3] += dg * static_cast<double>(h);
    }
    double tsg = sgl[0], tsh = shl[0];
    for (int l = 1; l < 4; ++l) {
      tsg += sgl[l];
      tsh += shl[l];
    }
    *sg += tsg;
    *sgh += tsh;
  }

  static void ln_bwd_row_dx(const float* x, const float* dy,
                            const float* gamma, float mean, float rstd,
                            float t1, float fsgh, float inv_n, float* dx,
                            int64_t n) {
    const VF vm = B::set1(mean), vr = B::set1(rstd);
    const VF vt1 = B::set1(t1), vsgh = B::set1(fsgh), vin = B::set1(inv_n);
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      const VF h = B::mul(B::sub(B::load(x + i), vm), vr);
      const VF g = B::mul(B::load(dy + i), B::load(gamma + i));
      const VF t2 = B::mul(B::mul(h, vin), vsgh);
      B::store(dx + i, B::mul(vr, B::sub(B::sub(g, vt1), t2)));
    }
    for (; i < n; ++i) {
      const float h = (x[i] - mean) * rstd;
      const float g = dy[i] * gamma[i];
      dx[i] = rstd * (g - t1 - h * inv_n * fsgh);
    }
  }

  static void adam_swa_chunk(float* p, float* g, float* m, float* v, float* s,
                             int64_t n, const AdamConsts& k) {
    const float omswa = 1.0f - k.swa_decay;
    const VF vgs = B::set1(k.grad_scale), vwd = B::set1(k.weight_decay);
    const VF vb1 = B::set1(k.beta1), vo1 = B::set1(k.one_minus_beta1);
    const VF vb2 = B::set1(k.beta2), vo2 = B::set1(k.one_minus_beta2);
    const VF vc1 = B::set1(k.inv_bc1), vc2 = B::set1(k.inv_bc2);
    const VF vlr = B::set1(k.lr), veps = B::set1(k.eps);
    const VF vsw = B::set1(k.swa_decay), vow = B::set1(omswa);
    const bool wd = k.weight_decay != 0.0f;
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      const VF pv = B::load(p + i);
      VF gi = B::mul(B::load(g + i), vgs);
      if (wd) gi = B::add(gi, B::mul(vwd, pv));
      const VF mi = B::add(B::mul(vb1, B::load(m + i)), B::mul(vo1, gi));
      const VF vi =
          B::add(B::mul(vb2, B::load(v + i)), B::mul(B::mul(vo2, gi), gi));
      B::store(m + i, mi);
      B::store(v + i, vi);
      const VF upd = B::div(B::mul(vlr, B::mul(mi, vc1)),
                            B::add(B::sqrt(B::mul(vi, vc2)), veps));
      const VF pi = B::sub(pv, upd);
      B::store(p + i, pi);
      if (s) {
        B::store(s + i, B::add(B::mul(vsw, B::load(s + i)), B::mul(vow, pi)));
      }
    }
    for (; i < n; ++i) {
      float gi = g[i] * k.grad_scale;
      if (wd) gi += k.weight_decay * p[i];
      const float mi = k.beta1 * m[i] + k.one_minus_beta1 * gi;
      const float vi = k.beta2 * v[i] + k.one_minus_beta2 * gi * gi;
      m[i] = mi;
      v[i] = vi;
      const float upd =
          k.lr * (mi * k.inv_bc1) / (std::sqrt(vi * k.inv_bc2) + k.eps);
      const float pi = p[i] - upd;
      p[i] = pi;
      if (s) s[i] = k.swa_decay * s[i] + omswa * pi;
    }
  }

  static void to_bf16(const float* x, uint16_t* y, int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) B::bf16_guard8(B::load(x + i), y + i);
    for (; i < n; ++i) y[i] = BFloat16::round_from_float(x[i]);
  }

  static void from_bf16(const uint16_t* x, float* y, int64_t n) {
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) B::store(y + i, B::bf16_widen8(x + i));
    for (; i < n; ++i) y[i] = bf16_load(x[i]);
  }

  static void axpb_bf16(const uint16_t* x, uint16_t* y, int64_t n, float a,
                        float b) {
    const VF va = B::set1(a), vb = B::set1(b);
    const int64_t n8 = n & ~int64_t{7};
    int64_t i = 0;
    for (; i < n8; i += 8) {
      B::bf16_rne8(B::add(B::mul(va, B::bf16_widen8(x + i)), vb), y + i);
    }
    for (; i < n; ++i) y[i] = bf16_store_fast(a * bf16_load(x[i]) + b);
  }
};

template <class B>
inline Ops make_ops() {
  return Ops{
      B::kName,
      &Ker<B>::axpy_f32,
      &Ker<B>::axpy_bf16_f32,
      &Ker<B>::scale_f32,
      &Ker<B>::add_f32,
      &Ker<B>::axpb_f32,
      &Ker<B>::relu_fwd_f32,
      &Ker<B>::relu_bwd_f32,
      &Ker<B>::dot_f32,
      &Ker<B>::sum_sumsq_f32,
      &Ker<B>::sumsq_f32,
      &Ker<B>::ln_fwd_row,
      &Ker<B>::ln_bwd_row_reduce,
      &Ker<B>::ln_bwd_row_dx,
      &Ker<B>::adam_swa_chunk,
      &Ker<B>::to_bf16,
      &Ker<B>::from_bf16,
      &Ker<B>::axpb_bf16,
  };
}

}  // namespace sf::kernels::simd
