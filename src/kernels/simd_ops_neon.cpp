// NEON SIMD backend (aarch64): the 8-float virtual vector is a pair of
// float32x4_t, the 4-double vector a pair of float64x2_t. NEON is
// architecturally baseline on aarch64, so no extra compile flags and no
// CPUID gate beyond the architecture itself. relu goes through
// compare+select (not vmaxq, whose NaN semantics differ from the scalar
// ternary); no FMA (vfmaq) anywhere.
#include <cstdint>

#if defined(SF_SIMD_BUILD_NEON)

#include <arm_neon.h>

#include "kernels/simd_ops_impl.h"

namespace sf::kernels::simd {
namespace {

struct NeonBackend {
  static constexpr const char* kName = "neon";

  struct VF {
    float32x4_t lo, hi;
  };
  struct VD {
    float64x2_t lo, hi;
  };

  static VF load(const float* p) { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
  static void store(float* p, VF a) {
    vst1q_f32(p, a.lo);
    vst1q_f32(p + 4, a.hi);
  }
  static VF set1(float x) { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
  static VF zero() { return set1(0.0f); }
  static VF add(VF a, VF b) {
    return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
  }
  static VF sub(VF a, VF b) {
    return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
  }
  static VF mul(VF a, VF b) {
    return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
  }
  static VF div(VF a, VF b) {
    return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
  }
  static VF sqrt(VF a) { return {vsqrtq_f32(a.lo), vsqrtq_f32(a.hi)}; }
  static float32x4_t gtz4(float32x4_t x, float32x4_t a) {
    // x > 0 ? a : +0 — NaN compares false, matching the scalar ternary.
    const uint32x4_t mask = vcgtq_f32(x, vdupq_n_f32(0.0f));
    return vreinterpretq_f32_u32(
        vandq_u32(mask, vreinterpretq_u32_f32(a)));
  }
  static VF select_gtz(VF x, VF a) {
    return {gtz4(x.lo, a.lo), gtz4(x.hi, a.hi)};
  }

  static VD dzero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static VD dadd(VD a, VD b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  static VD dmul(VD a, VD b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  static VD widen4(const float* p) {
    const float32x4_t f = vld1q_f32(p);
    return {vcvt_f64_f32(vget_low_f32(f)), vcvt_high_f64_f32(f)};
  }
  static void dstore(double* p, VD a) {
    vst1q_f64(p, a.lo);
    vst1q_f64(p + 2, a.hi);
  }

  static VF bf16_widen8(const uint16_t* p) {
    const uint16x8_t u = vld1q_u16(p);
    return {vreinterpretq_f32_u32(vshll_n_u16(vget_low_u16(u), 16)),
            vreinterpretq_f32_u32(vshll_n_u16(vget_high_u16(u), 16))};
  }
  static uint32x4_t rne4(float32x4_t f) {
    const uint32x4_t u = vreinterpretq_u32_f32(f);
    const uint32x4_t bias = vaddq_u32(
        vdupq_n_u32(0x7fff),
        vandq_u32(vshrq_n_u32(u, 16), vdupq_n_u32(1)));
    return vshrq_n_u32(vaddq_u32(u, bias), 16);
  }
  static void bf16_rne8(VF a, uint16_t* out) {
    vst1q_u16(out, vcombine_u16(vmovn_u32(rne4(a.lo)), vmovn_u32(rne4(a.hi))));
  }
  static uint32x4_t guard4(float32x4_t f) {
    const uint32x4_t u = vreinterpretq_u32_f32(f);
    const uint32x4_t is_nan = vcgtq_u32(
        vandq_u32(u, vdupq_n_u32(0x7fffffff)), vdupq_n_u32(0x7f800000));
    const uint32x4_t nan_bits =
        vorrq_u32(vshrq_n_u32(u, 16), vdupq_n_u32(0x40));
    return vbslq_u32(is_nan, nan_bits, rne4(f));
  }
  static void bf16_guard8(VF a, uint16_t* out) {
    vst1q_u16(out,
              vcombine_u16(vmovn_u32(guard4(a.lo)), vmovn_u32(guard4(a.hi))));
  }
};

}  // namespace

// extern: keep external linkage despite const.
extern const Ops kNeonOps;
const Ops kNeonOps = make_ops<NeonBackend>();

}  // namespace sf::kernels::simd

#endif  // SF_SIMD_BUILD_NEON
