// Forced-scalar SIMD backend: simulates the 8-float / 4-double lanes of
// the vector tiers with plain arrays, so `SF_SIMD=scalar` runs the exact
// operation DAG of the SIMD paths one lane at a time. This is the
// reference side of every scalar-vs-SIMD differential test.
#include <cmath>
#include <cstdint>

#include "kernels/simd_ops_impl.h"
#include "tensor/bfloat16.h"

namespace sf::kernels::simd {
namespace {

struct ScalarBackend {
  static constexpr const char* kName = "scalar";

  struct VF {
    float v[8];
  };
  struct VD {
    double v[4];
  };

  static VF load(const float* p) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = p[l];
    return r;
  }
  static void store(float* p, VF a) {
    for (int l = 0; l < 8; ++l) p[l] = a.v[l];
  }
  static VF set1(float x) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = x;
    return r;
  }
  static VF zero() { return set1(0.0f); }
  static VF add(VF a, VF b) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  static VF sub(VF a, VF b) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  static VF mul(VF a, VF b) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  static VF div(VF a, VF b) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = a.v[l] / b.v[l];
    return r;
  }
  static VF sqrt(VF a) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = std::sqrt(a.v[l]);
    return r;
  }
  static VF select_gtz(VF x, VF a) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = x.v[l] > 0.0f ? a.v[l] : 0.0f;
    return r;
  }

  static VD dzero() {
    VD r;
    for (int l = 0; l < 4; ++l) r.v[l] = 0.0;
    return r;
  }
  static VD dadd(VD a, VD b) {
    VD r;
    for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  static VD dmul(VD a, VD b) {
    VD r;
    for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  static VD widen4(const float* p) {
    VD r;
    for (int l = 0; l < 4; ++l) r.v[l] = static_cast<double>(p[l]);
    return r;
  }
  static void dstore(double* p, VD a) {
    for (int l = 0; l < 4; ++l) p[l] = a.v[l];
  }

  static VF bf16_widen8(const uint16_t* p) {
    VF r;
    for (int l = 0; l < 8; ++l) r.v[l] = bf16_load(p[l]);
    return r;
  }
  static void bf16_rne8(VF a, uint16_t* out) {
    for (int l = 0; l < 8; ++l) out[l] = bf16_store_fast(a.v[l]);
  }
  static void bf16_guard8(VF a, uint16_t* out) {
    for (int l = 0; l < 8; ++l) out[l] = BFloat16::round_from_float(a.v[l]);
  }
};

}  // namespace

// extern: namespace-scope const would otherwise get internal linkage and
// the dispatcher's declaration would never resolve.
extern const Ops kScalarOps;
const Ops kScalarOps = make_ops<ScalarBackend>();

}  // namespace sf::kernels::simd
