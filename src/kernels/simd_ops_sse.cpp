// SSE4.1 SIMD backend: the 8-float virtual vector is a pair of __m128,
// the 4-double vector a pair of __m128d. Built with -msse4.1 (the only
// TU that is); dispatched only after __builtin_cpu_supports("sse4.1").
#include <cstdint>

#if defined(SF_SIMD_BUILD_SSE41)

#include <smmintrin.h>

#include "kernels/simd_ops_impl.h"

namespace sf::kernels::simd {
namespace {

struct SseBackend {
  static constexpr const char* kName = "sse";

  struct VF {
    __m128 lo, hi;
  };
  struct VD {
    __m128d lo, hi;
  };

  static VF load(const float* p) {
    return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
  }
  static void store(float* p, VF a) {
    _mm_storeu_ps(p, a.lo);
    _mm_storeu_ps(p + 4, a.hi);
  }
  static VF set1(float x) { return {_mm_set1_ps(x), _mm_set1_ps(x)}; }
  static VF zero() { return {_mm_setzero_ps(), _mm_setzero_ps()}; }
  static VF add(VF a, VF b) {
    return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
  }
  static VF sub(VF a, VF b) {
    return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
  }
  static VF mul(VF a, VF b) {
    return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
  }
  static VF div(VF a, VF b) {
    return {_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)};
  }
  static VF sqrt(VF a) { return {_mm_sqrt_ps(a.lo), _mm_sqrt_ps(a.hi)}; }
  static VF select_gtz(VF x, VF a) {
    // x > 0 ? a : +0 — the GT compare is ordered, so NaN lanes pick +0,
    // matching the scalar ternary.
    const __m128 z = _mm_setzero_ps();
    return {_mm_and_ps(_mm_cmpgt_ps(x.lo, z), a.lo),
            _mm_and_ps(_mm_cmpgt_ps(x.hi, z), a.hi)};
  }

  static VD dzero() { return {_mm_setzero_pd(), _mm_setzero_pd()}; }
  static VD dadd(VD a, VD b) {
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  static VD dmul(VD a, VD b) {
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  static VD widen4(const float* p) {
    const __m128 f = _mm_loadu_ps(p);
    return {_mm_cvtps_pd(f), _mm_cvtps_pd(_mm_movehl_ps(f, f))};
  }
  static void dstore(double* p, VD a) {
    _mm_storeu_pd(p, a.lo);
    _mm_storeu_pd(p + 2, a.hi);
  }

  static VF bf16_widen8(const uint16_t* p) {
    const __m128i u =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i lo32 = _mm_cvtepu16_epi32(u);
    const __m128i hi32 = _mm_cvtepu16_epi32(_mm_srli_si128(u, 8));
    return {_mm_castsi128_ps(_mm_slli_epi32(lo32, 16)),
            _mm_castsi128_ps(_mm_slli_epi32(hi32, 16))};
  }
  static __m128i rne4(__m128 f) {
    const __m128i u = _mm_castps_si128(f);
    const __m128i bias = _mm_add_epi32(
        _mm_set1_epi32(0x7fff),
        _mm_and_si128(_mm_srli_epi32(u, 16), _mm_set1_epi32(1)));
    return _mm_srli_epi32(_mm_add_epi32(u, bias), 16);
  }
  static void bf16_rne8(VF a, uint16_t* out) {
    // Rounded values fit in 16 bits, so the unsigned pack is lossless.
    const __m128i packed = _mm_packus_epi32(rne4(a.lo), rne4(a.hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), packed);
  }
  static __m128i guard4(__m128 f) {
    const __m128i u = _mm_castps_si128(f);
    // (u & 0x7fffffff) <= 0x7fffffff, so the signed compare is exact.
    const __m128i is_nan = _mm_cmpgt_epi32(
        _mm_and_si128(u, _mm_set1_epi32(0x7fffffff)),
        _mm_set1_epi32(0x7f800000));
    const __m128i nan_bits =
        _mm_or_si128(_mm_srli_epi32(u, 16), _mm_set1_epi32(0x40));
    return _mm_blendv_epi8(rne4(f), nan_bits, is_nan);
  }
  static void bf16_guard8(VF a, uint16_t* out) {
    const __m128i packed = _mm_packus_epi32(guard4(a.lo), guard4(a.hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), packed);
  }
};

}  // namespace

// extern: keep external linkage despite const.
extern const Ops kSseOps;
const Ops kSseOps = make_ops<SseBackend>();

}  // namespace sf::kernels::simd

#endif  // SF_SIMD_BUILD_SSE41
