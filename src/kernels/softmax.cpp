#include "kernels/softmax.h"

#include <algorithm>
#include <cmath>

namespace sf::kernels {

void softmax_forward(const float* x, float* y, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    float m = -INFINITY;
    for (int64_t c = 0; c < cols; ++c) m = std::max(m, xr[c]);
    double s = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      float e = std::exp(xr[c] - m);
      yr[c] = e;
      s += e;
    }
    float inv = static_cast<float>(1.0 / s);
    for (int64_t c = 0; c < cols; ++c) yr[c] *= inv;
  }
}

void softmax_backward(const float* y, const float* dy, float* dx,
                      int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y + r * cols;
    const float* gr = dy + r * cols;
    float* dr = dx + r * cols;
    double dot = 0.0;
    for (int64_t c = 0; c < cols; ++c) dot += static_cast<double>(gr[c]) * yr[c];
    float fd = static_cast<float>(dot);
    for (int64_t c = 0; c < cols; ++c) dr[c] = yr[c] * (gr[c] - fd);
  }
}

}  // namespace sf::kernels
