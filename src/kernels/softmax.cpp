#include "kernels/softmax.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "kernels/simd_ops.h"
#include "obs/trace.h"

namespace sf::kernels {
namespace {

/// Row grain: enough rows per chunk that a chunk moves ~16K elements, so
/// the tiny per-(b,h) softmaxes inside attention stay serial.
int64_t sm_row_grain(int64_t cols) {
  return std::max<int64_t>(1, (int64_t{1} << 14) / std::max<int64_t>(1, cols));
}

}  // namespace

void softmax_forward(const float* x, float* y, int64_t rows, int64_t cols) {
  SF_TRACE_SPAN_ID("kernel", "softmax_fwd", num_threads());
  // Parallel over rows: each row is an independent reduction with a
  // fixed-order double accumulator, so the split cannot change results.
  const simd::Ops& o = simd::ops();
  parallel_for(0, rows, sm_row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * cols;
      float* yr = y + r * cols;
      float m = -INFINITY;
      for (int64_t c = 0; c < cols; ++c) m = std::max(m, xr[c]);
      double s = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        float e = std::exp(xr[c] - m);
        yr[c] = e;
        s += e;
      }
      float inv = static_cast<float>(1.0 / s);
      o.scale_f32(yr, inv, cols);
    }
  });
}

void softmax_backward(const float* y, const float* dy, float* dx,
                      int64_t rows, int64_t cols) {
  SF_TRACE_SPAN_ID("kernel", "softmax_bwd", num_threads());
  parallel_for(0, rows, sm_row_grain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* yr = y + r * cols;
      const float* gr = dy + r * cols;
      float* dr = dx + r * cols;
      double dot = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        dot += static_cast<double>(gr[c]) * yr[c];
      }
      float fd = static_cast<float>(dot);
      for (int64_t c = 0; c < cols; ++c) dr[c] = yr[c] * (gr[c] - fd);
    }
  });
}

}  // namespace sf::kernels
