// Row softmax kernels (building block of the naive attention path and of
// several model modules that need a standalone softmax).
#pragma once

#include <cstdint>

namespace sf::kernels {

/// y = softmax(x) along the last dimension; x/y are [rows, cols].
/// Numerically stable (max-subtraction).
void softmax_forward(const float* x, float* y, int64_t rows, int64_t cols);

/// dx = y * (dy - sum(dy * y)) rowwise, given y = softmax(x).
void softmax_backward(const float* y, const float* dy, float* dx,
                      int64_t rows, int64_t cols);

}  // namespace sf::kernels
