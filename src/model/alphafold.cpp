#include "model/alphafold.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.h"
#include "model/metrics.h"

namespace sf::model {

using namespace autograd;

PairBlock::PairBlock(ParamStore& store, const std::string& prefix,
                     const ModelConfig& cfg, Rng& rng)
    : tri_mul_out(store, prefix + ".tri_mul_out", true, cfg, rng),
      tri_mul_in(store, prefix + ".tri_mul_in", false, cfg, rng),
      tri_attn_start(store, prefix + ".tri_attn_start", true, cfg, rng),
      tri_attn_end(store, prefix + ".tri_attn_end", false, cfg, rng),
      pair_transition(store, prefix + ".pair_trans", cfg.c_z, cfg, rng) {}

Var PairBlock::operator()(Var pair) const {
  pair = add(pair, tri_mul_out(pair));
  pair = add(pair, tri_mul_in(pair));
  pair = add(pair, tri_attn_start(pair));
  pair = add(pair, tri_attn_end(pair));
  pair = add(pair, pair_transition(pair));
  return pair;
}

StructureModule::StructureModule(ParamStore& store, const std::string& prefix,
                                 const ModelConfig& cfg, Rng& rng)
    : single_in(store, prefix + ".single_in", cfg.c_m, cfg.c_s, rng),
      ln_pair(store, prefix + ".ln_pair", cfg.c_z, rng,
              cfg.use_fused_layernorm),
      bias_proj(store, prefix + ".bias_proj", cfg.c_z, cfg.heads, rng, false) {
  for (int64_t l = 0; l < cfg.structure_layers; ++l) {
    std::string lp = prefix + "." + std::to_string(l);
    attn_layers.emplace_back(store, lp + ".attn", cfg.c_s, cfg, rng);
    transitions.emplace_back(store, lp + ".trans", cfg.c_s, cfg, rng);
    pos_heads.emplace_back(store, lp + ".pos", cfg.c_s, 3, rng, true,
                           Init::kSmallNormal);
  }
}

StructureModule::Output StructureModule::operator()(const Var& msa,
                                                    const Var& pair) const {
  const int64_t r = msa.shape()[1];
  const int64_t c_m = msa.shape()[2];
  // Single representation from the first MSA row (the target sequence row).
  Var row0 = reshape(take_leading(msa, 1), {r, c_m});
  Var s = single_in(row0);
  // Shared pair bias across layers.
  Var bias = permute3(bias_proj(ln_pair(pair)), {2, 0, 1});

  Var positions;
  for (size_t l = 0; l < attn_layers.size(); ++l) {
    Var s3 = reshape(s, {1, r, s.shape().back()});
    Var upd = attn_layers[l](s3, &bias, nullptr);
    s = add(s, reshape(upd, {r, s.shape().back()}));
    s = add(s, transitions[l](s));
    Var delta = pos_heads[l](s);
    positions = positions.defined() ? add(positions, delta) : delta;
  }
  return {s, positions};
}

MiniAlphaFold::MiniAlphaFold(const ModelConfig& cfg, uint64_t seed)
    : cfg_(cfg) {
  Rng rng(seed);
  msa_embed = LinearLayer(store_, "embed.msa", cfg.msa_feat_dim, cfg.c_m, rng);
  target_embed =
      LinearLayer(store_, "embed.target", cfg.num_aa, cfg.c_m, rng);
  pair_embed_a = LinearLayer(store_, "embed.pair_a", cfg.num_aa, cfg.c_z, rng);
  pair_embed_b = LinearLayer(store_, "embed.pair_b", cfg.num_aa, cfg.c_z, rng);
  relpos_embed =
      LinearLayer(store_, "embed.relpos", cfg.relpos_bins, cfg.c_z, rng);
  recycle_pair_ln = LayerNormLayer(store_, "recycle.pair_ln", cfg.c_z, rng,
                                   cfg.use_fused_layernorm);
  recycle_pair = LinearLayer(store_, "recycle.pair", cfg.c_z, cfg.c_z, rng,
                             true, Init::kFinalZero);
  recycle_dist = LinearLayer(store_, "recycle.dist", cfg.recycle_dist_bins,
                             cfg.c_z, rng, true, Init::kFinalZero);

  if (cfg.use_template_stack) {
    template_embed = LinearLayer(store_, "embed.template", cfg.template_bins,
                                 cfg.c_z, rng);
    for (int64_t i = 0; i < cfg.template_pair_blocks; ++i) {
      template_stack.emplace_back(store_,
                                  "template." + std::to_string(i), cfg, rng);
    }
  }
  if (cfg.use_extra_msa_stack) {
    for (int64_t i = 0; i < cfg.extra_msa_blocks; ++i) {
      extra_stack.emplace_back(store_, "extra." + std::to_string(i), cfg, rng);
    }
  }
  for (int64_t i = 0; i < cfg.evoformer_blocks; ++i) {
    evoformer.emplace_back(store_, "evoformer." + std::to_string(i), cfg, rng);
  }
  structure = StructureModule(store_, "structure", cfg, rng);
  if (cfg.aux_losses) {
    masked_msa_head = LinearLayer(store_, "heads.masked_msa", cfg.c_m,
                                  cfg.num_aa, rng);
    distogram_head = LinearLayer(store_, "heads.distogram", cfg.c_z,
                                 cfg.distogram_bins, rng);
  }
}

MiniAlphaFold::MaskedMsa MiniAlphaFold::corrupt_msa(
    const data::Batch& batch) const {
  MaskedMsa out;
  out.corrupted = batch.msa_feat.clone();
  const int64_t s_rows = cfg_.msa_rows;
  const int64_t r = cfg_.crop_len;
  const int64_t f = cfg_.msa_feat_dim;
  const int64_t aa = cfg_.num_aa;
  // Deterministic mask per sample (stable across recycling iterations).
  Rng rng(0x6d61736bULL ^ (batch.index + 1) * 0x9e3779b97f4a7c15ULL);
  const float uniform = 1.0f / static_cast<float>(aa);
  for (int64_t si = 0; si < s_rows; ++si) {
    for (int64_t ri = 0; ri < r; ++ri) {
      if (batch.residue_mask.at(ri) < 0.5f) continue;
      float* feat = out.corrupted.data() + (si * r + ri) * f;
      // Identify the true class from the one-hot block; all-zero = gap.
      int64_t cls = -1;
      for (int64_t a = 0; a < aa; ++a) {
        if (feat[a] > 0.5f) {
          cls = a;
          break;
        }
      }
      if (cls < 0) continue;
      if (!rng.bernoulli(cfg_.masked_msa_fraction)) continue;
      // Replace with the uniform "mask token" distribution (distinct from
      // both a one-hot residue and an all-zero gap).
      for (int64_t a = 0; a < aa; ++a) feat[a] = uniform;
      out.sites.push_back(si * r + ri);
      out.classes.push_back(cls);
    }
  }
  return out;
}

MiniAlphaFold::TrunkOutput MiniAlphaFold::run_trunk(
    const data::Batch& batch, const Var* recycled_pair,
    const Tensor* prev_positions, const Tensor* msa_feat_override,
    Rng* dropout_rng) const {
  const int64_t s_rows = cfg_.msa_rows;
  const int64_t r = cfg_.crop_len;
  SF_CHECK(batch.msa_feat.shape() ==
           Shape({s_rows, r, cfg_.msa_feat_dim}))
      << "batch msa_feat" << shape_str(batch.msa_feat.shape());
  if (msa_feat_override) {
    SF_CHECK(msa_feat_override->shape() == batch.msa_feat.shape());
  }

  Var msa_feat(msa_feat_override ? *msa_feat_override : batch.msa_feat,
               /*requires_grad=*/false);
  Var seq(batch.seq_onehot, /*requires_grad=*/false);

  // MSA representation: per-row embedding + broadcast target embedding.
  Var msa = msa_embed(msa_feat);                 // [S,R,c_m]
  Var target = target_embed(seq);                // [R,c_m]
  msa = add_bcast0(msa, target);

  // Pair representation: outer sum + relative-position encoding.
  Var pair = outer_sum(pair_embed_a(seq), pair_embed_b(seq));  // [R,R,c_z]
  {
    // Clipped relative-position one-hot, constant per crop.
    const int64_t bins = cfg_.relpos_bins;
    const int64_t half = bins / 2;
    Tensor relpos({r * r, bins});
    for (int64_t i = 0; i < r; ++i) {
      for (int64_t j = 0; j < r; ++j) {
        int64_t d = std::clamp(j - i, -half, half) + half;
        relpos.at((i * r + j) * bins + d) = 1.0f;
      }
    }
    Var rp(relpos, false);
    pair = add(pair, reshape(relpos_embed(rp), {r, r, cfg_.c_z}));
  }

  // Recycling inputs.
  if (recycled_pair) {
    pair = add(pair, recycle_pair(recycle_pair_ln(*recycled_pair)));
  }
  if (prev_positions) {
    // Distance-bin one-hot of the previous prediction (constant: the
    // previous cycle is detached).
    const int64_t bins = cfg_.recycle_dist_bins;
    Tensor dist_onehot({r * r, bins});
    const float* p = prev_positions->data();
    for (int64_t i = 0; i < r; ++i) {
      for (int64_t j = 0; j < r; ++j) {
        float dx = p[i * 3] - p[j * 3];
        float dy = p[i * 3 + 1] - p[j * 3 + 1];
        float dz = p[i * 3 + 2] - p[j * 3 + 2];
        float d = std::sqrt(dx * dx + dy * dy + dz * dz);
        // Bins: [0,4), [4,8), ... last bin open-ended.
        int64_t bin = std::min<int64_t>(static_cast<int64_t>(d / 4.0f),
                                        bins - 1);
        dist_onehot.at((i * r + j) * bins + bin) = 1.0f;
      }
    }
    Var dh(dist_onehot, false);
    pair = add(pair, reshape(recycle_dist(dh), {r, r, cfg_.c_z}));
  }

  // Template features: the homolog's distogram embedded into the pair rep
  // (AF2's template path), then refined by the template pair stack.
  if (cfg_.use_template_stack) {
    if (batch.template_feat.defined()) {
      SF_CHECK(batch.template_feat.shape() ==
               Shape({r, r, cfg_.template_bins}))
          << "template_feat" << shape_str(batch.template_feat.shape());
      Var tf(batch.template_feat, /*requires_grad=*/false);
      pair = add(pair, template_embed(tf));
    }
    for (const auto& block : template_stack) pair = block(pair);
  }

  // Extra MSA stack: full Evoformer blocks whose purpose is refining the
  // pair rep; the extra-MSA output itself is discarded (AF2 semantics).
  if (!extra_stack.empty()) {
    EvoformerBlock::State st{msa, pair};
    for (const auto& block : extra_stack) {
      st = block(st, &batch.residue_mask, dropout_rng, cfg_.msa_dropout,
                 cfg_.pair_dropout);
    }
    pair = st.pair;
  }

  // Main Evoformer stack, optionally under gradient checkpointing: the
  // block's intermediate tape is dropped in forward and rebuilt by a
  // recompute during backward.
  EvoformerBlock::State st{msa, pair};
  for (const auto& block : evoformer) {
    if (cfg_.gradient_checkpointing) {
      // Dropout masks must be identical between the cheap forward and the
      // backward recompute: snapshot the RNG into the closure, and advance
      // the live stream by the draws the block consumes (one per MSA row
      // of the row-attention update, one per pair row of each of the four
      // dropped pair updates).
      Tensor mask_copy = batch.residue_mask.clone();
      const bool use_dropout = dropout_rng != nullptr;
      Rng rng_snapshot = use_dropout ? *dropout_rng : Rng(0);
      const float md = cfg_.msa_dropout, pd = cfg_.pair_dropout;
      auto outs = checkpoint_multi(
          [&block, mask_copy, rng_snapshot, use_dropout, md,
           pd](const std::vector<Var>& in) {
            Rng local = rng_snapshot;  // identical draws on every replay
            auto out = block({in[0], in[1]}, &mask_copy,
                             use_dropout ? &local : nullptr, md, pd);
            return std::vector<Var>{out.msa, out.pair};
          },
          {st.msa, st.pair});
      st = {outs[0], outs[1]};
      if (use_dropout) {
        if (md > 0.0f) {
          for (int64_t i = 0; i < cfg_.msa_rows; ++i) {
            (void)dropout_rng->bernoulli(md);
          }
        }
        if (pd > 0.0f) {
          for (int64_t k = 0; k < 4 * cfg_.crop_len; ++k) {
            (void)dropout_rng->bernoulli(pd);
          }
        }
      }
    } else {
      st = block(st, &batch.residue_mask, dropout_rng, cfg_.msa_dropout,
                 cfg_.pair_dropout);
    }
    if (cfg_.bf16_activations) {
      st.msa = bf16_round_st(st.msa);
      st.pair = bf16_round_st(st.pair);
    }
  }
  return {st.msa, st.pair};
}

Var MiniAlphaFold::structural_loss(const Var& positions,
                                   const Tensor& target_pos,
                                   const Tensor& residue_mask) {
  const int64_t r = positions.shape()[0];
  SF_CHECK(target_pos.shape() == positions.shape());

  // Target distance matrix + pair weights.
  Tensor target_dist({r, r});
  Tensor weight({r, r});
  const float* t = target_pos.data();
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < r; ++j) {
      float dx = t[i * 3] - t[j * 3];
      float dy = t[i * 3 + 1] - t[j * 3 + 1];
      float dz = t[i * 3 + 2] - t[j * 3 + 2];
      float d = std::sqrt(dx * dx + dy * dy + dz * dz);
      target_dist.at(i * r + j) = d;
      float m = residue_mask.at(i) * residue_mask.at(j);
      if (i == j) m = 0.0f;
      // Local pairs dominate (lDDT inclusion radius); distant pairs keep a
      // small weight so global topology stays sane.
      weight.at(i * r + j) = m * (d < 15.0f ? 1.0f : 0.05f);
    }
  }
  Var dist = pairwise_dist(positions);
  return weighted_mse(dist, target_dist, &weight);
}

ModelOutput MiniAlphaFold::forward(const data::Batch& batch,
                                   int64_t num_recycles, bool compute_loss,
                                   Rng* dropout_rng) const {
  SF_CHECK(num_recycles >= 1);
  ModelOutput out;
  out.recycles_used = num_recycles;

  // Masked-MSA corruption is applied identically in every cycle so the
  // recycled signal is self-consistent.
  MaskedMsa masked;
  const bool use_aux = cfg_.aux_losses && compute_loss;
  const Tensor* feat_override = nullptr;
  if (use_aux) {
    masked = corrupt_msa(batch);
    feat_override = &masked.corrupted;
  }

  Var recycled_pair;
  Tensor prev_positions;
  for (int64_t cycle = 0; cycle < num_recycles; ++cycle) {
    const bool last = (cycle + 1 == num_recycles);
    TrunkOutput trunk = run_trunk(
        batch, recycled_pair.defined() ? &recycled_pair : nullptr,
        prev_positions.defined() ? &prev_positions : nullptr, feat_override,
        dropout_rng);
    StructureModule::Output structure_out = structure(trunk.msa, trunk.pair);

    if (last) {
      out.positions = structure_out.positions.value().clone();
      if (compute_loss) {
        Var total = structural_loss(structure_out.positions, batch.target_pos,
                                    batch.residue_mask);
        out.structural_loss_value = total.value().at(0);
        if (use_aux) {
          // Masked-MSA BERT loss: predict the true residue at masked sites
          // from the final MSA representation.
          if (!masked.sites.empty()) {
            const int64_t rows = cfg_.msa_rows * cfg_.crop_len;
            Var logits = reshape(
                masked_msa_head(reshape(trunk.msa, {rows, cfg_.c_m})),
                {rows, cfg_.num_aa});
            Tensor weights = Tensor::zeros({rows});
            std::vector<int64_t> targets(rows, 0);
            for (size_t i = 0; i < masked.sites.size(); ++i) {
              weights.at(masked.sites[i]) = 1.0f;
              targets[masked.sites[i]] = masked.classes[i];
            }
            Var msa_ce = softmax_cross_entropy(logits, targets, &weights);
            out.masked_msa_loss_value = msa_ce.value().at(0);
            total = add(total, scale(msa_ce, cfg_.masked_msa_weight));
          }
          // Distogram loss: classify binned true C-alpha distances from
          // the pair representation.
          {
            const int64_t r = cfg_.crop_len;
            const int64_t pairs = r * r;
            Var logits = reshape(
                distogram_head(reshape(trunk.pair, {pairs, cfg_.c_z})),
                {pairs, cfg_.distogram_bins});
            Tensor weights = Tensor::zeros({pairs});
            std::vector<int64_t> targets(pairs, 0);
            const float* tp = batch.target_pos.data();
            for (int64_t i = 0; i < r; ++i) {
              for (int64_t j = 0; j < r; ++j) {
                if (i == j || batch.residue_mask.at(i) < 0.5f ||
                    batch.residue_mask.at(j) < 0.5f) {
                  continue;
                }
                float dx = tp[i * 3] - tp[j * 3];
                float dy = tp[i * 3 + 1] - tp[j * 3 + 1];
                float dz = tp[i * 3 + 2] - tp[j * 3 + 2];
                float d = std::sqrt(dx * dx + dy * dy + dz * dz);
                int64_t bin = std::min<int64_t>(
                    static_cast<int64_t>(d / cfg_.distogram_bin_width),
                    cfg_.distogram_bins - 1);
                weights.at(i * r + j) = 1.0f;
                targets[i * r + j] = bin;
              }
            }
            Var disto_ce = softmax_cross_entropy(logits, targets, &weights);
            out.distogram_loss_value = disto_ce.value().at(0);
            total = add(total, scale(disto_ce, cfg_.distogram_weight));
          }
        }
        out.loss = total;
        out.lddt = lddt_ca(out.positions, batch.target_pos,
                           batch.residue_mask);
      }
    } else {
      // Detach: gradients flow through the final cycle only.
      recycled_pair = stop_gradient(trunk.pair);
      prev_positions = structure_out.positions.value().clone();
    }
  }
  return out;
}

}  // namespace sf::model
