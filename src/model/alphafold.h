// MiniAlphaFold: the full trainable model (Fig. 1 of the paper).
//
// Input embeddings (MSA + target + relative-position pair init), template
// pair stack, extra-MSA stack, the main Evoformer stack, structure module,
// and recycling. The structure module is deliberately kept as a distinct
// serial stage — it is the non-DAP-parallelizable "serial module" that
// §3.1 identifies as a scaling barrier.
#pragma once

#include <vector>

#include "data/protein_sample.h"
#include "model/config.h"
#include "model/modules.h"
#include "model/params.h"

namespace sf::model {

/// Pair-representation-only block used by the template pair stack and the
/// pair half of the extra-MSA stack.
struct PairBlock {
  TriangleMultiplication tri_mul_out;
  TriangleMultiplication tri_mul_in;
  TriangleAttention tri_attn_start;
  TriangleAttention tri_attn_end;
  Transition pair_transition;

  PairBlock(ParamStore& store, const std::string& prefix,
            const ModelConfig& cfg, Rng& rng);
  Var operator()(Var pair) const;
};

/// Structure module: iteratively refines a single representation with
/// pair-biased attention and accumulates per-residue position updates.
struct StructureModule {
  StructureModule() = default;
  LinearLayer single_in;     ///< c_m -> c_s from the first MSA row
  LayerNormLayer ln_pair;
  LinearLayer bias_proj;     ///< c_z -> heads
  std::vector<GatedAttention> attn_layers;
  std::vector<Transition> transitions;
  std::vector<LinearLayer> pos_heads;  ///< c_s -> 3 per layer (zero init)

  StructureModule(ParamStore& store, const std::string& prefix,
                  const ModelConfig& cfg, Rng& rng);

  struct Output {
    Var single;     ///< [R, c_s]
    Var positions;  ///< [R, 3]
  };
  Output operator()(const Var& msa, const Var& pair) const;
};

struct ModelOutput {
  Var loss;           ///< total loss (defined when compute_loss)
  Tensor positions;   ///< [R,3] predicted C-alpha coordinates (final cycle)
  float lddt = 0.0f;  ///< lDDT-Ca vs batch target (when compute_loss)
  int64_t recycles_used = 0;
  // Loss components (values; populated when aux losses are enabled).
  float structural_loss_value = 0.0f;
  float masked_msa_loss_value = 0.0f;
  float distogram_loss_value = 0.0f;
};

class MiniAlphaFold {
 public:
  MiniAlphaFold(const ModelConfig& cfg, uint64_t seed = 7);

  const ModelConfig& config() const { return cfg_; }
  ParamStore& params() { return store_; }
  const ParamStore& params() const { return store_; }

  /// Full forward with recycling. Gradients flow through the last cycle
  /// only (AF2 training semantics); earlier cycles are detached.
  /// `dropout_rng` non-null enables the configured training dropout.
  ModelOutput forward(const data::Batch& batch, int64_t num_recycles,
                      bool compute_loss, Rng* dropout_rng = nullptr) const;

  /// The non-DAP-parallelizable serial stage (§3.1), exposed for the
  /// serial-fraction measurements.
  const StructureModule& structure_module() const { return structure; }

  /// Structural loss: distance-matrix weighted MSE, local pairs
  /// (d_true < 15 A) weighted 1.0, distant pairs 0.05, padding masked out.
  static Var structural_loss(const Var& positions, const Tensor& target_pos,
                             const Tensor& residue_mask);

  /// Masked-MSA corruption: replaces the one-hot block of a deterministic
  /// ~masked_msa_fraction of valid (row, position) sites with the uniform
  /// "mask token" distribution. Returns the corrupted features plus the
  /// flattened site indices and their true classes.
  struct MaskedMsa {
    Tensor corrupted;                 ///< [S, R, msa_feat_dim]
    std::vector<int64_t> sites;       ///< flattened s*R + r indices
    std::vector<int64_t> classes;     ///< true amino-acid ids per site
  };
  MaskedMsa corrupt_msa(const data::Batch& batch) const;

 private:
  struct TrunkOutput {
    Var msa;
    Var pair;
  };
  /// One trunk pass: embed -> template/extra stacks -> Evoformer stack.
  /// `msa_feat_override` substitutes the batch's MSA features (used by the
  /// masked-MSA corruption).
  TrunkOutput run_trunk(const data::Batch& batch, const Var* recycled_pair,
                        const Tensor* prev_positions,
                        const Tensor* msa_feat_override = nullptr,
                        Rng* dropout_rng = nullptr) const;


  ModelConfig cfg_;
  ParamStore store_;

  // Input embeddings.
  LinearLayer msa_embed;      ///< msa_feat -> c_m
  LinearLayer target_embed;   ///< seq one-hot -> c_m (broadcast over rows)
  LinearLayer pair_embed_a;   ///< seq one-hot -> c_z (outer-sum left)
  LinearLayer pair_embed_b;   ///< seq one-hot -> c_z (outer-sum right)
  LinearLayer relpos_embed;   ///< relpos one-hot -> c_z
  LinearLayer template_embed; ///< template distogram -> c_z (when the
                              ///< template stack is enabled)

  // Recycling embedders.
  LayerNormLayer recycle_pair_ln;
  LinearLayer recycle_pair;
  LinearLayer recycle_dist;   ///< distance bins of previous prediction -> c_z

  std::vector<PairBlock> template_stack;
  std::vector<EvoformerBlock> extra_stack;
  std::vector<EvoformerBlock> evoformer;
  StructureModule structure;

  // Auxiliary heads (created when cfg.aux_losses).
  LinearLayer masked_msa_head;  ///< c_m -> num_aa
  LinearLayer distogram_head;   ///< c_z -> distogram_bins
};

}  // namespace sf::model
