// Model configuration for the mini-AlphaFold.
//
// Architecture follows Fig. 1/Fig. 2 of the paper (and AlphaFold2 §1.6):
// input embeddings -> (extra-MSA stack, template pair stack) -> Evoformer
// stack -> structure module, with recycling around the whole trunk. Every
// depth/width is configurable; defaults are laptop-scale while the paper's
// full-size values are kept alongside for the simulator workload spec.
#pragma once

#include <cstdint>

namespace sf::model {

struct ModelConfig {
  // Input dims (match sf::data featurization).
  int64_t msa_rows = 8;       ///< S: MSA sequences per sample (paper: 128)
  int64_t crop_len = 48;      ///< R: residues per crop   (paper: 256)
  int64_t msa_feat_dim = 42;  ///< per-position MSA feature width
  int64_t num_aa = 20;

  // Representation widths.
  int64_t c_m = 32;  ///< MSA representation channels   (paper: 256)
  int64_t c_z = 16;  ///< pair representation channels  (paper: 128)
  int64_t c_s = 32;  ///< single representation channels (paper: 384)

  // Attention geometry.
  int64_t heads = 2;     ///< attention heads (paper: 8)
  int64_t head_dim = 8;  ///< per-head dim    (paper: 32)

  // Stack depths (paper values in Fig. 1: 48 Evoformer, 4 extra-MSA,
  // 2 template-pair blocks).
  int64_t evoformer_blocks = 2;
  int64_t extra_msa_blocks = 1;
  int64_t template_pair_blocks = 1;
  bool use_extra_msa_stack = true;
  bool use_template_stack = true;
  /// Distance bins of the template distogram features (sf::data).
  int64_t template_bins = 8;

  // Outer-product-mean projection dims (paper: 32x32).
  int64_t opm_dim = 4;
  // Transition (MLP) expansion factor (paper: 4).
  int64_t transition_factor = 2;

  // Structure module (the serial module of §3.1).
  int64_t structure_layers = 3;

  // Relative-position encoding bins (AlphaFold uses 65: +-32).
  int64_t relpos_bins = 17;  ///< +-8

  // Training dropout (AF2: row-wise 0.15 on MSA updates, 0.25 on pair
  // updates; applied only when a dropout RNG is supplied to forward()).
  float msa_dropout = 0.0f;
  float pair_dropout = 0.0f;

  // Recycling (paper: 1..4 cycles sampled per step).
  int64_t max_recycles = 2;
  int64_t recycle_dist_bins = 8;

  // Kernel selection (the ScaleFold toggles exercised by tests/benches).
  bool use_flash_mha = true;
  bool use_fused_layernorm = true;

  // Gradient checkpointing over Evoformer blocks (§2.2: OpenFold's
  // memory-for-speed trade; §4.1: DAP's memory headroom lets ScaleFold
  // disable it, eliminating backward recompute).
  bool gradient_checkpointing = false;

  // bf16 activation rounding at module boundaries (emulated storage).
  bool bf16_activations = false;

  // Auxiliary training losses (AlphaFold2 §1.9: masked-MSA BERT loss and
  // distogram loss; the OpenFold training objective the paper trains).
  bool aux_losses = false;
  float masked_msa_weight = 0.1f;
  float distogram_weight = 0.1f;
  float masked_msa_fraction = 0.15f;
  int64_t distogram_bins = 16;
  float distogram_bin_width = 3.0f;  ///< Angstrom per bin

  /// Copy with a different residue crop. Parameter shapes depend only on
  /// channel widths, never on crop_len, so models built from with_crop()
  /// variants of one config can share weights via copy_from — the serving
  /// layer's per-length-bucket replicas rely on this.
  ModelConfig with_crop(int64_t new_crop_len) const {
    ModelConfig c = *this;
    c.crop_len = new_crop_len;
    return c;
  }

  /// Paper-scale configuration used by the simulator workload census.
  static ModelConfig paper_scale() {
    ModelConfig c;
    c.msa_rows = 128;
    c.crop_len = 256;
    c.c_m = 256;
    c.c_z = 128;
    c.c_s = 384;
    c.heads = 8;
    c.head_dim = 32;
    c.evoformer_blocks = 48;
    c.extra_msa_blocks = 4;
    c.template_pair_blocks = 2;
    c.opm_dim = 32;
    c.transition_factor = 4;
    c.structure_layers = 8;
    c.max_recycles = 4;
    return c;
  }
};

}  // namespace sf::model
