#include "model/metrics.h"

#include <cmath>

#include "common/error.h"

namespace sf::model {

float lddt_ca(const Tensor& pred, const Tensor& truth, const Tensor& mask,
              float inclusion_radius) {
  SF_CHECK(pred.shape().size() == 2 && pred.shape()[1] == 3);
  SF_CHECK(pred.shape() == truth.shape());
  const int64_t r = pred.shape()[0];
  SF_CHECK(mask.numel() == r);

  static constexpr float kThresholds[4] = {0.5f, 1.0f, 2.0f, 4.0f};

  auto dist = [](const float* p, int64_t i, int64_t j) {
    float dx = p[i * 3] - p[j * 3];
    float dy = p[i * 3 + 1] - p[j * 3 + 1];
    float dz = p[i * 3 + 2] - p[j * 3 + 2];
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  };

  double total = 0.0;
  int64_t residues_scored = 0;
  for (int64_t i = 0; i < r; ++i) {
    if (mask.at(i) < 0.5f) continue;
    double score = 0.0;
    int64_t pairs = 0;
    for (int64_t j = 0; j < r; ++j) {
      if (j == i || mask.at(j) < 0.5f) continue;
      float dt = dist(truth.data(), i, j);
      if (dt >= inclusion_radius) continue;
      float dp = dist(pred.data(), i, j);
      float err = std::fabs(dp - dt);
      int hits = 0;
      for (float thr : kThresholds) {
        if (err < thr) ++hits;
      }
      score += hits / 4.0;
      ++pairs;
    }
    if (pairs > 0) {
      total += score / pairs;
      ++residues_scored;
    }
  }
  if (residues_scored == 0) return 1.0f;
  return static_cast<float>(total / residues_scored);
}


namespace {

float pair_dist(const float* p, int64_t i, int64_t j) {
  float dx = p[i * 3] - p[j * 3];
  float dy = p[i * 3 + 1] - p[j * 3 + 1];
  float dz = p[i * 3 + 2] - p[j * 3 + 2];
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace

float drmsd(const Tensor& pred, const Tensor& truth, const Tensor& mask) {
  SF_CHECK(pred.shape().size() == 2 && pred.shape()[1] == 3);
  SF_CHECK(pred.shape() == truth.shape());
  const int64_t r = pred.shape()[0];
  SF_CHECK(mask.numel() == r);
  double acc = 0.0;
  int64_t pairs = 0;
  for (int64_t i = 0; i < r; ++i) {
    if (mask.at(i) < 0.5f) continue;
    for (int64_t j = i + 1; j < r; ++j) {
      if (mask.at(j) < 0.5f) continue;
      double d = pair_dist(pred.data(), i, j) - pair_dist(truth.data(), i, j);
      acc += d * d;
      ++pairs;
    }
  }
  if (pairs == 0) return 0.0f;
  return static_cast<float>(std::sqrt(acc / pairs));
}

float contact_precision(const Tensor& pred, const Tensor& truth,
                        const Tensor& mask, float threshold,
                        int64_t min_separation) {
  SF_CHECK(pred.shape().size() == 2 && pred.shape()[1] == 3);
  SF_CHECK(pred.shape() == truth.shape());
  const int64_t r = pred.shape()[0];
  SF_CHECK(mask.numel() == r);
  int64_t predicted = 0, correct = 0;
  for (int64_t i = 0; i < r; ++i) {
    if (mask.at(i) < 0.5f) continue;
    for (int64_t j = i + min_separation; j < r; ++j) {
      if (mask.at(j) < 0.5f) continue;
      if (pair_dist(pred.data(), i, j) < threshold) {
        ++predicted;
        if (pair_dist(truth.data(), i, j) < threshold) ++correct;
      }
    }
  }
  if (predicted == 0) return 1.0f;
  return static_cast<float>(correct) / static_cast<float>(predicted);
}

}  // namespace sf::model
