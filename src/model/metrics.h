// Structural metrics: lDDT-Calpha.
//
// lDDT (local Distance Difference Test) is the training/eval metric the
// paper gates on: avg_lddt_ca must exceed 0.8 by step 5000 and reach 0.9
// for convergence (§4.2, Fig. 11). Implemented exactly: for every residue
// pair (i != j) with true distance below the 15 A inclusion radius, score
// the fraction of thresholds {0.5, 1, 2, 4} A the predicted distance
// error stays within; average per residue, then over residues.
// Superposition-free by construction.
#pragma once

#include "tensor/tensor.h"

namespace sf::model {

/// pred/truth are [R,3] C-alpha coordinates; mask is [R] (1 = real
/// residue). Returns lDDT-Ca in [0,1]; 1 when no valid pair exists.
float lddt_ca(const Tensor& pred, const Tensor& truth, const Tensor& mask,
              float inclusion_radius = 15.0f);

/// Distance-matrix RMSD (superposition-free): sqrt of the mean squared
/// difference between predicted and true pairwise C-alpha distances over
/// valid pairs (i != j). 0 for a perfect prediction.
float drmsd(const Tensor& pred, const Tensor& truth, const Tensor& mask);

/// Long-range contact precision: of the predicted contacts (pairs with
/// |i-j| >= min_separation and predicted distance < threshold), the
/// fraction that are true contacts. Returns 1 when nothing is predicted.
float contact_precision(const Tensor& pred, const Tensor& truth,
                        const Tensor& mask, float threshold = 8.0f,
                        int64_t min_separation = 6);

}  // namespace sf::model
