#include "model/modules.h"

#include "common/error.h"

namespace sf::model {

using namespace autograd;

LinearLayer::LinearLayer(ParamStore& store, const std::string& prefix,
                         int64_t in, int64_t out, Rng& rng, bool bias,
                         Init weight_init) {
  w = store.create(prefix + ".w", {in, out}, weight_init, rng);
  if (bias) b = store.create(prefix + ".b", {out}, Init::kZeros, rng);
}

Var LinearLayer::operator()(const Var& x) const {
  return linear(x, w, b.defined() ? &b : nullptr);
}

LayerNormLayer::LayerNormLayer(ParamStore& store, const std::string& prefix,
                               int64_t dim, Rng& rng, bool fused_kernels)
    : fused(fused_kernels) {
  gamma = store.create(prefix + ".gamma", {dim}, Init::kOnes, rng);
  beta = store.create(prefix + ".beta", {dim}, Init::kZeros, rng);
}

Var LayerNormLayer::operator()(const Var& x) const {
  return layernorm(x, gamma, beta, 1e-5f, fused);
}

GatedAttention::GatedAttention(ParamStore& store, const std::string& prefix,
                               int64_t c_in, const ModelConfig& cfg, Rng& rng)
    : heads(cfg.heads), head_dim(cfg.head_dim), use_flash(cfg.use_flash_mha) {
  const int64_t c_hidden = heads * head_dim;
  q_proj = LinearLayer(store, prefix + ".q", c_in, c_hidden, rng, false);
  k_proj = LinearLayer(store, prefix + ".k", c_in, c_hidden, rng, false);
  v_proj = LinearLayer(store, prefix + ".v", c_in, c_hidden, rng, false);
  gate_proj = LinearLayer(store, prefix + ".gate", c_in, c_hidden, rng, true);
  out_proj = LinearLayer(store, prefix + ".out", c_hidden, c_in, rng, true,
                         Init::kFinalZero);
}

Var GatedAttention::operator()(const Var& x, const Var* pair_bias,
                               const Tensor* mask) const {
  SF_CHECK(x.shape().size() == 3) << "GatedAttention expects [B,S,C]";
  const int64_t batch = x.shape()[0];
  const int64_t seq = x.shape()[1];
  const int64_t c_in = x.shape()[2];
  Var rows = reshape(x, {batch * seq, c_in});

  // The four pre-attention projections (the paper's GEMM-batching target;
  // kernel-level fusion is benchmarked in bench_kernels_micro).
  Var q = split_heads(q_proj(rows), batch, seq, heads, head_dim);
  Var k = split_heads(k_proj(rows), batch, seq, heads, head_dim);
  Var v = split_heads(v_proj(rows), batch, seq, heads, head_dim);
  Var gate = gate_proj(rows);

  Var ctx = mha(q, k, v, pair_bias, mask, use_flash);
  Var merged = merge_heads(ctx);
  Var gated = glu(merged, gate);
  Var out = out_proj(gated);
  return reshape(out, {batch, seq, out.shape().back()});
}

MSARowAttentionWithPairBias::MSARowAttentionWithPairBias(
    ParamStore& store, const std::string& prefix, const ModelConfig& cfg,
    Rng& rng)
    : ln_msa(store, prefix + ".ln_msa", cfg.c_m, rng, cfg.use_fused_layernorm),
      ln_pair(store, prefix + ".ln_pair", cfg.c_z, rng,
              cfg.use_fused_layernorm),
      bias_proj(store, prefix + ".bias_proj", cfg.c_z, cfg.heads, rng, false),
      attn(store, prefix + ".attn", cfg.c_m, cfg, rng),
      heads(cfg.heads) {}

Var MSARowAttentionWithPairBias::operator()(const Var& msa, const Var& pair,
                                            const Tensor* mask) const {
  Var m = ln_msa(msa);
  Var z = ln_pair(pair);
  // Pair bias: [R,R,c_z] -> [R,R,H] -> [H,R,R], shared across MSA rows.
  Var bias = permute3(bias_proj(z), {2, 0, 1});
  return attn(m, &bias, mask);
}

MSAColumnAttention::MSAColumnAttention(ParamStore& store,
                                       const std::string& prefix,
                                       const ModelConfig& cfg, Rng& rng)
    : ln(store, prefix + ".ln", cfg.c_m, rng, cfg.use_fused_layernorm),
      attn(store, prefix + ".attn", cfg.c_m, cfg, rng) {}

Var MSAColumnAttention::operator()(const Var& msa) const {
  // [S,R,c] -> [R,S,c]: attend along the MSA axis within each column.
  Var m = permute3(ln(msa), {1, 0, 2});
  Var out = attn(m, nullptr, nullptr);
  return permute3(out, {1, 0, 2});
}

Transition::Transition(ParamStore& store, const std::string& prefix,
                       int64_t dim, const ModelConfig& cfg, Rng& rng)
    : ln(store, prefix + ".ln", dim, rng, cfg.use_fused_layernorm),
      fc1(store, prefix + ".fc1", dim, dim * cfg.transition_factor, rng),
      fc2(store, prefix + ".fc2", dim * cfg.transition_factor, dim, rng, true,
          Init::kFinalZero) {}

Var Transition::operator()(const Var& x) const {
  return fc2(gelu(fc1(ln(x))));
}

OuterProductMean::OuterProductMean(ParamStore& store,
                                   const std::string& prefix,
                                   const ModelConfig& cfg, Rng& rng)
    : ln(store, prefix + ".ln", cfg.c_m, rng, cfg.use_fused_layernorm),
      a_proj(store, prefix + ".a", cfg.c_m, cfg.opm_dim, rng),
      b_proj(store, prefix + ".b", cfg.c_m, cfg.opm_dim, rng),
      out_proj(store, prefix + ".out", cfg.opm_dim * cfg.opm_dim, cfg.c_z,
               rng, true, Init::kFinalZero) {}

Var OuterProductMean::operator()(const Var& msa) const {
  Var m = ln(msa);
  Var a = a_proj(m);
  Var b = b_proj(m);
  Var op = outer_product_mean(a, b);
  return out_proj(op);
}

TriangleMultiplication::TriangleMultiplication(ParamStore& store,
                                               const std::string& prefix,
                                               bool outgoing_edges,
                                               const ModelConfig& cfg,
                                               Rng& rng)
    : outgoing(outgoing_edges),
      ln_in(store, prefix + ".ln_in", cfg.c_z, rng, cfg.use_fused_layernorm),
      ln_out(store, prefix + ".ln_out", cfg.c_z, rng, cfg.use_fused_layernorm),
      a_proj(store, prefix + ".a", cfg.c_z, cfg.c_z, rng),
      a_gate(store, prefix + ".a_gate", cfg.c_z, cfg.c_z, rng),
      b_proj(store, prefix + ".b", cfg.c_z, cfg.c_z, rng),
      b_gate(store, prefix + ".b_gate", cfg.c_z, cfg.c_z, rng),
      out_proj(store, prefix + ".out", cfg.c_z, cfg.c_z, rng, true,
               Init::kFinalZero),
      out_gate(store, prefix + ".out_gate", cfg.c_z, cfg.c_z, rng) {}

Var TriangleMultiplication::operator()(const Var& pair) const {
  Var x = ln_in(pair);
  Var a = glu(a_proj(x), a_gate(x));
  Var b = glu(b_proj(x), b_gate(x));
  Var t = ln_out(triangle_multiply(a, b, outgoing));
  return glu(out_proj(t), out_gate(x));
}

TriangleAttention::TriangleAttention(ParamStore& store,
                                     const std::string& prefix,
                                     bool starting_node,
                                     const ModelConfig& cfg, Rng& rng)
    : starting(starting_node),
      ln(store, prefix + ".ln", cfg.c_z, rng, cfg.use_fused_layernorm),
      bias_proj(store, prefix + ".bias_proj", cfg.c_z, cfg.heads, rng, false),
      attn(store, prefix + ".attn", cfg.c_z, cfg, rng),
      heads(cfg.heads) {}

Var TriangleAttention::operator()(const Var& pair) const {
  Var x = ln(pair);
  if (!starting) x = permute3(x, {1, 0, 2});
  // Bias from the (possibly transposed) pair activations themselves.
  Var bias = permute3(bias_proj(x), {2, 0, 1});
  Var out = attn(x, &bias, nullptr);
  if (!starting) out = permute3(out, {1, 0, 2});
  return out;
}

EvoformerBlock::EvoformerBlock(ParamStore& store, const std::string& prefix,
                               const ModelConfig& cfg, Rng& rng)
    : row_attn(store, prefix + ".row_attn", cfg, rng),
      col_attn(store, prefix + ".col_attn", cfg, rng),
      msa_transition(store, prefix + ".msa_trans", cfg.c_m, cfg, rng),
      opm(store, prefix + ".opm", cfg, rng),
      tri_mul_out(store, prefix + ".tri_mul_out", true, cfg, rng),
      tri_mul_in(store, prefix + ".tri_mul_in", false, cfg, rng),
      tri_attn_start(store, prefix + ".tri_attn_start", true, cfg, rng),
      tri_attn_end(store, prefix + ".tri_attn_end", false, cfg, rng),
      pair_transition(store, prefix + ".pair_trans", cfg.c_z, cfg, rng) {}

EvoformerBlock::State EvoformerBlock::operator()(State in,
                                                 const Tensor* residue_mask,
                                                 Rng* dropout_rng,
                                                 float msa_dropout,
                                                 float pair_dropout) const {
  // Additive key mask for row attention: [S, R] with -1e9 on padding.
  Tensor add_mask;
  const Tensor* mask_ptr = nullptr;
  if (residue_mask) {
    const int64_t s = in.msa.shape()[0];
    const int64_t r = in.msa.shape()[1];
    SF_CHECK(residue_mask->numel() == r);
    add_mask = Tensor({s, r});
    for (int64_t i = 0; i < s; ++i) {
      for (int64_t j = 0; j < r; ++j) {
        add_mask.at(i * r + j) =
            residue_mask->at(j) > 0.5f ? 0.0f : -1e9f;
      }
    }
    mask_ptr = &add_mask;
  }

  // AF2-style row-wise training dropout on the residual updates; identity
  // at evaluation time (no RNG supplied) or rate 0.
  auto drop_msa = [&](Var update) {
    if (dropout_rng && msa_dropout > 0.0f) {
      return dropout_rows(update, msa_dropout, *dropout_rng);
    }
    return update;
  };
  auto drop_pair = [&](Var update) {
    if (dropout_rng && pair_dropout > 0.0f) {
      return dropout_rows(update, pair_dropout, *dropout_rng);
    }
    return update;
  };

  Var msa = in.msa;
  Var pair = in.pair;
  msa = add(msa, drop_msa(row_attn(msa, pair, mask_ptr)));
  msa = add(msa, col_attn(msa));
  msa = add(msa, msa_transition(msa));
  pair = add(pair, opm(msa));
  pair = add(pair, drop_pair(tri_mul_out(pair)));
  pair = add(pair, drop_pair(tri_mul_in(pair)));
  pair = add(pair, drop_pair(tri_attn_start(pair)));
  pair = add(pair, drop_pair(tri_attn_end(pair)));
  pair = add(pair, pair_transition(pair));
  return {msa, pair};
}

}  // namespace sf::model
