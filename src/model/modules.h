// Building-block modules of the mini-AlphaFold (Fig. 2 of the paper).
//
// Each module is a small value type holding its parameters (created via
// ParamStore) and exposing a functional forward over autograd Vars. The
// nine Evoformer sub-modules are implemented individually so profiling,
// the kernel census, and DAP cost modeling can attribute work per module.
#pragma once

#include <string>

#include "autograd/ops.h"
#include "model/config.h"
#include "model/params.h"

namespace sf::model {

using autograd::Var;

/// y = x W (+ b). AF2-style init selected per role.
struct LinearLayer {
  Var w;
  Var b;  ///< undefined when bias-free
  LinearLayer() = default;
  LinearLayer(ParamStore& store, const std::string& prefix, int64_t in,
              int64_t out, Rng& rng, bool bias = true,
              Init weight_init = Init::kLecunNormal);
  Var operator()(const Var& x) const;
};

struct LayerNormLayer {
  Var gamma;
  Var beta;
  bool fused = true;
  LayerNormLayer() = default;
  LayerNormLayer(ParamStore& store, const std::string& prefix, int64_t dim,
                 Rng& rng, bool fused);
  Var operator()(const Var& x) const;
};

/// Gated multi-head attention with optional pair bias — the shared core of
/// MSA row/col attention and triangle attention (Fig. 6).
struct GatedAttention {
  int64_t heads = 0;
  int64_t head_dim = 0;
  bool use_flash = true;
  LinearLayer q_proj, k_proj, v_proj, gate_proj, out_proj;

  GatedAttention() = default;
  GatedAttention(ParamStore& store, const std::string& prefix, int64_t c_in,
                 const ModelConfig& cfg, Rng& rng);

  /// x: [B, S, C]; pair_bias: optional [H, S, S]; mask: optional additive
  /// [B, S]. Returns [B, S, C_out = heads*head_dim -> c_in via out_proj].
  Var operator()(const Var& x, const Var* pair_bias,
                 const Tensor* mask) const;
};

/// MSARowAttentionWithPairBias (Fig. 6): attention along residues within
/// each MSA row, logits biased by the pair representation.
struct MSARowAttentionWithPairBias {
  LayerNormLayer ln_msa, ln_pair;
  LinearLayer bias_proj;  ///< c_z -> heads, no bias
  GatedAttention attn;
  int64_t heads;

  MSARowAttentionWithPairBias(ParamStore& store, const std::string& prefix,
                              const ModelConfig& cfg, Rng& rng);
  /// msa: [S, R, c_m], pair: [R, R, c_z] -> residual update [S, R, c_m].
  Var operator()(const Var& msa, const Var& pair, const Tensor* mask) const;
};

/// MSAColumnAttention: attention along the MSA (sequence) axis per column.
struct MSAColumnAttention {
  LayerNormLayer ln;
  GatedAttention attn;
  MSAColumnAttention(ParamStore& store, const std::string& prefix,
                     const ModelConfig& cfg, Rng& rng);
  Var operator()(const Var& msa) const;
};

/// Two-layer MLP transition (MSA or pair flavor, width factor cfg).
struct Transition {
  LayerNormLayer ln;
  LinearLayer fc1, fc2;
  Transition(ParamStore& store, const std::string& prefix, int64_t dim,
             const ModelConfig& cfg, Rng& rng);
  Var operator()(const Var& x) const;
};

/// OuterProductMean: MSA -> pair communication.
struct OuterProductMean {
  LayerNormLayer ln;
  LinearLayer a_proj, b_proj, out_proj;
  OuterProductMean(ParamStore& store, const std::string& prefix,
                   const ModelConfig& cfg, Rng& rng);
  /// msa [S,R,c_m] -> pair update [R,R,c_z].
  Var operator()(const Var& msa) const;
};

/// Triangle multiplicative update (outgoing or incoming edges).
struct TriangleMultiplication {
  bool outgoing;
  LayerNormLayer ln_in, ln_out;
  LinearLayer a_proj, a_gate, b_proj, b_gate, out_proj, out_gate;
  TriangleMultiplication(ParamStore& store, const std::string& prefix,
                         bool outgoing, const ModelConfig& cfg, Rng& rng);
  Var operator()(const Var& pair) const;
};

/// Triangle self-attention around starting (or ending) node.
struct TriangleAttention {
  bool starting;
  LayerNormLayer ln;
  LinearLayer bias_proj;
  GatedAttention attn;
  int64_t heads;
  TriangleAttention(ParamStore& store, const std::string& prefix,
                    bool starting, const ModelConfig& cfg, Rng& rng);
  Var operator()(const Var& pair) const;
};

/// One Evoformer block: the nine modules of Fig. 2 with residual wiring.
struct EvoformerBlock {
  MSARowAttentionWithPairBias row_attn;
  MSAColumnAttention col_attn;
  Transition msa_transition;
  OuterProductMean opm;
  TriangleMultiplication tri_mul_out;
  TriangleMultiplication tri_mul_in;
  TriangleAttention tri_attn_start;
  TriangleAttention tri_attn_end;
  Transition pair_transition;

  EvoformerBlock(ParamStore& store, const std::string& prefix,
                 const ModelConfig& cfg, Rng& rng);

  struct State {
    Var msa;   ///< [S, R, c_m]
    Var pair;  ///< [R, R, c_z]
  };
  /// `dropout_rng` non-null enables training dropout (AF2 row-wise on the
  /// MSA/pair updates) with the given rates.
  State operator()(State in, const Tensor* residue_mask,
                   Rng* dropout_rng = nullptr, float msa_dropout = 0.0f,
                   float pair_dropout = 0.0f) const;
};

}  // namespace sf::model
