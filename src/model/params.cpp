#include "model/params.h"

#include <cmath>

#include "common/error.h"

namespace sf::model {

autograd::Var ParamStore::create(const std::string& name, Shape shape,
                                 Init init, Rng& rng) {
  SF_CHECK(params_.find(name) == params_.end())
      << "duplicate parameter" << name;
  Tensor value;
  switch (init) {
    case Init::kZeros:
    case Init::kFinalZero:
      value = Tensor::zeros(shape);
      break;
    case Init::kOnes:
      value = Tensor::ones(shape);
      break;
    case Init::kLecunNormal:
    case Init::kSmallNormal: {
      SF_CHECK(!shape.empty());
      int64_t fan_in = shape[0];
      float stddev = 1.0f / std::sqrt(static_cast<float>(fan_in));
      if (init == Init::kSmallNormal) stddev *= 0.1f;
      value = Tensor::randn(shape, rng, 0.0f, stddev);
      break;
    }
  }
  autograd::Var v(std::move(value), /*requires_grad=*/true);
  params_.emplace(name, v);
  return v;
}

const autograd::Var& ParamStore::get(const std::string& name) const {
  auto it = params_.find(name);
  SF_CHECK(it != params_.end()) << "unknown parameter" << name;
  return it->second;
}

std::vector<autograd::Var> ParamStore::all() const {
  std::vector<autograd::Var> out;
  out.reserve(params_.size());
  for (const auto& [name, v] : params_) out.push_back(v);
  return out;
}

int64_t ParamStore::total_elements() const {
  int64_t n = 0;
  for (const auto& [name, v] : params_) n += v.numel();
  return n;
}

void ParamStore::zero_all_grads() {
  for (auto& [name, v] : params_) {
    auto node = v.node();
    node->grad = Tensor();
  }
}

}  // namespace sf::model
