// Named parameter registry.
//
// Modules create their weights through a ParamStore so the trainer can
// enumerate every trainable tensor (AlphaFold has >4000 parameter tensors;
// the fused optimizer's pointer-packed multi-tensor apply consumes exactly
// this list). Names are hierarchical ("evoformer.3.row_attn.q.w").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "autograd/var.h"
#include "common/rng.h"

namespace sf::model {

enum class Init {
  kZeros,
  kOnes,
  kLecunNormal,   ///< stddev = 1/sqrt(fan_in)
  kSmallNormal,   ///< stddev = 0.1/sqrt(fan_in): heads that must break
                  ///< symmetry (e.g. position heads, where an all-zero
                  ///< prediction is a saddle of the distance loss)
  kFinalZero,     ///< zero init for residual-final projections (AF2 style)
};

class ParamStore {
 public:
  /// Create (or fail if duplicate) a trainable parameter.
  autograd::Var create(const std::string& name, Shape shape, Init init,
                       Rng& rng);

  /// Lookup by exact name; throws if missing.
  const autograd::Var& get(const std::string& name) const;

  std::vector<autograd::Var> all() const;
  const std::map<std::string, autograd::Var>& named() const { return params_; }
  size_t size() const { return params_.size(); }
  int64_t total_elements() const;

  void zero_all_grads();

 private:
  std::map<std::string, autograd::Var> params_;
};

}  // namespace sf::model
