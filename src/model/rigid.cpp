#include "model/rigid.h"

#include <cmath>

#include "common/error.h"

namespace sf::model {
namespace {

Vec3 sub(const Vec3& a, const Vec3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

float dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

Vec3 normalize(const Vec3& v) {
  float n = std::sqrt(dot(v, v));
  if (n < 1e-8f) return {1, 0, 0};
  return {v[0] / n, v[1] / n, v[2] / n};
}

}  // namespace

Quat quat_normalize(const Quat& q) {
  float n = std::sqrt(q.w * q.w + q.x * q.x + q.y * q.y + q.z * q.z);
  if (n < 1e-12f) return Quat{};
  return {q.w / n, q.x / n, q.y / n, q.z / n};
}

Quat quat_multiply(const Quat& a, const Quat& b) {
  return {a.w * b.w - a.x * b.x - a.y * b.y - a.z * b.z,
          a.w * b.x + a.x * b.w + a.y * b.z - a.z * b.y,
          a.w * b.y - a.x * b.z + a.y * b.w + a.z * b.x,
          a.w * b.z + a.x * b.y - a.y * b.x + a.z * b.w};
}

Rot3 quat_to_rot(const Quat& q) {
  Rot3 r;
  const float w = q.w, x = q.x, y = q.y, z = q.z;
  r.m = {1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y),
         2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x),
         2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)};
  return r;
}

Vec3 rot_apply(const Rot3& r, const Vec3& v) {
  return {r.m[0] * v[0] + r.m[1] * v[1] + r.m[2] * v[2],
          r.m[3] * v[0] + r.m[4] * v[1] + r.m[5] * v[2],
          r.m[6] * v[0] + r.m[7] * v[1] + r.m[8] * v[2]};
}

Rot3 rot_transpose(const Rot3& r) {
  Rot3 t;
  t.m = {r.m[0], r.m[3], r.m[6], r.m[1], r.m[4], r.m[7],
         r.m[2], r.m[5], r.m[8]};
  return t;
}

Rot3 rot_multiply(const Rot3& a, const Rot3& b) {
  Rot3 c;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      float acc = 0;
      for (int k = 0; k < 3; ++k) acc += a.m[i * 3 + k] * b.m[k * 3 + j];
      c.m[i * 3 + j] = acc;
    }
  }
  return c;
}

Vec3 frame_apply(const Frame& f, const Vec3& p) {
  Vec3 r = rot_apply(f.rot, p);
  return {r[0] + f.trans[0], r[1] + f.trans[1], r[2] + f.trans[2]};
}

Frame frame_compose(const Frame& a, const Frame& b) {
  Frame c;
  c.rot = rot_multiply(a.rot, b.rot);
  c.trans = frame_apply(a, b.trans);
  return c;
}

Frame frame_invert(const Frame& f) {
  Frame inv;
  inv.rot = rot_transpose(f.rot);
  Vec3 t = rot_apply(inv.rot, f.trans);
  inv.trans = {-t[0], -t[1], -t[2]};
  return inv;
}

Frame frame_from_three_points(const Vec3& p_x, const Vec3& origin,
                              const Vec3& p_xy) {
  // Gram-Schmidt: e1 toward p_x, e2 in the (e1, p_xy) plane, e3 = e1 x e2.
  Vec3 e1 = normalize(sub(p_x, origin));
  Vec3 v2 = sub(p_xy, origin);
  float proj = dot(v2, e1);
  Vec3 e2 = normalize({v2[0] - proj * e1[0], v2[1] - proj * e1[1],
                       v2[2] - proj * e1[2]});
  Vec3 e3 = cross(e1, e2);
  Frame f;
  // Columns of R are the basis vectors (local -> global).
  f.rot.m = {e1[0], e2[0], e3[0], e1[1], e2[1], e3[1], e1[2], e2[2], e3[2]};
  f.trans = origin;
  return f;
}

std::vector<Frame> frames_from_ca_trace(const Tensor& pos,
                                        const Tensor& mask) {
  SF_CHECK(pos.shape().size() == 2 && pos.shape()[1] == 3);
  const int64_t r = pos.shape()[0];
  SF_CHECK(mask.numel() == r);
  auto at = [&](int64_t i) -> Vec3 {
    return {pos.at(i * 3), pos.at(i * 3 + 1), pos.at(i * 3 + 2)};
  };
  auto valid = [&](int64_t i) { return i >= 0 && i < r && mask.at(i) > 0.5f; };
  std::vector<Frame> frames(r);
  for (int64_t i = 0; i < r; ++i) {
    if (!valid(i)) continue;  // identity frame for padding
    // Two *distinct* valid neighbors (rotation covariance requires three
    // distinct points; at chain ends walk further along the chain).
    int64_t n1 = -1, n2 = -1;
    for (int64_t cand : {i + 1, i - 1, i + 2, i - 2}) {
      if (!valid(cand)) continue;
      if (n1 < 0) {
        n1 = cand;
      } else if (n2 < 0 && cand != n1) {
        n2 = cand;
        break;
      }
    }
    if (n1 < 0 || n2 < 0) {
      frames[i].trans = at(i);  // isolated residue: translation-only frame
      continue;
    }
    frames[i] = frame_from_three_points(at(n1), at(i), at(n2));
  }
  return frames;
}

float fape(const Tensor& pred_pos, const Tensor& true_pos, const Tensor& mask,
           float clamp, float scale) {
  SF_CHECK(pred_pos.shape() == true_pos.shape());
  const int64_t r = pred_pos.shape()[0];
  auto pred_frames = frames_from_ca_trace(pred_pos, mask);
  auto true_frames = frames_from_ca_trace(true_pos, mask);
  auto at = [](const Tensor& t, int64_t i) -> Vec3 {
    return {t.at(i * 3), t.at(i * 3 + 1), t.at(i * 3 + 2)};
  };
  double acc = 0.0;
  int64_t pairs = 0;
  for (int64_t i = 0; i < r; ++i) {
    if (mask.at(i) < 0.5f) continue;
    Frame pred_inv = frame_invert(pred_frames[i]);
    Frame true_inv = frame_invert(true_frames[i]);
    for (int64_t j = 0; j < r; ++j) {
      if (j == i || mask.at(j) < 0.5f) continue;
      Vec3 p_local = frame_apply(pred_inv, at(pred_pos, j));
      Vec3 t_local = frame_apply(true_inv, at(true_pos, j));
      Vec3 d = sub(p_local, t_local);
      float err = std::sqrt(dot(d, d));
      acc += std::min(err, clamp);
      ++pairs;
    }
  }
  if (pairs == 0) return 0.0f;
  return static_cast<float>(acc / pairs) / scale;
}

}  // namespace sf::model
