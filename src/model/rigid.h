// Rigid-body geometry: quaternions, rotations, frames, and FAPE.
//
// AlphaFold "explicitly represent[s] the 3D structure in the form of a
// rotation and translation for each residue" (§2.1 of the paper). This
// header provides that machinery as pure, heavily-testable functions:
// unit-quaternion rotations, frame composition/inversion/application,
// backbone frames derived from a C-alpha trace (Gram-Schmidt over
// neighboring residues), and the Frame-Aligned Point Error used to score
// structures in each residue's local coordinate system.
#pragma once

#include <array>
#include <cstdint>

#include "tensor/tensor.h"

namespace sf::model {

using Vec3 = std::array<float, 3>;

struct Quat {
  float w = 1, x = 0, y = 0, z = 0;
};

/// Row-major 3x3 rotation matrix.
struct Rot3 {
  std::array<float, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};
};

/// Rigid transform: p -> R p + t.
struct Frame {
  Rot3 rot;
  Vec3 trans{0, 0, 0};
};

Quat quat_normalize(const Quat& q);
Quat quat_multiply(const Quat& a, const Quat& b);
Rot3 quat_to_rot(const Quat& q);  ///< q must be normalized

Vec3 rot_apply(const Rot3& r, const Vec3& v);
Rot3 rot_transpose(const Rot3& r);
Rot3 rot_multiply(const Rot3& a, const Rot3& b);

Vec3 frame_apply(const Frame& f, const Vec3& p);
Frame frame_compose(const Frame& a, const Frame& b);  ///< (a o b)(p)=a(b(p))
Frame frame_invert(const Frame& f);

/// Orthonormal frame from three points (AF2 algorithm 21 on pseudo-atoms):
/// origin at `origin`, x-axis toward `p_x`, xy-plane containing `p_xy`.
Frame frame_from_three_points(const Vec3& p_x, const Vec3& origin,
                              const Vec3& p_xy);

/// Per-residue backbone frames from a C-alpha trace [R,3]: residue i's
/// frame uses (CA_{i-1}, CA_i, CA_{i+1}) (clamped at chain ends). Residues
/// with mask 0 get identity frames.
std::vector<Frame> frames_from_ca_trace(const Tensor& pos,
                                        const Tensor& mask);

/// Frame-Aligned Point Error: for every (frame i, point j) pair, the
/// clamped distance between the predicted and true point expressed in the
/// respective local frames, averaged. Rigid-motion invariant.
float fape(const Tensor& pred_pos, const Tensor& true_pos,
           const Tensor& mask, float clamp = 10.0f, float scale = 10.0f);

}  // namespace sf::model
