#include "obs/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace sf::obs::json {

bool Value::as_bool() const {
  SF_CHECK(is_bool()) << "JSON value is not a bool";
  return bool_;
}

double Value::as_number() const {
  SF_CHECK(is_number()) << "JSON value is not a number";
  return num_;
}

const std::string& Value::as_string() const {
  SF_CHECK(is_string()) << "JSON value is not a string";
  return str_;
}

const std::vector<Value>& Value::as_array() const {
  SF_CHECK(is_array()) << "JSON value is not an array";
  return arr_;
}

const std::map<std::string, Value>& Value::as_object() const {
  SF_CHECK(is_object()) << "JSON value is not an object";
  return obj_;
}

const Value& Value::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  SF_CHECK(it != obj.end()) << "JSON object has no key" << key;
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && obj_.count(key) > 0;
}

const Value& Value::at(size_t index) const {
  const auto& arr = as_array();
  SF_CHECK(index < arr.size()) << "JSON array index out of range" << index;
  return arr[index];
}

size_t Value::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  SF_FAIL("size() on a non-container JSON value");
}

Value Value::make_bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> a) {
  Value v;
  v.type_ = Type::kArray;
  v.arr_ = std::move(a);
  return v;
}

Value Value::make_object(std::map<std::string, Value> o) {
  Value v;
  v.type_ = Type::kObject;
  v.obj_ = std::move(o);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    SF_CHECK(pos_ == s_.size())
        << "trailing characters after JSON document at offset" << pos_;
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    std::ostringstream os;
    os << "JSON parse error at offset " << pos_ << ": " << what;
    throw Error(os.str());
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = 0;
    while (lit[n]) ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::map<std::string, Value> obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value::make_object(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value::make_array(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (no surrogate-pair recombination; the exporter
          // only escapes control characters, all below 0x80).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      fail("bad number");
    }
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    return Value::make_number(v);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

Value parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  SF_CHECK(f.good()) << "cannot open JSON file" << path;
  std::ostringstream os;
  os << f.rdbuf();
  return parse(os.str());
}

}  // namespace sf::obs::json
