// Minimal JSON value + recursive-descent parser.
//
// Exists so tests (and tools) can load a trace.json or metrics dump back
// in and assert on its structure without an external dependency. Supports
// the full JSON grammar (objects, arrays, strings with escapes, numbers,
// booleans, null); parse errors throw sf::Error with an offset.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sf::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw sf::Error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::map<std::string, Value>& as_object() const;

  /// Object member access; throws if not an object or key missing.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Array element access; throws if not an array or out of range.
  const Value& at(size_t index) const;
  size_t size() const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> a);
  static Value make_object(std::map<std::string, Value> o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::map<std::string, Value> obj_;
};

/// Parse `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Throws sf::Error on malformed input.
Value parse(const std::string& text);

/// Convenience: parse the contents of a file.
Value parse_file(const std::string& path);

}  // namespace sf::obs::json
