#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace sf::obs {

Histogram::Histogram(double min_value, double max_value, int num_buckets)
    : min_(min_value), max_(max_value), n_(num_buckets) {
  SF_CHECK(min_value > 0.0) << "log-spaced buckets need a positive minimum";
  SF_CHECK(max_value > min_value);
  SF_CHECK(num_buckets >= 1);
  log_min_ = std::log(min_value);
  const double log_step =
      (std::log(max_value) - log_min_) / static_cast<double>(n_);
  inv_log_step_ = 1.0 / log_step;
  counts_ = std::vector<std::atomic<int64_t>>(static_cast<size_t>(n_) + 2);
}

int Histogram::bucket_index(double v) const {
  if (!(v >= min_)) return 0;  // underflow (also catches NaN)
  if (v >= max_) return n_ + 1;
  const int idx =
      static_cast<int>((std::log(v) - log_min_) * inv_log_step_);
  // log() rounding at an exact bucket boundary can land one off; clamp.
  return std::min(n_, std::max(1, idx + 1));
}

void Histogram::observe(double v) {
  counts_[static_cast<size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::bucket_lower(int index) const {
  SF_CHECK(index >= 0 && index <= n_ + 1);
  if (index == 0) return 0.0;
  if (index == n_ + 1) return max_;
  return std::exp(log_min_ + (index - 1) / inv_log_step_);
}

double Histogram::bucket_upper(int index) const {
  SF_CHECK(index >= 0 && index <= n_ + 1);
  if (index == 0) return min_;
  if (index == n_ + 1) return std::numeric_limits<double>::infinity();
  return std::exp(log_min_ + index / inv_log_step_);
}

double Histogram::quantile(double q) const {
  SF_CHECK(q >= 0.0 && q <= 1.0) << "quantile" << q;
  const int64_t total = count();
  if (total == 0) return 0.0;
  // Rank of the target observation (1-based, ceil), then walk buckets.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * total)));
  int64_t seen = 0;
  for (int i = 0; i <= n_ + 1; ++i) {
    const int64_t c = bucket_count(i);
    if (c == 0) continue;
    if (seen + c >= rank) {
      if (i == 0) return min_;   // underflow bucket: bounded above by min_
      if (i == n_ + 1) return max_;  // overflow: bounded below by max_
      const double lo = bucket_lower(i), hi = bucket_upper(i);
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(c);
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return max_;  // unreachable unless counts raced; max_ is the safe answer
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Never destroyed: instruments may be touched during static teardown.
  static auto* r = new Registry();
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.counter) {
    SF_CHECK(!e.gauge && !e.histogram)
        << "metric" << name << "already registered with another kind";
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.gauge) {
    SF_CHECK(!e.counter && !e.histogram)
        << "metric" << name << "already registered with another kind";
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, double min_value,
                               double max_value, int num_buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (!e.histogram) {
    SF_CHECK(!e.counter && !e.gauge)
        << "metric" << name << "already registered with another kind";
    e.histogram =
        std::make_unique<Histogram>(min_value, max_value, num_buckets);
  } else {
    SF_CHECK(e.histogram->min_value() == min_value &&
             e.histogram->max_value() == max_value &&
             e.histogram->num_buckets() == num_buckets)
        << "histogram" << name << "re-registered with a different layout";
  }
  return *e.histogram;
}

std::vector<MetricSample> Registry::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSample s;
    s.name = name;
    if (e.counter) {
      s.kind = MetricSample::Kind::kCounter;
      s.value = static_cast<double>(e.counter->value());
    } else if (e.gauge) {
      s.kind = MetricSample::Kind::kGauge;
      s.value = e.gauge->value();
    } else {
      s.kind = MetricSample::Kind::kHistogram;
      s.value = e.histogram->sum();
      s.count = e.histogram->count();
      const int n = e.histogram->num_buckets();
      s.buckets.reserve(static_cast<size_t>(n) + 2);
      for (int i = 0; i <= n + 1; ++i) {
        s.buckets.push_back(e.histogram->bucket_count(i));
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Registry::to_text() const {
  std::ostringstream os;
  for (const MetricSample& s : samples()) {
    os << s.name;
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << " " << static_cast<int64_t>(s.value);
        break;
      case MetricSample::Kind::kGauge:
        os << " " << s.value;
        break;
      case MetricSample::Kind::kHistogram:
        os << " count=" << s.count << " sum=" << s.value << " buckets=";
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          if (i) os << ',';
          os << s.buckets[i];
        }
        break;
    }
    os << '\n';
  }
  return os.str();
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace sf::obs
