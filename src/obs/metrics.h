// Thread-safe metrics: counters, gauges, and log-bucketed histograms.
//
// Instruments are owned by a process-wide Registry and addressed by name;
// the returned references are stable for the life of the process (reset()
// zeroes values but never invalidates an instrument), so hot paths may
// cache them:
//
//   static auto& retries = obs::Registry::global().counter("loader.retries");
//   retries.add();
//
// All mutation is lock-free (relaxed atomics): counters and gauges are
// single atomics, histograms an atomic count per bucket. Relaxed ordering
// is enough because metrics are monotonic telemetry, not synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sf::obs {

class Counter {
 public:
  void add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over fixed log-spaced buckets: `num_buckets` buckets spanning
/// [min_value, max_value) geometrically, plus an underflow bucket (index
/// 0) and an overflow bucket (index num_buckets + 1). Log spacing matches
/// the quantities traced here — kernel/prep times spread over three
/// decades (Fig. 4), which linear buckets cannot resolve.
class Histogram {
 public:
  Histogram(double min_value, double max_value, int num_buckets);

  void observe(double v);

  /// Bucket that observe(v) lands in (0 = underflow, num_buckets()+1 =
  /// overflow).
  int bucket_index(double v) const;

  int num_buckets() const { return n_; }
  int64_t bucket_count(int index) const {
    return counts_[static_cast<size_t>(index)].load(
        std::memory_order_relaxed);
  }
  /// Inclusive lower bound of bucket `index` (underflow: -inf analogue 0).
  double bucket_lower(int index) const;
  double bucket_upper(int index) const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const int64_t c = count();
    return c == 0 ? 0.0 : sum() / static_cast<double>(c);
  }

  /// Approximate quantile (q in [0, 1]) from the bucket counts: walks the
  /// cumulative histogram and interpolates linearly inside the target
  /// bucket. Underflow resolves to min_value, overflow to max_value (the
  /// buckets are unbounded, so those are the honest bounds). Returns 0
  /// with no observations. Accurate to one log-bucket width — enough for
  /// the serving layer's p50/p99 telemetry, not for exact assertions.
  double quantile(double q) const;

  double min_value() const { return min_; }
  double max_value() const { return max_; }

  void reset();

 private:
  double min_, max_;
  int n_;
  double log_min_, inv_log_step_;
  std::vector<std::atomic<int64_t>> counts_;  ///< n_ + 2 incl. under/over
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Snapshot row for export.
struct MetricSample {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  double value = 0.0;             ///< counter/gauge value; histogram sum
  int64_t count = 0;              ///< histogram observation count
  std::vector<int64_t> buckets;   ///< histogram per-bucket counts
};

class Registry {
 public:
  /// Process-wide instance (never destroyed).
  static Registry& global();

  /// Find-or-create by name. A name always refers to one instrument;
  /// asking for an existing name with a different instrument kind (or
  /// histogram layout) throws sf::Error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double min_value,
                       double max_value, int num_buckets);

  /// Stable-ordered (by name) snapshot of every instrument.
  std::vector<MetricSample> samples() const;

  /// One metric per line: "name value" / "name count=N sum=S buckets=...".
  std::string to_text() const;

  /// Zero every instrument's value; instruments stay registered so cached
  /// references remain valid (tests call this in teardown).
  void reset_values();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace sf::obs
