#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/error.h"

namespace sf::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Per-thread event buffer. Only the owning thread appends; the exporter
/// reads under the same (uncontended in steady state) mutex, so snapshots
/// taken while other threads are still tracing are race-free.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t track = 0;
};

struct Collector {
  std::mutex mu;
  // shared_ptr so buffers survive their owning thread: events emitted by
  // short-lived workers (loader threads, pool workers) stay exportable.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_track = 1;
};

// Never destroyed: spans may fire during static teardown of other TUs.
Collector& collector() {
  static auto* c = new Collector();
  return *c;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    b->track = c.next_track++;
    c.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void append(TraceEvent ev) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

bool env_enabled() {
  const char* v = std::getenv("SCALEFOLD_TRACE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void json_escape(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", ch);
          out += hex;
        } else {
          out += ch;
        }
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

namespace detail {
std::atomic<bool> g_trace_enabled{env_enabled()};
}  // namespace detail

void set_trace_enabled(bool on) {
  if (on) trace_epoch();  // pin the clock zero before the first span
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   trace_epoch())
      .count();
}

void emit_span(const char* category, std::string name, double ts_us,
               double dur_us, uint32_t track, int64_t arg) {
  if (!trace_enabled()) return;
  append({category, std::move(name), track, ts_us, std::max(0.0, dur_us),
          arg});
}

void emit_instant(const char* category, std::string name,
                  uint32_t track_offset, int64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent ev{category, std::move(name), 0, trace_now_us(), -1.0, arg};
  ev.track = local_buffer().track + track_offset;
  append(std::move(ev));
}

void TraceSpan::begin(const char* category, const char* name, int64_t arg) {
  category_ = category;
  name_ = name;
  arg_ = arg;
  active_ = true;
  start_us_ = trace_now_us();
}

void TraceSpan::end() {
  const double end_us = trace_now_us();
  TraceEvent ev{category_, std::move(name_), 0, start_us_,
                end_us - start_us_, arg_};
  ev.track = local_buffer().track;
  append(std::move(ev));
}

std::vector<TraceEvent> snapshot() {
  std::vector<TraceEvent> out;
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  for (auto& buf : c.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.track != b.track) return a.track < b.track;
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

size_t event_count() {
  size_t n = 0;
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  for (auto& buf : c.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void reset() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  for (auto& buf : c.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    buf->events.clear();
  }
}

std::string to_chrome_json() {
  const std::vector<TraceEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape(out, ev.name);
    out += "\",\"cat\":\"";
    json_escape(out, ev.category);
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.track);
    out += ",\"ts\":";
    append_number(out, ev.ts_us);
    if (ev.dur_us >= 0.0) {
      out += ",\"ph\":\"X\",\"dur\":";
      append_number(out, ev.dur_us);
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    if (ev.arg >= 0) {
      out += ",\"args\":{\"id\":";
      out += std::to_string(ev.arg);
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  SF_CHECK(f.good()) << "cannot open trace file" << path;
  const std::string json = to_chrome_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.flush();
  SF_CHECK(f.good()) << "failed writing trace file" << path;
}

}  // namespace sf::obs
