// Low-overhead span tracer (the profiling substrate behind Table 1,
// Fig. 8 and Fig. 9).
//
// Production code marks scoped regions with
//
//   SF_TRACE_SPAN("loader", "prep");          // literal name: zero-alloc
//   SF_TRACE_SPAN_ID("loader", "prep", idx);  // + integer arg ("id")
//
// Disabled tracing (the default) costs one relaxed atomic load per site —
// the same discipline as SF_FAULT_POINT — so spans can live on kernel hot
// paths. When enabled (set_trace_enabled(true) or SCALEFOLD_TRACE=1 in
// the environment), each thread appends complete-span events to its own
// buffer under a private, uncontended mutex; the exporter serializes the
// union as Chrome-trace-format JSON ("traceEvents") loadable in
// chrome://tracing or Perfetto.
//
// Two kinds of timeline coexist:
//   - measured spans (TraceSpan RAII): wall time on the emitting thread,
//     track = that thread's id;
//   - synthetic spans (emit_span with explicit ts/dur): used by the
//     cluster simulator to lay out a *simulated* step timeline, track
//     chosen by the emitter so each scenario gets its own Chrome row.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sf::obs {

/// One trace event. Timestamps are microseconds (fractional: sub-us
/// kernels stay visible) on the trace clock — zero at process start for
/// measured spans, emitter-defined for synthetic ones.
struct TraceEvent {
  const char* category = "";  ///< static-storage string (a literal)
  std::string name;
  uint32_t track = 0;   ///< Chrome "tid": thread id or synthetic row
  double ts_us = 0.0;   ///< span start
  double dur_us = -1.0; ///< span duration; < 0 marks an instant event
  int64_t arg = -1;     ///< optional integer payload; >= 0 exported as
                        ///< args:{"id":...} (batch index, step, ...)
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// Fast path: true when spans are being recorded.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Flip recording on/off. Also settable at startup via SCALEFOLD_TRACE=1.
void set_trace_enabled(bool on);

/// Microseconds since process start on the steady trace clock.
double trace_now_us();

/// Append a complete span with explicit timestamps (synthetic timelines).
/// No-op while tracing is disabled.
void emit_span(const char* category, std::string name, double ts_us,
               double dur_us, uint32_t track = 0, int64_t arg = -1);

/// Append an instant event (a point marker). No-op while disabled.
void emit_instant(const char* category, std::string name,
                  uint32_t track_offset = 0, int64_t arg = -1);

/// RAII measured span on the calling thread. Construction while tracing
/// is disabled does nothing beyond the enabled check.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name, int64_t arg = -1) {
    if (trace_enabled()) begin(category, name, arg);
  }
  /// By-reference so a disabled site never copies the string.
  TraceSpan(const char* category, const std::string& name, int64_t arg = -1) {
    if (trace_enabled()) begin(category, name.c_str(), arg);
  }
  ~TraceSpan() {
    if (active_) end();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* category, const char* name, int64_t arg);
  void end();

  const char* category_ = nullptr;
  std::string name_;
  double start_us_ = 0.0;
  int64_t arg_ = -1;
  bool active_ = false;
};

/// Copy of every buffered event across all threads, stably ordered by
/// (track, ts).
std::vector<TraceEvent> snapshot();

/// Total buffered events (cheaper than snapshot().size()).
size_t event_count();

/// Drop all buffered events (thread buffers stay registered).
void reset();

/// Serialize the buffered events as Chrome trace format JSON.
std::string to_chrome_json();

/// Write to_chrome_json() to `path`. Throws sf::Error on I/O failure.
void write_chrome_trace(const std::string& path);

}  // namespace sf::obs

#define SF_OBS_CONCAT2(a, b) a##b
#define SF_OBS_CONCAT(a, b) SF_OBS_CONCAT2(a, b)

/// Scoped measured span; name must outlive the scope (use literals or a
/// std::string lvalue).
#define SF_TRACE_SPAN(category, name) \
  ::sf::obs::TraceSpan SF_OBS_CONCAT(sf_trace_span_, __LINE__)(category, name)

/// Scoped span carrying an integer id (batch index, rank, step, ...).
#define SF_TRACE_SPAN_ID(category, name, id)                            \
  ::sf::obs::TraceSpan SF_OBS_CONCAT(sf_trace_span_, __LINE__)(category, \
                                                               name, id)
