#include "serve/admission.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace sf::serve {

namespace {
obs::Counter& admit_counter() {
  static auto& c = obs::Registry::global().counter("serve.admitted");
  return c;
}
obs::Counter& reject_counter(RejectReason r) {
  static auto& queue_full =
      obs::Registry::global().counter("serve.rejected.queue_full");
  static auto& work_budget =
      obs::Registry::global().counter("serve.rejected.work_budget");
  static auto& shutdown =
      obs::Registry::global().counter("serve.rejected.shutdown");
  switch (r) {
    case RejectReason::kQueueFull: return queue_full;
    case RejectReason::kWorkBudget: return work_budget;
    default: return shutdown;
  }
}
}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

RejectReason AdmissionController::try_admit(double est_work) {
  SF_CHECK(est_work >= 0.0) << "negative work estimate";
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.max_queue_depth > 0 && depth_ >= config_.max_queue_depth) {
    ++rejected_;
    reject_counter(RejectReason::kQueueFull).add();
    return RejectReason::kQueueFull;
  }
  if (config_.max_outstanding_work > 0.0 &&
      work_ + est_work > config_.max_outstanding_work) {
    ++rejected_;
    reject_counter(RejectReason::kWorkBudget).add();
    return RejectReason::kWorkBudget;
  }
  ++depth_;
  work_ += est_work;
  ++admitted_;
  admit_counter().add();
  return RejectReason::kNone;
}

void AdmissionController::on_complete(double est_work) {
  std::lock_guard<std::mutex> lock(mu_);
  SF_CHECK(depth_ > 0) << "on_complete without matching try_admit";
  --depth_;
  work_ -= est_work;
  if (work_ < 0.0) work_ = 0.0;  // float drift guard
}

int64_t AdmissionController::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

double AdmissionController::outstanding_work() const {
  std::lock_guard<std::mutex> lock(mu_);
  return work_;
}

int64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

}  // namespace sf::serve
