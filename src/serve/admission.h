// Admission control: bounded queue depth + estimated-work budget.
//
// A serving system without admission control converts overload into
// unbounded latency; with it, overload becomes fast, explicit rejections
// while admitted requests keep meeting their SLO. Two budgets, both
// charged at submit and released at response:
//   - depth: outstanding (admitted, unanswered) request count;
//   - work:  sum of estimate_work(bucket_len) over outstanding requests —
//     a length-aware budget, so one 2000-residue request costs what it
//     actually costs, not one queue slot.
// Rejections carry a reason (queue_full vs work_budget) and are counted
// per-reason in sf_obs.
#pragma once

#include <cstdint>
#include <mutex>

#include "serve/request.h"

namespace sf::serve {

struct AdmissionConfig {
  /// Max outstanding admitted requests; <= 0 disables the depth budget.
  int64_t max_queue_depth = 64;
  /// Max outstanding estimated work (estimate_work units); <= 0 disables.
  double max_outstanding_work = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Charge one request of estimated cost `est_work` against the budgets.
  /// Returns kNone and charges on admission; returns the violated budget
  /// (depth checked first) and charges nothing on rejection.
  RejectReason try_admit(double est_work);

  /// Release a previously admitted request's charge.
  void on_complete(double est_work);

  int64_t depth() const;
  double outstanding_work() const;
  const AdmissionConfig& config() const { return config_; }

  int64_t admitted() const;
  int64_t rejected() const;

 private:
  const AdmissionConfig config_;
  mutable std::mutex mu_;
  int64_t depth_ = 0;
  double work_ = 0.0;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
};

}  // namespace sf::serve
