#include "serve/feature_cache.h"

#include "common/hash.h"
#include "obs/metrics.h"

namespace sf::serve {

namespace {
struct CacheMetrics {
  obs::Counter& hits = obs::Registry::global().counter("serve.cache.hit");
  obs::Counter& misses = obs::Registry::global().counter("serve.cache.miss");
  obs::Counter& evictions =
      obs::Registry::global().counter("serve.cache.evictions");
  obs::Gauge& bytes = obs::Registry::global().gauge("serve.cache.bytes");
};
CacheMetrics& metrics() {
  static CacheMetrics m;
  return m;
}
}  // namespace

FeatureCache::FeatureCache(FeatureCacheConfig config) : config_(config) {}

uint64_t FeatureCache::key(const std::vector<int8_t>& sequence,
                           int64_t bucket_len) {
  uint64_t h = fnv1a64(sequence.data(), sequence.size());
  return fnv1a64_u64(static_cast<uint64_t>(bucket_len), h);
}

int64_t FeatureCache::batch_bytes(const data::Batch& batch) {
  const auto bytes = [](const Tensor& t) {
    return t.numel() * static_cast<int64_t>(sizeof(float));
  };
  return bytes(batch.seq_onehot) + bytes(batch.msa_feat) +
         bytes(batch.template_feat) + bytes(batch.target_pos) +
         bytes(batch.residue_mask);
}

std::optional<data::Batch> FeatureCache::get(uint64_t key) {
  if (!config_.enabled) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    metrics().misses.add();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  ++hits_;
  metrics().hits.add();
  return it->second->batch;  // tensors share buffers: cheap copy
}

void FeatureCache::put(uint64_t key, const data::Batch& batch) {
  if (!config_.enabled) return;
  const int64_t cost = batch_bytes(batch);
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.count(key)) return;  // racing featurizers: first insert wins
  if (cost > config_.max_bytes) return;  // larger than the whole budget
  lru_.push_front(Entry{key, batch, cost});
  index_[key] = lru_.begin();
  bytes_ += cost;
  evict_to_budget_locked();
  metrics().bytes.set(static_cast<double>(bytes_));
}

void FeatureCache::evict_to_budget_locked() {
  while (bytes_ > config_.max_bytes && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    metrics().evictions.add();
  }
}

int64_t FeatureCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t FeatureCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

int64_t FeatureCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t FeatureCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t FeatureCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace sf::serve
