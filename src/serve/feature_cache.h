// MSA/featurization cache: LRU with byte-accounted eviction.
//
// Featurization is the serving layer's CPU-heavy stage (the MSA profile
// pass costs seq_len x min(depth, work_cap) work — the Fig. 4 spread), and
// production traffic repeats sequences, so prepared features are cached.
// Keyed by (sequence-bytes hash, bucket length): the same sequence served
// into a different length bucket is a different tensor shape, hence a
// different entry. Values are Batch objects; tensors share buffers on
// copy, so a hit costs a map lookup + refcount bumps, never a re-prep.
//
// Eviction is LRU by bytes: put() evicts least-recently-used entries until
// total payload bytes fit max_bytes. An entry larger than the whole budget
// is simply not cached. Hit/miss/eviction counters and a byte gauge are
// registered in sf_obs under serve.cache.*.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/protein_sample.h"

namespace sf::serve {

struct FeatureCacheConfig {
  int64_t max_bytes = 64ll << 20;
  bool enabled = true;
};

class FeatureCache {
 public:
  explicit FeatureCache(FeatureCacheConfig config);

  /// Cache key for a sequence served at a bucket length (FNV-1a over the
  /// sequence bytes, chained with the bucket length).
  static uint64_t key(const std::vector<int8_t>& sequence,
                      int64_t bucket_len);

  /// Payload bytes a Batch pins in the cache (tensor data only).
  static int64_t batch_bytes(const data::Batch& batch);

  /// Lookup; promotes the entry to most-recently-used on hit. Counts a
  /// hit or a miss. Always a miss when the cache is disabled.
  std::optional<data::Batch> get(uint64_t key);

  /// Insert (no-op if disabled or already present), then evict LRU
  /// entries until bytes() <= max_bytes.
  void put(uint64_t key, const data::Batch& batch);

  int64_t bytes() const;
  int64_t entries() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  const FeatureCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    uint64_t key;
    data::Batch batch;
    int64_t bytes;
  };

  void evict_to_budget_locked();

  const FeatureCacheConfig config_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace sf::serve
