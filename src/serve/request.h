// Request/response types of the structure-prediction serving layer.
//
// A request references one sequence of the synthetic population by sample
// index (the stand-in for a user-submitted sequence; the featurizer
// re-derives the actual sequence deterministically). A response carries
// the predicted C-alpha positions plus the full per-request latency
// breakdown the span tracer also records: queue -> featurize ->
// batch-wait -> forward -> respond.
#pragma once

#include <cstdint>

#include "data/protein_sample.h"
#include "tensor/tensor.h"

namespace sf::serve {

/// Why admission control turned a request away. kNone = admitted.
enum class RejectReason : uint8_t {
  kNone = 0,
  kQueueFull,    ///< outstanding request count at max_queue_depth
  kWorkBudget,   ///< estimated outstanding work above max_outstanding_work
  kShutdown,     ///< service is stopping
};

inline const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kWorkBudget: return "work_budget";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// Estimated model-stage work for a request served at `bucket_len`, in
/// abstract units. The Evoformer's triangle updates are O(R^3) in crop
/// length, which dominates the mini model too, so the estimate is R^3 —
/// admission budgets and the scheduler's telemetry share this scale.
inline double estimate_work(int64_t bucket_len) {
  const double r = static_cast<double>(bucket_len);
  return r * r * r;
}

/// An admitted request flowing through the service.
struct Request {
  int64_t id = -1;
  int64_t sample_index = -1;
  int64_t seq_len = 0;       ///< full sequence length (dataset metadata)
  int64_t bucket_len = 0;    ///< assigned length bucket (model crop)
  double est_work = 0.0;     ///< estimate_work(bucket_len)
  int64_t arrival_seq = -1;  ///< admission order; the scheduler's FIFO key
  double t_submit_us = 0.0;  ///< trace-clock submit time
};

struct Response {
  int64_t id = -1;
  int64_t sample_index = -1;
  bool ok = false;
  RejectReason reject = RejectReason::kNone;

  int64_t bucket_len = 0;
  int64_t batch_size = 0;  ///< size of the dispatched batch it rode in
  bool cache_hit = false;  ///< features came from the cache

  Tensor positions;        ///< [bucket_len, 3] predicted C-alpha coords
  float lddt = 0.0f;       ///< lDDT-Ca vs the synthetic target (confidence)

  // Latency breakdown (seconds). total_s = submit -> response ready.
  double queue_s = 0.0;      ///< submit -> featurize start
  double featurize_s = 0.0;  ///< cache lookup + (on miss) preparation
  double batch_wait_s = 0.0; ///< featurized -> batch dispatch
  double forward_s = 0.0;    ///< model forward for this element
  double total_s = 0.0;
};

}  // namespace sf::serve
