#include "serve/scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace sf::serve {

BucketScheduler::BucketScheduler(SchedulerConfig config)
    : config_(std::move(config)) {
  SF_CHECK(!config_.bucket_lens.empty()) << "need at least one bucket";
  SF_CHECK(config_.max_batch >= 1);
  SF_CHECK(std::is_sorted(config_.bucket_lens.begin(),
                          config_.bucket_lens.end()))
      << "bucket_lens must be ascending";
  for (int64_t len : config_.bucket_lens) {
    SF_CHECK(len > 0) << "bucket length" << len;
    queues_[len];  // materialize the FIFO
  }
}

int64_t BucketScheduler::bucket_for(int64_t seq_len) const {
  for (int64_t len : config_.bucket_lens) {
    if (seq_len <= len) return len;
  }
  return config_.bucket_lens.back();  // crop to the serving max
}

void BucketScheduler::enqueue(QueuedItem item) {
  auto it = queues_.find(item.req.bucket_len);
  SF_CHECK(it != queues_.end())
      << "bucket" << item.req.bucket_len << "not configured";
  it->second.push_back(std::move(item));
}

std::vector<QueuedItem> BucketScheduler::next_batch() {
  std::deque<QueuedItem>* pick = nullptr;
  int64_t oldest = -1;
  for (auto& [len, q] : queues_) {
    if (q.empty()) continue;
    const int64_t head = q.front().req.arrival_seq;
    if (pick == nullptr || head < oldest) {
      pick = &q;
      oldest = head;
    }
  }
  std::vector<QueuedItem> batch;
  if (pick == nullptr) return batch;
  const int n = std::min<int>(config_.max_batch,
                              static_cast<int>(pick->size()));
  batch.reserve(n);
  for (int i = 0; i < n; ++i) {
    batch.push_back(std::move(pick->front()));
    pick->pop_front();
  }
  ++batches_dispatched_;
  requests_dispatched_ += n;
  return batch;
}

int64_t BucketScheduler::pending() const {
  int64_t n = 0;
  for (const auto& [len, q] : queues_) n += static_cast<int64_t>(q.size());
  return n;
}

int64_t BucketScheduler::pending_in_bucket(int64_t bucket_len) const {
  auto it = queues_.find(bucket_len);
  return it == queues_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

}  // namespace sf::serve
