// Length-bucketed continuous-batching scheduler.
//
// Why buckets: the sequence-length distribution is long-tailed (Fig. 4),
// and attention-family work scales superlinearly in crop length, so
// padding every request to the global max burns most of the model stage
// on padding. Each request is assigned the smallest configured bucket
// that fits min(seq_len, max bucket); a dispatched batch only ever holds
// requests of one bucket, so no element pays for a longer one.
//
// Why continuous: batches are not formed on a timer. Whenever a model
// worker frees up it calls next_batch(), which drains up to max_batch
// requests from the bucket whose head request is oldest — partially
// filled batches dispatch immediately rather than waiting to fill, and
// the batch re-fills from whatever is queued the moment a worker is
// ready. Head-of-line age (arrival_seq, assigned at admission) picks the
// bucket, which bounds cross-bucket starvation: a bucket's head can only
// wait while strictly older heads are served.
//
// Thread model: the scheduler is a pure data structure with no locks —
// Service drives it under its own mutex. That makes its decisions a pure
// function of the enqueue order, which is what the determinism test
// replays (a seeded arrival trace always yields the same batches).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "serve/request.h"

namespace sf::serve {

struct SchedulerConfig {
  /// Bucket crop lengths, ascending. The last is the serving max: longer
  /// sequences are cropped to it (the training pipeline's crop semantics).
  std::vector<int64_t> bucket_lens = {16, 24, 32, 48};
  /// Max requests per dispatched batch (1 = one-at-a-time serving).
  int max_batch = 4;
};

/// A featurized request waiting for a model slot.
struct QueuedItem {
  Request req;
  data::Batch features;
  bool cache_hit = false;
  double featurize_s = 0.0;
  double t_ready_us = 0.0;  ///< trace clock at enqueue (featurize done)
};

class BucketScheduler {
 public:
  explicit BucketScheduler(SchedulerConfig config);

  /// Smallest bucket holding min(seq_len, max bucket). Pure; Service
  /// calls this at admission so the estimate and the queue agree.
  int64_t bucket_for(int64_t seq_len) const;

  /// Append to its bucket's FIFO (req.bucket_len must be a configured
  /// bucket).
  void enqueue(QueuedItem item);

  /// Dispatch up to max_batch items from the bucket with the oldest head
  /// request (by arrival_seq). Empty result means nothing is queued.
  std::vector<QueuedItem> next_batch();

  int64_t pending() const;
  int64_t pending_in_bucket(int64_t bucket_len) const;
  const SchedulerConfig& config() const { return config_; }

  /// Total batches dispatched / requests dispatched (mean batch size =
  /// second / first).
  int64_t batches_dispatched() const { return batches_dispatched_; }
  int64_t requests_dispatched() const { return requests_dispatched_; }

 private:
  SchedulerConfig config_;
  std::map<int64_t, std::deque<QueuedItem>> queues_;  ///< bucket -> FIFO
  int64_t batches_dispatched_ = 0;
  int64_t requests_dispatched_ = 0;
};

}  // namespace sf::serve
