#include "serve/service.h"

#include <utility>

#include "common/error.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sf::serve {

namespace {
struct ServeMetrics {
  obs::Counter& completed =
      obs::Registry::global().counter("serve.completed");
  obs::Counter& failed = obs::Registry::global().counter("serve.failed");
  obs::Histogram& total_s = obs::Registry::global().histogram(
      "serve.total_s", 1e-5, 100.0, 40);
  obs::Histogram& featurize_s = obs::Registry::global().histogram(
      "serve.featurize_s", 1e-6, 100.0, 40);
  obs::Histogram& forward_s = obs::Registry::global().histogram(
      "serve.forward_s", 1e-5, 100.0, 40);
  obs::Histogram& batch_size = obs::Registry::global().histogram(
      "serve.batch_size", 0.5, 64.0, 16);
};
ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}
}  // namespace

Service::Service(ServeConfig config, data::DatasetConfig dataset_config,
                 model::ModelConfig base_model,
                 const model::ParamStore* source_weights)
    : config_(std::move(config)),
      dataset_(std::move(dataset_config)),
      admission_(config_.admission),
      cache_(config_.cache),
      scheduler_(config_.scheduler) {
  SF_CHECK(config_.feature_workers >= 1);
  SF_CHECK(config_.model_workers >= 1);
  // One replica set per model worker, one replica per bucket: forwards
  // never share a model object, so no forward ever waits on another.
  std::vector<Tensor> source;
  if (source_weights != nullptr) {
    for (const auto& p : source_weights->all()) {
      source.push_back(p.value());
    }
  }
  replicas_.resize(static_cast<size_t>(config_.model_workers));
  for (int w = 0; w < config_.model_workers; ++w) {
    for (int64_t bucket : config_.scheduler.bucket_lens) {
      auto net = std::make_unique<model::MiniAlphaFold>(
          base_model.with_crop(bucket), config_.model_seed);
      if (!source.empty()) {
        auto params = net->params().all();
        SF_CHECK(params.size() == source.size())
            << "source weight count mismatch:" << source.size() << "vs"
            << params.size();
        for (size_t i = 0; i < params.size(); ++i) {
          params[i].mutable_value().copy_from(source[i]);
        }
      }
      replicas_[static_cast<size_t>(w)][bucket] = std::move(net);
    }
    free_replica_sets_.push_back(static_cast<size_t>(w));
  }
  feature_pool_ =
      std::make_unique<ThreadPool>(static_cast<size_t>(config_.feature_workers));
  model_pool_ =
      std::make_unique<ThreadPool>(static_cast<size_t>(config_.model_workers));
}

Service::~Service() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  // Drain everything in flight so pool teardown never races live state.
  wait_all();
  // wait_all() returns when the last response lands, but the feature
  // worker that enqueued it may still be about to publish a model task —
  // join the producer pool before its consumer pool is destroyed.
  feature_pool_.reset();
  model_pool_.reset();
}

int64_t Service::submit(int64_t sample_index) {
  const data::SampleMeta& meta = dataset_.meta(sample_index);
  const int64_t bucket = scheduler_.bucket_for(meta.seq_len);
  const double est = estimate_work(bucket);

  Request req;
  req.sample_index = sample_index;
  req.seq_len = meta.seq_len;
  req.bucket_len = bucket;
  req.est_work = est;
  req.t_submit_us = obs::trace_now_us();

  RejectReason reason = RejectReason::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    req.id = next_id_++;
    ++submitted_;
    if (stopping_) reason = RejectReason::kShutdown;
  }
  SF_TRACE_SPAN_ID("serve", "enqueue", req.id);
  if (reason == RejectReason::kNone) reason = admission_.try_admit(est);
  if (reason != RejectReason::kNone) {
    Response resp;
    resp.id = req.id;
    resp.sample_index = sample_index;
    resp.ok = false;
    resp.reject = reason;
    resp.total_s = (obs::trace_now_us() - req.t_submit_us) * 1e-6;
    finish(std::move(resp), est, /*admitted=*/false);
    return req.id;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    req.arrival_seq = next_arrival_++;
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    ++outstanding_;
  }
  feature_pool_->submit([this, req] { featurize_task(req); });
  return req.id;
}

void Service::featurize_task(Request req) {
  try {
    SF_TRACE_SPAN_ID("serve", "featurize", req.id);
    Timer timer;
    QueuedItem item;
    const uint64_t key =
        FeatureCache::key(dataset_.sequence(req.sample_index), req.bucket_len);
    if (auto cached = cache_.get(key)) {
      item.features = std::move(*cached);
      item.cache_hit = true;
    } else {
      item.features = dataset_.prepare_batch(req.sample_index, req.bucket_len);
      cache_.put(key, item.features);
    }
    item.featurize_s = timer.elapsed();
    metrics().featurize_s.observe(item.featurize_s);
    item.req = req;
    item.t_ready_us = obs::trace_now_us();
    {
      std::lock_guard<std::mutex> lock(mu_);
      scheduler_.enqueue(std::move(item));
    }
    model_pool_->submit([this] { model_drain_task(); });
  } catch (...) {
    fail_request(req);
  }
}

void Service::model_drain_task() {
  // Continuous batching: lease a replica set and keep refilling from the
  // scheduler until the queue is dry. Items enqueued meanwhile are either
  // taken here or by the task their own featurize submitted.
  size_t slot = 0;
  bool leased = false;
  for (;;) {
    std::vector<QueuedItem> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch = scheduler_.next_batch();
      if (batch.empty()) {
        if (leased) free_replica_sets_.push_back(slot);
        return;
      }
      if (!leased) {
        // The pool has exactly model_workers threads, one set each.
        SF_CHECK(!free_replica_sets_.empty()) << "replica lease underflow";
        slot = free_replica_sets_.back();
        free_replica_sets_.pop_back();
        leased = true;
      }
    }
    const double t_dispatch_us = obs::trace_now_us();
    const int64_t bucket = batch.front().req.bucket_len;
    metrics().batch_size.observe(static_cast<double>(batch.size()));
    SF_TRACE_SPAN_ID("serve", "batch",
                     static_cast<int64_t>(batch.size()));
    model::MiniAlphaFold& net = *replicas_[slot].at(bucket);
    for (QueuedItem& item : batch) {
      const Request& req = item.req;
      Response resp;
      resp.id = req.id;
      resp.sample_index = req.sample_index;
      resp.bucket_len = req.bucket_len;
      resp.batch_size = static_cast<int64_t>(batch.size());
      resp.cache_hit = item.cache_hit;
      resp.featurize_s = item.featurize_s;
      resp.queue_s =
          (item.t_ready_us - req.t_submit_us) * 1e-6 - item.featurize_s;
      resp.batch_wait_s = (t_dispatch_us - item.t_ready_us) * 1e-6;
      try {
        Timer fwd;
        model::ModelOutput out;
        {
          SF_TRACE_SPAN_ID("serve", "forward", req.id);
          out = net.forward(item.features, config_.num_recycles,
                            /*compute_loss=*/true);
        }
        resp.forward_s = fwd.elapsed();
        metrics().forward_s.observe(resp.forward_s);
        resp.positions = std::move(out.positions);
        resp.lddt = out.lddt;
        resp.ok = true;
        resp.total_s = (obs::trace_now_us() - req.t_submit_us) * 1e-6;
        SF_TRACE_SPAN_ID("serve", "respond", req.id);
        finish(std::move(resp), req.est_work, /*admitted=*/true);
      } catch (...) {
        fail_request(req);
      }
    }
  }
}

void Service::fail_request(const Request& req) {
  metrics().failed.add();
  Response resp;
  resp.id = req.id;
  resp.sample_index = req.sample_index;
  resp.bucket_len = req.bucket_len;
  resp.ok = false;
  resp.total_s = (obs::trace_now_us() - req.t_submit_us) * 1e-6;
  finish(std::move(resp), req.est_work, /*admitted=*/true);
}

void Service::finish(Response resp, double est_work, bool admitted) {
  if (admitted) {
    admission_.on_complete(est_work);
    if (resp.ok) {
      metrics().completed.add();
      metrics().total_s.observe(resp.total_s);
    }
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_.push_back(std::move(resp));
    ++completed_;
    if (admitted) --outstanding_;
  }
  cv_done_.notify_all();
}

std::vector<Response> Service::drain() {
  std::lock_guard<std::mutex> lock(done_mu_);
  std::vector<Response> out = std::move(done_);
  done_.clear();
  return out;
}

std::vector<Response> Service::wait_all() {
  std::unique_lock<std::mutex> lock(done_mu_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0; });
  std::vector<Response> out = std::move(done_);
  done_.clear();
  return out;
}

int64_t Service::outstanding() const {
  std::lock_guard<std::mutex> lock(done_mu_);
  return outstanding_;
}

Service::Stats Service::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.batches_dispatched = scheduler_.batches_dispatched();
    s.requests_dispatched = scheduler_.requests_dispatched();
  }
  s.admitted = admission_.admitted();
  s.rejected = admission_.rejected();
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    s.completed = completed_;
  }
  s.mean_batch_size =
      s.batches_dispatched > 0
          ? static_cast<double>(s.requests_dispatched) /
                static_cast<double>(s.batches_dispatched)
          : 0.0;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  return s;
}

}  // namespace sf::serve
