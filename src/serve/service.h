// Structure-prediction inference service (the ParaFold split, in-process).
//
// ParaFold's observation: AlphaFold serving is two very different stages —
// cheap-ish, highly parallel CPU feature work, and an expensive model
// stage that must be kept saturated. This service wires that split around
// the mini-AlphaFold:
//
//   submit(sample) --admission--> feature pool --> bucket scheduler
//                                     |                 |
//                                  (cache)          model pool
//                                                       |
//                                              drain()/wait_all()
//
//   - Admission control (AdmissionController) bounds outstanding requests
//     by count and by estimated work; overload is rejected with a reason,
//     never queued into unbounded latency.
//   - Featurization runs on a ThreadPool of feature workers, consulting
//     the FeatureCache (sequence-hash keyed, LRU + byte eviction) so
//     repeated sequences skip the MSA profile pass entirely.
//   - The BucketScheduler groups compatible crop lengths; model workers
//     (a second ThreadPool) loop next_batch() until the queue is dry —
//     continuous batching, no dispatch timer.
//   - Each model worker owns one MiniAlphaFold replica per length bucket
//     (weights shared from one source via copy_from; parameter shapes are
//     crop-independent), so forwards never contend on a model.
//
// Every request leaves a span trail (category "serve": enqueue ->
// featurize -> batch -> forward -> respond, arg = request id) and feeds
// the serve.* metrics in sf_obs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "data/protein_sample.h"
#include "model/alphafold.h"
#include "serve/admission.h"
#include "serve/feature_cache.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace sf::serve {

struct ServeConfig {
  SchedulerConfig scheduler;
  AdmissionConfig admission;
  FeatureCacheConfig cache;
  int feature_workers = 2;
  int model_workers = 1;
  int64_t num_recycles = 1;
  /// Weight init seed for replicas when no source weights are given.
  uint64_t model_seed = 7;
};

class Service {
 public:
  /// `base_model` supplies channel widths; each bucket replica is built
  /// from base_model.with_crop(bucket). `source_weights` (optional, e.g.
  /// a trained session's ParamStore) is copied into every replica; shapes
  /// must match, which holds for any crop of the same base config.
  Service(ServeConfig config, data::DatasetConfig dataset_config,
          model::ModelConfig base_model,
          const model::ParamStore* source_weights = nullptr);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Non-blocking. Returns the request id. A rejected request still gets
  /// an id; its Response (ok = false, reject = reason) is immediately
  /// available to drain(). An internal featurize/forward error also
  /// surfaces as ok = false (reject = kNone).
  int64_t submit(int64_t sample_index);

  /// All finished responses so far (completed and rejected), in
  /// completion order. Non-blocking.
  std::vector<Response> drain();

  /// Block until every admitted request has a response, then drain().
  std::vector<Response> wait_all();

  /// Admitted requests without a response yet.
  int64_t outstanding() const;

  const AdmissionController& admission() const { return admission_; }
  const FeatureCache& cache() const { return cache_; }
  const ServeConfig& config() const { return config_; }

  struct Stats {
    int64_t submitted = 0;
    int64_t admitted = 0;
    int64_t rejected = 0;
    int64_t completed = 0;
    int64_t batches_dispatched = 0;
    int64_t requests_dispatched = 0;
    double mean_batch_size = 0.0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
  };
  Stats stats() const;

 private:
  void featurize_task(Request req);
  void model_drain_task();
  void fail_request(const Request& req);
  void finish(Response resp, double est_work, bool admitted);

  const ServeConfig config_;
  data::SyntheticProteinDataset dataset_;
  AdmissionController admission_;
  FeatureCache cache_;

  /// replicas_[worker][bucket_len]; a model task leases one worker's set.
  std::vector<std::map<int64_t, std::unique_ptr<model::MiniAlphaFold>>>
      replicas_;

  mutable std::mutex mu_;  ///< scheduler + replica lease + arrival seq
  BucketScheduler scheduler_;
  std::vector<size_t> free_replica_sets_;
  int64_t next_id_ = 0;
  int64_t next_arrival_ = 0;
  int64_t submitted_ = 0;
  bool stopping_ = false;

  mutable std::mutex done_mu_;  ///< responses + outstanding count
  std::condition_variable cv_done_;
  std::vector<Response> done_;
  int64_t outstanding_ = 0;
  int64_t completed_ = 0;

  // Pools last: their destructors join while the rest is still alive.
  std::unique_ptr<ThreadPool> feature_pool_;
  std::unique_ptr<ThreadPool> model_pool_;
};

}  // namespace sf::serve
