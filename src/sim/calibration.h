// Calibration constants for the cluster simulator.
//
// The simulator is mechanism-based (roofline kernels, ring collectives,
// straggler maxima, serial fractions); the constants below anchor those
// mechanisms to the measurements published in the paper. Each constant
// cites its anchor. Changing an anchor changes the corresponding figure —
// the benches print both paper and simulated values side by side.
#pragma once

namespace sf::sim::calib {

// ---- Reference step time (Fig. 8) -----------------------------------------
// "Reference model requires 6.76s per step on A100, while on H100 the step
// time is reduced to 4.07s" (§4.1). Batch = 1 crop/GPU, bs128 global.
inline constexpr double kRefStepA100 = 6.76;
inline constexpr double kRefStepH100 = 4.07;
// The measured reference steps above include the typical straggler/stall
// noise of a live cluster; the simulator composes nominal kernel time plus
// sampled noise, so the nominal profile is the paper number scaled down by
// the expected noise share at the measurement scale (128 GPUs, eager).
inline constexpr double kRefNominalScale = 0.85;

// ---- Step-time composition at the reference point (§2.2, Table 1) ---------
// Fractions of the reference step. MHA 34%, LN 14%, weight update 6%,
// SWA 6%, grad clip 3%, CPU overhead 9.1%, serial modules (data pipeline +
// structure module) 11%. Math-bound GEMM outside MHA ~10% (from Table 1's
// 24% math-bound minus the MHA GEMM share). Remainder: other memory-bound.
inline constexpr double kFracMha = 0.34;
inline constexpr double kFracLayerNorm = 0.14;
inline constexpr double kFracWeightUpdate = 0.06;
inline constexpr double kFracSwa = 0.06;
inline constexpr double kFracGradClip = 0.03;
inline constexpr double kFracCpuOverhead = 0.091;
inline constexpr double kFracSerial = 0.11;
inline constexpr double kFracOtherGemm = 0.10;
// kFracOtherMem = 1 - sum(above) = 0.069

// ---- Baseline kernel efficiencies (§2.2) -----------------------------------
// "MHA only reached 26% of the theoretical performance, and LN only
// reached 10%... Weight Update ... 10% ... SWA ... less than 5% ...
// gradient clipping ... less than 1%".
inline constexpr double kEffMhaBaseline = 0.26;
inline constexpr double kEffLnBaseline = 0.10;
inline constexpr double kEffWuBaseline = 0.10;
inline constexpr double kEffSwaBaseline = 0.05;
inline constexpr double kEffClipBaseline = 0.01;

// ---- Optimized kernel efficiencies (fit to §4.1 speedups) ------------------
// Chosen so the waterfall reproduces: Triton MHA 1.12x, Triton LN 1.13x,
// FusedAdam+SWA 1.17x overall-step speedups.
inline constexpr double kEffMhaTriton = 0.385;
inline constexpr double kEffLnTriton = 0.56;
inline constexpr double kEffFusedAdamSwa = 0.80;

// ---- Other optimization factors (fit to §4.1) ------------------------------
// Batched pre-MHA GEMMs: 1.03x overall => ~25% cut of the non-MHA GEMM slice.
inline constexpr double kBatchedGemmFactor = 0.75;
// bf16 (§3.4: 1.24x overall; memory-bound workload, casting overhead and
// fp32-only modules limit the gain below the ideal 2x byte reduction).
inline constexpr double kBf16MemFactor = 0.62;
inline constexpr double kBf16MathFactor = 0.80;
// torch.compile (1.17x overall): fuses fragmented memory-bound ops and
// "significantly accelerated serial modules such as the Structure Module".
inline constexpr double kCompileOtherMemFactor = 0.35;
inline constexpr double kCompileSerialFactor = 0.70;
inline constexpr double kCompileMemopFactor = 0.50;
// Gradient checkpointing recompute: disabling it removes the forward
// recompute in backward (~25% of trunk compute).
inline constexpr double kGradCkptRecompute = 0.25;

// ---- DAP (FastFold-style) ---------------------------------------------------
// Per-step DAP collective volume at DAP-n (activations all-gather/all-to-all
// across 54 blocks, fwd+bwd), bytes at paper-scale dims, per GPU.
inline constexpr double kDapCommBytesPerStep = 1.1e9;
inline constexpr int kDapSyncPointsPerStep = 216;  // ~4 per block, 54 blocks
// Kernel-efficiency knee: utilization = s / (s + kUtilHalfBytes) for
// memory-bound kernels of size s bytes (wave-quantization analogue).
// Fit so ScaleFold's own DAP speedups land near the paper's 1.6x/2.4x/
// 2.77x at DAP-2/4/8.
inline constexpr double kUtilHalfBytesMem = 7.2e7;
// Measured relative kernel efficiency when DAP shrinks the per-kernel
// workload n-fold (wave quantization makes it a staircase, with a cliff
// between DAP-4 and DAP-8 implied by the paper's own speedup series).
// Optimized (ScaleFold) kernels are small — bf16 + fused kernels shrink
// per-kernel work — so DAP division bites hard (fits the paper's own
// 1.6x/2.4x/2.77x DAP speedups):
inline constexpr double kDapMemEffTable[4] = {1.0, 0.64, 0.60, 0.35};
inline constexpr double kDapMathEffTable[4] = {1.0, 0.72, 0.66, 0.45};
// Unoptimized baseline kernels are larger and sit above the saturation
// knee until DAP-8, where the cliff makes DAP-8 no better than DAP-4
// (fits §3.1: baseline DAP-2 1.42x, DAP-4 1.57x, no gain at DAP-8):
inline constexpr double kDapMemEffTableLarge[4] = {1.0, 0.82, 0.80, 0.40};
inline constexpr double kDapMathEffTableLarge[4] = {1.0, 0.88, 0.85, 0.55};
inline constexpr double kUtilHalfFlopsMath = 8.0e10;
// Typical per-kernel sizes at DAP-1 paper scale (to position the knee).
inline constexpr double kTypicalMemKernelBytes = 6.0e7;
inline constexpr double kTypicalMathKernelFlops = 1.2e11;
// CUDA Graph effectiveness by DAP degree (§4.1: "CudaGraph is not
// beneficial for DAP-1 ... can be advantageous for DAP-2, DAP-4, and
// DAP-8"): at DAP-1 the kernels are long enough that launch work hides
// behind asynchronous execution, so capturing removes little; as DAP
// shrinks kernels the exposed launch path grows and capture pays off.
inline constexpr double kGraphEffectiveness[4] = {0.10, 0.60, 0.85, 0.95};
// Per-synchronization-point host jitter inside a DAP group: every block
// boundary is a rendezvous, so eager-mode launch jitter multiplies across
// the ~216 sync points (the mechanism that makes eager DAP-8 slower than
// eager DAP-4, §4.1). CUDA Graph shrinks it by ~20x.
inline constexpr double kPerSyncJitterEagerSec = 1.0e-3;
inline constexpr double kPerSyncJitterGraphSec = 2.0e-4;

// ---- DP gradient all-reduce exposure (§3.3.1) -------------------------------
// Fraction of the data-parallel gradient all-reduce left exposed after
// bucketed overlap with backward: the first buckets reduce behind the
// remaining backward compute; the tail (last buckets + the clip-norm
// combine) cannot hide. Calibrated against bench_overlap_allreduce
// (BENCH_overlap.json): the measured overlapped/blocking comm-time ratio
// of the in-process DDP path at world size 4 lands in the 0.25-0.35
// band, consistent with the paper attributing most of its comm win to
// launch-order bucketing with a small exposed tail.
inline constexpr double kGradCommExposedFrac = 0.30;

// ---- Host-side noise (§3.1 "imbalanced communication") ---------------------
// Background-process CPU peaks arrive at a fixed rate per wall-clock
// second (longer steps absorb more events); they delay kernel launching,
// so eager mode suffers and CUDA Graph replay is immune. Python GC adds
// its own pause process until disabled (§3.2).
inline constexpr double kCpuPeakRatePerSec = 0.003;   // per rank per second
inline constexpr double kCpuPeakMeanSec = 0.35;
inline constexpr double kGcPauseRatePerSec = 0.012;   // per rank per second
inline constexpr double kGcPauseMeanSec = 0.12;

// ---- Data pipeline (§3.2, Fig. 4/5) ----------------------------------------
// Batch preparation times span ~3 decades; ~10% of batches are slow
// enough to block. Log-normal fit anchored to a ~1.3s median at paper
// scale with sigma giving a ~20x p99/median ratio.
inline constexpr double kPrepLogMedianSec = 0.6;   // exp(mu)
inline constexpr double kPrepLogSigma = 1.0;
inline constexpr double kPrepMaxSec = 120.0;       // featurization cap
inline constexpr int kLoaderWorkersPerRank = 4;
inline constexpr int kLoaderPrefetchDepth = 8;

// ---- Time-to-train (Fig. 9/10/11, §4.2) ------------------------------------
inline constexpr double kInitCompileSec = 120.0;  // "~2 minutes init+compile"
// MLPerf partial-convergence run: steps from the predefined checkpoint to
// the lowered target at global batch 256.
inline constexpr int kMlperfStepsToConverge = 400;
// From-scratch: "avg_lddt_ca must exceed 0.8 before first 5000 training
// steps ... 50000~60000 steps to reach 0.9".
inline constexpr int kScratchPhase1Steps = 5000;     // bs 128
inline constexpr int kScratchTotalSteps = 55000;     // bs 256 afterwards
// Evaluation: ~180 full-length CASP-like proteins per round, evaluated
// data-parallel in waves over the available evaluation GPUs. Per-protein
// time scales with the model-kernel speedups active on the cluster
// (Fig. 9: eval share grows 22% -> 43% as steps get faster). Reading the
// set from disk instead of the DRAM cache multiplies per-round cost.
inline constexpr int kEvalProteins = 180;
inline constexpr double kEvalPerProteinRefSec = 75.0;
inline constexpr double kEvalRoundOverheadSec = 3.0;
inline constexpr double kEvalDiskFactor = 2.8;
inline constexpr int kEvalEverySteps = 40;
inline constexpr int kEvalDedicatedGpus = 32;  // 2080 = 2048 train + 32 eval

// ---- Failure model (fault-tolerant TTT) ------------------------------------
// Per-node MTBF: published failure telemetry for large GPU training
// clusters clusters around one hardware-attributable interruption per
// node every few months once ECC, NVLink, NIC and host failures are
// combined; at 260 nodes (2080 GPUs / 8) that is roughly one failure
// every 8-9 hours of wall clock — guaranteed to hit a 10-hour run.
inline constexpr double kNodeMtbfHours = 2190.0;  // ~3 months per node
inline constexpr int kGpusPerNode = 8;
// Restart cost: failure detection + job reschedule + process/NCCL init +
// checkpoint reload. Dominated by the ~2 min init/compile (§4.2) plus
// scheduler latency.
inline constexpr double kRestartSec = 300.0;
// Synchronous checkpoint write (params + optimizer state to the parallel
// FS); the training step pauses for it.
inline constexpr double kCkptWriteSec = 15.0;

}  // namespace sf::sim::calib
