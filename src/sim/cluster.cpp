#include "sim/cluster.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "sim/calibration.h"
#include "sim/collective.h"
#include "sim/cost_model.h"

namespace sf::sim {
namespace {

// Effective memory-bandwidth efficiency per arch (fraction of datasheet
// reached by this workload's kernels; H100's larger L2 and TMA lift it).
// Fit so the reference step reproduces 6.76s (A100) -> 4.07s (H100).
double arch_mem_eff(const GpuArch& arch) {
  return arch.name.find("H100") != std::string::npos ? 0.95 : 0.82;
}

// Harmonic number: E[max of n iid Exp(mu)] = mu * H(n).
double harmonic(int n) {
  double h = 0.0;
  for (int i = 1; i <= n; ++i) h += 1.0 / i;
  return h;
}

/// Per-category kernel/overhead seconds at the reference point on `arch`,
/// DAP-1, all toggles off.
struct CategoryTimes {
  double mha, ln, gemm, other_mem, memop, wu, swa, clip, serial, cpu;
};

CategoryTimes reference_times(const GpuArch& arch) {
  const StepProfile p = StepProfile::reference();
  const GpuArch a100 = GpuArch::a100();
  // Scale each fraction of the A100 reference step by the arch ratio:
  // memory-bound categories by effective bandwidth, math by TF32 rate,
  // host overhead by neither (CPU-side).
  const double mem_ratio = (a100.mem_bw_gbs * arch_mem_eff(a100)) /
                           (arch.mem_bw_gbs * arch_mem_eff(arch));
  const double math_ratio = a100.tf32_tflops / arch.tf32_tflops;
  const double T = calib::kRefStepA100 * calib::kRefNominalScale;
  CategoryTimes t;
  t.mha = T * p.mha * mem_ratio;          // flash-less MHA is bandwidth-bound
  t.ln = T * p.layernorm * mem_ratio;
  t.gemm = T * p.other_gemm * math_ratio;
  t.other_mem = T * p.other_mem * mem_ratio;
  t.memop = T * p.memop * mem_ratio;
  t.wu = T * p.weight_update * mem_ratio;
  t.swa = T * p.swa * mem_ratio;
  t.clip = T * p.grad_clip * mem_ratio;
  t.serial = T * p.serial * mem_ratio;
  t.cpu = T * p.cpu_overhead;  // host-side, arch-independent
  return t;
}

}  // namespace

StepStats simulate_step_time(const ClusterConfig& cfg) {
  SF_CHECK(cfg.num_gpus >= 1);
  SF_CHECK(cfg.dap >= 1);
  SF_CHECK(cfg.num_gpus % cfg.dap == 0) << "num_gpus must be divisible by dap";
  const Toggles& tg = cfg.toggles;

  CategoryTimes t = reference_times(cfg.arch);

  // ---- Kernel-level toggles (§3.3.1) ----
  if (tg.triton_mha) t.mha *= calib::kEffMhaBaseline / calib::kEffMhaTriton;
  if (tg.triton_ln) t.ln *= calib::kEffLnBaseline / calib::kEffLnTriton;
  if (tg.fused_adam_swa) {
    t.wu *= calib::kEffWuBaseline / calib::kEffFusedAdamSwa;
    t.swa *= calib::kEffSwaBaseline / calib::kEffFusedAdamSwa;
    t.clip = 0.0;  // bucketed norm hidden under the gradient all-reduce
  }
  if (tg.batched_gemm) t.gemm *= calib::kBatchedGemmFactor;
  if (tg.bf16) {
    t.mha *= calib::kBf16MemFactor;
    t.ln *= calib::kBf16MemFactor;
    t.other_mem *= calib::kBf16MemFactor;
    t.memop *= calib::kBf16MemFactor;
    t.gemm *= calib::kBf16MathFactor;
    t.serial *= calib::kBf16MemFactor;
  }
  if (tg.torch_compile) {
    t.other_mem *= calib::kCompileOtherMemFactor;
    t.memop *= calib::kCompileMemopFactor;
    t.serial *= calib::kCompileSerialFactor;
  }
  // Disabling gradient checkpointing needs the activation-memory headroom
  // DAP-8 provides (§4.1 applies it together with DAP-8 + CUDA Graph).
  const bool ckpt_disabled = tg.disable_grad_ckpt && cfg.dap >= 8;
  if (ckpt_disabled) {
    // Remove the forward recompute from backward across the trunk.
    const double f = 1.0 - calib::kGradCkptRecompute;
    t.mha *= f;
    t.ln *= f;
    t.gemm *= f;
    t.other_mem *= f;
  }

  // ---- DAP division with kernel-scalability loss (§3.1) ----
  const int n = cfg.dap;
  // bf16 and the fused kernels shrink per-launch work, pushing kernels
  // into the small-size regime where DAP division costs more utilization.
  const bool small_kernels = tg.bf16 || tg.triton_mha;
  const double mem_eff = dap_mem_efficiency(n, small_kernels);
  const double math_eff = dap_math_efficiency(n, small_kernels);
  StepStats out;
  const double par_mem = t.mha + t.ln + t.other_mem + t.memop;
  const double par_math = t.gemm;
  out.compute_s = par_mem / (n * mem_eff) + par_math / (n * math_eff);
  out.serial_s = t.serial;            // not parallelizable by DAP
  out.optimizer_s = t.wu + t.swa + t.clip;  // weights replicated per rank
  // CPU overhead: launches per rank are unchanged by DAP. How much of it
  // CUDA Graph can remove depends on how exposed the launch path is: at
  // DAP-1 it hides behind long kernels (capture buys ~nothing, §4.1); at
  // DAP-8 it is fully exposed and capture removes nearly all of it.
  double graph_eff = 0.0;
  if (tg.cuda_graph) {
    const int idx = n >= 8 ? 3 : n >= 4 ? 2 : n >= 2 ? 1 : 0;
    graph_eff = calib::kGraphEffectiveness[idx];
  }
  out.cpu_overhead_s = t.cpu * (1.0 - graph_eff);

  // ---- Collectives ----
  double dap_bytes = calib::kDapCommBytesPerStep;
  if (tg.bf16) dap_bytes *= 0.5;  // "can be reduced by low precision"
  out.dap_comm_s =
      n > 1 ? allgather_time_s(cfg.arch, dap_bytes, n) +
                  calib::kDapSyncPointsPerStep * cfg.arch.net_latency_us * 1e-6
            : 0.0;
  // Per-sync launch jitter inside the DAP group: each of the ~216 block
  // rendezvous waits for the slowest of n ranks' host-side jitter. This is
  // the dominant eager-mode DAP cost that CUDA Graph removes (§4.1:
  // without CUDA Graph, DAP-8 is slower than DAP-4).
  double sync_jitter = 0.0;
  if (n > 1) {
    const double jitter_mean = tg.cuda_graph ? calib::kPerSyncJitterGraphSec
                                             : calib::kPerSyncJitterEagerSec;
    sync_jitter =
        calib::kDapSyncPointsPerStep * jitter_mean * harmonic(n);
  }
  out.dap_comm_s += sync_jitter;
  const int dp = cfg.num_gpus / n;
  double grad_bytes = 93e6 * 4.0;  // 97M params, fp32 gradients
  if (tg.bf16) grad_bytes *= 0.5;
  // The bucketed all-reduce overlaps the backward pass; only the exposed
  // tail contributes to step time (calibrated, see calibration.h).
  out.grad_comm_s =
      calib::kGradCommExposedFrac * allreduce_time_s(cfg.arch, grad_bytes, dp);

  // ---- Sampled noise: CPU peaks, GC pauses, data-pipeline waits ----
  const double nominal =
      out.compute_s + out.serial_s + out.optimizer_s + out.cpu_overhead_s +
      out.dap_comm_s + out.grad_comm_s;
  Rng rng(cfg.seed);

  // Persistent heterogeneous node speeds (weather): per-rank speed
  // factors are sampled once — they model binned silicon, thermal
  // throttling, or a mis-provisioned host — and the slowest rank gates
  // every synchronized step, so the whole job pays (max - 1) of the
  // parallel work.
  double hetero_extra = 0.0;
  if (cfg.weather.hetero_speed_sigma > 0.0) {
    const double sigma = cfg.weather.hetero_speed_sigma;
    double max_f = 0.0;
    for (int r = 0; r < cfg.num_gpus; ++r) {
      // Mean-1 lognormal: E[exp(sigma*Z - sigma^2/2)] = 1.
      const double f = std::exp(sigma * rng.normal() - 0.5 * sigma * sigma);
      max_f = std::max(max_f, f);
    }
    hetero_extra =
        std::max(0.0, max_f - 1.0) * (out.compute_s + out.serial_s);
  }
  double sum_max_noise = 0.0, sum_mean_noise = 0.0;
  const int groups = dp;  // one loader per DAP group
  // Event probabilities scale with step duration (rate processes).
  const double p_peak =
      std::min(0.5, calib::kCpuPeakRatePerSec * std::max(nominal, 1e-3));
  const double p_gc =
      std::min(0.5, calib::kGcPauseRatePerSec * std::max(nominal, 1e-3));
  auto sample_prep = [&rng] {
    double prep = calib::kPrepLogMedianSec *
                  std::exp(calib::kPrepLogSigma * rng.normal());
    return std::min(prep, calib::kPrepMaxSec);
  };
  double sum_contention = 0.0;
  const double comm_s = out.dap_comm_s + out.grad_comm_s;
  for (int s = 0; s < cfg.sim_steps; ++s) {
    // Transient network contention (weather): a congested fabric
    // stretches this step's collectives on every rank at once, so it adds
    // to the step directly rather than to the straggler max.
    if (cfg.weather.contention_prob > 0.0 &&
        rng.bernoulli(std::min(1.0, cfg.weather.contention_prob))) {
      sum_contention += cfg.weather.contention_amplitude * comm_s;
    }
    double max_noise = 0.0, mean_noise = 0.0;
    for (int r = 0; r < cfg.num_gpus; ++r) {
      double noise = 0.0;
      if (!tg.cuda_graph) {
        // Background-process peaks stall the launch path.
        if (rng.bernoulli(p_peak)) {
          noise += rng.exponential(1.0 / calib::kCpuPeakMeanSec);
        }
        if (!tg.disable_gc && rng.bernoulli(p_gc)) {
          noise += rng.exponential(1.0 / calib::kGcPauseMeanSec);
        }
      } else {
        // Graphed steps are largely immune to launch-path stalls; the
        // residual python/data path still takes GC pauses.
        if (rng.bernoulli(p_peak * (1.0 - graph_eff))) {
          noise += rng.exponential(1.0 / calib::kCpuPeakMeanSec);
        }
        if (!tg.disable_gc && rng.bernoulli(p_gc * 0.5)) {
          noise += rng.exponential(1.0 / calib::kGcPauseMeanSec);
        }
      }
      max_noise = std::max(max_noise, noise);
      mean_noise += noise;
    }
    // Data-pipeline wait, one loader per DAP group.
    double max_wait = 0.0, mean_wait = 0.0;
    const double slack =
        calib::kLoaderPrefetchDepth * std::max(nominal, 1e-3);
    for (int g = 0; g < groups; ++g) {
      double wait;
      if (tg.nonblocking_loader) {
        // Ready-first: a slow batch is simply reordered, so a single
        // straggler cannot starve the consumer — steady-state supply is
        // governed by the median worker. Starvation needs most of the
        // pool to be slow simultaneously.
        double window[calib::kLoaderWorkersPerRank];
        for (double& w : window) w = sample_prep();
        std::sort(window, window + calib::kLoaderWorkersPerRank);
        double median_prep = window[calib::kLoaderWorkersPerRank / 2];
        double per_step_supply = median_prep / calib::kLoaderWorkersPerRank;
        // The prefetch buffer absorbs transient supply dips; only a
        // sustained deficit beyond roughly a buffered step's worth of
        // batches reaches the consumer.
        wait = std::max(0.0, per_step_supply - 2.0 * std::max(nominal, 1e-3));
      } else {
        // In-order: the next batch itself gates the consumer; its slack is
        // the prefetch window.
        wait = std::max(0.0, sample_prep() - slack);
      }
      max_wait = std::max(max_wait, wait);
      mean_wait += wait;
    }
    sum_max_noise += max_noise + max_wait;
    sum_mean_noise += mean_noise / cfg.num_gpus + mean_wait / groups;
  }
  const double e_max = sum_max_noise / cfg.sim_steps;
  const double e_mean = sum_mean_noise / cfg.sim_steps;
  out.data_wait_s = e_mean;          // average direct stall per rank
  out.imbalance_s = e_max - e_mean   // extra wait induced at the barrier
                    + hetero_extra;  // persistent slow-host straggling
  out.contention_s = sum_contention / cfg.sim_steps;

  out.mean_step_s = nominal + e_max + hetero_extra + out.contention_s;
  // Ideal: perfect DAP scaling of all compute, zero overheads/stalls.
  out.ideal_s = (par_mem + par_math) / n;
  return out;
}

BarrierBreakdown barrier_breakdown(const ClusterConfig& cfg) {
  StepStats s = simulate_step_time(cfg);
  const int n = cfg.dap;
  // Kernel-scalability loss: actual parallel compute vs perfect 1/n split.
  const double scal_loss = s.compute_s - s.ideal_s;
  BarrierBreakdown b;
  const double opt = s.ideal_s + s.optimizer_s;  // optimal per-step floor
  b.cpu_overhead = s.cpu_overhead_s / opt;
  b.serial_modules = s.serial_s / opt;
  b.imbalanced_comm = (s.imbalance_s + s.data_wait_s) / opt;
  b.kernel_scalability = scal_loss / opt;
  b.comm_overhead = (s.dap_comm_s + s.grad_comm_s) / opt;
  b.total_gap = (s.mean_step_s - opt) / opt;
  (void)n;
  return b;
}

}  // namespace sf::sim
