// Cluster step-time simulator.
//
// Composes the mechanisms identified in §3.1 into a per-step time for an
// (arch, #GPUs, DAP-n, toggles) configuration:
//   - per-category kernel time from the reference StepProfile, scaled by
//     the roofline arch ratios and modified by each optimization toggle;
//   - DAP division of parallelizable work with size-dependent kernel
//     efficiency loss (cost_model);
//   - DAP all-gather/all-to-all and DP gradient all-reduce collectives;
//   - host-side noise (background CPU peaks, Python GC pauses) sampled per
//     rank per step; the global synchronization takes the max over ranks
//     (straggler effect). CUDA-Graph replay is immune to launch-path noise;
//   - data-pipeline waits sampled from the Fig. 4 preparation-time
//     distribution under the in-order or ready-first yield policy.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "sim/gpu_arch.h"
#include "sim/workload.h"

namespace sf::sim {

/// The eight ScaleFold optimizations (§5) as independent switches.
struct Toggles {
  bool batched_gemm = false;
  bool nonblocking_loader = false;
  bool bf16 = false;
  bool triton_mha = false;
  bool triton_ln = false;
  bool fused_adam_swa = false;  ///< includes grad-clip overlap
  bool cuda_graph = false;
  bool disable_grad_ckpt = false;  ///< only effective with DAP >= 2 (memory)
  bool disable_gc = false;
  bool torch_compile = false;

  static Toggles none() { return {}; }
  static Toggles all_on() {
    Toggles t;
    t.batched_gemm = t.nonblocking_loader = t.bf16 = t.triton_mha =
        t.triton_ln = t.fused_adam_swa = t.cuda_graph = t.disable_grad_ckpt =
            t.disable_gc = t.torch_compile = true;
    return t;
  }
};

/// MTBF-driven node-failure model for time-to-train under faults.
/// Failures arrive as a Poisson process over the whole cluster (rate =
/// nodes / node MTBF, plus any preemption rate); each failure either
/// rolls the run back to the last checkpoint and costs a restart
/// (elastic = false) or shrinks the job in place and continues at
/// reduced capacity until a replacement rejoins (elastic = true — the
/// simulator counterpart of DataParallelTrainer's elastic protocol).
/// Disabled by default.
struct FailureModel {
  double node_mtbf_hours = 0.0;  ///< per-node MTBF; <= 0 disables failures
  int gpus_per_node = 8;
  /// Detection + reschedule + init/compile + checkpoint reload.
  double restart_seconds = 300.0;
  /// Synchronous checkpoint write pause.
  double checkpoint_write_seconds = 15.0;
  /// Steps between checkpoints; 0 derives the Young/Daly optimum from
  /// the cluster failure rate and the write cost.
  int checkpoint_interval_steps = 0;
  /// Cluster-wide preemption rate (spot/priority evictions): an extra
  /// Poisson failure source on top of the MTBF process.
  double preempt_rate_per_hour = 0.0;
  /// Elastic mode: a failure loses only the in-flight step plus a short
  /// in-memory resync (no checkpoint rollback, no restart), then the run
  /// continues on the survivors until the replacement node rejoins.
  bool elastic = false;
  /// Quiesce + communicator rebuild + in-memory re-shard on a rank loss.
  double elastic_resync_seconds = 30.0;
  /// Wall time until a replacement node rejoins (grow) after a loss.
  double rejoin_seconds = 120.0;
};

/// Chaos "weather" axes layered onto the step-time simulation:
/// persistent heterogeneous node speeds (a slow host gates every global
/// barrier) and transient network contention (a congested fabric
/// stretches the step's collectives). All default off.
struct WeatherModel {
  /// Lognormal sigma of the persistent per-rank speed factor; the
  /// slowest rank's factor gates the synchronized step.
  double hetero_speed_sigma = 0.0;
  /// Per-step probability that a contention event hits the fabric.
  double contention_prob = 0.0;
  /// Multiplier on collective time added while contended (1.0 = the
  /// step's comm doubles).
  double contention_amplitude = 0.0;
};

struct ClusterConfig {
  GpuArch arch = GpuArch::h100();
  int num_gpus = 128;
  int dap = 1;  ///< ranks cooperating per sample (1 = pure DP)
  Toggles toggles;
  FailureModel failure;
  WeatherModel weather;
  uint64_t seed = 2024;
  int sim_steps = 300;  ///< steps sampled for noise statistics
};

/// Per-step time decomposition (seconds). mean_step_s is the average over
/// simulated steps of: compute + cpu_overhead + serial + comm + stalls.
struct StepStats {
  double mean_step_s = 0;
  double compute_s = 0;       ///< DAP-parallelizable kernel time (per rank)
  double serial_s = 0;        ///< structure module + other serial work
  double optimizer_s = 0;     ///< weight update / SWA / clip
  double cpu_overhead_s = 0;  ///< kernel-launch host time
  double dap_comm_s = 0;      ///< DAP all-gather/all-to-all volume cost
  double grad_comm_s = 0;     ///< DP gradient all-reduce (exposed part)
  double imbalance_s = 0;     ///< straggler-induced extra wait (E[max]-E,
                              ///< plus persistent hetero-speed stragglers)
  double data_wait_s = 0;     ///< loader stalls at the consumer
  double contention_s = 0;    ///< transient network-contention stalls

  /// Ideal time if every barrier §3.1 lists were eliminated.
  double ideal_s = 0;
};

StepStats simulate_step_time(const ClusterConfig& cfg);

/// Fig. 3 reproduction: the gap between actual and theoretically optimal
/// step time, attributed per factor, as fractions of the optimal time.
struct BarrierBreakdown {
  double cpu_overhead = 0;
  double serial_modules = 0;
  double imbalanced_comm = 0;
  double kernel_scalability = 0;
  double comm_overhead = 0;
  double total_gap = 0;  ///< (actual - optimal) / optimal
};
BarrierBreakdown barrier_breakdown(const ClusterConfig& cfg);

}  // namespace sf::sim
