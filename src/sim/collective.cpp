#include "sim/collective.h"

#include "common/error.h"

namespace sf::sim {

double group_bandwidth_gbs(const GpuArch& arch, int n) {
  SF_CHECK(n >= 1);
  return n <= kGpusPerNode ? arch.nvlink_bw_gbs : arch.ib_bw_gbs;
}

double allreduce_time_s(const GpuArch& arch, double bytes, int n) {
  SF_CHECK(n >= 1);
  if (n == 1) return 0.0;
  const double bw = group_bandwidth_gbs(arch, n) * 1e9;
  // Ring all-reduce: 2(n-1)/n of the buffer crosses each link, 2(n-1)
  // latency hops.
  return 2.0 * (n - 1) / n * bytes / bw +
         2.0 * (n - 1) * arch.net_latency_us * 1e-6;
}

double allgather_time_s(const GpuArch& arch, double bytes, int n) {
  SF_CHECK(n >= 1);
  if (n == 1) return 0.0;
  const double bw = group_bandwidth_gbs(arch, n) * 1e9;
  return (n - 1.0) / n * bytes / bw + (n - 1) * arch.net_latency_us * 1e-6;
}

double alltoall_time_s(const GpuArch& arch, double bytes, int n) {
  SF_CHECK(n >= 1);
  if (n == 1) return 0.0;
  const double bw = group_bandwidth_gbs(arch, n) * 1e9;
  return (n - 1.0) / n * bytes / bw + (n - 1) * arch.net_latency_us * 1e-6;
}

}  // namespace sf::sim
