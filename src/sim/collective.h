// Collective-communication cost model (ring algorithms).
//
// DAP inserts all-gather and all-to-all collectives inside every Evoformer
// block (§2.3); data parallelism adds the gradient all-reduce. Costs use
// the standard alpha-beta ring model: latency per hop plus volume over the
// bottleneck link, with NVLink inside a node (8 GPUs) and InfiniBand
// across nodes.
#pragma once

#include <cstdint>

#include "sim/gpu_arch.h"

namespace sf::sim {

inline constexpr int kGpusPerNode = 8;

/// Effective per-GPU link bandwidth for a group of `n` ranks: NVLink when
/// the group fits in one node, IB otherwise.
double group_bandwidth_gbs(const GpuArch& arch, int n);

/// Ring all-reduce of `bytes` per rank across `n` ranks.
double allreduce_time_s(const GpuArch& arch, double bytes, int n);

/// Ring all-gather where each rank contributes `bytes / n` (result bytes
/// total per rank).
double allgather_time_s(const GpuArch& arch, double bytes, int n);

/// All-to-all exchanging `bytes` per rank across `n` ranks.
double alltoall_time_s(const GpuArch& arch, double bytes, int n);

}  // namespace sf::sim
