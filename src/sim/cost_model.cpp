#include "sim/cost_model.h"

#include <algorithm>

#include "common/error.h"
#include "sim/calibration.h"

namespace sf::sim {

double mem_utilization(double bytes) {
  return bytes / (bytes + calib::kUtilHalfBytesMem);
}

double math_utilization(double flops) {
  return flops / (flops + calib::kUtilHalfFlopsMath);
}

namespace {
// Table lookup for power-of-two DAP degrees, analytic curve elsewhere.
double dap_eff_from_table(int dap_n, const double table[4], double analytic) {
  switch (dap_n) {
    case 1: return table[0];
    case 2: return table[1];
    case 4: return table[2];
    case 8: return table[3];
    default: return analytic;
  }
}
}  // namespace

double dap_mem_efficiency(int dap_n, bool small_kernels) {
  SF_CHECK(dap_n >= 1);
  double base = mem_utilization(calib::kTypicalMemKernelBytes);
  double scaled = mem_utilization(calib::kTypicalMemKernelBytes / dap_n);
  const double* table =
      small_kernels ? calib::kDapMemEffTable : calib::kDapMemEffTableLarge;
  return dap_eff_from_table(dap_n, table, scaled / base);
}

double dap_math_efficiency(int dap_n, bool small_kernels) {
  SF_CHECK(dap_n >= 1);
  double base = math_utilization(calib::kTypicalMathKernelFlops);
  double scaled = math_utilization(calib::kTypicalMathKernelFlops / dap_n);
  const double* table =
      small_kernels ? calib::kDapMathEffTable : calib::kDapMathEffTableLarge;
  return dap_eff_from_table(dap_n, table, scaled / base);
}

double kernel_time_s(const GpuArch& arch, double flops, double bytes,
                     bool graphed) {
  double t_math =
      flops > 0 ? flops / (arch.tf32_tflops * 1e12 * math_utilization(flops))
                : 0.0;
  double t_mem =
      bytes > 0 ? bytes / (arch.mem_bw_gbs * 1e9 * mem_utilization(bytes))
                : 0.0;
  double t = std::max(t_math, t_mem);
  if (!graphed) t += arch.launch_overhead_us * 1e-6;
  return t;
}

}  // namespace sf::sim
