// Roofline kernel cost model with size-dependent utilization.
//
// kernel time = max(flops / (peak_flops * util), bytes / (bw * util))
//               + launch overhead (eager only)
//
// Utilization follows a saturation curve: a kernel moving s bytes reaches
// s / (s + s_half) of peak bandwidth — small kernels can't fill the
// machine. This is the mechanism behind §3.1's "poor kernel scalability":
// DAP-n divides each kernel's workload by n, sliding it down the curve.
#pragma once

#include <cstdint>

#include "sim/gpu_arch.h"

namespace sf::sim {

/// Bandwidth utilization for a memory-bound kernel of `bytes` size.
double mem_utilization(double bytes);
/// Throughput utilization for a math-bound kernel of `flops` size.
double math_utilization(double flops);

/// Relative efficiency of shrinking a kernel by factor `n` (DAP-n):
/// eff(n) = util(size/n) / util(size). Multiplies the *per-unit-work* cost
/// (so the kernel's time scales by eff-adjusted 1/n, not ideal 1/n).
/// `small_kernels` selects the optimized-kernel regime (bf16/fused kernels
/// shrink per-launch work, sliding further down the utilization curve).
double dap_mem_efficiency(int dap_n, bool small_kernels = true);
double dap_math_efficiency(int dap_n, bool small_kernels = true);

/// Time for one kernel under the roofline.
double kernel_time_s(const GpuArch& arch, double flops, double bytes,
                     bool graphed);

}  // namespace sf::sim
