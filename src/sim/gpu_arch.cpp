#include "sim/gpu_arch.h"

namespace sf::sim {

GpuArch GpuArch::a100() {
  GpuArch g;
  g.name = "A100-SXM4-80GB";
  g.mem_bw_gbs = 2039.0;
  g.tf32_tflops = 156.0;
  g.bf16_tflops = 312.0;
  g.launch_overhead_us = 4.0;
  g.nvlink_bw_gbs = 300.0;
  g.ib_bw_gbs = 25.0;
  g.net_latency_us = 8.0;
  return g;
}

GpuArch GpuArch::h100() {
  GpuArch g;
  g.name = "H100-SXM5-80GB";
  g.mem_bw_gbs = 3350.0;
  g.tf32_tflops = 400.0;
  g.bf16_tflops = 800.0;
  g.launch_overhead_us = 4.0;  // host-side cost is CPU-bound, arch-agnostic
  g.nvlink_bw_gbs = 450.0;
  g.ib_bw_gbs = 50.0;   // Quantum-2 NDR
  g.net_latency_us = 6.0;
  return g;
}

}  // namespace sf::sim
