// GPU architecture parameters for the roofline cost model.
//
// Public datasheet numbers; the A100->H100 memory-bandwidth ratio (~1.64x)
// is the anchor that reproduces the paper's observed 6.76s -> 4.07s
// (1.66x) reference-model step-time gain, consistent with §2.2's finding
// that the workload is dominated by memory-bound kernels.
#pragma once

#include <string>

namespace sf::sim {

struct GpuArch {
  std::string name;
  double mem_bw_gbs = 0;       ///< HBM bandwidth, GB/s
  double tf32_tflops = 0;      ///< dense TF32 throughput
  double bf16_tflops = 0;      ///< dense BF16 throughput
  double launch_overhead_us = 0;  ///< host cost per eager kernel launch
  double nvlink_bw_gbs = 0;    ///< per-GPU NVLink bandwidth (intra-node)
  double ib_bw_gbs = 0;        ///< per-GPU InfiniBand bandwidth (inter-node)
  double net_latency_us = 0;   ///< per-hop collective latency

  static GpuArch a100();
  static GpuArch h100();
};

}  // namespace sf::sim
