#include "sim/trace_emit.h"

#include "obs/trace.h"

namespace sf::sim {
namespace {

/// Append one child span of `seconds` at the cursor; advances the cursor.
void child(const char* category, const char* name, double seconds,
           double& cursor_us, uint32_t track) {
  if (seconds <= 0.0) return;
  obs::emit_span(category, name, cursor_us, seconds * 1e6, track);
  cursor_us += seconds * 1e6;
}

}  // namespace

double emit_step_trace(const std::string& label, const StepStats& s,
                       double t0_us, uint32_t track) {
  if (!obs::trace_enabled()) return t0_us;
  // Parent first: Chrome nests by containment, and the children below sum
  // exactly to mean_step_s (nominal phases + E[max] noise split into
  // data_wait + imbalance).
  obs::emit_span("sim.step", "step:" + label, t0_us, s.mean_step_s * 1e6,
                 track);
  double cursor = t0_us;
  child("sim.step", "compute", s.compute_s, cursor, track);
  child("sim.step", "serial", s.serial_s, cursor, track);
  child("sim.step", "optimizer", s.optimizer_s, cursor, track);
  child("sim.step", "cpu_overhead", s.cpu_overhead_s, cursor, track);
  child("sim.step", "dap_comm", s.dap_comm_s, cursor, track);
  child("sim.step", "grad_comm", s.grad_comm_s, cursor, track);
  child("sim.step", "data_wait", s.data_wait_s, cursor, track);
  child("sim.step", "imbalance", s.imbalance_s, cursor, track);
  return t0_us + s.mean_step_s * 1e6;
}

double emit_ttt_trace(const std::string& label, const TttResult& r,
                      double t0_us, uint32_t track) {
  if (!obs::trace_enabled()) return t0_us;
  obs::emit_span("sim.ttt", "ttt:" + label, t0_us, r.total_s * 1e6, track);
  double cursor = t0_us;
  child("sim.ttt", "init", r.init_s, cursor, track);
  child("sim.ttt", "train", r.train_s, cursor, track);
  child("sim.ttt", "eval", r.eval_s, cursor, track);
  return t0_us + r.total_s * 1e6;
}

}  // namespace sf::sim
