// Simulated-timeline trace emission.
//
// The cluster simulator computes per-step phase durations analytically;
// these helpers lay them out as synthetic Chrome-trace spans so the same
// trace.json viewer (chrome://tracing / Perfetto) that shows measured
// loader/kernel/trainer spans also shows the simulated Fig. 8 step
// waterfall and the Fig. 9 time-to-train breakdown. Each scenario goes on
// its own track (Chrome row); spans nest one parent "step:<label>" over
// one child per StepStats phase, children laid end-to-end.
#pragma once

#include <cstdint>
#include <string>

#include "sim/cluster.h"
#include "sim/ttt.h"

namespace sf::sim {

/// Emit one simulated step as nested spans starting at t0_us on `track`.
/// Children cover compute / serial / optimizer / cpu_overhead / dap_comm /
/// grad_comm / data_wait / imbalance (zero-length phases are skipped).
/// Returns the end timestamp (t0_us + mean_step_s in us) so consecutive
/// calls tile a timeline. No-op (returns t0_us) while tracing is disabled.
double emit_step_trace(const std::string& label, const StepStats& s,
                       double t0_us, uint32_t track);

/// Emit a fault-free time-to-train run as init / train / eval spans under
/// one parent, on `track`. Returns the end timestamp.
double emit_ttt_trace(const std::string& label, const TttResult& r,
                      double t0_us, uint32_t track);

}  // namespace sf::sim
