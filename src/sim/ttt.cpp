#include "sim/ttt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/trace.h"
#include "sim/calibration.h"

namespace sf::sim {

double eval_round_seconds(int gpus, double kernel_speed_factor,
                          bool cached_eval_set) {
  SF_CHECK(gpus >= 1);
  const int waves = (calib::kEvalProteins + gpus - 1) / gpus;
  double per_protein = calib::kEvalPerProteinRefSec * kernel_speed_factor;
  if (!cached_eval_set) per_protein *= calib::kEvalDiskFactor;
  return waves * per_protein + calib::kEvalRoundOverheadSec;
}

TttResult time_to_train(const TttConfig& cfg) {
  TttResult r;
  StepStats step = simulate_step_time(cfg.cluster);
  r.step_s = step.mean_step_s;
  r.init_s = cfg.init_seconds;
  r.train_s = cfg.total_steps * step.mean_step_s;
  r.eval_rounds = cfg.total_steps / cfg.eval_every_steps;

  // The model evaluates with the same kernels it trains with (but at
  // DAP-1, one protein per GPU): scale per-protein cost by the optimized
  // vs reference DAP-1 kernel ratio.
  ClusterConfig opt1 = cfg.cluster;
  opt1.dap = 1;
  opt1.num_gpus = cfg.cluster.num_gpus / cfg.cluster.dap;
  opt1.toggles.disable_grad_ckpt = false;
  ClusterConfig ref = opt1;
  ref.toggles = Toggles::none();
  const double speed_factor =
      std::min(1.0, simulate_step_time(opt1).compute_s /
                        std::max(1e-9, simulate_step_time(ref).compute_s));

  if (cfg.async_eval) {
    const int gpus = cfg.eval_gpus > 0 ? cfg.eval_gpus
                                       : calib::kEvalDedicatedGpus;
    const double per_round =
        eval_round_seconds(gpus, speed_factor, cfg.cached_eval_set);
    // Off the critical path; on average half a round of the converging
    // snapshot's evaluation trails the final training step.
    r.eval_s = std::max(0.0, per_round / 2 - cfg.eval_every_steps * r.step_s);
  } else {
    const double per_round = eval_round_seconds(
        cfg.cluster.num_gpus, speed_factor, cfg.cached_eval_set);
    r.eval_s = r.eval_rounds * per_round;
  }
  r.total_s = r.init_s + r.train_s + r.eval_s;
  return r;
}

FailureTttResult time_to_train_under_failures(const TttConfig& cfg,
                                              int trials) {
  SF_CHECK(trials >= 1);
  FailureTttResult r;
  r.fault_free = time_to_train(cfg);
  r.trials = trials;
  const FailureModel& fm = cfg.cluster.failure;
  if (fm.node_mtbf_hours <= 0 && fm.preempt_rate_per_hour <= 0) {
    r.total_s = r.fault_free.total_s;
    return r;
  }
  SF_CHECK(fm.gpus_per_node >= 1);
  SF_CHECK(fm.restart_seconds >= 0);
  SF_CHECK(fm.checkpoint_write_seconds >= 0);

  const int nodes =
      (cfg.cluster.num_gpus + fm.gpus_per_node - 1) / fm.gpus_per_node;
  // Failure sources combine: hardware MTBF over all nodes, plus a
  // cluster-wide preemption (spot eviction) rate.
  double lambda = 0.0;
  if (fm.node_mtbf_hours > 0) lambda += nodes / (fm.node_mtbf_hours * 3600.0);
  lambda += fm.preempt_rate_per_hour / 3600.0;
  const double cluster_mtbf_s = 1.0 / lambda;
  // Young/Daly first-order optimum: sqrt(2 * write_cost * MTBF).
  r.daly_interval_s =
      std::sqrt(2.0 * std::max(1e-3, fm.checkpoint_write_seconds) *
                cluster_mtbf_s);

  const double step_s = std::max(1e-9, r.fault_free.step_s);
  const double interval_s = fm.checkpoint_interval_steps > 0
                                ? fm.checkpoint_interval_steps * step_s
                                : r.daly_interval_s;
  r.checkpoint_interval_s = interval_s;
  r.checkpoint_interval_steps =
      std::max(1, static_cast<int>(interval_s / step_s + 0.5));

  // Work on the wall-clock critical path after init; the failure process
  // runs in wall time (lost checkpoint-write progress is rolled back with
  // the work segment it belongs to).
  const double W = r.fault_free.train_s + r.fault_free.eval_s;

  if (fm.elastic) {
    // Elastic branch (the DataParallelTrainer protocol at cluster scale):
    // a failure discards only the in-flight step and costs a short
    // in-memory resync — no checkpoint writes, no rollback, no restart.
    // The survivors keep training at (nodes - lost)/nodes capacity until
    // the replacement rejoins rejoin_seconds later.
    SF_CHECK(fm.elastic_resync_seconds >= 0);
    SF_CHECK(fm.rejoin_seconds >= 0);
    r.checkpoint_interval_s = 0;
    r.checkpoint_interval_steps = 0;
    double sum_total = 0, sum_failures = 0, sum_lost = 0, sum_resync = 0,
           sum_degraded = 0;
    for (int t = 0; t < trials; ++t) {
      Rng rng(cfg.cluster.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
      double wall = r.fault_free.init_s;
      double done = 0;  // full-capacity work-seconds completed
      int lost_nodes = 0;
      std::vector<double> rejoins;  // wall times replacements come back
      double next_fail = wall + rng.exponential(lambda);
      int failures = 0;
      double lost = 0, resync = 0, degraded = 0;
      while (done < W) {
        const double rate =
            static_cast<double>(std::max(1, nodes - lost_nodes)) / nodes;
        double next_rejoin = std::numeric_limits<double>::infinity();
        for (double rj : rejoins) next_rejoin = std::min(next_rejoin, rj);
        const double finish = wall + (W - done) / rate;
        const double next_event = std::min({finish, next_rejoin, next_fail});
        // Advance work to the event; degraded capacity stretches it.
        const double span = next_event - wall;
        done += span * rate;
        degraded += span * (1.0 - rate);
        wall = next_event;
        if (done >= W - 1e-9) break;
        if (next_event == next_rejoin) {
          for (size_t i = 0; i < rejoins.size(); ++i) {
            if (rejoins[i] == next_rejoin) {
              rejoins.erase(rejoins.begin() + i);
              break;
            }
          }
          lost_nodes = std::max(0, lost_nodes - 1);
          continue;
        }
        // Failure: lose the in-flight step, quiesce + rebuild, continue
        // on the survivors.
        ++failures;
        const double step_lost = std::min(step_s, W - done);
        done = std::max(0.0, done - step_lost);
        lost += step_lost;
        wall += fm.elastic_resync_seconds;
        resync += fm.elastic_resync_seconds;
        lost_nodes = std::min(nodes - 1, lost_nodes + 1);
        rejoins.push_back(wall + fm.rejoin_seconds);
        next_fail = wall + rng.exponential(lambda);
        if (failures > 100000) break;  // pathological configs: bail out
      }
      sum_total += wall;
      sum_failures += failures;
      sum_lost += lost;
      sum_resync += resync;
      sum_degraded += degraded;
    }
    r.total_s = sum_total / trials;
    r.expected_failures = sum_failures / trials;
    r.lost_work_s = sum_lost / trials;
    r.elastic_resync_s = sum_resync / trials;
    r.degraded_s = sum_degraded / trials;
    return r;
  }
  double sum_total = 0, sum_failures = 0, sum_lost = 0, sum_restart = 0,
         sum_ckpt = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(cfg.cluster.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
    double wall = r.fault_free.init_s;
    double saved = 0;
    double next_fail = wall + rng.exponential(lambda);
    int failures = 0;
    double lost = 0, restart = 0, ckpt = 0;
    while (saved < W) {
      const double seg_work = std::min(interval_s, W - saved);
      const bool final_seg = saved + seg_work >= W;
      // No checkpoint after the final segment: the run is done.
      const double seg = seg_work + (final_seg ? 0.0 : fm.checkpoint_write_seconds);
      if (wall + seg <= next_fail) {
        if (t == 0) {
          obs::emit_span("sim.ttt", "work", wall * 1e6, seg_work * 1e6, 200);
          if (!final_seg) {
            obs::emit_span("sim.ttt", "ckpt", (wall + seg_work) * 1e6,
                           fm.checkpoint_write_seconds * 1e6, 200);
          }
        }
        wall += seg;
        saved += seg_work;
        if (!final_seg) ckpt += fm.checkpoint_write_seconds;
      } else {
        // Everything since the last checkpoint is rolled back, including a
        // partially written checkpoint if the failure lands mid-write.
        if (t == 0) {
          obs::emit_span("sim.ttt", "lost", wall * 1e6,
                         (next_fail - wall) * 1e6, 200);
          obs::emit_span("sim.ttt", "restart", next_fail * 1e6,
                         fm.restart_seconds * 1e6, 200);
        }
        lost += next_fail - wall;
        ++failures;
        wall = next_fail + fm.restart_seconds;
        restart += fm.restart_seconds;
        next_fail = wall + rng.exponential(lambda);
        if (failures > 100000) break;  // pathological configs: bail out
      }
    }
    sum_total += wall;
    sum_failures += failures;
    sum_lost += lost;
    sum_restart += restart;
    sum_ckpt += ckpt;
  }
  r.total_s = sum_total / trials;
  r.expected_failures = sum_failures / trials;
  r.lost_work_s = sum_lost / trials;
  r.restart_s = sum_restart / trials;
  r.checkpoint_overhead_s = sum_ckpt / trials;
  return r;
}

IntervalSearchResult optimize_checkpoint_interval(const TttConfig& cfg,
                                                  int trials) {
  SF_CHECK(cfg.cluster.failure.node_mtbf_hours > 0)
      << "interval search needs an active failure model";
  // One probe run supplies the Daly anchor and the step time.
  FailureTttResult probe = time_to_train_under_failures(cfg, 1);
  const double step_s = std::max(1e-9, probe.fault_free.step_s);

  IntervalSearchResult out;
  out.best_total_s = std::numeric_limits<double>::infinity();
  TttConfig c = cfg;
  for (double mult : {0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0}) {
    const int steps = std::max(
        1, static_cast<int>(probe.daly_interval_s * mult / step_s + 0.5));
    c.cluster.failure.checkpoint_interval_steps = steps;
    FailureTttResult res = time_to_train_under_failures(c, trials);
    out.curve.emplace_back(res.checkpoint_interval_s, res.total_s);
    if (res.total_s < out.best_total_s) {
      out.best_total_s = res.total_s;
      out.best_interval_s = res.checkpoint_interval_s;
      out.best_interval_steps = res.checkpoint_interval_steps;
    }
  }
  return out;
}

float pretraining_lddt_at_step(int64_t step) {
  // Effective samples seen: bs128 for the first 5000 steps, bs256 after.
  const int64_t phase1 = calib::kScratchPhase1Steps;
  double samples = step <= phase1
                       ? 128.0 * step
                       : 128.0 * phase1 + 256.0 * (step - phase1);
  // Saturating curve through the paper's anchors: ~0.8 at step 5000
  // (0.64M samples), ~0.9 at step 55000 (13.4M samples).
  // lddt = 0.93 * (1 - exp(-samples/tau)) with tau fit to the first
  // anchor, plus a slow late-phase term for the 0.9 approach.
  const double tau = 1.89e5;
  double fast = 0.82 * (1.0 - std::exp(-samples / tau));
  double slow = 0.11 * (1.0 - std::exp(-samples / 9.0e6));
  return static_cast<float>(std::min(0.93, fast + slow));
}

PretrainingResult simulate_pretraining(int64_t total_steps, uint64_t seed) {
  SF_CHECK(total_steps > calib::kScratchPhase1Steps);
  PretrainingResult r;
  r.total_steps = total_steps;

  // Phase 1: 1056 H100 (1024 train + 32 eval), bs128, DAP-8.
  ClusterConfig p1;
  p1.arch = GpuArch::h100();
  p1.num_gpus = 1024;
  p1.dap = 8;
  p1.toggles = Toggles::all_on();
  p1.seed = seed;
  double step1 = simulate_step_time(p1).mean_step_s;
  r.phase1_s = calib::kScratchPhase1Steps * step1;

  // Phase 2: 2080 H100 (2048 train + 32 eval), bs256, Triton MHA kernel
  // disabled for convergence (§4.2).
  ClusterConfig p2 = p1;
  p2.num_gpus = 2048;
  p2.toggles.triton_mha = false;
  p2.seed = seed + 1;
  double step2 = simulate_step_time(p2).mean_step_s;
  r.phase2_s = (total_steps - calib::kScratchPhase1Steps) * step2;

  r.total_s = calib::kInitCompileSec + r.phase1_s + r.phase2_s;
  r.final_lddt = pretraining_lddt_at_step(total_steps);
  return r;
}

}  // namespace sf::sim
