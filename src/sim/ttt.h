// Time-to-train model (Figs. 9, 10, 11; §4.2).
//
// Composes: initialization/compilation, training steps (from the cluster
// step simulator), and evaluation rounds — synchronous (blocking the
// training nodes) or asynchronous (offloaded to dedicated evaluation
// GPUs, §3.4), with the evaluation set served from a DRAM cache or disk.
// Also provides the lDDT-Ca convergence-curve model for the from-scratch
// pretraining schedule (bs128 for 5000 steps, then bs256).
#pragma once

#include <utility>
#include <vector>

#include "sim/cluster.h"

namespace sf::sim {

struct TttConfig {
  ClusterConfig cluster;
  int total_steps = 400;        ///< optimization steps to target accuracy
  int eval_every_steps = 40;
  bool async_eval = false;      ///< offload eval to dedicated nodes
  bool cached_eval_set = true;  ///< DRAM cache vs per-round disk reads
  int eval_gpus = 0;            ///< 0 = sync on all training GPUs; else
                                ///< dedicated evaluation GPUs (async)
  double init_seconds = 120.0;  ///< startup + compile (~2 min, §4.2)
};

/// Seconds for one evaluation round: ~kEvalProteins full-length proteins in
/// data-parallel waves over `gpus`, per-protein cost scaled by the active
/// kernel speed factor (optimized models evaluate faster too).
double eval_round_seconds(int gpus, double kernel_speed_factor,
                          bool cached_eval_set);

struct TttResult {
  double init_s = 0;
  double train_s = 0;
  double eval_s = 0;   ///< evaluation time on the training critical path
  double total_s = 0;
  double step_s = 0;   ///< mean step time used
  int eval_rounds = 0;
};

TttResult time_to_train(const TttConfig& cfg);

/// lDDT-Ca convergence model for from-scratch pretraining, calibrated to
/// §4.2: 0.8 by step 5000 (bs128), 0.9 at 50-60k steps (bs256).
/// Saturating-exponential in "effective samples seen".
float pretraining_lddt_at_step(int64_t step);

/// Full from-scratch schedule (Fig. 11): phase 1 on 1056 GPUs bs128,
/// phase 2 on 2080 GPUs bs256 with the Triton MHA kernel disabled
/// (§4.2). Returns wall-clock totals and the phase boundary.
struct PretrainingResult {
  double phase1_s = 0;
  double phase2_s = 0;
  double total_s = 0;
  int64_t total_steps = 0;
  float final_lddt = 0;
};
PretrainingResult simulate_pretraining(int64_t total_steps = 55000,
                                       uint64_t seed = 7);

// ---- Time-to-train under failures ------------------------------------------
//
// At 128-2080 GPUs a time-to-train run will see node failures
// (cluster MTBF = node MTBF / nodes); the run then rolls back to the
// last checkpoint and pays a restart. The Monte-Carlo model below plays
// the fault-free run (init + train + critical-path eval) against a seeded
// Poisson failure process with periodic checkpoint pauses, and reports
// the expected wall clock plus the checkpoint interval that minimizes it.

struct FailureTttResult {
  TttResult fault_free;          ///< the underlying no-failure run
  double total_s = 0;            ///< expected wall clock with failures
  double expected_failures = 0;  ///< mean failures per run (MTBF and
                                 ///< preemption events combined)
  double lost_work_s = 0;        ///< mean time rolled back (work + partial
                                 ///< checkpoint writes); elastic mode: the
                                 ///< discarded in-flight steps
  double restart_s = 0;          ///< mean time spent restarting
  double checkpoint_overhead_s = 0;  ///< mean time writing checkpoints
  double checkpoint_interval_s = 0;  ///< interval actually simulated
  int checkpoint_interval_steps = 0;
  double daly_interval_s = 0;    ///< analytic Young/Daly optimum
  /// Elastic mode only: mean time quiescing + rebuilding on rank loss,
  /// and mean extra wall clock from running at reduced capacity until
  /// replacements rejoined.
  double elastic_resync_s = 0;
  double degraded_s = 0;
  int trials = 0;
};

/// Expected TTT under cfg.cluster.failure. With failures disabled the
/// result degenerates to the fault-free run. Deterministic in
/// (cfg.cluster.seed, trials).
FailureTttResult time_to_train_under_failures(const TttConfig& cfg,
                                              int trials = 64);

/// Sweep checkpoint intervals around the Young/Daly estimate and return
/// the simulated-optimal one (argmin of expected TTT).
struct IntervalSearchResult {
  double best_interval_s = 0;
  int best_interval_steps = 0;
  double best_total_s = 0;
  /// (interval_s, expected_total_s) for every point probed.
  std::vector<std::pair<double, double>> curve;
};
IntervalSearchResult optimize_checkpoint_interval(const TttConfig& cfg,
                                                  int trials = 32);

}  // namespace sf::sim
