#include "sim/workload.h"

#include "common/error.h"
#include "sim/calibration.h"

namespace sf::sim {

// Logical (fused-op granularity) launch counts per module, fwd+bwd.
// Forward math for attention: 4 projection GEMMs + bias-projection GEMM +
// QK^T + PV batched matmuls = 7; backward roughly doubles it.
KernelCensus census_attention() { return {21, 28, 14}; }
// Eager LayerNorm: mean / centering / variance / normalize / affine
// forward, seven backward passes (recompute + two reductions + dx).
KernelCensus census_layernorm() { return {0, 12, 1}; }
// Transition MLP: 2 GEMMs fwd + 4 bwd; GELU + bias adds.
KernelCensus census_transition() { return {6, 7, 2}; }
// Triangle multiplication: 6 projection GEMMs (+12 bwd), the triangle
// einsum (1 fwd + 2 bwd), three GLU gates.
KernelCensus census_triangle_multiply() { return {21, 18, 6}; }
// Outer product mean: 3 projections (+6 bwd), the outer einsum (1+2).
KernelCensus census_outer_product_mean() { return {12, 8, 4}; }

KernelCensus census_evoformer_block() {
  KernelCensus c;
  for (int i = 0; i < 4; ++i) c += census_attention();
  for (int i = 0; i < 12; ++i) c += census_layernorm();
  for (int i = 0; i < 2; ++i) c += census_transition();
  for (int i = 0; i < 2; ++i) c += census_triangle_multiply();
  c += census_outer_product_mean();
  return c;
}

KernelCensus census_pair_block() {
  KernelCensus c;
  for (int i = 0; i < 2; ++i) c += census_attention();
  for (int i = 0; i < 8; ++i) c += census_layernorm();
  c += census_transition();
  for (int i = 0; i < 2; ++i) c += census_triangle_multiply();
  return c;
}

KernelCensus census_structure_and_heads() {
  // 8 IPA-style layers plus input/recycling embedders and aux heads.
  return {200, 600, 250};
}

KernelCensus census_training_routines(int param_tensors) {
  KernelCensus c;
  const int64_t n = param_tensors;
  // Per tensor: zero_grad (1 memop); unfused Adam (~6 memory-bound
  // passes); SWA (2); clip scale (1); clip concat copy (1 memop);
  // DDP bucket pack/unpack (2 memop); misc casts/clones (2 memop).
  c.memop_calls += n * (1 + 1 + 2 + 2);
  c.mem_calls += n * (6 + 2 + 1);
  return c;
}

CensusBreakdown build_census(const CensusConfig& cfg) {
  SF_CHECK(cfg.avg_recycles >= 1.0);
  CensusBreakdown out;

  KernelCensus trunk;
  for (int i = 0; i < cfg.evoformer_blocks + cfg.extra_msa_blocks; ++i) {
    trunk += census_evoformer_block();
  }
  for (int i = 0; i < cfg.template_pair_blocks; ++i) {
    trunk += census_pair_block();
  }
  // Recycling: one full fwd+bwd cycle plus (avg-1) forward-only cycles.
  const double recycle_mult =
      1.0 + (cfg.avg_recycles - 1.0) * cfg.forward_fraction;
  trunk = trunk * recycle_mult;
  // Eager fragmentation fit (see CensusConfig docs).
  out.trunk = {static_cast<int64_t>(trunk.math_calls * cfg.frag_math),
               static_cast<int64_t>(trunk.mem_calls * cfg.frag_mem),
               static_cast<int64_t>(trunk.memop_calls * cfg.frag_memop)};

  KernelCensus serial = census_structure_and_heads() * recycle_mult;
  out.serial = {static_cast<int64_t>(serial.math_calls * cfg.frag_math),
                static_cast<int64_t>(serial.mem_calls * cfg.frag_mem),
                static_cast<int64_t>(serial.memop_calls * cfg.frag_memop)};

  if (cfg.unfused_optimizer) {
    out.optimizer = census_training_routines(cfg.param_tensors);
  }

  out.total = out.trunk;
  out.total += out.serial;
  out.total += out.optimizer;

  out.runtime_cpu_overhead = calib::kFracCpuOverhead;
  // Table 1 runtime split of the remaining (kernel) time.
  out.runtime_math = 0.2406;
  out.runtime_mem = 0.6503;
  out.runtime_memop = 0.0182;
  return out;
}

StepProfile StepProfile::reference() {
  StepProfile p{};
  p.mha = calib::kFracMha;
  p.layernorm = calib::kFracLayerNorm;
  p.other_gemm = calib::kFracOtherGemm;
  p.weight_update = calib::kFracWeightUpdate;
  p.swa = calib::kFracSwa;
  p.grad_clip = calib::kFracGradClip;
  p.serial = calib::kFracSerial;
  p.cpu_overhead = calib::kFracCpuOverhead;
  p.memop = 0.018;
  p.other_mem = 1.0 - (p.mha + p.layernorm + p.other_gemm + p.weight_update +
                       p.swa + p.grad_clip + p.serial + p.cpu_overhead +
                       p.memop);
  return p;
}

double StepProfile::sum() const {
  return mha + layernorm + other_gemm + other_mem + memop + weight_update +
         swa + grad_clip + serial + cpu_overhead;
}

}  // namespace sf::sim
