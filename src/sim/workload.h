// AlphaFold training-step workload model: kernel census and aggregate
// step-time profile at paper scale.
//
// The census reconstructs Table 1 (launch counts per kernel category) from
// the model architecture: per-module operator templates (how many
// math-bound / memory-bound / memory-operation kernels one eager
// forward+backward of each Evoformer sub-module launches), the stack
// depths of Fig. 1, the recycling multiplier, and the optimizer's
// per-parameter-tensor kernel storm (>4000 gradient tensors, §3.3.1).
//
// The aggregate StepProfile carries the measured §2.2 composition
// (MHA 34%, LN 14%, ...) that the cluster model's optimization toggles
// operate on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace sf::sim {

/// Kernel-launch census per category (the axes of Table 1).
struct KernelCensus {
  int64_t math_calls = 0;
  int64_t mem_calls = 0;
  int64_t memop_calls = 0;

  int64_t total() const { return math_calls + mem_calls + memop_calls; }

  KernelCensus& operator+=(const KernelCensus& o) {
    math_calls += o.math_calls;
    mem_calls += o.mem_calls;
    memop_calls += o.memop_calls;
    return *this;
  }
  KernelCensus operator*(double f) const {
    return {static_cast<int64_t>(math_calls * f),
            static_cast<int64_t>(mem_calls * f),
            static_cast<int64_t>(memop_calls * f)};
  }
};

/// Architecture knobs that drive the census (defaults = paper scale).
struct CensusConfig {
  int evoformer_blocks = 48;
  int extra_msa_blocks = 4;
  int template_pair_blocks = 2;
  /// Average recycling cycles per step; forward-only cycles cost the
  /// forward fraction of the template counts.
  double avg_recycles = 2.5;
  double forward_fraction = 0.4;  ///< fwd share of a fwd+bwd census
  /// Trainable parameter tensors ("over four thousand", §3.3.1).
  int param_tensors = 4400;
  /// Eager-mode fragmentation multipliers fit to Table 1 (views, copies,
  /// broadcast expansions, autograd accumulation kernels that the logical
  /// templates below do not enumerate individually).
  double frag_math = 1.4;
  double frag_mem = 2.1;
  double frag_memop = 1.1;
  /// Whether the step includes the unfused optimizer/SWA/clip kernels.
  bool unfused_optimizer = true;
};

/// Census of one logical module (forward+backward, fused-op granularity).
KernelCensus census_attention();          ///< gated MHA incl. projections
KernelCensus census_layernorm();
KernelCensus census_transition();
KernelCensus census_triangle_multiply();
KernelCensus census_outer_product_mean();

/// Full Evoformer block (Fig. 2: 4 attention modules, 12 LayerNorms,
/// 2 transitions, 2 triangle multiplications, 1 outer product mean).
KernelCensus census_evoformer_block();
/// Pair-only block (template pair stack).
KernelCensus census_pair_block();
/// Structure module + embedders/heads (serial part).
KernelCensus census_structure_and_heads();
/// Optimizer + SWA + grad clip + DDP bookkeeping per step.
KernelCensus census_training_routines(int param_tensors);

/// The full Table 1 reconstruction.
struct CensusBreakdown {
  KernelCensus trunk;       ///< Evoformer/extra/template stacks (x recycle)
  KernelCensus serial;      ///< structure module, embedders, heads
  KernelCensus optimizer;   ///< Adam/SWA/clip/DDP per-tensor kernels
  KernelCensus total;
  /// Runtime shares (fractions of step time) per category, from the
  /// measured §2.2 composition.
  double runtime_math = 0.0;
  double runtime_mem = 0.0;
  double runtime_memop = 0.0;
  double runtime_cpu_overhead = 0.0;
};
CensusBreakdown build_census(const CensusConfig& cfg = CensusConfig{});

/// Aggregate step-time composition at the reference point. All fields are
/// fractions of the reference step time and sum (with other_mem) to 1.
struct StepProfile {
  double mha;
  double layernorm;
  double other_gemm;
  double other_mem;
  double memop;
  double weight_update;
  double swa;
  double grad_clip;
  double serial;        ///< data pipeline + structure module (non-DAP)
  double cpu_overhead;

  static StepProfile reference();
  double sum() const;
};

}  // namespace sf::sim
