// Software bfloat16.
//
// ScaleFold (§3.4) adds full bfloat16 support to the training stack and
// reports a 1.24x step-time speedup plus stable convergence where naive
// fp16 NaNs out. We have no tensor cores, so bf16 here serves two roles:
//   1. Numerics: round-to-nearest-even truncation of the fp32 mantissa,
//      matching hardware bf16, so convergence experiments see the real
//      precision loss.
//   2. Memory traffic: kernels templated on storage type move half the
//      bytes, which the CPU memory hierarchy rewards just like HBM does.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace sf {

struct BFloat16 {
  uint16_t bits = 0;

  BFloat16() = default;

  explicit BFloat16(float f) { bits = round_from_float(f); }

  /// Round-to-nearest-even conversion from fp32 (matches CPU/GPU bf16).
  /// std::bit_cast keeps this branch-light path auto-vectorizable.
  static uint16_t round_from_float(float f) {
    uint32_t x = std::bit_cast<uint32_t>(f);
    // NaN must stay NaN: force a quiet-NaN payload bit so truncation cannot
    // produce an infinity.
    if ((x & 0x7fffffffu) > 0x7f800000u) {
      return static_cast<uint16_t>((x >> 16) | 0x0040u);
    }
    // Round to nearest even on the 16 truncated mantissa bits.
    uint32_t rounding_bias = 0x7fffu + ((x >> 16) & 1u);
    return static_cast<uint16_t>((x + rounding_bias) >> 16);
  }

  float to_float() const {
    return std::bit_cast<float>(static_cast<uint32_t>(bits) << 16);
  }

  operator float() const { return to_float(); }

  BFloat16& operator=(float f) {
    bits = round_from_float(f);
    return *this;
  }

  friend bool operator==(BFloat16 a, BFloat16 b) { return a.bits == b.bits; }
};

/// Round an fp32 value through bf16 storage (quantization emulation used at
/// module boundaries in bf16 training mode).
inline float bf16_round(float f) { return BFloat16(f).to_float(); }

/// Branchless round-to-nearest-even store for values known finite (the
/// perf-kernel fast path; NaN payloads are not preserved). Auto-vectorizes.
inline uint16_t bf16_store_fast(float f) {
  uint32_t x = std::bit_cast<uint32_t>(f);
  uint32_t rounding_bias = 0x7fffu + ((x >> 16) & 1u);
  return static_cast<uint16_t>((x + rounding_bias) >> 16);
}

/// Branchless load. Auto-vectorizes.
inline float bf16_load(uint16_t bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(bits) << 16);
}

/// In-place bf16 rounding of a buffer.
inline void bf16_round_buffer(float* data, size_t n) {
  for (size_t i = 0; i < n; ++i) data[i] = bf16_round(data[i]);
}

static_assert(sizeof(BFloat16) == 2, "BFloat16 must be 2 bytes");

}  // namespace sf
