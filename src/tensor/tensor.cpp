#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace sf {

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    SF_CHECK(d >= 0) << "negative dimension in" << shape_str(shape);
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ",";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  numel_ = shape_numel(shape_);
  data_ = std::shared_ptr<float[]>(new float[numel_]());
}

Tensor::Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape)) {
  numel_ = shape_numel(shape_);
  SF_CHECK(static_cast<int64_t>(values.size()) == numel_)
      << "value count" << values.size() << "vs shape" << shape_str(shape_);
  data_ = std::shared_ptr<float[]>(new float[numel_]);
  std::copy(values.begin(), values.end(), data_.get());
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  fill_normal(rng, t.data(), static_cast<size_t>(t.numel()), mean, stddev);
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  fill_uniform(rng, t.data(), static_cast<size_t>(t.numel()), lo, hi);
  return t;
}

Tensor Tensor::reshape(Shape new_shape) const {
  SF_CHECK(shape_numel(new_shape) == numel_)
      << "reshape" << shape_str(shape_) << "->" << shape_str(new_shape);
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.data_ = data_;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  if (data_) {
    t.data_ = std::shared_ptr<float[]>(new float[numel_]);
    std::memcpy(t.data_.get(), data_.get(), sizeof(float) * numel_);
  }
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.get(), data_.get() + numel_, value);
}

void Tensor::copy_from(const Tensor& src) {
  SF_CHECK(src.numel_ == numel_) << "copy_from numel mismatch";
  std::memcpy(data_.get(), src.data_.get(), sizeof(float) * numel_);
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  SF_CHECK(shape_ == other.shape_)
      << op << "shape mismatch" << shape_str(shape_) << "vs"
      << shape_str(other.shape_);
}

Tensor Tensor::add(const Tensor& other) const {
  check_same_shape(other, "add");
  Tensor out(shape_);
  const float* a = data();
  const float* b = other.data();
  float* o = out.data();
  for (int64_t i = 0; i < numel_; ++i) o[i] = a[i] + b[i];
  return out;
}

Tensor Tensor::sub(const Tensor& other) const {
  check_same_shape(other, "sub");
  Tensor out(shape_);
  const float* a = data();
  const float* b = other.data();
  float* o = out.data();
  for (int64_t i = 0; i < numel_; ++i) o[i] = a[i] - b[i];
  return out;
}

Tensor Tensor::mul(const Tensor& other) const {
  check_same_shape(other, "mul");
  Tensor out(shape_);
  const float* a = data();
  const float* b = other.data();
  float* o = out.data();
  for (int64_t i = 0; i < numel_; ++i) o[i] = a[i] * b[i];
  return out;
}

Tensor Tensor::scale(float s) const {
  Tensor out(shape_);
  const float* a = data();
  float* o = out.data();
  for (int64_t i = 0; i < numel_; ++i) o[i] = a[i] * s;
  return out;
}

Tensor Tensor::add_scalar(float s) const {
  Tensor out(shape_);
  const float* a = data();
  float* o = out.data();
  for (int64_t i = 0; i < numel_; ++i) o[i] = a[i] + s;
  return out;
}

void Tensor::add_(const Tensor& other) {
  check_same_shape(other, "add_");
  float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) a[i] += b[i];
}

void Tensor::scale_(float s) {
  float* a = data();
  for (int64_t i = 0; i < numel_; ++i) a[i] *= s;
}

float Tensor::sum() const {
  double acc = 0.0;
  const float* a = data();
  for (int64_t i = 0; i < numel_; ++i) acc += a[i];
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  SF_CHECK(numel_ > 0);
  return sum() / static_cast<float>(numel_);
}

float Tensor::max_abs() const {
  float m = 0.0f;
  const float* a = data();
  for (int64_t i = 0; i < numel_; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

float Tensor::norm() const {
  double acc = 0.0;
  const float* a = data();
  for (int64_t i = 0; i < numel_; ++i) acc += static_cast<double>(a[i]) * a[i];
  return static_cast<float>(std::sqrt(acc));
}

bool Tensor::all_finite() const {
  const float* a = data();
  for (int64_t i = 0; i < numel_; ++i) {
    if (!std::isfinite(a[i])) return false;
  }
  return true;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  check_same_shape(other, "max_abs_diff");
  float m = 0.0f;
  const float* a = data();
  const float* b = other.data();
  for (int64_t i = 0; i < numel_; ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace sf
