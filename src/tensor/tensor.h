// Dense row-major fp32 tensor.
//
// Deliberately minimal: contiguous storage, value-semantic handle with
// shared ownership of the buffer (like torch.Tensor), shape utilities, and
// elementwise/reduction convenience methods. All performance-critical math
// lives in sf::kernels and operates on raw spans; the Tensor class is the
// glue the model and autograd layers are written against.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace sf {

using Shape = std::vector<int64_t>;

int64_t shape_numel(const Shape& shape);
std::string shape_str(const Shape& shape);

class Tensor {
 public:
  /// Empty 0-d tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor initialized from values (size must match shape).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  static Tensor scalar(float value) { return Tensor({1}, {value}); }

  const Shape& shape() const { return shape_; }
  int64_t dim(size_t i) const {
    SF_CHECK(i < shape_.size()) << "dim index" << i << "of" << shape_str(shape_);
    return shape_[i];
  }
  size_t rank() const { return shape_.size(); }
  int64_t numel() const { return numel_; }
  bool defined() const { return data_ != nullptr; }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }
  std::span<float> span() { return {data_.get(), static_cast<size_t>(numel_)}; }
  std::span<const float> span() const {
    return {data_.get(), static_cast<size_t>(numel_)};
  }

  float& at(int64_t i) { return data_.get()[i]; }
  float at(int64_t i) const { return data_.get()[i]; }

  /// Shared-buffer view with a new shape (numel must match).
  Tensor reshape(Shape new_shape) const;

  /// Deep copy.
  Tensor clone() const;

  /// Fill with a constant.
  void fill(float value);

  /// Copy values from another tensor of identical numel.
  void copy_from(const Tensor& src);

  // ---- Convenience math (thin wrappers; heavy math is in sf::kernels) ----
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor scale(float s) const;
  Tensor add_scalar(float s) const;

  void add_(const Tensor& other);   ///< in-place +=
  void scale_(float s);             ///< in-place *=

  float sum() const;
  float mean() const;
  float max_abs() const;
  /// L2 norm of all elements.
  float norm() const;

  /// True if all elements are finite.
  bool all_finite() const;

  /// Max |a-b| against another tensor of the same shape.
  float max_abs_diff(const Tensor& other) const;

 private:
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  int64_t numel_ = 0;
  std::shared_ptr<float[]> data_;
};

}  // namespace sf
