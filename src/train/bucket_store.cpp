#include "train/bucket_store.h"

#include <cstring>

#include "common/error.h"

namespace sf::train {

BucketStore::BucketStore(std::vector<autograd::Var> params,
                         int64_t capacity_bytes)
    : params_(std::move(params)), capacity_bytes_(capacity_bytes) {
  SF_CHECK(!params_.empty());
  SF_CHECK(capacity_bytes_ >= 1);
  assignment_.assign(params_.size(), -1);
  const int64_t capacity_elems =
      std::max<int64_t>(1, capacity_bytes_ / static_cast<int64_t>(
                                                 sizeof(float)));
  Bucket current;
  auto flush = [&] {
    if (current.slices.empty()) return;
    current.flat = Tensor::zeros({current.numel});
    buckets_.push_back(std::move(current));
    current = Bucket{};
  };
  // Reverse registration order: gradients for late-registered parameters
  // (used near the end of forward) land first in backward.
  for (size_t i = params_.size(); i-- > 0;) {
    const int64_t n = params_[i].numel();
    if (!current.slices.empty() && current.numel + n > capacity_elems) {
      flush();
    }
    current.slices.push_back(
        BucketSlice{i, current.numel, n});
    current.numel += n;
    assignment_[i] = static_cast<int>(buckets_.size());
  }
  flush();
  for (auto& b : buckets_) b.pending = static_cast<int>(b.slices.size());
}

void BucketStore::reset_pending() {
  for (auto& b : buckets_) b.pending = static_cast<int>(b.slices.size());
}

int BucketStore::on_grad_ready(size_t param_index) {
  SF_CHECK(param_index < params_.size());
  const int b = assignment_[param_index];
  Bucket& bucket = buckets_[b];
  SF_CHECK(bucket.pending > 0)
      << "bucket" << b << "completed more grads than it holds";
  return --bucket.pending == 0 ? b : -1;
}

void BucketStore::pack(int b) {
  Bucket& bucket = buckets_[b];
  float* out = bucket.flat.data();
  for (const BucketSlice& s : bucket.slices) {
    auto node = params_[s.param_index].node();
    if (node->grad.defined()) {
      std::memcpy(out + s.offset, node->grad.data(),
                  sizeof(float) * s.numel);
    } else {
      std::memset(out + s.offset, 0, sizeof(float) * s.numel);
    }
  }
}

void BucketStore::unpack(int b, float scale) {
  Bucket& bucket = buckets_[b];
  const float* in = bucket.flat.data();
  for (const BucketSlice& s : bucket.slices) {
    auto node = params_[s.param_index].node();
    if (!node->grad.defined()) {
      node->grad = Tensor::zeros(node->value.shape());
    }
    float* out = node->grad.data();
    if (scale == 1.0f) {
      std::memcpy(out, in + s.offset, sizeof(float) * s.numel);
    } else {
      for (int64_t i = 0; i < s.numel; ++i) {
        out[i] = in[s.offset + i] * scale;
      }
    }
  }
}

}  // namespace sf::train
