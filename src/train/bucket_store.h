// Fixed-layout gradient buckets for the overlapped data-parallel
// all-reduce (the DDP gradient buffers of §3.3.1).
//
// Parameters are assigned to flat ~capacity-byte buckets at construction,
// in *reverse* registration order — the order gradients tend to become
// ready during backward, so the first buckets fill (and their reductions
// launch) while most of backward is still ahead. The assignment depends
// only on the parameter list and the capacity, never on runtime timing:
// every rank computes the identical layout, every step reduces the
// identical bucket sequence, and the reduction order — hence the summed
// bits — is fixed. A tensor larger than the capacity gets a bucket of its
// own; buckets always hold whole tensors.
//
// The store also tracks per-bucket readiness so the autograd grad-ready
// hooks can launch a bucket the moment its last gradient lands, and
// provides bit-exact pack (grads -> flat buffer) / unpack (flat buffer ->
// grads, with the DP averaging scale) copies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "autograd/var.h"

namespace sf::train {

/// One parameter tensor's placement inside a bucket.
struct BucketSlice {
  size_t param_index = 0;  ///< index into the constructor's param list
  int64_t offset = 0;      ///< element offset inside the bucket's buffer
  int64_t numel = 0;
};

class BucketStore {
 public:
  /// `params` is the trainable-parameter list (registration order);
  /// `capacity_bytes` is the target bucket size.
  BucketStore(std::vector<autograd::Var> params, int64_t capacity_bytes);

  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_params() const { return params_.size(); }

  const std::vector<BucketSlice>& bucket(int b) const {
    return buckets_[b].slices;
  }
  int64_t bucket_numel(int b) const { return buckets_[b].numel; }
  int bucket_of(size_t param_index) const {
    return assignment_[param_index];
  }

  /// The bucket's packed gradient buffer (valid after pack(b)).
  std::span<float> flat(int b) { return buckets_[b].flat.span(); }

  /// Re-arm the per-bucket readiness counters for a new backward pass.
  void reset_pending();

  /// Record that `param_index`'s gradient is final. Returns the bucket id
  /// when this was the bucket's last outstanding gradient (the launch
  /// trigger), else -1. Not thread-safe: one store per rank.
  int on_grad_ready(size_t param_index);

  /// Copy every member gradient into the bucket's flat buffer (zeros for
  /// parameters whose gradient was never allocated).
  void pack(int b);

  /// Copy the flat buffer back into the member gradients (allocating any
  /// undefined ones), multiplying by `scale` — the 1/world_size averaging
  /// step. scale == 1 round-trips bit-exactly.
  void unpack(int b, float scale);

 private:
  struct Bucket {
    std::vector<BucketSlice> slices;
    int64_t numel = 0;
    int pending = 0;  ///< grads not yet ready this pass
    Tensor flat;
  };

  std::vector<autograd::Var> params_;
  int64_t capacity_bytes_;
  std::vector<Bucket> buckets_;
  std::vector<int> assignment_;  ///< param index -> bucket id
};

}  // namespace sf::train
