#include "train/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/error.h"

namespace sf::train {
namespace {

constexpr uint64_t kMagic = 0x5343414c45464f4cULL;  // "SCALEFOL"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* p, size_t n) {
  SF_CHECK(std::fwrite(p, 1, n, f) == n) << "checkpoint write failed";
}

void read_bytes(std::FILE* f, void* p, size_t n) {
  SF_CHECK(std::fread(p, 1, n, f) == n) << "checkpoint read failed";
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  write_bytes(f, &v, sizeof(T));
}

template <typename T>
T read_pod(std::FILE* f) {
  T v;
  read_bytes(f, &v, sizeof(T));
  return v;
}

}  // namespace

void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  SF_CHECK(f != nullptr) << "cannot open for write:" << path;
  write_pod<uint64_t>(f.get(), kMagic);
  write_pod<uint64_t>(f.get(), tensors.size());
  for (const auto& [name, t] : tensors) {
    write_pod<uint64_t>(f.get(), name.size());
    write_bytes(f.get(), name.data(), name.size());
    write_pod<uint64_t>(f.get(), t.shape().size());
    for (int64_t d : t.shape()) write_pod<int64_t>(f.get(), d);
    write_bytes(f.get(), t.data(), sizeof(float) * t.numel());
  }
}

std::map<std::string, Tensor> load_tensors(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  SF_CHECK(f != nullptr) << "cannot open for read:" << path;
  SF_CHECK(read_pod<uint64_t>(f.get()) == kMagic)
      << "bad checkpoint magic in" << path;
  uint64_t count = read_pod<uint64_t>(f.get());
  std::map<std::string, Tensor> out;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = read_pod<uint64_t>(f.get());
    SF_CHECK(name_len < 4096) << "implausible name length";
    std::string name(name_len, '\0');
    read_bytes(f.get(), name.data(), name_len);
    uint64_t rank = read_pod<uint64_t>(f.get());
    SF_CHECK(rank <= 8) << "implausible tensor rank";
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<int64_t>(f.get());
    Tensor t(shape);
    read_bytes(f.get(), t.data(), sizeof(float) * t.numel());
    out.emplace(std::move(name), std::move(t));
  }
  return out;
}

void save_checkpoint(const std::string& path, const model::ParamStore& store) {
  std::map<std::string, Tensor> tensors;
  for (const auto& [name, v] : store.named()) tensors.emplace(name, v.value());
  save_tensors(path, tensors);
}

void load_checkpoint(const std::string& path, model::ParamStore& store) {
  auto tensors = load_tensors(path);
  for (const auto& [name, v] : store.named()) {
    auto it = tensors.find(name);
    SF_CHECK(it != tensors.end()) << "checkpoint missing parameter" << name;
    SF_CHECK(it->second.shape() == v.shape())
        << "checkpoint shape mismatch for" << name;
    const_cast<autograd::Var&>(v).mutable_value().copy_from(it->second);
  }
}

}  // namespace sf::train
