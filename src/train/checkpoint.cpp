#include "train/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"

namespace sf::train {
namespace {

namespace fs = std::filesystem;

// Container magics. v1 (legacy, no CRC) is still readable; v2 adds the
// version field, per-tensor CRC32 and an end marker.
constexpr uint64_t kMagicV1 = 0x5343414c45464f4cULL;  // "SCALEFOL"
constexpr uint64_t kMagicV2 = 0x5346434b50543032ULL;  // "SFCKPT02"
constexpr uint32_t kVersion = 2;
constexpr uint64_t kEndMarker = ~kMagicV2;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void fail(CheckpointError::Kind kind, const std::string& msg) {
  throw CheckpointError(kind, "checkpoint: " + msg);
}

void write_bytes(std::FILE* f, const void* p, size_t n) {
  if (std::fwrite(p, 1, n, f) != n) {
    fail(CheckpointError::Kind::kOpen, "write failed");
  }
}

void read_bytes(std::FILE* f, void* p, size_t n, const std::string& path) {
  if (std::fread(p, 1, n, f) != n) {
    fail(CheckpointError::Kind::kTruncated, "truncated file " + path);
  }
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  write_bytes(f, &v, sizeof(T));
}

template <typename T>
T read_pod(std::FILE* f, const std::string& path) {
  T v;
  read_bytes(f, &v, sizeof(T), path);
  return v;
}

/// fsync a directory so a freshly renamed entry survives a crash.
void sync_dir(const std::string& dir) {
  int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::map<std::string, Tensor> load_tensors_v1(std::FILE* f,
                                              const std::string& path) {
  uint64_t count = read_pod<uint64_t>(f, path);
  std::map<std::string, Tensor> out;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = read_pod<uint64_t>(f, path);
    if (name_len >= 4096) {
      fail(CheckpointError::Kind::kCorrupt,
           "implausible name length in " + path);
    }
    std::string name(name_len, '\0');
    read_bytes(f, name.data(), name_len, path);
    uint64_t rank = read_pod<uint64_t>(f, path);
    if (rank > 8) {
      fail(CheckpointError::Kind::kCorrupt, "implausible tensor rank in " + path);
    }
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<int64_t>(f, path);
    Tensor t(shape);
    read_bytes(f, t.data(), sizeof(float) * t.numel(), path);
    out.emplace(std::move(name), std::move(t));
  }
  return out;
}

std::map<std::string, Tensor> load_tensors_v2(std::FILE* f,
                                              const std::string& path) {
  uint32_t version = read_pod<uint32_t>(f, path);
  if (version != kVersion) {
    fail(CheckpointError::Kind::kCorrupt,
         "unsupported container version " + std::to_string(version) + " in " +
             path);
  }
  uint64_t count = read_pod<uint64_t>(f, path);
  if (count > (1ULL << 32)) {
    fail(CheckpointError::Kind::kCorrupt, "implausible tensor count in " + path);
  }
  std::map<std::string, Tensor> out;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = read_pod<uint64_t>(f, path);
    if (name_len >= 4096) {
      fail(CheckpointError::Kind::kCorrupt,
           "implausible name length in " + path);
    }
    std::string name(name_len, '\0');
    read_bytes(f, name.data(), name_len, path);
    uint64_t rank = read_pod<uint64_t>(f, path);
    if (rank > 8) {
      fail(CheckpointError::Kind::kCorrupt, "implausible tensor rank in " + path);
    }
    Shape shape(rank);
    for (auto& d : shape) {
      d = read_pod<int64_t>(f, path);
      if (d < 0 || d > (1LL << 40)) {
        fail(CheckpointError::Kind::kCorrupt, "implausible dim in " + path);
      }
    }
    uint32_t stored_crc = read_pod<uint32_t>(f, path);
    uint64_t data_bytes = read_pod<uint64_t>(f, path);
    Tensor t(shape);
    if (data_bytes != sizeof(float) * static_cast<uint64_t>(t.numel())) {
      fail(CheckpointError::Kind::kCorrupt,
           "payload size mismatch for " + name + " in " + path);
    }
    read_bytes(f, t.data(), data_bytes, path);
    uint32_t crc = crc32(t.data(), data_bytes);
    if (crc != stored_crc) {
      fail(CheckpointError::Kind::kCorrupt,
           "CRC mismatch for tensor " + name + " in " + path);
    }
    out.emplace(std::move(name), std::move(t));
  }
  if (read_pod<uint64_t>(f, path) != kEndMarker) {
    fail(CheckpointError::Kind::kCorrupt, "missing end marker in " + path);
  }
  return out;
}

}  // namespace

void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors) {
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) fail(CheckpointError::Kind::kOpen, "cannot open for write: " + tmp);
    try {
      write_pod<uint64_t>(f.get(), kMagicV2);
      write_pod<uint32_t>(f.get(), kVersion);
      write_pod<uint64_t>(f.get(), tensors.size());
      for (const auto& [name, t] : tensors) {
        write_pod<uint64_t>(f.get(), name.size());
        write_bytes(f.get(), name.data(), name.size());
        write_pod<uint64_t>(f.get(), t.shape().size());
        for (int64_t d : t.shape()) write_pod<int64_t>(f.get(), d);
        const uint64_t data_bytes = sizeof(float) * t.numel();
        write_pod<uint32_t>(f.get(), crc32(t.data(), data_bytes));
        write_pod<uint64_t>(f.get(), data_bytes);
        write_bytes(f.get(), t.data(), data_bytes);
      }
      write_pod<uint64_t>(f.get(), kEndMarker);
      // A crash here (before the rename below) must leave the previous
      // checkpoint untouched — exercised via this injection site.
      SF_FAULT_POINT("checkpoint.write");
      if (std::fflush(f.get()) != 0) {
        fail(CheckpointError::Kind::kOpen, "flush failed: " + tmp);
      }
      ::fsync(::fileno(f.get()));
    } catch (...) {
      f.reset();
      std::remove(tmp.c_str());
      throw;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(CheckpointError::Kind::kOpen, "rename failed: " + tmp + " -> " + path);
  }
  sync_dir(fs::path(path).parent_path().string());
}

std::map<std::string, Tensor> load_tensors(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) fail(CheckpointError::Kind::kOpen, "cannot open for read: " + path);
  uint64_t magic = read_pod<uint64_t>(f.get(), path);
  if (magic == kMagicV2) return load_tensors_v2(f.get(), path);
  if (magic == kMagicV1) return load_tensors_v1(f.get(), path);
  fail(CheckpointError::Kind::kCorrupt, "bad magic in " + path);
}

void save_checkpoint(const std::string& path, const model::ParamStore& store) {
  std::map<std::string, Tensor> tensors;
  for (const auto& [name, v] : store.named()) tensors.emplace(name, v.value());
  save_tensors(path, tensors);
}

void load_checkpoint(const std::string& path, model::ParamStore& store) {
  auto tensors = load_tensors(path);
  // Validate the full plan before the first write so a bad file cannot
  // leave the store half-updated.
  for (const auto& [name, v] : store.named()) {
    auto it = tensors.find(name);
    if (it == tensors.end()) {
      fail(CheckpointError::Kind::kMissingParam,
           "missing parameter " + name + " in " + path);
    }
    if (!(it->second.shape() == v.shape())) {
      fail(CheckpointError::Kind::kShapeMismatch,
           "shape mismatch for " + name + " in " + path);
    }
  }
  for (const auto& [name, v] : store.named()) {
    const_cast<autograd::Var&>(v).mutable_value().copy_from(
        tensors.at(name));
  }
}

CheckpointManager::CheckpointManager(std::string dir, int keep_last)
    : dir_(std::move(dir)), keep_last_(keep_last) {
  SF_CHECK(keep_last_ >= 1);
  fs::create_directories(dir_);
}

std::string CheckpointManager::path_for_step(int64_t step) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt_%010lld.bin",
                static_cast<long long>(step));
  return (fs::path(dir_) / buf).string();
}

std::vector<int64_t> CheckpointManager::list_steps() const {
  std::vector<int64_t> steps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.rfind("ckpt_", 0) != 0 ||
        name.substr(name.size() - 4) != ".bin") {
      continue;
    }
    const std::string digits = name.substr(5, name.size() - 9);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    steps.push_back(std::stoll(digits));
  }
  std::sort(steps.rbegin(), steps.rend());
  return steps;
}

std::string CheckpointManager::save(
    int64_t step, const std::map<std::string, Tensor>& tensors) {
  SF_CHECK(step >= 0);
  const std::string path = path_for_step(step);
  save_tensors(path, tensors);
  auto steps = list_steps();  // newest first
  for (size_t i = static_cast<size_t>(keep_last_); i < steps.size(); ++i) {
    std::error_code ec;
    fs::remove(path_for_step(steps[i]), ec);
  }
  return path;
}

int64_t CheckpointManager::load_latest(std::map<std::string, Tensor>& out) const {
  for (int64_t step : list_steps()) {
    try {
      out = load_tensors(path_for_step(step));
      return step;
    } catch (const CheckpointError& e) {
      SF_LOG(kWarn) << "skipping invalid checkpoint " << path_for_step(step)
                    << ": " << e.what();
    }
  }
  return -1;
}

}  // namespace sf::train
