// Crash-consistent binary tensor checkpointing.
//
// Used for: from-scratch vs from-checkpoint experiments (MLPerf HPC
// formulates OpenFold as partial training from a predefined checkpoint),
// the disk-backed evaluation-set mode of §3.4, and fault-tolerant
// auto-resume of interrupted time-to-train runs.
//
// Durability model:
//   - save_tensors writes to a temporary file in the target directory,
//     fsyncs it (and the directory), then atomically renames it over the
//     destination: a crash at any point leaves either the complete old
//     checkpoint or the complete new one, never a torn file;
//   - the on-disk container (format v2) carries a versioned header, a
//     per-tensor CRC32 of the payload, and an end-of-file marker, so
//     load_tensors can distinguish truncation from bit corruption;
//   - CheckpointManager keeps a rotating step-numbered directory and, on
//     load, falls back past corrupt/truncated files to the newest valid
//     checkpoint.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "model/params.h"
#include "tensor/tensor.h"

namespace sf::train {

/// Typed error for checkpoint I/O and validation failures.
class CheckpointError : public Error {
 public:
  enum class Kind {
    kOpen,           ///< cannot open/create/rename the file
    kTruncated,      ///< file ends mid-record
    kCorrupt,        ///< bad magic, implausible field, or CRC mismatch
    kShapeMismatch,  ///< tensor shape differs from the destination store
    kMissingParam,   ///< store parameter absent from the file
  };
  CheckpointError(Kind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Write a named-tensor map to a binary file, crash-consistently
/// (tmp file + fsync + atomic rename). Overwrites.
/// Injection site "checkpoint.write" fires after the payload is written
/// but before it is made durable (simulates a crash mid-save).
void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors);

/// Read a named-tensor map back. Accepts the current (v2, CRC-checked)
/// and the legacy (v1) container. Throws CheckpointError on malformed
/// files.
std::map<std::string, Tensor> load_tensors(const std::string& path);

/// Save all parameters of a store.
void save_checkpoint(const std::string& path, const model::ParamStore& store);

/// Load parameters into an existing store (shapes must match; every
/// parameter in the store must be present in the file). The whole file is
/// read and validated first: on any failure the store is left untouched.
void load_checkpoint(const std::string& path, model::ParamStore& store);

/// Rotating directory of step-numbered checkpoints ("ckpt_<step>.bin")
/// with newest-valid fallback on load.
class CheckpointManager {
 public:
  /// `keep_last` newest checkpoints survive pruning (>= 1).
  explicit CheckpointManager(std::string dir, int keep_last = 3);

  const std::string& dir() const { return dir_; }
  std::string path_for_step(int64_t step) const;

  /// Atomically write step `step`, then prune all but the newest
  /// `keep_last` checkpoints. Returns the written path.
  std::string save(int64_t step, const std::map<std::string, Tensor>& tensors);

  /// Steps with a checkpoint file present, newest first.
  std::vector<int64_t> list_steps() const;

  /// Load the newest checkpoint that passes validation, skipping corrupt
  /// or truncated files with a warning. Fills `out` and returns its step;
  /// returns -1 (out untouched) when no valid checkpoint exists.
  int64_t load_latest(std::map<std::string, Tensor>& out) const;

 private:
  std::string dir_;
  int keep_last_;
};

}  // namespace sf::train
