// Binary tensor checkpointing (named-tensor container format).
//
// Used for: from-scratch vs from-checkpoint experiments (MLPerf HPC
// formulates OpenFold as partial training from a predefined checkpoint),
// and the disk-backed evaluation-set mode of §3.4.
#pragma once

#include <map>
#include <string>

#include "model/params.h"
#include "tensor/tensor.h"

namespace sf::train {

/// Write a named-tensor map to a binary file. Overwrites.
void save_tensors(const std::string& path,
                  const std::map<std::string, Tensor>& tensors);

/// Read a named-tensor map back. Throws sf::Error on malformed files.
std::map<std::string, Tensor> load_tensors(const std::string& path);

/// Save all parameters of a store.
void save_checkpoint(const std::string& path, const model::ParamStore& store);

/// Load parameters into an existing store (shapes must match; every
/// parameter in the store must be present in the file).
void load_checkpoint(const std::string& path, model::ParamStore& store);

}  // namespace sf::train
