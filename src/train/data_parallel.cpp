#include "train/data_parallel.h"

#include <cmath>
#include <thread>

#include "autograd/var.h"
#include "common/error.h"
#include "common/timer.h"

namespace sf::train {

DataParallelTrainer::DataParallelTrainer(const model::ModelConfig& cfg,
                                         TrainConfig train_cfg,
                                         int world_size, uint64_t model_seed)
    : world_size_(world_size),
      train_cfg_(train_cfg),
      comm_(std::make_unique<dap::Communicator>(world_size)),
      recycle_rng_(train_cfg.seed) {
  SF_CHECK(world_size >= 1);
  OptimizerConfig oc = train_cfg_.opt;
  oc.adam.lr = train_cfg_.base_lr;
  for (int r = 0; r < world_size; ++r) {
    // Identical seed => identical initialization on every replica.
    replicas_.push_back(
        std::make_unique<model::MiniAlphaFold>(cfg, model_seed));
    optimizers_.push_back(
        std::make_unique<Optimizer>(replicas_.back()->params().all(), oc));
  }
}

StepResult DataParallelTrainer::train_step(
    std::span<const data::Batch> batches) {
  SF_CHECK(static_cast<int>(batches.size()) == world_size_)
      << "need one batch per rank";
  Timer timer;
  ++step_;
  // Recycling depth sampled once per step, shared by all ranks (the
  // paper's training recipe: one sampled depth per global step).
  const int64_t recycles =
      train_cfg_.min_recycles +
      static_cast<int64_t>(recycle_rng_.uniform_int(static_cast<uint64_t>(
          train_cfg_.max_recycles - train_cfg_.min_recycles + 1)));
  // LR schedule identical on every rank.
  const int64_t s = step_;
  float lr_scale = 1.0f;
  if (train_cfg_.warmup_steps > 0 && s < train_cfg_.warmup_steps) {
    lr_scale = static_cast<float>(s) /
               static_cast<float>(train_cfg_.warmup_steps);
  }

  std::vector<float> losses(world_size_, 0.0f);
  std::vector<float> lddts(world_size_, 0.0f);
  std::vector<float> grad_norms(world_size_, 0.0f);
  const float inv_w = 1.0f / static_cast<float>(world_size_);

  auto rank_fn = [&](int rank) {
    auto& net = *replicas_[rank];
    auto& opt = *optimizers_[rank];
    opt.zero_grad();
    auto out = net.forward(batches[rank], recycles, /*compute_loss=*/true);
    autograd::backward(out.loss);
    losses[rank] = out.loss.value().at(0);
    lddts[rank] = out.lddt;

    // Gradient all-reduce: average across the DP group, one bucket per
    // parameter tensor (the DDP gradient buffers of §3.3.1).
    for (auto& p : net.params().all()) {
      auto node = p.node();
      if (!node->grad.defined()) {
        node->grad = Tensor::zeros(node->value.shape());
      }
      comm_->all_reduce_sum(rank, node->grad.span());
      node->grad.scale_(inv_w);
    }
    opt.step(lr_scale);
    grad_norms[rank] = opt.last_grad_norm();
  };

  if (world_size_ == 1) {
    rank_fn(0);
  } else {
    std::vector<std::thread> threads;
    for (int r = 0; r < world_size_; ++r) threads.emplace_back(rank_fn, r);
    for (auto& t : threads) t.join();
  }

  StepResult result;
  result.recycles = recycles;
  for (int r = 0; r < world_size_; ++r) {
    result.loss += losses[r] * inv_w;
    result.lddt += lddts[r] * inv_w;
  }
  result.grad_norm = grad_norms[0];
  result.seconds = timer.elapsed();
  return result;
}

float DataParallelTrainer::replica_divergence(int rank) const {
  SF_CHECK(rank >= 0 && rank < world_size_);
  auto base = replicas_[0]->params().all();
  auto other = replicas_[rank]->params().all();
  float max_diff = 0.0f;
  for (size_t i = 0; i < base.size(); ++i) {
    max_diff =
        std::max(max_diff, base[i].value().max_abs_diff(other[i].value()));
  }
  return max_diff;
}

}  // namespace sf::train
