#include "train/data_parallel.h"

#include <cmath>
#include <exception>
#include <thread>

#include "autograd/var.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/timer.h"
#include "kernels/optimizer_kernels.h"
#include "obs/trace.h"

namespace sf::train {

DataParallelTrainer::DataParallelTrainer(const model::ModelConfig& cfg,
                                         TrainConfig train_cfg,
                                         int world_size, uint64_t model_seed)
    : model_cfg_(cfg),
      model_seed_(model_seed),
      world_size_(world_size),
      train_cfg_(train_cfg),
      comm_(std::make_unique<dap::Communicator>(world_size)),
      recycle_rng_(train_cfg.seed) {
  SF_CHECK(world_size >= 1);
  OptimizerConfig oc = train_cfg_.opt;
  oc.adam.lr = train_cfg_.base_lr;
  for (int r = 0; r < world_size; ++r) {
    // Identical seed => identical initialization on every replica.
    replicas_.push_back(
        std::make_unique<model::MiniAlphaFold>(cfg, model_seed));
    optimizers_.push_back(
        std::make_unique<Optimizer>(replicas_.back()->params().all(), oc));
    rank_params_.push_back(replicas_.back()->params().all());
    if (train_cfg_.overlap_grad_comm) {
      // Identical parameter lists => identical bucket layout on every
      // rank, the invariant the async launch-order matching relies on.
      bucket_stores_.push_back(std::make_unique<BucketStore>(
          rank_params_.back(), train_cfg_.grad_bucket_bytes));
    }
  }
  losses_.assign(world_size_, 0.0f);
  lddts_.assign(world_size_, 0.0f);
  grad_norms_.assign(world_size_, 0.0f);
}

void DataParallelTrainer::remove_ranks(const std::vector<char>& dead,
                                       int steps_lost,
                                       double detect_seconds) {
  Timer timer;
  const int old_ws = world_size_;
  int survivors = 0;
  for (char d : dead) survivors += d ? 0 : 1;
  SF_CHECK(survivors >= 1) << "no surviving ranks to shrink to";
  // Rebuild the communicator *before* dropping replicas: constructing the
  // new one and destroying the old joins the old comm thread, so no
  // in-flight reduction can still touch a dying replica's bucket buffers.
  comm_ = std::make_unique<dap::Communicator>(survivors);
  for (int r = old_ws - 1; r >= 0; --r) {
    if (!dead[r]) continue;
    replicas_.erase(replicas_.begin() + r);
    optimizers_.erase(optimizers_.begin() + r);
    rank_params_.erase(rank_params_.begin() + r);
    if (!bucket_stores_.empty()) {
      bucket_stores_.erase(bucket_stores_.begin() + r);
    }
  }
  world_size_ = survivors;
  losses_.assign(world_size_, 0.0f);
  lddts_.assign(world_size_, 0.0f);
  grad_norms_.assign(world_size_, 0.0f);
  elastic_events_.push_back({step_, old_ws, world_size_, old_ws - survivors,
                             steps_lost, detect_seconds + timer.elapsed()});
  obs::emit_instant("ddp", "shrink", 0, world_size_);
}

void DataParallelTrainer::shrink_to(int new_world_size) {
  SF_CHECK(new_world_size >= 1 && new_world_size <= world_size_);
  if (new_world_size == world_size_) return;
  // Every replica holds the same bits; dropping the top ranks loses
  // nothing.
  std::vector<char> dead(world_size_, 0);
  for (int r = new_world_size; r < world_size_; ++r) dead[r] = 1;
  const auto n_events = elastic_events_.size();
  remove_ranks(dead, /*steps_lost=*/0, /*detect_seconds=*/0.0);
  elastic_events_[n_events].ranks_lost = 0;  // planned, not killed
}

void DataParallelTrainer::grow_to(int new_world_size) {
  SF_CHECK(new_world_size >= world_size_);
  if (new_world_size == world_size_) return;
  Timer timer;
  const int old_ws = world_size_;
  OptimizerConfig oc = train_cfg_.opt;
  oc.adam.lr = train_cfg_.base_lr;
  // In-memory state transfer: the new rank's params and full
  // optimizer/SWA state are bit-exact copies of rank 0's — the elastic
  // "re-shard" never touches disk. (With replicated DP state, re-sharding
  // degenerates to replication; the bucket layout is recomputed from the
  // parameter list and is identical by construction.)
  const auto state = optimizers_[0]->export_state();
  for (int r = old_ws; r < new_world_size; ++r) {
    replicas_.push_back(
        std::make_unique<model::MiniAlphaFold>(model_cfg_, model_seed_));
    auto params = replicas_.back()->params().all();
    SF_CHECK(params.size() == rank_params_[0].size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].node()->value.copy_from(rank_params_[0][i].value());
    }
    optimizers_.push_back(std::make_unique<Optimizer>(params, oc));
    optimizers_.back()->import_state(state);
    rank_params_.push_back(std::move(params));
    if (train_cfg_.overlap_grad_comm) {
      bucket_stores_.push_back(std::make_unique<BucketStore>(
          rank_params_.back(), train_cfg_.grad_bucket_bytes));
    }
  }
  comm_ = std::make_unique<dap::Communicator>(new_world_size);
  world_size_ = new_world_size;
  losses_.assign(world_size_, 0.0f);
  lddts_.assign(world_size_, 0.0f);
  grad_norms_.assign(world_size_, 0.0f);
  elastic_events_.push_back(
      {step_, old_ws, world_size_, 0, 0, timer.elapsed()});
  obs::emit_instant("ddp", "grow", 0, world_size_);
}

void DataParallelTrainer::rank_step_blocking(int rank,
                                             const data::Batch& batch,
                                             int64_t recycles, float lr_scale,
                                             float inv_w) {
  // Step-boundary fault site: hit exactly world_size times per step, so a
  // kill armed here has a deterministic hit-count position in the run.
  SF_FAULT_POINT("ddp.rank_step", rank);
  auto& net = *replicas_[rank];
  auto& opt = *optimizers_[rank];
  opt.zero_grad();
  auto out = net.forward(batch, recycles, /*compute_loss=*/true);
  {
    SF_TRACE_SPAN_ID("ddp", "backward", rank);
    autograd::backward(out.loss);
  }
  losses_[rank] = out.loss.value().at(0);
  lddts_[rank] = out.lddt;

  // Gradient all-reduce: average across the DP group, one bucket per
  // parameter tensor (the DDP gradient buffers of §3.3.1).
  for (auto& p : rank_params_[rank]) {
    auto node = p.node();
    if (!node->grad.defined()) {
      node->grad = Tensor::zeros(node->value.shape());
    }
    comm_->all_reduce_sum(rank, node->grad.span());
    node->grad.scale_(inv_w);
  }
  if (train_cfg_.elastic_world) {
    // Commit barrier (all-or-nothing): a killed rank never reaches this
    // rendezvous, so either every survivor passes it and applies the
    // update, or every survivor throws out of it and nobody does —
    // surviving replicas cannot diverge across a mid-step rank loss.
    comm_->barrier(rank);
  }
  opt.step(lr_scale);
  grad_norms_[rank] = opt.last_grad_norm();
}

void DataParallelTrainer::rank_step_overlapped(int rank,
                                               const data::Batch& batch,
                                               int64_t recycles,
                                               float lr_scale, float inv_w) {
  SF_FAULT_POINT("ddp.rank_step", rank);
  auto& net = *replicas_[rank];
  auto& opt = *optimizers_[rank];
  auto& store = *bucket_stores_[rank];
  const auto& params = rank_params_[rank];

  opt.zero_grad();
  auto out = net.forward(batch, recycles, /*compute_loss=*/true);
  losses_[rank] = out.loss.value().at(0);
  lddts_[rank] = out.lddt;

  store.reset_pending();
  const int nb = store.num_buckets();
  std::vector<dap::Communicator::AsyncHandle> handles(nb);
  std::vector<bool> launched(nb, false);

  // Grad-ready hooks: when a bucket's last gradient lands, pack it and
  // launch its async reduction — comm overlaps the rest of backward.
  // Every rank's tape is structurally identical, so the hooks fire in the
  // same order everywhere and the per-rank async launch sequences match.
  autograd::set_grad_ready_hooks(params, [&](size_t param_index) {
    const int b = store.on_grad_ready(param_index);
    if (b < 0) return;
    SF_FAULT_POINT("ddp.bucket_launch", b);
    SF_TRACE_SPAN_ID("ddp", "bucket_pack", b);
    store.pack(b);
    handles[b] = comm_->all_reduce_sum_async(rank, store.flat(b),
                                             /*tag=*/b);
    launched[b] = true;
  });
  {
    SF_TRACE_SPAN_ID("ddp", "backward", rank);
    autograd::backward(out.loss);
  }

  // Drain buckets in index order: wait, scatter the averaged gradients
  // back, and accumulate per-tensor squared-norm partials so the clip
  // norm is known the moment the last bucket lands (clip overlap).
  std::vector<double> partials(store.num_params(), 0.0);
  std::vector<const float*> grad_ptrs;
  std::vector<int64_t> grad_sizes;
  std::vector<double> bucket_partials;
  for (int b = 0; b < nb; ++b) {
    SF_CHECK(launched[b]) << "bucket" << b << "never launched";
    SF_FAULT_POINT("ddp.bucket_wait", b);
    handles[b].wait();
    SF_TRACE_SPAN_ID("ddp", "bucket_unpack", b);
    store.unpack(b, inv_w);
    const auto& slices = store.bucket(b);
    grad_ptrs.clear();
    grad_sizes.clear();
    for (const BucketSlice& s : slices) {
      grad_ptrs.push_back(params[s.param_index].node()->grad.data());
      grad_sizes.push_back(s.numel);
    }
    bucket_partials.assign(slices.size(), 0.0);
    kernels::grad_sq_sum_partials(grad_ptrs, grad_sizes,
                                  bucket_partials.data());
    for (size_t j = 0; j < slices.size(); ++j) {
      partials[slices[j].param_index] = bucket_partials[j];
    }
  }
  // Partials combine in parameter order — bit-identical to the blocking
  // Optimizer::step's grad_norm_bucketed over per-tensor buckets.
  const float norm = kernels::grad_norm_from_partials(partials);
  if (train_cfg_.elastic_world) {
    // Commit barrier (all-or-nothing): a killed rank never reaches this
    // rendezvous, so either every survivor passes it and applies the
    // update, or every survivor throws out of it and nobody does —
    // surviving replicas cannot diverge across a mid-step rank loss.
    comm_->barrier(rank);
  }
  opt.step_with_norm(norm, lr_scale);
  grad_norms_[rank] = opt.last_grad_norm();
}

StepResult DataParallelTrainer::train_step(
    std::span<const data::Batch> batches) {
  SF_CHECK(static_cast<int>(batches.size()) == world_size_)
      << "need one batch per rank";
  Timer timer;
  ++step_;
  // Recycling depth sampled once per step, shared by all ranks (the
  // paper's training recipe: one sampled depth per global step).
  const int64_t recycles =
      train_cfg_.min_recycles +
      static_cast<int64_t>(recycle_rng_.uniform_int(static_cast<uint64_t>(
          train_cfg_.max_recycles - train_cfg_.min_recycles + 1)));
  // LR schedule identical on every rank.
  const int64_t s = step_;
  float lr_scale = 1.0f;
  if (train_cfg_.warmup_steps > 0 && s < train_cfg_.warmup_steps) {
    lr_scale = static_cast<float>(s) /
               static_cast<float>(train_cfg_.warmup_steps);
  }

  const float inv_w = 1.0f / static_cast<float>(world_size_);
  std::vector<std::exception_ptr> errors(world_size_);
  std::vector<char> killed(world_size_, 0);
  // Commit detector for the elastic path: the commit barrier guarantees
  // survivors either all advanced their optimizer past this count or none
  // did.
  const int64_t opt_steps_before = optimizers_[0]->step_count();

  auto rank_fn = [&](int rank) {
    try {
      if (train_cfg_.overlap_grad_comm) {
        rank_step_overlapped(rank, batches[rank], recycles, lr_scale, inv_w);
      } else {
        rank_step_blocking(rank, batches[rank], recycles, lr_scale, inv_w);
      }
    } catch (const fault::WorkerKill& kill) {
      if (train_cfg_.elastic_world) {
        killed[rank] = 1;
        // Failure detection: wake every peer parked on any collective
        // (async wait or blocking rendezvous) so loss of this rank is
        // observed in bounded time instead of hanging the step.
        comm_->abort("rank " + std::to_string(rank) +
                     " lost: " + kill.what());
        return;
      }
      errors[rank] = std::current_exception();
      comm_->abort("rank " + std::to_string(rank) + " failed mid-step");
    } catch (...) {
      errors[rank] = std::current_exception();
      // Wake peers blocked on collectives this rank will never join, so a
      // single failing rank cannot hang the step.
      comm_->abort("rank " + std::to_string(rank) + " failed mid-step");
    }
  };

  if (world_size_ == 1) {
    rank_fn(0);
  } else {
    std::vector<std::thread> threads;
    for (int r = 0; r < world_size_; ++r) threads.emplace_back(rank_fn, r);
    for (auto& t : threads) t.join();
  }

  int ranks_lost = 0;
  for (char k : killed) ranks_lost += k ? 1 : 0;

  if (ranks_lost > 0) {
    // Elastic recovery (all rank threads are quiesced by the joins above).
    const double detect_seconds = timer.elapsed();
    if (ranks_lost == world_size_) {
      comm_->recover();
      throw Error("elastic step lost all " + std::to_string(world_size_) +
                  " ranks; nothing to recover onto");
    }
    // Did the interrupted update commit? The commit barrier makes this
    // all-or-nothing across survivors; assert that invariant held.
    bool applied = false;
    bool first = true;
    for (int r = 0; r < world_size_; ++r) {
      if (killed[r]) continue;
      const bool rank_applied = optimizers_[r]->step_count() > opt_steps_before;
      if (first) {
        applied = rank_applied;
        first = false;
      } else {
        SF_CHECK(rank_applied == applied)
            << "survivors disagree on step commit; elastic all-or-nothing "
               "invariant broken";
      }
      // Survivor errors here are abort fallout (thrown collectives), not
      // independent failures: the resize subsumes them.
      errors[r] = nullptr;
    }
    const bool discarded = !applied;
    StepResult result;
    result.recycles = recycles;
    result.ranks_lost = ranks_lost;
    result.lost_to_fault = discarded;
    if (applied) {
      // Commit implies every rank (including the ones killed afterwards)
      // finished forward, so all old-world losses are valid and this is
      // exactly the mean the applied update used. Capture before
      // remove_ranks resets the metric vectors.
      for (int r = 0; r < world_size_; ++r) {
        result.loss += losses_[r] * inv_w;
        result.lddt += lddts_[r] * inv_w;
      }
      for (int r = 0; r < world_size_; ++r) {
        if (!killed[r]) {
          result.grad_norm = grad_norms_[r];
          break;
        }
      }
    } else {
      --step_;  // the step number is retried at the new size
    }
    remove_ranks(killed, discarded ? 1 : 0, detect_seconds);
    result.seconds = timer.elapsed();
    return result;
  }

  for (int r = 0; r < world_size_; ++r) {
    if (errors[r]) {
      // All rank threads are joined: safe to reset the abort/async
      // machinery so the communicator (and trainer) stay usable after the
      // failure.
      comm_->recover();
      std::rethrow_exception(errors[r]);
    }
  }

  StepResult result;
  result.recycles = recycles;
  for (int r = 0; r < world_size_; ++r) {
    result.loss += losses_[r] * inv_w;
    result.lddt += lddts_[r] * inv_w;
  }
  result.grad_norm = grad_norms_[0];
  result.seconds = timer.elapsed();
  return result;
}

float DataParallelTrainer::replica_divergence(int rank) const {
  SF_CHECK(rank >= 0 && rank < world_size_);
  auto base = replicas_[0]->params().all();
  auto other = replicas_[rank]->params().all();
  float max_diff = 0.0f;
  for (size_t i = 0; i < base.size(); ++i) {
    max_diff =
        std::max(max_diff, base[i].value().max_abs_diff(other[i].value()));
  }
  return max_diff;
}

}  // namespace sf::train
