#include "train/data_parallel.h"

#include <cmath>
#include <exception>
#include <thread>

#include "autograd/var.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/timer.h"
#include "kernels/optimizer_kernels.h"
#include "obs/trace.h"

namespace sf::train {

DataParallelTrainer::DataParallelTrainer(const model::ModelConfig& cfg,
                                         TrainConfig train_cfg,
                                         int world_size, uint64_t model_seed)
    : world_size_(world_size),
      train_cfg_(train_cfg),
      comm_(std::make_unique<dap::Communicator>(world_size)),
      recycle_rng_(train_cfg.seed) {
  SF_CHECK(world_size >= 1);
  OptimizerConfig oc = train_cfg_.opt;
  oc.adam.lr = train_cfg_.base_lr;
  for (int r = 0; r < world_size; ++r) {
    // Identical seed => identical initialization on every replica.
    replicas_.push_back(
        std::make_unique<model::MiniAlphaFold>(cfg, model_seed));
    optimizers_.push_back(
        std::make_unique<Optimizer>(replicas_.back()->params().all(), oc));
    rank_params_.push_back(replicas_.back()->params().all());
    if (train_cfg_.overlap_grad_comm) {
      // Identical parameter lists => identical bucket layout on every
      // rank, the invariant the async launch-order matching relies on.
      bucket_stores_.push_back(std::make_unique<BucketStore>(
          rank_params_.back(), train_cfg_.grad_bucket_bytes));
    }
  }
  losses_.assign(world_size_, 0.0f);
  lddts_.assign(world_size_, 0.0f);
  grad_norms_.assign(world_size_, 0.0f);
}

void DataParallelTrainer::rank_step_blocking(int rank,
                                             const data::Batch& batch,
                                             int64_t recycles, float lr_scale,
                                             float inv_w) {
  auto& net = *replicas_[rank];
  auto& opt = *optimizers_[rank];
  opt.zero_grad();
  auto out = net.forward(batch, recycles, /*compute_loss=*/true);
  {
    SF_TRACE_SPAN_ID("ddp", "backward", rank);
    autograd::backward(out.loss);
  }
  losses_[rank] = out.loss.value().at(0);
  lddts_[rank] = out.lddt;

  // Gradient all-reduce: average across the DP group, one bucket per
  // parameter tensor (the DDP gradient buffers of §3.3.1).
  for (auto& p : rank_params_[rank]) {
    auto node = p.node();
    if (!node->grad.defined()) {
      node->grad = Tensor::zeros(node->value.shape());
    }
    comm_->all_reduce_sum(rank, node->grad.span());
    node->grad.scale_(inv_w);
  }
  opt.step(lr_scale);
  grad_norms_[rank] = opt.last_grad_norm();
}

void DataParallelTrainer::rank_step_overlapped(int rank,
                                               const data::Batch& batch,
                                               int64_t recycles,
                                               float lr_scale, float inv_w) {
  auto& net = *replicas_[rank];
  auto& opt = *optimizers_[rank];
  auto& store = *bucket_stores_[rank];
  const auto& params = rank_params_[rank];

  opt.zero_grad();
  auto out = net.forward(batch, recycles, /*compute_loss=*/true);
  losses_[rank] = out.loss.value().at(0);
  lddts_[rank] = out.lddt;

  store.reset_pending();
  const int nb = store.num_buckets();
  std::vector<dap::Communicator::AsyncHandle> handles(nb);
  std::vector<bool> launched(nb, false);

  // Grad-ready hooks: when a bucket's last gradient lands, pack it and
  // launch its async reduction — comm overlaps the rest of backward.
  // Every rank's tape is structurally identical, so the hooks fire in the
  // same order everywhere and the per-rank async launch sequences match.
  autograd::set_grad_ready_hooks(params, [&](size_t param_index) {
    const int b = store.on_grad_ready(param_index);
    if (b < 0) return;
    SF_FAULT_POINT("ddp.bucket_launch", b);
    SF_TRACE_SPAN_ID("ddp", "bucket_pack", b);
    store.pack(b);
    handles[b] = comm_->all_reduce_sum_async(rank, store.flat(b),
                                             /*tag=*/b);
    launched[b] = true;
  });
  {
    SF_TRACE_SPAN_ID("ddp", "backward", rank);
    autograd::backward(out.loss);
  }

  // Drain buckets in index order: wait, scatter the averaged gradients
  // back, and accumulate per-tensor squared-norm partials so the clip
  // norm is known the moment the last bucket lands (clip overlap).
  std::vector<double> partials(store.num_params(), 0.0);
  std::vector<const float*> grad_ptrs;
  std::vector<int64_t> grad_sizes;
  std::vector<double> bucket_partials;
  for (int b = 0; b < nb; ++b) {
    SF_CHECK(launched[b]) << "bucket" << b << "never launched";
    SF_FAULT_POINT("ddp.bucket_wait", b);
    handles[b].wait();
    SF_TRACE_SPAN_ID("ddp", "bucket_unpack", b);
    store.unpack(b, inv_w);
    const auto& slices = store.bucket(b);
    grad_ptrs.clear();
    grad_sizes.clear();
    for (const BucketSlice& s : slices) {
      grad_ptrs.push_back(params[s.param_index].node()->grad.data());
      grad_sizes.push_back(s.numel);
    }
    bucket_partials.assign(slices.size(), 0.0);
    kernels::grad_sq_sum_partials(grad_ptrs, grad_sizes,
                                  bucket_partials.data());
    for (size_t j = 0; j < slices.size(); ++j) {
      partials[slices[j].param_index] = bucket_partials[j];
    }
  }
  // Partials combine in parameter order — bit-identical to the blocking
  // Optimizer::step's grad_norm_bucketed over per-tensor buckets.
  const float norm = kernels::grad_norm_from_partials(partials);
  opt.step_with_norm(norm, lr_scale);
  grad_norms_[rank] = opt.last_grad_norm();
}

StepResult DataParallelTrainer::train_step(
    std::span<const data::Batch> batches) {
  SF_CHECK(static_cast<int>(batches.size()) == world_size_)
      << "need one batch per rank";
  Timer timer;
  ++step_;
  // Recycling depth sampled once per step, shared by all ranks (the
  // paper's training recipe: one sampled depth per global step).
  const int64_t recycles =
      train_cfg_.min_recycles +
      static_cast<int64_t>(recycle_rng_.uniform_int(static_cast<uint64_t>(
          train_cfg_.max_recycles - train_cfg_.min_recycles + 1)));
  // LR schedule identical on every rank.
  const int64_t s = step_;
  float lr_scale = 1.0f;
  if (train_cfg_.warmup_steps > 0 && s < train_cfg_.warmup_steps) {
    lr_scale = static_cast<float>(s) /
               static_cast<float>(train_cfg_.warmup_steps);
  }

  const float inv_w = 1.0f / static_cast<float>(world_size_);
  std::vector<std::exception_ptr> errors(world_size_);

  auto rank_fn = [&](int rank) {
    try {
      if (train_cfg_.overlap_grad_comm) {
        rank_step_overlapped(rank, batches[rank], recycles, lr_scale, inv_w);
      } else {
        rank_step_blocking(rank, batches[rank], recycles, lr_scale, inv_w);
      }
    } catch (...) {
      errors[rank] = std::current_exception();
      // Wake peers blocked on async collectives this rank will never
      // join, so a single failing rank cannot hang the step.
      comm_->abort_async("rank " + std::to_string(rank) +
                         " failed mid-step");
    }
  };

  if (world_size_ == 1) {
    rank_fn(0);
  } else {
    std::vector<std::thread> threads;
    for (int r = 0; r < world_size_; ++r) threads.emplace_back(rank_fn, r);
    for (auto& t : threads) t.join();
  }

  for (int r = 0; r < world_size_; ++r) {
    if (errors[r]) {
      // All rank threads are joined: safe to reset the async machinery so
      // the communicator (and trainer) stay usable after the failure.
      comm_->recover_async();
      std::rethrow_exception(errors[r]);
    }
  }

  StepResult result;
  result.recycles = recycles;
  for (int r = 0; r < world_size_; ++r) {
    result.loss += losses_[r] * inv_w;
    result.lddt += lddts_[r] * inv_w;
  }
  result.grad_norm = grad_norms_[0];
  result.seconds = timer.elapsed();
  return result;
}

float DataParallelTrainer::replica_divergence(int rank) const {
  SF_CHECK(rank >= 0 && rank < world_size_);
  auto base = replicas_[0]->params().all();
  auto other = replicas_[rank]->params().all();
  float max_diff = 0.0f;
  for (size_t i = 0; i < base.size(); ++i) {
    max_diff =
        std::max(max_diff, base[i].value().max_abs_diff(other[i].value()));
  }
  return max_diff;
}

}  // namespace sf::train
