// In-process data-parallel training (the DP layer of §2.2/§2.3).
//
// N model replicas (identical init), one thread per rank: each computes
// gradients on its own crop, gradients are averaged with a deterministic
// all-reduce over the DAP communicator, and every rank applies the same
// fused optimizer step — so replicas stay bit-identical, which the tests
// assert. This is the parallelism whose degree AlphaFold's global-batch
// ceiling (256) caps, motivating DAP.
//
// Two gradient-communication paths, selected by
// TrainConfig::overlap_grad_comm:
//   blocking   — after backward, one synchronous all-reduce per parameter
//                tensor (the reference path);
//   overlapped — gradients are packed into fixed ~grad_bucket_bytes
//                buckets (BucketStore); autograd grad-ready hooks launch
//                each bucket's async all-reduce the moment its last
//                gradient lands, so reduction overlaps the rest of
//                backward (§3.3.1). As buckets complete, per-tensor
//                squared-norm partials are accumulated so the grad-clip
//                norm is ready by optimizer time (clip overlap).
// Both paths produce bitwise-identical parameters: the bucket layout is a
// pure function of the parameter list, reductions are rank-ordered per
// element either way, and the norm partials sum in parameter order —
// exactly what the blocking Optimizer::step computes.
//
// Elastic world size (TrainConfig::elastic_world): ranks can leave or
// join at step boundaries without a checkpoint. The protocol exploits two
// invariants built earlier: replicas are bit-identical in lockstep, and
// BucketStore layout is a pure function of the parameter list.
//   detect   — a killed rank's WorkerKill reaches its thread's catch,
//              which calls Communicator::abort(); peers parked on any
//              collective (async wait or blocking rendezvous) throw in
//              bounded time instead of hanging;
//   quiesce  — the step's threads are joined; a commit barrier placed
//              after the last bucket wait guarantees the interrupted
//              update applied on *all* survivors or on none (a killed
//              rank never reaches the barrier, so nobody commits);
//   rebuild  — the Communicator is reconstructed at the survivor count
//              (in-flight buckets die with the old instance);
//   re-shard — nothing to move for model/optimizer/SWA state: every
//              survivor already holds the full bit-identical copy, and
//              its BucketStore layout is unchanged because the parameter
//              list is unchanged. grow_to() is the inverse: new ranks
//              clone params and optimizer state from rank 0 *in memory*
//              and compute the same bucket layout from the same list.
// A discarded step surfaces as StepResult::lost_to_fault; the caller
// re-issues the step with world_size() batches.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dap/communicator.h"
#include "model/alphafold.h"
#include "train/bucket_store.h"
#include "train/trainer.h"

namespace sf::train {

/// One world-size change performed by the elastic protocol (kill-driven
/// shrink, or planned shrink_to()/grow_to()).
struct ElasticEvent {
  int64_t step = 0;            ///< trainer step count when it happened
  int old_world_size = 0;
  int new_world_size = 0;
  int ranks_lost = 0;          ///< killed ranks (0 for a planned resize)
  int steps_lost = 0;          ///< step attempts discarded by the resize
  double recovery_seconds = 0; ///< quiesce + rebuild + re-shard time
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(const model::ModelConfig& cfg, TrainConfig train_cfg,
                      int world_size, uint64_t model_seed = 7);

  /// One optimization step: batches.size() must equal world_size; rank r
  /// trains on batches[r]. Returns metrics averaged over ranks.
  ///
  /// With TrainConfig::elastic_world, a step that loses ranks to an
  /// injected kill shrinks the trainer in place instead of throwing:
  /// world_size() is smaller on return, the result carries ranks_lost
  /// and (unless the update had already committed on every survivor)
  /// lost_to_fault, and the caller re-issues the step with world_size()
  /// batches. Surviving replicas remain bit-identical throughout.
  StepResult train_step(std::span<const data::Batch> batches);

  /// Planned resize: add ranks up to `new_world_size`. New replicas clone
  /// parameters and full optimizer/SWA state from rank 0 in memory — no
  /// checkpoint involved — and compute the identical bucket layout from
  /// the identical parameter list.
  void grow_to(int new_world_size);

  /// Planned resize: drop the highest ranks down to `new_world_size`
  /// (every replica holds the same state, so nothing is lost).
  void shrink_to(int new_world_size);

  int world_size() const { return world_size_; }
  model::MiniAlphaFold& replica(int rank) { return *replicas_[rank]; }
  int64_t step_count() const { return step_; }
  dap::Communicator::Stats comm_stats() const { return comm_->stats(); }

  /// Resize history (kill-driven and planned), oldest first.
  const std::vector<ElasticEvent>& elastic_events() const {
    return elastic_events_;
  }

  /// Rank's bucket store (overlapped path only; nullptr otherwise) —
  /// exposed so tests can assert re-bucketing determinism across resizes.
  const BucketStore* bucket_store(int rank) const {
    return train_cfg_.overlap_grad_comm ? bucket_stores_[rank].get()
                                        : nullptr;
  }

  /// Max |param difference| between replica 0 and replica `rank`
  /// (bit-identical lockstep => 0).
  float replica_divergence(int rank) const;

 private:
  void rank_step_blocking(int rank, const data::Batch& batch,
                          int64_t recycles, float lr_scale, float inv_w);
  void rank_step_overlapped(int rank, const data::Batch& batch,
                            int64_t recycles, float lr_scale, float inv_w);
  /// Drop the ranks flagged in `dead` (rebuilding the communicator at the
  /// survivor count) and append an ElasticEvent. `steps_lost` says
  /// whether the in-flight update was discarded.
  void remove_ranks(const std::vector<char>& dead, int steps_lost,
                    double detect_seconds);

  model::ModelConfig model_cfg_;
  uint64_t model_seed_;
  int world_size_;
  TrainConfig train_cfg_;
  std::unique_ptr<dap::Communicator> comm_;
  std::vector<std::unique_ptr<model::MiniAlphaFold>> replicas_;
  std::vector<std::unique_ptr<Optimizer>> optimizers_;
  std::vector<std::vector<autograd::Var>> rank_params_;
  std::vector<std::unique_ptr<BucketStore>> bucket_stores_;
  std::vector<float> losses_, lddts_, grad_norms_;
  std::vector<ElasticEvent> elastic_events_;
  Rng recycle_rng_;
  int64_t step_ = 0;
};

}  // namespace sf::train
