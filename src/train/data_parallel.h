// In-process data-parallel training (the DP layer of §2.2/§2.3).
//
// N model replicas (identical init), one thread per rank: each computes
// gradients on its own crop, gradients are averaged with a deterministic
// all-reduce over the DAP communicator, and every rank applies the same
// fused optimizer step — so replicas stay bit-identical, which the tests
// assert. This is the parallelism whose degree AlphaFold's global-batch
// ceiling (256) caps, motivating DAP.
//
// Two gradient-communication paths, selected by
// TrainConfig::overlap_grad_comm:
//   blocking   — after backward, one synchronous all-reduce per parameter
//                tensor (the reference path);
//   overlapped — gradients are packed into fixed ~grad_bucket_bytes
//                buckets (BucketStore); autograd grad-ready hooks launch
//                each bucket's async all-reduce the moment its last
//                gradient lands, so reduction overlaps the rest of
//                backward (§3.3.1). As buckets complete, per-tensor
//                squared-norm partials are accumulated so the grad-clip
//                norm is ready by optimizer time (clip overlap).
// Both paths produce bitwise-identical parameters: the bucket layout is a
// pure function of the parameter list, reductions are rank-ordered per
// element either way, and the norm partials sum in parameter order —
// exactly what the blocking Optimizer::step computes.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dap/communicator.h"
#include "model/alphafold.h"
#include "train/bucket_store.h"
#include "train/trainer.h"

namespace sf::train {

class DataParallelTrainer {
 public:
  DataParallelTrainer(const model::ModelConfig& cfg, TrainConfig train_cfg,
                      int world_size, uint64_t model_seed = 7);

  /// One optimization step: batches.size() must equal world_size; rank r
  /// trains on batches[r]. Returns metrics averaged over ranks.
  StepResult train_step(std::span<const data::Batch> batches);

  int world_size() const { return world_size_; }
  model::MiniAlphaFold& replica(int rank) { return *replicas_[rank]; }
  int64_t step_count() const { return step_; }
  dap::Communicator::Stats comm_stats() const { return comm_->stats(); }

  /// Max |param difference| between replica 0 and replica `rank`
  /// (bit-identical lockstep => 0).
  float replica_divergence(int rank) const;

 private:
  void rank_step_blocking(int rank, const data::Batch& batch,
                          int64_t recycles, float lr_scale, float inv_w);
  void rank_step_overlapped(int rank, const data::Batch& batch,
                            int64_t recycles, float lr_scale, float inv_w);

  int world_size_;
  TrainConfig train_cfg_;
  std::unique_ptr<dap::Communicator> comm_;
  std::vector<std::unique_ptr<model::MiniAlphaFold>> replicas_;
  std::vector<std::unique_ptr<Optimizer>> optimizers_;
  std::vector<std::vector<autograd::Var>> rank_params_;
  std::vector<std::unique_ptr<BucketStore>> bucket_stores_;
  std::vector<float> losses_, lddts_, grad_norms_;
  Rng recycle_rng_;
  int64_t step_ = 0;
};

}  // namespace sf::train
