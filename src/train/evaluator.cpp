#include "train/evaluator.h"

#include <condition_variable>
#include <filesystem>

#include "common/error.h"
#include "common/timer.h"
#include "model/metrics.h"
#include "model/rigid.h"
#include "train/checkpoint.h"

namespace sf::train {

EvalResult evaluate(const model::MiniAlphaFold& net,
                    std::span<const data::Batch> batches,
                    int64_t num_recycles) {
  Timer timer;
  EvalResult r;
  double lddt_acc = 0.0, loss_acc = 0.0, fape_acc = 0.0, drmsd_acc = 0.0,
         contact_acc = 0.0;
  for (const auto& batch : batches) {
    auto out = net.forward(batch, num_recycles, /*compute_loss=*/true);
    lddt_acc += out.lddt;
    loss_acc += out.loss.value().at(0);
    fape_acc += model::fape(out.positions, batch.target_pos,
                            batch.residue_mask);
    drmsd_acc += model::drmsd(out.positions, batch.target_pos,
                              batch.residue_mask);
    contact_acc += model::contact_precision(out.positions, batch.target_pos,
                                            batch.residue_mask);
    ++r.num_samples;
  }
  if (r.num_samples > 0) {
    r.avg_lddt = static_cast<float>(lddt_acc / r.num_samples);
    r.avg_loss = static_cast<float>(loss_acc / r.num_samples);
    r.avg_fape = static_cast<float>(fape_acc / r.num_samples);
    r.avg_drmsd = static_cast<float>(drmsd_acc / r.num_samples);
    r.avg_contact_precision =
        static_cast<float>(contact_acc / r.num_samples);
  }
  r.seconds = timer.elapsed();
  return r;
}

namespace {

std::map<std::string, Tensor> batch_to_tensors(const data::Batch& b) {
  return {
      {"index", Tensor::scalar(static_cast<float>(b.index))},
      {"seq_onehot", b.seq_onehot},
      {"msa_feat", b.msa_feat},
      {"template_feat", b.template_feat},
      {"target_pos", b.target_pos},
      {"residue_mask", b.residue_mask},
  };
}

data::Batch tensors_to_batch(std::map<std::string, Tensor> t) {
  data::Batch b;
  b.index = static_cast<int64_t>(t.at("index").at(0));
  b.seq_onehot = std::move(t.at("seq_onehot"));
  b.msa_feat = std::move(t.at("msa_feat"));
  b.template_feat = std::move(t.at("template_feat"));
  b.target_pos = std::move(t.at("target_pos"));
  b.residue_mask = std::move(t.at("residue_mask"));
  return b;
}

}  // namespace

EvalCache::EvalCache(const data::SyntheticProteinDataset& dataset,
                     std::vector<int64_t> indices, bool in_memory,
                     std::string disk_dir)
    : indices_(std::move(indices)),
      in_memory_(in_memory),
      disk_dir_(std::move(disk_dir)) {
  if (in_memory_) {
    memory_.reserve(indices_.size());
    for (int64_t idx : indices_) memory_.push_back(dataset.prepare_batch(idx));
  } else {
    std::filesystem::create_directories(disk_dir_);
    for (size_t i = 0; i < indices_.size(); ++i) {
      data::Batch b = dataset.prepare_batch(indices_[i]);
      save_tensors(disk_dir_ + "/eval_" + std::to_string(i) + ".bin",
                   batch_to_tensors(b));
    }
  }
}

data::Batch EvalCache::fetch(int64_t i) const {
  SF_CHECK(i >= 0 && i < size());
  if (in_memory_) {
    return memory_[i];  // tensors share buffers; cheap
  }
  return tensors_to_batch(
      load_tensors(disk_dir_ + "/eval_" + std::to_string(i) + ".bin"));
}

std::vector<data::Batch> EvalCache::fetch_all() const {
  std::vector<data::Batch> out;
  out.reserve(indices_.size());
  for (int64_t i = 0; i < size(); ++i) out.push_back(fetch(i));
  return out;
}

AsyncEvaluator::AsyncEvaluator(const model::ModelConfig& cfg,
                               std::shared_ptr<EvalCache> cache,
                               int64_t num_recycles)
    : replica_(cfg), cache_(std::move(cache)), num_recycles_(num_recycles) {
  SF_CHECK(cache_ != nullptr);
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncEvaluator::~AsyncEvaluator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void AsyncEvaluator::submit(int64_t step,
                            const std::vector<autograd::Var>& weights) {
  Job job;
  job.step = step;
  job.weights.reserve(weights.size());
  for (const auto& w : weights) job.weights.push_back(w.value().clone());
  {
    std::lock_guard<std::mutex> lock(mu_);
    SF_CHECK(!stop_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

std::vector<AsyncEvaluator::Report> AsyncEvaluator::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Report> out = std::move(done_);
  done_.clear();
  return out;
}

std::vector<AsyncEvaluator::Report> AsyncEvaluator::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return jobs_.empty() && in_progress_ == 0; });
  std::vector<Report> out = std::move(done_);
  done_.clear();
  return out;
}

int64_t AsyncEvaluator::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(jobs_.size()) + in_progress_;
}

void AsyncEvaluator::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++in_progress_;
    }
    // Install the snapshot into the replica (ParamStore iteration order is
    // deterministic: name-sorted).
    auto replica_params = replica_.params().all();
    SF_CHECK(replica_params.size() == job.weights.size())
        << "weight snapshot size mismatch";
    for (size_t i = 0; i < replica_params.size(); ++i) {
      replica_params[i].mutable_value().copy_from(job.weights[i]);
    }
    auto batches = cache_->fetch_all();
    EvalResult result = evaluate(replica_, batches, num_recycles_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_.push_back({job.step, result});
      --in_progress_;
    }
    cv_.notify_all();
  }
}

}  // namespace sf::train
