// Evaluation: synchronous, asynchronous (offloaded), and dataset caching.
//
// §3.4: as ScaleFold drove step time down, evaluation grew from 22% to 43%
// of total time. Two fixes are reproduced here:
//   1. Asynchronous evaluation — a dedicated evaluator (separate nodes in
//      the paper, a separate thread + model replica here) receives weight
//      snapshots and evaluates off the training critical path.
//   2. Evaluation dataset cache — eval batches prepared once and kept in
//      memory (CPU DRAM in the paper) instead of being re-read from disk
//      on every evaluation round.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "data/loader.h"
#include "model/alphafold.h"

namespace sf::train {

struct EvalResult {
  float avg_lddt = 0.0f;
  float avg_loss = 0.0f;
  float avg_fape = 0.0f;             ///< frame-aligned point error
  float avg_drmsd = 0.0f;            ///< distance-matrix RMSD
  float avg_contact_precision = 0.0f;
  int64_t num_samples = 0;
  double seconds = 0.0;
};

/// Synchronous evaluation of a model over prepared batches.
EvalResult evaluate(const model::MiniAlphaFold& net,
                    std::span<const data::Batch> batches,
                    int64_t num_recycles);

/// Evaluation-set holder with two modes:
///   memory — batches prepared once, served by reference (DRAM cache);
///   disk   — batches serialized to files at construction and
///            deserialized on every fetch (the uncached baseline).
class EvalCache {
 public:
  EvalCache(const data::SyntheticProteinDataset& dataset,
            std::vector<int64_t> indices, bool in_memory,
            std::string disk_dir = "/tmp/scalefold_evalcache");

  int64_t size() const { return static_cast<int64_t>(indices_.size()); }
  bool in_memory() const { return in_memory_; }

  /// Fetch batch i (copy in disk mode, reference-clone in memory mode).
  data::Batch fetch(int64_t i) const;

  /// Convenience: fetch everything (used by evaluate()).
  std::vector<data::Batch> fetch_all() const;

 private:
  std::vector<int64_t> indices_;
  bool in_memory_;
  std::string disk_dir_;
  std::vector<data::Batch> memory_;  ///< populated in memory mode
};

/// Offloaded evaluator: owns a model replica on its own thread. submit()
/// copies the current weights and returns immediately; results are
/// collected with drain()/wait_all(). Mirrors the paper's dedicated
/// evaluation nodes (2080 = 2048 train + 32 eval GPUs).
class AsyncEvaluator {
 public:
  AsyncEvaluator(const model::ModelConfig& cfg, std::shared_ptr<EvalCache> cache,
                 int64_t num_recycles);
  ~AsyncEvaluator();

  struct Report {
    int64_t step = 0;
    EvalResult result;
  };

  /// Snapshot `weights` (order must match the replica's ParamStore order)
  /// and queue an evaluation tagged with `step`.
  void submit(int64_t step, const std::vector<autograd::Var>& weights);

  /// Non-blocking: returns all finished reports.
  std::vector<Report> drain();

  /// Block until every submitted job is finished, then drain.
  std::vector<Report> wait_all();

  int64_t pending() const;

 private:
  struct Job {
    int64_t step;
    std::vector<Tensor> weights;
  };
  void worker_loop();

  model::MiniAlphaFold replica_;
  std::shared_ptr<EvalCache> cache_;
  int64_t num_recycles_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  std::vector<Report> done_;
  int64_t in_progress_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace sf::train
