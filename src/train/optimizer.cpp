#include "train/optimizer.h"

#include "common/error.h"

namespace sf::train {

Optimizer::Optimizer(std::vector<autograd::Var> params, OptimizerConfig config)
    : params_(std::move(params)), config_(config) {
  SF_CHECK(!params_.empty());
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  swa_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p.shape()));
    v_.push_back(Tensor::zeros(p.shape()));
    swa_.push_back(p.value().clone());  // SWA starts at the initial weights
  }
}

std::vector<kernels::ParamChunk> Optimizer::build_chunks() {
  std::vector<kernels::ParamChunk> chunks;
  chunks.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    auto node = params_[i].node();
    if (!node->grad.defined()) node->grad = Tensor::zeros(node->value.shape());
    kernels::ParamChunk c;
    c.param = node->value.data();
    c.grad = node->grad.data();
    c.exp_avg = m_[i].data();
    c.exp_avg_sq = v_[i].data();
    c.swa = config_.use_swa ? swa_[i].data() : nullptr;
    c.n = node->value.numel();
    chunks.push_back(c);
  }
  return chunks;
}

void Optimizer::step(float lr_scale) {
  auto chunks = build_chunks();

  // Global gradient norm: bucketed (no copies) or concat (naive).
  float norm;
  if (config_.bucketed_grad_norm) {
    std::vector<const float*> buckets;
    std::vector<int64_t> sizes;
    buckets.reserve(chunks.size());
    sizes.reserve(chunks.size());
    for (const auto& c : chunks) {
      buckets.push_back(c.grad);
      sizes.push_back(c.n);
    }
    norm = kernels::grad_norm_bucketed(buckets, sizes);
  } else {
    norm = kernels::grad_norm_concat(chunks);
  }
  apply_update(chunks, norm, lr_scale);
}

void Optimizer::step_with_norm(float precomputed_norm, float lr_scale) {
  auto chunks = build_chunks();
  apply_update(chunks, precomputed_norm, lr_scale);
}

void Optimizer::apply_update(std::vector<kernels::ParamChunk>& chunks,
                             float norm, float lr_scale) {
  SF_CHECK(!swa_swapped_) << "step() while SWA weights are swapped in";
  ++step_;
  last_grad_norm_ = norm;
  const float scale = kernels::clip_scale(norm, config_.clip_norm);

  kernels::AdamHyper hyper = config_.adam;
  hyper.lr *= lr_scale;

  if (config_.fused) {
    // One multi-tensor kernel: clip + Adam + SWA in a single sweep.
    kernels::fused_adam_swa_step(chunks, hyper, step_, config_.swa_decay,
                                 scale);
  } else {
    // Eager path: per-tensor clip kernels, per-tensor Adam passes,
    // per-tensor SWA passes.
    if (scale != 1.0f) {
      kernels::grad_scale_per_tensor(chunks, scale);
    }
    for (auto& c : chunks) {
      kernels::adam_step_unfused(c, hyper, step_);
      if (c.swa) {
        kernels::swa_update_unfused(c.swa, c.param, c.n, config_.swa_decay);
      }
    }
  }
}

float Optimizer::grad_norm() {
  auto chunks = build_chunks();
  std::vector<const float*> buckets;
  std::vector<int64_t> sizes;
  buckets.reserve(chunks.size());
  sizes.reserve(chunks.size());
  for (const auto& c : chunks) {
    buckets.push_back(c.grad);
    sizes.push_back(c.n);
  }
  return kernels::grad_norm_bucketed(buckets, sizes);
}

std::map<std::string, Tensor> Optimizer::export_state() const {
  SF_CHECK(!swa_swapped_) << "export_state() while SWA weights are swapped in";
  std::map<std::string, Tensor> state;
  for (size_t i = 0; i < params_.size(); ++i) {
    const std::string suffix = std::to_string(i);
    // Clone: the exported map must be a snapshot, not an alias of the
    // live state (Tensor copies share the buffer).
    state.emplace("m." + suffix, m_[i].clone());
    state.emplace("v." + suffix, v_[i].clone());
    state.emplace("swa." + suffix, swa_[i].clone());
  }
  Tensor step({1});
  step.data()[0] = static_cast<float>(step_);
  state.emplace("step", std::move(step));
  return state;
}

void Optimizer::import_state(const std::map<std::string, Tensor>& state) {
  SF_CHECK(!swa_swapped_) << "import_state() while SWA weights are swapped in";
  auto fetch = [&](const std::string& key) -> const Tensor& {
    auto it = state.find(key);
    SF_CHECK(it != state.end()) << "optimizer state missing" << key;
    return it->second;
  };
  // Validate shapes before the first write: a bad state map must not
  // leave the optimizer half-restored.
  for (size_t i = 0; i < params_.size(); ++i) {
    const std::string suffix = std::to_string(i);
    for (const char* prefix : {"m.", "v.", "swa."}) {
      SF_CHECK(fetch(prefix + suffix).shape() == params_[i].shape())
          << "optimizer state shape mismatch for" << prefix + suffix;
    }
  }
  SF_CHECK(fetch("step").numel() == 1);
  for (size_t i = 0; i < params_.size(); ++i) {
    const std::string suffix = std::to_string(i);
    m_[i].copy_from(fetch("m." + suffix));
    v_[i].copy_from(fetch("v." + suffix));
    swa_[i].copy_from(fetch("swa." + suffix));
  }
  step_ = static_cast<int64_t>(fetch("step").data()[0]);
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

void Optimizer::swap_in_swa() {
  SF_CHECK(config_.use_swa) << "SWA disabled";
  SF_CHECK(!swa_swapped_);
  saved_live_.clear();
  saved_live_.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    saved_live_.push_back(params_[i].value().clone());
    params_[i].mutable_value().copy_from(swa_[i]);
  }
  swa_swapped_ = true;
}

void Optimizer::restore_live() {
  SF_CHECK(swa_swapped_);
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i].mutable_value().copy_from(saved_live_[i]);
  }
  saved_live_.clear();
  swa_swapped_ = false;
}

}  // namespace sf::train
