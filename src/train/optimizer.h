// Training optimizer: Adam + SWA + gradient clipping over a ParamStore.
//
// Two execution paths, matching the paper's §3.3.1 "Adam and SWA
// Optimization" and "Gradient Clipping Optimization":
//   unfused — per-tensor eager kernels: separate Adam passes with
//             materialized temporaries, separate SWA passes, and a
//             concat-based global grad norm (one copy per tensor).
//   fused   — one multi-tensor kernel applying clip-scale + Adam + SWA per
//             element in registers over the pointer-packed chunk list, and
//             a bucket-based grad norm with no copies.
// Both produce bit-identical parameter trajectories up to float summation
// order; tests assert numerical equivalence.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "autograd/var.h"
#include "kernels/optimizer_kernels.h"

namespace sf::train {

struct OptimizerConfig {
  kernels::AdamHyper adam;
  bool fused = true;
  bool use_swa = true;
  float swa_decay = 0.999f;
  /// Global L2 grad-norm threshold; <= 0 disables clipping (AF2 uses 0.1
  /// per-sample; we default to 1.0 at toy scale).
  float clip_norm = 1.0f;
  bool bucketed_grad_norm = true;
};

class Optimizer {
 public:
  Optimizer(std::vector<autograd::Var> params, OptimizerConfig config);

  /// Apply one update from the gradients currently stored on the params.
  /// `lr_scale` multiplies the base LR (for warmup/decay schedules).
  void step(float lr_scale = 1.0f);

  /// step(), but with the global grad norm supplied by the caller instead
  /// of computed here — the §3.3.1 gradient-clip overlap: the overlapped
  /// DP path accumulates per-bucket squared-norm partials while
  /// reductions complete, so by optimizer time the norm is already known.
  /// The caller's norm must equal what step() would compute (the trainers
  /// build it from the same kernels::grad_sq_sum_partials per-tensor
  /// partials summed in parameter order) to keep the paths bit-identical.
  void step_with_norm(float precomputed_norm, float lr_scale = 1.0f);

  void zero_grad();

  int64_t step_count() const { return step_; }
  float last_grad_norm() const { return last_grad_norm_; }

  /// Global L2 norm of the gradients currently stored on the params,
  /// without applying an update. Non-finite iff any gradient is (used by
  /// the trainer's NaN/Inf step guard).
  float grad_norm();

  /// Full optimizer state (Adam moments, SWA weights, step count) as
  /// named tensors for checkpointing. Keys are positional ("m.<i>"),
  /// following the construction order of `params`.
  std::map<std::string, Tensor> export_state() const;

  /// Restore state produced by export_state(). Tensor count and shapes
  /// must match this optimizer's params; training then resumes
  /// bit-identically from the exported step.
  void import_state(const std::map<std::string, Tensor>& state);

  /// Copy SWA (averaged) weights into the live parameters, saving the
  /// current ones; restore_live() undoes it. Used around evaluation.
  void swap_in_swa();
  void restore_live();

  const OptimizerConfig& config() const { return config_; }
  const std::vector<autograd::Var>& params() const { return params_; }
  const std::vector<Tensor>& swa_state() const { return swa_; }

 private:
  /// Ensure every param has an allocated gradient (zeros when untouched)
  /// and return the packed chunk list.
  std::vector<kernels::ParamChunk> build_chunks();

  /// Shared tail of step()/step_with_norm(): clip-scale + Adam + SWA.
  void apply_update(std::vector<kernels::ParamChunk>& chunks, float norm,
                    float lr_scale);

  std::vector<autograd::Var> params_;
  OptimizerConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::vector<Tensor> swa_;
  std::vector<Tensor> saved_live_;  ///< while SWA weights are swapped in
  bool swa_swapped_ = false;
  int64_t step_ = 0;
  float last_grad_norm_ = 0.0f;
};

}  // namespace sf::train
