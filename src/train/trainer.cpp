#include "train/trainer.h"

#include <cmath>
#include <cstring>
#include <map>

#include "common/error.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/checkpoint.h"

namespace sf::train {
namespace {

/// Keys holding optimizer state inside a combined trainer checkpoint;
/// model parameter names never collide with this prefix.
constexpr const char* kOptPrefix = "__opt__/";

}  // namespace

Trainer::Trainer(model::MiniAlphaFold& net, TrainConfig config)
    : net_(net),
      config_(config),
      opt_([&] {
        OptimizerConfig oc = config.opt;
        oc.adam.lr = config.base_lr;
        return Optimizer(net.params().all(), oc);
      }()),
      rng_(config.seed) {
  SF_CHECK(config_.min_recycles >= 1);
  SF_CHECK(config_.max_recycles >= config_.min_recycles);
  if (config_.num_threads > 0) sf::set_num_threads(config_.num_threads);
}

float Trainer::current_lr_scale() const {
  const int64_t s = opt_.step_count() + 1;
  float scale = 1.0f;
  if (config_.warmup_steps > 0 && s < config_.warmup_steps) {
    scale = static_cast<float>(s) / static_cast<float>(config_.warmup_steps);
  } else if (config_.total_steps > 0) {
    float progress =
        static_cast<float>(s - config_.warmup_steps) /
        static_cast<float>(std::max<int64_t>(1, config_.total_steps -
                                                    config_.warmup_steps));
    progress = std::min(1.0f, std::max(0.0f, progress));
    float cosine = 0.5f * (1.0f + std::cos(3.14159265f * progress));
    scale = config_.final_lr_frac + (1.0f - config_.final_lr_frac) * cosine;
  }
  return scale;
}

StepResult Trainer::train_step(const data::Batch& batch) {
  return train_step_accumulated({&batch, 1});
}

StepResult Trainer::train_step_accumulated(
    std::span<const data::Batch> batches) {
  SF_CHECK(!batches.empty());
  SF_TRACE_SPAN_ID("train", "step", opt_.step_count());
  Timer timer;
  StepResult result;
  // AlphaFold samples the recycling depth once per step.
  result.recycles =
      config_.min_recycles +
      static_cast<int64_t>(rng_.uniform_int(
          static_cast<uint64_t>(config_.max_recycles - config_.min_recycles + 1)));

  opt_.zero_grad();
  double loss_acc = 0.0, lddt_acc = 0.0;
  const float inv_b = 1.0f / static_cast<float>(batches.size());
  for (const auto& batch : batches) {
    model::ModelOutput out = [&] {
      SF_TRACE_SPAN_ID("train", "forward", batch.index);
      return net_.forward(batch, result.recycles, /*compute_loss=*/true);
    }();
    // Scale so accumulated grads average over the local batch.
    autograd::Var scaled = autograd::scale(out.loss, inv_b);
    {
      SF_TRACE_SPAN_ID("train", "backward", batch.index);
      autograd::backward(scaled);
    }
    loss_acc += out.loss.value().at(0);
    lddt_acc += out.lddt;
  }

  result.loss = static_cast<float>(loss_acc / batches.size());
  result.lddt = static_cast<float>(lddt_acc / batches.size());

  if (config_.skip_nonfinite_steps) {
    // NaN/Inf guard: a poisoned loss or gradient must not reach the
    // weights — Adam moments would stay contaminated for the rest of the
    // run. Skip the update, report it, keep going.
    const float norm = opt_.grad_norm();
    if (!std::isfinite(loss_acc) || !std::isfinite(norm)) {
      opt_.zero_grad();
      ++skipped_steps_;
      obs::Registry::global().counter("train.skipped_steps").add();
      obs::emit_instant("train", "skipped_step", 0, opt_.step_count());
      result.skipped = true;
      result.grad_norm = norm;
      result.seconds = timer.elapsed();
      SF_LOG(kWarn) << "skipping non-finite step (loss " << result.loss
                    << ", grad norm " << norm << ")";
      return result;
    }
  }

  {
    SF_TRACE_SPAN("train", "optimizer");
    opt_.step(current_lr_scale());
  }
  result.grad_norm = opt_.last_grad_norm();
  result.seconds = timer.elapsed();
  obs::Registry::global()
      .histogram("train.step_seconds", 1e-4, 1e3, 24)
      .observe(result.seconds);
  return result;
}

std::string Trainer::checkpoint_to(const std::string& dir, int keep_last) {
  SF_TRACE_SPAN_ID("train", "checkpoint.save", opt_.step_count());
  std::map<std::string, Tensor> tensors;
  for (const auto& [name, v] : net_.params().named()) {
    tensors.emplace(name, v.value());
  }
  for (auto& [key, t] : opt_.export_state()) {
    tensors.emplace(kOptPrefix + key, std::move(t));
  }
  return CheckpointManager(dir, keep_last).save(opt_.step_count(), tensors);
}

int64_t Trainer::resume_from(const std::string& dir) {
  SF_TRACE_SPAN("train", "checkpoint.load");
  std::map<std::string, Tensor> tensors;
  const int64_t step = CheckpointManager(dir).load_latest(tensors);
  if (step < 0) return -1;

  std::map<std::string, Tensor> opt_state;
  for (auto it = tensors.begin(); it != tensors.end();) {
    if (it->first.rfind(kOptPrefix, 0) == 0) {
      opt_state.emplace(it->first.substr(std::strlen(kOptPrefix)),
                        std::move(it->second));
      it = tensors.erase(it);
    } else {
      ++it;
    }
  }

  // Validate the parameter plan before any write so a mismatched
  // checkpoint leaves model and optimizer untouched (import_state applies
  // the same validate-then-write discipline to the optimizer half).
  const auto& named = net_.params().named();
  for (const auto& [name, v] : named) {
    auto it = tensors.find(name);
    SF_CHECK(it != tensors.end()) << "checkpoint missing parameter" << name;
    SF_CHECK(it->second.shape() == v.shape())
        << "checkpoint shape mismatch for" << name;
  }
  opt_.import_state(opt_state);
  for (const auto& [name, v] : named) {
    const_cast<autograd::Var&>(v).mutable_value().copy_from(tensors.at(name));
  }
  SF_LOG(kInfo) << "resumed from step " << step << " in " << dir;
  return step;
}

}  // namespace sf::train
