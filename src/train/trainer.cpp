#include "train/trainer.h"

#include <cmath>

#include "common/error.h"
#include "common/timer.h"

namespace sf::train {

Trainer::Trainer(model::MiniAlphaFold& net, TrainConfig config)
    : net_(net),
      config_(config),
      opt_([&] {
        OptimizerConfig oc = config.opt;
        oc.adam.lr = config.base_lr;
        return Optimizer(net.params().all(), oc);
      }()),
      rng_(config.seed) {
  SF_CHECK(config_.min_recycles >= 1);
  SF_CHECK(config_.max_recycles >= config_.min_recycles);
}

float Trainer::current_lr_scale() const {
  const int64_t s = opt_.step_count() + 1;
  float scale = 1.0f;
  if (config_.warmup_steps > 0 && s < config_.warmup_steps) {
    scale = static_cast<float>(s) / static_cast<float>(config_.warmup_steps);
  } else if (config_.total_steps > 0) {
    float progress =
        static_cast<float>(s - config_.warmup_steps) /
        static_cast<float>(std::max<int64_t>(1, config_.total_steps -
                                                    config_.warmup_steps));
    progress = std::min(1.0f, std::max(0.0f, progress));
    float cosine = 0.5f * (1.0f + std::cos(3.14159265f * progress));
    scale = config_.final_lr_frac + (1.0f - config_.final_lr_frac) * cosine;
  }
  return scale;
}

StepResult Trainer::train_step(const data::Batch& batch) {
  return train_step_accumulated({&batch, 1});
}

StepResult Trainer::train_step_accumulated(
    std::span<const data::Batch> batches) {
  SF_CHECK(!batches.empty());
  Timer timer;
  StepResult result;
  // AlphaFold samples the recycling depth once per step.
  result.recycles =
      config_.min_recycles +
      static_cast<int64_t>(rng_.uniform_int(
          static_cast<uint64_t>(config_.max_recycles - config_.min_recycles + 1)));

  opt_.zero_grad();
  double loss_acc = 0.0, lddt_acc = 0.0;
  const float inv_b = 1.0f / static_cast<float>(batches.size());
  for (const auto& batch : batches) {
    auto out = net_.forward(batch, result.recycles, /*compute_loss=*/true);
    // Scale so accumulated grads average over the local batch.
    autograd::Var scaled = autograd::scale(out.loss, inv_b);
    autograd::backward(scaled);
    loss_acc += out.loss.value().at(0);
    lddt_acc += out.lddt;
  }
  opt_.step(current_lr_scale());

  result.loss = static_cast<float>(loss_acc / batches.size());
  result.lddt = static_cast<float>(lddt_acc / batches.size());
  result.grad_norm = opt_.last_grad_norm();
  result.seconds = timer.elapsed();
  return result;
}

}  // namespace sf::train
