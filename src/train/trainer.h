// Training loop for the mini-AlphaFold.
//
// Implements the AlphaFold training step semantics the paper describes:
// recycling count sampled uniformly per step (1..max), gradient clipping,
// Adam + SWA update, LR warmup, optional bf16 activations, and periodic
// (sync or async) evaluation gated on avg lDDT-Ca.
#pragma once

#include <functional>
#include <vector>

#include "data/protein_sample.h"
#include "model/alphafold.h"
#include "train/optimizer.h"

namespace sf::train {

struct TrainConfig {
  OptimizerConfig opt;
  float base_lr = 2e-3f;
  int64_t warmup_steps = 50;
  /// After warmup, cosine decay to `final_lr_frac * base_lr` at
  /// `total_steps` (<= 0 disables decay).
  int64_t total_steps = 0;
  float final_lr_frac = 0.1f;
  int64_t min_recycles = 1;
  int64_t max_recycles = 2;
  uint64_t seed = 1234;
};

struct StepResult {
  float loss = 0.0f;
  float lddt = 0.0f;
  float grad_norm = 0.0f;
  int64_t recycles = 0;
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(model::MiniAlphaFold& net, TrainConfig config);

  /// One optimization step on one batch (the paper's local batch is one
  /// crop per GPU; gradient accumulation emulates larger local batches).
  StepResult train_step(const data::Batch& batch);

  /// Accumulate gradients over `batches` then apply a single update —
  /// a data-parallel global batch on one worker.
  StepResult train_step_accumulated(std::span<const data::Batch> batches);

  Optimizer& optimizer() { return opt_; }
  int64_t step() const { return opt_.step_count(); }
  float current_lr_scale() const;

 private:
  model::MiniAlphaFold& net_;
  TrainConfig config_;
  Optimizer opt_;
  Rng rng_;
};

}  // namespace sf::train
