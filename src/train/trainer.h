// Training loop for the mini-AlphaFold.
//
// Implements the AlphaFold training step semantics the paper describes:
// recycling count sampled uniformly per step (1..max), gradient clipping,
// Adam + SWA update, LR warmup, optional bf16 activations, and periodic
// (sync or async) evaluation gated on avg lDDT-Ca.
//
// Fault tolerance: a non-finite loss or gradient (a statistical certainty
// somewhere in a multi-thousand-GPU time-to-train run) skips the update
// instead of poisoning the weights, and checkpoint_to()/resume_from()
// give a killed run a lossless restart path (params + full optimizer
// state, newest-valid checkpoint wins).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/protein_sample.h"
#include "model/alphafold.h"
#include "train/optimizer.h"

namespace sf::train {

struct TrainConfig {
  OptimizerConfig opt;
  float base_lr = 2e-3f;
  int64_t warmup_steps = 50;
  /// After warmup, cosine decay to `final_lr_frac * base_lr` at
  /// `total_steps` (<= 0 disables decay).
  int64_t total_steps = 0;
  float final_lr_frac = 0.1f;
  int64_t min_recycles = 1;
  int64_t max_recycles = 2;
  uint64_t seed = 1234;
  /// Skip the optimizer update (and count it) when the loss or the
  /// global gradient norm is NaN/Inf, instead of corrupting the weights.
  bool skip_nonfinite_steps = true;
  /// Intra-op kernel threads (GEMM/attention/LayerNorm/optimizer).
  /// 0 keeps the process-wide default (SF_NUM_THREADS env or hardware
  /// concurrency); > 0 pins it via sf::set_num_threads. Kernel outputs
  /// are bitwise-identical at any setting.
  int num_threads = 0;
  /// Data-parallel gradient communication (DataParallelTrainer only):
  /// true = bucketed async all-reduce launched by backward hooks, with
  /// the grad-clip norm accumulated per bucket as reductions complete
  /// (§3.3.1 gradient-clip overlap); false = blocking per-parameter
  /// all-reduce after backward (the reference path). Both produce
  /// bitwise-identical parameters.
  bool overlap_grad_comm = true;
  /// Target gradient-bucket capacity in bytes for the overlapped path.
  int64_t grad_bucket_bytes = 64 * 1024;
  /// Elastic world size (DataParallelTrainer only): a rank lost to an
  /// injected WorkerKill mid-step no longer fails the step with an
  /// exception — the survivors detect the loss in bounded time (comm
  /// abort), quiesce, rebuild the communicator at the smaller world size,
  /// and training continues without touching a checkpoint. The interrupted
  /// step's update is discarded all-or-nothing, so surviving replicas stay
  /// bit-identical. false = any kill propagates as an error (the
  /// pre-elastic behavior).
  bool elastic_world = false;
};

struct StepResult {
  float loss = 0.0f;
  float lddt = 0.0f;
  float grad_norm = 0.0f;
  int64_t recycles = 0;
  double seconds = 0.0;
  bool skipped = false;  ///< update skipped by the NaN/Inf guard
  /// Elastic data-parallel training only: ranks lost to a kill during
  /// this call, and whether the step's update had to be discarded (the
  /// caller re-runs the step at the new world size; check world_size()).
  int ranks_lost = 0;
  bool lost_to_fault = false;
};

class Trainer {
 public:
  Trainer(model::MiniAlphaFold& net, TrainConfig config);

  /// One optimization step on one batch (the paper's local batch is one
  /// crop per GPU; gradient accumulation emulates larger local batches).
  StepResult train_step(const data::Batch& batch);

  /// Accumulate gradients over `batches` then apply a single update —
  /// a data-parallel global batch on one worker.
  StepResult train_step_accumulated(std::span<const data::Batch> batches);

  Optimizer& optimizer() { return opt_; }
  int64_t step() const { return opt_.step_count(); }
  float current_lr_scale() const;

  /// Steps rejected by the NaN/Inf guard since construction.
  int64_t skipped_steps() const { return skipped_steps_; }

  /// Write a rotating, crash-consistent checkpoint (model params + full
  /// optimizer state) for the current step into `dir`. Returns the path.
  std::string checkpoint_to(const std::string& dir, int keep_last = 3);

  /// Restore params + optimizer state from the newest *valid* checkpoint
  /// in `dir` (corrupt or truncated files are skipped). Returns the step
  /// resumed from, or -1 when no valid checkpoint exists (model and
  /// optimizer are left untouched).
  int64_t resume_from(const std::string& dir);

 private:
  model::MiniAlphaFold& net_;
  TrainConfig config_;
  Optimizer opt_;
  Rng rng_;
  int64_t skipped_steps_ = 0;
};

}  // namespace sf::train
