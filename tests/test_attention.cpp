// Tests for MHA with pair bias: the flash-style fused kernel must agree
// with the naive materialized kernel in forward and backward, across
// shapes, tilings, bias/mask combinations (the §3.3.1 custom kernel).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "kernels/attention.h"

namespace sf::kernels {
namespace {

struct MhaData {
  AttentionDims dims;
  std::vector<float> q, k, v, bias, mask, dout;
};

MhaData make_data(int64_t b, int64_t h, int64_t sq, int64_t sk, int64_t d,
                  bool with_bias, bool with_mask, uint64_t seed) {
  Rng rng(seed);
  MhaData m;
  m.dims = {b, h, sq, sk, d};
  m.q.resize(b * h * sq * d);
  m.k.resize(b * h * sk * d);
  m.v.resize(b * h * sk * d);
  m.dout.resize(b * h * sq * d);
  fill_normal(rng, m.q.data(), m.q.size(), 0.0f, 1.0f);
  fill_normal(rng, m.k.data(), m.k.size(), 0.0f, 1.0f);
  fill_normal(rng, m.v.data(), m.v.size(), 0.0f, 1.0f);
  fill_normal(rng, m.dout.data(), m.dout.size(), 0.0f, 1.0f);
  if (with_bias) {
    m.bias.resize(h * sq * sk);
    fill_normal(rng, m.bias.data(), m.bias.size(), 0.0f, 0.5f);
  }
  if (with_mask) {
    m.mask.assign(b * sk, 0.0f);
    // Mask out the last key of every batch.
    for (int64_t bb = 0; bb < b; ++bb) m.mask[bb * sk + sk - 1] = -1e9f;
  }
  return m;
}

using MhaParam = std::tuple<int, int, int, int, int, bool, bool, int>;
// b, h, sq, sk, d, bias, mask, k_tile

class MhaSweep : public ::testing::TestWithParam<MhaParam> {};

TEST_P(MhaSweep, FlashForwardMatchesNaive) {
  auto [b, h, sq, sk, d, bias, mask, tile] = GetParam();
  MhaData m = make_data(b, h, sq, sk, d, bias, mask, 42);
  std::vector<float> out_naive(m.q.size()), out_flash(m.q.size());
  mha_forward_naive(m.dims, m.q.data(), m.k.data(), m.v.data(),
                    bias ? m.bias.data() : nullptr,
                    mask ? m.mask.data() : nullptr, out_naive.data(), nullptr);
  mha_forward_flash(m.dims, m.q.data(), m.k.data(), m.v.data(),
                    bias ? m.bias.data() : nullptr,
                    mask ? m.mask.data() : nullptr, out_flash.data(), nullptr,
                    tile);
  for (size_t i = 0; i < out_naive.size(); ++i) {
    EXPECT_NEAR(out_naive[i], out_flash[i], 2e-4f) << "elem " << i;
  }
}

TEST_P(MhaSweep, FlashBackwardMatchesNaive) {
  auto [b, h, sq, sk, d, bias, mask, tile] = GetParam();
  MhaData m = make_data(b, h, sq, sk, d, bias, mask, 99);
  const float* bias_p = bias ? m.bias.data() : nullptr;
  const float* mask_p = mask ? m.mask.data() : nullptr;

  std::vector<float> out_n(m.q.size()), out_f(m.q.size());
  AttentionContext ctx_n, ctx_f;
  mha_forward_naive(m.dims, m.q.data(), m.k.data(), m.v.data(), bias_p, mask_p,
                    out_n.data(), &ctx_n);
  mha_forward_flash(m.dims, m.q.data(), m.k.data(), m.v.data(), bias_p, mask_p,
                    out_f.data(), &ctx_f, tile);

  std::vector<float> dq_n(m.q.size()), dk_n(m.k.size()), dv_n(m.v.size());
  std::vector<float> dq_f(m.q.size()), dk_f(m.k.size()), dv_f(m.v.size());
  std::vector<float> dbias_n(bias ? m.bias.size() : 0);
  std::vector<float> dbias_f(bias ? m.bias.size() : 0);
  mha_backward_naive(m.dims, m.q.data(), m.k.data(), m.v.data(), m.dout.data(),
                     ctx_n, dq_n.data(), dk_n.data(), dv_n.data(),
                     bias ? dbias_n.data() : nullptr);
  mha_backward_flash(m.dims, m.q.data(), m.k.data(), m.v.data(), bias_p,
                     mask_p, out_f.data(), m.dout.data(), ctx_f, dq_f.data(),
                     dk_f.data(), dv_f.data(), bias ? dbias_f.data() : nullptr,
                     tile);
  for (size_t i = 0; i < dq_n.size(); ++i) {
    EXPECT_NEAR(dq_n[i], dq_f[i], 5e-4f) << "dq " << i;
  }
  for (size_t i = 0; i < dk_n.size(); ++i) {
    EXPECT_NEAR(dk_n[i], dk_f[i], 5e-4f) << "dk " << i;
    EXPECT_NEAR(dv_n[i], dv_f[i], 5e-4f) << "dv " << i;
  }
  for (size_t i = 0; i < dbias_n.size(); ++i) {
    EXPECT_NEAR(dbias_n[i], dbias_f[i], 5e-4f) << "dbias " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MhaSweep,
    ::testing::Values(MhaParam{1, 1, 2, 2, 4, false, false, 64},
                      MhaParam{1, 2, 5, 7, 8, true, false, 3},
                      MhaParam{2, 2, 8, 8, 4, true, true, 4},
                      MhaParam{3, 1, 6, 9, 5, false, true, 2},
                      MhaParam{2, 4, 16, 16, 8, true, false, 8},
                      MhaParam{1, 2, 17, 33, 8, true, true, 16},
                      MhaParam{4, 2, 12, 12, 16, true, true, 5},
                      MhaParam{1, 1, 1, 1, 1, true, false, 64},
                      MhaParam{2, 3, 9, 4, 6, false, false, 64}));

TEST(Mha, UniformValuesAveraged) {
  // With q = 0, attention weights are uniform (plus bias 0): out = mean(v).
  AttentionDims d{1, 1, 1, 4, 2};
  std::vector<float> q(2, 0.0f), k(8, 0.0f), v{1, 10, 2, 20, 3, 30, 4, 40};
  std::vector<float> out(2);
  mha_forward_flash(d, q.data(), k.data(), v.data(), nullptr, nullptr,
                    out.data(), nullptr);
  EXPECT_NEAR(out[0], 2.5f, 1e-5f);
  EXPECT_NEAR(out[1], 25.0f, 1e-5f);
}

TEST(Mha, MaskRemovesKey) {
  AttentionDims d{1, 1, 1, 3, 1};
  std::vector<float> q{1.0f}, k{0, 0, 0}, v{5, 7, 1000};
  std::vector<float> mask{0, 0, -1e9f};
  std::vector<float> out(1);
  mha_forward_flash(d, q.data(), k.data(), v.data(), nullptr, mask.data(),
                    out.data(), nullptr);
  EXPECT_NEAR(out[0], 6.0f, 1e-3f);  // mean of 5 and 7 only
}

TEST(Mha, PairBiasShiftsAttention) {
  AttentionDims d{1, 1, 1, 2, 1};
  std::vector<float> q{0.0f}, k{0, 0}, v{1.0f, 3.0f};
  std::vector<float> bias{10.0f, 0.0f};  // strongly prefer key 0
  std::vector<float> out(1);
  mha_forward_flash(d, q.data(), k.data(), v.data(), bias.data(), nullptr,
                    out.data(), nullptr);
  EXPECT_NEAR(out[0], 1.0f, 1e-3f);
}

TEST(Mha, BiasBroadcastAcrossBatch) {
  // Same bias applied to every batch element: outputs of two identical
  // batches must match.
  AttentionDims d{2, 1, 2, 2, 2};
  Rng rng(3);
  std::vector<float> q1(4), k1(4), v1(4), bias(4);
  fill_normal(rng, q1.data(), 4, 0.0f, 1.0f);
  fill_normal(rng, k1.data(), 4, 0.0f, 1.0f);
  fill_normal(rng, v1.data(), 4, 0.0f, 1.0f);
  fill_normal(rng, bias.data(), 4, 0.0f, 1.0f);
  std::vector<float> q(8), k(8), v(8);
  std::copy(q1.begin(), q1.end(), q.begin());
  std::copy(q1.begin(), q1.end(), q.begin() + 4);
  std::copy(k1.begin(), k1.end(), k.begin());
  std::copy(k1.begin(), k1.end(), k.begin() + 4);
  std::copy(v1.begin(), v1.end(), v.begin());
  std::copy(v1.begin(), v1.end(), v.begin() + 4);
  std::vector<float> out(8);
  mha_forward_flash(d, q.data(), k.data(), v.data(), bias.data(), nullptr,
                    out.data(), nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(out[i], out[4 + i], 1e-6f);
}

TEST(Mha, TileSizeDoesNotChangeResult) {
  MhaData m = make_data(2, 2, 9, 11, 4, true, true, 7);
  std::vector<float> ref(m.q.size());
  mha_forward_flash(m.dims, m.q.data(), m.k.data(), m.v.data(), m.bias.data(),
                    m.mask.data(), ref.data(), nullptr, 11);
  for (int tile : {1, 2, 3, 5, 64}) {
    std::vector<float> out(m.q.size());
    mha_forward_flash(m.dims, m.q.data(), m.k.data(), m.v.data(),
                      m.bias.data(), m.mask.data(), out.data(), nullptr, tile);
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(ref[i], out[i], 1e-4f) << "tile " << tile;
    }
  }
}

TEST(Mha, LseSavedByFlashForward) {
  MhaData m = make_data(1, 1, 3, 4, 2, false, false, 1);
  AttentionContext ctx;
  std::vector<float> out(m.q.size());
  mha_forward_flash(m.dims, m.q.data(), m.k.data(), m.v.data(), nullptr,
                    nullptr, out.data(), &ctx, 2);
  ASSERT_EQ(ctx.lse.size(), 3u);
  for (float v : ctx.lse) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace sf::kernels
