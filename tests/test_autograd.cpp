// Gradient checks for every autograd op against central finite
// differences, plus tape-structure tests (diamonds, detach, zero_grad).
#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/rng.h"

namespace sf::autograd {
namespace {

Var leaf(Shape shape, uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  return Var(Tensor::randn(std::move(shape), rng, 0.0f, stddev),
             /*requires_grad=*/true);
}

// Reduce any tensor to a scalar with fixed random weights so gradients are
// non-trivial in every element.
Var to_scalar(const Var& x, uint64_t seed = 999) {
  Rng rng(seed);
  Tensor w = Tensor::randn(x.shape(), rng);
  return sum(mul(x, Var(w, false)));
}

void expect_gradcheck(
    const std::function<Var(const std::vector<Var>&)>& fn,
    std::vector<Var> leaves, float step = 1e-2f) {
  auto result = grad_check(fn, leaves, step);
  EXPECT_TRUE(result.ok) << result.detail
                         << " max_abs=" << result.max_abs_err
                         << " max_rel=" << result.max_rel_err;
}

TEST(Autograd, AddGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) { return to_scalar(add(v[0], v[1])); },
      {leaf({3, 4}, 1), leaf({3, 4}, 2)});
}

TEST(Autograd, SubGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) { return to_scalar(sub(v[0], v[1])); },
      {leaf({2, 5}, 3), leaf({2, 5}, 4)});
}

TEST(Autograd, MulGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) { return to_scalar(mul(v[0], v[1])); },
      {leaf({6}, 5), leaf({6}, 6)});
}

TEST(Autograd, ScaleAndAddScalarGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(add_scalar(scale(v[0], 2.5f), -1.0f));
      },
      {leaf({7}, 7)});
}

TEST(Autograd, MatmulGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) { return to_scalar(matmul(v[0], v[1])); },
      {leaf({3, 4}, 8, 0.5f), leaf({4, 2}, 9, 0.5f)});
}

TEST(Autograd, LinearGradWithBias) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(linear(v[0], v[1], &v[2]));
      },
      {leaf({5, 3}, 10, 0.5f), leaf({3, 4}, 11, 0.5f), leaf({4}, 12)});
}

TEST(Autograd, LinearGradHighRankInput) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(linear(v[0], v[1]));
      },
      {leaf({2, 3, 4}, 13, 0.5f), leaf({4, 3}, 14, 0.5f)});
}

TEST(Autograd, AddRowwiseGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(add_rowwise(v[0], v[1]));
      },
      {leaf({4, 3}, 15), leaf({3}, 16)});
}

TEST(Autograd, MulBcastMaskGrad) {
  Tensor mask({4}, {1, 0, 1, 1});
  expect_gradcheck(
      [mask](const std::vector<Var>& v) {
        return to_scalar(mul_bcast_mask(v[0], mask));
      },
      {leaf({4, 3}, 17)});
}

TEST(Autograd, ReluGrad) {
  // Keep values away from the kink.
  Rng rng(18);
  Tensor t = Tensor::randn({20}, rng);
  for (int64_t i = 0; i < 20; ++i) {
    if (std::fabs(t.at(i)) < 0.1f) t.at(i) = 0.5f;
  }
  expect_gradcheck(
      [](const std::vector<Var>& v) { return to_scalar(relu(v[0])); },
      {Var(t, true)});
}

TEST(Autograd, GeluGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) { return to_scalar(gelu(v[0])); },
      {leaf({12}, 19)});
}

TEST(Autograd, SigmoidGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) { return to_scalar(sigmoid(v[0])); },
      {leaf({12}, 20)});
}

TEST(Autograd, GluGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) { return to_scalar(glu(v[0], v[1])); },
      {leaf({8}, 21), leaf({8}, 22)});
}

TEST(Autograd, ReshapeGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(reshape(v[0], {6, 2}));
      },
      {leaf({3, 4}, 23)});
}

TEST(Autograd, SumMeanGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) { return sum(v[0]); }, {leaf({5}, 24)});
  expect_gradcheck(
      [](const std::vector<Var>& v) { return mean(v[0]); }, {leaf({5}, 25)});
}

TEST(Autograd, WeightedMseGrad) {
  Rng rng(26);
  Tensor target = Tensor::randn({6}, rng);
  Tensor weight = Tensor::rand({6}, rng, 0.1f, 2.0f);
  expect_gradcheck(
      [target, weight](const std::vector<Var>& v) {
        return weighted_mse(v[0], target, &weight);
      },
      {leaf({6}, 27)});
}

TEST(Autograd, SoftmaxGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(softmax_lastdim(v[0]));
      },
      {leaf({3, 5}, 28)}, 1e-2f);
}

TEST(Autograd, LayerNormGradFused) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(layernorm(v[0], v[1], v[2], 1e-5f, true));
      },
      {leaf({4, 6}, 29), leaf({6}, 30, 0.3f), leaf({6}, 31, 0.3f)});
}

TEST(Autograd, LayerNormGradNaive) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(layernorm(v[0], v[1], v[2], 1e-5f, false));
      },
      {leaf({3, 5}, 32), leaf({5}, 33, 0.3f), leaf({5}, 34, 0.3f)});
}

TEST(Autograd, MhaGradFlashWithBiasAndMask) {
  Tensor mask({2, 3});
  mask.at(2) = -1e9f;  // mask one key of batch 0
  expect_gradcheck(
      [mask](const std::vector<Var>& v) {
        return to_scalar(mha(v[0], v[1], v[2], &v[3], &mask, true));
      },
      {leaf({2, 1, 2, 3}, 35, 0.5f), leaf({2, 1, 3, 3}, 36, 0.5f),
       leaf({2, 1, 3, 3}, 37, 0.5f), leaf({1, 2, 3}, 38, 0.5f)});
}

TEST(Autograd, MhaGradNaive) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(mha(v[0], v[1], v[2], &v[3], nullptr, false));
      },
      {leaf({1, 2, 3, 2}, 39, 0.5f), leaf({1, 2, 4, 2}, 40, 0.5f),
       leaf({1, 2, 4, 2}, 41, 0.5f), leaf({2, 3, 4}, 42, 0.5f)});
}

TEST(Autograd, SplitMergeHeadsGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        Var heads = split_heads(v[0], 2, 3, 2, 2);
        return to_scalar(merge_heads(heads));
      },
      {leaf({6, 4}, 43)});
}

TEST(Autograd, SplitMergeHeadsRoundtripIdentity) {
  Var x = leaf({6, 4}, 44);
  Var round = merge_heads(split_heads(x, 2, 3, 2, 2));
  EXPECT_EQ(x.value().max_abs_diff(round.value()), 0.0f);
}

TEST(Autograd, Permute3Grad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(permute3(v[0], {2, 0, 1}));
      },
      {leaf({2, 3, 4}, 45)});
}

TEST(Autograd, Permute3RoundtripIdentity) {
  Var x = leaf({2, 3, 4}, 46);
  // {1,0,2} is an involution.
  Var round = permute3(permute3(x, {1, 0, 2}), {1, 0, 2});
  EXPECT_EQ(x.value().max_abs_diff(round.value()), 0.0f);
}

TEST(Autograd, TakeLeadingGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(take_leading(v[0], 2));
      },
      {leaf({4, 3}, 47)});
}

TEST(Autograd, AddBcast0Grad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(add_bcast0(v[0], v[1]));
      },
      {leaf({3, 2, 2}, 48), leaf({2, 2}, 49)});
}

TEST(Autograd, OuterSumGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(outer_sum(v[0], v[1]));
      },
      {leaf({3, 2}, 50), leaf({3, 2}, 51)});
}

TEST(Autograd, OuterProductMeanGrad) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(outer_product_mean(v[0], v[1]));
      },
      {leaf({2, 3, 2}, 52, 0.5f), leaf({2, 3, 2}, 53, 0.5f)});
}

TEST(Autograd, TriangleMultiplyGradOutgoing) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(triangle_multiply(v[0], v[1], true));
      },
      {leaf({3, 3, 2}, 54, 0.5f), leaf({3, 3, 2}, 55, 0.5f)});
}

TEST(Autograd, TriangleMultiplyGradIncoming) {
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(triangle_multiply(v[0], v[1], false));
      },
      {leaf({3, 3, 2}, 56, 0.5f), leaf({3, 3, 2}, 57, 0.5f)});
}

TEST(Autograd, PairwiseDistGrad) {
  // Spread points out so distances are differentiable.
  Rng rng(58);
  Tensor pos = Tensor::randn({4, 3}, rng, 0.0f, 3.0f);
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return to_scalar(pairwise_dist(v[0]));
      },
      {Var(pos, true)});
}

TEST(Autograd, Bf16PassthroughGradIsIdentity) {
  Var x = leaf({5}, 59);
  Var y = bf16_round_st(x);
  backward(sum(y));
  Tensor g = x.grad();
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(g.at(i), 1.0f);
}

TEST(Autograd, DiamondGraphAccumulatesBothPaths) {
  Var x = Var(Tensor({1}, {3.0f}), true);
  Var a = scale(x, 2.0f);
  Var b = scale(x, 5.0f);
  Var y = add(a, b);  // y = 7x
  backward(sum(y));
  EXPECT_NEAR(x.grad().at(0), 7.0f, 1e-6f);
}

TEST(Autograd, ReusedNodeGradCountsMultiplicity) {
  Var x = Var(Tensor({1}, {2.0f}), true);
  Var y = mul(x, x);  // y = x^2, dy/dx = 2x = 4
  backward(sum(y));
  EXPECT_NEAR(x.grad().at(0), 4.0f, 1e-6f);
}

TEST(Autograd, StopGradientBlocksFlow) {
  Var x = Var(Tensor({1}, {3.0f}), true);
  Var y = mul(stop_gradient(scale(x, 2.0f)), x);  // treat 2x as constant 6
  backward(sum(y));
  EXPECT_NEAR(x.grad().at(0), 6.0f, 1e-6f);
}

TEST(Autograd, ZeroGradClears) {
  Var x = Var(Tensor({1}, {1.0f}), true);
  backward(sum(scale(x, 3.0f)));
  EXPECT_NE(x.grad().at(0), 0.0f);
  x.zero_grad();
  EXPECT_EQ(x.grad().at(0), 0.0f);
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  Var x = Var(Tensor({2}, {1.0f, 2.0f}), true);
  EXPECT_THROW(backward(x), Error);
}

TEST(Autograd, NoGradLeavesUntouched) {
  Var x = Var(Tensor({2}, {1.0f, 2.0f}), false);
  Var y = Var(Tensor({2}, {3.0f, 4.0f}), true);
  Var z = mul(x, y);
  backward(sum(z));
  EXPECT_EQ(x.grad().max_abs(), 0.0f);
  EXPECT_GT(y.grad().max_abs(), 0.0f);
}

TEST(Autograd, GradAccumulatesAcrossBackwards) {
  // Two separate graphs from the same leaf accumulate (PyTorch semantics).
  Var x = Var(Tensor({1}, {1.0f}), true);
  backward(sum(scale(x, 2.0f)));
  backward(sum(scale(x, 3.0f)));
  EXPECT_NEAR(x.grad().at(0), 5.0f, 1e-6f);
}


TEST(Autograd, DropoutStatisticsAndScaling) {
  Rng rng(61);
  Var x(Tensor::ones({4000}), true);
  Var y = dropout(x, 0.25f, rng);
  int64_t zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    float v = y.value().at(i);
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 1.0f / 0.75f) < 1e-6f);
    zeros += v == 0.0f;
    sum += v;
  }
  EXPECT_NEAR(zeros / 4000.0, 0.25, 0.03);          // drop rate
  EXPECT_NEAR(sum / 4000.0, 1.0, 0.05);             // mean preserved
}

TEST(Autograd, DropoutZeroRateIsIdentity) {
  Rng rng(62);
  Var x = leaf({16}, 63);
  Var y = dropout(x, 0.0f, rng);
  EXPECT_EQ(x.value().max_abs_diff(y.value()), 0.0f);
}

TEST(Autograd, DropoutBackwardGatesGradient) {
  Rng rng(64);
  Var x(Tensor::ones({64}), true);
  Var y = dropout(x, 0.5f, rng);
  backward(sum(y));
  for (int64_t i = 0; i < 64; ++i) {
    float g = x.grad().at(i);
    float v = y.value().at(i);
    if (v == 0.0f) {
      EXPECT_EQ(g, 0.0f);
    } else {
      EXPECT_NEAR(g, 2.0f, 1e-6f);  // 1/(1-p)
    }
  }
}

TEST(Autograd, DropoutRowsSharesMaskPerRow) {
  Rng rng(65);
  Var x(Tensor::ones({20, 8}), true);
  Var y = dropout_rows(x, 0.4f, rng);
  for (int64_t r = 0; r < 20; ++r) {
    float first = y.value().at(r * 8);
    for (int64_t c = 1; c < 8; ++c) {
      EXPECT_EQ(y.value().at(r * 8 + c), first) << "row " << r;
    }
  }
}

}  // namespace
}  // namespace sf::autograd
