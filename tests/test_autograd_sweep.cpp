// Parameterized gradient-check sweeps: every core op family re-verified
// across randomized shapes and seeds (property-style coverage beyond the
// hand-picked cases in test_autograd.cpp).
#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/rng.h"

namespace sf::autograd {
namespace {

struct SweepParam {
  int64_t d0, d1, d2;
  uint64_t seed;
};

Var leaf(Shape shape, Rng& rng, float stddev = 0.6f) {
  return Var(Tensor::randn(std::move(shape), rng, 0.0f, stddev), true);
}

Var to_scalar(const Var& x, uint64_t seed) {
  Rng rng(seed);
  Tensor w = Tensor::randn(x.shape(), rng);
  return sum(mul(x, Var(w, false)));
}

void check(const std::function<Var(const std::vector<Var>&)>& fn,
           std::vector<Var> leaves) {
  auto result = grad_check(fn, leaves, 1e-2f);
  EXPECT_TRUE(result.ok) << result.detail << " abs=" << result.max_abs_err;
}

class OpSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OpSweep, ElementwiseChain) {
  auto p = GetParam();
  Rng rng(p.seed);
  check(
      [&p](const std::vector<Var>& v) {
        return to_scalar(gelu(mul(add(v[0], v[1]), sigmoid(v[0]))), p.seed);
      },
      {leaf({p.d0, p.d1}, rng), leaf({p.d0, p.d1}, rng)});
}

TEST_P(OpSweep, LinearThenNorm) {
  auto p = GetParam();
  Rng rng(p.seed + 1);
  check(
      [&p](const std::vector<Var>& v) {
        Var y = linear(v[0], v[1], &v[2]);
        return to_scalar(layernorm(y, v[3], v[4]), p.seed);
      },
      {leaf({p.d0, p.d1}, rng), leaf({p.d1, p.d2}, rng), leaf({p.d2}, rng),
       leaf({p.d2}, rng, 0.3f), leaf({p.d2}, rng, 0.3f)});
}

TEST_P(OpSweep, AttentionCore) {
  auto p = GetParam();
  Rng rng(p.seed + 2);
  // b=1, h=1, sq=d0 (capped), sk=d1 (capped), dim=d2 (capped) keeps the
  // finite-difference loops cheap.
  int64_t sq = std::min<int64_t>(p.d0, 3), sk = std::min<int64_t>(p.d1, 4),
          dm = std::min<int64_t>(p.d2, 3);
  check(
      [=](const std::vector<Var>& v) {
        return to_scalar(mha(v[0], v[1], v[2], &v[3], nullptr, true),
                         p.seed);
      },
      {leaf({1, 1, sq, dm}, rng), leaf({1, 1, sk, dm}, rng),
       leaf({1, 1, sk, dm}, rng), leaf({1, sq, sk}, rng)});
}

TEST_P(OpSweep, FoldPrimitives) {
  auto p = GetParam();
  Rng rng(p.seed + 3);
  int64_t r = std::min<int64_t>(p.d0, 3), c = std::min<int64_t>(p.d2, 2);
  check(
      [=](const std::vector<Var>& v) {
        Var t = triangle_multiply(v[0], v[1], (p.seed % 2) == 0);
        return to_scalar(t, p.seed);
      },
      {leaf({r, r, c}, rng), leaf({r, r, c}, rng)});
  Rng rng2(p.seed + 4);
  int64_t s = std::min<int64_t>(p.d1, 3);
  check(
      [=](const std::vector<Var>& v) {
        return to_scalar(outer_product_mean(v[0], v[1]), p.seed);
      },
      {leaf({s, r, c}, rng2), leaf({s, r, c}, rng2)});
}

TEST_P(OpSweep, PermutationsRoundTrip) {
  auto p = GetParam();
  Rng rng(p.seed + 5);
  Var x = leaf({p.d0, p.d1, p.d2}, rng);
  for (std::array<int, 3> perm :
       {std::array<int, 3>{0, 1, 2}, {1, 0, 2}, {2, 0, 1}, {0, 2, 1}}) {
    Var y = permute3(x, perm);
    // Permutation preserves multiset of values.
    EXPECT_NEAR(y.value().sum(), x.value().sum(), 1e-3f);
    EXPECT_EQ(y.numel(), x.numel());
  }
  check(
      [](const std::vector<Var>& v) {
        return to_scalar(permute3(v[0], {2, 0, 1}), 5);
      },
      {x});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OpSweep,
    ::testing::Values(SweepParam{2, 3, 4, 100}, SweepParam{1, 1, 1, 101},
                      SweepParam{4, 2, 5, 102}, SweepParam{3, 5, 2, 103},
                      SweepParam{5, 4, 3, 104}, SweepParam{2, 6, 2, 105},
                      SweepParam{6, 2, 3, 106}, SweepParam{3, 3, 3, 107}));

}  // namespace
}  // namespace sf::autograd
