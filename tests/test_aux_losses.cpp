// Tests for the auxiliary training losses: fused softmax cross-entropy,
// masked-MSA corruption/BERT head, and the distogram head.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "data/protein_sample.h"
#include "model/alphafold.h"

namespace sf {
namespace {

using autograd::Var;

TEST(CrossEntropy, KnownValueUniformLogits) {
  // Uniform logits => loss = log(C) for any target.
  Var logits(Tensor::zeros({3, 4}), true);
  auto loss = autograd::softmax_cross_entropy(logits, {0, 1, 3});
  EXPECT_NEAR(loss.value().at(0), std::log(4.0f), 1e-5f);
}

TEST(CrossEntropy, ConfidentCorrectPredictionNearZero) {
  Tensor t({1, 3});
  t.at(0) = 50.0f;  // class 0 dominant
  Var logits(t, true);
  auto loss = autograd::softmax_cross_entropy(logits, {0});
  EXPECT_LT(loss.value().at(0), 1e-4f);
}

TEST(CrossEntropy, ConfidentWrongPredictionLarge) {
  Tensor t({1, 3});
  t.at(0) = 20.0f;
  Var logits(t, true);
  auto loss = autograd::softmax_cross_entropy(logits, {2});
  EXPECT_GT(loss.value().at(0), 10.0f);
}

TEST(CrossEntropy, RowWeightsSelectRows) {
  Tensor t({2, 2});
  t.at(0) = 10.0f;  // row 0 predicts class 0
  t.at(3) = 10.0f;  // row 1 predicts class 1
  Var logits(t, true);
  Tensor w({2}, {1.0f, 0.0f});
  // Row 1 is wrong (target 0) but weighted out.
  auto loss = autograd::softmax_cross_entropy(logits, {0, 0}, &w);
  EXPECT_LT(loss.value().at(0), 1e-3f);
}

TEST(CrossEntropy, GradMatchesFiniteDifferences) {
  Rng rng(3);
  std::vector<Var> leaves{Var(Tensor::randn({4, 5}, rng), true)};
  Tensor w({4}, {1.0f, 0.5f, 0.0f, 2.0f});
  auto result = autograd::grad_check(
      [&w](const std::vector<Var>& v) {
        return autograd::softmax_cross_entropy(v[0], {1, 4, 0, 2}, &w);
      },
      leaves);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(CrossEntropy, GradZeroForZeroWeightRows) {
  Rng rng(5);
  Var logits(Tensor::randn({3, 4}, rng), true);
  Tensor w({3}, {1.0f, 0.0f, 1.0f});
  autograd::backward(autograd::softmax_cross_entropy(logits, {0, 1, 2}, &w));
  Tensor g = logits.grad();
  for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(g.at(1 * 4 + j), 0.0f);
}

TEST(CrossEntropy, InvalidTargetThrows) {
  Var logits(Tensor::zeros({1, 3}), true);
  EXPECT_THROW(autograd::softmax_cross_entropy(logits, {3}), Error);
}

// ---- model-level aux losses ------------------------------------------

model::ModelConfig aux_config() {
  model::ModelConfig c;
  c.crop_len = 10;
  c.msa_rows = 3;
  c.c_m = 8;
  c.c_z = 8;
  c.c_s = 8;
  c.heads = 2;
  c.head_dim = 4;
  c.evoformer_blocks = 1;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 2;
  c.transition_factor = 2;
  c.structure_layers = 1;
  c.aux_losses = true;
  return c;
}

data::Batch aux_batch(int64_t idx = 0) {
  data::DatasetConfig c;
  c.num_samples = 4;
  c.crop_len = 10;
  c.msa_rows = 3;
  c.msa_work_cap = 40;
  c.seed = 17;
  return data::SyntheticProteinDataset(c).prepare_batch(idx);
}

TEST(MaskedMsa, CorruptionIsDeterministicAndBounded) {
  model::MiniAlphaFold net(aux_config(), 31);
  auto batch = aux_batch();
  auto a = net.corrupt_msa(batch);
  auto b = net.corrupt_msa(batch);
  EXPECT_EQ(a.sites, b.sites);
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.corrupted.max_abs_diff(b.corrupted), 0.0f);
  // ~15% of ~30 valid sites; allow a wide band.
  EXPECT_GT(a.sites.size(), 0u);
  EXPECT_LT(a.sites.size(), 20u);
}

TEST(MaskedMsa, MaskedSitesBecomeUniform) {
  model::MiniAlphaFold net(aux_config(), 32);
  auto batch = aux_batch();
  auto m = net.corrupt_msa(batch);
  ASSERT_FALSE(m.sites.empty());
  const int64_t f = net.config().msa_feat_dim;
  const int64_t aa = net.config().num_aa;
  for (size_t i = 0; i < m.sites.size(); ++i) {
    const float* feat = m.corrupted.data() + m.sites[i] * f;
    for (int64_t a = 0; a < aa; ++a) {
      EXPECT_NEAR(feat[a], 1.0f / aa, 1e-6f);
    }
    // The original feature must have been one-hot at the true class.
    const float* orig = batch.msa_feat.data() + m.sites[i] * f;
    EXPECT_EQ(orig[m.classes[i]], 1.0f);
  }
}

TEST(AuxLosses, AllComponentsPopulatedAndPositive) {
  model::MiniAlphaFold net(aux_config(), 33);
  auto batch = aux_batch();
  auto out = net.forward(batch, 1, true);
  EXPECT_GT(out.structural_loss_value, 0.0f);
  EXPECT_GT(out.masked_msa_loss_value, 0.0f);
  EXPECT_GT(out.distogram_loss_value, 0.0f);
  // Total is the weighted sum.
  float expect = out.structural_loss_value +
                 net.config().masked_msa_weight * out.masked_msa_loss_value +
                 net.config().distogram_weight * out.distogram_loss_value;
  EXPECT_NEAR(out.loss.value().at(0), expect, 1e-4f);
}

TEST(AuxLosses, HeadsReceiveGradients) {
  model::MiniAlphaFold net(aux_config(), 34);
  auto batch = aux_batch();
  auto out = net.forward(batch, 1, true);
  autograd::backward(out.loss);
  EXPECT_GT(net.params().get("heads.masked_msa.w").grad().max_abs(), 0.0f);
  EXPECT_GT(net.params().get("heads.distogram.w").grad().max_abs(), 0.0f);
}

TEST(AuxLosses, DisabledByDefault) {
  auto cfg = aux_config();
  cfg.aux_losses = false;
  model::MiniAlphaFold net(cfg, 35);
  auto out = net.forward(aux_batch(), 1, true);
  EXPECT_EQ(out.masked_msa_loss_value, 0.0f);
  EXPECT_EQ(out.distogram_loss_value, 0.0f);
}

TEST(AuxLosses, TrainingReducesAuxLosses) {
  // A short training run should reduce the BERT and distogram losses —
  // they are far easier than the structural objective.
  model::MiniAlphaFold net(aux_config(), 36);
  auto batch = aux_batch();
  float first_msa = 0, last_msa = 0, first_disto = 0, last_disto = 0;
  {
    // Plain SGD is enough here; the optimizer paths are covered elsewhere.
    for (int step = 0; step < 15; ++step) {
      for (auto& p : net.params().all()) p.zero_grad();
      auto out = net.forward(batch, 1, true);
      if (step == 0) {
        first_msa = out.masked_msa_loss_value;
        first_disto = out.distogram_loss_value;
      }
      last_msa = out.masked_msa_loss_value;
      last_disto = out.distogram_loss_value;
      autograd::backward(out.loss);
      for (auto& p : net.params().all()) {
        Tensor g = p.grad();
        auto& v = const_cast<autograd::Var&>(p).mutable_value();
        for (int64_t i = 0; i < v.numel(); ++i) {
          // Elementwise-clipped SGD keeps the structural-loss gradients
          // from blowing up the run (the real optimizer clips globally).
          float gi = std::clamp(g.at(i), -1.0f, 1.0f);
          v.at(i) -= 0.01f * gi;
        }
      }
    }
  }
  EXPECT_LT(last_msa, first_msa);
  EXPECT_LT(last_disto, first_disto);
}

}  // namespace
}  // namespace sf
