// Tests for software bfloat16: rounding semantics, special values, and the
// numerics that §3.4 relies on (bf16 converges where fp16 NaNs).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "kernels/bf16_kernels.h"
#include "kernels/gemm.h"
#include "kernels/layernorm.h"
#include "tensor/bfloat16.h"

namespace sf {
namespace {

TEST(BFloat16, ExactForSmallIntegers) {
  for (float f : {0.0f, 1.0f, -1.0f, 2.0f, 100.0f, -256.0f}) {
    EXPECT_EQ(BFloat16(f).to_float(), f);
  }
}

TEST(BFloat16, PowersOfTwoAreExact) {
  for (int e = -30; e <= 30; ++e) {
    float f = std::ldexp(1.0f, e);
    EXPECT_EQ(BFloat16(f).to_float(), f) << "exp " << e;
  }
}

TEST(BFloat16, RelativeErrorBounded) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    float f = static_cast<float>(rng.normal()) * 100.0f;
    if (f == 0.0f) continue;
    float r = BFloat16(f).to_float();
    // 8-bit mantissa => relative error < 2^-8.
    EXPECT_LE(std::fabs(r - f) / std::fabs(f), 1.0f / 256.0f);
  }
}

TEST(BFloat16, RoundToNearestEven) {
  // 1 + 2^-8 is exactly halfway between bf16(1.0) and the next value
  // (1 + 2^-7); round-to-even keeps the even mantissa (1.0... pattern).
  float halfway = 1.0f + 1.0f / 256.0f;
  float rounded = BFloat16(halfway).to_float();
  EXPECT_EQ(rounded, 1.0f);
  // Slightly above halfway must round up.
  float above = 1.0f + 1.5f / 256.0f;
  EXPECT_GT(BFloat16(above).to_float(), 1.0f);
}

TEST(BFloat16, NanStaysNan) {
  float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(BFloat16(nan).to_float()));
}

TEST(BFloat16, InfinityPreserved) {
  float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(BFloat16(inf).to_float(), inf);
  EXPECT_EQ(BFloat16(-inf).to_float(), -inf);
}

TEST(BFloat16, LargeValuesDoNotOverflowToInf) {
  // bf16 has fp32's exponent range: 3e38 must survive.
  float big = 3e38f;
  EXPECT_TRUE(std::isfinite(BFloat16(big).to_float()));
}

TEST(BFloat16, SmallValuesKeepSign) {
  EXPECT_LE(BFloat16(-1e-30f).to_float(), 0.0f);
  EXPECT_GE(BFloat16(1e-30f).to_float(), 0.0f);
}

TEST(BFloat16, RoundtripIdempotent) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    float f = static_cast<float>(rng.normal());
    float once = bf16_round(f);
    float twice = bf16_round(once);
    EXPECT_EQ(once, twice);
  }
}

TEST(BFloat16, BufferRounding) {
  std::vector<float> buf{1.00001f, 2.5f, -3.14159f, 1e-8f};
  std::vector<float> expect;
  for (float f : buf) expect.push_back(bf16_round(f));
  bf16_round_buffer(buf.data(), buf.size());
  EXPECT_EQ(buf, expect);
}

TEST(BFloat16, AssignmentOperator) {
  BFloat16 b;
  b = 3.5f;
  EXPECT_EQ(static_cast<float>(b), 3.5f);
}

TEST(BFloat16, EqualityComparesBits) {
  EXPECT_EQ(BFloat16(1.5f), BFloat16(1.5f));
  EXPECT_FALSE(BFloat16(1.5f) == BFloat16(2.5f));
}

// The §3.4 motivation: gradients of magnitude ~1e-6 times parameters ~1
// vanish in fp16's 5-bit exponent when squared (1e-12 < fp16 min normal)
// but survive bf16's 8-bit exponent.
TEST(BFloat16, SmallGradientSquaresSurvive) {
  float g = 1e-6f;
  float g2 = g * g;  // 1e-12
  EXPECT_GT(BFloat16(g2).to_float(), 0.0f);  // bf16 keeps it
  // fp16's smallest subnormal is ~6e-8: 1e-12 would flush to zero there.
}


// ---- bf16-storage kernels (§3.4 memory-traffic mechanism) ------------

TEST(Bf16Kernels, ConversionRoundtrip) {
  Rng rng(40);
  std::vector<float> src(128), back(128);
  fill_normal(rng, src.data(), src.size(), 0.0f, 2.0f);
  std::vector<BFloat16> mid(128);
  kernels::to_bf16(src.data(), mid.data(), 128);
  kernels::from_bf16(mid.data(), back.data(), 128);
  for (int i = 0; i < 128; ++i) {
    EXPECT_NEAR(back[i], src[i], std::fabs(src[i]) / 128.0f + 1e-6f);
  }
}

TEST(Bf16Kernels, AxpbMatchesF32WithinPrecision) {
  Rng rng(41);
  const int64_t n = 256;
  std::vector<float> x(n), y32(n);
  fill_normal(rng, x.data(), n, 0.0f, 1.0f);
  kernels::axpb_f32(x.data(), y32.data(), n, 1.5f, -0.25f);
  std::vector<BFloat16> xb(n), yb(n);
  kernels::to_bf16(x.data(), xb.data(), n);
  kernels::axpb_bf16(xb.data(), yb.data(), n, 1.5f, -0.25f);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(yb[i].to_float(), y32[i], std::fabs(y32[i]) / 64.0f + 0.02f);
  }
}

TEST(Bf16Kernels, LayerNormMatchesF32WithinPrecision) {
  Rng rng(42);
  const int64_t rows = 16, cols = 64;
  std::vector<float> x(rows * cols), gamma(cols), beta(cols), y32(rows * cols);
  fill_normal(rng, x.data(), x.size(), 0.5f, 2.0f);
  fill_normal(rng, gamma.data(), cols, 1.0f, 0.2f);
  fill_normal(rng, beta.data(), cols, 0.0f, 0.2f);
  kernels::layernorm_forward_fused(x.data(), gamma.data(), beta.data(),
                                   y32.data(), rows, cols, 1e-5f, nullptr);
  std::vector<BFloat16> xb(rows * cols), yb(rows * cols);
  kernels::to_bf16(x.data(), xb.data(), x.size());
  kernels::layernorm_forward_fused_bf16(xb.data(), gamma.data(), beta.data(),
                                        yb.data(), rows, cols, 1e-5f);
  for (size_t i = 0; i < y32.size(); ++i) {
    EXPECT_NEAR(yb[i].to_float(), y32[i], 0.05f) << i;
  }
}

TEST(Bf16Kernels, GemmMatchesF32WithinPrecision) {
  Rng rng(43);
  const int64_t m = 9, k = 17, n = 11;
  std::vector<float> a(m * k), b(k * n), c32(m * n), cb(m * n);
  fill_normal(rng, a.data(), a.size(), 0.0f, 1.0f);
  fill_normal(rng, b.data(), b.size(), 0.0f, 1.0f);
  kernels::gemm(a.data(), b.data(), c32.data(), m, k, n);
  std::vector<BFloat16> ab(m * k), bb(k * n);
  kernels::to_bf16(a.data(), ab.data(), a.size());
  kernels::to_bf16(b.data(), bb.data(), b.size());
  kernels::gemm_bf16(ab.data(), bb.data(), cb.data(), m, k, n);
  for (size_t i = 0; i < c32.size(); ++i) {
    // Relative error ~ sqrt(k) * 2^-8.
    EXPECT_NEAR(cb[i], c32[i], std::fabs(c32[i]) * 0.05f + 0.1f) << i;
  }
}

}  // namespace
}  // namespace sf
