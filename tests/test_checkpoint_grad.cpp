// Tests for gradient checkpointing: single- and multi-output checkpoint
// segments must produce identical gradients to the uncheckpointed graph
// while keeping far fewer tape nodes alive, including through the full
// mini-AlphaFold (§2.2 / §4.1 mechanism).
#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/var.h"
#include "data/protein_sample.h"
#include "model/alphafold.h"

namespace sf::autograd {
namespace {

Var leaf(Shape shape, uint64_t seed) {
  Rng rng(seed);
  return Var(Tensor::randn(std::move(shape), rng, 0.0f, 0.5f), true);
}

TEST(GradMode, NoGradGuardDisablesTape) {
  Var x = leaf({4}, 1);
  Var y;
  {
    NoGradGuard guard;
    EXPECT_FALSE(grad_enabled());
    y = scale(x, 2.0f);
  }
  EXPECT_TRUE(grad_enabled());
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.node()->parents.empty());
}

TEST(GradMode, GuardRestoresOnException) {
  Var x = leaf({1}, 2);
  try {
    NoGradGuard guard;
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(grad_enabled());
}

TEST(BackwardSeeded, MatchesManualChainRule) {
  Var x = leaf({3}, 3);
  Var y = scale(x, 4.0f);
  Tensor seed({3}, {1.0f, 2.0f, 3.0f});
  backward_seeded(y, seed);
  Tensor g = x.grad();
  EXPECT_NEAR(g.at(0), 4.0f, 1e-6f);
  EXPECT_NEAR(g.at(1), 8.0f, 1e-6f);
  EXPECT_NEAR(g.at(2), 12.0f, 1e-6f);
}

TEST(Checkpoint, SingleOutputGradsMatchUncheckpointed) {
  auto fn = [](const std::vector<Var>& in) {
    return gelu(mul(in[0], in[1]));
  };
  Var a1 = leaf({8}, 4), b1 = leaf({8}, 5);
  backward(sum(fn({a1, b1})));

  Var a2 = Var(a1.value().clone(), true), b2 = Var(b1.value().clone(), true);
  backward(sum(checkpoint(fn, {a2, b2})));

  EXPECT_LT(a1.grad().max_abs_diff(a2.grad()), 1e-5f);
  EXPECT_LT(b1.grad().max_abs_diff(b2.grad()), 1e-5f);
}

TEST(Checkpoint, GradsReachCapturedParameters) {
  // The common case: the segment closes over module weights that are not
  // explicit inputs.
  Var w = leaf({4, 4}, 6);
  auto fn = [&w](const std::vector<Var>& in) { return matmul(in[0], w); };
  Rng rng(7);
  Var x(Tensor::randn({2, 4}, rng), false);
  backward(sum(checkpoint(fn, {x})));
  EXPECT_GT(w.grad().max_abs(), 0.0f);
}

TEST(Checkpoint, ValueMatchesDirectForward) {
  auto fn = [](const std::vector<Var>& in) { return sigmoid(in[0]); };
  Var x = leaf({16}, 8);
  Var direct = fn({x});
  Var ck = checkpoint(fn, {x});
  EXPECT_EQ(direct.value().max_abs_diff(ck.value()), 0.0f);
}

TEST(CheckpointMulti, BothOutputsGetGradients) {
  auto fn = [](const std::vector<Var>& in) {
    return std::vector<Var>{scale(in[0], 2.0f), mul(in[0], in[0])};
  };
  Var x1 = leaf({5}, 9);
  auto direct = fn({x1});
  backward(sum(add(direct[0], direct[1])));

  Var x2 = Var(x1.value().clone(), true);
  auto ck = checkpoint_multi(fn, {x2});
  backward(sum(add(ck[0], ck[1])));

  EXPECT_LT(x1.grad().max_abs_diff(x2.grad()), 1e-5f);
}

TEST(CheckpointMulti, RecomputeFiresOnce) {
  int calls = 0;
  auto fn = [&calls](const std::vector<Var>& in) {
    ++calls;
    return std::vector<Var>{scale(in[0], 3.0f), scale(in[0], 5.0f)};
  };
  Var x = leaf({4}, 10);
  auto outs = checkpoint_multi(fn, {x});
  calls = 0;  // ignore the forward pass
  backward(sum(add(outs[0], outs[1])));
  EXPECT_EQ(calls, 1);  // one recompute serves both outputs
  EXPECT_NEAR(x.grad().at(0), 8.0f, 1e-5f);
}

TEST(CheckpointMulti, UnusedOutputContributesZero) {
  auto fn = [](const std::vector<Var>& in) {
    return std::vector<Var>{scale(in[0], 2.0f), scale(in[0], 100.0f)};
  };
  Var x = leaf({3}, 11);
  auto outs = checkpoint_multi(fn, {x});
  backward(sum(outs[0]));  // second output never consumed
  for (int64_t i = 0; i < 3; ++i) EXPECT_NEAR(x.grad().at(i), 2.0f, 1e-5f);
}

TEST(Checkpoint, ShrinksReachableTape) {
  auto deep = [](const std::vector<Var>& in) {
    Var v = in[0];
    for (int i = 0; i < 20; ++i) v = gelu(add_scalar(v, 0.01f));
    return v;
  };
  Var x1 = leaf({8}, 12);
  Var direct = sum(deep({x1}));
  Var x2 = Var(x1.value().clone(), true);
  Var ck = sum(checkpoint(deep, {x2}));
  EXPECT_LT(reachable_nodes(ck) * 5, reachable_nodes(direct));
}

// ---- Full model ----------------------------------------------------------

model::ModelConfig tiny_config(bool ckpt) {
  model::ModelConfig c;
  c.crop_len = 10;
  c.msa_rows = 3;
  c.c_m = 8;
  c.c_z = 8;
  c.c_s = 8;
  c.heads = 2;
  c.head_dim = 4;
  c.evoformer_blocks = 2;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 2;
  c.transition_factor = 2;
  c.structure_layers = 1;
  c.gradient_checkpointing = ckpt;
  return c;
}

data::Batch tiny_batch() {
  data::DatasetConfig c;
  c.num_samples = 2;
  c.crop_len = 10;
  c.msa_rows = 3;
  c.msa_work_cap = 40;
  c.seed = 5;
  return data::SyntheticProteinDataset(c).prepare_batch(0);
}

TEST(CheckpointModel, LossAndGradsMatchUncheckpointed) {
  auto batch = tiny_batch();
  model::MiniAlphaFold plain(tiny_config(false), 21);
  model::MiniAlphaFold ckpt(tiny_config(true), 21);

  auto out_plain = plain.forward(batch, 2, true);
  auto out_ckpt = ckpt.forward(batch, 2, true);
  EXPECT_NEAR(out_plain.loss.value().at(0), out_ckpt.loss.value().at(0),
              1e-4f);

  backward(out_plain.loss);
  backward(out_ckpt.loss);
  auto p_plain = plain.params().all();
  auto p_ckpt = ckpt.params().all();
  ASSERT_EQ(p_plain.size(), p_ckpt.size());
  for (size_t i = 0; i < p_plain.size(); ++i) {
    EXPECT_LT(p_plain[i].grad().max_abs_diff(p_ckpt[i].grad()), 5e-4f)
        << "param " << i;
  }
}

TEST(CheckpointModel, TapeIsSmallerWithCheckpointing) {
  auto batch = tiny_batch();
  model::MiniAlphaFold plain(tiny_config(false), 22);
  model::MiniAlphaFold ckpt(tiny_config(true), 22);
  auto out_plain = plain.forward(batch, 1, true);
  auto out_ckpt = ckpt.forward(batch, 1, true);
  size_t plain_nodes = reachable_nodes(out_plain.loss);
  size_t ckpt_nodes = reachable_nodes(out_ckpt.loss);
  EXPECT_LT(ckpt_nodes, plain_nodes * 3 / 4)
      << "ckpt " << ckpt_nodes << " vs plain " << plain_nodes;
}

}  // namespace
}  // namespace sf::autograd
