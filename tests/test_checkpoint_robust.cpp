// Crash-consistency and corruption-recovery tests for the checkpoint
// container, CheckpointManager rotation/fallback, and Trainer
// resume_from (see "Fault model" in DESIGN.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "data/protein_sample.h"
#include "model/alphafold.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

namespace sf::train {
namespace {

namespace fs = std::filesystem;

class CheckpointRobust : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/sf_test_ckpt_robust";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::reset();
    fs::remove_all(dir_);
  }
  std::string path(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }
  std::string dir_;
};

std::map<std::string, Tensor> sample_tensors(uint64_t seed) {
  Rng rng(seed);
  std::map<std::string, Tensor> t;
  t.emplace("a", Tensor::randn({3, 4}, rng));
  t.emplace("b.weight", Tensor::randn({16}, rng));
  return t;
}

void flip_byte_at_end_offset(const std::string& path, int64_t from_end) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  const int64_t size = f.tellg();
  ASSERT_GT(size, from_end);
  f.seekp(size - from_end);
  char byte = 0;
  f.seekg(size - from_end);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xFF);
  f.seekp(size - from_end);
  f.write(&byte, 1);
}

TEST_F(CheckpointRobust, TruncatedFileIsTypedAsTruncation) {
  const std::string p = path("t.bin");
  save_tensors(p, sample_tensors(1));
  // Cut into the last tensor's payload (the trailing 8 bytes are the end
  // marker; removing 12 leaves the payload short).
  fs::resize_file(p, fs::file_size(p) - 12);
  try {
    load_tensors(p);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kTruncated) << e.what();
  }
}

TEST_F(CheckpointRobust, FlippedPayloadByteFailsCrc) {
  const std::string p = path("c.bin");
  save_tensors(p, sample_tensors(2));
  flip_byte_at_end_offset(p, 9);  // last payload byte, before the marker
  try {
    load_tensors(p);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kCorrupt) << e.what();
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST_F(CheckpointRobust, MissingEndMarkerIsCorrupt) {
  const std::string p = path("m.bin");
  save_tensors(p, sample_tensors(3));
  flip_byte_at_end_offset(p, 1);  // inside the end marker
  try {
    load_tensors(p);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kCorrupt) << e.what();
  }
}

TEST_F(CheckpointRobust, LegacyV1ContainerStillLoads) {
  // Hand-write a v1 file (magic "SCALEFOL", no version/CRC/end marker).
  const std::string p = path("v1.bin");
  Rng rng(4);
  Tensor t = Tensor::randn({2, 5}, rng);
  std::ofstream f(p, std::ios::binary);
  auto pod = [&f](auto v) {
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  pod(uint64_t{0x5343414c45464f4cULL});  // v1 magic
  pod(uint64_t{1});                      // tensor count
  const std::string name = "w";
  pod(uint64_t{name.size()});
  f.write(name.data(), name.size());
  pod(uint64_t{2});  // rank
  pod(int64_t{2});
  pod(int64_t{5});
  f.write(reinterpret_cast<const char*>(t.data()), sizeof(float) * t.numel());
  f.close();
  auto loaded = load_tensors(p);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.at("w").max_abs_diff(t), 0.0f);
}

// ---- load_checkpoint leaves the destination store untouched ---------------

struct StoreFixture {
  model::ParamStore store;
  std::vector<Tensor> snapshot;
  StoreFixture() {
    Rng rng(11);
    store.create("a", {3, 4}, model::Init::kLecunNormal, rng);
    store.create("b.weight", {16}, model::Init::kLecunNormal, rng);
    for (const auto& [name, v] : store.named()) {
      snapshot.push_back(v.value().clone());
    }
  }
  void expect_untouched() const {
    size_t i = 0;
    for (const auto& [name, v] : store.named()) {
      EXPECT_EQ(v.value().max_abs_diff(snapshot[i++]), 0.0f)
          << name << " was modified by a failed load";
    }
  }
};

TEST_F(CheckpointRobust, ShapeMismatchIsTypedAndLeavesStoreUntouched) {
  const std::string p = path("shape.bin");
  Rng rng(5);
  std::map<std::string, Tensor> wrong;
  wrong.emplace("a", Tensor::randn({4, 3}, rng));  // transposed
  wrong.emplace("b.weight", Tensor::randn({16}, rng));
  save_tensors(p, wrong);
  StoreFixture fx;
  try {
    load_checkpoint(p, fx.store);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kShapeMismatch) << e.what();
  }
  fx.expect_untouched();
}

TEST_F(CheckpointRobust, MissingParamIsTypedAndLeavesStoreUntouched) {
  const std::string p = path("missing.bin");
  Rng rng(6);
  std::map<std::string, Tensor> partial;
  partial.emplace("a", Tensor::randn({3, 4}, rng));  // no "b.weight"
  save_tensors(p, partial);
  StoreFixture fx;
  try {
    load_checkpoint(p, fx.store);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kMissingParam) << e.what();
  }
  fx.expect_untouched();
}

TEST_F(CheckpointRobust, CorruptPayloadLeavesStoreUntouched) {
  const std::string p = path("crc.bin");
  StoreFixture fx;
  std::map<std::string, Tensor> good;
  for (const auto& [name, v] : fx.store.named()) {
    good.emplace(name, v.value().clone());
  }
  // Perturb so a successful load would definitely change the store.
  good.at("a").data()[0] += 1.0f;
  save_tensors(p, good);
  flip_byte_at_end_offset(p, 9);
  EXPECT_THROW(load_checkpoint(p, fx.store), CheckpointError);
  fx.expect_untouched();
}

// ---- Atomic save ----------------------------------------------------------

TEST_F(CheckpointRobust, CrashDuringSaveLeavesOldCheckpointIntact) {
  const std::string p = path("atomic.bin");
  auto old_data = sample_tensors(7);
  save_tensors(p, old_data);

  fault::arm_once("checkpoint.write");  // crash before the tmp is durable
  auto new_data = sample_tensors(8);
  EXPECT_THROW(save_tensors(p, new_data), fault::InjectedFault);

  // The previous checkpoint is complete and readable; no tmp debris.
  auto loaded = load_tensors(p);
  EXPECT_EQ(loaded.at("a").max_abs_diff(old_data.at("a")), 0.0f);
  EXPECT_FALSE(fs::exists(p + ".tmp"));

  // The retried save (site fires only once) succeeds and replaces it.
  save_tensors(p, new_data);
  EXPECT_EQ(load_tensors(p).at("a").max_abs_diff(new_data.at("a")), 0.0f);
}

// ---- CheckpointManager rotation and fallback ------------------------------

TEST_F(CheckpointRobust, ManagerRotatesAndPrunes) {
  CheckpointManager mgr(path("mgr"), /*keep_last=*/2);
  for (int64_t step : {10, 20, 30}) mgr.save(step, sample_tensors(step));
  auto steps = mgr.list_steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0], 30);
  EXPECT_EQ(steps[1], 20);
  EXPECT_FALSE(fs::exists(mgr.path_for_step(10)));
}

TEST_F(CheckpointRobust, LoadLatestFallsBackPastCorruptAndTruncated) {
  CheckpointManager mgr(path("mgr2"), /*keep_last=*/3);
  for (int64_t step : {10, 20, 30}) mgr.save(step, sample_tensors(step));
  flip_byte_at_end_offset(mgr.path_for_step(30), 9);       // CRC corruption
  fs::resize_file(mgr.path_for_step(20),
                  fs::file_size(mgr.path_for_step(20)) - 12);  // truncation
  std::map<std::string, Tensor> out;
  EXPECT_EQ(mgr.load_latest(out), 10);
  EXPECT_EQ(out.at("a").max_abs_diff(sample_tensors(10).at("a")), 0.0f);

  // Every file invalid: -1 and `out` untouched.
  flip_byte_at_end_offset(mgr.path_for_step(10), 9);
  std::map<std::string, Tensor> before = out;
  EXPECT_EQ(mgr.load_latest(out), -1);
  EXPECT_EQ(out.size(), before.size());
}

// ---- Trainer checkpoint_to / resume_from ----------------------------------

model::ModelConfig tiny_config() {
  model::ModelConfig c;
  c.crop_len = 12;
  c.msa_rows = 3;
  c.c_m = 8;
  c.c_z = 8;
  c.c_s = 8;
  c.heads = 2;
  c.head_dim = 4;
  c.evoformer_blocks = 1;
  c.extra_msa_blocks = 0;
  c.template_pair_blocks = 0;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 2;
  c.transition_factor = 2;
  c.structure_layers = 2;
  return c;
}

data::DatasetConfig tiny_data() {
  data::DatasetConfig c;
  c.num_samples = 12;
  c.crop_len = 12;
  c.msa_rows = 3;
  c.msa_work_cap = 60;
  c.seed = 99;
  return c;
}

TrainConfig deterministic_train_config() {
  TrainConfig tc;
  // Fixed recycling depth so a resumed trainer replays the exact same
  // forward passes regardless of its RNG stream position.
  tc.min_recycles = 1;
  tc.max_recycles = 1;
  tc.warmup_steps = 10;
  return tc;
}

std::vector<float> flat_params(const model::MiniAlphaFold& net) {
  std::vector<float> flat;
  for (const auto& p : net.params().all()) {
    for (int64_t i = 0; i < p.numel(); ++i) flat.push_back(p.value().at(i));
  }
  return flat;
}

TEST_F(CheckpointRobust, TrainerResumeIsLossless) {
  data::SyntheticProteinDataset ds(tiny_data());
  auto batch = ds.prepare_batch(0);
  const std::string ckpt_dir = path("trainer");

  model::MiniAlphaFold a(tiny_config(), 21);
  Trainer ta(a, deterministic_train_config());
  ta.train_step(batch);
  ta.train_step(batch);
  ta.checkpoint_to(ckpt_dir);
  ta.train_step(batch);
  ta.train_step(batch);
  auto want = flat_params(a);

  // Different init seed: resume must overwrite everything that matters
  // (params, Adam moments, SWA, step count) for a bit-identical replay.
  model::MiniAlphaFold b(tiny_config(), 22);
  Trainer tb(b, deterministic_train_config());
  EXPECT_EQ(tb.resume_from(ckpt_dir), 2);
  EXPECT_EQ(tb.step(), 2);
  tb.train_step(batch);
  tb.train_step(batch);
  auto got = flat_params(b);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "param elem " << i << " diverged";
  }
}

TEST_F(CheckpointRobust, TrainerResumeRecoversFromPreviousWhenLatestCorrupt) {
  // Acceptance scenario: the newest checkpoint is corrupt; resume_from
  // silently falls back to the previous one.
  data::SyntheticProteinDataset ds(tiny_data());
  auto batch = ds.prepare_batch(1);
  const std::string ckpt_dir = path("fallback");

  model::MiniAlphaFold a(tiny_config(), 23);
  Trainer ta(a, deterministic_train_config());
  ta.train_step(batch);
  ta.train_step(batch);
  ta.checkpoint_to(ckpt_dir);
  auto params_at_2 = flat_params(a);
  ta.train_step(batch);
  ta.checkpoint_to(ckpt_dir);

  CheckpointManager mgr(ckpt_dir);
  ASSERT_EQ(mgr.list_steps().size(), 2u);
  flip_byte_at_end_offset(mgr.path_for_step(3), 9);

  model::MiniAlphaFold b(tiny_config(), 24);
  Trainer tb(b, deterministic_train_config());
  EXPECT_EQ(tb.resume_from(ckpt_dir), 2);
  auto got = flat_params(b);
  ASSERT_EQ(got.size(), params_at_2.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], params_at_2[i]) << "param elem " << i;
  }
}

TEST_F(CheckpointRobust, ResumeFromEmptyDirIsNoOp) {
  model::MiniAlphaFold net(tiny_config(), 25);
  Trainer t(net, deterministic_train_config());
  auto before = flat_params(net);
  EXPECT_EQ(t.resume_from(path("empty")), -1);
  EXPECT_EQ(t.step(), 0);
  EXPECT_EQ(flat_params(net), before);
}

}  // namespace
}  // namespace sf::train
