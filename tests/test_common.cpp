// Tests for the common substrate: RNG, timers, thread pool, error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace sf {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0, sumsq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, LognormalIsLongTailed) {
  Rng rng(13);
  double median_est = 0;
  double max_v = 0;
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) {
    double x = rng.lognormal(0.0, 1.2);
    v.push_back(x);
    max_v = std::max(max_v, x);
  }
  std::sort(v.begin(), v.end());
  median_est = v[v.size() / 2];
  EXPECT_NEAR(median_est, 1.0, 0.1);
  // Heavy right tail: max should exceed the median by >1.5 decades.
  EXPECT_GT(max_v / median_est, 30.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // Child diverges from a sibling split and from the parent continuation.
  Rng child2 = parent.split();
  EXPECT_NE(child.next_u64(), child2.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // overwhelmingly likely
}

TEST(FillHelpers, FillNormalAndUniform) {
  Rng rng(31);
  std::vector<float> buf(1000);
  fill_uniform(rng, buf.data(), buf.size(), 2.0f, 3.0f);
  for (float f : buf) {
    EXPECT_GE(f, 2.0f);
    EXPECT_LT(f, 3.0f);
  }
  fill_normal(rng, buf.data(), buf.size(), 10.0f, 0.1f);
  double mean = 0;
  for (float f : buf) mean += f;
  EXPECT_NEAR(mean / buf.size(), 10.0, 0.05);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double e = t.elapsed();
  EXPECT_GE(e, 0.015);
  EXPECT_LT(e, 1.0);
  t.reset();
  EXPECT_LT(t.elapsed(), 0.015);
}

TEST(ScopedAccumulator, AddsOnScopeExit) {
  double sink = 0.0;
  {
    ScopedAccumulator acc(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(sink, 0.005);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      int cur = running.fetch_add(1) + 1;
      int prev = max_running.load();
      while (prev < cur && !max_running.compare_exchange_weak(prev, cur)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      running.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_GE(max_running.load(), 2);
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  for (int i = 0; i < 5000; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5000LL * 4999 / 2);
}

TEST(ThreadPool, ThrowingTaskDoesNotTerminateAndRethrows) {
  // Regression: an exception escaping worker_loop used to hit
  // std::terminate and strand active_ (wait_idle hung forever). Now the
  // worker survives and the first exception resurfaces at wait_idle().
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw Error("task boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), Error);
  EXPECT_EQ(ran.load(), 10);  // workers kept draining the queue
  EXPECT_EQ(pool.failed_tasks(), 1);
  pool.wait_idle();  // error was cleared by the first rethrow
}

TEST(ThreadPool, CheckRethrowsFirstErrorOnceAndCountsRest) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  // Drain without consuming the error via wait_idle's rethrow path.
  try {
    pool.wait_idle();
    FAIL() << "expected a task exception";
  } catch (const std::exception& e) {
    // Either task may have run first; both must be counted.
    SUCCEED();
  }
  EXPECT_EQ(pool.failed_tasks(), 2);
  pool.check();  // cleared: does not throw again
}

TEST(ThreadPool, PoolUsableAfterException) {
  ThreadPool pool(4);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.failed_tasks(), 1);
}

TEST(Error, SfCheckThrowsWithContext) {
  try {
    SF_CHECK(1 == 2) << "custom" << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("custom"), std::string::npos);
    EXPECT_NE(msg.find("42"), std::string::npos);
  }
}

TEST(Error, SfCheckPassesSilently) {
  SF_CHECK(2 + 2 == 4) << "should not throw";
  SUCCEED();
}

}  // namespace
}  // namespace sf
