// Tests for the DAP substrate: communicator collectives, distributed
// transposes, and exact equivalence of sharded Evoformer module forwards
// with their unsharded counterparts (§2.3).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "autograd/var.h"
#include "common/fault.h"
#include "dap/communicator.h"
#include "dap/sharded.h"
#include "model/modules.h"

namespace sf::dap {
namespace {

/// Run `fn(rank)` on world_size threads and join.
void run_ranks(int world_size, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < world_size; ++r) threads.emplace_back(fn, r);
  for (auto& t : threads) t.join();
}

TEST(Communicator, BarrierSynchronizesGenerations) {
  Communicator comm(4);
  std::atomic<int> counter{0};
  run_ranks(4, [&](int rank) {
    counter.fetch_add(1);
    comm.barrier(rank);
    // After the barrier every rank must observe all 4 increments.
    EXPECT_EQ(counter.load(), 4);
    comm.barrier(rank);
  });
}

TEST(Communicator, AllGatherOrdersChunksByRank) {
  const int n = 3;
  Communicator comm(n);
  std::vector<std::vector<float>> outs(n, std::vector<float>(n * 2));
  run_ranks(n, [&](int rank) {
    std::vector<float> chunk{static_cast<float>(rank * 10),
                             static_cast<float>(rank * 10 + 1)};
    comm.all_gather(rank, chunk, outs[rank]);
  });
  for (int rank = 0; rank < n; ++rank) {
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(outs[rank][r * 2], r * 10.0f);
      EXPECT_EQ(outs[rank][r * 2 + 1], r * 10.0f + 1);
    }
  }
}

TEST(Communicator, AllReduceSumsDeterministically) {
  const int n = 4;
  Communicator comm(n);
  std::vector<std::vector<float>> bufs(n);
  for (int r = 0; r < n; ++r) {
    bufs[r] = {1.0f * r, 2.0f * r, -1.0f * r, 0.5f};
  }
  run_ranks(n, [&](int rank) { comm.all_reduce_sum(rank, bufs[rank]); });
  // sum over r of r = 6
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_EQ(bufs[rank][0], 6.0f);
    EXPECT_EQ(bufs[rank][1], 12.0f);
    EXPECT_EQ(bufs[rank][2], -6.0f);
    EXPECT_EQ(bufs[rank][3], 2.0f);
  }
}

TEST(Communicator, AllToAllRoutesChunks) {
  const int n = 3;
  Communicator comm(n);
  std::vector<std::vector<float>> recv(n, std::vector<float>(n));
  run_ranks(n, [&](int rank) {
    // send[j] = 100*rank + j: rank j must receive 100*r + j from each r.
    std::vector<float> send(n);
    for (int j = 0; j < n; ++j) send[j] = 100.0f * rank + j;
    comm.all_to_all(rank, send, recv[rank]);
  });
  for (int rank = 0; rank < n; ++rank) {
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(recv[rank][r], 100.0f * r + rank);
    }
  }
}

TEST(Communicator, StatsAccumulateBytes) {
  Communicator comm(2);
  std::vector<std::vector<float>> outs(2, std::vector<float>(8));
  run_ranks(2, [&](int rank) {
    std::vector<float> chunk(4, 1.0f);
    comm.all_gather(rank, chunk, outs[rank]);
  });
  EXPECT_EQ(comm.stats().collectives, 1u);
  EXPECT_GT(comm.stats().bytes_gathered, 0u);
  comm.reset_stats();
  EXPECT_EQ(comm.stats().total_bytes(), 0u);
}

TEST(Communicator, RepeatedCollectivesDoNotDeadlock) {
  const int n = 4;
  Communicator comm(n);
  run_ranks(n, [&](int rank) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<float> buf(16, static_cast<float>(rank));
      comm.all_reduce_sum(rank, buf);
      EXPECT_EQ(buf[0], 6.0f);  // 0+1+2+3
    }
  });
}

// ---- shard helpers -------------------------------------------------------

Tensor random_tensor(Shape shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

TEST(Sharding, ShardUnshardRoundtrip) {
  const int n = 4;
  Tensor full = random_tensor({8, 5, 3}, 1);
  Communicator comm(n);
  std::vector<Tensor> results(n);
  run_ranks(n, [&](int rank) {
    Tensor shard = shard_axis0(full, rank, n);
    EXPECT_EQ(shard.shape(), Shape({2, 5, 3}));
    results[rank] = unshard_axis0(comm, rank, shard, 8);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(results[r].max_abs_diff(full), 0.0f);
  }
}

TEST(Sharding, TransposeShardMatchesDirectSlicing) {
  const int n = 2;
  const int64_t a = 4, b = 6, c = 3;
  Tensor full = random_tensor({a, b, c}, 2);
  Communicator comm(n);
  std::vector<Tensor> results(n);
  run_ranks(n, [&](int rank) {
    Tensor shard = shard_axis0(full, rank, n);
    results[rank] = transpose_shard(comm, rank, shard, a, b, c);
  });
  // results[rank][i, j, k] must equal full[i, rank*(b/n)+j, k].
  const int64_t lb = b / n;
  for (int rank = 0; rank < n; ++rank) {
    ASSERT_EQ(results[rank].shape(), Shape({a, lb, c}));
    for (int64_t i = 0; i < a; ++i) {
      for (int64_t j = 0; j < lb; ++j) {
        for (int64_t k = 0; k < c; ++k) {
          EXPECT_EQ(results[rank].at((i * lb + j) * c + k),
                    full.at((i * b + rank * lb + j) * c + k));
        }
      }
    }
  }
}

TEST(Sharding, TransposeUntransposeRoundtrip) {
  const int n = 3;
  const int64_t a = 6, b = 9, c = 2;
  Tensor full = random_tensor({a, b, c}, 3);
  Communicator comm(n);
  std::vector<Tensor> back(n);
  run_ranks(n, [&](int rank) {
    Tensor shard = shard_axis0(full, rank, n);
    Tensor rotated = transpose_shard(comm, rank, shard, a, b, c);
    back[rank] = untranspose_shard(comm, rank, rotated, a, b, c);
  });
  for (int rank = 0; rank < n; ++rank) {
    Tensor expect = shard_axis0(full, rank, n);
    EXPECT_EQ(back[rank].max_abs_diff(expect), 0.0f);
  }
}

// ---- sharded modules -------------------------------------------------

struct ModuleFixture {
  model::ModelConfig cfg;
  model::ParamStore store;
  Rng rng{11};
  Tensor msa, pair;

  ModuleFixture() {
    cfg.msa_rows = 4;
    cfg.crop_len = 8;
    cfg.c_m = 8;
    cfg.c_z = 8;
    cfg.heads = 2;
    cfg.head_dim = 4;
    cfg.opm_dim = 3;
    msa = random_tensor({cfg.msa_rows, cfg.crop_len, cfg.c_m}, 21);
    pair = random_tensor({cfg.crop_len, cfg.crop_len, cfg.c_z}, 22);
  }
};

TEST(ShardedModules, RowAttentionMatchesUnsharded) {
  ModuleFixture fx;
  model::MSARowAttentionWithPairBias module(fx.store, "row", fx.cfg, fx.rng);
  autograd::NoGradGuard no_grad;
  Tensor expect = module(autograd::Var(fx.msa, false),
                         autograd::Var(fx.pair, false), nullptr)
                      .value();
  for (int n : {2, 4}) {
    Communicator comm(n);
    std::vector<Tensor> outs(n);
    run_ranks(n, [&](int rank) {
      Tensor msa_shard = shard_axis0(fx.msa, rank, n);
      Tensor pair_shard = shard_axis0(fx.pair, rank, n);
      outs[rank] = sharded_row_attention(module, comm, rank, msa_shard,
                                         pair_shard, fx.cfg.crop_len);
    });
    for (int rank = 0; rank < n; ++rank) {
      Tensor expect_shard = shard_axis0(expect, rank, n);
      EXPECT_LT(outs[rank].max_abs_diff(expect_shard), 1e-5f)
          << "DAP-" << n << " rank " << rank;
    }
    EXPECT_GT(comm.stats().bytes_gathered, 0u);  // the all-gather happened
  }
}

TEST(ShardedModules, OuterProductMeanMatchesUnsharded) {
  ModuleFixture fx;
  model::OuterProductMean module(fx.store, "opm", fx.cfg, fx.rng);
  autograd::NoGradGuard no_grad;
  Tensor expect = module(autograd::Var(fx.msa, false)).value();
  for (int n : {2, 4}) {
    Communicator comm(n);
    std::vector<Tensor> outs(n);
    run_ranks(n, [&](int rank) {
      Tensor msa_shard = shard_axis0(fx.msa, rank, n);
      outs[rank] = sharded_outer_product_mean(module, comm, rank, msa_shard,
                                              fx.cfg.msa_rows);
    });
    for (int rank = 0; rank < n; ++rank) {
      EXPECT_LT(outs[rank].max_abs_diff(expect), 1e-4f)
          << "DAP-" << n << " rank " << rank;
    }
    EXPECT_GT(comm.stats().bytes_reduced, 0u);  // the all-reduce happened
  }
}

TEST(ShardedModules, ColumnAttentionMatchesUnsharded) {
  ModuleFixture fx;
  model::MSAColumnAttention module(fx.store, "col", fx.cfg, fx.rng);
  autograd::NoGradGuard no_grad;
  Tensor expect = module(autograd::Var(fx.msa, false)).value();
  for (int n : {2, 4}) {
    Communicator comm(n);
    std::vector<Tensor> outs(n);
    run_ranks(n, [&](int rank) {
      Tensor msa_shard = shard_axis0(fx.msa, rank, n);
      outs[rank] = sharded_column_attention(module, comm, rank, msa_shard,
                                            fx.cfg.msa_rows);
    });
    for (int rank = 0; rank < n; ++rank) {
      Tensor expect_shard = shard_axis0(expect, rank, n);
      EXPECT_LT(outs[rank].max_abs_diff(expect_shard), 1e-5f)
          << "DAP-" << n << " rank " << rank;
    }
    EXPECT_GT(comm.stats().bytes_exchanged, 0u);  // the all-to-alls happened
  }
}

TEST(ShardedModules, CommVolumeGrowsWithDapDegree) {
  // The §2.3 observation: DAP adds communication; higher degrees exchange
  // a larger fraction of the activations.
  ModuleFixture fx;
  model::MSARowAttentionWithPairBias module(fx.store, "row2", fx.cfg, fx.rng);
  uint64_t bytes2 = 0, bytes4 = 0;
  for (int n : {2, 4}) {
    Communicator comm(n);
    run_ranks(n, [&](int rank) {
      Tensor msa_shard = shard_axis0(fx.msa, rank, n);
      Tensor pair_shard = shard_axis0(fx.pair, rank, n);
      sharded_row_attention(module, comm, rank, msa_shard, pair_shard,
                            fx.cfg.crop_len);
    });
    (n == 2 ? bytes2 : bytes4) = comm.stats().total_bytes();
  }
  EXPECT_GT(bytes4, bytes2);
}


TEST(Communicator, ReduceScatterMatchesAllReduceSlice) {
  const int n = 4;
  Communicator comm(n);
  std::vector<std::vector<float>> fulls(n), slices(n, std::vector<float>(3));
  for (int r = 0; r < n; ++r) {
    fulls[r].resize(12);
    for (int i = 0; i < 12; ++i) fulls[r][i] = r * 100.0f + i;
  }
  auto reduced = fulls[0];
  for (int i = 0; i < 12; ++i) {
    reduced[i] = 0;
    for (int r = 0; r < n; ++r) reduced[i] += fulls[r][i];
  }
  run_ranks(n, [&](int rank) {
    comm.reduce_scatter_sum(rank, fulls[rank], slices[rank]);
  });
  for (int rank = 0; rank < n; ++rank) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(slices[rank][i], reduced[rank * 3 + i]);
    }
  }
  EXPECT_GT(comm.stats().bytes_scattered, 0u);
}

TEST(ShardedModules, BiasGatherRowAttentionMatchesUnsharded) {
  ModuleFixture fx;
  model::MSARowAttentionWithPairBias module(fx.store, "rowbg", fx.cfg, fx.rng);
  autograd::NoGradGuard no_grad;
  Tensor expect = module(autograd::Var(fx.msa, false),
                         autograd::Var(fx.pair, false), nullptr)
                      .value();
  for (int n : {2, 4}) {
    Communicator naive_comm(n), opt_comm(n);
    std::vector<Tensor> outs(n);
    run_ranks(n, [&](int rank) {
      Tensor msa_shard = shard_axis0(fx.msa, rank, n);
      Tensor pair_shard = shard_axis0(fx.pair, rank, n);
      // Count naive volume for the comparison below.
      sharded_row_attention(module, naive_comm, rank, msa_shard, pair_shard,
                            fx.cfg.crop_len);
      outs[rank] = sharded_row_attention_biasgather(
          module, opt_comm, rank, msa_shard, pair_shard, fx.cfg.crop_len);
    });
    for (int rank = 0; rank < n; ++rank) {
      Tensor expect_shard = shard_axis0(expect, rank, n);
      EXPECT_LT(outs[rank].max_abs_diff(expect_shard), 1e-5f)
          << "DAP-" << n << " rank " << rank;
    }
    // The optimization: gather H per pair instead of c_z per pair.
    EXPECT_LT(opt_comm.stats().total_bytes() * 2,
              naive_comm.stats().total_bytes());
  }
}

TEST(ShardedModules, ScatterOpmMatchesUnshardedSlice) {
  ModuleFixture fx;
  model::OuterProductMean module(fx.store, "opmsc", fx.cfg, fx.rng);
  autograd::NoGradGuard no_grad;
  Tensor expect = module(autograd::Var(fx.msa, false)).value();
  for (int n : {2, 4}) {
    Communicator naive_comm(n), opt_comm(n);
    std::vector<Tensor> outs(n);
    run_ranks(n, [&](int rank) {
      Tensor msa_shard = shard_axis0(fx.msa, rank, n);
      sharded_outer_product_mean(module, naive_comm, rank, msa_shard,
                                 fx.cfg.msa_rows);
      outs[rank] = sharded_outer_product_mean_scatter(module, opt_comm, rank,
                                                      msa_shard,
                                                      fx.cfg.msa_rows);
    });
    for (int rank = 0; rank < n; ++rank) {
      Tensor expect_slice = shard_axis0(expect, rank, n);
      EXPECT_LT(outs[rank].max_abs_diff(expect_slice), 1e-4f)
          << "DAP-" << n << " rank " << rank;
    }
    // Project-then-reduce-scatter moves far fewer bytes than the naive
    // all-reduce of [R,R,u*v] partials.
    EXPECT_LT(opt_comm.stats().total_bytes() * 2,
              naive_comm.stats().total_bytes());
  }
}


TEST(ShardedModules, TriangleMultiplyMatchesUnsharded) {
  ModuleFixture fx;
  Rng rng2(12);
  for (bool outgoing : {true, false}) {
    model::ParamStore store;
    model::TriangleMultiplication module(
        store, outgoing ? "tmo" : "tmi", outgoing, fx.cfg, rng2);
    autograd::NoGradGuard no_grad;
    Tensor expect = module(autograd::Var(fx.pair, false)).value();
    for (int n : {2, 4}) {
      Communicator comm(n);
      std::vector<Tensor> outs(n);
      run_ranks(n, [&](int rank) {
        Tensor pair_shard = shard_axis0(fx.pair, rank, n);
        outs[rank] = sharded_triangle_multiply(module, comm, rank, pair_shard,
                                               fx.cfg.crop_len);
      });
      for (int rank = 0; rank < n; ++rank) {
        Tensor expect_shard = shard_axis0(expect, rank, n);
        EXPECT_LT(outs[rank].max_abs_diff(expect_shard), 1e-4f)
            << (outgoing ? "outgoing" : "incoming") << " DAP-" << n
            << " rank " << rank;
      }
    }
  }
}

TEST(ShardedModules, TriangleAttentionMatchesUnsharded) {
  ModuleFixture fx;
  Rng rng2(13);
  for (bool starting : {true, false}) {
    model::ParamStore store;
    model::TriangleAttention module(store, starting ? "tas" : "tae",
                                    starting, fx.cfg, rng2);
    autograd::NoGradGuard no_grad;
    Tensor expect = module(autograd::Var(fx.pair, false)).value();
    for (int n : {2, 4}) {
      Communicator comm(n);
      std::vector<Tensor> outs(n);
      run_ranks(n, [&](int rank) {
        Tensor pair_shard = shard_axis0(fx.pair, rank, n);
        outs[rank] = sharded_triangle_attention(module, comm, rank,
                                                pair_shard, fx.cfg.crop_len);
      });
      for (int rank = 0; rank < n; ++rank) {
        Tensor expect_shard = shard_axis0(expect, rank, n);
        EXPECT_LT(outs[rank].max_abs_diff(expect_shard), 1e-4f)
            << (starting ? "starting" : "ending") << " DAP-" << n << " rank "
            << rank;
      }
    }
  }
}

TEST(ShardedModules, FullEvoformerBlockMatchesUnsharded) {
  // The flagship DAP equivalence: one complete Evoformer block — all nine
  // modules with residual wiring — sharded across ranks, bit-close to the
  // reference block.
  ModuleFixture fx;
  Rng rng2(14);
  model::ParamStore store;
  model::EvoformerBlock block(store, "blk", fx.cfg, rng2);
  autograd::NoGradGuard no_grad;
  auto expect = block({autograd::Var(fx.msa, false),
                       autograd::Var(fx.pair, false)},
                      nullptr);
  for (int n : {2, 4}) {
    Communicator comm(n);
    std::vector<BlockShards> outs(n);
    run_ranks(n, [&](int rank) {
      Tensor msa_shard = shard_axis0(fx.msa, rank, n);
      Tensor pair_shard = shard_axis0(fx.pair, rank, n);
      outs[rank] = sharded_evoformer_block(block, comm, rank, msa_shard,
                                           pair_shard, fx.cfg.msa_rows,
                                           fx.cfg.crop_len);
    });
    for (int rank = 0; rank < n; ++rank) {
      Tensor expect_msa = shard_axis0(expect.msa.value(), rank, n);
      Tensor expect_pair = shard_axis0(expect.pair.value(), rank, n);
      EXPECT_LT(outs[rank].msa.max_abs_diff(expect_msa), 5e-4f)
          << "msa DAP-" << n << " rank " << rank;
      EXPECT_LT(outs[rank].pair.max_abs_diff(expect_pair), 5e-4f)
          << "pair DAP-" << n << " rank " << rank;
    }
    EXPECT_GE(comm.stats().collectives, 8u);  // every boundary communicated
  }
}

// ---- abort/recover coverage for the *blocking* collectives -----------------
//
// abort() originally only woke async waiters; a rank dying before a
// blocking all_gather/reduce_scatter left its peers parked in the
// rendezvous barrier forever. These tests pin the fixed behavior: peers
// throw in bounded time, and after recover() the same communicator runs
// the collective cleanly.

/// One rank dies at the collective's entry fault point; survivors run the
/// collective and must throw (not hang). Returns seconds until all
/// threads joined.
template <typename CollectiveFn>
double run_with_dead_rank(Communicator& comm, int n, const std::string& site,
                          int dead_rank, const CollectiveFn& fn,
                          int* survivor_throws) {
  fault::SiteConfig kill;
  kill.kill = true;
  // Fire for the dead rank's hit only: ranks hit the site in arbitrary
  // order, so target by rank via context-free probability 1 and let the
  // test kill whichever rank hits first — the protocol is symmetric.
  kill.max_fires = 1;
  fault::arm(site, kill);
  std::atomic<int> throws{0};
  const auto t0 = std::chrono::steady_clock::now();
  run_ranks(n, [&](int rank) {
    try {
      fn(rank);
    } catch (const fault::WorkerKill&) {
      // The "dead" rank: wake the peers it abandoned.
      comm.abort("rank " + std::to_string(rank) + " died at " + site);
    } catch (const Error&) {
      throws.fetch_add(1);
    }
  });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  fault::reset();
  *survivor_throws = throws.load();
  (void)dead_rank;
  return elapsed;
}

TEST(CommunicatorAbort, AllGatherPeersDoNotHangOnDeadRank) {
  const int n = 4;
  Communicator comm(n);
  std::vector<std::vector<float>> outs(n, std::vector<float>(n * 2));
  auto collective = [&](int rank) {
    std::vector<float> chunk = {float(rank), float(rank) + 0.5f};
    comm.all_gather(rank, chunk, outs[rank]);
  };
  int survivor_throws = 0;
  const double elapsed = run_with_dead_rank(comm, n, "dap.all_gather",
                                            /*dead_rank=*/0, collective,
                                            &survivor_throws);
  EXPECT_EQ(survivor_throws, n - 1);
  EXPECT_LT(elapsed, 10.0) << "peers hung after rank death in all_gather";

  // recover() returns the same communicator to service.
  comm.recover();
  run_ranks(n, collective);
  for (int rank = 0; rank < n; ++rank) {
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(outs[rank][2 * r], float(r));
      EXPECT_EQ(outs[rank][2 * r + 1], float(r) + 0.5f);
    }
  }
}

TEST(CommunicatorAbort, ReduceScatterPeersDoNotHangOnDeadRank) {
  const int n = 4;
  Communicator comm(n);
  std::vector<std::vector<float>> outs(n, std::vector<float>(2));
  auto collective = [&](int rank) {
    std::vector<float> full(2 * n, float(rank + 1));
    comm.reduce_scatter_sum(rank, full, outs[rank]);
  };
  int survivor_throws = 0;
  const double elapsed = run_with_dead_rank(comm, n, "dap.reduce_scatter",
                                            /*dead_rank=*/0, collective,
                                            &survivor_throws);
  EXPECT_EQ(survivor_throws, n - 1);
  EXPECT_LT(elapsed, 10.0)
      << "peers hung after rank death in reduce_scatter";

  comm.recover();
  run_ranks(n, collective);
  const float expect = 1.0f + 2.0f + 3.0f + 4.0f;
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_EQ(outs[rank][0], expect);
    EXPECT_EQ(outs[rank][1], expect);
  }
}

TEST(CommunicatorAbort, BlockingAllReduceAndAllToAllAbortable) {
  const int n = 3;
  Communicator comm(n);
  for (const char* site : {"dap.all_reduce", "dap.all_to_all"}) {
    SCOPED_TRACE(site);
    std::vector<std::vector<float>> bufs(n, std::vector<float>(n));
    auto collective = [&](int rank) {
      if (std::string(site) == "dap.all_reduce") {
        comm.all_reduce_sum(rank, bufs[rank]);
      } else {
        std::vector<float> recv(n);
        comm.all_to_all(rank, bufs[rank], recv);
      }
    };
    int survivor_throws = 0;
    const double elapsed =
        run_with_dead_rank(comm, n, site, 0, collective, &survivor_throws);
    EXPECT_EQ(survivor_throws, n - 1);
    EXPECT_LT(elapsed, 10.0);
    comm.recover();
    // Clean run after recovery.
    for (auto& b : bufs) b.assign(n, 1.0f);
    run_ranks(n, collective);
  }
}

/// Abort raised from *outside* any collective (e.g. a rank that died in
/// compute before reaching the rendezvous) still frees peers already
/// parked inside one.
TEST(CommunicatorAbort, ExternalAbortWakesParkedBarrier) {
  const int n = 3;
  Communicator comm(n);
  std::atomic<int> throws{0};
  run_ranks(n, [&](int rank) {
    if (rank == 0) {
      // Simulated dead rank: never joins the barrier; gives peers time to
      // park, then aborts.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      comm.abort("rank 0 lost");
      return;
    }
    try {
      comm.barrier(rank);
    } catch (const Error&) {
      throws.fetch_add(1);
    }
  });
  EXPECT_EQ(throws.load(), n - 1);
  comm.recover();
  run_ranks(n, [&](int rank) { comm.barrier(rank); });
}

}  // namespace
}  // namespace sf::dap
