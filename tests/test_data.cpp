// Tests for the synthetic protein dataset and featurization (the
// OpenFold-data substitute reproducing Fig. 4's preparation-time spread).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/protein_sample.h"

namespace sf::data {
namespace {

DatasetConfig small_config() {
  DatasetConfig c;
  c.num_samples = 50;
  c.crop_len = 24;
  c.msa_rows = 4;
  c.msa_work_cap = 300;
  c.seed = 123;
  return c;
}

TEST(Dataset, MetadataDeterministicAcrossInstances) {
  SyntheticProteinDataset a(small_config());
  SyntheticProteinDataset b(small_config());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.meta(i).seq_len, b.meta(i).seq_len);
    EXPECT_EQ(a.meta(i).msa_depth, b.meta(i).msa_depth);
  }
}

TEST(Dataset, MetaRespectsBounds) {
  auto cfg = small_config();
  cfg.num_samples = 500;
  SyntheticProteinDataset ds(cfg);
  for (const auto& m : ds.all_meta()) {
    EXPECT_GE(m.seq_len, cfg.min_seq_len);
    EXPECT_LE(m.seq_len, cfg.max_seq_len);
    EXPECT_GE(m.msa_depth, cfg.min_msa_depth);
    EXPECT_LE(m.msa_depth, cfg.max_msa_depth);
  }
}

TEST(Dataset, LengthDistributionIsLongTailed) {
  auto cfg = small_config();
  cfg.num_samples = 2000;
  SyntheticProteinDataset ds(cfg);
  std::vector<int64_t> lens;
  for (const auto& m : ds.all_meta()) lens.push_back(m.seq_len);
  std::sort(lens.begin(), lens.end());
  int64_t median = lens[lens.size() / 2];
  int64_t p99 = lens[lens.size() * 99 / 100];
  EXPECT_GT(median, 100);
  EXPECT_LT(median, 400);
  EXPECT_GT(p99, 3 * median);  // heavy tail
}

TEST(Dataset, SequenceDeterministicAndInAlphabet) {
  SyntheticProteinDataset ds(small_config());
  auto s1 = ds.sequence(3);
  auto s2 = ds.sequence(3);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(static_cast<int64_t>(s1.size()), ds.meta(3).seq_len);
  for (int8_t aa : s1) {
    EXPECT_GE(aa, 0);
    EXPECT_LT(aa, kNumAminoAcids);
  }
}

TEST(Dataset, BatchShapesMatchConfig) {
  auto cfg = small_config();
  SyntheticProteinDataset ds(cfg);
  Batch b = ds.prepare_batch(0);
  EXPECT_EQ(b.index, 0);
  EXPECT_EQ(b.seq_onehot.shape(), Shape({cfg.crop_len, kNumAminoAcids}));
  EXPECT_EQ(b.msa_feat.shape(),
            Shape({cfg.msa_rows, cfg.crop_len, kMsaFeatDim}));
  EXPECT_EQ(b.target_pos.shape(), Shape({cfg.crop_len, 3}));
  EXPECT_EQ(b.residue_mask.shape(), Shape({cfg.crop_len}));
  EXPECT_GT(b.prep_seconds, 0.0);
}

TEST(Dataset, BatchDeterministicPerIndex) {
  SyntheticProteinDataset ds(small_config());
  Batch a = ds.prepare_batch(7);
  Batch b = ds.prepare_batch(7);
  EXPECT_EQ(a.msa_feat.max_abs_diff(b.msa_feat), 0.0f);
  EXPECT_EQ(a.target_pos.max_abs_diff(b.target_pos), 0.0f);
}

TEST(Dataset, OneHotRowsSumToOneWhereValid) {
  SyntheticProteinDataset ds(small_config());
  Batch b = ds.prepare_batch(1);
  for (int64_t i = 0; i < b.residue_mask.numel(); ++i) {
    float sum = 0;
    for (int64_t a = 0; a < kNumAminoAcids; ++a) {
      sum += b.seq_onehot.at(i * kNumAminoAcids + a);
    }
    if (b.residue_mask.at(i) > 0.5f) {
      EXPECT_EQ(sum, 1.0f);
    } else {
      EXPECT_EQ(sum, 0.0f);
    }
  }
}

TEST(Dataset, ShortSequencePadsAndMasks) {
  auto cfg = small_config();
  cfg.crop_len = 64;
  cfg.min_seq_len = 16;
  cfg.max_seq_len = 20;  // force sequences shorter than the crop
  cfg.len_log_mean = 2.0;
  SyntheticProteinDataset ds(cfg);
  Batch b = ds.prepare_batch(0);
  int64_t valid = 0;
  for (int64_t i = 0; i < 64; ++i) valid += b.residue_mask.at(i) > 0.5f;
  EXPECT_EQ(valid, ds.meta(0).seq_len);
  // Padding region must be all zeros.
  for (int64_t i = valid; i < 64; ++i) {
    for (int64_t k = 0; k < 3; ++k) EXPECT_EQ(b.target_pos.at(i * 3 + k), 0.0f);
  }
}

TEST(Dataset, TargetCropIsCentered) {
  SyntheticProteinDataset ds(small_config());
  Batch b = ds.prepare_batch(2);
  double cx = 0, cy = 0, cz = 0;
  int64_t n = 0;
  for (int64_t i = 0; i < b.residue_mask.numel(); ++i) {
    if (b.residue_mask.at(i) < 0.5f) continue;
    cx += b.target_pos.at(i * 3);
    cy += b.target_pos.at(i * 3 + 1);
    cz += b.target_pos.at(i * 3 + 2);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(cx / n, 0.0, 1e-3);
  EXPECT_NEAR(cy / n, 0.0, 1e-3);
  EXPECT_NEAR(cz / n, 0.0, 1e-3);
}

TEST(FoldBackbone, VirtualBondLengthsConstant) {
  SyntheticProteinDataset ds(small_config());
  auto seq = ds.sequence(0);
  auto pos = SyntheticProteinDataset::fold_backbone(seq);
  for (size_t i = 1; i < seq.size(); ++i) {
    double dx = pos[i * 3] - pos[(i - 1) * 3];
    double dy = pos[i * 3 + 1] - pos[(i - 1) * 3 + 1];
    double dz = pos[i * 3 + 2] - pos[(i - 1) * 3 + 2];
    EXPECT_NEAR(std::sqrt(dx * dx + dy * dy + dz * dz), 3.8, 1e-3);
  }
}

TEST(FoldBackbone, StructureDependsOnSequence) {
  std::vector<int8_t> seq_a(30, 3), seq_b(30, 3);
  seq_b[10] = 15;  // single mutation
  auto pa = SyntheticProteinDataset::fold_backbone(seq_a);
  auto pb = SyntheticProteinDataset::fold_backbone(seq_b);
  // Identical before the mutation...
  for (int i = 0; i < 10 * 3; ++i) EXPECT_EQ(pa[i], pb[i]);
  // ...diverging after it.
  double diff = 0;
  for (size_t i = 12 * 3; i < pa.size(); ++i) diff += std::fabs(pa[i] - pb[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(FoldBackbone, CompactNotColinear) {
  // The fold must curl (turn angles), not extend in a straight line.
  std::vector<int8_t> seq(50, 7);
  auto pos = SyntheticProteinDataset::fold_backbone(seq);
  double end_dist = 0;
  for (int k = 0; k < 3; ++k) {
    double d = pos[49 * 3 + k] - pos[k];
    end_dist += d * d;
  }
  end_dist = std::sqrt(end_dist);
  EXPECT_LT(end_dist, 49 * 3.8 * 0.9);  // shorter than a straight chain
}

TEST(Dataset, PrepTimeGrowsWithWork) {
  // Preparation cost must scale with seq_len x msa_depth — the mechanism
  // behind Fig. 4. Compare the biggest and smallest samples of a batch.
  auto cfg = small_config();
  cfg.num_samples = 300;
  SyntheticProteinDataset ds(cfg);
  int64_t big = 0, small = 0;
  auto work = [&](int64_t i) {
    const auto& m = ds.meta(i);
    return m.seq_len * std::min(m.msa_depth, cfg.msa_work_cap);
  };
  for (int64_t i = 1; i < ds.size(); ++i) {
    if (work(i) > work(big)) big = i;
    if (work(i) < work(small)) small = i;
  }
  ASSERT_GT(work(big), 20 * work(small));
  // Median of 3 to de-noise timing.
  auto timed = [&](int64_t idx) {
    std::vector<double> t;
    for (int r = 0; r < 3; ++r) t.push_back(ds.prepare_batch(idx).prep_seconds);
    std::sort(t.begin(), t.end());
    return t[1];
  };
  EXPECT_GT(timed(big), timed(small) * 3);
}

TEST(Dataset, InvalidIndexThrows) {
  SyntheticProteinDataset ds(small_config());
  EXPECT_THROW(ds.meta(-1), Error);
  EXPECT_THROW(ds.meta(ds.size()), Error);
}


TEST(Dataset, TemplateFeaturesAreValidDistograms) {
  SyntheticProteinDataset ds(small_config());
  Batch b = ds.prepare_batch(0);
  const int64_t crop = ds.config().crop_len;
  ASSERT_EQ(b.template_feat.shape(), Shape({crop, crop, kTemplateBins}));
  int64_t valid = 0;
  for (int64_t i = 0; i < crop; ++i) valid += b.residue_mask.at(i) > 0.5f;
  for (int64_t i = 0; i < crop; ++i) {
    for (int64_t j = 0; j < crop; ++j) {
      float sum = 0;
      for (int64_t k = 0; k < kTemplateBins; ++k) {
        sum += b.template_feat.at((i * crop + j) * kTemplateBins + k);
      }
      if (i < valid && j < valid) {
        EXPECT_EQ(sum, 1.0f) << i << "," << j;  // one-hot bin
      } else {
        EXPECT_EQ(sum, 0.0f);  // padding
      }
    }
  }
  // Diagonal distance is zero => first bin.
  EXPECT_EQ(b.template_feat.at(0), 1.0f);
}

TEST(Dataset, TemplateIsRelatedButNotIdenticalToTarget) {
  // The homolog's distogram should correlate with the target's (same
  // backbone family) without being a copy of it.
  auto cfg = small_config();
  cfg.crop_len = 32;
  SyntheticProteinDataset ds(cfg);
  Batch b = ds.prepare_batch(1);
  const int64_t crop = cfg.crop_len;
  int64_t same_bin = 0, total = 0;
  const float* t = b.target_pos.data();
  for (int64_t i = 0; i < crop; ++i) {
    if (b.residue_mask.at(i) < 0.5f) continue;
    for (int64_t j = 0; j < crop; ++j) {
      if (j == i || b.residue_mask.at(j) < 0.5f) continue;
      float dx = t[i * 3] - t[j * 3];
      float dy = t[i * 3 + 1] - t[j * 3 + 1];
      float dz = t[i * 3 + 2] - t[j * 3 + 2];
      float d = std::sqrt(dx * dx + dy * dy + dz * dz);
      int64_t target_bin = std::min<int64_t>(
          static_cast<int64_t>(d / kTemplateBinWidth), kTemplateBins - 1);
      if (b.template_feat.at((i * crop + j) * kTemplateBins + target_bin) >
          0.5f) {
        ++same_bin;
      }
      ++total;
    }
  }
  ASSERT_GT(total, 0);
  double agreement = static_cast<double>(same_bin) / total;
  EXPECT_GT(agreement, 0.3);  // related fold
  EXPECT_LT(agreement, 0.999);  // not a copy of the answer
}

}  // namespace
}  // namespace sf::data
