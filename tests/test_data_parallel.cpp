// Tests for the in-process data-parallel trainer: replica lockstep,
// equivalence with gradient accumulation, and communication accounting.
#include <gtest/gtest.h>

#include "data/protein_sample.h"
#include "train/data_parallel.h"

namespace sf::train {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig c;
  c.crop_len = 10;
  c.msa_rows = 3;
  c.c_m = 8;
  c.c_z = 8;
  c.c_s = 8;
  c.heads = 2;
  c.head_dim = 4;
  c.evoformer_blocks = 1;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 2;
  c.transition_factor = 2;
  c.structure_layers = 1;
  return c;
}

std::vector<data::Batch> make_batches(int n) {
  data::DatasetConfig c;
  c.num_samples = n;
  c.crop_len = 10;
  c.msa_rows = 3;
  c.msa_work_cap = 40;
  c.seed = 23;
  data::SyntheticProteinDataset ds(c);
  std::vector<data::Batch> out;
  for (int i = 0; i < n; ++i) out.push_back(ds.prepare_batch(i));
  return out;
}

TrainConfig train_cfg() {
  TrainConfig tc;
  tc.base_lr = 1e-3f;
  tc.warmup_steps = 0;
  tc.min_recycles = 1;
  tc.max_recycles = 1;
  tc.opt.clip_norm = 5.0f;
  return tc;
}

TEST(DataParallel, ReplicasStayInLockstep) {
  auto batches = make_batches(2);
  DataParallelTrainer dp(tiny_config(), train_cfg(), 2, 41);
  for (int s = 0; s < 3; ++s) {
    dp.train_step(batches);
    EXPECT_EQ(dp.replica_divergence(1), 0.0f) << "step " << s;
  }
  EXPECT_EQ(dp.step_count(), 3);
}

TEST(DataParallel, MatchesGradientAccumulation) {
  // DP over [b0, b1] must equal a single trainer accumulating [b0, b1]:
  // both average the two gradients before one optimizer step.
  auto batches = make_batches(2);

  DataParallelTrainer dp(tiny_config(), train_cfg(), 2, 42);
  dp.train_step(batches);

  model::MiniAlphaFold single(tiny_config(), 42);
  Trainer trainer(single, train_cfg());
  trainer.train_step_accumulated(batches);

  auto dp_params = dp.replica(0).params().all();
  auto single_params = single.params().all();
  ASSERT_EQ(dp_params.size(), single_params.size());
  for (size_t i = 0; i < dp_params.size(); ++i) {
    EXPECT_LT(dp_params[i].value().max_abs_diff(single_params[i].value()),
              2e-4f)
        << "param " << i;
  }
}

TEST(DataParallel, WorldSizeOneMatchesPlainTrainer) {
  auto batches = make_batches(1);
  DataParallelTrainer dp(tiny_config(), train_cfg(), 1, 43);
  auto r = dp.train_step({batches.data(), 1});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_EQ(dp.comm_stats().bytes_reduced, 0u);  // n=1: reduction is free
}

TEST(DataParallel, CommVolumeMatchesParameterCount) {
  auto batches = make_batches(4);
  DataParallelTrainer dp(tiny_config(), train_cfg(), 4, 44);
  dp.train_step(batches);
  // Ring all-reduce accounting: 2*(n-1)/n of the gradient bytes per step.
  const uint64_t param_bytes =
      sizeof(float) * dp.replica(0).params().total_elements();
  const uint64_t expect = 2.0 * param_bytes * 3 / 4;
  EXPECT_NEAR(static_cast<double>(dp.comm_stats().bytes_reduced),
              static_cast<double>(expect), expect * 0.05);
}

TEST(DataParallel, WrongBatchCountThrows) {
  auto batches = make_batches(1);
  DataParallelTrainer dp(tiny_config(), train_cfg(), 2, 45);
  EXPECT_THROW(dp.train_step({batches.data(), 1}), Error);
}

TEST(DataParallel, LossDecreasesAcrossSteps) {
  auto batches = make_batches(2);
  DataParallelTrainer dp(tiny_config(), train_cfg(), 2, 46);
  float first = 0, last = 0;
  for (int s = 0; s < 12; ++s) {
    auto r = dp.train_step(batches);
    if (s == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace sf::train
