// Elastic world-size tests: a rank killed mid-step shrinks the
// DataParallelTrainer in place (no checkpoint), survivors stay
// bit-identical, grow_to() re-adds ranks from in-memory state, the
// gradient-bucket layout is invariant across resizes, and an identical
// fault schedule + seed replays to bit-identical parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/fault.h"
#include "data/protein_sample.h"
#include "train/data_parallel.h"

namespace sf::train {
namespace {

model::ModelConfig tiny_config() {
  model::ModelConfig c;
  c.crop_len = 10;
  c.msa_rows = 3;
  c.c_m = 8;
  c.c_z = 8;
  c.c_s = 8;
  c.heads = 2;
  c.head_dim = 4;
  c.evoformer_blocks = 1;
  c.use_extra_msa_stack = false;
  c.use_template_stack = false;
  c.opm_dim = 2;
  c.transition_factor = 2;
  c.structure_layers = 1;
  return c;
}

std::vector<data::Batch> make_batches(int n) {
  data::DatasetConfig c;
  c.num_samples = n;
  c.crop_len = 10;
  c.msa_rows = 3;
  c.msa_work_cap = 40;
  c.seed = 23;
  data::SyntheticProteinDataset ds(c);
  std::vector<data::Batch> out;
  for (int i = 0; i < n; ++i) out.push_back(ds.prepare_batch(i));
  return out;
}

TrainConfig elastic_cfg(bool overlap = true) {
  TrainConfig tc;
  tc.base_lr = 1e-3f;
  tc.warmup_steps = 0;
  tc.min_recycles = 1;
  tc.max_recycles = 1;
  tc.opt.clip_norm = 5.0f;
  tc.overlap_grad_comm = overlap;
  tc.elastic_world = true;
  return tc;
}

void arm_kill(const char* site, int64_t skip_hits = 0) {
  fault::SiteConfig cfg;
  cfg.kill = true;
  cfg.skip_hits = skip_hits;
  cfg.max_fires = 1;
  fault::arm(site, cfg);
}

std::span<const data::Batch> first_n(const std::vector<data::Batch>& b,
                                     int n) {
  return {b.data(), static_cast<size_t>(n)};
}

class ElasticTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::reset(); }
};

TEST_F(ElasticTest, KillAtStepBoundaryShrinksAndSurvivorsStayInLockstep) {
  auto batches = make_batches(4);
  DataParallelTrainer dp(tiny_config(), elastic_cfg(), 4, 41);
  dp.train_step(first_n(batches, 4));
  dp.train_step(first_n(batches, 4));
  ASSERT_EQ(dp.step_count(), 2);

  arm_kill("ddp.rank_step");
  auto r = dp.train_step(first_n(batches, 4));
  fault::reset();

  EXPECT_EQ(r.ranks_lost, 1);
  EXPECT_TRUE(r.lost_to_fault);  // kill precedes the commit barrier
  EXPECT_EQ(dp.world_size(), 3);
  EXPECT_EQ(dp.step_count(), 2);  // discarded step does not count

  ASSERT_EQ(dp.elastic_events().size(), 1u);
  const auto& ev = dp.elastic_events()[0];
  EXPECT_EQ(ev.old_world_size, 4);
  EXPECT_EQ(ev.new_world_size, 3);
  EXPECT_EQ(ev.ranks_lost, 1);
  EXPECT_EQ(ev.steps_lost, 1);
  EXPECT_GT(ev.recovery_seconds, 0.0);

  // Re-issue the step at the new world size and keep training: survivors
  // must remain bit-identical and the loss finite.
  for (int s = 0; s < 3; ++s) {
    auto rr = dp.train_step(first_n(batches, 3));
    EXPECT_EQ(rr.ranks_lost, 0);
    EXPECT_TRUE(std::isfinite(rr.loss));
    for (int rank = 1; rank < dp.world_size(); ++rank) {
      EXPECT_EQ(dp.replica_divergence(rank), 0.0f) << "rank " << rank;
    }
  }
  EXPECT_EQ(dp.step_count(), 5);
}

TEST_F(ElasticTest, KillDuringBucketDrainDiscardsStepAtomically) {
  // The kill fires deep inside the overlapped path, after async buckets
  // were launched — peers parked on bucket waits or the commit barrier
  // must all throw (nobody commits) and the shrink proceeds.
  auto batches = make_batches(4);
  DataParallelTrainer dp(tiny_config(), elastic_cfg(), 4, 42);
  dp.train_step(first_n(batches, 4));

  arm_kill("ddp.bucket_wait", /*skip_hits=*/2);
  auto r = dp.train_step(first_n(batches, 4));
  fault::reset();

  EXPECT_EQ(r.ranks_lost, 1);
  EXPECT_TRUE(r.lost_to_fault);
  EXPECT_EQ(dp.world_size(), 3);
  auto rr = dp.train_step(first_n(batches, 3));
  EXPECT_TRUE(std::isfinite(rr.loss));
  for (int rank = 1; rank < dp.world_size(); ++rank) {
    EXPECT_EQ(dp.replica_divergence(rank), 0.0f);
  }
}

TEST_F(ElasticTest, BlockingPathIsElasticToo) {
  auto batches = make_batches(3);
  DataParallelTrainer dp(tiny_config(), elastic_cfg(/*overlap=*/false), 3,
                         43);
  dp.train_step(first_n(batches, 3));

  // Fire inside the blocking per-parameter all-reduce: peers are parked
  // in the rendezvous barrier and must be woken by the abort.
  arm_kill("dap.all_reduce", /*skip_hits=*/5);
  auto r = dp.train_step(first_n(batches, 3));
  fault::reset();

  EXPECT_EQ(r.ranks_lost, 1);
  EXPECT_TRUE(r.lost_to_fault);
  EXPECT_EQ(dp.world_size(), 2);
  auto rr = dp.train_step(first_n(batches, 2));
  EXPECT_TRUE(std::isfinite(rr.loss));
  EXPECT_EQ(dp.replica_divergence(1), 0.0f);
}

TEST_F(ElasticTest, GrowClonesParamsAndOptimizerStateInMemory) {
  auto batches = make_batches(4);
  DataParallelTrainer dp(tiny_config(), elastic_cfg(), 2, 44);
  for (int s = 0; s < 3; ++s) dp.train_step(first_n(batches, 2));

  dp.grow_to(4);
  EXPECT_EQ(dp.world_size(), 4);
  for (int rank = 1; rank < 4; ++rank) {
    EXPECT_EQ(dp.replica_divergence(rank), 0.0f) << "after grow";
  }
  // If optimizer/SWA state had not been cloned, Adam moments would differ
  // on the new ranks and replicas would diverge on the first update.
  for (int s = 0; s < 2; ++s) {
    auto r = dp.train_step(first_n(batches, 4));
    EXPECT_TRUE(std::isfinite(r.loss));
    for (int rank = 1; rank < 4; ++rank) {
      EXPECT_EQ(dp.replica_divergence(rank), 0.0f) << "after step " << s;
    }
  }
  ASSERT_EQ(dp.elastic_events().size(), 1u);
  EXPECT_EQ(dp.elastic_events()[0].old_world_size, 2);
  EXPECT_EQ(dp.elastic_events()[0].new_world_size, 4);
  EXPECT_EQ(dp.elastic_events()[0].ranks_lost, 0);
}

TEST_F(ElasticTest, BucketLayoutIsInvariantAcrossResizes) {
  auto batches = make_batches(4);
  DataParallelTrainer dp(tiny_config(), elastic_cfg(), 4, 45);
  const BucketStore* before = dp.bucket_store(0);
  ASSERT_NE(before, nullptr);
  const int nb = before->num_buckets();
  std::vector<std::vector<BucketSlice>> layout;
  for (int b = 0; b < nb; ++b) layout.push_back(before->bucket(b));

  dp.train_step(first_n(batches, 4));
  dp.shrink_to(2);
  dp.train_step(first_n(batches, 2));
  dp.grow_to(4);

  // Deterministic re-bucketing: same parameter list => same layout, on
  // every rank, before and after shrink and grow.
  for (int rank = 0; rank < dp.world_size(); ++rank) {
    const BucketStore* after = dp.bucket_store(rank);
    ASSERT_NE(after, nullptr);
    ASSERT_EQ(after->num_buckets(), nb) << "rank " << rank;
    for (int b = 0; b < nb; ++b) {
      const auto& slices = after->bucket(b);
      ASSERT_EQ(slices.size(), layout[b].size());
      for (size_t j = 0; j < slices.size(); ++j) {
        EXPECT_EQ(slices[j].param_index, layout[b][j].param_index);
        EXPECT_EQ(slices[j].offset, layout[b][j].offset);
        EXPECT_EQ(slices[j].numel, layout[b][j].numel);
      }
    }
  }
}

TEST_F(ElasticTest, ShrinkGrowDifferentialReplaysBitIdentically) {
  // The ISSUE acceptance scenario: ws4 -> (kill) ws3 -> shrink_to(2) ->
  // grow_to(4), training throughout; then the whole run — including the
  // kill, injected from the same schedule — replays to bit-identical
  // parameters. Which rank dies may differ between runs (threads race to
  // the fault point) but the surviving state is rank-agnostic.
  auto batches = make_batches(4);
  auto run = [&](std::vector<float>* out_params) {
    fault::reset();
    DataParallelTrainer dp(tiny_config(), elastic_cfg(), 4, 46);
    dp.train_step(first_n(batches, 4));

    arm_kill("ddp.rank_step");
    auto r = dp.train_step(first_n(batches, 4));
    fault::reset();
    EXPECT_EQ(r.ranks_lost, 1);
    EXPECT_EQ(dp.world_size(), 3);
    dp.train_step(first_n(batches, 3));  // re-issued step

    dp.shrink_to(2);
    dp.train_step(first_n(batches, 2));
    dp.grow_to(4);
    dp.train_step(first_n(batches, 4));

    EXPECT_EQ(dp.step_count(), 4);
    for (int rank = 1; rank < dp.world_size(); ++rank) {
      EXPECT_EQ(dp.replica_divergence(rank), 0.0f);
    }
    out_params->clear();
    for (const auto& p : dp.replica(0).params().all()) {
      const float* d = p.value().data();
      out_params->insert(out_params->end(), d, d + p.value().numel());
    }
  };

  std::vector<float> a, b;
  run(&a);
  run(&b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "param element " << i;
  }
}

TEST_F(ElasticTest, NonElasticModeStillPropagatesKillAsError) {
  auto batches = make_batches(2);
  TrainConfig tc = elastic_cfg();
  tc.elastic_world = false;
  DataParallelTrainer dp(tiny_config(), tc, 2, 47);
  arm_kill("ddp.rank_step");
  EXPECT_THROW(dp.train_step(first_n(batches, 2)), Error);
  fault::reset();
  EXPECT_EQ(dp.world_size(), 2);  // no resize in non-elastic mode
  // The communicator recovered: the trainer remains usable.
  auto r = dp.train_step(first_n(batches, 2));
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_EQ(dp.replica_divergence(1), 0.0f);
}

TEST_F(ElasticTest, ChaosWeatherRunConvergesAndKeepsLockstep) {
  // Randomized fault weather over every ddp/dap site: delay-only jitter
  // plus bounded kills. The run must finish, never hang, never diverge,
  // and end at a smaller-or-equal world size.
  auto batches = make_batches(4);
  DataParallelTrainer dp(tiny_config(), elastic_cfg(), 4, 48);

  fault::ChaosOptions opt;
  opt.seed = 2024;
  opt.mean_probability = 0.01;
  opt.kill_fraction = 0.2;
  opt.delay_fraction = 0.6;
  opt.max_delay_seconds = 1e-4;
  opt.max_fires_per_site = 1;
  opt.max_skip_hits = 8;
  const std::vector<std::string> sites = {
      "ddp.rank_step",   "ddp.bucket_launch", "ddp.bucket_wait",
      "dap.async_reduce"};
  fault::install(fault::random_schedule(sites, opt));

  int steps_done = 0;
  int losses_seen = 0;
  for (int s = 0; s < 10 && dp.world_size() >= 1; ++s) {
    try {
      auto r = dp.train_step(first_n(batches, dp.world_size()));
      if (!r.lost_to_fault) {
        ++steps_done;
        if (std::isfinite(r.loss)) ++losses_seen;
      }
    } catch (const fault::InjectedFault&) {
      // A thrown (non-kill) fault fails the step but the trainer
      // recovered; retry at the same world size.
    } catch (const Error&) {
      // Abort fallout from an injected fault on another rank.
    }
    for (int rank = 1; rank < dp.world_size(); ++rank) {
      ASSERT_EQ(dp.replica_divergence(rank), 0.0f)
          << "diverged under chaos at step " << s;
    }
  }
  fault::reset();
  EXPECT_GT(steps_done, 0);
  EXPECT_EQ(steps_done, losses_seen);
  EXPECT_LE(dp.world_size(), 4);
  EXPECT_GE(dp.world_size(), 1);
}

}  // namespace
}  // namespace sf::train
