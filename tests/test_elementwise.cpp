// Tests for the elementwise kernels and small fusions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "kernels/elementwise.h"

namespace sf::kernels {
namespace {

std::vector<float> randoms(size_t n, uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  fill_normal(rng, v.data(), n, 0.0f, stddev);
  return v;
}

TEST(Relu, ForwardClampsNegatives) {
  std::vector<float> x{-2, -0.5f, 0, 0.5f, 2}, y(5);
  relu_forward(x.data(), y.data(), 5);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 0.0f);
  EXPECT_EQ(y[3], 0.5f);
  EXPECT_EQ(y[4], 2.0f);
}

TEST(Relu, BackwardGatesByInputSign) {
  std::vector<float> x{-1, 1}, dy{5, 7}, dx(2);
  relu_backward(x.data(), dy.data(), dx.data(), 2);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 7.0f);
}

TEST(Gelu, KnownValues) {
  std::vector<float> x{0.0f}, y(1);
  gelu_forward(x.data(), y.data(), 1);
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  x[0] = 10.0f;  // saturates to identity
  gelu_forward(x.data(), y.data(), 1);
  EXPECT_NEAR(y[0], 10.0f, 1e-3f);
  x[0] = -10.0f;  // saturates to zero
  gelu_forward(x.data(), y.data(), 1);
  EXPECT_NEAR(y[0], 0.0f, 1e-3f);
}

TEST(Gelu, BackwardMatchesFiniteDifferences) {
  auto x = randoms(32, 3);
  std::vector<float> dy(32, 1.0f), dx(32);
  gelu_backward(x.data(), dy.data(), dx.data(), 32);
  const float h = 1e-3f;
  for (int i = 0; i < 32; ++i) {
    float xp = x[i] + h, xm = x[i] - h, yp, ym;
    gelu_forward(&xp, &yp, 1);
    gelu_forward(&xm, &ym, 1);
    EXPECT_NEAR(dx[i], (yp - ym) / (2 * h), 2e-3f);
  }
}

TEST(Sigmoid, RangeAndSymmetry) {
  auto x = randoms(64, 5, 3.0f);
  std::vector<float> y(64);
  sigmoid_forward(x.data(), y.data(), 64);
  for (int i = 0; i < 64; ++i) {
    EXPECT_GT(y[i], 0.0f);
    EXPECT_LT(y[i], 1.0f);
  }
  float a = 1.3f, ya, yb, b = -1.3f;
  sigmoid_forward(&a, &ya, 1);
  sigmoid_forward(&b, &yb, 1);
  EXPECT_NEAR(ya + yb, 1.0f, 1e-6f);
}

TEST(Sigmoid, BackwardFromOutput) {
  float x = 0.7f, y, dy = 2.0f, dx;
  sigmoid_forward(&x, &y, 1);
  sigmoid_backward_from_output(&y, &dy, &dx, 1);
  EXPECT_NEAR(dx, 2.0f * y * (1 - y), 1e-6f);
}

TEST(BiasAdd, Broadcasts) {
  std::vector<float> x{1, 2, 3, 4}, bias{10, 20}, y(4);
  bias_add(x.data(), bias.data(), y.data(), 2, 2);
  EXPECT_EQ(y[0], 11.0f);
  EXPECT_EQ(y[1], 22.0f);
  EXPECT_EQ(y[2], 13.0f);
  EXPECT_EQ(y[3], 24.0f);
}

TEST(FusedBiasGelu, MatchesUnfusedPair) {
  const int64_t rows = 8, cols = 16;
  auto x = randoms(rows * cols, 7);
  auto bias = randoms(cols, 8);
  std::vector<float> tmp(rows * cols), y_unfused(rows * cols),
      y_fused(rows * cols);
  bias_add(x.data(), bias.data(), tmp.data(), rows, cols);
  gelu_forward(tmp.data(), y_unfused.data(), rows * cols);
  fused_bias_gelu(x.data(), bias.data(), y_fused.data(), rows, cols);
  for (int64_t i = 0; i < rows * cols; ++i) {
    EXPECT_NEAR(y_unfused[i], y_fused[i], 1e-6f);
  }
}

TEST(AddForward, Adds) {
  std::vector<float> a{1, 2}, b{3, 4}, y(2);
  add_forward(a.data(), b.data(), y.data(), 2);
  EXPECT_EQ(y[0], 4.0f);
  EXPECT_EQ(y[1], 6.0f);
}

TEST(FusedGlu, ForwardMatchesComposition) {
  auto x = randoms(32, 11);
  auto gate = randoms(32, 12);
  std::vector<float> sig(32), expect(32), y(32);
  sigmoid_forward(gate.data(), sig.data(), 32);
  for (int i = 0; i < 32; ++i) expect[i] = sig[i] * x[i];
  fused_glu_forward(x.data(), gate.data(), y.data(), 32);
  for (int i = 0; i < 32; ++i) EXPECT_NEAR(y[i], expect[i], 1e-6f);
}

TEST(FusedGlu, BackwardMatchesFiniteDifferences) {
  auto x = randoms(8, 13);
  auto gate = randoms(8, 14);
  std::vector<float> dy(8, 1.0f), dx(8), dgate(8);
  fused_glu_backward(x.data(), gate.data(), dy.data(), dx.data(), dgate.data(),
                     8);
  const float h = 1e-3f;
  for (int i = 0; i < 8; ++i) {
    auto eval = [&](float xi, float gi) {
      float y;
      fused_glu_forward(&xi, &gi, &y, 1);
      return y;
    };
    float num_dx = (eval(x[i] + h, gate[i]) - eval(x[i] - h, gate[i])) / (2 * h);
    float num_dg = (eval(x[i], gate[i] + h) - eval(x[i], gate[i] - h)) / (2 * h);
    EXPECT_NEAR(dx[i], num_dx, 2e-3f);
    EXPECT_NEAR(dgate[i], num_dg, 2e-3f);
  }
}

}  // namespace
}  // namespace sf::kernels
