// Tests for the deterministic fault-injection framework (sf::fault).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/timer.h"

namespace sf::fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { reset(); }
};

int count_fires(const char* site, int hits) {
  int fired = 0;
  for (int i = 0; i < hits; ++i) {
    try {
      SF_FAULT_POINT(site, i);
    } catch (const InjectedFault&) {
      ++fired;
    }
  }
  return fired;
}

TEST_F(FaultTest, DisarmedSiteIsFreeAndSilent) {
  EXPECT_FALSE(any_armed());
  EXPECT_EQ(count_fires("nothing.armed", 100), 0);
  EXPECT_EQ(stats("nothing.armed").hits, 0);  // untracked while disarmed
}

TEST_F(FaultTest, ArmOnceFiresExactlyOnceOnNthHit) {
  arm_once("t.once", /*on_hit=*/3);
  EXPECT_TRUE(any_armed());
  int fired_at = -1;
  for (int i = 0; i < 10; ++i) {
    try {
      SF_FAULT_POINT("t.once");
    } catch (const InjectedFault& e) {
      fired_at = i;
      EXPECT_EQ(e.site(), "t.once");
    }
  }
  EXPECT_EQ(fired_at, 2);  // 3rd hit, 0-based loop index 2
  EXPECT_EQ(stats("t.once").hits, 10);
  EXPECT_EQ(stats("t.once").fires, 1);
}

TEST_F(FaultTest, MaxFiresCapsInjectedFailures) {
  SiteConfig cfg;
  cfg.max_fires = 4;
  arm("t.cap", cfg);
  EXPECT_EQ(count_fires("t.cap", 50), 4);
}

TEST_F(FaultTest, ProbabilityStreamIsDeterministic) {
  SiteConfig cfg;
  cfg.probability = 0.3;
  cfg.max_fires = -1;
  cfg.seed = 7;
  arm("t.prob", cfg);
  const int first = count_fires("t.prob", 300);
  arm("t.prob", cfg);  // re-arm resets counters and the stream
  const int second = count_fires("t.prob", 300);
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 40);   // ~90 expected
  EXPECT_LT(first, 160);
}

TEST_F(FaultTest, ContextIndexAppearsInMessage) {
  arm_once("t.ctx");
  std::string msg;
  try {
    SF_FAULT_POINT("t.ctx", int64_t{42});
  } catch (const InjectedFault& e) {
    msg = e.what();
  }
  EXPECT_NE(msg.find("t.ctx"), std::string::npos);
  EXPECT_NE(msg.find("42"), std::string::npos);
}

TEST_F(FaultTest, KillConfigThrowsWorkerKillNotInjectedFault) {
  SiteConfig cfg;
  cfg.kill = true;
  arm("t.kill", cfg);
  bool killed = false;
  try {
    SF_FAULT_POINT("t.kill");
  } catch (const InjectedFault&) {
    FAIL() << "kill must not be catchable as InjectedFault";
  } catch (const WorkerKill& e) {
    killed = true;
    EXPECT_EQ(e.site(), "t.kill");
  }
  EXPECT_TRUE(killed);
}

TEST_F(FaultTest, DelayWithoutThrowJustSleeps) {
  SiteConfig cfg;
  cfg.delay_seconds = 0.05;
  cfg.throws = false;
  arm("t.delay", cfg);
  Timer t;
  SF_FAULT_POINT("t.delay");  // must not throw
  EXPECT_GT(t.elapsed(), 0.04);
  SF_FAULT_POINT("t.delay");  // max_fires=1 default: second hit is free
  EXPECT_EQ(stats("t.delay").fires, 1);
}

TEST_F(FaultTest, DisarmStopsFiring) {
  SiteConfig cfg;
  cfg.max_fires = -1;
  arm("t.disarm", cfg);
  EXPECT_EQ(count_fires("t.disarm", 3), 3);
  disarm("t.disarm");
  EXPECT_EQ(count_fires("t.disarm", 3), 0);
  EXPECT_EQ(stats("t.disarm").fires, 3);  // stats survive until reset()
  reset();
  EXPECT_EQ(stats("t.disarm").fires, 0);
}

TEST_F(FaultTest, ConcurrentHitsAreSafeAndCounted) {
  SiteConfig cfg;
  cfg.probability = 0.5;
  cfg.max_fires = -1;
  arm("t.mt", cfg);
  constexpr int kThreads = 8, kHitsEach = 500;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int k = 0; k < kHitsEach; ++k) {
        try {
          SF_FAULT_POINT("t.mt");
        } catch (const InjectedFault&) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto s = stats("t.mt");
  EXPECT_EQ(s.hits, kThreads * kHitsEach);
  EXPECT_GT(s.fires, 0);
  EXPECT_LE(s.fires, s.hits);
}

}  // namespace
}  // namespace sf::fault
