// Tests for the deterministic fault-injection framework (sf::fault).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/timer.h"

namespace sf::fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { reset(); }
};

int count_fires(const char* site, int hits) {
  int fired = 0;
  for (int i = 0; i < hits; ++i) {
    try {
      SF_FAULT_POINT(site, i);
    } catch (const InjectedFault&) {
      ++fired;
    }
  }
  return fired;
}

TEST_F(FaultTest, DisarmedSiteIsFreeAndSilent) {
  EXPECT_FALSE(any_armed());
  EXPECT_EQ(count_fires("nothing.armed", 100), 0);
  EXPECT_EQ(stats("nothing.armed").hits, 0);  // untracked while disarmed
}

TEST_F(FaultTest, ArmOnceFiresExactlyOnceOnNthHit) {
  arm_once("t.once", /*on_hit=*/3);
  EXPECT_TRUE(any_armed());
  int fired_at = -1;
  for (int i = 0; i < 10; ++i) {
    try {
      SF_FAULT_POINT("t.once");
    } catch (const InjectedFault& e) {
      fired_at = i;
      EXPECT_EQ(e.site(), "t.once");
    }
  }
  EXPECT_EQ(fired_at, 2);  // 3rd hit, 0-based loop index 2
  EXPECT_EQ(stats("t.once").hits, 10);
  EXPECT_EQ(stats("t.once").fires, 1);
}

TEST_F(FaultTest, MaxFiresCapsInjectedFailures) {
  SiteConfig cfg;
  cfg.max_fires = 4;
  arm("t.cap", cfg);
  EXPECT_EQ(count_fires("t.cap", 50), 4);
}

TEST_F(FaultTest, ProbabilityStreamIsDeterministic) {
  SiteConfig cfg;
  cfg.probability = 0.3;
  cfg.max_fires = -1;
  cfg.seed = 7;
  arm("t.prob", cfg);
  const int first = count_fires("t.prob", 300);
  arm("t.prob", cfg);  // re-arm resets counters and the stream
  const int second = count_fires("t.prob", 300);
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 40);   // ~90 expected
  EXPECT_LT(first, 160);
}

TEST_F(FaultTest, ContextIndexAppearsInMessage) {
  arm_once("t.ctx");
  std::string msg;
  try {
    SF_FAULT_POINT("t.ctx", int64_t{42});
  } catch (const InjectedFault& e) {
    msg = e.what();
  }
  EXPECT_NE(msg.find("t.ctx"), std::string::npos);
  EXPECT_NE(msg.find("42"), std::string::npos);
}

TEST_F(FaultTest, KillConfigThrowsWorkerKillNotInjectedFault) {
  SiteConfig cfg;
  cfg.kill = true;
  arm("t.kill", cfg);
  bool killed = false;
  try {
    SF_FAULT_POINT("t.kill");
  } catch (const InjectedFault&) {
    FAIL() << "kill must not be catchable as InjectedFault";
  } catch (const WorkerKill& e) {
    killed = true;
    EXPECT_EQ(e.site(), "t.kill");
  }
  EXPECT_TRUE(killed);
}

TEST_F(FaultTest, DelayWithoutThrowJustSleeps) {
  SiteConfig cfg;
  cfg.delay_seconds = 0.05;
  cfg.throws = false;
  arm("t.delay", cfg);
  Timer t;
  SF_FAULT_POINT("t.delay");  // must not throw
  EXPECT_GT(t.elapsed(), 0.04);
  SF_FAULT_POINT("t.delay");  // max_fires=1 default: second hit is free
  EXPECT_EQ(stats("t.delay").fires, 1);
}

TEST_F(FaultTest, DisarmStopsFiring) {
  SiteConfig cfg;
  cfg.max_fires = -1;
  arm("t.disarm", cfg);
  EXPECT_EQ(count_fires("t.disarm", 3), 3);
  disarm("t.disarm");
  EXPECT_EQ(count_fires("t.disarm", 3), 0);
  EXPECT_EQ(stats("t.disarm").fires, 3);  // stats survive until reset()
  reset();
  EXPECT_EQ(stats("t.disarm").fires, 0);
}

TEST_F(FaultTest, ConcurrentHitsAreSafeAndCounted) {
  SiteConfig cfg;
  cfg.probability = 0.5;
  cfg.max_fires = -1;
  arm("t.mt", cfg);
  constexpr int kThreads = 8, kHitsEach = 500;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int k = 0; k < kHitsEach; ++k) {
        try {
          SF_FAULT_POINT("t.mt");
        } catch (const InjectedFault&) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto s = stats("t.mt");
  EXPECT_EQ(s.hits, kThreads * kHitsEach);
  EXPECT_GT(s.fires, 0);
  EXPECT_LE(s.fires, s.hits);
}

// ---- chaos schedules -------------------------------------------------------

TEST_F(FaultTest, WindowHitsBoundsEligibility) {
  SiteConfig cfg;
  cfg.skip_hits = 2;
  cfg.window_hits = 3;   // only hits 3,4,5 eligible
  cfg.max_fires = -1;    // unlimited inside the window
  arm("t.window", cfg);
  const int fired = count_fires("t.window", 10);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(stats("t.window").hits, 10);
  EXPECT_EQ(stats("t.window").fires, 3);
}

TEST_F(FaultTest, WindowHitsUnboundedByDefault) {
  SiteConfig cfg;
  cfg.max_fires = -1;
  arm("t.window.open", cfg);
  EXPECT_EQ(count_fires("t.window.open", 7), 7);
}

TEST_F(FaultTest, RandomScheduleIsPureFunctionOfSeed) {
  const std::vector<std::string> sites = {"a.one", "b.two", "c.three",
                                          "d.four", "e.five"};
  ChaosOptions opt;
  opt.seed = 99;
  Schedule s1 = random_schedule(sites, opt);
  Schedule s2 = random_schedule(sites, opt);
  ASSERT_EQ(s1.size(), sites.size());
  ASSERT_EQ(s2.size(), s1.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].site, s2[i].site);
    EXPECT_EQ(s1[i].config.probability, s2[i].config.probability);
    EXPECT_EQ(s1[i].config.skip_hits, s2[i].config.skip_hits);
    EXPECT_EQ(s1[i].config.kill, s2[i].config.kill);
    EXPECT_EQ(s1[i].config.throws, s2[i].config.throws);
    EXPECT_EQ(s1[i].config.delay_seconds, s2[i].config.delay_seconds);
    EXPECT_EQ(s1[i].config.seed, s2[i].config.seed);
  }
  opt.seed = 100;
  Schedule s3 = random_schedule(sites, opt);
  bool any_diff = false;
  for (size_t i = 0; i < s1.size(); ++i) {
    any_diff = any_diff || s1[i].config.seed != s3[i].config.seed;
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical schedules";
}

TEST_F(FaultTest, InstalledScheduleReplaysFireForFireFromSeed) {
  const std::vector<std::string> sites = {"r.alpha", "r.beta", "r.gamma"};
  ChaosOptions opt;
  opt.seed = 7;
  opt.mean_probability = 0.3;
  opt.kill_fraction = 0.0;   // keep everything throwing for countability
  opt.delay_fraction = 0.0;
  opt.max_fires_per_site = -1;
  opt.max_skip_hits = 4;
  auto run_once = [&] {
    reset();
    install(random_schedule(sites, opt));
    std::vector<int> fires;
    for (const auto& site : sites) {
      fires.push_back(count_fires(site.c_str(), 50));
    }
    reset();
    return fires;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b) << "same schedule + seed must fire identically";
  int total = 0;
  for (int f : a) total += f;
  EXPECT_GT(total, 0) << "schedule fired nothing; chaos run is vacuous";
}

TEST_F(FaultTest, RandomScheduleMixesModes) {
  std::vector<std::string> sites;
  for (int i = 0; i < 64; ++i) sites.push_back("m.site" + std::to_string(i));
  ChaosOptions opt;
  opt.seed = 3;
  opt.kill_fraction = 0.25;
  opt.delay_fraction = 0.5;
  Schedule s = random_schedule(sites, opt);
  int kills = 0, delays = 0, throws = 0;
  for (const auto& e : s) {
    if (e.config.kill) {
      ++kills;
    } else if (!e.config.throws) {
      ++delays;
      EXPECT_GE(e.config.delay_seconds, 0.0);
      EXPECT_LE(e.config.delay_seconds, opt.max_delay_seconds);
    } else {
      ++throws;
    }
  }
  EXPECT_GT(kills, 0);
  EXPECT_GT(delays, 0);
  EXPECT_GT(throws, 0);
}

}  // namespace
}  // namespace sf::fault
