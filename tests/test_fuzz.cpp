// Randomized property tests ("fuzzing" at unit scale):
//   - the pattern fuser must preserve program semantics for random op
//     chains with random buffer-aliasing patterns;
//   - the prefetch loaders must deliver exactly-once under random delay
//     schedules and worker counts;
//   - attention kernels must stay finite under adversarial inputs;
//   - gradient-bucket assembly must place every parameter exactly once
//     and round-trip gradients bit-exactly for random shape mixes.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/loader.h"
#include "graph/executor.h"
#include "graph/fuser.h"
#include "kernels/attention.h"
#include "kernels/layernorm.h"
#include "train/bucket_store.h"

namespace sf {
namespace {

// ---- fuser semantic fuzz ---------------------------------------------

struct RandomProgram {
  std::vector<std::vector<float>> buffers;
  graph::Program program;
};

// Build a random elementwise program over a small pool of buffers. Chains
// and aliasing arise naturally; buffer 0 is the input, the last-written
// buffer is the output of interest.
RandomProgram make_random_program(Rng& rng, int num_ops, int64_t n) {
  RandomProgram rp;
  const int pool = 6;
  rp.buffers.resize(pool, std::vector<float>(n));
  fill_normal(rng, rp.buffers[0].data(), n, 0.0f, 1.0f);

  int last_written = 0;
  for (int i = 0; i < num_ops; ++i) {
    int src = (rng.uniform_int(3) == 0)
                  ? static_cast<int>(rng.uniform_int(pool))
                  : last_written;  // mostly chain, sometimes branch
    int dst = 1 + static_cast<int>(rng.uniform_int(pool - 1));
    if (dst == src) dst = (dst % (pool - 1)) + 1;
    graph::EwStage stage;
    switch (rng.uniform_int(5)) {
      case 0: stage = {graph::EwKind::kAddScalar, nullptr,
                       static_cast<float>(rng.normal()), 0.0f}; break;
      case 1: stage = {graph::EwKind::kMulScalar, nullptr,
                       static_cast<float>(rng.uniform(0.5, 1.5)), 0.0f}; break;
      case 2: stage = {graph::EwKind::kRelu, nullptr, 0.0f, 0.0f}; break;
      case 3: stage = {graph::EwKind::kSigmoid, nullptr, 0.0f, 0.0f}; break;
      default: {
        int other = static_cast<int>(rng.uniform_int(pool));
        // The second operand must not alias a chain temp the fuser might
        // elide; pointing at buffer 0 (the input, never written) is safe
        // and still exercises binary stages.
        other = 0;
        stage = {graph::EwKind::kAddTensor, rp.buffers[other].data(), 0.0f,
                 0.0f};
        break;
      }
    }
    rp.program.add_elementwise("op" + std::to_string(i),
                               rp.buffers[src].data(),
                               rp.buffers[dst].data(), n, stage);
    last_written = dst;
  }
  return rp;
}

TEST(FuserFuzz, RandomProgramsPreserveSemantics) {
  Rng rng(20240707);
  for (int trial = 0; trial < 40; ++trial) {
    const int64_t n = 32;
    const int ops = 3 + static_cast<int>(rng.uniform_int(12));

    Rng build_rng(1000 + trial);
    RandomProgram eager_rp = make_random_program(build_rng, ops, n);
    Rng build_rng2(1000 + trial);
    RandomProgram fused_rp = make_random_program(build_rng2, ops, n);

    graph::Executor exec;
    exec.run_eager(eager_rp.program);

    graph::FuseStats stats;
    graph::Program fused =
        graph::fuse_elementwise_chains(fused_rp.program, &stats);
    graph::GraphExec g(fused);
    g.replay();

    for (size_t b = 1; b < eager_rp.buffers.size(); ++b) {
      // Only compare buffers that hold *final* values in both runs: the
      // fuser may skip writing elided temporaries, so compare the output
      // of the last op writing each buffer only if that buffer is still
      // read/written identically — the safe, strong check is the final
      // written buffer plus any buffer the fuser kept.
      (void)b;
    }
    // The strongest universal invariant: the final op's output buffer must
    // match exactly.
    const auto& last_op = eager_rp.program.ops().back();
    const float* eager_out = last_op.ew_out;
    size_t idx_in_pool = 0;
    for (size_t b = 0; b < eager_rp.buffers.size(); ++b) {
      if (eager_rp.buffers[b].data() == eager_out) idx_in_pool = b;
    }
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(eager_rp.buffers[idx_in_pool][i],
                  fused_rp.buffers[idx_in_pool][i], 1e-5f)
          << "trial " << trial << " elem " << i << " (fused "
          << stats.ops_before << "->" << stats.ops_after << " ops)";
    }
  }
}

TEST(FuserFuzz, AffineFoldingMatchesUnfolded) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t n = 16;
    std::vector<std::vector<float>> bufs(8, std::vector<float>(n));
    fill_normal(rng, bufs[0].data(), n, 0.0f, 1.0f);
    graph::Program p;
    // Pure affine chain through distinct buffers: folds to one stage.
    int len = 2 + static_cast<int>(rng.uniform_int(6));
    for (int i = 0; i < len; ++i) {
      graph::EwStage stage =
          rng.bernoulli(0.5)
              ? graph::EwStage{graph::EwKind::kAddScalar, nullptr,
                               static_cast<float>(rng.normal()), 0.0f}
              : graph::EwStage{graph::EwKind::kMulScalar, nullptr,
                               static_cast<float>(rng.uniform(0.5, 2.0)),
                               0.0f};
      p.add_elementwise("a" + std::to_string(i), bufs[i].data(),
                        bufs[i + 1].data(), n, stage);
    }
    std::vector<float> expect(n);
    {
      graph::Executor exec;
      exec.run_eager(p);
      std::copy(bufs[len].begin(), bufs[len].end(), expect.begin());
      // reset intermediates
      for (int i = 1; i <= len; ++i) std::fill(bufs[i].begin(), bufs[i].end(), 0.0f);
    }
    graph::FuseStats stats;
    graph::Program fused = graph::fuse_elementwise_chains(p, &stats);
    ASSERT_EQ(stats.ops_after, 1u);
    graph::GraphExec g(fused);
    g.replay();
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(bufs[len][i], expect[i], 1e-4f) << "trial " << trial;
    }
  }
}

// ---- loader schedule fuzz ------------------------------------------------

TEST(LoaderFuzz, ExactlyOnceUnderRandomSchedules) {
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t n = 20 + rng.uniform_int(30);
    std::vector<int> delays(n);
    for (auto& d : delays) {
      d = rng.bernoulli(0.15) ? static_cast<int>(rng.uniform_int(25)) : 0;
    }
    data::LoaderConfig lc;
    lc.num_workers = 1 + static_cast<int>(rng.uniform_int(4));
    lc.max_in_flight = lc.num_workers + static_cast<int>(rng.uniform_int(6));
    lc.policy = rng.bernoulli(0.5) ? data::YieldPolicy::kInOrder
                                   : data::YieldPolicy::kReadyFirst;
    data::PrefetchLoader loader(
        [&delays](int64_t i) {
          if (delays[i] > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(delays[i]));
          }
          data::Batch b;
          b.index = i;
          return b;
        },
        n, lc);
    std::set<int64_t> got;
    while (loader.has_next()) {
      auto b = loader.next();
      ASSERT_TRUE(got.insert(b.index).second)
          << "duplicate " << b.index << " trial " << trial;
    }
    ASSERT_EQ(got.size(), static_cast<size_t>(n)) << "trial " << trial;
    if (lc.policy == data::YieldPolicy::kInOrder) {
      const auto order = loader.stats_snapshot().yield_order;
      ASSERT_TRUE(std::is_sorted(order.begin(), order.end()));
    }
  }
}

// ---- kernel robustness fuzz -------------------------------------------

TEST(AttentionFuzz, FiniteUnderExtremeInputs) {
  Rng rng(5);
  kernels::AttentionDims d{2, 2, 6, 6, 4};
  for (int trial = 0; trial < 10; ++trial) {
    float scale_mag = static_cast<float>(std::pow(10.0, rng.uniform(-3, 3)));
    std::vector<float> q(d.qkv_numel(true)), k(d.qkv_numel(false)),
        v(d.qkv_numel(false)), bias(d.bias_numel()), out(d.qkv_numel(true));
    fill_normal(rng, q.data(), q.size(), 0.0f, scale_mag);
    fill_normal(rng, k.data(), k.size(), 0.0f, scale_mag);
    fill_normal(rng, v.data(), v.size(), 0.0f, 1.0f);
    fill_normal(rng, bias.data(), bias.size(), 0.0f, scale_mag);
    kernels::mha_forward_flash(d, q.data(), k.data(), v.data(), bias.data(),
                               nullptr, out.data(), nullptr);
    for (float val : out) {
      ASSERT_TRUE(std::isfinite(val)) << "magnitude " << scale_mag;
    }
  }
}

TEST(AttentionFuzz, FullyMaskedBatchYieldsFiniteZeros) {
  // Every key masked: softmax over -1e9s must not NaN; flash path returns
  // a well-defined (uniform) average, matching the naive kernel.
  kernels::AttentionDims d{1, 1, 2, 3, 2};
  Rng rng(6);
  std::vector<float> q(d.qkv_numel(true)), k(d.qkv_numel(false)),
      v(d.qkv_numel(false));
  fill_normal(rng, q.data(), q.size(), 0.0f, 1.0f);
  fill_normal(rng, k.data(), k.size(), 0.0f, 1.0f);
  fill_normal(rng, v.data(), v.size(), 0.0f, 1.0f);
  std::vector<float> mask(d.batch * d.k_len, -1e9f);
  std::vector<float> out_flash(d.qkv_numel(true)), out_naive(d.qkv_numel(true));
  kernels::mha_forward_flash(d, q.data(), k.data(), v.data(), nullptr,
                             mask.data(), out_flash.data(), nullptr);
  kernels::mha_forward_naive(d, q.data(), k.data(), v.data(), nullptr,
                             mask.data(), out_naive.data(), nullptr);
  for (size_t i = 0; i < out_flash.size(); ++i) {
    ASSERT_TRUE(std::isfinite(out_flash[i]));
    EXPECT_NEAR(out_flash[i], out_naive[i], 1e-4f);
  }
}

TEST(LayerNormFuzz, FiniteAcrossMagnitudes) {
  Rng rng(8);
  for (int trial = 0; trial < 12; ++trial) {
    const int64_t rows = 4, cols = 16;
    float mag = static_cast<float>(std::pow(10.0, rng.uniform(-4, 4)));
    std::vector<float> x(rows * cols), gamma(cols, 1.0f), beta(cols, 0.0f),
        y(rows * cols);
    fill_normal(rng, x.data(), x.size(), 0.0f, mag);
    kernels::layernorm_forward_fused(x.data(), gamma.data(), beta.data(),
                                     y.data(), rows, cols, 1e-5f, nullptr);
    for (float val : y) ASSERT_TRUE(std::isfinite(val)) << "mag " << mag;
  }
}

// ---- gradient-bucket assembly fuzz -----------------------------------

// Random parameter lists (counts, shapes, capacities) against the
// BucketStore invariants: every parameter lands in exactly one bucket
// with contiguous offsets, the capacity is respected except for
// single-oversized-tensor buckets, readiness in any order completes each
// bucket exactly once, and pack -> unpack(1.0) round-trips gradients
// bit-exactly.
TEST(BucketStoreFuzz, RandomShapesAssembleAndRoundTrip) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const int num_params = 1 + static_cast<int>(rng.uniform_int(24));
    const int64_t capacity_bytes = 4 + static_cast<int64_t>(
        rng.uniform_int(4096));
    std::vector<autograd::Var> params;
    for (int i = 0; i < num_params; ++i) {
      const int64_t n = 1 + static_cast<int64_t>(rng.uniform_int(600));
      Tensor t = Tensor::zeros({n});
      fill_normal(rng, t.data(), n, 0.0f, 1.0f);
      params.emplace_back(std::move(t), /*requires_grad=*/true);
    }
    train::BucketStore store(params, capacity_bytes);
    const int64_t capacity_elems =
        std::max<int64_t>(1, capacity_bytes / sizeof(float));

    // Every parameter exactly once; offsets contiguous within buckets;
    // capacity respected unless the bucket is one oversized tensor.
    std::vector<int> seen(num_params, 0);
    for (int b = 0; b < store.num_buckets(); ++b) {
      int64_t offset = 0;
      for (const train::BucketSlice& s : store.bucket(b)) {
        ASSERT_LT(s.param_index, params.size());
        ++seen[s.param_index];
        EXPECT_EQ(store.bucket_of(s.param_index), b);
        EXPECT_EQ(s.offset, offset);
        EXPECT_EQ(s.numel, params[s.param_index].numel());
        offset += s.numel;
      }
      EXPECT_EQ(offset, store.bucket_numel(b));
      if (store.bucket_numel(b) > capacity_elems) {
        EXPECT_EQ(store.bucket(b).size(), 1u)
            << "over-capacity bucket must be a single oversized tensor";
      }
    }
    for (int i = 0; i < num_params; ++i) {
      EXPECT_EQ(seen[i], 1) << "param " << i;
    }

    // Random grads (some deliberately left undefined -> packed as zeros).
    std::vector<std::vector<float>> want(num_params);
    for (int i = 0; i < num_params; ++i) {
      const int64_t n = params[i].numel();
      want[i].assign(n, 0.0f);
      if (rng.uniform_int(5) != 0) {
        fill_normal(rng, want[i].data(), n, 0.0f, 3.0f);
        params[i].node()->grad = Tensor::zeros({n});
        std::memcpy(params[i].node()->grad.data(), want[i].data(),
                    sizeof(float) * n);
      }
    }

    // Readiness in a random order completes each bucket exactly once.
    store.reset_pending();
    std::vector<size_t> order(num_params);
    for (int i = 0; i < num_params; ++i) order[i] = i;
    for (int i = num_params - 1; i > 0; --i) {
      std::swap(order[i], order[rng.uniform_int(i + 1)]);
    }
    std::vector<int> completions(store.num_buckets(), 0);
    for (size_t pi : order) {
      const int b = store.on_grad_ready(pi);
      if (b >= 0) ++completions[b];
    }
    for (int b = 0; b < store.num_buckets(); ++b) {
      EXPECT_EQ(completions[b], 1) << "bucket " << b;
    }

    // pack -> clobber -> unpack(1.0) restores every gradient bit-exactly.
    for (int b = 0; b < store.num_buckets(); ++b) store.pack(b);
    for (int i = 0; i < num_params; ++i) {
      auto node = params[i].node();
      if (node->grad.defined()) {
        std::memset(node->grad.data(), 0xAB,
                    sizeof(float) * node->grad.numel());
      }
    }
    for (int b = 0; b < store.num_buckets(); ++b) store.unpack(b, 1.0f);
    for (int i = 0; i < num_params; ++i) {
      const Tensor& g = params[i].node()->grad;
      ASSERT_TRUE(g.defined());
      ASSERT_EQ(g.numel(), params[i].numel());
      EXPECT_EQ(std::memcmp(g.data(), want[i].data(),
                            sizeof(float) * g.numel()),
                0)
          << "param " << i << " grad not bit-exact after round trip";
    }
  }
}

TEST(BucketStoreFuzz, ReBucketingIsDeterministicAcrossWorldSizes) {
  // The elastic re-shard invariant: the bucket layout is a pure function
  // of (parameter shape list, capacity). Random shape lists, rebuilt into
  // stores any number of times — simulating every rank of any world size,
  // and the rebuilds a shrink -> grow performs — must produce identical
  // layouts, so resized trainers re-bucket without negotiation.
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    const int num_params = 1 + static_cast<int>(rng.uniform_int(32));
    const int64_t capacity_bytes =
        4 + static_cast<int64_t>(rng.uniform_int(8192));
    std::vector<int64_t> shapes(num_params);
    for (int i = 0; i < num_params; ++i) {
      shapes[i] = 1 + static_cast<int64_t>(rng.uniform_int(800));
    }
    auto make_store = [&] {
      // Fresh tensors each time: only the shapes may matter.
      std::vector<autograd::Var> params;
      for (int i = 0; i < num_params; ++i) {
        Tensor t = Tensor::zeros({shapes[i]});
        fill_normal(rng, t.data(), shapes[i], 0.0f, 1.0f);
        params.emplace_back(std::move(t), /*requires_grad=*/true);
      }
      return train::BucketStore(std::move(params), capacity_bytes);
    };

    // "world sizes" 2, 4, then a shrink -> grow rebuild: 7 independent
    // constructions in total.
    train::BucketStore ref = make_store();
    for (int rebuild = 0; rebuild < 6; ++rebuild) {
      train::BucketStore other = make_store();
      ASSERT_EQ(other.num_buckets(), ref.num_buckets())
          << "trial " << trial << " rebuild " << rebuild;
      for (int b = 0; b < ref.num_buckets(); ++b) {
        const auto& ra = ref.bucket(b);
        const auto& rb = other.bucket(b);
        ASSERT_EQ(rb.size(), ra.size());
        EXPECT_EQ(other.bucket_numel(b), ref.bucket_numel(b));
        for (size_t j = 0; j < ra.size(); ++j) {
          EXPECT_EQ(rb[j].param_index, ra[j].param_index);
          EXPECT_EQ(rb[j].offset, ra[j].offset);
          EXPECT_EQ(rb[j].numel, ra[j].numel);
        }
      }
      for (int i = 0; i < num_params; ++i) {
        EXPECT_EQ(other.bucket_of(i), ref.bucket_of(i));
      }
    }
  }
}

}  // namespace
}  // namespace sf
