// Tests for blocked GEMM and the batched linear-group kernels (§3.3.1
// "GEMM Batching").
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "kernels/gemm.h"

namespace sf::kernels {
namespace {

// Plain triple-loop reference.
void ref_gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, bool ta, bool tb, float alpha, float beta) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        float av = ta ? a[kk * m + i] : a[i * k + kk];
        float bv = tb ? b[j * k + kk] : b[kk * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

std::vector<float> random_vec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  fill_normal(rng, v.data(), n, 0.0f, 1.0f);
  return v;
}

using GemmParam = std::tuple<int, int, int, bool, bool>;

class GemmSweep : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweep, MatchesReference) {
  auto [m, k, n, ta, tb] = GetParam();
  auto a = random_vec(m * k, 1);
  auto b = random_vec(k * n, 2);
  std::vector<float> c(m * n), c_ref(m * n);
  gemm(a.data(), b.data(), c.data(), m, k, n, ta, tb);
  ref_gemm(a.data(), b.data(), c_ref.data(), m, k, n, ta, tb, 1.0f, 0.0f);
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-3f) << "elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmParam{1, 1, 1, false, false},
                      GemmParam{3, 5, 7, false, false},
                      GemmParam{16, 16, 16, false, false},
                      GemmParam{33, 65, 17, false, false},
                      GemmParam{64, 128, 32, false, false},
                      GemmParam{8, 4, 8, true, false},
                      GemmParam{8, 4, 8, false, true},
                      GemmParam{5, 9, 6, true, true},
                      GemmParam{40, 70, 50, true, false},
                      GemmParam{40, 70, 50, false, true},
                      // All four transpose combos at sizes that are not
                      // multiples of any pack/tile dimension, so the
                      // blocked-transpose edge handling is exercised.
                      GemmParam{33, 65, 17, true, false},
                      GemmParam{33, 65, 17, false, true},
                      GemmParam{33, 65, 17, true, true},
                      GemmParam{40, 70, 50, true, true},
                      GemmParam{67, 129, 45, false, false},
                      GemmParam{67, 129, 45, true, false},
                      GemmParam{67, 129, 45, false, true},
                      GemmParam{67, 129, 45, true, true}));

TEST(Gemm, TransposedAlphaBetaMatchesReference) {
  const int64_t m = 33, k = 37, n = 29;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      auto a = random_vec(m * k, 31);
      auto b = random_vec(k * n, 32);
      std::vector<float> c(m * n, 0.75f), c_ref(m * n, 0.75f);
      gemm(a.data(), b.data(), c.data(), m, k, n, ta, tb, 1.5f, 1.0f);
      ref_gemm(a.data(), b.data(), c_ref.data(), m, k, n, ta, tb, 1.5f, 1.0f);
      for (int64_t i = 0; i < m * n; ++i) {
        EXPECT_NEAR(c[i], c_ref[i], 1e-3f)
            << "ta=" << ta << " tb=" << tb << " elem " << i;
      }
    }
  }
}

TEST(GemmBatched, MatchesPerItemGemm) {
  const int64_t items = 6, m = 33, k = 65, n = 17;
  std::vector<std::vector<float>> as, bs, cs, cs_ref;
  std::vector<const float*> ap, bp;
  std::vector<float*> cp;
  for (int64_t i = 0; i < items; ++i) {
    as.push_back(random_vec(m * k, 40 + i));
    bs.push_back(random_vec(k * n, 60 + i));
    cs.emplace_back(m * n);
    cs_ref.emplace_back(m * n);
  }
  for (int64_t i = 0; i < items; ++i) {
    ap.push_back(as[i].data());
    bp.push_back(bs[i].data());
    cp.push_back(cs[i].data());
  }
  gemm_batched(ap, bp, cp, m, k, n);
  for (int64_t i = 0; i < items; ++i) {
    ref_gemm(as[i].data(), bs[i].data(), cs_ref[i].data(), m, k, n, false,
             false, 1.0f, 0.0f);
    for (int64_t e = 0; e < m * n; ++e) {
      EXPECT_NEAR(cs[i][e], cs_ref[i][e], 1e-3f)
          << "item " << i << " elem " << e;
    }
  }
}

TEST(GemmBatched, BetaAccumulates) {
  const int64_t items = 2, m = 4, k = 5, n = 3;
  std::vector<std::vector<float>> as, bs, cs, cs_ref;
  std::vector<const float*> ap, bp;
  std::vector<float*> cp;
  for (int64_t i = 0; i < items; ++i) {
    as.push_back(random_vec(m * k, 80 + i));
    bs.push_back(random_vec(k * n, 90 + i));
    cs.emplace_back(m * n, 2.0f);
    cs_ref.emplace_back(m * n, 2.0f);
  }
  for (int64_t i = 0; i < items; ++i) {
    ap.push_back(as[i].data());
    bp.push_back(bs[i].data());
    cp.push_back(cs[i].data());
  }
  gemm_batched(ap, bp, cp, m, k, n, 0.5f, 1.0f);
  for (int64_t i = 0; i < items; ++i) {
    ref_gemm(as[i].data(), bs[i].data(), cs_ref[i].data(), m, k, n, false,
             false, 0.5f, 1.0f);
    for (int64_t e = 0; e < m * n; ++e) {
      EXPECT_NEAR(cs[i][e], cs_ref[i][e], 1e-4f);
    }
  }
}

TEST(Gemm, AlphaBetaSemantics) {
  auto a = random_vec(6, 3);
  auto b = random_vec(6, 4);
  std::vector<float> c(4, 1.0f), c_ref(4, 1.0f);
  gemm(a.data(), b.data(), c.data(), 2, 3, 2, false, false, 2.0f, 1.0f);
  ref_gemm(a.data(), b.data(), c_ref.data(), 2, 3, 2, false, false, 2.0f, 1.0f);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(c[i], c_ref[i], 1e-4f);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  auto a = random_vec(4, 5);
  auto b = random_vec(4, 6);
  std::vector<float> c(4, std::numeric_limits<float>::quiet_NaN());
  gemm(a.data(), b.data(), c.data(), 2, 2, 2);
  for (float v : c) EXPECT_TRUE(std::isfinite(v));
}

TEST(Gemm, NonFinitePropagation) {
  // Regression: the inner loop used to skip k-steps where A[i,kk] == 0,
  // which silently swallowed NaN/Inf in B (0 * NaN must be NaN, not 0).
  const int64_t m = 7, k = 11, n = 9;
  auto a = random_vec(m * k, 51);
  auto b = random_vec(k * n, 52);
  a[0 * k + 2] = 0.0f;  // zero multiplier on the poisoned B row
  b[2 * n + 1] = std::numeric_limits<float>::quiet_NaN();
  b[2 * n + 3] = std::numeric_limits<float>::infinity();

  std::vector<float> c(m * n), c_ref(m * n);
  gemm(a.data(), b.data(), c.data(), m, k, n);
  ref_gemm(a.data(), b.data(), c_ref.data(), m, k, n, false, false, 1.0f,
           0.0f);
  EXPECT_TRUE(std::isnan(c[0 * n + 1]));  // 0 * NaN
  EXPECT_TRUE(std::isnan(c[0 * n + 3]));  // 0 * inf
  for (int64_t i = 0; i < m * n; ++i) {
    // Class-wise compare against the reference: NaNs must appear in the
    // same places, infinities must match exactly (sign included), and
    // finite values must still agree.
    EXPECT_EQ(std::isnan(c[i]), std::isnan(c_ref[i])) << "elem " << i;
    if (std::isnan(c_ref[i])) continue;
    if (std::isinf(c_ref[i])) {
      EXPECT_EQ(c[i], c_ref[i]) << "elem " << i;
    } else {
      EXPECT_NEAR(c[i], c_ref[i], 1e-3f) << "elem " << i;
    }
  }
}

TEST(Gemm, ZeroDimsAreNoops) {
  std::vector<float> c(4, 7.0f);
  gemm(nullptr, nullptr, c.data(), 2, 0, 2);  // k=0: C = 0
  for (float v : c) EXPECT_EQ(v, 0.0f);
}

TEST(Gemm, AlphaZeroScalesOnly) {
  auto a = random_vec(4, 7);
  auto b = random_vec(4, 8);
  std::vector<float> c(4, 3.0f);
  gemm(a.data(), b.data(), c.data(), 2, 2, 2, false, false, 0.0f, 1.0f);
  for (float v : c) EXPECT_EQ(v, 3.0f);
}

class LinearGroupSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LinearGroupSweep, BatchedMatchesSeparate) {
  auto [m, k, groups] = GetParam();
  auto x = random_vec(m * k, 11);
  std::vector<std::vector<float>> weights;
  std::vector<int64_t> dims;
  for (int g = 0; g < groups; ++g) {
    int64_t n = 8 + 4 * g;
    dims.push_back(n);
    weights.push_back(random_vec(k * n, 100 + g));
  }
  std::vector<const float*> wptr;
  for (auto& w : weights) wptr.push_back(w.data());

  std::vector<std::vector<float>> out_sep, out_bat;
  std::vector<float*> sep_ptr, bat_ptr;
  for (int g = 0; g < groups; ++g) {
    out_sep.emplace_back(m * dims[g]);
    out_bat.emplace_back(m * dims[g]);
  }
  for (int g = 0; g < groups; ++g) {
    sep_ptr.push_back(out_sep[g].data());
    bat_ptr.push_back(out_bat[g].data());
  }
  linear_group_separate(x.data(), m, k, wptr, dims, sep_ptr);
  linear_group_batched(x.data(), m, k, wptr, dims, bat_ptr);
  for (int g = 0; g < groups; ++g) {
    for (size_t i = 0; i < out_sep[g].size(); ++i) {
      EXPECT_NEAR(out_sep[g][i], out_bat[g][i], 1e-3f)
          << "group " << g << " elem " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearGroupSweep,
                         ::testing::Values(std::tuple{1, 4, 1},
                                           std::tuple{16, 32, 4},
                                           std::tuple{33, 16, 4},
                                           std::tuple{64, 64, 2},
                                           std::tuple{10, 8, 6}));

TEST(LinearBackward, InputGradMatchesReference) {
  const int64_t m = 5, k = 7, n = 3;
  auto dy = random_vec(m * n, 21);
  auto w = random_vec(k * n, 22);
  std::vector<float> dx(m * k), dx_ref(m * k);
  linear_backward_input(dy.data(), w.data(), dx.data(), m, k, n);
  // dX = dY * W^T
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      double acc = 0;
      for (int64_t c = 0; c < n; ++c) acc += dy[i * n + c] * w[j * n + c];
      dx_ref[i * k + j] = static_cast<float>(acc);
    }
  }
  for (int64_t i = 0; i < m * k; ++i) EXPECT_NEAR(dx[i], dx_ref[i], 1e-4f);
}

TEST(LinearBackward, WeightGradMatchesReference) {
  const int64_t m = 6, k = 4, n = 5;
  auto x = random_vec(m * k, 23);
  auto dy = random_vec(m * n, 24);
  std::vector<float> dw(k * n), dw_ref(k * n);
  linear_backward_weight(x.data(), dy.data(), dw.data(), m, k, n);
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t r = 0; r < m; ++r) acc += x[r * k + i] * dy[r * n + j];
      dw_ref[i * n + j] = static_cast<float>(acc);
    }
  }
  for (int64_t i = 0; i < k * n; ++i) EXPECT_NEAR(dw[i], dw_ref[i], 1e-4f);
}

}  // namespace
}  // namespace sf::kernels
